file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_waveforms.dir/bench_fig21_waveforms.cpp.o"
  "CMakeFiles/bench_fig21_waveforms.dir/bench_fig21_waveforms.cpp.o.d"
  "bench_fig21_waveforms"
  "bench_fig21_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
