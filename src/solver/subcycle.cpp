/// \file subcycle.cpp
/// \brief Depth-local sub-cycled RK4 (Berger–Oliger power-of-two cadence).
///
/// One subcycle_cycle(fine_dt) advances the whole mesh by one coarse step
/// = cycle() fine substeps. At each substep the due depth suffix steps
/// coarsest-first; each depth runs a full RK4 step of size
/// fine_dt * 2^(dmax - d) with the unzip/RHS/zip sweeps restricted to its
/// own octant runs. Ghost data at refinement boundaries comes from the
/// dense-output time interpolation of fd/dense_output.hpp: every depth
/// retains its step-start state u0 and first RHS k1 so neighbors can
/// evaluate it at intermediate stage times to second order.
///
/// The per-depth step itself — stage fill, restricted RHS, dense save,
/// depth-restricted update — is the shared kernel body of
/// exec_space/bssn_sweeps.cpp (one body for this context and the simgpu
/// mirror). Determinism contract: every sweep is a fixed-grain run on the
/// context's ExecSpace with disjoint writes and per-element arithmetic
/// independent of chunk boundaries — results are bitwise identical at any
/// DGR_THREADS, any DGR_SIMD width, and any backend. On a uniform mesh
/// (cycle() == 1) the stage fill reduces to the exact stage-AXPY
/// arithmetic of rk4_step and the restricted update to its four sequential
/// AXPY roundings, so the sub-cycled step is bitwise identical to the
/// global step — the degeneracy pin of test_subcycle.

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "exec_space/bssn_sweeps.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::solver {

using bssn::BssnState;

const mesh::SubcycleIndex& BssnCtx::subcycle_index() {
  if (!subidx_)
    subidx_ = std::make_unique<mesh::SubcycleIndex>(
        mesh::SubcycleIndex::build(*mesh_));
  return *subidx_;
}

void BssnCtx::subcycle_bootstrap() {
  const mesh::SubcycleIndex& idx = *subidx_;
  const std::size_t nd = mesh_->num_dofs();
  dense_u0_.resize(nd);
  dense_k1_.resize(nd);
  dense_t0_.assign(static_cast<std::size_t>(idx.depths()), time_);
  dense_mode_.assign(static_cast<std::size_t>(idx.depths()),
                     exec_space::kDenseModeLinear);
  // One full-mesh RHS at the aligned start time seeds the first-order
  // dense output u0 + (t - t0) k1 for every depth. Substep 0 activates
  // every depth (all strides divide 0), so each switches to the quadratic
  // form after its first step — linear fills are only ever read while
  // stepping through substep 0 right after (re)initialization.
  compute_rhs(state_, dense_k1_);
  phases_.update.start();
  exec_space::sweep_dense_save_all(space_, state_, dense_u0_, nullptr);
  phases_.update.stop();
  dense_ready_ = true;
}

void BssnCtx::subcycle_step_depth(int depth, Real fine_dt) {
  const exec_space::SubcycleState st{&state_,    &stage_,     k_,
                                     &dense_u0_, &dense_k1_,  &dense_t0_,
                                     &dense_mode_};
  // The update-class sweeps pass counts == nullptr (the host context has
  // never accumulated them into counts_); the restricted RHS accumulates
  // into counts_ through the pipeline, exactly as the global-dt path.
  exec_space::subcycle_step_depth(
      space_, *subidx_, depth, fine_dt, time_, st,
      [&](const BssnState& u, BssnState& k,
          const std::vector<OctRange>& runs) {
        pipeline_.compute(u, k, runs, &phases_, &counts_);
      },
      nullptr, [&] { phases_.update.start(); },
      [&] { phases_.update.stop(); });
}

void BssnCtx::subcycle_cycle(Real fine_dt) {
  DGR_CHECK(fine_dt > 0);
  const mesh::SubcycleIndex& idx = subcycle_index();
  if (!idx.uniform() && !dense_ready_) subcycle_bootstrap();
  const int cycle = idx.cycle();
  for (int s = 0; s < cycle; ++s) {
    for (int d = idx.active_cutoff(s); d <= idx.dmax; ++d)
      subcycle_step_depth(d, fine_dt);
    time_ += fine_dt;
    ++steps_;
  }
}

}  // namespace dgr::solver
