#pragma once
/// \file runtime.hpp
/// \brief Simulated GPU runtime. Kernels execute on the host under a
/// block-level launch abstraction while recording their operation counts;
/// modeled device time comes from feeding those counts through the §III-D
/// slow–fast memory model (perf::MachineModel). Host<->device transfers and
/// device memory are accounted the same way, and streams tag kernels so the
/// asynchronous wave-extraction path (Algorithm 1) can be excluded from the
/// critical path.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/counters.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "perf/machine_model.hpp"

namespace dgr::simgpu {

struct KernelRecord {
  int launches = 0;
  std::uint64_t blocks = 0;
  int stream = 0;
  OpCounts counts;              ///< totals over all launches
  std::vector<OpCounts> per_launch;  ///< per-launch counts (model input)
  double host_seconds = 0;

  /// Modeled device time: the finite-cache model applied per launch (the
  /// §III-D working set m is a per-kernel-invocation quantity).
  double modeled_seconds(const perf::MachineModel& m) const {
    double t = 0;
    for (const auto& c : per_launch) t += m.time_finite_cache(c);
    return t;
  }
};

class GpuRuntime {
 public:
  explicit GpuRuntime(perf::MachineModel model = perf::a100())
      : model_(std::move(model)) {}

  const perf::MachineModel& model() const { return model_; }

  // ------------------------------------------------- memory accounting --
  void device_alloc(std::uint64_t bytes) {
    allocated_ += bytes;
    peak_ = std::max(peak_, allocated_);
  }
  void device_free(std::uint64_t bytes) {
    allocated_ -= std::min(allocated_, bytes);
  }
  void h2d(std::uint64_t bytes) {
    h2d_bytes_ += bytes;
    obs::count("gpu.h2d_bytes", bytes);
  }
  void d2h(std::uint64_t bytes) {
    d2h_bytes_ += bytes;
    obs::count("gpu.d2h_bytes", bytes);
  }

  std::uint64_t allocated_bytes() const { return allocated_; }
  std::uint64_t peak_bytes() const { return peak_; }
  std::uint64_t h2d_bytes() const { return h2d_bytes_; }
  std::uint64_t d2h_bytes() const { return d2h_bytes_; }

  /// Modeled PCIe transfer time for all H2D/D2H traffic so far.
  double transfer_seconds() const {
    if (model_.h2d_bw <= 0) return 0;
    return static_cast<double>(h2d_bytes_ + d2h_bytes_) / model_.h2d_bw;
  }

  // --------------------------------------------------- kernel launches --
  /// Execute `body` as one kernel launch of `blocks` blocks on `stream`.
  /// The body receives an OpCounts to fill with the work it performed.
  template <class F>
  void launch(const std::string& name, std::uint64_t blocks, int stream,
              F&& body) {
    KernelRecord& rec = records_[name];
    WallTimer t;
    OpCounts c;
    {
      obs::ScopedSpan span(name.c_str(), "kernel");
      body(c);
    }
    rec.host_seconds += t.seconds();
    rec.counts += c;
    rec.per_launch.push_back(c);
    rec.launches += 1;
    rec.blocks += blocks;
    rec.stream = stream;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->add("gpu.launches");
      m->add("gpu.flops", c.flops);
      m->add("gpu.kernel." + name + ".bytes", c.bytes_moved());
    }
  }

  bool has_kernel(const std::string& name) const {
    return records_.count(name) > 0;
  }
  const KernelRecord& record(const std::string& name) const {
    return records_.at(name);
  }
  const std::map<std::string, KernelRecord>& records() const {
    return records_;
  }

  /// Modeled device time of one kernel (finite-cache model of §III-D,
  /// applied per launch).
  double modeled_kernel_seconds(const std::string& name) const {
    return records_.at(name).modeled_seconds(model_);
  }

  /// Modeled device time of the synchronous pipeline (stream 0) plus
  /// transfers; kernels on other streams overlap (Algorithm 1's async wave
  /// extraction) and are excluded unless `include_async`.
  double modeled_total_seconds(bool include_async = false) const {
    return modeled_total_with(model_, include_async) + transfer_seconds();
  }

  /// Same pipeline evaluated under a different machine model (the CPU side
  /// of the paper's GPU-vs-node comparisons).
  double modeled_total_with(const perf::MachineModel& m,
                            bool include_async = false) const {
    double t = 0;
    for (const auto& [name, rec] : records_)
      if (rec.stream == 0 || include_async) t += rec.modeled_seconds(m);
    return t;
  }

  double host_total_seconds() const {
    double t = 0;
    for (const auto& [name, rec] : records_) t += rec.host_seconds;
    return t;
  }

  /// Reset semantics. The runtime distinguishes *counters* — statistics of
  /// work submitted so far (kernel records, H2D/D2H transfer bytes, and the
  /// allocation high-water mark) — from *live allocation state*
  /// (allocated_bytes(), which tracks memory currently held and is only
  /// changed by device_alloc/device_free). reset_counters() clears all
  /// counters and restarts the high-water mark from the current allocation,
  /// so after a reset peak_bytes() reports the maximum reached *since the
  /// reset* and allocated_bytes() is untouched.
  void reset_counters() {
    records_.clear();
    h2d_bytes_ = d2h_bytes_ = 0;
    peak_ = allocated_;
  }

 private:
  perf::MachineModel model_;
  std::map<std::string, KernelRecord> records_;
  std::uint64_t allocated_ = 0, peak_ = 0;
  std::uint64_t h2d_bytes_ = 0, d2h_bytes_ = 0;
};

}  // namespace dgr::simgpu
