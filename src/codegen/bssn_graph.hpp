#pragma once
/// \file bssn_graph.hpp
/// \brief Construction of the BSSN algebraic-stage expression DAG (the
/// "composed graph G" of §IV-B / Fig. 10) by instantiating the shared
/// algebra template with the symbolic scalar, plus the input packer that
/// fills the interpreter's input vector in the exact registration order.

#include <array>

#include "bssn/algebra.hpp"
#include "bssn/rhs.hpp"
#include "codegen/expr.hpp"

namespace dgr::codegen {

struct BssnAlgebraGraph {
  Graph graph;
  std::array<std::int32_t, bssn::kNumVars> outputs;  ///< DAG roots
  int num_inputs = 0;
};

/// Build the DAG with the gauge/dissipation parameters baked in as
/// constants (as real code generators do).
BssnAlgebraGraph build_bssn_algebra_graph(Real lambda_f0 = 0.75,
                                          Real eta = 2.0,
                                          Real ko_sigma = 0.1);

/// Number of scalar inputs the packed vector carries.
int bssn_algebra_num_inputs();

/// Canonical flat index of every AlgebraInputs slot: `idx.d_gt[s][a]` holds
/// the input_id the graph builder assigned to that slot (== the offset the
/// packer writes it at). The fused SoA gather (fused_rhs.cpp) addresses its
/// input rows through this map, so it cannot drift from the packer or the
/// graph registration order.
struct AlgebraInputIndex {
  bssn::AlgebraInputs<int> idx;
  int count = 0;
};
const AlgebraInputIndex& algebra_input_index();

/// Fill `buf` (size bssn_algebra_num_inputs()) from gathered point inputs,
/// in the same order the graph builder registered them.
void pack_algebra_inputs(const bssn::AlgebraInputs<Real>& q, Real* buf);

}  // namespace dgr::codegen
