# Empty dependencies file for test_bssn.
# This may be replaced when dependencies are built.
