# Empty dependencies file for bench_table2_codegen_spills.
# This may be replaced when dependencies are built.
