#pragma once
/// \file io.hpp
/// \brief Checkpoint/restart and visualization output. Production NR runs
/// last days to weeks (Table IV), so restartable state is part of the
/// system: a checkpoint stores the octree, domain, time/step counters and
/// all 24 zipped fields in a versioned binary format. VTK legacy output
/// (point cloud with per-DOF scalars) loads directly in ParaView/VisIt.

#include <memory>
#include <string>

#include "bssn/state.hpp"
#include "mesh/mesh.hpp"

namespace dgr::solver {

struct Checkpoint {
  oct::Octree tree;
  oct::Domain domain;
  Real time = 0;
  std::uint64_t step = 0;
  bssn::BssnState state;
};

/// Write a checkpoint; throws dgr::Error on I/O failure. The write is
/// atomic-by-rename: the payload goes to `<path>.tmp` first, is flushed and
/// checked, then renamed into place — a crash or error mid-write can never
/// corrupt or truncate an existing good checkpoint at `path` (the temp file
/// is removed on failure).
void save_checkpoint(const std::string& path, const mesh::Mesh& mesh,
                     const bssn::BssnState& state, Real time,
                     std::uint64_t step);

/// Read a checkpoint written by save_checkpoint; validates magic, version,
/// and structural consistency. Truncated or garbage files fail with a
/// clean dgr::Error before any oversized allocation or partial state can
/// escape: the leaf table and field payload sizes are checked against the
/// actual file size before reading them.
Checkpoint load_checkpoint(const std::string& path);

/// Rebuild the mesh a checkpoint was taken on (deterministic from the
/// stored tree + domain) and cross-check the stored field sizes against it;
/// throws dgr::Error on mismatch. This is the restart entry point: the
/// returned mesh carries the exact DOF layout the fields were saved in.
std::shared_ptr<mesh::Mesh> checkpoint_mesh(const Checkpoint& cp);

/// Write selected variables of a zipped state as a legacy-VTK point cloud
/// (POINTS + POINT_DATA scalars), one scalar array per variable.
void write_vtk_points(const std::string& path, const mesh::Mesh& mesh,
                      const bssn::BssnState& state,
                      const std::vector<int>& vars);

}  // namespace dgr::solver
