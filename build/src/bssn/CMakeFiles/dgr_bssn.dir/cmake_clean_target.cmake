file(REMOVE_RECURSE
  "libdgr_bssn.a"
)
