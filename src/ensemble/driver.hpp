#pragma once
/// \file driver.hpp
/// \brief The ensemble driver: accepts a stream of scenario configs from
/// any number of client threads, deduplicates them against the waveform
/// cache and against evolutions already in flight (duplicate requests
/// coalesce onto the running one — a unique config is evolved exactly
/// once), and schedules the misses over the src/exec thread pool with a
/// size-aware policy:
///
///  - small scenarios (estimated_octants below EnsembleConfig::
///    large_job_octants) are packed as independent pool tasks — up to
///    `concurrency` of them run concurrently, each on one worker lane,
///    their nested parallel regions staying lane-local unless stolen;
///  - large scenarios are executed one at a time by the driver's dispatcher
///    thread, which as the pool's single external driver hands the whole
///    pool to the evolution's parallel_for internals.
///
/// Results are bitwise independent of the placement (worker lane vs
/// dispatcher, any thread count) — the src/exec determinism contract — so
/// a cache hit is bitwise identical to a recomputation.
///
/// Threading rules: submit()/evolve() are safe from any thread. Client
/// threads must not themselves open parallel regions while the driver is
/// running (the dispatcher is the pool's one external driver).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "ensemble/cache.hpp"
#include "ensemble/scenario.hpp"

namespace dgr::ensemble {

struct EnsembleConfig {
  /// Max small evolutions running concurrently; 0 means exec::lanes().
  int concurrency = 0;
  std::size_t cache_bytes = std::size_t{64} << 20;
  std::string spill_dir;  ///< "" disables disk spill
  /// Scenarios at or above this estimated octant count are "large" and get
  /// the whole pool via the dispatcher instead of being packed.
  std::size_t large_job_octants = 4096;
};

/// How a request was satisfied (per-request, known at submit time).
enum class Source {
  kComputed,   ///< scheduled a fresh evolution
  kCoalesced,  ///< joined an evolution already in flight
  kMemory,     ///< in-memory cache hit
  kDisk,       ///< disk-spill cache hit
};

const char* source_name(Source s);

class EnsembleDriver {
 public:
  using Result = std::shared_ptr<const Waveform>;

  /// A submitted request: the shared future resolves to the waveform (or
  /// rethrows the evolution's failure); `source` says how it was routed.
  struct Ticket {
    std::shared_future<Result> future;
    Source source = Source::kComputed;
    std::uint64_t hash = 0;
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t evolutions = 0;  ///< evolutions actually run
    std::uint64_t coalesced = 0;
    std::uint64_t jobs_small = 0;
    std::uint64_t jobs_large = 0;
    std::uint64_t failures = 0;
  };

  explicit EnsembleDriver(EnsembleConfig cfg);
  ~EnsembleDriver();  ///< drains in-flight work, then joins the dispatcher
  EnsembleDriver(const EnsembleDriver&) = delete;
  EnsembleDriver& operator=(const EnsembleDriver&) = delete;

  /// Route a request: cache hit returns a ready future; a duplicate of an
  /// in-flight config joins it; otherwise a new evolution is scheduled.
  Ticket submit(const ScenarioConfig& cfg);

  /// Blocking convenience: submit and wait. `source_out` (optional)
  /// receives the routing decision.
  Result evolve(const ScenarioConfig& cfg, Source* source_out = nullptr);

  /// Wait until no request is queued or in flight.
  void drain();

  WaveformCache& cache() { return cache_; }
  const EnsembleConfig& config() const { return cfg_; }
  Stats stats() const;
  /// Jobs queued (small + large) but not yet picked up by a runner — the
  /// instantaneous backlog behind the serve METRICS queue-depth gauge.
  int queue_depth() const;

 private:
  struct Job {
    ScenarioKey key;
    ScenarioConfig cfg;
    std::promise<Result> promise;
    double t_submit_us = 0;
  };
  using JobPtr = std::shared_ptr<Job>;

  void execute(const JobPtr& job);
  void run_small_jobs();  ///< pool-task body: chain through queued jobs
  void dispatcher_loop();

  EnsembleConfig cfg_;
  WaveformCache cache_;

  mutable std::mutex m_;
  std::condition_variable cv_;  ///< wakes the dispatcher and drain()
  std::unordered_map<std::string, std::shared_future<Result>> inflight_;
  std::deque<JobPtr> small_queue_, large_queue_;
  int active_small_ = 0;  ///< pool runner tasks currently alive
  bool large_running_ = false;
  bool stop_ = false;
  Stats stats_;
  std::thread dispatcher_;
};

}  // namespace dgr::ensemble
