#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging to stderr, silenced by default in tests.
///
/// The threshold defaults to the `DGR_LOG` environment variable
/// (debug|info|warn|error|off, case-insensitive, or the numeric level
/// 0..4), falling back to warn; set_level() always overrides. An optional
/// JSON-lines sink mirrors every emitted message as
///   {"ts_us":<t>,"level":"INFO","msg":"..."}
/// with timestamps from dgr::monotonic_us() — the same epoch host-domain
/// trace events (src/obs) use, so logs and traces share one clock.

#include <string>

namespace dgr::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_level(Level lvl);
Level level();

/// Parse a level name or digit; returns `fallback` on unrecognized input.
Level parse_level(const std::string& name, Level fallback = Level::kWarn);

/// Open (append) a JSON-lines sink at `path`; replaces any previous sink.
/// Returns false if the file cannot be opened.
bool open_json_sink(const std::string& path);
void close_json_sink();
bool json_sink_open();

void write(Level lvl, const std::string& msg);

inline void debug(const std::string& m) { write(Level::kDebug, m); }
inline void info(const std::string& m) { write(Level::kInfo, m); }
inline void warn(const std::string& m) { write(Level::kWarn, m); }
inline void error(const std::string& m) { write(Level::kError, m); }

}  // namespace dgr::log
