file(REMOVE_RECURSE
  "libdgr_mesh.a"
)
