#include "common/log.hpp"

#include <cstdio>

namespace dgr::log {

namespace {
Level g_level = Level::kWarn;
const char* level_name(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_level(Level lvl) { g_level = lvl; }
Level level() { return g_level; }

void write(Level lvl, const std::string& msg) {
  if (lvl < g_level) return;
  std::fprintf(stderr, "[dgr %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace dgr::log
