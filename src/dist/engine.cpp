#include "dist/engine.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "solver/io.hpp"

namespace dgr::dist {
namespace {

using bssn::BssnState;
using bssn::kNumVars;

/// All ranks on the current mesh generation (rebuilt after each regrid and
/// after each failure recovery, when the partition shrinks to survivors).
struct Cohort {
  std::shared_ptr<const mesh::Mesh> mesh;
  comm::RankPartition part;
  std::vector<std::unique_ptr<RankCtx>> ranks;
};

Cohort make_cohort(std::shared_ptr<const mesh::Mesh> mesh,
                   const solver::SolverConfig& scfg, const DistConfig& cfg,
                   int nranks, const BssnState& global) {
  Cohort c;
  c.mesh = std::move(mesh);
  c.part = comm::partition_mesh(*c.mesh, nranks);
  auto maps = comm::build_exchange_maps(*c.mesh, c.part);
  for (int r = 0; r < nranks; ++r) {
    c.ranks.push_back(std::make_unique<RankCtx>(
        r, c.mesh, c.part, std::move(maps[r]), scfg, cfg.execute));
    c.ranks.back()->adopt_owned(global);
  }
  return c;
}

/// Reassemble the global state from every rank's owned-DOF payload.
BssnState gather_global(SimComm& comm, Cohort& c) {
  std::vector<SimComm::Payload> contrib(comm.ranks());
  for (auto& rc : c.ranks) contrib[rc->rank()] = rc->pack_owned();
  const SimComm::Payload all = comm.allgather(contrib);
  BssnState g(c.mesh->num_dofs());
  std::size_t off = 0;
  for (auto& rc : c.ranks)
    for (int v = 0; v < kNumVars; ++v)
      for (DofIndex d : rc->owned_dofs()) g.field(v)[d] = all[off++];
  DGR_CHECK(off == all.size());
  return g;
}

/// One overlapped RHS evaluation across all ranks:
///   post recvs + sends -> interior compute (halo in flight) -> wait ->
///   boundary compute. `use_stage` selects the RK stage vector as input;
///   `ks` the k-vector written (execute mode).
/// Run each rank's numeric work concurrently on the host pool (ranks write
/// only their own state vectors), one rank per chunk.
template <class Body>
void ranks_parallel(Cohort& c, const char* label, Body&& body) {
  exec::parallel_for(
      0, static_cast<std::int64_t>(c.ranks.size()), /*grain=*/1,
      [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t r = rb; r < re; ++r) body(*c.ranks[r]);
      },
      label);
}

void rhs_eval(SimComm& comm, Cohort& c, const DistConfig& cfg, int tag,
              bool use_stage, int ks) {
  // Every SimComm operation stays on the driver, sequential in rank order:
  // the virtual-clock schedule (message injection, advance, delivery) is
  // bitwise identical to the serial engine. Only the rank-local numeric
  // compute between comm points runs concurrently — it neither reads nor
  // writes comm state, so hoisting it ahead of the advance loop is exact.
  for (auto& rc : c.ranks)
    rc->post_exchange(comm, use_stage ? rc->stage() : rc->state(), tag);
  if (cfg.execute)
    ranks_parallel(c, "dist.interior", [&](RankCtx& rc) {
      rc.compute_rhs_interior(use_stage ? rc.stage() : rc.state(), rc.k(ks));
    });
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(),
                 cfg.sec_per_octant * double(rc->interior_octants()));
  for (auto& rc : c.ranks)
    rc->finish_exchange(comm, use_stage ? rc->stage() : rc->state());
  if (cfg.execute)
    ranks_parallel(c, "dist.boundary", [&](RankCtx& rc) {
      rc.compute_rhs_boundary(use_stage ? rc.stage() : rc.state(), rc.k(ks));
    });
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(),
                 cfg.sec_per_octant * double(rc->boundary_octants()));
}

/// One sub-cycled per-depth exchange (schedule-only): same overlapped
/// shape as rhs_eval, but payloads and compute advances are restricted to
/// one refinement depth's DOFs/octants (RankCtx::build_depth_maps).
void rhs_eval_depth(SimComm& comm, Cohort& c, const DistConfig& cfg, int tag,
                    int slot) {
  for (auto& rc : c.ranks)
    rc->post_exchange_depth(comm, rc->state(), tag, slot);
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(), cfg.sec_per_octant *
                                 double(rc->interior_octants_depth(slot)));
  for (auto& rc : c.ranks)
    rc->finish_exchange_depth(comm, rc->state(), slot);
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(), cfg.sec_per_octant *
                                 double(rc->boundary_octants_depth(slot)));
}

/// One distributed RK4 step — the exact arithmetic of BssnCtx::rk4_step,
/// with a ghost exchange ahead of each of the four evaluations.
void rk4_step(SimComm& comm, Cohort& c, const DistConfig& cfg, Real dt,
              int* tag) {
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/false, 0);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), 0.5 * dt, rc.k(0));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 1);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), 0.5 * dt, rc.k(1));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 2);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), dt, rc.k(2));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 3);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.state().axpy(dt / 6.0, rc.k(0));
    rc.state().axpy(dt / 3.0, rc.k(1));
    rc.state().axpy(dt / 3.0, rc.k(2));
    rc.state().axpy(dt / 6.0, rc.k(3));
  });
}

/// The last coordinated checkpoint, kept in memory (and mirrored on disk
/// when DistConfig::checkpoint_path is set).
struct CoordCheckpoint {
  std::shared_ptr<const mesh::Mesh> mesh;
  BssnState state;
  Real time = 0;
  std::uint64_t step = 0;
};

}  // namespace

DistResult evolve_distributed(std::shared_ptr<const mesh::Mesh> mesh,
                              const BssnState& initial,
                              const solver::SolverConfig& scfg,
                              const DistConfig& cfg) {
  DGR_CHECK(mesh != nullptr && cfg.ranks >= 1);
  DGR_CHECK(initial.num_dofs() == mesh->num_dofs());
  DGR_CHECK_MSG(!(cfg.subcycle && cfg.execute),
                "subcycle is schedule-only in the distributed engine "
                "(execute-mode local timestepping runs through "
                "solver::evolve)");
  obs::ScopedSpan top("dist::evolve_distributed", "dist");

  FaultPlan plan(cfg.faults);
  FaultPlan* plan_ptr = plan.enabled() ? &plan : nullptr;
  if (cfg.execute && plan.enabled() && !plan.failures().empty())
    DGR_CHECK_MSG(cfg.checkpoint_interval > 0,
                  "rank-failure injection requires checkpoint_interval > 0 "
                  "(no coordinated checkpoint to recover from)");

  auto comm = std::make_unique<SimComm>(cfg.ranks, cfg.net, plan_ptr);
  // Engine-level virtual track: step/regrid/checkpoint/recovery instants
  // and the octant counter, alongside the per-rank tracks of each SimComm.
  obs::TraceSession* tr = obs::trace();
  const int eng =
      tr ? tr->add_track("engine", "steps", obs::Clock::kVirtual) : -1;
  Cohort c = make_cohort(mesh, scfg, cfg, cfg.ranks, initial);
  DistResult res;
  int tag = 0;
  int epoch = 0;
  const auto mark = [&](const char* what) {
    if (!tr) return;
    const double ts = comm->max_clock() * 1e6;
    tr->instant(eng, what, "engine", ts);
    tr->counter(eng, "octants", ts, double(c.mesh->num_octants()));
  };

  // Fold one epoch's communicator into the accumulated result. Called when
  // an epoch ends (recovery) and once at the end of the run, so per-epoch
  // maxima sum up and res.ranks always describes the final (surviving)
  // cohort.
  const auto fold_epoch = [&]() {
    res.t_virtual = comm->max_clock();
    res.messages += comm->total_messages();
    res.bytes += comm->total_bytes();
    double tc = 0, te = 0, th = 0, tf = 0;
    res.ranks.clear();
    for (auto& rc : c.ranks) {
      RankReport rep;
      rep.stats = comm->stats(rc->rank());
      rep.owned = rc->owned_octants();
      rep.ghost_octants = rc->maps().ghost_octants.size();
      rep.interior = rc->interior_octants();
      rep.boundary = rc->boundary_octants();
      rep.recv_dofs = rc->maps().recv_dofs();
      tc = std::max(tc, rep.stats.t_compute);
      te = std::max(te, rep.stats.t_comm_exposed);
      th = std::max(th, rep.stats.t_comm_hidden);
      tf = std::max(tf, rep.stats.t_failover);
      res.retransmits += rep.stats.retransmits;
      res.msgs_delayed += rep.stats.msgs_delayed;
      res.ranks.push_back(rep);
    }
    res.t_compute_max += tc;
    res.t_comm_exposed_max += te;
    res.t_comm_hidden_max += th;
    res.t_failover_max = std::max(res.t_failover_max, tf);
  };

  if (!cfg.execute) {
    if (cfg.subcycle) {
      // Sub-cycled schedule: walk the cycle's substeps, firing one
      // filtered exchange per (substep, active depth) coarsest-first,
      // until schedule_evals evaluations have run. Coarse depths exchange
      // exponentially less often, and each exchange carries only the DOFs
      // on that depth's cadence.
      const mesh::SubcycleIndex idx = mesh::SubcycleIndex::build(*c.mesh);
      for (auto& rc : c.ranks) rc->build_depth_maps(idx);
      int ev = 0;
      while (ev < cfg.schedule_evals) {
        for (int s = 0; s < idx.cycle() && ev < cfg.schedule_evals; ++s)
          for (int d = idx.active_cutoff(s);
               d <= idx.dmax && ev < cfg.schedule_evals; ++d) {
            rhs_eval_depth(*comm, c, cfg, tag++, d - idx.dmin);
            ++res.rhs_evals;
            ++ev;
            mark("rhs-eval");
          }
      }
    } else {
      for (int ev = 0; ev < cfg.schedule_evals; ++ev) {
        rhs_eval(*comm, c, cfg, tag++, /*use_stage=*/false, 0);
        ++res.rhs_evals;
        mark("rhs-eval");
      }
    }
  } else {
    // Mirror solver::evolve (Algorithm 1) exactly, with a global step
    // counter so the regrid cadence (every regrid_every-th step) survives
    // checkpoint restarts and rollbacks: a window of regrid_every steps
    // followed by the regrid synchronization point.
    Real time = cfg.t_start;
    std::uint64_t global_step = cfg.step_start;

    std::optional<gw::WaveExtractor> extractor;
    std::vector<std::uint64_t> wave_steps;  // step each sample was taken at
    if (!cfg.extraction_radii.empty()) {
      DGR_CHECK(cfg.extract_every > 0);
      extractor.emplace(cfg.extraction_radii, cfg.lmax);
      for (Real r : cfg.extraction_radii) {
        gw::ModeTimeSeries ts;
        ts.l = 2;
        ts.m = 2;
        ts.radius = r;
        res.waves22.push_back(ts);
      }
    }

    CoordCheckpoint cp;
    const auto take_checkpoint = [&]() {
      obs::ScopedSpan cp_span("dist::checkpoint", "dist");
      BssnState full = gather_global(*comm, c);
      if (!cfg.checkpoint_path.empty())
        solver::save_checkpoint(cfg.checkpoint_path, *c.mesh, full, time,
                                global_step);
      cp.mesh = c.mesh;
      cp.state = std::move(full);
      cp.time = time;
      cp.step = global_step;
      ++res.checkpoints;
      obs::count("dist.checkpoints");
      mark("checkpoint");
    };

    // The rollback half of the protocol: every survivor restarts from the
    // last coordinated checkpoint (reloaded through the hardened on-disk
    // path when one is configured), the partition is rebuilt over the
    // survivors, and the virtual clocks continue from the detection
    // instant in a fresh epoch.
    const auto recover = [&]() {
      obs::ScopedSpan rec_span("dist::recovery", "dist");
      const double t_detect = comm->max_clock();
      const int lost = static_cast<int>(global_step - cp.step);
      fold_epoch();
      const int survivors = comm->alive_count();
      DGR_CHECK(survivors >= 1);

      std::shared_ptr<const mesh::Mesh> rmesh;
      BssnState rstate;
      if (!cfg.checkpoint_path.empty()) {
        const solver::Checkpoint disk =
            solver::load_checkpoint(cfg.checkpoint_path);
        DGR_CHECK(disk.step == cp.step);
        rmesh = solver::checkpoint_mesh(disk);
        rstate = disk.state;
      } else {
        rmesh = cp.mesh;
        rstate = cp.state;
      }
      comm = std::make_unique<SimComm>(survivors, cfg.net, plan_ptr, t_detect,
                                       ++epoch);
      c = make_cohort(rmesh, scfg, cfg, survivors, rstate);
      global_step = cp.step;
      time = cp.time;
      // Rewind the recorded waveform with the state: samples taken in the
      // discarded steps are re-recorded identically on re-execution.
      std::size_t keep = 0;
      while (keep < wave_steps.size() && wave_steps[keep] <= cp.step) ++keep;
      wave_steps.resize(keep);
      for (auto& w : res.waves22) {
        w.times.resize(keep);
        w.values.resize(keep);
      }
      ++res.recoveries;
      res.lost_steps += lost;
      obs::count("dist.recovery.count");
      obs::count("dist.recovery.lost_steps", std::uint64_t(lost));
      obs::gauge_set("dist.recovery.t_detect", t_detect);
      // Preserve the flight-recorder timeline that led into the failure —
      // the rings keep filling during re-execution, so dump now, while
      // the pre-fault spans are still in the buffers.
      if (!cfg.flightrec_path.empty()) {
        obs::flightrec::record_instant("dist.recovery", "fault",
                                       t_detect * 1e6);
        obs::flightrec::dump(cfg.flightrec_path);
      }
      mark("recovery");
    };

    if (cfg.checkpoint_interval > 0) take_checkpoint();

    while (time < cfg.t_end - 1e-12) {
      // dt from the global finest spacing via allreduce-min of each rank's
      // local minimum — bitwise equal to ctx.suggested_dt().
      std::vector<double> h(c.ranks.size());
      for (auto& rc : c.ranks) h[rc->rank()] = rc->local_finest_spacing();
      const Real dt =
          std::min(scfg.cfl * comm->allreduce_min(h), cfg.t_end - time);
      rk4_step(*comm, c, cfg, dt, &tag);
      res.rhs_evals += 4;
      ++res.steps_executed;
      time += dt;
      ++global_step;
      mark("step");

      if (extractor && global_step % cfg.extract_every == 0) {
        obs::ScopedSpan ext_span("dist::wave-extract", "dist");
        const BssnState full = gather_global(*comm, c);
        const auto modes =
            extractor->extract_from_state(*c.mesh, full, scfg.bssn);
        for (std::size_t r = 0; r < modes.size(); ++r)
          res.waves22[r].append(time, modes[r].mode(2, 2));
        wave_steps.push_back(global_step);
      }

      // Fault check: fail every rank whose planned fail-stop instant has
      // passed on the virtual clock, then run the survivors' heartbeat
      // detector and recover once for the whole batch.
      if (plan.enabled()) {
        bool failed_any = false;
        while (const auto* f = plan.pending_failure(comm->max_clock())) {
          plan.consume_failure();
          if (comm->alive_count() <= 1) {
            obs::count("dist.faults.skipped");  // cannot kill the last rank
            continue;
          }
          // Victim: the rank spec modulo the epoch's communicator size,
          // advanced to the next live rank if it already died this batch.
          int victim =
              ((f->rank % comm->ranks()) + comm->ranks()) % comm->ranks();
          while (!comm->alive(victim)) victim = (victim + 1) % comm->ranks();
          comm->fail_rank(victim, f->t_virtual);
          ++res.failures;
          obs::count("dist.faults.rank_failures");
          failed_any = true;
        }
        if (failed_any) {
          comm->detect_failures(cfg.faults.heartbeat_period,
                                cfg.faults.heartbeat_timeout);
          recover();
          continue;  // resume stepping from the restored state
        }
      }

      if (cfg.do_regrid && global_step % cfg.regrid_every == 0 &&
          time < cfg.t_end - 1e-12) {
        // Regrid: gather the state (the host sync point), remesh and
        // transfer replicated and deterministically on every rank, then
        // repartition and scatter.
        obs::ScopedSpan regrid_span("dist::regrid", "dist");
        BssnState full = gather_global(*comm, c);
        auto next = solver::regrid_mesh(*c.mesh, full, cfg.regrid);
        if (next) {
          BssnState moved = solver::transfer_state(*c.mesh, full, *next);
          c = make_cohort(std::move(next), scfg, cfg,
                          static_cast<int>(c.ranks.size()), moved);
          ++res.regrids;
          mark("regrid");
        }
      }

      if (cfg.checkpoint_interval > 0 &&
          global_step % std::uint64_t(cfg.checkpoint_interval) == 0)
        take_checkpoint();
    }
    res.steps = static_cast<int>(global_step - cfg.step_start);
    res.state = gather_global(*comm, c);
  }

  fold_epoch();
  res.final_ranks = comm->alive_count();
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->add("dist.steps", std::uint64_t(res.steps));
    m->add("dist.steps_executed", std::uint64_t(res.steps_executed));
    m->add("dist.regrids", std::uint64_t(res.regrids));
    m->add("dist.rhs_evals", std::uint64_t(res.rhs_evals));
    m->add("dist.messages", res.messages);
    m->add("dist.bytes", res.bytes);
    m->set("dist.ranks", double(cfg.ranks));
    m->set("dist.final_ranks", double(res.final_ranks));
    m->set("dist.t_virtual", res.t_virtual);
    m->set("dist.t_compute_max", res.t_compute_max);
    m->set("dist.t_comm_exposed_max", res.t_comm_exposed_max);
    m->set("dist.t_comm_hidden_max", res.t_comm_hidden_max);
    m->set("dist.t_failover_max", res.t_failover_max);
    const double comm_t = res.t_comm_exposed_max + res.t_comm_hidden_max;
    if (comm_t > 0)
      m->set("dist.comm_hidden_ratio", res.t_comm_hidden_max / comm_t);
  }
  return res;
}

}  // namespace dgr::dist
