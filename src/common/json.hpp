#pragma once
/// \file json.hpp
/// \brief Minimal JSON writing helpers shared by the log sink, the trace
/// exporter, the metrics snapshot, and the bench reporter. Numbers are
/// formatted with std::to_chars (shortest round-trip), so serialized output
/// is deterministic for deterministic inputs.

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>

namespace dgr::jsonu {

/// Append `s` as a quoted, escaped JSON string.
inline void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

inline std::string quote(const std::string& s) {
  std::string out;
  append_string(out, s);
  return out;
}

/// Shortest round-trip decimal representation; non-finite values become
/// null (JSON has no NaN/Inf).
inline std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

inline std::string num(std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

inline std::string num(std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

inline std::string num(int v) { return num(static_cast<std::int64_t>(v)); }

}  // namespace dgr::jsonu
