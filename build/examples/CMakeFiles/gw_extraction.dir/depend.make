# Empty dependencies file for gw_extraction.
# This may be replaced when dependencies are built.
