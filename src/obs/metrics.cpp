#include "obs/metrics.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "common/log.hpp"

namespace dgr::obs {

std::string MetricsRegistry::json() const {
  using jsonu::num;
  using jsonu::quote;
  std::lock_guard<std::mutex> lk(m_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    out += quote(k) + ":" + num(v);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) out += ",";
    out += quote(k) + ":" + num(v);
    first = false;
  }
  out += "},\"summaries\":{";
  first = true;
  for (const auto& [k, s] : summaries_) {
    if (!first) out += ",";
    out += quote(k) + ":{\"count\":" + num(s.count) + ",\"sum\":" +
           num(s.sum) + ",\"min\":" + num(s.min) + ",\"max\":" + num(s.max) +
           ",\"mean\":" + num(s.mean()) + "}";
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) out += ",";
    out += quote(k) + ":" + h.json();
    first = false;
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log::error("metrics: cannot open " + path);
    return false;
  }
  const std::string body = json() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  log::info("metrics: wrote " + path);
  return ok;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "dgr_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus() const {
  using jsonu::num;
  std::lock_guard<std::mutex> lk(m_);
  std::string out;
  for (const auto& [k, v] : counters_) {
    const std::string n = prom_name(k);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + num(v) + "\n";
  }
  for (const auto& [k, v] : gauges_) {
    const std::string n = prom_name(k);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + num(v) + "\n";
  }
  for (const auto& [k, s] : summaries_) {
    const std::string n = prom_name(k);
    out += "# TYPE " + n + " summary\n";
    out += n + "_count " + num(s.count) + "\n";
    out += n + "_sum " + num(s.sum) + "\n";
    out += n + "_min " + num(s.count ? s.min : 0.0) + "\n";
    out += n + "_max " + num(s.count ? s.max : 0.0) + "\n";
  }
  for (const auto& [k, h] : histograms_) {
    const std::string n = prom_name(k);
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + num(h.p50()) + "\n";
    out += n + "{quantile=\"0.9\"} " + num(h.p90()) + "\n";
    out += n + "{quantile=\"0.99\"} " + num(h.p99()) + "\n";
    out += n + "{quantile=\"0.999\"} " + num(h.p999()) + "\n";
    out += n + "_count " + num(h.count()) + "\n";
    out += n + "_min " + num(h.min()) + "\n";
    out += n + "_max " + num(h.max()) + "\n";
  }
  return out;
}

}  // namespace dgr::obs
