#include "comm/partition.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "octree/octree.hpp"

namespace dgr::comm {

int RankPartition::rank_of(OctIndex e) const {
  const auto it = std::upper_bound(splits.begin(), splits.end(),
                                   static_cast<std::size_t>(e));
  return static_cast<int>(it - splits.begin()) - 1;
}

RankPartition partition_mesh(const mesh::Mesh& mesh, int ranks,
                             int bytes_per_point) {
  DGR_CHECK(ranks >= 1);
  RankPartition part;
  part.ranks = ranks;
  std::vector<double> weights(mesh.num_octants(), 1.0);
  part.splits = oct::sfc_partition(weights, ranks);

  part.work.assign(ranks, 0.0);
  part.send_bytes.assign(ranks, 0);
  part.neighbor_ranks.assign(ranks, 0);
  part.ghost_octants.assign(ranks, 0);

  for (int r = 0; r < ranks; ++r) {
    part.work[r] =
        static_cast<double>(part.splits[r + 1] - part.splits[r]);
    // Ghost layer: remote octants adjacent to this rank's range. Each ghost
    // octant's 7^3 block is received once per exchange; symmetrically its
    // owner sends it (send_bytes counts the receive volume, which equals
    // the aggregate send volume across ranks).
    std::set<OctIndex> ghosts;
    std::set<int> peers;
    for (std::size_t e = part.splits[r]; e < part.splits[r + 1]; ++e) {
      for (OctIndex nb : mesh.adjacency(static_cast<OctIndex>(e))) {
        const int owner = part.rank_of(nb);
        if (owner != r) {
          ghosts.insert(nb);
          peers.insert(owner);
        }
      }
    }
    part.ghost_octants[r] = ghosts.size();
    part.send_bytes[r] = static_cast<std::uint64_t>(ghosts.size()) *
                         mesh::kOctPts * bytes_per_point;
    part.neighbor_ranks[r] = static_cast<int>(peers.size());
  }
  return part;
}

ScalingPoint scaling_point(const mesh::Mesh& mesh, const RankPartition& part,
                           double sec_per_octant,
                           const perf::NetworkModel& net, double t1) {
  ScalingPoint pt;
  pt.ranks = part.ranks;
  double max_work = 0, max_comm = 0;
  for (int r = 0; r < part.ranks; ++r) {
    max_work = std::max(max_work, part.work[r] * sec_per_octant);
    max_comm = std::max(
        max_comm, net.time(part.send_bytes[r],
                           std::max(1, part.neighbor_ranks[r])));
  }
  pt.t_compute = max_work;
  pt.t_comm = part.ranks > 1 ? max_comm : 0.0;
  pt.t_total = pt.t_compute + pt.t_comm;
  const double ref =
      t1 > 0 ? t1
             : static_cast<double>(mesh.num_octants()) * sec_per_octant;
  pt.efficiency = ref / (part.ranks * pt.t_total);
  return pt;
}

std::uint64_t halo_exchange_field(const mesh::Mesh& mesh,
                                  const RankPartition& part,
                                  const Real* field,
                                  std::vector<std::vector<Real>>* ghosts) {
  std::uint64_t bytes = 0;
  if (ghosts) ghosts->assign(part.ranks, {});
  for (int r = 0; r < part.ranks; ++r) {
    std::set<OctIndex> ghost_set;
    for (std::size_t e = part.splits[r]; e < part.splits[r + 1]; ++e)
      for (OctIndex nb : mesh.adjacency(static_cast<OctIndex>(e)))
        if (part.rank_of(nb) != r) ghost_set.insert(nb);
    for (OctIndex g : ghost_set) {
      Real u[mesh::kOctPts];
      mesh.load_octant(field, g, u);  // the owner's send payload
      bytes += sizeof(u);
      if (ghosts)
        (*ghosts)[r].insert((*ghosts)[r].end(), u, u + mesh::kOctPts);
    }
  }
  return bytes;
}

std::vector<ExchangeMaps> build_exchange_maps(const mesh::Mesh& mesh,
                                              const RankPartition& part) {
  const int ranks = part.ranks;
  std::vector<ExchangeMaps> maps(ranks);

  // DOFs a source octant contributes when loaded: its non-hanging points
  // plus every term of its hanging-point interpolation rules (the rules are
  // resolved transitively at mesh build time, so terms are true DOFs).
  std::vector<DofIndex> buf;
  const auto append_octant_dofs = [&](OctIndex e) {
    const std::int64_t* map = mesh.o2n(e);
    for (int i = 0; i < mesh::kOctPts; ++i) {
      const std::int64_t v = map[i];
      if (v >= 0) {
        buf.push_back(v);
      } else {
        for (const auto& [dof, w] : mesh.hanging_rules()[-(v + 1)].terms) {
          (void)w;
          buf.push_back(dof);
        }
      }
    }
  };

  for (int r = 0; r < ranks; ++r) {
    ExchangeMaps& m = maps[r];
    m.rank = r;
    m.recv_from.assign(ranks, {});
    m.send_to.assign(ranks, {});
    std::set<OctIndex> ghosts;
    std::vector<std::set<DofIndex>> need(ranks);
    for (std::size_t b = part.owned_begin(r); b < part.owned_end(r); ++b) {
      const OctIndex ob = static_cast<OctIndex>(b);
      buf.clear();
      append_octant_dofs(ob);
      for (OctIndex e : mesh.adjacency(ob)) {
        append_octant_dofs(e);
        if (part.rank_of(e) != r) ghosts.insert(e);
      }
      bool local = true;
      for (DofIndex d : buf) {
        const int owner = part.rank_of(mesh.dof_owner(d));
        if (owner != r) {
          local = false;
          need[owner].insert(d);
        }
      }
      (local ? m.interior : m.boundary).push_back(ob);
    }
    m.ghost_octants.assign(ghosts.begin(), ghosts.end());
    for (int p = 0; p < ranks; ++p)
      m.recv_from[p].assign(need[p].begin(), need[p].end());
  }

  // Send lists are the transpose of the recv lists; peers follow.
  for (int r = 0; r < ranks; ++r)
    for (int p = 0; p < ranks; ++p) maps[p].send_to[r] = maps[r].recv_from[p];
  for (int r = 0; r < ranks; ++r)
    for (int p = 0; p < ranks; ++p)
      if (p != r &&
          (!maps[r].recv_from[p].empty() || !maps[r].send_to[p].empty()))
        maps[r].peers.push_back(p);
  return maps;
}

}  // namespace dgr::comm
