#include "dist/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace dgr::dist {
namespace {

using bssn::BssnState;
using bssn::kNumVars;

/// All ranks on the current mesh generation (rebuilt after each regrid).
struct Cohort {
  std::shared_ptr<const mesh::Mesh> mesh;
  comm::RankPartition part;
  std::vector<std::unique_ptr<RankCtx>> ranks;
};

Cohort make_cohort(std::shared_ptr<const mesh::Mesh> mesh,
                   const solver::SolverConfig& scfg, const DistConfig& cfg,
                   const BssnState& global) {
  Cohort c;
  c.mesh = std::move(mesh);
  c.part = comm::partition_mesh(*c.mesh, cfg.ranks);
  auto maps = comm::build_exchange_maps(*c.mesh, c.part);
  for (int r = 0; r < cfg.ranks; ++r) {
    c.ranks.push_back(std::make_unique<RankCtx>(
        r, c.mesh, c.part, std::move(maps[r]), scfg, cfg.execute));
    c.ranks.back()->adopt_owned(global);
  }
  return c;
}

/// Reassemble the global state from every rank's owned-DOF payload.
BssnState gather_global(SimComm& comm, Cohort& c) {
  std::vector<SimComm::Payload> contrib(comm.ranks());
  for (auto& rc : c.ranks) contrib[rc->rank()] = rc->pack_owned();
  const SimComm::Payload all = comm.allgather(contrib);
  BssnState g(c.mesh->num_dofs());
  std::size_t off = 0;
  for (auto& rc : c.ranks)
    for (int v = 0; v < kNumVars; ++v)
      for (DofIndex d : rc->owned_dofs()) g.field(v)[d] = all[off++];
  DGR_CHECK(off == all.size());
  return g;
}

/// One overlapped RHS evaluation across all ranks:
///   post recvs + sends -> interior compute (halo in flight) -> wait ->
///   boundary compute. `use_stage` selects the RK stage vector as input;
///   `ks` the k-vector written (execute mode).
/// Run each rank's numeric work concurrently on the host pool (ranks write
/// only their own state vectors), one rank per chunk.
template <class Body>
void ranks_parallel(Cohort& c, const char* label, Body&& body) {
  exec::parallel_for(
      0, static_cast<std::int64_t>(c.ranks.size()), /*grain=*/1,
      [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t r = rb; r < re; ++r) body(*c.ranks[r]);
      },
      label);
}

void rhs_eval(SimComm& comm, Cohort& c, const DistConfig& cfg, int tag,
              bool use_stage, int ks) {
  // Every SimComm operation stays on the driver, sequential in rank order:
  // the virtual-clock schedule (message injection, advance, delivery) is
  // bitwise identical to the serial engine. Only the rank-local numeric
  // compute between comm points runs concurrently — it neither reads nor
  // writes comm state, so hoisting it ahead of the advance loop is exact.
  for (auto& rc : c.ranks)
    rc->post_exchange(comm, use_stage ? rc->stage() : rc->state(), tag);
  if (cfg.execute)
    ranks_parallel(c, "dist.interior", [&](RankCtx& rc) {
      rc.compute_rhs_interior(use_stage ? rc.stage() : rc.state(), rc.k(ks));
    });
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(),
                 cfg.sec_per_octant * double(rc->interior_octants()));
  for (auto& rc : c.ranks)
    rc->finish_exchange(comm, use_stage ? rc->stage() : rc->state());
  if (cfg.execute)
    ranks_parallel(c, "dist.boundary", [&](RankCtx& rc) {
      rc.compute_rhs_boundary(use_stage ? rc.stage() : rc.state(), rc.k(ks));
    });
  for (auto& rc : c.ranks)
    comm.advance(rc->rank(),
                 cfg.sec_per_octant * double(rc->boundary_octants()));
}

/// One distributed RK4 step — the exact arithmetic of BssnCtx::rk4_step,
/// with a ghost exchange ahead of each of the four evaluations.
void rk4_step(SimComm& comm, Cohort& c, const DistConfig& cfg, Real dt,
              int* tag) {
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/false, 0);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), 0.5 * dt, rc.k(0));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 1);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), 0.5 * dt, rc.k(1));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 2);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.stage().set_axpy(rc.state(), dt, rc.k(2));
  });
  rhs_eval(comm, c, cfg, (*tag)++, /*use_stage=*/true, 3);
  ranks_parallel(c, "dist.update", [&](RankCtx& rc) {
    rc.state().axpy(dt / 6.0, rc.k(0));
    rc.state().axpy(dt / 3.0, rc.k(1));
    rc.state().axpy(dt / 3.0, rc.k(2));
    rc.state().axpy(dt / 6.0, rc.k(3));
  });
}

}  // namespace

DistResult evolve_distributed(std::shared_ptr<const mesh::Mesh> mesh,
                              const BssnState& initial,
                              const solver::SolverConfig& scfg,
                              const DistConfig& cfg) {
  DGR_CHECK(mesh != nullptr && cfg.ranks >= 1);
  DGR_CHECK(initial.num_dofs() == mesh->num_dofs());
  obs::ScopedSpan top("dist::evolve_distributed", "dist");
  SimComm comm(cfg.ranks, cfg.net);
  // Engine-level virtual track: step/regrid instants and the octant-count
  // counter, alongside the per-rank tracks SimComm registered.
  obs::TraceSession* tr = obs::trace();
  const int eng =
      tr ? tr->add_track("engine", "steps", obs::Clock::kVirtual) : -1;
  Cohort c = make_cohort(mesh, scfg, cfg, initial);
  DistResult res;
  int tag = 0;
  const auto mark = [&](const char* what) {
    if (!tr) return;
    const double ts = comm.max_clock() * 1e6;
    tr->instant(eng, what, "engine", ts);
    tr->counter(eng, "octants", ts, double(c.mesh->num_octants()));
  };

  if (!cfg.execute) {
    for (int ev = 0; ev < cfg.schedule_evals; ++ev) {
      rhs_eval(comm, c, cfg, tag++, /*use_stage=*/false, 0);
      ++res.rhs_evals;
      mark("rhs-eval");
    }
  } else {
    // Mirror solver::evolve (Algorithm 1) exactly: windows of regrid_every
    // steps, then the regrid synchronization point.
    Real time = 0;
    while (time < cfg.t_end - 1e-12) {
      for (int i = 0; i < cfg.regrid_every && time < cfg.t_end; ++i) {
        // dt from the global finest spacing via allreduce-min of each
        // rank's local minimum — bitwise equal to ctx.suggested_dt().
        std::vector<double> h(cfg.ranks);
        for (auto& rc : c.ranks)
          h[rc->rank()] = rc->local_finest_spacing();
        const Real dt =
            std::min(scfg.cfl * comm.allreduce_min(h), cfg.t_end - time);
        rk4_step(comm, c, cfg, dt, &tag);
        res.rhs_evals += 4;
        time += dt;
        ++res.steps;
        mark("step");
      }
      if (cfg.do_regrid && time < cfg.t_end - 1e-12) {
        // Regrid: gather the state (the host sync point), remesh and
        // transfer replicated and deterministically on every rank, then
        // repartition and scatter.
        obs::ScopedSpan regrid_span("dist::regrid", "dist");
        BssnState full = gather_global(comm, c);
        auto next = solver::regrid_mesh(*c.mesh, full, cfg.regrid);
        if (next) {
          BssnState moved = solver::transfer_state(*c.mesh, full, *next);
          c = make_cohort(std::move(next), scfg, cfg, moved);
          ++res.regrids;
          mark("regrid");
        }
      }
    }
    res.state = gather_global(comm, c);
  }

  res.t_virtual = comm.max_clock();
  res.messages = comm.total_messages();
  res.bytes = comm.total_bytes();
  for (auto& rc : c.ranks) {
    RankReport rep;
    rep.stats = comm.stats(rc->rank());
    rep.owned = rc->owned_octants();
    rep.ghost_octants = rc->maps().ghost_octants.size();
    rep.interior = rc->interior_octants();
    rep.boundary = rc->boundary_octants();
    rep.recv_dofs = rc->maps().recv_dofs();
    res.t_compute_max = std::max(res.t_compute_max, rep.stats.t_compute);
    res.t_comm_exposed_max =
        std::max(res.t_comm_exposed_max, rep.stats.t_comm_exposed);
    res.t_comm_hidden_max =
        std::max(res.t_comm_hidden_max, rep.stats.t_comm_hidden);
    res.ranks.push_back(rep);
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->add("dist.steps", std::uint64_t(res.steps));
    m->add("dist.regrids", std::uint64_t(res.regrids));
    m->add("dist.rhs_evals", std::uint64_t(res.rhs_evals));
    m->add("dist.messages", res.messages);
    m->add("dist.bytes", res.bytes);
    m->set("dist.ranks", double(cfg.ranks));
    m->set("dist.t_virtual", res.t_virtual);
    m->set("dist.t_compute_max", res.t_compute_max);
    m->set("dist.t_comm_exposed_max", res.t_comm_exposed_max);
    m->set("dist.t_comm_hidden_max", res.t_comm_hidden_max);
    const double comm = res.t_comm_exposed_max + res.t_comm_hidden_max;
    if (comm > 0) m->set("dist.comm_hidden_ratio", res.t_comm_hidden_max / comm);
  }
  return res;
}

}  // namespace dgr::dist
