#include "bssn/rhs.hpp"

#include <cmath>

#include "bssn/algebra.hpp"
#include "common/error.hpp"
#include "fd/stencils.hpp"

namespace dgr::bssn {

using mesh::kPad;
using mesh::kPatch;
using mesh::kPatchPts;
using mesh::kR;
using mesh::patch_idx;

DerivWorkspace::DerivWorkspace()
    : grad(static_cast<std::size_t>(kNumVars) * 3 * kPatchPts),
      agrad(static_cast<std::size_t>(kNumVars) * 3 * kPatchPts),
      hess(static_cast<std::size_t>(kSecondDerivVars.size()) * 6 * kPatchPts),
      ko(static_cast<std::size_t>(kNumVars) * kPatchPts),
      scratch(kPatchPts) {}

int hess_slot(int var) {
  for (std::size_t s = 0; s < kSecondDerivVars.size(); ++s)
    if (kSecondDerivVars[s] == var) return static_cast<int>(s);
  return -1;
}

void bssn_deriv_stage(const Real* const in[kNumVars], Real h,
                      DerivWorkspace& ws, OpCounts* counts) {
  // First derivatives (72 evaluations) + upwind advective derivatives.
  for (int v = 0; v < kNumVars; ++v) {
    for (int axis = 0; axis < 3; ++axis) {
      fd::d1(in[v], ws.grad_of(v, axis), axis, h);
      fd::d1_upwind(in[v], in[kBeta0 + axis], ws.agrad_of(v, axis), axis, h);
    }
    // KO dissipation folded over the three axes (the paper counts the 72
    // directional KO derivatives; the combined apply is equivalent work).
    fd::ko_dissipation(in[v], ws.ko_of(v), 1.0, h);  // sigma applied in A
  }
  // Second derivatives (66 evaluations) for the 11 Hessian variables.
  for (std::size_t s = 0; s < kSecondDerivVars.size(); ++s) {
    const int v = kSecondDerivVars[s];
    fd::d2(in[v], ws.hess_of(s, sym_idx(0, 0)), 0, h);
    fd::d2(in[v], ws.hess_of(s, sym_idx(1, 1)), 1, h);
    fd::d2(in[v], ws.hess_of(s, sym_idx(2, 2)), 2, h);
    fd::d2_mixed(in[v], ws.scratch.data(), ws.hess_of(s, sym_idx(0, 1)), 0, 1,
                 h);
    fd::d2_mixed(in[v], ws.scratch.data(), ws.hess_of(s, sym_idx(0, 2)), 0, 2,
                 h);
    fd::d2_mixed(in[v], ws.scratch.data(), ws.hess_of(s, sym_idx(1, 2)), 1, 2,
                 h);
  }
  if (counts) {
    const std::uint64_t pts = kR * kR * kR;
    counts->flops +=
        pts * (kNumVars * 3ull * (fd::kD1Flops + fd::kUpwindFlops) +
               kNumVars * fd::kKoFlops +
               kSecondDerivVars.size() * 6ull * fd::kD2Flops);
    counts->bytes_read += std::uint64_t(kNumVars) * kPatchPts * sizeof(Real);
  }
}

/// Gather the point-local inputs of the algebraic stage from the workspace
/// (the GPU analogue reads these from shared memory / thread-local storage,
/// Fig. 9). Hessian slots are fixed by kSecondDerivVars: alpha=0,
/// beta=1..3, chi=4, gt=5..10.
void bssn_gather_point(const Real* const in[kNumVars], DerivWorkspace& ws,
                       int p, const BssnParams& prm, AlgebraInputs<Real>& q) {
  q.a = in[kAlpha][p];
  q.ch = std::max(in[kChi][p], prm.chi_floor);
  q.Kt = in[kK][p];
  for (int i = 0; i < 3; ++i) {
    q.Gt[i] = in[kGt0 + i][p];
    q.bet[i] = in[kBeta0 + i][p];
    q.Bv[i] = in[kB0 + i][p];
  }
  for (int s = 0; s < 6; ++s) {
    q.gt[s] = in[kGtxx + s][p];
    q.At[s] = in[kAtxx + s][p];
  }
  for (int ax = 0; ax < 3; ++ax) {
    q.d_a[ax] = ws.grad_of(kAlpha, ax)[p];
    q.d_ch[ax] = ws.grad_of(kChi, ax)[p];
    q.d_K[ax] = ws.grad_of(kK, ax)[p];
    for (int i = 0; i < 3; ++i) {
      q.d_b[i][ax] = ws.grad_of(kBeta0 + i, ax)[p];
      q.d_Gt[i][ax] = ws.grad_of(kGt0 + i, ax)[p];
    }
    for (int s = 0; s < 6; ++s) {
      q.d_gt[s][ax] = ws.grad_of(kGtxx + s, ax)[p];
      q.d_At[s][ax] = ws.grad_of(kAtxx + s, ax)[p];
    }
  }
  for (int s6 = 0; s6 < 6; ++s6) {
    q.dd_a[s6] = ws.hess_of(0, s6)[p];
    q.dd_ch[s6] = ws.hess_of(4, s6)[p];
    for (int i = 0; i < 3; ++i) q.dd_b[i][s6] = ws.hess_of(1 + i, s6)[p];
    for (int s = 0; s < 6; ++s) q.dd_gt[s][s6] = ws.hess_of(5 + s, s6)[p];
  }
  for (int v = 0; v < kNumVars; ++v) {
    Real s = 0;
    for (int ax = 0; ax < 3; ++ax) s += q.bet[ax] * ws.agrad_of(v, ax)[p];
    q.ad[v] = s;
    q.ko[v] = ws.ko_of(v)[p];
  }
}

void bssn_algebraic_stage(const Real* const in[kNumVars],
                          Real* const out[kNumVars],
                          const mesh::PatchGeom& geom, Real half_extent,
                          const BssnParams& prm, DerivWorkspace& ws,
                          OpCounts* counts) {
  AlgebraInputs<Real> q;
  const AlgebraParams<Real> aprm{prm.lambda_f0, prm.eta, prm.ko_sigma};
  Real rhs_pt[kNumVars];
  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj)
      for (int ii = kPad; ii < kPad + kR; ++ii) {
        const int p = patch_idx(ii, jj, kk);
        bssn_gather_point(in, ws, p, prm, q);
        bssn_algebra_point(q, aprm, rhs_pt);
        for (int v = 0; v < kNumVars; ++v) out[v][p] = rhs_pt[v];

        // Sommerfeld radiative condition on the outer boundary overwrites
        // the interior RHS (standard moving-puncture practice).
        if (prm.sommerfeld) {
          const Real x = geom.origin[0] + ii * geom.h;
          const Real y = geom.origin[1] + jj * geom.h;
          const Real z = geom.origin[2] + kk * geom.h;
          const Real eps = 1e-9 * half_extent;
          const bool on_boundary = std::abs(std::abs(x) - half_extent) < eps ||
                                   std::abs(std::abs(y) - half_extent) < eps ||
                                   std::abs(std::abs(z) - half_extent) < eps;
          if (on_boundary) {
            const Real r = std::sqrt(x * x + y * y + z * z);
            for (int v = 0; v < kNumVars; ++v) {
              const Real du = (x * ws.grad_of(v, 0)[p] +
                               y * ws.grad_of(v, 1)[p] +
                               z * ws.grad_of(v, 2)[p]) /
                              r;
              out[v][p] = -var_wave_speed(v) *
                          (du + (in[v][p] - var_asymptotic(v)) / r);
            }
          }
        }
      }
  if (counts) {
    counts->flops += std::uint64_t(kR * kR * kR) * kAFlopsPerPoint;
    // A reads the 24 fields + 210 derivatives per point and writes 24
    // outputs (paper Eq. 21b memory accounting).
    counts->bytes_read +=
        std::uint64_t(kR * kR * kR) * (kNumVars * 2 + 210) * sizeof(Real);
    counts->bytes_written +=
        std::uint64_t(kR * kR * kR) * kNumVars * sizeof(Real);
  }
}

void bssn_rhs_patch(const Real* const in[kNumVars], Real* const out[kNumVars],
                    const mesh::PatchGeom& geom, Real half_extent,
                    const BssnParams& params, DerivWorkspace& ws,
                    OpCounts* counts) {
  bssn_deriv_stage(in, geom.h, ws, counts);
  bssn_algebraic_stage(in, out, geom, half_extent, params, ws, counts);
}

}  // namespace dgr::bssn
