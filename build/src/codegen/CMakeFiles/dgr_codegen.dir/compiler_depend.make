# Empty compiler generated dependencies file for dgr_codegen.
# This may be replaced when dependencies are built.
