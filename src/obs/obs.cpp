#include "obs/obs.hpp"

namespace dgr::obs {

namespace {
TraceSession* g_trace = nullptr;
MetricsRegistry* g_metrics = nullptr;
}  // namespace

TraceSession* trace() { return g_trace; }
MetricsRegistry* metrics() { return g_metrics; }
void install_trace(TraceSession* session) { g_trace = session; }
void install_metrics(MetricsRegistry* registry) { g_metrics = registry; }

}  // namespace dgr::obs
