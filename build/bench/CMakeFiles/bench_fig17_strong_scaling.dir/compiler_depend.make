# Empty compiler generated dependencies file for bench_fig17_strong_scaling.
# This may be replaced when dependencies are built.
