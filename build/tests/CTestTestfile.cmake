# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_octree "/root/repo/build/tests/test_octree")
set_tests_properties(test_octree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mesh "/root/repo/build/tests/test_mesh")
set_tests_properties(test_mesh PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fd "/root/repo/build/tests/test_fd")
set_tests_properties(test_fd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bssn "/root/repo/build/tests/test_bssn")
set_tests_properties(test_bssn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_solver "/root/repo/build/tests/test_solver")
set_tests_properties(test_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gw "/root/repo/build/tests/test_gw")
set_tests_properties(test_gw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_codegen "/root/repo/build/tests/test_codegen")
set_tests_properties(test_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simgpu "/root/repo/build/tests/test_simgpu")
set_tests_properties(test_simgpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_evolution_io "/root/repo/build/tests/test_evolution_io")
set_tests_properties(test_evolution_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;dgr_test;/root/repo/tests/CMakeLists.txt;0;")
