# Empty dependencies file for bench_table3_octant_to_patch.
# This may be replaced when dependencies are built.
