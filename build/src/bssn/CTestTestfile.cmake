# CMake generated Testfile for 
# Source directory: /root/repo/src/bssn
# Build directory: /root/repo/build/src/bssn
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
