#include "bssn/constraints.hpp"

#include <cmath>

#include "bssn/state.hpp"
#include "common/error.hpp"

namespace dgr::bssn {

using mesh::kPad;
using mesh::kPatchPts;
using mesh::kR;
using mesh::patch_idx;

namespace {

void sym_inverse(const Real g[6], Real inv[6]) {
  const Real a = g[0], b = g[1], c = g[2], d = g[3], e = g[4], f = g[5];
  const Real det =
      a * (d * f - e * e) - b * (b * f - e * c) + c * (b * e - d * c);
  const Real idet = 1.0 / det;
  inv[0] = (d * f - e * e) * idet;
  inv[1] = (c * e - b * f) * idet;
  inv[2] = (b * e - c * d) * idet;
  inv[3] = (a * f - c * c) * idet;
  inv[4] = (b * c - a * e) * idet;
  inv[5] = (a * d - b * b) * idet;
}

}  // namespace

void bssn_constraints_patch(const Real* const in[kNumVars],
                            const mesh::PatchGeom& geom,
                            const BssnParams& prm, DerivWorkspace& ws,
                            Real* ham, Real* mom, bool run_derivs) {
  if (run_derivs) bssn_deriv_stage(in, geom.h, ws, nullptr);

  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj)
      for (int ii = kPad; ii < kPad + kR; ++ii) {
        const int p = patch_idx(ii, jj, kk);
        const Real ch = std::max(in[kChi][p], prm.chi_floor);
        const Real Kt = in[kK][p];
        Real gt[6], At[6], gtu[6];
        for (int s = 0; s < 6; ++s) {
          gt[s] = in[kGtxx + s][p];
          At[s] = in[kAtxx + s][p];
        }
        sym_inverse(gt, gtu);
        auto GTU = [&](int i, int j) { return gtu[sym_idx(i, j)]; };
        auto GT = [&](int i, int j) { return gt[sym_idx(i, j)]; };
        auto ATl = [&](int i, int j) { return At[sym_idx(i, j)]; };

        Real d_ch[3], d_K[3], Gt[3];
        for (int a = 0; a < 3; ++a) {
          d_ch[a] = ws.grad_of(kChi, a)[p];
          d_K[a] = ws.grad_of(kK, a)[p];
          Gt[a] = in[kGt0 + a][p];
        }
        auto DGT = [&](int i, int j, int k) {
          return ws.grad_of(kGtxx + sym_idx(i, j), k)[p];
        };
        auto DAT = [&](int i, int j, int k) {
          return ws.grad_of(kAtxx + sym_idx(i, j), k)[p];
        };
        auto DDCH = [&](int i, int j) {
          return ws.hess_of(hess_slot(kChi), sym_idx(i, j))[p];
        };
        auto DDGT = [&](int i, int j, int l, int m) {
          return ws.hess_of(hess_slot(kGtxx + sym_idx(i, j)),
                            sym_idx(l, m))[p];
        };
        auto DGTV = [&](int i, int j) {  // d Gt^i / dx^j
          return ws.grad_of(kGt0 + i, j)[p];
        };

        auto C1LOW = [&](int i, int j, int k) {
          return 0.5 * (DGT(i, j, k) + DGT(i, k, j) - DGT(j, k, i));
        };
        Real C1[3][6];
        for (int k = 0; k < 3; ++k)
          for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
              Real s = 0;
              for (int l = 0; l < 3; ++l) s += GTU(k, l) * C1LOW(l, i, j);
              C1[k][sym_idx(i, j)] = s;
            }
        auto C1R = [&](int k, int i, int j) { return C1[k][sym_idx(i, j)]; };

        // At^i_j, At^ij, At_ij At^ij.
        Real AtUD[3][3];
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) {
            Real s = 0;
            for (int l = 0; l < 3; ++l) s += GTU(i, l) * ATl(l, j);
            AtUD[i][j] = s;
          }
        Real AtUU[6];
        for (int i = 0; i < 3; ++i)
          for (int j = i; j < 3; ++j) {
            Real s = 0;
            for (int l = 0; l < 3; ++l) s += AtUD[i][l] * GTU(l, j);
            AtUU[sym_idx(i, j)] = s;
          }
        auto ATU = [&](int i, int j) { return AtUU[sym_idx(i, j)]; };
        Real aTa = 0;
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) aTa += ATl(i, j) * ATU(i, j);

        // Ricci (same algebra as the RHS kernel).
        Real Ric[6];
        {
          Real tr = 0;
          for (int k = 0; k < 3; ++k)
            for (int l = 0; l < 3; ++l)
              tr += GTU(k, l) *
                    (DDCH(k, l) - (3.0 / (2.0 * ch)) * d_ch[k] * d_ch[l]);
          for (int m = 0; m < 3; ++m) tr -= Gt[m] * d_ch[m];
          for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
              Real t1 = 0;
              for (int l = 0; l < 3; ++l)
                for (int m = 0; m < 3; ++m) t1 += GTU(l, m) * DDGT(i, j, l, m);
              t1 *= -0.5;
              Real t2 = 0;
              for (int k = 0; k < 3; ++k)
                t2 += GT(k, i) * DGTV(k, j) + GT(k, j) * DGTV(k, i);
              t2 *= 0.5;
              Real t3 = 0;
              for (int k = 0; k < 3; ++k)
                t3 += Gt[k] * (C1LOW(i, j, k) + C1LOW(j, i, k));
              t3 *= 0.5;
              Real t4 = 0;
              for (int l = 0; l < 3; ++l)
                for (int m = 0; m < 3; ++m) {
                  const Real g = GTU(l, m);
                  Real s = 0;
                  for (int k = 0; k < 3; ++k)
                    s += C1R(k, l, i) * C1LOW(j, k, m) +
                         C1R(k, l, j) * C1LOW(i, k, m) +
                         C1R(k, i, m) * C1LOW(k, l, j);
                  t4 += g * s;
                }
              Real Qij = DDCH(i, j);
              for (int k = 0; k < 3; ++k) Qij -= C1R(k, i, j) * d_ch[k];
              const Real Mij =
                  Qij / (2.0 * ch) - d_ch[i] * d_ch[j] / (4.0 * ch * ch);
              Ric[sym_idx(i, j)] =
                  t1 + t2 + t3 + t4 + Mij + GT(i, j) * tr / (2.0 * ch);
            }
        }
        Real Rscal = 0;
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) Rscal += GTU(i, j) * Ric[sym_idx(i, j)];
        Rscal *= ch;  // physical gamma^ij = chi gtu^ij

        ham[p] = Rscal + (2.0 / 3.0) * Kt * Kt - aTa;

        // Momentum: M^i = dj At^ij + C1^i_jk At^jk - 3/(2chi) At^ij dj chi
        //                 - 2/3 gtu^ij dj K,  with
        // dj At^ij = gtu^ik gtu^jl dj At_kl - (gtu^ia gtu^kb dj gt_ab) gtu^jl
        //            At_kl - gtu^ik (gtu^ja gtu^lb dj gt_ab) At_kl.
        for (int i = 0; i < 3; ++i) {
          Real s = 0;
          for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k)
              for (int l = 0; l < 3; ++l) {
                s += GTU(i, k) * GTU(j, l) * DAT(k, l, j);
                // derivative of the inverse metrics
                Real dgtu_ik = 0, dgtu_jl = 0;
                for (int a = 0; a < 3; ++a)
                  for (int b = 0; b < 3; ++b) {
                    dgtu_ik -= GTU(i, a) * GTU(k, b) * DGT(a, b, j);
                    dgtu_jl -= GTU(j, a) * GTU(l, b) * DGT(a, b, j);
                  }
                s += dgtu_ik * GTU(j, l) * ATl(k, l);
                s += GTU(i, k) * dgtu_jl * ATl(k, l);
              }
          for (int j = 0; j < 3; ++j)
            for (int k = 0; k < 3; ++k) s += C1R(i, j, k) * ATU(j, k);
          for (int j = 0; j < 3; ++j) {
            s -= (3.0 / (2.0 * ch)) * ATU(i, j) * d_ch[j];
            s -= (2.0 / 3.0) * GTU(i, j) * d_K[j];
          }
          mom[i * kPatchPts + p] = s;
        }
      }
}

ConstraintNorms compute_constraint_norms(
    const mesh::Mesh& mesh, const BssnState& state, const BssnParams& params,
    const std::vector<std::array<Real, 3>>& excise_centers,
    Real excise_radius) {
  const auto in = state.cptrs();
  const std::size_t noct = mesh.num_octants();
  std::vector<Real> patches(kNumVars * kPatchPts);
  std::vector<Real> ham(kPatchPts), mom(3 * kPatchPts);
  DerivWorkspace ws;
  ConstraintNorms norms;
  Real ham_sq = 0, mom_sq = 0;
  std::size_t npts = 0;

  for (OctIndex e = 0; e < static_cast<OctIndex>(noct); ++e) {
    mesh.unzip(in.data(), kNumVars, e, e + 1, patches.data());
    const Real* pin[kNumVars];
    for (int v = 0; v < kNumVars; ++v) pin[v] = &patches[v * kPatchPts];
    const mesh::PatchGeom geom = mesh.patch_geom(e);
    bssn_constraints_patch(pin, geom, params, ws, ham.data(), mom.data());
    for (int kk = kPad; kk < kPad + kR; ++kk)
      for (int jj = kPad; jj < kPad + kR; ++jj)
        for (int ii = kPad; ii < kPad + kR; ++ii) {
          const Real x = geom.origin[0] + ii * geom.h;
          const Real y = geom.origin[1] + jj * geom.h;
          const Real z = geom.origin[2] + kk * geom.h;
          bool excised = false;
          for (const auto& c : excise_centers) {
            const Real dx = x - c[0], dy = y - c[1], dz = z - c[2];
            if (dx * dx + dy * dy + dz * dz < excise_radius * excise_radius)
              excised = true;
          }
          if (excised) continue;
          const int p = patch_idx(ii, jj, kk);
          const Real h2 = ham[p] * ham[p];
          Real m2 = 0;
          for (int i = 0; i < 3; ++i)
            m2 += mom[i * kPatchPts + p] * mom[i * kPatchPts + p];
          ham_sq += h2;
          mom_sq += m2;
          norms.ham_linf = std::max(norms.ham_linf, std::abs(ham[p]));
          norms.mom_linf = std::max(norms.mom_linf, std::sqrt(m2));
          ++npts;
        }
  }
  if (npts > 0) {
    norms.ham_l2 = std::sqrt(ham_sq / npts);
    norms.mom_l2 = std::sqrt(mom_sq / npts);
  }
  return norms;
}

}  // namespace dgr::bssn
