#pragma once
/// \file exec_space.hpp
/// \brief dgr::exec_space — the unified execution-space layer.
///
/// One kernel body per sweep, instantiated per backend. An ExecSpace is a
/// cheap value describing *where* a data-parallel sweep runs; the sweep
/// itself is written once against range_for / team_for / reduce and never
/// names a backend. Three backends exist:
///
///   backend   | execution engine            | instrumentation
///   ----------+-----------------------------+---------------------------
///   kSerial   | caller thread, chunk order  | OpCounts slots only
///   kPool     | src/exec work-stealing pool | OpCounts slots + worker
///             | (exec::for_each_chunk)      | trace spans (spec.label)
///   kSimGpu   | simgpu GpuRuntime::         | OpCounts slots + kernel
///             | launch_range                | records, modeled time,
///             |                             | ScopedSpan, gpu.* metrics
///
/// Determinism is enforced here, in exactly one place: every backend
/// partitions [0, n) into the same fixed grain-based chunks (a function of
/// the problem only — see exec/parallel.hpp), per-chunk OpCounts land in
/// slots indexed by chunk, and slots are merged in chunk order. reduce()
/// combines per-chunk values in the same fixed pairwise tree as
/// exec::parallel_reduce. Consequently every sweep is bitwise identical
/// across backends, thread counts, and scheduling — the contract pinned by
/// tests/test_exec_space.cpp's backend-equivalence matrix.
///
/// Per-chunk OpCounts slots for the host backends come from a ScratchArena
/// (zero steady-state heap allocations, like launch_range's); the simgpu
/// backend delegates to GpuRuntime::launch_range, which owns its arena,
/// kernel records, and ScopedSpan/flight-recorder instrumentation.
///
/// The inner-loop vector policy plugs the dgr::simd pack layer in:
/// VectorPolicy carries the SIMD dispatch width (0 = the runtime DGR_SIMD
/// width) and team_for hands it to kernel bodies through TeamMember, so a
/// kernel's vector width is a property of the space it runs in, not of the
/// kernel body.
///
/// The DGR_EXEC_SPACE environment knob (strict: serial|pool|simgpu)
/// overrides the backend returned by ExecSpace::host(), which every host
/// solver path uses by default — the lever the CI determinism matrix pulls
/// to prove backend equivalence end to end.

#include <cstdint>
#include <vector>

#include "common/counters.hpp"
#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "simd/simd.hpp"
#include "simgpu/runtime.hpp"

namespace dgr::exec_space {

enum class Backend { kSerial = 0, kPool = 1, kSimGpu = 2 };

const char* backend_name(Backend b);

/// Strict backend keyword parse (serial|pool|simgpu); anything else throws
/// dgr::Error naming `what`.
Backend parse_backend(const char* s, const char* what);

/// The DGR_EXEC_SPACE override, read strictly on every call (unset =
/// kPool). Garbage throws instead of silently running on the default.
Backend backend_from_env();

/// backend_from_env(), read once and cached — the backend ExecSpace::host()
/// binds for the rest of the process.
Backend default_backend();

/// Patch-block element offset of (octant-in-chunk o, variable v) with nvar
/// variables of npts points each: [o][v][p], x fastest — the layout
/// mesh::unzip/zip produce and consume. Shared by every current backend
/// (the simulated device executes on the host).
constexpr std::size_t patch_offset(std::int64_t o, int v, std::size_t nvar,
                                   std::size_t npts) {
  return (static_cast<std::size_t>(o) * nvar + static_cast<std::size_t>(v)) *
         npts;
}

/// Per-backend memory-layout traits. Kernel authors index patch blocks and
/// state fields through these instead of hard-coding an order, so a future
/// device backend can flip the layout without touching kernel bodies.
template <Backend B>
struct layout_traits {
  /// Whether inner loops should prefer structure-of-arrays register
  /// blocking (a real GPU wants coalesced SoA access; the host backends
  /// stream AoS patch blocks cache-linearly). Advisory: the simulated
  /// device executes on the host, so today every backend shares the host
  /// layout and the trait only steers vectorization strategy.
  static constexpr bool prefers_soa = (B == Backend::kSimGpu);
  /// The backend's patch-block offset (today: the shared host layout).
  static constexpr std::size_t patch_offset(std::int64_t o, int v,
                                            std::size_t nvar,
                                            std::size_t npts) {
    return exec_space::patch_offset(o, v, nvar, npts);
  }
};

/// Runtime mirror of layout_traits for code that holds a Backend value.
struct Layout {
  bool prefers_soa = false;
};
Layout layout_of(Backend b);

/// Identity of one launch: the simgpu kernel-record name plus the host
/// trace label (worker spans), with the block/stream accounting the device
/// model prices. Host backends ignore blocks/stream.
struct LaunchSpec {
  const char* name = "kernel";  ///< simgpu kernel-record name
  const char* label = nullptr;  ///< host worker-span label (null = no span)
  std::uint64_t blocks = 0;     ///< simgpu accounting only
  int stream = 0;               ///< simgpu stream (0 = sync pipeline)
};

/// Inner-loop vector policy: the dgr::simd pack width kernel bodies
/// dispatch on. 0 defers to the runtime DGR_SIMD width at the kernel-body
/// level (simd_active_width), 1 forces scalar, 4 forces 4-wide packs.
/// Results are bitwise identical at every width.
struct VectorPolicy {
  int width = 0;
};

/// Handle a team_for body receives: the executing lane (index for per-lane
/// scratch such as derivative workspaces) and the space's vector policy.
class TeamMember {
 public:
  TeamMember(int lane, int vector_width)
      : lane_(lane), vector_width_(vector_width) {}
  /// Executing lane in [0, ExecSpace::max_lanes()): stable for the whole
  /// team (chunk), distinct across concurrently running teams.
  int lane() const { return lane_; }
  /// The space's inner-loop vector width (see VectorPolicy).
  int vector_width() const { return vector_width_; }

 private:
  int lane_;
  int vector_width_;
};

namespace detail {

/// Per-chunk OpCounts slots for the host backends, served from a
/// thread-local ScratchArena so a steady-state sweep loop performs zero
/// heap allocations; falls back to the heap when a kernel body (illegally
/// but survivably) nests another sweep on the same thread.
class HostSlots {
 public:
  explicit HostSlots(std::size_t n);
  ~HostSlots();
  HostSlots(const HostSlots&) = delete;
  HostSlots& operator=(const HostSlots&) = delete;
  OpCounts* data() { return data_; }

 private:
  OpCounts* data_;
  bool from_arena_;
  std::vector<OpCounts> fallback_;
};

}  // namespace detail

/// A backend handle: copyable, trivially cheap, safe to hold by value. The
/// simgpu flavor borrows its GpuRuntime (the runtime must outlive the
/// space).
class ExecSpace {
 public:
  /// Default: the work-stealing pool (the common host backend).
  ExecSpace() : ExecSpace(Backend::kPool, nullptr) {}

  static ExecSpace serial() { return ExecSpace(Backend::kSerial, nullptr); }
  static ExecSpace pool() { return ExecSpace(Backend::kPool, nullptr); }
  static ExecSpace simgpu(dgr::simgpu::GpuRuntime& rt) {
    return ExecSpace(Backend::kSimGpu, &rt);
  }
  /// The process-default host space, honoring the DGR_EXEC_SPACE override.
  /// Under DGR_EXEC_SPACE=simgpu each driver thread gets its own
  /// accounting GpuRuntime (launch bookkeeping is single-driver, and
  /// concurrent drivers — ensemble runners, dist ranks — must not share
  /// kernel records).
  static ExecSpace host();

  Backend backend() const { return backend_; }
  /// The backing runtime (non-null iff backend() == kSimGpu).
  dgr::simgpu::GpuRuntime* runtime() const { return rt_; }
  Layout layout() const { return layout_of(backend_); }

  VectorPolicy vector_policy() const { return vp_; }
  void set_vector_policy(VectorPolicy vp) { vp_ = vp; }

  /// Sizing bound for per-lane scratch arrays indexed by TeamMember::lane.
  int max_lanes() const { return exec::lanes(); }

  /// Run body(chunk_begin, chunk_end, OpCounts&) over the fixed grain-based
  /// chunks of [0, n). Per-chunk counts land in slots indexed by chunk and
  /// are merged in chunk order into *counts (when non-null) — and, on the
  /// simgpu backend, into the named kernel's record and modeled time.
  /// Chunks must write disjoint outputs.
  template <class Body>
  void range_for(const LaunchSpec& spec, std::int64_t n, std::int64_t grain,
                 OpCounts* counts, Body&& body) const {
    if (backend_ == Backend::kSimGpu) {
      rt_->launch_range(spec.name, spec.blocks, spec.stream, n, grain, body,
                        counts);
      return;
    }
    if (grain < 1) grain = 1;
    const std::int64_t nc = exec::num_chunks(0, n, grain);
    if (nc == 0) return;
    detail::HostSlots slots(static_cast<std::size_t>(nc));
    OpCounts* sp = slots.data();
    if (backend_ == Backend::kSerial) {
      for (std::int64_t c = 0; c < nc; ++c)
        body(c * grain, std::min<std::int64_t>(n, (c + 1) * grain), sp[c]);
    } else {
      exec::for_each_chunk(
          0, n, grain,
          [&](std::int64_t c, std::int64_t b, std::int64_t e) {
            body(b, e, sp[c]);
          },
          spec.label);
    }
    if (counts)
      for (std::int64_t c = 0; c < nc; ++c) *counts += sp[c];
  }

  /// Hierarchical flavor: body(TeamMember&, chunk_begin, chunk_end,
  /// OpCounts&) — one team per chunk, with the executing lane and the
  /// space's vector policy delivered through the member handle.
  template <class Body>
  void team_for(const LaunchSpec& spec, std::int64_t n, std::int64_t grain,
                OpCounts* counts, Body&& body) const {
    const int vw = vp_.width;
    range_for(spec, n, grain, counts,
              [&body, vw](std::int64_t b, std::int64_t e, OpCounts& c) {
                TeamMember member(exec::this_lane(), vw);
                body(member, b, e, c);
              });
  }

  /// Deterministic reduction: body(chunk_begin, chunk_end) -> T per fixed
  /// chunk, combined by join in a fixed pairwise tree over the chunk slots
  /// — bitwise independent of backend and thread count. `identity` seeds
  /// empty ranges. On the simgpu backend the sweep is recorded as a kernel
  /// launch (bodies may charge no counts; pass a spec with blocks for the
  /// model).
  template <class T, class Body, class Join>
  T reduce(const LaunchSpec& spec, std::int64_t n, std::int64_t grain,
           T identity, Body&& body, Join&& join) const {
    if (grain < 1) grain = 1;
    const std::int64_t nc = exec::num_chunks(0, n, grain);
    if (nc == 0) return identity;
    std::vector<T> slot(static_cast<std::size_t>(nc), identity);
    switch (backend_) {
      case Backend::kSerial:
        for (std::int64_t c = 0; c < nc; ++c)
          slot[static_cast<std::size_t>(c)] =
              body(c * grain, std::min<std::int64_t>(n, (c + 1) * grain));
        break;
      case Backend::kPool:
        exec::for_each_chunk(
            0, n, grain,
            [&](std::int64_t c, std::int64_t b, std::int64_t e) {
              slot[static_cast<std::size_t>(c)] = body(b, e);
            },
            spec.label);
        break;
      case Backend::kSimGpu:
        rt_->launch_range(spec.name, spec.blocks, spec.stream, n, grain,
                          [&](std::int64_t b, std::int64_t e, OpCounts&) {
                            slot[static_cast<std::size_t>(b / grain)] =
                                body(b, e);
                          });
        break;
    }
    // Fixed pairwise tree over chunk order — identical to
    // exec::parallel_reduce: (s0+s1)+(s2+s3)+...
    for (std::int64_t width = nc; width > 1; width = (width + 1) / 2) {
      for (std::int64_t i = 0; 2 * i < width; ++i)
        slot[static_cast<std::size_t>(i)] =
            (2 * i + 1 < width)
                ? join(slot[static_cast<std::size_t>(2 * i)],
                       slot[static_cast<std::size_t>(2 * i + 1)])
                : slot[static_cast<std::size_t>(2 * i)];
    }
    return slot[0];
  }

 private:
  ExecSpace(Backend b, dgr::simgpu::GpuRuntime* rt) : backend_(b), rt_(rt) {}

  Backend backend_;
  dgr::simgpu::GpuRuntime* rt_;
  VectorPolicy vp_;
};

}  // namespace dgr::exec_space
