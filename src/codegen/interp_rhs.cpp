#include "codegen/interp_rhs.hpp"

#include "codegen/bssn_graph.hpp"

namespace dgr::codegen {

using bssn::kNumVars;
using mesh::kPad;
using mesh::kR;
using mesh::patch_idx;

void bssn_rhs_patch_interp(const Real* const in[kNumVars],
                           Real* const out[kNumVars],
                           const mesh::PatchGeom& geom,
                           const bssn::BssnParams& params,
                           bssn::DerivWorkspace& ws,
                           const CompiledKernel& kernel, OpCounts* counts) {
  bssn_deriv_stage(in, geom.h, ws, counts);
  static const int n_inputs = bssn_algebra_num_inputs();
  std::vector<Real> packed(n_inputs);
  bssn::AlgebraInputs<Real> q;
  Real rhs_pt[kNumVars];
  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj)
      for (int ii = kPad; ii < kPad + kR; ++ii) {
        const int p = patch_idx(ii, jj, kk);
        bssn::bssn_gather_point(in, ws, p, params, q);
        pack_algebra_inputs(q, packed.data());
        kernel.run(packed.data(), rhs_pt);
        for (int v = 0; v < kNumVars; ++v) out[v][p] = rhs_pt[v];
      }
  if (counts) {
    counts->flops += std::uint64_t(kR * kR * kR) * kernel.stats().num_ops;
    counts->bytes_read += std::uint64_t(kR * kR * kR) *
                          (kNumVars * 2 + 210) * sizeof(Real);
    counts->bytes_written +=
        std::uint64_t(kR * kR * kR) * kNumVars * sizeof(Real);
    counts->shared_bytes +=
        std::uint64_t(kR * kR * kR) * (kernel.stats().spill_load_bytes +
                                       kernel.stats().spill_store_bytes);
  }
}

}  // namespace dgr::codegen
