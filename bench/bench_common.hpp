#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the per-table / per-figure benchmark harness.
/// Every bench prints the paper's reported values next to our measured or
/// modeled values; EXPERIMENTS.md records the comparison. Grids are scaled
/// down to single-core scale (see DESIGN.md, "Scaled-down experiment
/// parameters") — shapes and ratios are the reproduction target, not
/// absolute numbers.

#include <cstdio>
#include <memory>
#include <string>

#include "bssn/initial_data.hpp"
#include "mesh/mesh.hpp"
#include "octree/refinement.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  [note] %s\n", text.c_str());
}

/// The Table III adaptivity grids m1..m5 as meshes.
inline std::shared_ptr<mesh::Mesh> adaptivity_mesh(int family) {
  oct::Domain dom{400.0};
  return std::make_shared<mesh::Mesh>(oct::build_adaptivity_grid(dom, family),
                                      dom);
}

/// A scaled-down binary-black-hole mesh: two punctures separated by `sep`
/// on a domain of half-extent `half`, cascaded to `finest` levels.
inline std::shared_ptr<mesh::Mesh> bbh_mesh(Real q, Real half, Real sep,
                                            int base_level, int finest) {
  const Real m1 = q / (1 + q), m2 = 1 / (1 + q);
  std::vector<oct::Puncture> ps = {
      {{sep * m2, 0.011, 0.007}, finest},
      {{-sep * m1, 0.011, 0.007}, finest},
  };
  oct::Domain dom{half};
  return std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(dom, ps, base_level), dom);
}

/// Initialize a solver state with a scaled BBH configuration.
inline void init_bbh_state(const mesh::Mesh& m, Real q, Real sep,
                           bssn::BssnState& state) {
  auto bhs = bssn::make_binary(q, sep);
  // Keep punctures slightly off the x-axis grid line, as in bbh_mesh.
  for (auto& b : bhs) {
    b.pos[1] = 0.011;
    b.pos[2] = 0.007;
  }
  bssn::set_punctures(m, bhs, state);
}

}  // namespace dgr::bench
