#include "perf/machine_model.hpp"

#include <vector>

#include "common/timer.hpp"

namespace dgr::perf {

MachineModel a100() {
  // Parameters straight from §III-D of the paper.
  return {"NVIDIA A100", 1.0e-13, 6.4e-13, 40.0e6, 27.0e6, 0.25, 25.0e9};
}

MachineModel epyc7763_node() {
  // 128 Zen3 cores @ ~2.45 GHz sustained, 2x 8-channel DDR4-3200:
  // ~3.5 TFlop/s DP, ~400 GB/s.
  return {"2x AMD EPYC 7763", 1.0 / 3.5e12, 1.0 / 400.0e9, 512.0e6, 16.0e6,
          0.25, 0};
}

MachineModel frontera_node() {
  // 2x Intel Xeon Platinum 8280 (56 cores): ~3.1 TFlop/s DP, ~140 GB/s.
  return {"Frontera CLX node", 1.0 / 3.1e12, 1.0 / 140.0e9, 77.0e6, 8.0e6,
          0.25, 0};
}

namespace {

/// One-shot microbenchmarks: a dependent-FMA loop for tau_f and a large
/// array triad sweep for tau_m.
MachineModel measure_host() {
  MachineModel m;
  m.name = "calibrated host";
  m.cache_l2 = 8.0e6;
  m.cache_reg = 2.0e3;
  m.ell = 0.25;
  m.h2d_bw = 0;
  {
    // Independent chains so the core's FMA pipes are busy.
    volatile double sink;
    double a0 = 1.0, a1 = 1.1, a2 = 1.2, a3 = 1.3;
    const double b = 1.0000001, c = 1e-9;
    const int iters = 4'000'000;
    WallTimer t;
    for (int i = 0; i < iters; ++i) {
      a0 = a0 * b + c;
      a1 = a1 * b + c;
      a2 = a2 * b + c;
      a3 = a3 * b + c;
    }
    sink = a0 + a1 + a2 + a3;
    (void)sink;
    m.tau_f = t.seconds() / (8.0 * iters);  // 2 flops x 4 chains
  }
  {
    const std::size_t n = 8'000'000;  // 64 MB per array: beats the caches
    std::vector<double> x(n, 1.0), y(n, 2.0);
    WallTimer t;
    double s = 0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = y[i] + 0.5 * x[i];
      s += y[i];
    }
    volatile double sink = s;
    (void)sink;
    m.tau_m = t.seconds() / (3.0 * n * sizeof(double));  // 2 reads + 1 write
  }
  return m;
}

}  // namespace

MachineModel calibrated_host() {
  static const MachineModel m = measure_host();
  return m;
}

}  // namespace dgr::perf
