file(REMOVE_RECURSE
  "libdgr_common.a"
)
