#pragma once
/// \file metrics.hpp
/// \brief MetricsRegistry: named counters (monotonic uint64), gauges
/// (last-value double), summaries (count/sum/min/max of observations), and
/// log-scale histograms (obs::Histogram, with p50/p90/p99/p999 quantile
/// queries), with a deterministic JSON snapshot writer and a
/// Prometheus-style text exposition. The solver, the simulated GPU
/// runtime, the distributed engine, and the waveform service feed a
/// registry installed via obs::install_metrics(); benches snapshot it into
/// BENCH_<name>.json and the live daemon serves prometheus() on METRICS.
///
/// Thread safety: all mutators and readers are guarded by one internal
/// mutex, so instrumented code may feed the registry from pool workers
/// (src/exec) concurrently. Every accessor returns BY VALUE — snapshot()
/// copies whole maps under the lock — so no caller ever holds a reference
/// into the registry across concurrent mutation (the by-reference map
/// accessors of the first obs version are gone).
///
/// Wall-clock timing histograms are opt-in (enable_timing): histograms of
/// measured durations are inherently nondeterministic, and the
/// cross-thread-count determinism tests compare whole json() snapshots.
/// Long-lived registries (the serve daemon, the bench reporter) enable
/// them; histograms of deterministic values (virtual-clock comm times) are
/// recorded unconditionally.

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/histogram.hpp"

namespace dgr::obs {

class MetricsRegistry {
 public:
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    double mean() const { return count ? sum / double(count) : 0.0; }
  };

  /// One coherent by-value copy of everything in the registry.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Summary> summaries;
    std::map<std::string, Histogram> histograms;
  };

  /// Counter: monotonically increasing by `n`.
  void add(const std::string& name, std::uint64_t n = 1) {
    std::lock_guard<std::mutex> lk(m_);
    counters_[name] += n;
  }
  /// Gauge: last value wins.
  void set(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(m_);
    gauges_[name] = v;
  }
  /// Summary: record one observation.
  void observe(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(m_);
    Summary& s = summaries_[name];
    s.count += 1;
    s.sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }
  /// Histogram: record one observation into the log-scale buckets.
  void observe_hist(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(m_);
    histograms_[name].observe(v);
  }

  /// Opt in to wall-clock timing histograms (see file comment). The flag
  /// gates obs::observe_hist_timing(), not observe_hist().
  void enable_timing(bool on) {
    std::lock_guard<std::mutex> lk(m_);
    timing_ = on;
  }
  bool timing_enabled() const {
    std::lock_guard<std::mutex> lk(m_);
    return timing_;
  }

  std::uint64_t counter(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  bool has_gauge(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    return gauges_.count(name) > 0;
  }
  double gauge(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  /// By-value summary lookup; empty optional when never observed.
  std::optional<Summary> summary(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = summaries_.find(name);
    if (it == summaries_.end()) return std::nullopt;
    return it->second;
  }
  /// By-value histogram lookup; empty optional when never observed.
  std::optional<Histogram> histogram(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return std::nullopt;
    return it->second;
  }

  /// One coherent by-value copy of all four maps, taken under the lock:
  /// safe to iterate while other threads keep mutating the registry.
  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lk(m_);
    return Snapshot{counters_, gauges_, summaries_, histograms_};
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(m_);
    return counters_.empty() && gauges_.empty() && summaries_.empty() &&
           histograms_.empty();
  }
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    counters_.clear();
    gauges_.clear();
    summaries_.clear();
    histograms_.clear();
  }

  /// Snapshot as a JSON object (sorted by name within each kind):
  /// {"counters":{...},"gauges":{...},"summaries":{"x":{"count":...}},
  ///  "histograms":{"y":{"count":...,"p50":...}}}
  std::string json() const;
  /// Write json() to `path`; returns false if the file cannot be written.
  bool write_file(const std::string& path) const;

  /// Prometheus-style text exposition of the whole registry: counters and
  /// gauges as single samples, summaries as _count/_sum/_min/_max, and
  /// histograms as quantile series:
  ///   dgr_serve_latency_us_mem{quantile="0.99"} 57.5
  /// Metric names are prefixed "dgr_" and sanitized ([^a-zA-Z0-9_] -> '_').
  std::string prometheus() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, Histogram> histograms_;
  bool timing_ = false;
};

}  // namespace dgr::obs
