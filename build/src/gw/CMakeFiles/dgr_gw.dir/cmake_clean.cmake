file(REMOVE_RECURSE
  "CMakeFiles/dgr_gw.dir/extract.cpp.o"
  "CMakeFiles/dgr_gw.dir/extract.cpp.o.d"
  "CMakeFiles/dgr_gw.dir/psi4.cpp.o"
  "CMakeFiles/dgr_gw.dir/psi4.cpp.o.d"
  "CMakeFiles/dgr_gw.dir/quadrature.cpp.o"
  "CMakeFiles/dgr_gw.dir/quadrature.cpp.o.d"
  "CMakeFiles/dgr_gw.dir/strain.cpp.o"
  "CMakeFiles/dgr_gw.dir/strain.cpp.o.d"
  "CMakeFiles/dgr_gw.dir/swsh.cpp.o"
  "CMakeFiles/dgr_gw.dir/swsh.cpp.o.d"
  "libdgr_gw.a"
  "libdgr_gw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_gw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
