# Empty compiler generated dependencies file for bench_fig16_rk4_cpu_gpu.
# This may be replaced when dependencies are built.
