file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_codegen_spills.dir/bench_table2_codegen_spills.cpp.o"
  "CMakeFiles/bench_table2_codegen_spills.dir/bench_table2_codegen_spills.cpp.o.d"
  "bench_table2_codegen_spills"
  "bench_table2_codegen_spills.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_codegen_spills.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
