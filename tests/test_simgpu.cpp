/// \file test_simgpu.cpp
/// \brief Simulated-GPU runtime tests: kernel/transfer/memory accounting,
/// the Algorithm 1 device pipeline agreeing exactly with the CPU solver,
/// arithmetic-intensity bounds from §IV-A, and async-stream semantics.

#include <gtest/gtest.h>

#include <memory>

#include "bssn/initial_data.hpp"
#include "simgpu/gpu_bssn.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::simgpu {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

std::shared_ptr<Mesh> puncture_mesh() {
  Domain dom{8.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.01}, 4}}, 2), dom);
}

TEST(Runtime, KernelRecordsAccumulate) {
  GpuRuntime rt;
  rt.launch("k1", 10, 0, [](OpCounts& c) { c.flops = 100; });
  rt.launch("k1", 10, 0, [](OpCounts& c) { c.flops = 50; });
  rt.launch("k2", 5, 1, [](OpCounts& c) { c.bytes_read = 800; });
  EXPECT_EQ(rt.record("k1").launches, 2);
  EXPECT_EQ(rt.record("k1").blocks, 20u);
  EXPECT_EQ(rt.record("k1").counts.flops, 150u);
  EXPECT_EQ(rt.record("k2").stream, 1);
}

TEST(Runtime, ResetCountersKeepsLiveAllocationState) {
  GpuRuntime rt;
  rt.device_alloc(100);
  rt.device_alloc(50);
  rt.device_free(60);
  rt.h2d(1000);
  rt.d2h(500);
  rt.launch("k", 1, 0, [](OpCounts& c) { c.flops = 10; });
  EXPECT_EQ(rt.allocated_bytes(), 90u);
  EXPECT_EQ(rt.peak_bytes(), 150u);

  rt.reset_counters();
  // Counters cleared: kernel records, transfer bytes.
  EXPECT_FALSE(rt.has_kernel("k"));
  EXPECT_TRUE(rt.records().empty());
  EXPECT_EQ(rt.h2d_bytes(), 0u);
  EXPECT_EQ(rt.d2h_bytes(), 0u);
  EXPECT_EQ(rt.transfer_seconds(), 0.0);
  EXPECT_EQ(rt.modeled_total_seconds(true), 0.0);
  // Live allocation state untouched; the high-water mark restarts from it.
  EXPECT_EQ(rt.allocated_bytes(), 90u);
  EXPECT_EQ(rt.peak_bytes(), 90u);

  // A new high-water mark grows from the surviving allocation.
  rt.device_alloc(30);
  EXPECT_EQ(rt.peak_bytes(), 120u);
}

TEST(Runtime, AsyncStreamExcludedFromCriticalPath) {
  GpuRuntime rt;
  rt.launch("sync", 1, 0, [](OpCounts& c) { c.bytes_read = 1'000'000; });
  rt.launch("async", 1, 1, [](OpCounts& c) { c.bytes_read = 50'000'000; });
  const double sync_only = rt.modeled_total_seconds(false);
  const double with_async = rt.modeled_total_seconds(true);
  EXPECT_LT(sync_only, with_async);
  EXPECT_NEAR(sync_only,
              rt.model().time_finite_cache(rt.record("sync").counts), 1e-15);
}

TEST(Runtime, MemoryAndTransferAccounting) {
  GpuRuntime rt;
  rt.device_alloc(1 << 20);
  rt.device_alloc(1 << 20);
  rt.device_free(1 << 20);
  EXPECT_EQ(rt.allocated_bytes(), std::uint64_t(1) << 20);
  EXPECT_EQ(rt.peak_bytes(), std::uint64_t(2) << 20);
  rt.h2d(100'000'000);
  rt.d2h(50'000'000);
  // 150 MB over 25 GB/s PCIe = 6 ms.
  EXPECT_NEAR(rt.transfer_seconds(), 0.006, 1e-4);
}

TEST(GpuSolver, MatchesCpuSolverExactly) {
  // Same chunking, same kernels, same order: the device pipeline must be
  // bit-identical to the host solver.
  auto m = puncture_mesh();
  solver::SolverConfig cpu_cfg;
  GpuSolverConfig gpu_cfg;
  gpu_cfg.bssn = cpu_cfg.bssn;
  ASSERT_EQ(cpu_cfg.chunk_octants, gpu_cfg.chunk_octants);

  solver::BssnCtx cpu(m, cpu_cfg);
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.01}, {0, 0, 0}, {0, 0, 0}}},
                      cpu.state());

  GpuBssnSolver gpu(m, gpu_cfg);
  gpu.upload(cpu.state());

  const Real dt = cpu.suggested_dt();
  EXPECT_EQ(gpu.suggested_dt(), dt);
  cpu.rk4_step(dt);
  cpu.rk4_step(dt);
  gpu.rk4_step(dt);
  gpu.rk4_step(dt);

  BssnState down = gpu.download();
  EXPECT_EQ(down.max_abs_diff(cpu.state()), 0.0);
}

TEST(GpuSolver, RecordsAlgorithmOnePipeline) {
  auto m = puncture_mesh();
  GpuBssnSolver gpu(m, GpuSolverConfig{});
  BssnState s;
  bssn::set_minkowski(*m, s);
  gpu.upload(s);
  gpu.rk4_step();
  for (const char* k :
       {"halo-exchange", "octant-to-patch", "bssn-rhs", "patch-to-octant",
        "axpy"}) {
    EXPECT_TRUE(gpu.runtime().has_kernel(k)) << k;
  }
  EXPECT_GT(gpu.runtime().record("bssn-rhs").counts.flops, 0u);
  EXPECT_GT(gpu.runtime().modeled_total_seconds(), 0.0);
  EXPECT_GT(gpu.runtime().h2d_bytes(), 0u);
  EXPECT_GT(gpu.runtime().peak_bytes(), 0u);
}

TEST(GpuSolver, OctantToPatchAiWithinPaperBound) {
  // §IV-A: the octant-to-patch arithmetic intensity is bounded by
  // Q_U <= 5.07 in the RAM model; measured values (Table III) are below.
  auto m = puncture_mesh();
  GpuBssnSolver gpu(m, GpuSolverConfig{});
  BssnState s;
  bssn::set_minkowski(*m, s);
  gpu.upload(s);
  gpu.rk4_step();
  const double ai =
      gpu.runtime().record("octant-to-patch").counts.arithmetic_intensity();
  EXPECT_GT(ai, 0.0);
  EXPECT_LT(ai, 5.5);
  // patch-to-octant is a pure data-movement kernel (zero AI).
  const double ai_zip =
      gpu.runtime().record("patch-to-octant").counts.arithmetic_intensity();
  EXPECT_EQ(ai_zip, 0.0);
}

TEST(GpuSolver, AsyncWaveExtractionOffCriticalPath) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(2), dom);
  GpuBssnSolver gpu(m, GpuSolverConfig{});
  BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.04, 0.02, 0.01}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  gpu.upload(s);
  gpu.rk4_step();
  const double before = gpu.runtime().modeled_total_seconds(false);
  gw::WaveExtractor ex({4.0}, 2, 6);
  const auto modes = gpu.extract_waves(ex);
  EXPECT_EQ(modes.size(), 1u);
  EXPECT_NEAR(gpu.runtime().modeled_total_seconds(false), before, 1e-12);
  EXPECT_GT(gpu.runtime().modeled_total_seconds(true), before);
}

TEST(GpuSolver, FlatSpaceFixedPoint) {
  Domain dom{4.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  GpuBssnSolver gpu(m, GpuSolverConfig{});
  BssnState s;
  bssn::set_minkowski(*m, s);
  gpu.upload(s);
  gpu.rk4_step();
  gpu.rk4_step();
  BssnState down = gpu.download();
  EXPECT_LT(down.max_abs_diff(s), 1e-10);
}

}  // namespace
}  // namespace dgr::simgpu
