# Empty compiler generated dependencies file for bench_fig15_rhs_cpu_gpu.
# This may be replaced when dependencies are built.
