#pragma once
/// \file gpu_bssn.hpp
/// \brief The device-resident BSSN evolution of Algorithm 1: state lives on
/// the (simulated) GPU between regrids; each RK stage runs the
/// halo-exchange -> octant-to-patch -> RHS -> patch-to-octant -> AXPY
/// kernel pipeline; gravitational waves are extracted on an asynchronous
/// stream. The runtime records every kernel's op counts, from which the
/// A100 model produces the device timings used in Figs. 14-18 and Table
/// III.

#include <memory>
#include <vector>

#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "exec_space/exec_space.hpp"
#include "gw/extract.hpp"
#include "mesh/mesh.hpp"
#include "mesh/subcycle_index.hpp"
#include "simgpu/runtime.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::simgpu {

struct GpuSolverConfig {
  bssn::BssnParams bssn;
  Real cfl = 0.25;
  int chunk_octants = 64;
  /// Run the "bssn-rhs" kernel through the fused SIMD path (the host-side
  /// analogue of the paper's generated staged+CSE device kernel) instead of
  /// the staged compiled C++ kernel.
  bool fused_simd_rhs = false;
  /// SIMD pack width for the fused kernel (0 = runtime DGR_SIMD width).
  int simd_width = 0;
};

class GpuBssnSolver {
 public:
  GpuBssnSolver(std::shared_ptr<mesh::Mesh> mesh, GpuSolverConfig config,
                perf::MachineModel model = perf::a100());

  GpuRuntime& runtime() { return runtime_; }
  const mesh::Mesh& mesh() const { return *mesh_; }
  Real time() const { return time_; }

  /// Host -> device upload of the initial/regridded state (Algorithm 1
  /// line 4).
  void upload(const bssn::BssnState& state);
  /// Device -> host download (line 11).
  bssn::BssnState download();

  Real suggested_dt() const { return config_.cfl * mesh_->finest_spacing(); }

  /// One RK4 step, entirely "on device".
  void rk4_step(Real dt);
  void rk4_step() { rk4_step(suggested_dt()); }

  /// One depth-local sub-cycled coarse step (= subcycle_index().cycle()
  /// fine substeps), entirely "on device" — the device mirror of
  /// solver::BssnCtx::subcycle_cycle, bitwise identical state evolution
  /// with each sweep recorded as a kernel ("subcycle-fill"/"subcycle-save"/
  /// "subcycle-update" plus the restricted RHS pipeline), so the machine
  /// model prices the reduced work of local timestepping.
  void subcycle_cycle(Real fine_dt);

  /// Per-depth octant/DOF decomposition of the mesh (built lazily; the
  /// mesh of a GpuBssnSolver is immutable, so it is built at most once).
  const mesh::SubcycleIndex& subcycle_index();

  /// Wave extraction on the asynchronous stream (Algorithm 1: "the host
  /// uses asynchronous streams to extract the gravitational waves").
  std::vector<gw::SphereModes> extract_waves(const gw::WaveExtractor& ex);

  /// Direct access for verification against the CPU solver.
  const bssn::BssnState& device_state() const { return state_; }

 private:
  void compute_rhs(const bssn::BssnState& u, bssn::BssnState& rhs);
  void compute_rhs(const bssn::BssnState& u, bssn::BssnState& rhs,
                   const std::vector<std::pair<OctIndex, OctIndex>>& runs);
  void subcycle_step_depth(int depth, Real fine_dt);
  void subcycle_bootstrap();

  std::shared_ptr<mesh::Mesh> mesh_;
  GpuSolverConfig config_;
  GpuRuntime runtime_;
  /// The device execution space (every sweep records into runtime_) and
  /// the SAME chunked unzip -> RHS -> zip pipeline the host solver runs —
  /// one kernel body per sweep family, instantiated here on the simgpu
  /// backend.
  exec_space::ExecSpace space_;
  solver::RhsPipeline pipeline_;
  bssn::BssnState state_, stage_, k_[4];
  Real time_ = 0;

  // Depth-local sub-cycling state, mirroring solver::BssnCtx: the retained
  // step-start state / first RHS per depth for dense-output ghost fill.
  // Allocated (and accounted as device memory) on first sub-cycled use; an
  // upload() or a global-dt step invalidates the retained stages.
  std::unique_ptr<mesh::SubcycleIndex> subidx_;
  bssn::BssnState dense_u0_, dense_k1_;
  std::vector<Real> dense_t0_;
  std::vector<std::uint8_t> dense_mode_;
  bool dense_ready_ = false;
  bool dense_alloc_ = false;
};

}  // namespace dgr::simgpu
