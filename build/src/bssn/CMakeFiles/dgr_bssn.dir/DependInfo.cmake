
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bssn/constraints.cpp" "src/bssn/CMakeFiles/dgr_bssn.dir/constraints.cpp.o" "gcc" "src/bssn/CMakeFiles/dgr_bssn.dir/constraints.cpp.o.d"
  "/root/repo/src/bssn/initial_data.cpp" "src/bssn/CMakeFiles/dgr_bssn.dir/initial_data.cpp.o" "gcc" "src/bssn/CMakeFiles/dgr_bssn.dir/initial_data.cpp.o.d"
  "/root/repo/src/bssn/rhs.cpp" "src/bssn/CMakeFiles/dgr_bssn.dir/rhs.cpp.o" "gcc" "src/bssn/CMakeFiles/dgr_bssn.dir/rhs.cpp.o.d"
  "/root/repo/src/bssn/vars.cpp" "src/bssn/CMakeFiles/dgr_bssn.dir/vars.cpp.o" "gcc" "src/bssn/CMakeFiles/dgr_bssn.dir/vars.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fd/CMakeFiles/dgr_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dgr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/dgr_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
