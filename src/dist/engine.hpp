#pragma once
/// \file engine.hpp
/// \brief The simulated multi-rank evolution driver. N ranks advance the
/// BSSN state in lockstep over an overlapped step schedule — per RHS
/// evaluation: post ghost recvs, pack and send boundary DOFs, compute the
/// interior octants while the halo is in flight, wait, then compute the
/// boundary octants — with per-rank virtual clocks making the overlap
/// measurable (t_comm_hidden vs t_comm_exposed). In execute mode the ranks
/// run the real numerics and the gathered result is bitwise-identical to
/// the single-rank solver::evolve path, including regrids (the host
/// synchronization point, realized as an allgather + replicated remesh).
/// In schedule-only mode the message schedule runs with real payloads but
/// compute is advanced on the virtual clock only — this is what the
/// scaling benches (Figs. 17, 18, 20) execute.

#include <memory>

#include "dist/rank_ctx.hpp"
#include "solver/evolution.hpp"

namespace dgr::dist {

struct DistConfig {
  int ranks = 2;
  /// Execute mode: evolve until t_end with a regrid every `regrid_every`
  /// steps (mirrors solver::EvolutionConfig so the two paths agree).
  Real t_end = 0;
  int regrid_every = 16;
  solver::RegridConfig regrid;
  bool do_regrid = true;
  /// Interconnect: NVLink-class within a node, IB-class across nodes.
  perf::HierarchicalNetworkModel net = perf::gpu_cluster();
  /// Virtual compute cost of one octant's unzip+RHS+zip per evaluation
  /// (calibrated by the benches from the §III-D machine models).
  double sec_per_octant = 1e-5;
  /// false: schedule-only — run `schedule_evals` RHS-evaluation message
  /// schedules with real payloads but no numerics (benches).
  bool execute = true;
  int schedule_evals = 0;
};

struct RankReport {
  RankStats stats;
  std::size_t owned = 0;          ///< owned octants
  std::size_t ghost_octants = 0;  ///< octant-level halo size
  std::size_t interior = 0;       ///< octants computable during the halo
  std::size_t boundary = 0;       ///< octants gated on the halo
  std::size_t recv_dofs = 0;      ///< ghost DOFs received per exchange
};

struct DistResult {
  int steps = 0;
  int regrids = 0;
  int rhs_evals = 0;
  /// Parallel time of the executed schedule: max over per-rank clocks.
  double t_virtual = 0;
  double t_compute_max = 0;
  double t_comm_exposed_max = 0;
  double t_comm_hidden_max = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Execute mode: the gathered final state (global DOF indexing).
  bssn::BssnState state;
  std::vector<RankReport> ranks;
};

/// Run the N-rank engine on `mesh` starting from `initial`. Execute mode
/// evolves to cfg.t_end exactly as solver::evolve would (same dt logic,
/// same regrid cadence) and returns the gathered state; schedule-only mode
/// runs cfg.schedule_evals overlapped exchanges.
DistResult evolve_distributed(std::shared_ptr<const mesh::Mesh> mesh,
                              const bssn::BssnState& initial,
                              const solver::SolverConfig& scfg,
                              const DistConfig& cfg);

}  // namespace dgr::dist
