/// \file binary_blackhole.cpp
/// \brief A scaled-down binary-black-hole evolution exercising the full
/// production pipeline: adaptive BBH grid, Bowen–York momenta, the
/// simulated-GPU Algorithm 1 evolution with periodic regridding, and
/// gravitational-wave extraction written to psi4_22.csv.
///
///   ./build/examples/binary_blackhole [steps=8] [q=1]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "bssn/initial_data.hpp"
#include "gw/extract.hpp"
#include "simgpu/gpu_bssn.hpp"
#include "solver/bssn_ctx.hpp"
#include "solver/regrid.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const Real q = argc > 2 ? std::atof(argv[2]) : 1.0;
  const Real sep = 2.0;
  const int regrid_every = 4;  // Algorithm 1's f_r

  // Grid: domain +-16 M, puncture cascade to level 4.
  oct::Domain domain{16.0};
  auto punctures = bssn::make_binary(q, sep);
  for (auto& p : punctures) {
    p.pos[1] = 0.011;  // keep punctures off grid lines
    p.pos[2] = 0.007;
  }
  std::vector<oct::Puncture> refine;
  for (const auto& p : punctures) refine.push_back({p.pos, 4});
  auto mesh = std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(domain, refine, 2), domain);

  solver::SolverConfig config;
  config.bssn.ko_sigma = 0.3;
  solver::BssnCtx ctx(mesh, config);
  bssn::set_punctures(*mesh, punctures, ctx.state());
  std::printf("q = %.1f binary: %zu octants, %.2fM unknowns, dt = %.4f M\n",
              q, mesh->num_octants(), mesh->num_dofs() * 24 / 1e6,
              ctx.suggested_dt());

  // Extraction spheres (scaled versions of the paper's 50-100 M shells).
  gw::WaveExtractor extractor({5.0, 6.0, 7.0}, /*lmax=*/2, /*quad=*/8);
  gw::ModeTimeSeries wave22;
  wave22.radius = 6.0;

  solver::RegridConfig rc;
  rc.eps = 3e-2;
  rc.max_level = 5;
  rc.min_level = 2;

  for (int i = 0; i < steps; ++i) {
    ctx.rk4_step();
    const auto modes =
        extractor.extract_from_state(ctx.mesh(), ctx.state(), config.bssn);
    wave22.append(ctx.time(), modes[1].mode(2, 2) * Real(6.0));
    std::printf("  step %2d  t=%7.4f  Re r*psi4_22 = %+.4e  (|H| via r=%.0f "
                "sphere)\n",
                i + 1, ctx.time(), wave22.values.back().real(),
                modes[1].radius);
    if ((i + 1) % regrid_every == 0) {
      auto next = solver::regrid_mesh(ctx.mesh(), ctx.state(), rc);
      if (next) {
        std::printf("  regrid: %zu -> %zu octants\n",
                    ctx.mesh().num_octants(), next->num_octants());
        ctx.remesh(next);
      }
    }
  }

  std::ofstream csv("psi4_22.csv");
  csv << "t,re,im\n";
  for (std::size_t i = 0; i < wave22.times.size(); ++i)
    csv << wave22.times[i] << "," << wave22.values[i].real() << ","
        << wave22.values[i].imag() << "\n";
  std::printf("wrote psi4_22.csv (%zu samples)\n", wave22.times.size());
  return 0;
}
