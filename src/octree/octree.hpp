#pragma once
/// \file octree.hpp
/// \brief Linear (leaves-only) octrees: construction from refinement
/// functors, validation, point location, 2:1 balancing over 26-connectivity,
/// neighbor queries, and remeshing — the Dendro-style AMR substrate.

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "octree/treenode.hpp"

namespace dgr::oct {

/// Decision returned by refinement functors during top-down construction.
enum class Refine { kKeep, kSplit };

/// Per-leaf action for remeshing (AMR regrid step).
enum class RemeshFlag { kKeep, kRefine, kCoarsen };

/// A complete, sorted, leaves-only octree over the unit cube domain.
///
/// Invariants (checked by validate()):
///  - leaves sorted by the SFC comparator,
///  - leaves pairwise non-overlapping,
///  - leaves cover the whole domain (completeness).
class Octree {
 public:
  Octree();  ///< the root-only tree

  explicit Octree(std::vector<TreeNode> leaves);

  /// Top-down construction: split every octant for which \p should_split
  /// returns kSplit, up to \p max_level.
  static Octree build(
      const std::function<Refine(const TreeNode&)>& should_split,
      int max_level);

  /// A uniform tree at the given level (8^level leaves).
  static Octree uniform(int level);

  const std::vector<TreeNode>& leaves() const { return leaves_; }
  std::size_t size() const { return leaves_.size(); }
  const TreeNode& leaf(OctIndex i) const { return leaves_[i]; }

  int min_level() const;
  int max_level() const;

  /// Throws dgr::Error if any invariant is violated.
  void validate() const;

  /// Index of the unique leaf containing the dyadic point (coordinates are
  /// clamped convention: a point on a shared boundary belongs to the octant
  /// with the larger anchor, i.e. we locate by containment in
  /// [anchor, anchor+edge) and callers pass interior probe points).
  OctIndex find_leaf(Coord px, Coord py, Coord pz) const;

  /// Exact search; returns kInvalidOct if \p t is not a leaf of this tree.
  OctIndex find(const TreeNode& t) const;

  /// True if the 2:1 constraint holds across all touching leaf pairs
  /// (faces, edges and corners): levels differ by at most one.
  bool is_balanced() const;

  /// Returns the 2:1-balanced (over 26-connectivity) refinement of this
  /// tree: the coarsest complete tree refining *this that satisfies the
  /// constraint.
  Octree balanced() const;

  /// All leaves whose closure touches leaf \p i in direction (dx,dy,dz)
  /// (each in {-1,0,1}, not all zero). Under 2:1 balance this is exactly one
  /// same-level, one coarser, or up to four finer octants (one for corners).
  std::vector<OctIndex> neighbors(OctIndex i, int dx, int dy, int dz) const;

  /// AMR remesh: apply per-leaf flags (coarsening happens only where all 8
  /// siblings are flagged kCoarsen and are all leaves), then re-balance.
  Octree remesh(const std::vector<RemeshFlag>& flags) const;

  /// Total number of finest-unit cells covered (for completeness checks).
  /// Full domain = 8^kMaxDepth, which overflows; we compare level sums
  /// instead — see validate().
  bool operator==(const Octree& o) const { return leaves_ == o.leaves_; }

 private:
  std::vector<TreeNode> leaves_;  // sorted by SfcLess
};

/// Split \p leaves of the sorted tree into \p parts contiguous SFC chunks
/// with near-equal total weight; returns the begin index of each part (size
/// parts+1, last = leaves.size()). Weights must be positive.
std::vector<std::size_t> sfc_partition(const std::vector<double>& weights,
                                       int parts);

}  // namespace dgr::oct
