#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harness.

#include <chrono>

namespace dgr {

/// Simple steady-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { restart(); }
  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations of start()/stop() intervals. Used for
/// per-phase cost breakdowns (Fig. 20).
class PhaseTimer {
 public:
  /// Begin (or re-begin) an interval. Calling start() while an interval is
  /// already running banks the elapsed time before restarting, so repeated
  /// start() calls accumulate instead of silently discarding the running
  /// interval.
  void start() {
    if (running_) total_ += t_.seconds();
    t_.restart();
    running_ = true;
  }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  bool running() const { return running_; }
  double total_seconds() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace dgr
