#include "octree/octree.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace dgr::oct {

namespace {

/// Volume of an octant in finest-unit cells. Fits in 64 bits for
/// kMaxDepth = 16 (root volume = 2^48).
std::uint64_t unit_volume(const TreeNode& t) {
  return std::uint64_t{1} << (3 * (kMaxDepth - t.level));
}

}  // namespace

Octree::Octree() : leaves_{TreeNode{}} {}

Octree::Octree(std::vector<TreeNode> leaves) : leaves_(std::move(leaves)) {
  std::sort(leaves_.begin(), leaves_.end(), SfcLess{});
  validate();
}

Octree Octree::build(const std::function<Refine(const TreeNode&)>& should_split,
                     int max_level) {
  DGR_CHECK(max_level >= 0 && max_level <= kMaxDepth);
  std::vector<TreeNode> out;
  std::vector<TreeNode> stack{TreeNode{}};
  while (!stack.empty()) {
    TreeNode t = stack.back();
    stack.pop_back();
    if (t.level < max_level && should_split(t) == Refine::kSplit) {
      // Push children in reverse so the SFC-first child is processed first
      // (order does not matter for correctness; we sort at the end).
      for (int c = 7; c >= 0; --c) stack.push_back(t.child(c));
    } else {
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end(), SfcLess{});
  return Octree(std::move(out));
}

Octree Octree::uniform(int level) {
  return build([](const TreeNode&) { return Refine::kSplit; }, level);
}

int Octree::min_level() const {
  int m = kMaxDepth;
  for (const auto& t : leaves_) m = std::min(m, int(t.level));
  return m;
}

int Octree::max_level() const {
  int m = 0;
  for (const auto& t : leaves_) m = std::max(m, int(t.level));
  return m;
}

void Octree::validate() const {
  DGR_CHECK_MSG(!leaves_.empty(), "octree has no leaves");
  std::uint64_t vol = 0;
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (i + 1 < leaves_.size()) {
      DGR_CHECK_MSG(SfcLess{}(leaves_[i], leaves_[i + 1]),
                    "leaves not strictly SFC-sorted");
      // In SFC order, an overlap implies an immediate ancestor/descendant
      // adjacency; see octree tests for the property check.
      DGR_CHECK_MSG(!leaves_[i].contains(leaves_[i + 1]),
                    "overlapping leaves");
    }
    vol += unit_volume(leaves_[i]);
  }
  DGR_CHECK_MSG(vol == unit_volume(TreeNode{}),
                "octree does not cover the domain (incomplete)");
}

OctIndex Octree::find_leaf(Coord px, Coord py, Coord pz) const {
  DGR_CHECK(px < kDomainSize && py < kDomainSize && pz < kDomainSize);
  const TreeNode probe(px, py, pz, kMaxDepth);
  auto it = std::upper_bound(leaves_.begin(), leaves_.end(), probe, SfcLess{});
  DGR_CHECK_MSG(it != leaves_.begin(), "point precedes all leaves");
  --it;
  // The predecessor may be the probe cell itself (if the tree is fully
  // refined there) or an ancestor containing it.
  DGR_CHECK_MSG(it->contains_point(px, py, pz),
                "completeness violation in find_leaf");
  return static_cast<OctIndex>(it - leaves_.begin());
}

OctIndex Octree::find(const TreeNode& t) const {
  auto it = std::lower_bound(leaves_.begin(), leaves_.end(), t, SfcLess{});
  if (it != leaves_.end() && *it == t)
    return static_cast<OctIndex>(it - leaves_.begin());
  return kInvalidOct;
}

namespace {

/// Probe points just outside leaf \p t in direction (dx,dy,dz): the corners
/// of the adjacent strip. An axis-aligned coarser octant (edge >= 2x) that
/// touches t across this direction must contain at least one of them.
struct ProbeSet {
  std::int64_t pts[4][3];
  int count = 0;
};

ProbeSet make_probes(const TreeNode& t, int dx, int dy, int dz) {
  const std::int64_t e = t.edge();
  const std::int64_t lo[3] = {t.x, t.y, t.z};
  const int d[3] = {dx, dy, dz};
  // Candidate coordinates per axis: across-axis gets the single outside
  // value; in-plane axes get both extremes of t's extent.
  std::int64_t cand[3][2];
  int ncand[3];
  for (int a = 0; a < 3; ++a) {
    if (d[a] < 0) {
      cand[a][0] = lo[a] - 1;
      ncand[a] = 1;
    } else if (d[a] > 0) {
      cand[a][0] = lo[a] + e;
      ncand[a] = 1;
    } else {
      cand[a][0] = lo[a];
      cand[a][1] = lo[a] + e - 1;
      ncand[a] = 2;
    }
  }
  ProbeSet ps;
  for (int i = 0; i < ncand[0]; ++i)
    for (int j = 0; j < ncand[1]; ++j)
      for (int k = 0; k < ncand[2]; ++k) {
        ps.pts[ps.count][0] = cand[0][i];
        ps.pts[ps.count][1] = cand[1][j];
        ps.pts[ps.count][2] = cand[2][k];
        ++ps.count;
      }
  return ps;
}

bool probe_in_domain(const std::int64_t p[3]) {
  for (int a = 0; a < 3; ++a)
    if (p[a] < 0 || p[a] >= static_cast<std::int64_t>(kDomainSize))
      return false;
  return true;
}

}  // namespace

bool Octree::is_balanced() const {
  for (const auto& t : leaves_) {
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const ProbeSet ps = make_probes(t, dx, dy, dz);
          for (int p = 0; p < ps.count; ++p) {
            if (!probe_in_domain(ps.pts[p])) continue;
            const OctIndex n = find_leaf(static_cast<Coord>(ps.pts[p][0]),
                                         static_cast<Coord>(ps.pts[p][1]),
                                         static_cast<Coord>(ps.pts[p][2]));
            if (int(leaves_[n].level) < int(t.level) - 1) return false;
          }
        }
  }
  return true;
}

Octree Octree::balanced() const {
  Octree cur = *this;
  for (;;) {
    std::unordered_set<TreeNode> to_split;
    for (const auto& t : cur.leaves_) {
      for (int dz = -1; dz <= 1; ++dz)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const ProbeSet ps = make_probes(t, dx, dy, dz);
            for (int p = 0; p < ps.count; ++p) {
              if (!probe_in_domain(ps.pts[p])) continue;
              const OctIndex n =
                  cur.find_leaf(static_cast<Coord>(ps.pts[p][0]),
                                static_cast<Coord>(ps.pts[p][1]),
                                static_cast<Coord>(ps.pts[p][2]));
              const TreeNode& nb = cur.leaves_[n];
              if (int(nb.level) < int(t.level) - 1) to_split.insert(nb);
            }
          }
    }
    if (to_split.empty()) return cur;
    std::vector<TreeNode> next;
    next.reserve(cur.leaves_.size() + 7 * to_split.size());
    for (const auto& t : cur.leaves_) {
      if (to_split.count(t)) {
        for (int c = 0; c < 8; ++c) next.push_back(t.child(c));
      } else {
        next.push_back(t);
      }
    }
    std::sort(next.begin(), next.end(), SfcLess{});
    cur.leaves_ = std::move(next);
  }
}

std::vector<OctIndex> Octree::neighbors(OctIndex i, int dx, int dy,
                                        int dz) const {
  DGR_CHECK(i >= 0 && static_cast<std::size_t>(i) < leaves_.size());
  DGR_CHECK(!(dx == 0 && dy == 0 && dz == 0));
  const TreeNode& t = leaves_[i];
  TreeNode same;
  if (!t.neighbor(dx, dy, dz, same)) return {};  // domain boundary

  // Same level?
  if (OctIndex n = find(same); n != kInvalidOct) return {n};

  // One coarser? (Guaranteed at most one level difference under balance.)
  if (same.level > 0) {
    if (OctIndex n = find(same.parent()); n != kInvalidOct) return {n};
  }

  // Finer: collect the children of `same` whose closure touches t.
  std::vector<OctIndex> out;
  DGR_CHECK_MSG(same.level < kMaxDepth, "neighbor query hit kMaxDepth");
  for (int c = 0; c < 8; ++c) {
    const TreeNode ch = same.child(c);
    if (!ch.touches(t)) continue;
    const OctIndex n = find(ch);
    DGR_CHECK_MSG(n != kInvalidOct,
                  "tree is not 2:1 balanced (grandchild neighbor)");
    out.push_back(n);
  }
  DGR_CHECK(!out.empty());
  return out;
}

Octree Octree::remesh(const std::vector<RemeshFlag>& flags) const {
  DGR_CHECK(flags.size() == leaves_.size());

  // Group coarsening candidates by parent; coarsen only complete sibling
  // octets in which every child is flagged kCoarsen.
  std::unordered_map<TreeNode, int> coarsen_votes;
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (flags[i] == RemeshFlag::kCoarsen && leaves_[i].level > 0)
      coarsen_votes[leaves_[i].parent()] += 1;
  }

  std::vector<TreeNode> next;
  next.reserve(leaves_.size());
  std::unordered_set<TreeNode> emitted_parents;
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    const TreeNode& t = leaves_[i];
    const bool can_coarsen = flags[i] == RemeshFlag::kCoarsen && t.level > 0 &&
                             coarsen_votes[t.parent()] == 8;
    if (can_coarsen) {
      if (emitted_parents.insert(t.parent()).second)
        next.push_back(t.parent());
    } else if (flags[i] == RemeshFlag::kRefine && t.level < kMaxDepth) {
      for (int c = 0; c < 8; ++c) next.push_back(t.child(c));
    } else {
      next.push_back(t);
    }
  }
  std::sort(next.begin(), next.end(), SfcLess{});
  return Octree(std::move(next)).balanced();
}

std::vector<std::size_t> sfc_partition(const std::vector<double>& weights,
                                       int parts) {
  DGR_CHECK(parts >= 1);
  DGR_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    DGR_CHECK_MSG(w > 0, "partition weights must be positive");
    total += w;
  }
  std::vector<std::size_t> splits(parts + 1, 0);
  splits[parts] = weights.size();
  double prefix = 0;
  std::size_t idx = 0;
  for (int p = 1; p < parts; ++p) {
    const double target = total * p / parts;
    while (idx < weights.size() && prefix + weights[idx] / 2 < target) {
      prefix += weights[idx];
      ++idx;
    }
    splits[p] = idx;
  }
  // Ensure monotonicity (possible with fewer leaves than parts).
  for (int p = 1; p <= parts; ++p)
    splits[p] = std::max(splits[p], splits[p - 1]);
  return splits;
}

}  // namespace dgr::oct
