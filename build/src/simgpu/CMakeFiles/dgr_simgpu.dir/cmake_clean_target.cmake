file(REMOVE_RECURSE
  "libdgr_simgpu.a"
)
