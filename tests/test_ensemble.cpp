/// \file test_ensemble.cpp
/// \brief Tests for the ensemble subsystem: canonical scenario encoding
/// (byte-for-byte double round-trip, hash determinism across thread counts,
/// distinct hashes over the Table IV space), the content-addressed waveform
/// cache (golden equivalence of hits vs recomputes, disk-spill round-trip,
/// LRU accounting), and the ensemble driver (in-flight coalescing,
/// size-aware routing, drain).

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "ensemble/cache.hpp"
#include "ensemble/driver.hpp"
#include "ensemble/scenario.hpp"
#include "exec/parallel.hpp"
#include "perf/production.hpp"

namespace fs = std::filesystem;
using namespace dgr;
using namespace dgr::ensemble;

namespace {

/// The smallest scenario that still exercises the full pipeline (mesh
/// build, RK4, regrid, extraction). Keeps evolution tests fast.
ScenarioConfig tiny_scenario() {
  ScenarioConfig cfg;
  cfg.base_level = 1;
  cfg.finest_level = 2;
  cfg.domain_half = 8.0;
  cfg.steps = 2;
  cfg.extract_every = 1;
  cfg.extraction_radius = 3.0;
  return cfg;
}

/// A scratch directory that is removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("dgr_ensemble_") + tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

}  // namespace

// ------------------------------------------------------------ encoding

TEST(Scenario, EncodeDecodeRoundTripDefaults) {
  const ScenarioConfig cfg;
  const std::string bytes = encode(cfg);
  const ScenarioConfig back = decode(bytes);
  EXPECT_EQ(back, cfg);
  EXPECT_EQ(encode(back), bytes);
}

TEST(Scenario, EncodeRoundTripsAwkwardDoubles) {
  // Values printf-based encodings get wrong: negative zero, denormals,
  // last-ulp offsets, huge and tiny magnitudes.
  const double awkward[] = {
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::nextafter(1.0, 2.0),
      std::nextafter(0.25, 0.0),
      1e308,
      -1e-308,
      2e-3 + std::numeric_limits<double>::epsilon(),
  };
  for (const double v : awkward) {
    ScenarioConfig cfg = tiny_scenario();
    cfg.eps = v;
    cfg.spin1[2] = v;
    const ScenarioConfig back = decode(encode(cfg));
    // Bitwise equality, not operator== (which treats -0.0 == +0.0).
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.eps),
              std::bit_cast<std::uint64_t>(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.spin1[2]),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Scenario, NegativeZeroChangesTheKey) {
  ScenarioConfig a = tiny_scenario(), b = tiny_scenario();
  a.spin1[0] = 0.0;
  b.spin1[0] = -0.0;
  // operator== says equal (IEEE), but the canonical bytes must differ:
  // the cache keys on bit patterns, never on printf output.
  EXPECT_EQ(a, b);
  EXPECT_NE(encode(a), encode(b));
}

TEST(Scenario, DecodeRejectsMalformedInput) {
  const std::string bytes = encode(tiny_scenario());
  EXPECT_THROW(decode(""), Error);
  EXPECT_THROW(decode(bytes.substr(0, bytes.size() - 1)), Error);
  EXPECT_THROW(decode(bytes + "x"), Error);
  std::string wrong_magic = bytes;
  wrong_magic[0] ^= 0x40;
  EXPECT_THROW(decode(wrong_magic), Error);
}

TEST(Scenario, HashIsDeterministicAcrossRunsAndLanes) {
  const ScenarioConfig cfg = tiny_scenario();
  const ScenarioKey ref = ScenarioKey::of(cfg);

  // Repeated sequential runs.
  for (int i = 0; i < 16; ++i) {
    const ScenarioKey k = ScenarioKey::of(cfg);
    EXPECT_EQ(k.hash, ref.hash);
    EXPECT_EQ(k.bytes, ref.bytes);
  }

  // Encoded concurrently on every pool lane: identical hashes no matter
  // which thread does the encoding.
  for (const int threads : {1, 2, 4}) {
    exec::ThreadPool::set_global_threads(threads);
    std::vector<std::uint64_t> hashes(64, 0);
    exec::parallel_for(0, 64, 1, [&](std::int64_t i, std::int64_t e) {
      for (; i < e; ++i) hashes[i] = ScenarioKey::of(cfg).hash;
    });
    for (const std::uint64_t h : hashes) EXPECT_EQ(h, ref.hash);
  }
  exec::ThreadPool::set_global_threads(exec::ThreadPool::configured_threads());
}

TEST(Scenario, Table4ConfigsHaveDistinctKeys) {
  const auto rows = perf::table4_configs();
  ASSERT_GE(rows.size(), 4u);
  std::vector<ScenarioKey> keys;
  for (const auto& row : rows)
    keys.push_back(ScenarioKey::of(scenario_from_table4(row)));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i].bytes, keys[j].bytes)
          << "table4 rows " << i << " and " << j << " encode identically";
      EXPECT_NE(keys[i].hash, keys[j].hash)
          << "table4 rows " << i << " and " << j << " collide";
    }
  }
}

TEST(Scenario, WaveformSerializeRoundTrip) {
  Waveform wf;
  wf.steps = 3;
  wf.regrids = 1;
  wf.t_final = 0.625;
  wf.psi4_22.l = 2;
  wf.psi4_22.m = 2;
  wf.psi4_22.radius = 3.0;
  for (int i = 0; i < 5; ++i) {
    wf.psi4_22.times.push_back(0.125 * i);
    wf.psi4_22.values.push_back({1e-3 * i, -2e-3 * i});
    wf.strain.push_back({-0.0, 1e-5 * i});
  }
  const std::string blob = serialize(wf);
  EXPECT_EQ(wf.byte_size(), blob.size());
  const Waveform back = deserialize(blob);
  EXPECT_EQ(back, wf);
  EXPECT_EQ(serialize(back), blob);

  EXPECT_THROW(deserialize(""), Error);
  EXPECT_THROW(deserialize(blob.substr(0, blob.size() / 2)), Error);
}

// --------------------------------------------------------------- cache

namespace {

/// A synthetic waveform with a recognizable payload, for cache tests that
/// should not pay for real evolutions.
std::shared_ptr<const Waveform> fake_waveform(int tag, int samples = 8) {
  auto wf = std::make_shared<Waveform>();
  wf->steps = tag;
  wf->t_final = 0.5 * tag;
  wf->psi4_22.l = 2;
  wf->psi4_22.m = 2;
  for (int i = 0; i < samples; ++i) {
    wf->psi4_22.times.push_back(i + 0.25 * tag);
    wf->psi4_22.values.push_back({double(tag), double(i)});
  }
  return wf;
}

ScenarioConfig tagged_scenario(int tag) {
  ScenarioConfig cfg = tiny_scenario();
  cfg.steps = 1 + tag;  // each tag a distinct canonical encoding
  return cfg;
}

}  // namespace

TEST(WaveformCache, HitMissAndLruAccounting) {
  WaveformCache cache(std::size_t{1} << 20);
  const ScenarioKey k0 = ScenarioKey::of(tagged_scenario(0));
  bool from_disk = true;
  EXPECT_EQ(cache.get(k0, &from_disk), nullptr);
  EXPECT_FALSE(from_disk);

  const auto wf = fake_waveform(0);
  cache.put(k0, wf);
  const auto hit = cache.get(k0, &from_disk);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(from_disk);
  EXPECT_EQ(*hit, *wf);

  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits_memory, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, wf->byte_size());
}

TEST(WaveformCache, EvictsLeastRecentlyUsedWithinBudget) {
  const auto one = fake_waveform(0)->byte_size();
  // Room for three entries, not four.
  WaveformCache cache(3 * one + one / 2);
  for (int tag = 0; tag < 3; ++tag)
    cache.put(ScenarioKey::of(tagged_scenario(tag)), fake_waveform(tag));
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_NE(cache.get(ScenarioKey::of(tagged_scenario(0))), nullptr);
  cache.put(ScenarioKey::of(tagged_scenario(3)), fake_waveform(3));

  EXPECT_NE(cache.get(ScenarioKey::of(tagged_scenario(0))), nullptr);
  EXPECT_EQ(cache.get(ScenarioKey::of(tagged_scenario(1))), nullptr);
  EXPECT_NE(cache.get(ScenarioKey::of(tagged_scenario(2))), nullptr);
  EXPECT_NE(cache.get(ScenarioKey::of(tagged_scenario(3))), nullptr);

  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 3u);
  EXPECT_LE(st.bytes, cache.capacity_bytes());
}

TEST(WaveformCache, DiskSpillRoundTripIsBitwiseIdentical) {
  TempDir dir("spill");
  const auto one = fake_waveform(0)->byte_size();
  WaveformCache cache(one + one / 2, dir.path.string());  // one entry fits

  const ScenarioKey k0 = ScenarioKey::of(tagged_scenario(0));
  const ScenarioKey k1 = ScenarioKey::of(tagged_scenario(1));
  const auto wf0 = fake_waveform(0);
  cache.put(k0, wf0);
  cache.put(k1, fake_waveform(1));  // evicts + spills entry 0

  ASSERT_TRUE(fs::exists(cache.spill_path(k0)))
      << "eviction should have spilled to " << cache.spill_path(k0);

  bool from_disk = false;
  const auto back = cache.get(k0, &from_disk);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(from_disk);
  // Bitwise identity through the spill round-trip.
  EXPECT_EQ(serialize(*back), serialize(*wf0));

  // Atomic writes: no .tmp debris left behind.
  for (const auto& e : fs::directory_iterator(dir.path))
    EXPECT_EQ(e.path().extension(), ".wf")
        << "unexpected file " << e.path();

  const auto st = cache.stats();
  EXPECT_EQ(st.spills, 2u);  // entry 0 spilled, then entry 1 when 0 returned
  EXPECT_EQ(st.hits_disk, 1u);
  EXPECT_EQ(st.spill_failures, 0u);
}

TEST(WaveformCache, RejectsCorruptedSpillFiles) {
  TempDir dir("corrupt");
  const auto one = fake_waveform(0)->byte_size();
  WaveformCache cache(one + one / 2, dir.path.string());
  const ScenarioKey k0 = ScenarioKey::of(tagged_scenario(0));
  cache.put(k0, fake_waveform(0));
  cache.put(ScenarioKey::of(tagged_scenario(1)), fake_waveform(1));
  ASSERT_TRUE(fs::exists(cache.spill_path(k0)));

  // Truncate the spill file: the load must fail closed, not serve garbage.
  fs::resize_file(cache.spill_path(k0), 8);
  EXPECT_EQ(cache.get(k0), nullptr);
  EXPECT_GE(cache.stats().spill_failures, 1u);
}

// -------------------------------------------------------------- driver

TEST(EnsembleDriver, GoldenEquivalenceCacheHitVsRecompute) {
  const ScenarioConfig cfg = tiny_scenario();

  // Fresh synchronous recompute, outside any driver.
  const Waveform golden = run_scenario(cfg);
  ASSERT_GT(golden.psi4_22.times.size(), 0u);

  EnsembleConfig ecfg;
  ecfg.concurrency = 2;
  EnsembleDriver driver(ecfg);

  Source src;
  const auto first = driver.evolve(cfg, &src);
  EXPECT_EQ(src, Source::kComputed);
  const auto second = driver.evolve(cfg, &src);
  EXPECT_EQ(src, Source::kMemory);
  EXPECT_EQ(first.get(), second.get()) << "hit should share the entry";

  // The memoized result is bitwise identical to the fresh recompute.
  EXPECT_EQ(serialize(*first), serialize(golden));
}

TEST(EnsembleDriver, DiskSpillPreservesGoldenEquivalence) {
  TempDir dir("driver_spill");
  const ScenarioConfig cfg = tiny_scenario();
  const Waveform golden = run_scenario(cfg);

  EnsembleConfig ecfg;
  ecfg.concurrency = 1;
  ecfg.cache_bytes = 1;  // every insertion immediately evicts and spills
  ecfg.spill_dir = dir.path.string();
  EnsembleDriver driver(ecfg);

  Source src;
  const auto first = driver.evolve(cfg, &src);
  EXPECT_EQ(src, Source::kComputed);
  EXPECT_EQ(serialize(*first), serialize(golden));

  // Displace the resident entry (an oversized sole entry is pinned until
  // the next insert): the eviction spills it to disk.
  driver.cache().put(ScenarioKey::of(tagged_scenario(99)), fake_waveform(99));
  ASSERT_TRUE(fs::exists(driver.cache().spill_path(ScenarioKey::of(cfg))));

  const auto again = driver.evolve(cfg, &src);
  EXPECT_EQ(src, Source::kDisk);
  EXPECT_EQ(serialize(*again), serialize(golden))
      << "disk round-trip must be bitwise identical";
}

TEST(EnsembleDriver, CoalescesDuplicatesOneEvolutionPerUniqueConfig) {
  EnsembleConfig ecfg;
  ecfg.concurrency = 2;
  EnsembleDriver driver(ecfg);

  constexpr int kClients = 8;
  constexpr int kUnique = 3;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Each client hammers all unique configs; duplicates must coalesce
      // or hit the cache — never recompute.
      for (int u = 0; u < kUnique; ++u) {
        try {
          const auto wf = driver.evolve(tagged_scenario((c + u) % kUnique));
          if (!wf || wf->psi4_22.times.empty()) failures.fetch_add(1);
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  driver.drain();

  EXPECT_EQ(failures.load(), 0);
  const auto st = driver.stats();
  EXPECT_EQ(st.submitted, std::uint64_t{kClients} * kUnique);
  EXPECT_EQ(st.evolutions, std::uint64_t{kUnique})
      << "a unique config must be evolved exactly once";
  EXPECT_EQ(st.failures, 0u);
}

TEST(EnsembleDriver, SizeAwareRoutingSmallVsLarge) {
  EnsembleConfig ecfg;
  ecfg.concurrency = 2;
  // Threshold between the two test scenarios' estimates.
  const ScenarioConfig small_cfg = tiny_scenario();
  ScenarioConfig large_cfg = tiny_scenario();
  large_cfg.base_level = 2;
  large_cfg.finest_level = 3;
  ASSERT_LT(estimated_octants(small_cfg), estimated_octants(large_cfg));
  ecfg.large_job_octants = estimated_octants(large_cfg);
  EnsembleDriver driver(ecfg);

  (void)driver.evolve(small_cfg);
  (void)driver.evolve(large_cfg);
  driver.drain();

  const auto st = driver.stats();
  EXPECT_EQ(st.jobs_small, 1u);
  EXPECT_EQ(st.jobs_large, 1u);
  EXPECT_EQ(st.evolutions, 2u);
}

TEST(EnsembleDriver, ResultsIndependentOfRoutingAndConcurrency) {
  const ScenarioConfig cfg = tiny_scenario();
  std::string blobs[3];
  int i = 0;
  for (const std::size_t threshold : {std::size_t{1}, std::size_t{1} << 30}) {
    EnsembleConfig ecfg;
    ecfg.concurrency = (i == 0) ? 1 : 3;
    ecfg.large_job_octants = threshold;  // force large vs small routing
    EnsembleDriver driver(ecfg);
    blobs[i++] = serialize(*driver.evolve(cfg));
  }
  blobs[i++] = serialize(run_scenario(cfg));
  EXPECT_EQ(blobs[0], blobs[1])
      << "dispatcher vs pool-task execution must agree bitwise";
  EXPECT_EQ(blobs[1], blobs[2])
      << "driver vs direct run_scenario must agree bitwise";
}
