/// \file test_fd.cpp
/// \brief Stencil tests: Fornberg weight generation, polynomial exactness,
/// measured convergence orders, and Kreiss–Oliger dissipation properties.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "fd/stencils.hpp"

namespace dgr::fd {
namespace {

TEST(Fornberg, ReproducesClassicCentered2ndOrder) {
  auto w = fornberg_weights(0.0, {-1, 0, 1}, 1);
  EXPECT_NEAR(w[0], -0.5, 1e-14);
  EXPECT_NEAR(w[1], 0.0, 1e-14);
  EXPECT_NEAR(w[2], 0.5, 1e-14);
  auto w2 = fornberg_weights(0.0, {-1, 0, 1}, 2);
  EXPECT_NEAR(w2[0], 1.0, 1e-14);
  EXPECT_NEAR(w2[1], -2.0, 1e-14);
  EXPECT_NEAR(w2[2], 1.0, 1e-14);
}

TEST(Fornberg, Centered6thOrderFirstDerivative) {
  auto w = fornberg_weights(0.0, {-3, -2, -1, 0, 1, 2, 3}, 1);
  const Real expect[7] = {-1.0 / 60, 3.0 / 20, -3.0 / 4, 0.0,
                          3.0 / 4,   -3.0 / 20, 1.0 / 60};
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(w[i], expect[i], 1e-13);
}

TEST(Fornberg, Centered6thOrderSecondDerivative) {
  auto w = fornberg_weights(0.0, {-3, -2, -1, 0, 1, 2, 3}, 2);
  const Real expect[7] = {1.0 / 90,  -3.0 / 20, 3.0 / 2, -49.0 / 18,
                          3.0 / 2,   -3.0 / 20, 1.0 / 90};
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(w[i], expect[i], 1e-12);
}

TEST(Fornberg, WeightsExactOnPolynomials) {
  // Degree-6 exactness of the 7-node first-derivative weights at x0 = 0.4.
  std::vector<Real> nodes = {-3, -2, -1, 0, 1, 2, 3};
  auto w = fornberg_weights(0.4, nodes, 1);
  for (int deg = 0; deg <= 6; ++deg) {
    Real s = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      s += w[i] * std::pow(nodes[i], deg);
    const Real exact = deg == 0 ? 0.0 : deg * std::pow(0.4, deg - 1);
    EXPECT_NEAR(s, exact, 1e-10) << "degree " << deg;
  }
}

/// Fill a patch with f evaluated on a unit-spacing lattice scaled by h.
void fill_patch(Real* u, Real h,
                const std::function<Real(Real, Real, Real)>& f) {
  for (int k = 0; k < kPatch; ++k)
    for (int j = 0; j < kPatch; ++j)
      for (int i = 0; i < kPatch; ++i)
        u[patch_idx(i, j, k)] = f(i * h, j * h, k * h);
}

/// Max abs error of `out` against `exact` over the interior 7^3 region.
Real interior_max_err(const Real* out, Real h,
                      const std::function<Real(Real, Real, Real)>& exact) {
  Real e = 0;
  for (int k = kPad; k < kPad + kR; ++k)
    for (int j = kPad; j < kPad + kR; ++j)
      for (int i = kPad; i < kPad + kR; ++i)
        e = std::max(e, std::abs(out[patch_idx(i, j, k)] -
                                 exact(i * h, j * h, k * h)));
  return e;
}

TEST(Stencils, D1ExactOnDegree6Polynomial) {
  const Real h = 0.37;
  Real u[kPatchPts], out[kPatchPts];
  fill_patch(u, h, [](Real x, Real y, Real z) {
    return std::pow(x, 6) + x * x * y + z;
  });
  d1(u, out, 0, h);
  const Real err = interior_max_err(
      out, h, [](Real x, Real y, Real) { return 6 * std::pow(x, 5) + 2 * x * y; });
  EXPECT_LT(err, 1e-8);
}

TEST(Stencils, D2ExactOnDegree6Polynomial) {
  const Real h = 0.21;
  Real u[kPatchPts], out[kPatchPts];
  fill_patch(u, h, [](Real x, Real, Real) { return std::pow(x, 6); });
  d2(u, out, 0, h);
  const Real err = interior_max_err(
      out, h, [](Real x, Real, Real) { return 30 * std::pow(x, 4); });
  EXPECT_LT(err, 1e-7);
}

TEST(Stencils, MixedDerivativeExactOnPolynomial) {
  const Real h = 0.15;
  Real u[kPatchPts], scratch[kPatchPts], out[kPatchPts];
  fill_patch(u, h, [](Real x, Real y, Real z) {
    return x * x * x * y * y + x * z;
  });
  d2_mixed(u, scratch, out, 0, 1, h);
  const Real err = interior_max_err(
      out, h, [](Real x, Real y, Real) { return 6 * x * x * y; });
  EXPECT_LT(err, 1e-9);
}

/// Measured convergence order of an operator applied to sin waves.
Real convergence_order(int axis, int deriv_order) {
  // Comparable phase speed on every axis so the truncation error stays well
  // above roundoff for each measured direction.
  auto f = [](Real x, Real y, Real z) { return std::sin(x + 0.9 * y + 0.8 * z); };
  const Real coef[3] = {1.0, 0.9, 0.8};
  Real errs[2];
  int n = 0;
  for (Real h : {0.1, 0.05}) {
    Real u[kPatchPts], out[kPatchPts];
    fill_patch(u, h, f);
    if (deriv_order == 1)
      d1(u, out, axis, h);
    else
      d2(u, out, axis, h);
    errs[n++] = interior_max_err(out, h, [&](Real x, Real y, Real z) {
      const Real phase = x + 0.9 * y + 0.8 * z;
      return deriv_order == 1 ? coef[axis] * std::cos(phase)
                              : -coef[axis] * coef[axis] * std::sin(phase);
    });
  }
  return std::log2(errs[0] / errs[1]);
}

class StencilOrder : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StencilOrder, SixthOrderConvergence) {
  const auto [axis, m] = GetParam();
  const Real order = convergence_order(axis, m);
  EXPECT_GT(order, 5.5) << "axis " << axis << " deriv " << m;
  EXPECT_LT(order, 7.0) << "axis " << axis << " deriv " << m;
}

INSTANTIATE_TEST_SUITE_P(AllAxes, StencilOrder,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2)));

TEST(Stencils, UpwindMatchesCenteredOnSmoothData) {
  const Real h = 0.02;
  Real u[kPatchPts], beta[kPatchPts], out_p[kPatchPts], out_n[kPatchPts];
  fill_patch(u, h, [](Real x, Real y, Real) { return std::sin(3 * x) + y; });
  for (auto& b : beta) b = 1.0;
  d1_upwind(u, beta, out_p, 0, h);
  for (auto& b : beta) b = -1.0;
  d1_upwind(u, beta, out_n, 0, h);
  const auto exact = [](Real x, Real, Real) { return 3 * std::cos(3 * x); };
  EXPECT_LT(interior_max_err(out_p, h, exact), 1e-5);
  EXPECT_LT(interior_max_err(out_n, h, exact), 1e-5);
}

TEST(Stencils, UpwindFourthOrderConvergence) {
  Real errs[2];
  int n = 0;
  for (Real h : {0.1, 0.05}) {
    Real u[kPatchPts], beta[kPatchPts], out[kPatchPts];
    fill_patch(u, h, [](Real x, Real, Real) { return std::sin(x); });
    for (auto& b : beta) b = 1.0;
    d1_upwind(u, beta, out, 0, h);
    errs[n++] = interior_max_err(
        out, h, [](Real x, Real, Real) { return std::cos(x); });
  }
  const Real order = std::log2(errs[0] / errs[1]);
  EXPECT_GT(order, 3.5);
  EXPECT_LT(order, 5.5);
}

TEST(Stencils, UpwindBiasDirectionSwitches) {
  // On non-smooth data the two biases give different answers.
  const Real h = 1.0;
  Real u[kPatchPts], beta[kPatchPts], a[kPatchPts], b[kPatchPts];
  fill_patch(u, h, [](Real x, Real, Real) { return x > 6 ? 1.0 : 0.0; });
  for (auto& v : beta) v = 1.0;
  d1_upwind(u, beta, a, 0, h);
  for (auto& v : beta) v = -1.0;
  d1_upwind(u, beta, b, 0, h);
  Real diff = 0;
  for (int i = 0; i < kPatchPts; ++i) diff = std::max(diff, std::abs(a[i] - b[i]));
  EXPECT_GT(diff, 0.01);
}

TEST(KreissOliger, AnnihilatesQuinticPolynomials) {
  const Real h = 0.3;
  Real u[kPatchPts], out[kPatchPts];
  fill_patch(u, h, [](Real x, Real y, Real z) {
    return std::pow(x, 5) - 2 * std::pow(y, 4) + z * z * x + 1.0;
  });
  ko_dissipation(u, out, 0.4, h);
  for (int k = kPad; k < kPad + kR; ++k)
    for (int j = kPad; j < kPad + kR; ++j)
      for (int i = kPad; i < kPad + kR; ++i)
        EXPECT_NEAR(out[patch_idx(i, j, k)], 0.0, 1e-8);
}

TEST(KreissOliger, DampsHighestFrequencyMode) {
  // u = (-1)^i along x: the KO term must be strictly negative where u = +1
  // (dissipative sign convention).
  const Real h = 0.5;
  Real u[kPatchPts], out[kPatchPts];
  for (int k = 0; k < kPatch; ++k)
    for (int j = 0; j < kPatch; ++j)
      for (int i = 0; i < kPatch; ++i)
        u[patch_idx(i, j, k)] = (i % 2 == 0) ? 1.0 : -1.0;
  ko_dissipation(u, out, 0.1, h);
  for (int k = kPad; k < kPad + kR; ++k)
    for (int j = kPad; j < kPad + kR; ++j)
      for (int i = kPad; i < kPad + kR; ++i) {
        const Real ui = u[patch_idx(i, j, k)];
        const Real d = out[patch_idx(i, j, k)];
        EXPECT_LT(ui * d, 0.0) << "KO must oppose the mode";
      }
}

TEST(KreissOliger, ScalesLinearlyWithSigma) {
  const Real h = 0.2;
  Real u[kPatchPts], o1[kPatchPts], o2[kPatchPts];
  fill_patch(u, h, [](Real x, Real y, Real z) {
    return std::sin(9 * x) * std::cos(7 * y) + z;
  });
  ko_dissipation(u, o1, 0.1, h);
  ko_dissipation(u, o2, 0.2, h);
  for (int k = kPad; k < kPad + kR; ++k)
    for (int j = kPad; j < kPad + kR; ++j)
      for (int i = kPad; i < kPad + kR; ++i)
        EXPECT_NEAR(o2[patch_idx(i, j, k)], 2 * o1[patch_idx(i, j, k)], 1e-10);
}

}  // namespace
}  // namespace dgr::fd
