file(REMOVE_RECURSE
  "CMakeFiles/dgr_codegen.dir/bssn_graph.cpp.o"
  "CMakeFiles/dgr_codegen.dir/bssn_graph.cpp.o.d"
  "CMakeFiles/dgr_codegen.dir/expr.cpp.o"
  "CMakeFiles/dgr_codegen.dir/expr.cpp.o.d"
  "CMakeFiles/dgr_codegen.dir/interp_rhs.cpp.o"
  "CMakeFiles/dgr_codegen.dir/interp_rhs.cpp.o.d"
  "CMakeFiles/dgr_codegen.dir/machine.cpp.o"
  "CMakeFiles/dgr_codegen.dir/machine.cpp.o.d"
  "CMakeFiles/dgr_codegen.dir/scheduler.cpp.o"
  "CMakeFiles/dgr_codegen.dir/scheduler.cpp.o.d"
  "libdgr_codegen.a"
  "libdgr_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
