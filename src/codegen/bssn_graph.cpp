#include "codegen/bssn_graph.hpp"

#include <string>

namespace dgr::codegen {

namespace {

/// Visit every input slot of AlgebraInputs in one canonical order. The
/// builder and the packer both go through this function, so they cannot
/// drift apart.
template <class S, class F>
void visit_inputs(bssn::AlgebraInputs<S>& q, F&& f) {
  f(q.a, "alpha");
  f(q.ch, "chi");
  f(q.Kt, "K");
  for (int i = 0; i < 3; ++i) f(q.Gt[i], "Gt" + std::to_string(i));
  for (int i = 0; i < 3; ++i) f(q.bet[i], "beta" + std::to_string(i));
  for (int i = 0; i < 3; ++i) f(q.Bv[i], "B" + std::to_string(i));
  for (int s = 0; s < 6; ++s) f(q.gt[s], "gt" + std::to_string(s));
  for (int s = 0; s < 6; ++s) f(q.At[s], "At" + std::to_string(s));
  for (int a = 0; a < 3; ++a) f(q.d_a[a], "d_alpha_" + std::to_string(a));
  for (int a = 0; a < 3; ++a) f(q.d_ch[a], "d_chi_" + std::to_string(a));
  for (int a = 0; a < 3; ++a) f(q.d_K[a], "d_K_" + std::to_string(a));
  for (int i = 0; i < 3; ++i)
    for (int a = 0; a < 3; ++a)
      f(q.d_b[i][a], "d_beta" + std::to_string(i) + "_" + std::to_string(a));
  for (int i = 0; i < 3; ++i)
    for (int a = 0; a < 3; ++a)
      f(q.d_Gt[i][a], "d_Gt" + std::to_string(i) + "_" + std::to_string(a));
  for (int s = 0; s < 6; ++s)
    for (int a = 0; a < 3; ++a)
      f(q.d_gt[s][a], "d_gt" + std::to_string(s) + "_" + std::to_string(a));
  for (int s = 0; s < 6; ++s)
    for (int a = 0; a < 3; ++a)
      f(q.d_At[s][a], "d_At" + std::to_string(s) + "_" + std::to_string(a));
  for (int s = 0; s < 6; ++s) f(q.dd_a[s], "dd_alpha_" + std::to_string(s));
  for (int s = 0; s < 6; ++s) f(q.dd_ch[s], "dd_chi_" + std::to_string(s));
  for (int i = 0; i < 3; ++i)
    for (int s = 0; s < 6; ++s)
      f(q.dd_b[i][s], "dd_beta" + std::to_string(i) + "_" + std::to_string(s));
  for (int g = 0; g < 6; ++g)
    for (int s = 0; s < 6; ++s)
      f(q.dd_gt[g][s], "dd_gt" + std::to_string(g) + "_" + std::to_string(s));
  for (int v = 0; v < bssn::kNumVars; ++v)
    f(q.ad[v], "adv_" + std::string(bssn::var_name(v)));
  for (int v = 0; v < bssn::kNumVars; ++v)
    f(q.ko[v], "ko_" + std::string(bssn::var_name(v)));
}

}  // namespace

int bssn_algebra_num_inputs() {
  int n = 0;
  bssn::AlgebraInputs<int> dummy{};
  visit_inputs(dummy, [&](int&, const std::string&) { ++n; });
  return n;
}

const AlgebraInputIndex& algebra_input_index() {
  static const AlgebraInputIndex m = [] {
    AlgebraInputIndex a;
    visit_inputs(a.idx, [&](int& slot, const std::string&) { slot = a.count++; });
    return a;
  }();
  return m;
}

BssnAlgebraGraph build_bssn_algebra_graph(Real lambda_f0, Real eta,
                                          Real ko_sigma) {
  BssnAlgebraGraph out;
  Graph& g = out.graph;
  bssn::AlgebraInputs<Sym> q;
  visit_inputs(q, [&](Sym& slot, const std::string& name) {
    slot = Sym(&g, g.add_input(name));
  });
  out.num_inputs = g.num_inputs();
  const bssn::AlgebraParams<Sym> prm{Sym(&g, g.add_const(lambda_f0)),
                                     Sym(&g, g.add_const(eta)),
                                     Sym(&g, g.add_const(ko_sigma))};
  Sym rhs[bssn::kNumVars];
  bssn::bssn_algebra_point(q, prm, rhs);
  for (int v = 0; v < bssn::kNumVars; ++v) out.outputs[v] = rhs[v].id();
  return out;
}

void pack_algebra_inputs(const bssn::AlgebraInputs<Real>& q, Real* buf) {
  int idx = 0;
  visit_inputs(const_cast<bssn::AlgebraInputs<Real>&>(q),
               [&](Real& slot, const std::string&) { buf[idx++] = slot; });
}

}  // namespace dgr::codegen
