/// \file bench_fig19_convergence.cpp
/// \brief Regenerates Fig. 19: convergence of the extracted waveform with
/// decreasing refinement tolerance epsilon. The AMR estimator (the same
/// wavelet criterion the solver regrids with) builds a mesh per epsilon; a
/// scaled-down equal-mass binary is evolved on each and Re psi4_(2,2) is
/// compared against the finest-tolerance run (our "LAZEV surrogate" — see
/// DESIGN.md substitutions).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "gw/extract.hpp"
#include "solver/regrid.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 19", "waveform convergence with refinement tolerance");
  bench::Reporter rep("fig19_convergence", argc, argv);

  const Real q = 1.0, sep = 2.0, half = 16.0;
  const int steps = 4;
  // The puncture's 1/r cusp keeps the local detail near ~1e-1 however deep
  // the cascade goes, so tolerances inside the observed detail distribution
  // produce strictly deeper grids as eps decreases. Last value = reference.
  const std::vector<Real> epsilons = {1.5e-1, 3e-2, 3e-3};

  gw::WaveExtractor extractor({6.0}, 2, 8);
  std::vector<std::vector<Real>> series;  // per eps: Re psi4_22 per step
  std::vector<std::size_t> octants;
  Real dt_common = -1;

  for (Real eps : epsilons) {
    // Build the epsilon-mesh: start from a uniform base and regrid with the
    // production estimator until stable.
    auto m = std::make_shared<mesh::Mesh>(oct::Octree::uniform(2),
                                          oct::Domain{half});
    solver::RegridConfig rc;
    rc.eps = eps;
    rc.max_level = 5;
    rc.min_level = 2;
    for (int pass = 0; pass < 4; ++pass) {
      bssn::BssnState s;
      bench::init_bbh_state(*m, q, sep, s);
      auto next = solver::regrid_mesh(*m, s, rc);
      if (!next) break;
      m = next;
    }
    octants.push_back(m->num_octants());

    solver::SolverConfig cfg;
    cfg.bssn.ko_sigma = 0.3;
    solver::BssnCtx ctx(m, cfg);
    bench::init_bbh_state(*m, q, sep, ctx.state());
    if (dt_common < 0) {
      // All runs share the finest run's timestep so samples align in time.
      solver::RegridConfig rc_ref = rc;
      rc_ref.eps = epsilons.back();
      dt_common = 0.25 * m->domain().octant_edge(rc.max_level) /
                  (mesh::kR - 1);
    }
    std::vector<Real> wave;
    for (int i = 0; i < steps; ++i) {
      ctx.rk4_step(dt_common);
      const auto modes =
          extractor.extract_from_state(*m, ctx.state(), cfg.bssn);
      wave.push_back(6.0 * modes[0].mode(2, 2).real());  // r * psi4
    }
    series.push_back(std::move(wave));
  }

  std::printf("  eps      | octants | max |Re r*psi4_22 - reference|\n");
  const auto& ref = series.back();
  Real prev_diff = -1;
  bool monotone = true;
  for (std::size_t i = 0; i + 1 < epsilons.size(); ++i) {
    Real diff = 0;
    for (int s = 0; s < steps; ++s)
      diff = std::max(diff, std::abs(series[i][s] - ref[s]));
    std::printf("  %-8.0e | %-7zu | %.3e\n", epsilons[i], octants[i], diff);
    char key[32];
    std::snprintf(key, sizeof key, "wave_err_eps%.0e", epsilons[i]);
    rep.pair(key, NAN, diff);
    rep.metric(std::string("octants_eps") + std::to_string(i),
               double(octants[i]));
    if (prev_diff >= 0 && diff > prev_diff) monotone = false;
    prev_diff = diff;
  }
  rep.pair("error_decreases_with_eps", 1.0, monotone ? 1.0 : 0.0);
  std::printf("  %-8.0e | %-7zu | (reference run)\n", epsilons.back(),
              octants.back());
  bench::note("decreasing epsilon refines the grid and the waveform");
  bench::note("converges toward the reference, as in the paper's comparison");
  bench::note("against the high-resolution LAZEV waveform.");
  return 0;
}
