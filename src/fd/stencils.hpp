#pragma once
/// \file stencils.hpp
/// \brief Finite-difference stencils on 13^3 patches (paper §III-A/§III-B):
/// O(h^6) centered first and second derivatives, 4th-order upwind advective
/// derivatives (the widest that fit the k=3 padding, as in Dendro-GR's
/// "644" derivative family), and 5th-order Kreiss–Oliger dissipation.
///
/// Conventions. All operators read a full 13^3 patch and write a 13^3
/// buffer. Output is valid at every point where the stencil fits inside the
/// patch: for centered operators along axis a that is index 3..9 along a and
/// the full 0..12 range along the other axes — wide enough that mixed second
/// derivatives can be formed by composing two first-derivative sweeps.

#include <array>
#include <vector>

#include "common/types.hpp"
#include "mesh/patch.hpp"

namespace dgr::fd {

using mesh::kPad;
using mesh::kPatch;
using mesh::kPatchPts;
using mesh::kR;
using mesh::patch_idx;

/// Fornberg's algorithm: weights of the m-th derivative at evaluation point
/// x0 for the given node offsets. Exact for polynomials up to degree
/// nodes.size()-1.
std::vector<Real> fornberg_weights(Real x0, const std::vector<Real>& nodes,
                                   int m);

/// The fixed stencil weight tables used by every operator below. Exposed so
/// the fused point evaluators (stencils_point.hpp) contract the exact same
/// coefficients in the exact same order as the sweep operators — the basis
/// of the fused-kernel bitwise-identity contract.
struct StencilWeights {
  Real w1[7];      ///< centered first derivative, nodes -3..3
  Real w2[7];      ///< centered second derivative, nodes -3..3
  Real up_pos[5];  ///< 4th-order upwind for positive speed, nodes -1..3
  Real up_neg[5];  ///< mirrored, nodes -3..1
  Real ko[7];      ///< KO numerator (binomial / 64), nodes -3..3
};
const StencilWeights& stencil_weights();

/// Element stride of a patch axis (0=x, 1=y, 2=z).
constexpr int axis_stride(int axis) {
  return axis == 0 ? 1 : axis == 1 ? kPatch : kPatch * kPatch;
}

/// Centered O(h^6) first derivative along axis (0=x, 1=y, 2=z).
void d1(const Real* u, Real* out, int axis, Real h);

/// Centered O(h^6) second derivative along a single axis.
void d2(const Real* u, Real* out, int axis, Real h);

/// Mixed second derivative d^2/(da db), a != b, via two d1 sweeps. Valid on
/// the region where both sweeps fit (indices 3..9 along both axes).
void d2_mixed(const Real* u, Real* scratch, Real* out, int axis_a, int axis_b,
              Real h);

/// 4th-order upwind ("advective") first derivative along axis: at each
/// output point the stencil is biased by the sign of the advection speed
/// `beta` (same layout as u). Valid on interior indices 3..9 along all axes.
void d1_upwind(const Real* u, const Real* beta, Real* out, int axis, Real h);

/// 5th-order Kreiss–Oliger dissipation, all three axes summed:
///   sigma/(64 h) * (u_{i-3} - 6u_{i-2} + 15u_{i-1} - 20u_i + ...).
/// Valid on interior indices 3..9 along all axes. The operator annihilates
/// polynomials of degree <= 5 and is negative semi-definite.
void ko_dissipation(const Real* u, Real* out, Real sigma, Real h);

/// Flop cost (per valid output point) of each operator — used by the
/// performance counters of the RHS kernels.
inline constexpr int kD1Flops = 2 * 7;
inline constexpr int kD2Flops = 2 * 7;
inline constexpr int kUpwindFlops = 2 * 5 + 1;
inline constexpr int kKoFlops = 3 * (2 * 7) + 2;

}  // namespace dgr::fd
