file(REMOVE_RECURSE
  "libdgr_gw.a"
)
