#pragma once
/// \file metrics.hpp
/// \brief MetricsRegistry: named counters (monotonic uint64), gauges
/// (last-value double), and summaries (count/sum/min/max of observations),
/// with a deterministic JSON snapshot writer. The solver, the simulated
/// GPU runtime, and the distributed engine feed a registry installed via
/// obs::install_metrics(); benches snapshot it into BENCH_<name>.json.
///
/// Thread safety: all mutators and scalar readers are guarded by one
/// internal mutex, so instrumented code may feed the registry from pool
/// workers (src/exec) concurrently. The by-reference map accessors
/// (counters()/gauges()/summaries()) are for quiesced use — snapshotting
/// after a run, not during one.

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace dgr::obs {

class MetricsRegistry {
 public:
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    double mean() const { return count ? sum / double(count) : 0.0; }
  };

  /// Counter: monotonically increasing by `n`.
  void add(const std::string& name, std::uint64_t n = 1) {
    std::lock_guard<std::mutex> lk(m_);
    counters_[name] += n;
  }
  /// Gauge: last value wins.
  void set(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(m_);
    gauges_[name] = v;
  }
  /// Summary: record one observation.
  void observe(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(m_);
    Summary& s = summaries_[name];
    s.count += 1;
    s.sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
  }

  std::uint64_t counter(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  bool has_gauge(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    return gauges_.count(name) > 0;
  }
  double gauge(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  /// Quiesced use only: the pointer is invalidated by concurrent observe().
  const Summary* summary(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_);
    auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(m_);
    return counters_.empty() && gauges_.empty() && summaries_.empty();
  }
  void reset() {
    std::lock_guard<std::mutex> lk(m_);
    counters_.clear();
    gauges_.clear();
    summaries_.clear();
  }

  /// Snapshot as a JSON object (sorted by name within each kind):
  /// {"counters":{...},"gauges":{...},"summaries":{"x":{"count":...}}}
  std::string json() const;
  /// Write json() to `path`; returns false if the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex m_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace dgr::obs
