# Empty compiler generated dependencies file for dgr_perf.
# This may be replaced when dependencies are built.
