/// \file test_codegen.cpp
/// \brief Code-generation pipeline tests: expression-graph CSE/folding, the
/// BSSN algebraic DAG (Fig. 10), the three schedules of §IV-B, register
/// allocation / spill accounting (Table II), and bit-level agreement of the
/// interpreted kernels with the compiled production RHS.

#include <gtest/gtest.h>

#include <cmath>

#include "bssn/algebra.hpp"
#include "bssn/initial_data.hpp"
#include "codegen/bssn_graph.hpp"
#include "codegen/fused_rhs.hpp"
#include "codegen/interp_rhs.hpp"
#include "codegen/machine.hpp"
#include "common/rng.hpp"

namespace dgr::codegen {
namespace {

TEST(Graph, HashConsingDeduplicates) {
  Graph g;
  Sym a(&g, g.add_input("a"));
  Sym b(&g, g.add_input("b"));
  Sym e1 = a * b + a;
  Sym e2 = b * a + a;  // commutative normalization: same node
  EXPECT_EQ(e1.id(), e2.id());
}

TEST(Graph, ConstantFoldingAndIdentities) {
  Graph g;
  Sym a(&g, g.add_input("a"));
  EXPECT_EQ((a + 0.0).id(), a.id());
  EXPECT_EQ((a * 1.0).id(), a.id());
  EXPECT_EQ((0.0 * a).id(), g.add_const(0));
  EXPECT_EQ((a - a).id(), g.add_const(0));
  EXPECT_EQ((-(-a)).id(), a.id());
  Sym c = Sym(&g, g.add_const(2.0)) * Sym(&g, g.add_const(3.0));
  EXPECT_EQ(g.node(c.id()).op, Op::kConst);
  EXPECT_EQ(g.node(c.id()).value, 6.0);
}

TEST(Graph, ReferenceEvaluator) {
  Graph g;
  Sym a(&g, g.add_input("a"));
  Sym b(&g, g.add_input("b"));
  Sym e = (a + 2.0) * b - a / b;
  const double v = g.evaluate(e.id(), {3.0, 4.0});
  EXPECT_NEAR(v, (3.0 + 2.0) * 4.0 - 3.0 / 4.0, 1e-14);
}

TEST(BssnGraph, BuildsComposedDag) {
  const auto bg = build_bssn_algebra_graph();
  // The paper's composed graph has 2516 nodes and 6708 edges; ours differs
  // in detail (different CSE granularity, pre-combined advective terms) but
  // must be the same order of magnitude.
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const std::size_t nodes = bg.graph.reachable_size(roots);
  EXPECT_GT(nodes, 800u);
  EXPECT_LT(nodes, 20000u);
  EXPECT_GT(bg.graph.num_edges(), 1500u);
  EXPECT_EQ(bg.num_inputs, bssn_algebra_num_inputs());
  EXPECT_GT(bg.num_inputs, 180);  // 24 fields + >160 derivative inputs
}

std::vector<double> random_inputs(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> in(n);
  for (auto& v : in) v = rng.uniform(0.5, 1.5);  // keep chi, det positive
  return in;
}

TEST(Scheduler, AllStrategiesAreValidTopologicalOrders) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  for (Strategy s : {Strategy::kSympygrCse, Strategy::kBinaryReduce,
                     Strategy::kStagedCse}) {
    const auto order = schedule_nodes(bg.graph, roots, s);
    std::vector<char> emitted(bg.graph.size(), 0);
    for (std::int32_t id : order) {
      const Node& n = bg.graph.node(id);
      if (n.a >= 0 && bg.graph.node(n.a).op != Op::kInput &&
          bg.graph.node(n.a).op != Op::kConst) {
        EXPECT_TRUE(emitted[n.a]) << strategy_name(s);
      }
      if (n.b >= 0 && bg.graph.node(n.b).op != Op::kInput &&
          bg.graph.node(n.b).op != Op::kConst) {
        EXPECT_TRUE(emitted[n.b]) << strategy_name(s);
      }
      emitted[id] = 1;
    }
    // Every output computed.
    for (std::int32_t out : roots)
      EXPECT_TRUE(emitted[out] || bg.graph.node(out).op == Op::kInput ||
                  bg.graph.node(out).op == Op::kConst);
  }
}

TEST(Scheduler, SchedulesHaveEqualLength) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const auto a = schedule_nodes(bg.graph, roots, Strategy::kSympygrCse);
  const auto b = schedule_nodes(bg.graph, roots, Strategy::kBinaryReduce);
  const auto c = schedule_nodes(bg.graph, roots, Strategy::kStagedCse);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), c.size());
}

TEST(Scheduler, BinaryReduceMinimizesLiveRange) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const auto base = schedule_nodes(bg.graph, roots, Strategy::kSympygrCse);
  const auto br = schedule_nodes(bg.graph, roots, Strategy::kBinaryReduce);
  const auto st = schedule_nodes(bg.graph, roots, Strategy::kStagedCse);
  const int live_base = max_live_temporaries(bg.graph, base, roots);
  const int live_br = max_live_temporaries(bg.graph, br, roots);
  const int live_st = max_live_temporaries(bg.graph, st, roots);
  // The paper's ordering: the baseline holds (almost) every CSE temp live,
  // the proposed orderings far fewer.
  EXPECT_LT(live_br, live_base / 2);
  EXPECT_LT(live_st, live_base);
}

TEST(Machine, SpillOrderingMatchesTableII) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel base(bg.graph, roots, Strategy::kSympygrCse);
  const CompiledKernel br(bg.graph, roots, Strategy::kBinaryReduce);
  const CompiledKernel st(bg.graph, roots, Strategy::kStagedCse);
  const auto traffic = [](const SpillStats& s) {
    return s.spill_load_bytes + s.spill_store_bytes;
  };
  // Table II: the SymPyGR baseline spills far more than both variants.
  EXPECT_GT(traffic(base.stats()), 2 * traffic(br.stats()));
  EXPECT_GT(traffic(base.stats()), 2 * traffic(st.stats()));
  EXPECT_GT(traffic(base.stats()), 0u);
}

TEST(Machine, AllStrategiesMatchReferenceEvaluation) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const auto in = random_inputs(bg.num_inputs, 99);
  std::vector<double> ref(bssn::kNumVars);
  for (int v = 0; v < bssn::kNumVars; ++v)
    ref[v] = bg.graph.evaluate(bg.outputs[v], in);
  for (Strategy s : {Strategy::kSympygrCse, Strategy::kBinaryReduce,
                     Strategy::kStagedCse}) {
    const CompiledKernel k(bg.graph, roots, s);
    std::vector<double> out(bssn::kNumVars, -1);
    k.run(in.data(), out.data());
    for (int v = 0; v < bssn::kNumVars; ++v)
      EXPECT_EQ(out[v], ref[v]) << strategy_name(s) << " var " << v;
  }
}

TEST(Machine, TinyRegisterBudgetStillCorrectWithMoreSpills) {
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k56(bg.graph, roots, Strategy::kBinaryReduce, 56);
  const CompiledKernel k8(bg.graph, roots, Strategy::kBinaryReduce, 8);
  EXPECT_GT(k8.stats().spill_load_bytes, k56.stats().spill_load_bytes);
  const auto in = random_inputs(bg.num_inputs, 7);
  std::vector<double> a(bssn::kNumVars), b(bssn::kNumVars);
  k56.run(in.data(), a.data());
  k8.run(in.data(), b.data());
  for (int v = 0; v < bssn::kNumVars; ++v) EXPECT_EQ(a[v], b[v]);
}

TEST(Machine, KernelMatchesCompiledAlgebra) {
  // The scheduled program and the production template must agree to within
  // floating-point reassociation (the DAG folds/reorders some constants).
  const Real lf = 0.75, eta = 2.0, ko = 0.1;
  const auto bg = build_bssn_algebra_graph(lf, eta, ko);
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k(bg.graph, roots, Strategy::kStagedCse);

  Rng rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    bssn::AlgebraInputs<Real> q;
    auto fill = [&](Real* p, int n, Real lo, Real hi) {
      for (int i = 0; i < n; ++i) p[i] = rng.uniform(lo, hi);
    };
    fill(&q.a, 1, 0.5, 1.0);
    fill(&q.ch, 1, 0.3, 1.0);
    fill(&q.Kt, 1, -0.2, 0.2);
    fill(q.Gt, 3, -0.1, 0.1);
    fill(q.bet, 3, -0.1, 0.1);
    fill(q.Bv, 3, -0.1, 0.1);
    // A perturbed SPD conformal metric.
    q.gt[0] = 1 + rng.uniform(-0.1, 0.1);
    q.gt[3] = 1 + rng.uniform(-0.1, 0.1);
    q.gt[5] = 1 + rng.uniform(-0.1, 0.1);
    q.gt[1] = rng.uniform(-0.05, 0.05);
    q.gt[2] = rng.uniform(-0.05, 0.05);
    q.gt[4] = rng.uniform(-0.05, 0.05);
    fill(q.At, 6, -0.1, 0.1);
    fill(q.d_a, 3, -0.1, 0.1);
    fill(q.d_ch, 3, -0.1, 0.1);
    fill(q.d_K, 3, -0.1, 0.1);
    fill(&q.d_b[0][0], 9, -0.1, 0.1);
    fill(&q.d_Gt[0][0], 9, -0.1, 0.1);
    fill(&q.d_gt[0][0], 18, -0.1, 0.1);
    fill(&q.d_At[0][0], 18, -0.1, 0.1);
    fill(q.dd_a, 6, -0.1, 0.1);
    fill(q.dd_ch, 6, -0.1, 0.1);
    fill(&q.dd_b[0][0], 18, -0.1, 0.1);
    fill(&q.dd_gt[0][0], 36, -0.1, 0.1);
    fill(q.ad, bssn::kNumVars, -0.1, 0.1);
    fill(q.ko, bssn::kNumVars, -0.1, 0.1);

    Real ref[bssn::kNumVars];
    const bssn::AlgebraParams<Real> prm{lf, eta, ko};
    bssn::bssn_algebra_point(q, prm, ref);

    std::vector<Real> packed(bg.num_inputs);
    pack_algebra_inputs(q, packed.data());
    Real out[bssn::kNumVars];
    k.run(packed.data(), out);
    for (int v = 0; v < bssn::kNumVars; ++v)
      EXPECT_NEAR(out[v], ref[v], 1e-11 * (1 + std::abs(ref[v])))
          << "var " << v;
  }
}

TEST(InterpRhs, MatchesCompiledRhsOnPatch) {
  // Full patch-level agreement (derivative stage + interpreted A) against
  // the production kernel on puncture-like data.
  using namespace dgr::bssn;
  const auto bg = build_bssn_algebra_graph(0.75, 2.0, 0.1);
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k(bg.graph, roots, Strategy::kBinaryReduce);

  std::vector<Real> in(std::size_t(kNumVars) * mesh::kPatchPts);
  std::vector<Real> out_a(in.size()), out_b(in.size());
  Rng rng(5);
  for (int v = 0; v < kNumVars; ++v)
    for (int p = 0; p < mesh::kPatchPts; ++p)
      in[v * mesh::kPatchPts + p] =
          var_asymptotic(v) + 0.01 * rng.uniform(-1, 1);
  const Real* pi[kNumVars];
  Real* pa[kNumVars];
  Real* pb[kNumVars];
  for (int v = 0; v < kNumVars; ++v) {
    pi[v] = &in[v * mesh::kPatchPts];
    pa[v] = &out_a[v * mesh::kPatchPts];
    pb[v] = &out_b[v * mesh::kPatchPts];
  }
  mesh::PatchGeom geom{{0, 0, 0}, 0.1};
  BssnParams prm;
  prm.sommerfeld = false;
  prm.ko_sigma = 0.1;
  DerivWorkspace ws;
  bssn_rhs_patch(pi, pa, geom, 1e9, prm, ws);
  bssn_rhs_patch_interp(pi, pb, geom, prm, ws, k);
  for (int v = 0; v < kNumVars; ++v)
    for (int kk = mesh::kPad; kk < mesh::kPad + mesh::kR; ++kk)
      for (int jj = mesh::kPad; jj < mesh::kPad + mesh::kR; ++jj)
        for (int ii = mesh::kPad; ii < mesh::kPad + mesh::kR; ++ii) {
          const int p = mesh::patch_idx(ii, jj, kk);
          const Real a = out_a[v * mesh::kPatchPts + p];
          const Real b = out_b[v * mesh::kPatchPts + p];
          ASSERT_NEAR(b, a, 1e-10 * (1 + std::abs(a)))
              << var_name(v) << " @" << ii << "," << jj << "," << kk;
        }
}

TEST(Machine, RunBlockBitwiseEqualsRunAtEveryWidth) {
  // The SoA block executor must reproduce run() bitwise at every point, at
  // width 1 and 4, for every schedule (spills included) — the foundation of
  // the fused path's determinism contract.
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const int n = 19;  // odd block size exercises the scalar tail
  std::vector<double> soa(std::size_t(bg.num_inputs) * n);
  Rng rng(31);
  for (auto& v : soa) v = rng.uniform(0.5, 1.5);
  for (Strategy s : {Strategy::kSympygrCse, Strategy::kBinaryReduce,
                     Strategy::kStagedCse}) {
    const CompiledKernel k(bg.graph, roots, s);
    std::vector<double> out1(std::size_t(bssn::kNumVars) * n, -1);
    std::vector<double> out4(out1.size(), -2);
    k.run_block(soa.data(), out1.data(), n, /*width=*/1);
    k.run_block(soa.data(), out4.data(), n, /*width=*/4);
    std::vector<double> in(bg.num_inputs), ref(bssn::kNumVars);
    for (int p = 0; p < n; ++p) {
      for (int i = 0; i < bg.num_inputs; ++i) in[i] = soa[std::size_t(i) * n + p];
      k.run(in.data(), ref.data());
      for (int v = 0; v < bssn::kNumVars; ++v) {
        ASSERT_EQ(out1[std::size_t(v) * n + p], ref[v])
            << strategy_name(s) << " w1 var " << v << " pt " << p;
        ASSERT_EQ(out4[std::size_t(v) * n + p], ref[v])
            << strategy_name(s) << " w4 var " << v << " pt " << p;
      }
    }
  }
}

TEST(FusedRhs, BitwiseEqualsInterpAtEveryWidth) {
  // Patch-level: the fused SIMD path (stencils evaluated point-locally,
  // algebra via run_block) is bitwise identical to the interp path (array
  // sweeps + per-point run) with the same kernel, at width 1 and width 4.
  using namespace dgr::bssn;
  const auto bg = build_bssn_algebra_graph(0.75, 2.0, 0.1);
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k(bg.graph, roots, Strategy::kStagedCse);

  std::vector<Real> in(std::size_t(kNumVars) * mesh::kPatchPts);
  std::vector<Real> out_i(in.size(), 0), out_f1(in.size(), 0),
      out_f4(in.size(), 0);
  Rng rng(17);
  for (int v = 0; v < kNumVars; ++v)
    for (int p = 0; p < mesh::kPatchPts; ++p)
      in[v * mesh::kPatchPts + p] =
          var_asymptotic(v) + 0.01 * rng.uniform(-1, 1);
  const Real* pi[kNumVars];
  Real* po_i[kNumVars];
  Real* po_f1[kNumVars];
  Real* po_f4[kNumVars];
  for (int v = 0; v < kNumVars; ++v) {
    pi[v] = &in[v * mesh::kPatchPts];
    po_i[v] = &out_i[v * mesh::kPatchPts];
    po_f1[v] = &out_f1[v * mesh::kPatchPts];
    po_f4[v] = &out_f4[v * mesh::kPatchPts];
  }
  mesh::PatchGeom geom{{0, 0, 0}, 0.1};
  BssnParams prm;
  prm.sommerfeld = false;  // interp path does not apply the boundary
  DerivWorkspace ws;
  bssn_rhs_patch_interp(pi, po_i, geom, prm, ws, k);
  FusedWorkspace fws;
  bssn_rhs_patch_fused(pi, po_f1, geom, 1e9, prm, k, fws, nullptr, 1);
  bssn_rhs_patch_fused(pi, po_f4, geom, 1e9, prm, k, fws, nullptr, 4);
  for (int v = 0; v < kNumVars; ++v)
    for (int kk = mesh::kPad; kk < mesh::kPad + mesh::kR; ++kk)
      for (int jj = mesh::kPad; jj < mesh::kPad + mesh::kR; ++jj)
        for (int ii = mesh::kPad; ii < mesh::kPad + mesh::kR; ++ii) {
          const int p = mesh::patch_idx(ii, jj, kk);
          ASSERT_EQ(out_f1[v * mesh::kPatchPts + p],
                    out_i[v * mesh::kPatchPts + p])
              << "w1 " << var_name(v) << " @" << ii << "," << jj << "," << kk;
          ASSERT_EQ(out_f4[v * mesh::kPatchPts + p],
                    out_i[v * mesh::kPatchPts + p])
              << "w4 " << var_name(v) << " @" << ii << "," << jj << "," << kk;
        }
}

TEST(FusedRhs, SommerfeldMatchesCompiledBoundaryHandling) {
  // On a boundary patch the fused path applies the same Sommerfeld
  // overwrite as bssn_algebraic_stage (the radial derivative is the same
  // centered stencil) — boundary values must agree bitwise with the
  // compiled path, whose boundary formula reads only derivative-stage
  // gradients, not the algebra.
  using namespace dgr::bssn;
  const auto bg = build_bssn_algebra_graph(0.75, 2.0, 0.1);
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k(bg.graph, roots, Strategy::kStagedCse);

  std::vector<Real> in(std::size_t(kNumVars) * mesh::kPatchPts);
  std::vector<Real> out_c(in.size(), 0), out_f(in.size(), 0);
  Rng rng(23);
  for (int v = 0; v < kNumVars; ++v)
    for (int p = 0; p < mesh::kPatchPts; ++p)
      in[v * mesh::kPatchPts + p] =
          var_asymptotic(v) + 0.01 * rng.uniform(-1, 1);
  const Real* pi[kNumVars];
  Real* po_c[kNumVars];
  Real* po_f[kNumVars];
  for (int v = 0; v < kNumVars; ++v) {
    pi[v] = &in[v * mesh::kPatchPts];
    po_c[v] = &out_c[v * mesh::kPatchPts];
    po_f[v] = &out_f[v * mesh::kPatchPts];
  }
  // Geometry placing the patch's ii = 9 face exactly on the outer boundary.
  const Real h = 0.1, half = 2.0;
  mesh::PatchGeom geom{{half - 9 * h, 0, 0}, h};
  BssnParams prm;  // sommerfeld on by default
  DerivWorkspace ws;
  bssn_rhs_patch(pi, po_c, geom, half, prm, ws);
  FusedWorkspace fws;
  bssn_rhs_patch_fused(pi, po_f, geom, half, prm, k, fws, nullptr, 4);
  int boundary_pts = 0;
  for (int v = 0; v < kNumVars; ++v)
    for (int kk = mesh::kPad; kk < mesh::kPad + mesh::kR; ++kk)
      for (int jj = mesh::kPad; jj < mesh::kPad + mesh::kR; ++jj) {
        const int p = mesh::patch_idx(9, jj, kk);
        ASSERT_EQ(out_f[v * mesh::kPatchPts + p],
                  out_c[v * mesh::kPatchPts + p])
            << var_name(v) << " @9," << jj << "," << kk;
        ++boundary_pts;
      }
  EXPECT_EQ(boundary_pts, kNumVars * mesh::kR * mesh::kR);
}

TEST(FusedRhs, OpCountsAccumulate) {
  using namespace dgr::bssn;
  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel k(bg.graph, roots, Strategy::kStagedCse);
  std::vector<Real> in(std::size_t(kNumVars) * mesh::kPatchPts, 1.0);
  std::vector<Real> out(in.size());
  const Real* pi[kNumVars];
  Real* po[kNumVars];
  for (int v = 0; v < kNumVars; ++v) {
    pi[v] = &in[v * mesh::kPatchPts];
    po[v] = &out[v * mesh::kPatchPts];
  }
  mesh::PatchGeom geom{{0, 0, 0}, 0.1};
  BssnParams prm;
  prm.sommerfeld = false;
  FusedWorkspace fws;
  OpCounts c;
  bssn_rhs_patch_fused(pi, po, geom, 1e9, prm, k, fws, &c, 0);
  const std::uint64_t pts = mesh::kR * mesh::kR * mesh::kR;
  EXPECT_GT(c.flops, pts * k.stats().num_ops);  // algebra + stencil work
  EXPECT_EQ(c.bytes_written, pts * kNumVars * sizeof(Real));
  EXPECT_GT(c.shared_bytes, 0u);
}

}  // namespace
}  // namespace dgr::codegen
