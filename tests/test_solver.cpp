/// \file test_solver.cpp
/// \brief Time integration and AMR-driver tests: RK4 order of accuracy,
/// robust stability, state transfer across meshes, the wavelet regrid
/// estimator, and a short puncture-evolution smoke test.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bssn/initial_data.hpp"
#include "common/rng.hpp"
#include "solver/bssn_ctx.hpp"
#include "solver/regrid.hpp"

namespace dgr::solver {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

std::shared_ptr<Mesh> uniform_mesh(int level, Real half) {
  return std::make_shared<Mesh>(Octree::uniform(level), Domain{half});
}

SolverConfig no_bc_config() {
  SolverConfig cfg;
  cfg.bssn.sommerfeld = false;
  cfg.bssn.ko_sigma = 0.0;
  return cfg;
}

TEST(Rk4, FourthOrderOnHomogeneousGaugeDynamics) {
  // Spatially uniform K renders all stencils exact, isolating the time
  // integrator: alpha' = -2 alpha K, K' = alpha K^2/3, chi' = 2/3 chi a K.
  const Real K0 = 0.5, T = 0.4;
  auto run = [&](int nsteps) {
    auto m = uniform_mesh(0, 1.0);  // a single octant suffices
    BssnCtx ctx(m, no_bc_config());
    bssn::set_minkowski(*m, ctx.state());
    for (std::size_t d = 0; d < m->num_dofs(); ++d)
      ctx.state().field(bssn::kK)[d] = K0;
    const Real dt = T / nsteps;
    for (int i = 0; i < nsteps; ++i) ctx.rk4_step(dt);
    return ctx.state();
  };
  BssnState ref = run(64);
  const Real e1 = run(4).max_abs_diff(ref);
  const Real e2 = run(8).max_abs_diff(ref);
  const Real order = std::log2(e1 / e2);
  EXPECT_GT(order, 3.7) << "e1=" << e1 << " e2=" << e2;
  EXPECT_LT(order, 4.7);
}

TEST(Rk4, TimeAndStepCountersAdvance) {
  auto m = uniform_mesh(1, 4.0);
  BssnCtx ctx(m, SolverConfig{});
  bssn::set_minkowski(*m, ctx.state());
  EXPECT_EQ(ctx.steps_taken(), 0u);
  const Real dt = ctx.suggested_dt();
  EXPECT_NEAR(dt, 0.25 * m->finest_spacing(), 1e-14);
  ctx.evolve_steps(3);
  EXPECT_EQ(ctx.steps_taken(), 3u);
  EXPECT_NEAR(ctx.time(), 3 * dt, 1e-12);
}

TEST(Rk4, FlatSpaceIsFixedPoint) {
  auto m = uniform_mesh(1, 4.0);
  SolverConfig cfg;  // Sommerfeld + KO on: flat space must stay flat
  BssnCtx ctx(m, cfg);
  bssn::set_minkowski(*m, ctx.state());
  BssnState before = ctx.state();
  ctx.evolve_steps(3);
  EXPECT_LT(ctx.state().max_abs_diff(before), 1e-10);
}

TEST(Rk4, RobustStabilityRandomPerturbation) {
  // Apples-like robust stability: O(1e-8) random noise on every variable
  // must not blow up over a dozen steps (with KO dissipation active).
  auto m = uniform_mesh(1, 4.0);
  SolverConfig cfg;
  cfg.bssn.ko_sigma = 0.1;
  BssnCtx ctx(m, cfg);
  bssn::set_minkowski(*m, ctx.state());
  Rng rng(2024);
  for (int v = 0; v < bssn::kNumVars; ++v)
    for (std::size_t d = 0; d < m->num_dofs(); ++d)
      ctx.state().field(v)[d] += 1e-8 * rng.uniform(-1, 1);
  ctx.evolve_steps(12);
  BssnState flat;
  bssn::set_minkowski(*m, flat);
  EXPECT_LT(ctx.state().max_abs_diff(flat), 1e-6);
  EXPECT_FALSE(std::isnan(ctx.state().max_abs()));
}

TEST(Rk4, PhaseBreakdownAndCountersAccumulate) {
  auto m = uniform_mesh(1, 4.0);
  BssnCtx ctx(m, SolverConfig{});
  bssn::set_minkowski(*m, ctx.state());
  ctx.rk4_step();
  EXPECT_GT(ctx.breakdown().rhs.total_seconds(), 0.0);
  EXPECT_GT(ctx.breakdown().unzip.total_seconds(), 0.0);
  EXPECT_GT(ctx.op_counts().flops, 0u);
  EXPECT_GT(ctx.op_counts().bytes_read, 0u);
  ctx.reset_instrumentation();
  EXPECT_EQ(ctx.op_counts().flops, 0u);
  EXPECT_EQ(ctx.breakdown().total(), 0.0);
}

TEST(Rk4, ChunkSizeDoesNotChangeResult) {
  const auto bhs = bssn::make_binary(1.0, 2.0);
  auto run = [&](int chunk) {
    auto m = uniform_mesh(2, 8.0);
    SolverConfig cfg;
    cfg.chunk_octants = chunk;
    BssnCtx ctx(m, cfg);
    bssn::set_punctures(*m, bhs, ctx.state());
    ctx.rk4_step();
    return ctx.state();
  };
  BssnState a = run(3);
  BssnState b = run(64);
  EXPECT_EQ(a.max_abs_diff(b), 0.0) << "chunked pipeline must be exact";
}

TEST(Transfer, PolynomialFieldsTransferExactly) {
  // Transfer between different refinements reproduces degree-6 data.
  Domain dom{1.0};
  Mesh src(Octree::uniform(2), dom);
  Mesh dst(Octree::uniform(1), dom);  // coarsening direction
  BssnState s(src.num_dofs());
  auto poly = [](Real x, Real y, Real z) {
    return 0.3 + x * x * y - std::pow(z, 3) + std::pow(x, 6);
  };
  for (int v = 0; v < bssn::kNumVars; ++v)
    src.sample(poly, s.field(v));
  BssnState t = transfer_state(src, s, dst);
  for (std::size_t d = 0; d < dst.num_dofs(); ++d) {
    const auto x = dst.dof_position(static_cast<DofIndex>(d));
    EXPECT_NEAR(t.field(0)[d], poly(x[0], x[1], x[2]), 1e-9);
  }
}

TEST(Transfer, RefinementDirectionInterpolates) {
  Domain dom{1.0};
  Mesh src(Octree::uniform(1), dom);
  Mesh dst(Octree::uniform(2), dom);
  BssnState s(src.num_dofs());
  auto poly = [](Real x, Real y, Real z) { return x * y * z + 2 * x - y; };
  for (int v = 0; v < bssn::kNumVars; ++v) src.sample(poly, s.field(v));
  BssnState t = transfer_state(src, s, dst);
  for (std::size_t d = 0; d < dst.num_dofs(); ++d) {
    const auto x = dst.dof_position(static_cast<DofIndex>(d));
    EXPECT_NEAR(t.field(5)[d], poly(x[0], x[1], x[2]), 1e-10);
  }
}

TEST(Regrid, DetailVanishesOnCubicData) {
  Real u[mesh::kOctPts];
  for (int k = 0; k < mesh::kR; ++k)
    for (int j = 0; j < mesh::kR; ++j)
      for (int i = 0; i < mesh::kR; ++i)
        u[mesh::oct_idx(i, j, k)] =
            1.0 + i - 2.0 * j * j + 0.5 * i * j * k + k * k * k;
  EXPECT_LT(octant_detail(u), 1e-10);
}

TEST(Regrid, DetailDetectsSharpFeature) {
  Real u[mesh::kOctPts] = {};
  u[mesh::oct_idx(3, 3, 3)] = 1.0;  // odd-index spike: pure detail
  EXPECT_GT(octant_detail(u), 0.5);
}

TEST(Regrid, RefinesAroundPuncture) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(2), dom);
  BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.07, 0.04, 0.03}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  RegridConfig cfg;
  cfg.eps = 1e-3;
  cfg.max_level = 4;
  cfg.min_level = 2;
  auto errs = compute_octant_errors(*m, s, cfg);
  // The octants containing the puncture must carry the largest error.
  OctIndex center = m->tree().find_leaf(oct::kDomainSize / 2,
                                        oct::kDomainSize / 2,
                                        oct::kDomainSize / 2);
  Real maxerr = 0;
  for (Real e : errs) maxerr = std::max(maxerr, e);
  EXPECT_NEAR(errs[center], maxerr, 1e-12);

  auto next = regrid_mesh(*m, s, cfg);
  ASSERT_NE(next, nullptr);
  EXPECT_GT(next->tree().max_level(), 2);
  EXPECT_TRUE(next->tree().is_balanced());
  // The refined mesh resolves the puncture with finer spacing there.
  OctIndex c2 = next->tree().find_leaf(oct::kDomainSize / 2,
                                       oct::kDomainSize / 2,
                                       oct::kDomainSize / 2);
  EXPECT_GT(int(next->tree().leaf(c2).level), 2);
}

TEST(Regrid, NoChangeReturnsNull) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(2), dom);
  BssnState s;
  bssn::set_minkowski(*m, s);
  RegridConfig cfg;
  cfg.eps = 1e-3;
  cfg.min_level = 2;  // flat data: no refine, coarsening capped at level 2
  EXPECT_EQ(regrid_mesh(*m, s, cfg), nullptr);
}

TEST(Regrid, CoarsensSmoothRegions) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(3), dom);
  BssnState s;
  bssn::set_minkowski(*m, s);
  RegridConfig cfg;
  cfg.eps = 1e-3;
  cfg.min_level = 2;
  auto next = regrid_mesh(*m, s, cfg);
  ASSERT_NE(next, nullptr);
  EXPECT_LT(next->num_octants(), m->num_octants());
  EXPECT_EQ(next->tree().max_level(), 2);
}

TEST(Evolution, SinglePunctureShortEvolutionStable) {
  // A few steps of a real puncture evolution on an adaptive grid: chi must
  // stay positive, no NaNs, constraints bounded.
  Domain dom{16.0};
  auto tree = oct::build_puncture_octree(
      dom, {{{0.06, 0.04, 0.02}, 4}}, 2);
  auto m = std::make_shared<Mesh>(tree, dom);
  SolverConfig cfg;
  cfg.bssn.ko_sigma = 0.3;
  BssnCtx ctx(m, cfg);
  bssn::set_punctures(*m, {{1.0, {0.06, 0.04, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());
  ctx.evolve_steps(4);
  EXPECT_FALSE(std::isnan(ctx.state().max_abs()));
  Real chi_min = 1e30, chi_max = -1e30;
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    chi_min = std::min(chi_min, ctx.state().field(bssn::kChi)[d]);
    chi_max = std::max(chi_max, ctx.state().field(bssn::kChi)[d]);
  }
  EXPECT_GT(chi_min, -0.01);  // chi may dip slightly near the puncture
  EXPECT_LT(chi_max, 1.2);
  EXPECT_LT(ctx.state().max_abs(), 50.0);
}

TEST(Evolution, RemeshPreservesSmoothState) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(2), dom);
  BssnCtx ctx(m, no_bc_config());
  bssn::set_minkowski(*m, ctx.state());
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const auto x = m->dof_position(static_cast<DofIndex>(d));
    ctx.state().field(bssn::kChi)[d] = 1.0 + 0.001 * x[0] * x[1];
  }
  auto m2 = std::make_shared<Mesh>(Octree::uniform(1), dom);
  ctx.remesh(m2);
  EXPECT_EQ(ctx.state().num_dofs(), m2->num_dofs());
  for (std::size_t d = 0; d < m2->num_dofs(); ++d) {
    const auto x = m2->dof_position(static_cast<DofIndex>(d));
    EXPECT_NEAR(ctx.state().field(bssn::kChi)[d], 1.0 + 0.001 * x[0] * x[1],
                1e-10);
  }
}

}  // namespace
}  // namespace dgr::solver
