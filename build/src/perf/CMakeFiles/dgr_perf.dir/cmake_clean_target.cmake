file(REMOVE_RECURSE
  "libdgr_perf.a"
)
