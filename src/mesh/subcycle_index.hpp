#pragma once
/// \file subcycle_index.hpp
/// \brief Depth-local sub-cycling geometry (Berger–Oliger power-of-two
/// cadence, roadmap item 2): which octants and DOFs belong to each
/// refinement depth, and which depths are due at each fine substep.
///
/// The time hierarchy mirrors the space hierarchy: octants at depth d take
/// steps of dt_d = dt_fine * 2^(d_max - d), so one coarse step spans a
/// "cycle" of 2^(d_max - d_min) fine substeps. Depth d is active at substep
/// s iff s is a multiple of 2^(d_max - d); because those strides nest, the
/// active set at any substep is always a depth suffix [cutoff, d_max] —
/// fine octants step at least as often as every neighbor, and all depths
/// are time-aligned exactly at cycle boundaries (where regrid, puncture
/// tracking and wave extraction are allowed to fire).
///
/// The index is pure geometry over a built Mesh: per-depth contiguous SFC
/// octant runs (the unzip/RHS/zip sweeps of solver::RhsPipeline and the
/// simgpu mirror are restricted to exactly these runs), the owner-octant
/// depth of every DOF (which cadence each DOF advances on), and the
/// deterministic per-cycle work counts the perf gate regresses on.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mesh/mesh.hpp"

namespace dgr::mesh {

/// Fine substeps per full cycle for a depth band [dmin, dmax].
inline int subcycle_length(int dmin, int dmax) {
  return 1 << (dmax - dmin);
}

/// True when depth `depth` is due to step at fine substep `substep` (the
/// active_depth predicate of the reference local-timestepping scheme):
/// depth d advances once every 2^(max_depth - d) substeps.
inline bool active_depth(int substep, int depth, int max_depth) {
  return (substep & ((1 << (max_depth - depth)) - 1)) == 0;
}

struct SubcycleIndex {
  int dmin = 0;  ///< coarsest leaf level on the mesh
  int dmax = 0;  ///< finest leaf level on the mesh

  /// Maximal contiguous SFC runs of depth-d octants, indexed [d - dmin].
  /// Identical element type to solver::OctRange, so the runs feed
  /// RhsPipeline::compute directly.
  std::vector<std::vector<std::pair<OctIndex, OctIndex>>> runs;
  std::vector<std::size_t> octants;  ///< octant count per depth
  std::vector<std::size_t> dofs;     ///< owned-DOF count per depth
  /// Owner-octant level of every DOF — dof_owner is the finest octant
  /// touching the point, so shared interface DOFs follow the finer cadence.
  std::vector<std::uint8_t> dof_depth;

  int depths() const { return dmax - dmin + 1; }
  int cycle() const { return subcycle_length(dmin, dmax); }
  bool uniform() const { return dmin == dmax; }

  /// Coarsest depth active at `substep` (in [0, cycle())); the active set
  /// is the suffix [active_cutoff(s), dmax].
  int active_cutoff(int substep) const;

  /// Octants stepped at `substep` (sum over the active depths).
  std::size_t active_octants(int substep) const;

  /// Octant RK-stage evaluations over one full cycle: sub-cycled (each
  /// depth steps 2^(d - dmin) times, 4 RHS evaluations each) vs global-dt
  /// (every octant at every substep). Their ratio is the asymptotic work
  /// saving — a deterministic count, independent of threads and SIMD
  /// width, which the fig12 perf baseline gates on.
  std::uint64_t cycle_octant_evals() const;
  std::uint64_t global_octant_evals() const;

  static SubcycleIndex build(const Mesh& m);
};

}  // namespace dgr::mesh
