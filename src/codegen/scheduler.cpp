#include "codegen/scheduler.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace dgr::codegen {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kSympygrCse: return "sympygr-cse";
    case Strategy::kBinaryReduce: return "binary-reduce";
    case Strategy::kStagedCse: return "staged-cse";
  }
  return "?";
}

namespace {

bool is_compute(const Node& n) {
  return n.op != Op::kInput && n.op != Op::kConst;
}

/// Compute nodes reachable from the outputs, marked in a bitmap.
std::vector<char> reachable_compute(const Graph& g,
                                    const std::vector<std::int32_t>& outputs) {
  std::vector<char> keep(g.size(), 0);
  std::vector<std::int32_t> stack(outputs.begin(), outputs.end());
  while (!stack.empty()) {
    const std::int32_t id = stack.back();
    stack.pop_back();
    if (keep[id]) continue;
    keep[id] = 1;
    const Node& n = g.node(id);
    if (n.a >= 0) stack.push_back(n.a);
    if (n.b >= 0) stack.push_back(n.b);
  }
  return keep;
}

}  // namespace

std::vector<std::int32_t> schedule_nodes(
    const Graph& g, const std::vector<std::int32_t>& outputs,
    Strategy strategy) {
  const std::vector<char> keep = reachable_compute(g, outputs);

  if (strategy == Strategy::kSympygrCse) {
    // The paper on the baseline: "the final expressions are evaluated once
    // all of the intermediate sub-expressions are evaluated... [this] can
    // increase the live range of the allocated temporary variables". We
    // model it as breadth-first (depth-level) evaluation: every depth-d
    // subexpression across all 24 equations is computed before any depth
    // d+1 expression, so temporaries are produced long before their
    // consumers and live ranges stretch across the whole kernel.
    std::vector<int> depth(g.size(), 0);
    for (std::int32_t id = 0; id < std::int32_t(g.size()); ++id) {
      const Node& n = g.node(id);
      int d = 0;
      if (n.a >= 0) d = std::max(d, depth[n.a] + 1);
      if (n.b >= 0) d = std::max(d, depth[n.b] + 1);
      depth[id] = d;
    }
    std::vector<std::int32_t> order;
    for (std::int32_t id = 0; id < std::int32_t(g.size()); ++id)
      if (keep[id] && is_compute(g.node(id))) order.push_back(id);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return depth[a] < depth[b];
                     });
    return order;
  }

  if (strategy == Strategy::kStagedCse) {
    // Per-output DFS: each equation evaluated as soon as possible, reusing
    // temporaries already emitted by earlier equations.
    std::vector<std::int32_t> order;
    std::vector<char> emitted(g.size(), 0);
    std::vector<std::int32_t> stack;
    for (std::int32_t out : outputs) {
      stack.push_back(out);
      while (!stack.empty()) {
        const std::int32_t id = stack.back();
        const Node& n = g.node(id);
        if (emitted[id] || !is_compute(n)) {
          emitted[id] = 1;
          stack.pop_back();
          continue;
        }
        bool ready = true;
        if (n.a >= 0 && !emitted[n.a] && is_compute(g.node(n.a))) {
          stack.push_back(n.a);
          ready = false;
        }
        if (n.b >= 0 && !emitted[n.b] && is_compute(g.node(n.b))) {
          stack.push_back(n.b);
          ready = false;
        }
        if (ready) {
          emitted[id] = 1;
          order.push_back(id);
          stack.pop_back();
        }
      }
    }
    return order;
  }

  // kBinaryReduce: greedy list scheduling that favours nodes killing their
  // operands (the live-range-minimizing traversal of Algorithm 3; we use a
  // last-use-count heuristic in place of the line-graph topological sort).
  std::vector<int> remaining_uses(g.size(), 0);
  for (std::int32_t id = 0; id < std::int32_t(g.size()); ++id) {
    if (!keep[id]) continue;
    const Node& n = g.node(id);
    if (n.a >= 0 && is_compute(g.node(n.a))) ++remaining_uses[n.a];
    if (n.b >= 0 && is_compute(g.node(n.b))) ++remaining_uses[n.b];
  }
  std::vector<int> pending(g.size(), 0);  // unemitted compute operands
  std::vector<std::int32_t> ready;
  for (std::int32_t id = 0; id < std::int32_t(g.size()); ++id) {
    if (!keep[id] || !is_compute(g.node(id))) continue;
    const Node& n = g.node(id);
    int p = 0;
    if (n.a >= 0 && is_compute(g.node(n.a))) ++p;
    if (n.b >= 0 && is_compute(g.node(n.b))) ++p;
    pending[id] = p;
    if (p == 0) ready.push_back(id);
  }
  // Users list to update readiness.
  std::unordered_map<std::int32_t, std::vector<std::int32_t>> users;
  for (std::int32_t id = 0; id < std::int32_t(g.size()); ++id) {
    if (!keep[id] || !is_compute(g.node(id))) continue;
    const Node& n = g.node(id);
    if (n.a >= 0 && is_compute(g.node(n.a))) users[n.a].push_back(id);
    if (n.b >= 0 && is_compute(g.node(n.b))) users[n.b].push_back(id);
  }

  std::vector<std::int32_t> order;
  std::vector<char> emitted(g.size(), 0);
  auto score = [&](std::int32_t id) {
    const Node& n = g.node(id);
    int s = -1;  // the new value becomes live
    if (n.a >= 0 && is_compute(g.node(n.a)) && remaining_uses[n.a] == 1)
      ++s;  // operand dies
    if (n.b >= 0 && n.b != n.a && is_compute(g.node(n.b)) &&
        remaining_uses[n.b] == 1)
      ++s;
    return s;
  };
  while (!ready.empty()) {
    // Pick the ready node with the best kill score; prefer older nodes on
    // ties (keeps the traversal close to a topological order).
    std::size_t best = 0;
    int best_score = score(ready[0]);
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const int sc = score(ready[i]);
      if (sc > best_score ||
          (sc == best_score && ready[i] < ready[best])) {
        best = i;
        best_score = sc;
      }
    }
    const std::int32_t id = ready[best];
    ready[best] = ready.back();
    ready.pop_back();
    emitted[id] = 1;
    order.push_back(id);
    const Node& n = g.node(id);
    if (n.a >= 0 && is_compute(g.node(n.a))) --remaining_uses[n.a];
    if (n.b >= 0 && n.b != n.a && is_compute(g.node(n.b)))
      --remaining_uses[n.b];
    for (std::int32_t u : users[id]) {
      if (--pending[u] == 0) ready.push_back(u);
    }
  }
  return order;
}

int max_live_temporaries(const Graph& g,
                         const std::vector<std::int32_t>& order,
                         const std::vector<std::int32_t>& outputs) {
  // Last use position of each computed value.
  std::unordered_map<std::int32_t, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::vector<std::size_t> last_use(g.size(), 0);
  std::unordered_set<std::int32_t> outs(outputs.begin(), outputs.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& n = g.node(order[i]);
    if (n.a >= 0 && pos.count(n.a)) last_use[n.a] = std::max(last_use[n.a], i);
    if (n.b >= 0 && pos.count(n.b)) last_use[n.b] = std::max(last_use[n.b], i);
  }
  int live = 0, peak = 0;
  std::vector<std::vector<std::int32_t>> dying(order.size() + 1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::int32_t id = order[i];
    // Outputs are stored to global immediately: they die at birth.
    const std::size_t death = outs.count(id) ? i : last_use[id];
    dying[std::max(death, i)].push_back(id);
  }
  std::vector<char> live_flag(g.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ++live;
    peak = std::max(peak, live);
    for (std::int32_t id : dying[i]) {
      (void)id;
      --live;
    }
  }
  (void)live_flag;
  return peak;
}

}  // namespace dgr::codegen
