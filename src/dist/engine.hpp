#pragma once
/// \file engine.hpp
/// \brief The simulated multi-rank evolution driver. N ranks advance the
/// BSSN state in lockstep over an overlapped step schedule — per RHS
/// evaluation: post ghost recvs, pack and send boundary DOFs, compute the
/// interior octants while the halo is in flight, wait, then compute the
/// boundary octants — with per-rank virtual clocks making the overlap
/// measurable (t_comm_hidden vs t_comm_exposed). In execute mode the ranks
/// run the real numerics and the gathered result is bitwise-identical to
/// the single-rank solver::evolve path, including regrids (the host
/// synchronization point, realized as an allgather + replicated remesh).
/// In schedule-only mode the message schedule runs with real payloads but
/// compute is advanced on the virtual clock only — this is what the
/// scaling benches (Figs. 17, 18, 20) execute.
///
/// Fault tolerance. With `faults.enabled`, a deterministic FaultPlan
/// injects rank fail-stops (and message drops/delays, absorbed inside
/// SimComm) at chosen virtual-clock instants. The engine takes a
/// *coordinated checkpoint* every `checkpoint_interval` steps (gather to
/// the replicated global state — the same host sync point a regrid uses —
/// then solver::save_checkpoint when `checkpoint_path` is set, else an
/// in-memory copy). When SimComm's heartbeat detector reports a death, all
/// surviving ranks roll back to the last coordinated checkpoint, the
/// partition is rebuilt over the survivors, and the evolution resumes in a
/// fresh epoch whose clocks continue from the detection instant. Because
/// the N-rank schedule is bitwise-identical to the single-rank pipeline
/// for ANY rank count, the recovered run's final state and Psi4 waveforms
/// are bitwise identical to the fault-free run; only the virtual clock
/// (lost steps, detection stall, re-execution) shows the fault — and that
/// cost lands in obs metrics ("dist.recovery.*", "dist.faults.*") and
/// trace spans.

#include <memory>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "dist/rank_ctx.hpp"
#include "gw/extract.hpp"
#include "solver/evolution.hpp"

namespace dgr::dist {

struct DistConfig {
  int ranks = 2;
  /// Execute mode: evolve until t_end with a regrid every `regrid_every`
  /// steps (mirrors solver::EvolutionConfig so the two paths agree).
  Real t_end = 0;
  int regrid_every = 16;
  solver::RegridConfig regrid;
  bool do_regrid = true;
  /// Interconnect: NVLink-class within a node, IB-class across nodes.
  perf::HierarchicalNetworkModel net = perf::gpu_cluster();
  /// Virtual compute cost of one octant's unzip+RHS+zip per evaluation
  /// (calibrated by the benches from the §III-D machine models).
  double sec_per_octant = 1e-5;
  /// false: schedule-only — run `schedule_evals` RHS-evaluation message
  /// schedules with real payloads but no numerics (benches).
  bool execute = true;
  int schedule_evals = 0;
  /// Depth-local sub-cycled message schedule (schedule-only mode; execute
  /// mode rejects it). Each scheduled evaluation becomes one per-depth
  /// exchange of the sub-cycle walk — substeps in order, active depths
  /// coarsest-first — with send/recv payloads filtered to the DOFs on that
  /// depth's cadence and the compute advance scaled to that depth's
  /// interior/boundary octants. Models the halo-cadence change local
  /// timestepping induces (fewer, smaller exchanges for coarse depths).
  bool subcycle = false;

  /// Coordinated checkpoint every K steps (0 disables). Required (> 0)
  /// when fault injection is enabled: the step-0 state always counts as
  /// the first coordinated checkpoint, later ones refresh it.
  int checkpoint_interval = 0;
  /// Checkpoint destination. Non-empty: solver::save_checkpoint writes
  /// (atomically) to this path and recovery restarts through
  /// load_checkpoint + checkpoint_mesh — the full on-disk restart path.
  /// Empty: the checkpoint is kept in memory.
  std::string checkpoint_path;
  /// Fault injection plan (see fault.hpp); inert unless `enabled`.
  FaultConfig faults;
  /// Dump the flight recorder here after each fault recovery, preserving
  /// the spans leading into the failure ("" disables — the default, so
  /// tests exercising recovery don't write files as a side effect).
  std::string flightrec_path;

  /// Restart support: resume from a checkpoint's time/step so the
  /// regrid/checkpoint/extraction cadences align with the original run.
  Real t_start = 0;
  std::uint64_t step_start = 0;

  /// Psi4 recording (mirrors solver::EvolutionConfig): every
  /// `extract_every` steps the state is gathered (a modeled allgather) and
  /// the (2,2) mode extracted per radius. Empty disables extraction.
  std::vector<Real> extraction_radii;
  int extract_every = 4;
  int lmax = 2;
};

struct RankReport {
  RankStats stats;
  std::size_t owned = 0;          ///< owned octants
  std::size_t ghost_octants = 0;  ///< octant-level halo size
  std::size_t interior = 0;       ///< octants computable during the halo
  std::size_t boundary = 0;       ///< octants gated on the halo
  std::size_t recv_dofs = 0;      ///< ghost DOFs received per exchange
};

struct DistResult {
  /// Net steps advanced past cfg.step_start (rolled-back steps excluded),
  /// so a recovered run reports the same count as the fault-free run.
  int steps = 0;
  /// Every rk4_step actually executed, including re-execution after
  /// rollbacks; steps_executed - steps is the recovery re-compute bill.
  int steps_executed = 0;
  int regrids = 0;
  int rhs_evals = 0;
  /// Parallel time of the executed schedule: max over per-rank clocks
  /// (continuous across recovery epochs).
  double t_virtual = 0;
  /// Accumulated across epochs (per-epoch maxima summed).
  double t_compute_max = 0;
  double t_comm_exposed_max = 0;
  double t_comm_hidden_max = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  /// Execute mode: the gathered final state (global DOF indexing).
  bssn::BssnState state;
  /// Per-rank reports of the FINAL epoch (survivors after recoveries).
  std::vector<RankReport> ranks;

  // ------------------------------------------------- fault tolerance ----
  int checkpoints = 0;       ///< coordinated checkpoints taken (incl. step 0)
  int failures = 0;          ///< rank fail-stops triggered
  int recoveries = 0;        ///< rollback+rebuild cycles performed
  int lost_steps = 0;        ///< steps discarded by rollbacks (re-executed)
  int final_ranks = 0;       ///< live ranks at the end of the run
  double t_failover_max = 0; ///< max per-rank heartbeat-detection stall
  std::uint64_t retransmits = 0;   ///< dropped message attempts resent
  std::uint64_t msgs_delayed = 0;  ///< messages hit by a delay fault
  /// (2, 2) mode series per extraction radius (cfg.extraction_radii);
  /// rolled back in lockstep with the state, so a recovered run's series
  /// is bitwise identical to the fault-free run's.
  std::vector<gw::ModeTimeSeries> waves22;
};

/// Run the N-rank engine on `mesh` starting from `initial`. Execute mode
/// evolves to cfg.t_end exactly as solver::evolve would (same dt logic,
/// same regrid cadence) and returns the gathered state; schedule-only mode
/// runs cfg.schedule_evals overlapped exchanges.
DistResult evolve_distributed(std::shared_ptr<const mesh::Mesh> mesh,
                              const bssn::BssnState& initial,
                              const solver::SolverConfig& scfg,
                              const DistConfig& cfg);

}  // namespace dgr::dist
