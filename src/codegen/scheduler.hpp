#pragma once
/// \file scheduler.hpp
/// \brief Evaluation-order schedules for the algebraic-stage DAG — the
/// paper's three code-generation variants (§IV-B, Table II, Fig. 11):
///  - kSympygrCse: the SymPyGR baseline — every CSE temporary is evaluated
///    (in construction/topological order) before the final expressions,
///    maximizing live ranges;
///  - kBinaryReduce: Algorithm 3 — greedy traversal that reduces/evicts as
///    soon as operands die, minimizing live ranges;
///  - kStagedCse: per-equation staging — each of the 24 RHS outputs is
///    evaluated as soon as its inputs allow, sharing already-computed CSE
///    temporaries.

#include <cstdint>
#include <vector>

#include "codegen/expr.hpp"

namespace dgr::codegen {

enum class Strategy { kSympygrCse, kBinaryReduce, kStagedCse };

const char* strategy_name(Strategy s);

/// Topological evaluation order of all compute nodes (non-input, non-const)
/// reachable from `outputs`, according to the strategy.
std::vector<std::int32_t> schedule_nodes(const Graph& g,
                                         const std::vector<std::int32_t>& outputs,
                                         Strategy strategy);

/// Maximum number of simultaneously live computed temporaries along the
/// schedule (the paper reports 675 for binary-reduce). A value is live from
/// its evaluation until its last use (outputs die when stored, i.e. at
/// their own evaluation).
int max_live_temporaries(const Graph& g,
                         const std::vector<std::int32_t>& order,
                         const std::vector<std::int32_t>& outputs);

}  // namespace dgr::codegen
