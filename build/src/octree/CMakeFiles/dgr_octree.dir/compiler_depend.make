# Empty compiler generated dependencies file for dgr_octree.
# This may be replaced when dependencies are built.
