file(REMOVE_RECURSE
  "CMakeFiles/test_bssn.dir/test_bssn.cpp.o"
  "CMakeFiles/test_bssn.dir/test_bssn.cpp.o.d"
  "test_bssn"
  "test_bssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
