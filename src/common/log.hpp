#pragma once
/// \file log.hpp
/// \brief Minimal leveled logging to stderr, silenced by default in tests.

#include <string>

namespace dgr::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_level(Level lvl);
Level level();

void write(Level lvl, const std::string& msg);

inline void debug(const std::string& m) { write(Level::kDebug, m); }
inline void info(const std::string& m) { write(Level::kInfo, m); }
inline void warn(const std::string& m) { write(Level::kWarn, m); }
inline void error(const std::string& m) { write(Level::kError, m); }

}  // namespace dgr::log
