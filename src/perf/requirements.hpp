#pragma once
/// \file requirements.hpp
/// \brief The resolution/timestep requirements model behind Table I: grid
/// spacing from ~120 points across each horizon, merger times from NR
/// simulations (q <= 16) or the calibrated 2.5PN quadrupole estimate, and
/// timestep counts from the finest spacing.

#include <vector>

#include "common/types.hpp"

namespace dgr::perf {

struct ResolutionRequirement {
  Real q = 1;           ///< mass ratio m1/m2
  Real dx_small = 0;    ///< finest spacing (smaller hole), Table I "BH1"
  Real dx_large = 0;    ///< spacing at the larger hole, Table I "BH2"
  Real merger_time = 0; ///< evolution horizon T (units of M)
  Real timesteps = 0;   ///< T / dx_small (Table I's convention)
};

/// Merger time for an initial separation d (geometric units, M = 1):
/// simulation-measured values for q in {1, 4, 16}; otherwise the 2.5PN
/// quadrupole decay time t = (5/256) d^4 / (m1 m2 M), calibrated by the
/// factor 1.16 that matches the paper's post-Newtonian rows.
Real merger_time_estimate(Real q, Real separation = 8.0);

/// One Table I row. `points_across` grid points resolve each horizon of
/// isotropic-coordinate diameter ~2 m_i.
ResolutionRequirement resolution_requirements(Real q, Real separation = 8.0,
                                              int points_across = 120);

/// All rows of Table I (q = 1, 4, 16, 64, 256, 512).
std::vector<ResolutionRequirement> table1_rows();

}  // namespace dgr::perf
