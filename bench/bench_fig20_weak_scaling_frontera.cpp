/// \file bench_fig20_weak_scaling_frontera.cpp
/// \brief Regenerates Fig. 20: weak scaling of one RK4 step on Frontera
/// with the per-phase cost breakdown (octant-to-patch, RHS, patch-to-octant
/// / update, communication). Real per-phase op counts feed the Cascade
/// Lake per-core model. Since the src/dist engine, the communication
/// column comes from an EXECUTED overlapped exchange schedule at the
/// largest rank count the measurement grid supports (~500K unknowns per
/// rank, as in the paper); because the per-rank halo saturates
/// (surface-to-volume), that executed per-step comm time carries to the
/// extrapolated core counts. The old closed-form alpha-beta estimate is
/// kept as a cross-check.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "comm/partition.hpp"
#include "dist/engine.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 20",
                "Frontera weak scaling: per-phase cost of one RK4 step");
  bench::Reporter rep("fig20_weak_scaling_frontera", argc, argv);

  // Per-octant per-RHS-eval op counts by phase, measured once.
  auto m0 = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
  simgpu::GpuBssnSolver gpu(m0, simgpu::GpuSolverConfig{});
  bssn::BssnState s;
  bench::init_bbh_state(*m0, 1.0, 2.0, s);
  gpu.upload(s);
  gpu.rk4_step();
  const double n_evals = 4.0 * double(m0->num_octants());
  const perf::MachineModel node = perf::frontera_node();
  // Per-core slice of the node model (56 cores/node).
  perf::MachineModel core = node;
  core.tau_f *= 56;
  core.tau_m *= 56;
  const auto phase_cost = [&](const char* kernel) {
    return gpu.runtime().record(kernel).modeled_seconds(core) /
           n_evals;  // seconds per octant per evaluation, one core
  };
  const double c_unzip = phase_cost("octant-to-patch");
  const double c_rhs = phase_cost("bssn-rhs");
  const double c_zip = phase_cost("patch-to-octant") + phase_cost("axpy");
  const double c_oct = c_unzip + c_rhs + c_zip;

  // ~500K unknowns per core ~ 60 octants/core (343 pts x 24 vars).
  const double oct_per_core = 500e3 / (mesh::kOctPts * 24.0);

  // Execute the overlapped schedule of one RK4 step (4 evaluations) at the
  // largest rank count the measurement grid supports at this per-rank
  // load; 56 cores per Frontera node share the IB NIC, so the hierarchy is
  // intra-node vs inter-node.
  const int ranks0 = std::max(
      2, std::min(64, int(double(m0->num_octants()) / oct_per_core)));
  dist::DistConfig dcfg;
  dcfg.ranks = ranks0;
  dcfg.execute = false;
  dcfg.schedule_evals = 4;
  dcfg.sec_per_octant = c_oct;
  dcfg.net = perf::HierarchicalNetworkModel{
      perf::NetworkModel{"shm", 0.6e-6, 1.0 / 100.0e9}, perf::infiniband(),
      56};
  const auto sched = dist::evolve_distributed(m0, s, solver::SolverConfig{},
                                              dcfg);
  const double comm_step_exec =
      sched.t_comm_exposed_max + sched.t_comm_hidden_max;
  rep.metric("sched_ranks", ranks0);
  rep.metric("comm_step_exec_s", comm_step_exec);
  rep.metric("comm_hidden_frac",
             sched.t_comm_hidden_max / std::max(1e-300, comm_step_exec));
  std::printf(
      "  executed schedule at %d ranks (~%.0f octants/rank): %llu msgs, "
      "comm/step %.4fs (%.0f%% hidden)\n",
      ranks0, double(m0->num_octants()) / ranks0,
      static_cast<unsigned long long>(sched.messages), comm_step_exec,
      100 * sched.t_comm_hidden_max /
          std::max(1e-300, comm_step_exec));

  // Sub-cycled halo cadence on the same grid and rank count: one RK4
  // step's worth of per-depth exchanges with depth-filtered payloads.
  {
    dist::DistConfig sc = dcfg;
    sc.subcycle = true;
    const auto sub = dist::evolve_distributed(m0, s, solver::SolverConfig{},
                                              sc);
    rep.metric("subcycle_t_step_ratio", sched.t_virtual / sub.t_virtual);
    rep.metric("subcycle_halo_bytes_ratio",
               double(sched.bytes) / double(sub.bytes));
    rep.metric("subcycle_comm_exposed_s", sub.t_comm_exposed_max);
    std::printf(
        "  sub-cycled schedule: t_step /%.2f, halo bytes /%.2f, but comm "
        "exposure grows\n  (%.4fs vs %.4fs): per-depth evals have less "
        "interior compute to hide the halo behind\n",
        sched.t_virtual / sub.t_virtual,
        double(sched.bytes) / double(sub.bytes), sub.t_comm_exposed_max,
        sched.t_comm_exposed_max);
  }

  // Cross-check: closed-form alpha-beta on the same measured halo.
  double ghost_per_rank = 0;
  {
    const auto part = comm::partition_mesh(*m0, ranks0);
    double g = 0;
    for (int r = 0; r < ranks0; ++r) g += double(part.ghost_octants[r]);
    ghost_per_rank = g / ranks0;
  }
  const std::uint64_t halo_bytes =
      std::uint64_t(ghost_per_rank) * mesh::kOctPts * 24 * sizeof(Real);
  const perf::NetworkModel net = perf::infiniband();
  const double comm_step_analytic = 4 * net.time(halo_bytes, 8);

  std::printf(
      "\n  cores   | unknowns | o2p (s)  | RHS (s)  | zip+update | comm (s) |"
      " total/step | analytic comm\n");
  for (long cores : {56L, 448L, 3584L, 28672L, 114688L, 229376L}) {
    const double work_oct = oct_per_core;  // weak scaling: constant/core
    // One RK4 step = 4 evaluations; the halo per rank saturates
    // (surface-to-volume), so the executed comm/step carries over.
    const double t_unzip = 4 * work_oct * c_unzip;
    const double t_rhs = 4 * work_oct * c_rhs;
    const double t_zip = 4 * work_oct * c_zip;
    const double t_comm = comm_step_exec;
    const double unknowns = double(cores) * 500e3;
    if (cores == 229376L) {
      rep.pair("comm_share_228k", NAN,
               t_comm / (t_unzip + t_rhs + t_zip + t_comm));
      rep.metric("total_per_step_228k_s", t_unzip + t_rhs + t_zip + t_comm);
    }
    std::printf(
        "  %-7ld | %-7.2gB | %-8.3f | %-8.3f | %-10.3f | %-8.4f | %-10.3f |"
        " %-8.4f\n",
        cores, unknowns / 1e9, t_unzip, t_rhs, t_zip, t_comm,
        t_unzip + t_rhs + t_zip + t_comm, comm_step_analytic);
  }
  bench::note("comm (s) is measured off the executed message schedule (max");
  bench::note("over per-rank virtual clocks, hidden + exposed); the per-rank");
  bench::note("halo saturates (surface-to-volume), so the breakdown stays");
  bench::note("flat out to 229,376 cores / 118B unknowns, as in the paper.");
  return 0;
}
