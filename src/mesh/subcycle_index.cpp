#include "mesh/subcycle_index.hpp"

#include <bit>

#include "common/error.hpp"

namespace dgr::mesh {

int SubcycleIndex::active_cutoff(int substep) const {
  DGR_CHECK(substep >= 0 && substep < cycle());
  if (substep == 0) return dmin;
  // Depth d is active iff 2^(dmax - d) divides the substep, so the coarsest
  // active depth is set by the number of trailing zero bits.
  const int z = std::countr_zero(static_cast<unsigned>(substep));
  return dmax - z;
}

std::size_t SubcycleIndex::active_octants(int substep) const {
  std::size_t n = 0;
  for (int d = active_cutoff(substep); d <= dmax; ++d)
    n += octants[static_cast<std::size_t>(d - dmin)];
  return n;
}

std::uint64_t SubcycleIndex::cycle_octant_evals() const {
  std::uint64_t n = 0;
  for (int d = dmin; d <= dmax; ++d)
    n += std::uint64_t(octants[static_cast<std::size_t>(d - dmin)]) * 4u *
         (std::uint64_t{1} << (d - dmin));
  return n;
}

std::uint64_t SubcycleIndex::global_octant_evals() const {
  std::uint64_t total = 0;
  for (std::size_t c : octants) total += c;
  return total * 4u * std::uint64_t(cycle());
}

SubcycleIndex SubcycleIndex::build(const Mesh& m) {
  SubcycleIndex idx;
  const oct::Octree& tree = m.tree();
  idx.dmin = tree.min_level();
  idx.dmax = tree.max_level();
  const int nd = idx.depths();
  idx.runs.assign(static_cast<std::size_t>(nd), {});
  idx.octants.assign(static_cast<std::size_t>(nd), 0);
  idx.dofs.assign(static_cast<std::size_t>(nd), 0);

  // Depth runs: leaves are SFC-sorted, so equal-level stretches are
  // contiguous; collapse them into maximal [begin, end) runs per depth.
  const auto& leaves = tree.leaves();
  for (OctIndex e = 0; e < static_cast<OctIndex>(leaves.size()); ++e) {
    const int lvl = leaves[static_cast<std::size_t>(e)].level;
    auto& rs = idx.runs[static_cast<std::size_t>(lvl - idx.dmin)];
    if (!rs.empty() && rs.back().second == e)
      rs.back().second = e + 1;
    else
      rs.push_back({e, e + 1});
    ++idx.octants[static_cast<std::size_t>(lvl - idx.dmin)];
  }

  idx.dof_depth.resize(m.num_dofs());
  for (DofIndex d = 0; d < static_cast<DofIndex>(m.num_dofs()); ++d) {
    const int lvl =
        leaves[static_cast<std::size_t>(m.dof_owner(d))].level;
    idx.dof_depth[static_cast<std::size_t>(d)] =
        static_cast<std::uint8_t>(lvl);
    ++idx.dofs[static_cast<std::size_t>(lvl - idx.dmin)];
  }
  return idx;
}

}  // namespace dgr::mesh
