file(REMOVE_RECURSE
  "libdgr_octree.a"
)
