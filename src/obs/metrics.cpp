#include "obs/metrics.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "common/log.hpp"

namespace dgr::obs {

std::string MetricsRegistry::json() const {
  using jsonu::num;
  using jsonu::quote;
  std::lock_guard<std::mutex> lk(m_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    out += quote(k) + ":" + num(v);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) out += ",";
    out += quote(k) + ":" + num(v);
    first = false;
  }
  out += "},\"summaries\":{";
  first = true;
  for (const auto& [k, s] : summaries_) {
    if (!first) out += ",";
    out += quote(k) + ":{\"count\":" + num(s.count) + ",\"sum\":" +
           num(s.sum) + ",\"min\":" + num(s.min) + ",\"max\":" + num(s.max) +
           ",\"mean\":" + num(s.mean()) + "}";
    first = false;
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    log::error("metrics: cannot open " + path);
    return false;
  }
  const std::string body = json() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  log::info("metrics: wrote " + path);
  return ok;
}

}  // namespace dgr::obs
