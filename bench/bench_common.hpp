#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the per-table / per-figure benchmark harness.
/// Every bench prints the paper's reported values next to our measured or
/// modeled values; EXPERIMENTS.md records the comparison. Grids are scaled
/// down to single-core scale (see DESIGN.md, "Scaled-down experiment
/// parameters") — shapes and ratios are the reproduction target, not
/// absolute numbers.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "exec/pool.hpp"
#include "mesh/mesh.hpp"
#include "obs/obs.hpp"
#include "octree/refinement.hpp"
#include "simd/simd.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::bench {

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  [note] %s\n", text.c_str());
}

/// Machine-readable bench telemetry. Every bench constructs one of these;
/// when the binary is invoked with `--json [path]`, the reporter
///   - installs an obs::MetricsRegistry for the bench's lifetime, so the
///     instrumented libraries (solver, simgpu runtime, dist engine) feed it
///     automatically,
///   - records paper-value/our-value pairs via pair(),
///   - and on destruction writes the canonical `BENCH_<name>.json` (plus a
///     copy at the requested path, if different) — the file the perf
///     trajectory is regressed on.
/// enable_trace() additionally installs an obs::TraceSession whose
/// virtual-domain timeline is exported to `BENCH_<name>.trace.json` and
/// referenced from the bench JSON ("trace" key). Without `--json`,
/// everything is a no-op and the bench behaves exactly as before.
///
/// `--threads N` sizes the host execution pool (exec::set_global_threads,
/// overriding DGR_THREADS) before the bench body runs. Every report
/// records `bench.threads` and the bench's end-to-end wall time as
/// `bench.host_seconds`, so single- vs multi-thread runs of the same bench
/// are directly comparable; all modeled "ours" values stay bitwise
/// identical across thread counts (the src/exec determinism contract).
class Reporter {
 public:
  Reporter(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") {
        enabled_ = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') out_path_ = argv[i + 1];
      }
      if (std::string(argv[i]) == "--threads") {
        // Strictly validated: "--threads garbage" / "--threads -3" used to
        // sail through std::atoi as 0 lanes; now they are hard errors.
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: --threads requires a value\n");
          std::exit(2);
        }
        try {
          exec::ThreadPool::set_global_threads(
              exec::parse_thread_count(argv[i + 1], "--threads"));
        } catch (const Error& e) {
          std::fprintf(stderr, "error: %s\n", e.what());
          std::exit(2);
        }
      }
    }
    if (enabled_) {
      // Benches are single-run reports, not cross-thread-count determinism
      // comparisons, so wall-clock latency histograms are welcome here.
      metrics_.enable_timing(true);
      obs::install_metrics(&metrics_);
    }
    std::printf("  [simd] width=%d (%s), flags: %s\n", simd_active_width(),
                simd_backend_name(simd_active_width()), simd_march());
  }

  ~Reporter() {
    metric("threads", double(exec::lanes()));
    metric("simd_width", double(simd_active_width()));
    metric("host_seconds", wall_.seconds());
    if (obs::metrics() == &metrics_) obs::install_metrics(nullptr);
    if (obs::trace() == trace_.get()) obs::install_trace(nullptr);
    if (enabled_) write();
  }

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  bool json_enabled() const { return enabled_; }

  /// Record one paper-value/our-value comparison row. Pass NAN for `paper`
  /// when the paper reports no value (serialized as null).
  void pair(const std::string& key, double paper, double ours,
            const std::string& unit = "") {
    pairs_.push_back({key, paper, ours, unit});
  }

  /// Record a standalone measured value.
  void metric(const std::string& key, double v) {
    metrics_.set("bench." + key, v);
  }

  /// Print a note and record it in the JSON report.
  void note(const std::string& text) {
    bench::note(text);
    notes_.push_back(text);
  }

  /// Install a TraceSession (owned by the reporter) whose `domain` timeline
  /// is exported next to the JSON on destruction. Returns nullptr when
  /// --json was not given.
  obs::TraceSession* enable_trace(obs::Clock domain = obs::Clock::kVirtual) {
    if (!enabled_) return nullptr;
    if (!trace_) {
      trace_ = std::make_unique<obs::TraceSession>();
      trace_domain_ = domain;
      obs::install_trace(trace_.get());
    }
    return trace_.get();
  }

  /// Canonical output paths (directory of the --json argument, if any).
  std::string json_path() const { return dir() + "BENCH_" + name_ + ".json"; }
  std::string trace_path() const {
    return dir() + "BENCH_" + name_ + ".trace.json";
  }

 private:
  struct Pair {
    std::string key;
    double paper, ours;
    std::string unit;
  };

  std::string dir() const {
    const auto slash = out_path_.rfind('/');
    return slash == std::string::npos ? "" : out_path_.substr(0, slash + 1);
  }

  std::string json() const {
    using jsonu::num;
    using jsonu::quote;
    std::string out = "{\"schema\":\"dgr-bench-v1\",\"bench\":";
    out += quote(name_);
    // SIMD provenance preamble: which vector width the run dispatched to
    // (DGR_SIMD env override included) and the flags the binary was built
    // with — two runs of the same bench are only comparable when these
    // match, so they ride in every report.
    out += ",\"simd_width\":" + num(double(simd_active_width()));
    out += ",\"simd_backend\":" + quote(simd_backend_name(simd_active_width()));
    out += ",\"march\":" + quote(simd_march());
    out += ",\"pairs\":[";
    bool first = true;
    for (const Pair& p : pairs_) {
      if (!first) out += ",";
      out += "{\"name\":" + quote(p.key) + ",\"paper\":" + num(p.paper) +
             ",\"ours\":" + num(p.ours);
      if (!p.unit.empty()) out += ",\"unit\":" + quote(p.unit);
      if (std::isfinite(p.paper) && p.paper != 0 && std::isfinite(p.ours))
        out += ",\"ratio\":" + num(p.ours / p.paper);
      out += "}";
      first = false;
    }
    out += "],\"notes\":[";
    first = true;
    for (const std::string& n : notes_) {
      if (!first) out += ",";
      out += quote(n);
      first = false;
    }
    out += "],\"metrics\":" + metrics_.json();
    if (trace_written_) out += ",\"trace\":" + quote(trace_path());
    out += "}\n";
    return out;
  }

  void write() {
    if (trace_ && trace_->event_count() > 0)
      trace_written_ = trace_->write_chrome_trace(trace_path(), trace_domain_);
    const std::string body = json();
    const auto dump = [&](const std::string& path) {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return;
      }
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("  [json] wrote %s\n", path.c_str());
    };
    dump(json_path());
    if (!out_path_.empty() && out_path_ != json_path()) dump(out_path_);
  }

  std::string name_, out_path_;
  WallTimer wall_;
  bool enabled_ = false;
  bool trace_written_ = false;
  std::vector<Pair> pairs_;
  std::vector<std::string> notes_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceSession> trace_;
  obs::Clock trace_domain_ = obs::Clock::kVirtual;
};

/// The Table III adaptivity grids m1..m5 as meshes.
inline std::shared_ptr<mesh::Mesh> adaptivity_mesh(int family) {
  oct::Domain dom{400.0};
  return std::make_shared<mesh::Mesh>(oct::build_adaptivity_grid(dom, family),
                                      dom);
}

/// A scaled-down binary-black-hole mesh: two punctures separated by `sep`
/// on a domain of half-extent `half`, cascaded to `finest` levels.
inline std::shared_ptr<mesh::Mesh> bbh_mesh(Real q, Real half, Real sep,
                                            int base_level, int finest) {
  const Real m1 = q / (1 + q), m2 = 1 / (1 + q);
  std::vector<oct::Puncture> ps = {
      {{sep * m2, 0.011, 0.007}, finest},
      {{-sep * m1, 0.011, 0.007}, finest},
  };
  oct::Domain dom{half};
  return std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(dom, ps, base_level), dom);
}

/// Initialize a solver state with a scaled BBH configuration.
inline void init_bbh_state(const mesh::Mesh& m, Real q, Real sep,
                           bssn::BssnState& state) {
  auto bhs = bssn::make_binary(q, sep);
  // Keep punctures slightly off the x-axis grid line, as in bbh_mesh.
  for (auto& b : bhs) {
    b.pos[1] = 0.011;
    b.pos[2] = 0.007;
  }
  bssn::set_punctures(m, bhs, state);
}

}  // namespace dgr::bench
