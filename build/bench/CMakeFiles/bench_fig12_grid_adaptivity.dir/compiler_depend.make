# Empty compiler generated dependencies file for bench_fig12_grid_adaptivity.
# This may be replaced when dependencies are built.
