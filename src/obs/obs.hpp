#pragma once
/// \file obs.hpp
/// \brief Process-wide observability hooks. A TraceSession and a
/// MetricsRegistry can be installed (not owned) for the duration of a run;
/// instrumented code emits through the helpers below, which are cheap
/// no-ops (one pointer load and branch) when nothing is installed — the
/// solver and runtime hot paths pay nothing by default.

#include <cstdint>

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dgr::obs {

/// Currently installed session/registry (nullptr when none).
TraceSession* trace();
MetricsRegistry* metrics();

/// Install (or uninstall with nullptr). The pointer is borrowed: the caller
/// keeps ownership and must uninstall before destroying the object.
void install_trace(TraceSession* session);
void install_metrics(MetricsRegistry* registry);

/// RAII host-domain span on the installed session's default host track.
/// No-op when no session is installed at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "host")
      : session_(trace()) {
    if (session_)
      session_->span_begin(session_->host_track(), name, cat,
                           monotonic_us());
  }
  ~ScopedSpan() {
    if (session_) session_->span_end(session_->host_track(), monotonic_us());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSession* session_;
};

// Metric helpers: forward to the installed registry, no-op otherwise.
inline void count(const char* name, std::uint64_t n = 1) {
  if (MetricsRegistry* m = metrics()) m->add(name, n);
}
inline void gauge_set(const char* name, double v) {
  if (MetricsRegistry* m = metrics()) m->set(name, v);
}
inline void observe(const char* name, double v) {
  if (MetricsRegistry* m = metrics()) m->observe(name, v);
}

}  // namespace dgr::obs
