#include "perf/production.hpp"

#include "common/error.hpp"
#include "mesh/patch.hpp"

namespace dgr::perf {

std::vector<ProductionConfig> table4_configs() {
  // Finest levels reproduce Table IV's dx_min values on the 800 M domain:
  // dx(L) = 800 / (6 * 2^L): L13 = 1.63e-2, L14 = 8.1e-3, L15 = 4.1e-3,
  // L16 = 2.0e-3; the big hole sits at L12 (3.25e-2) for q > 1.
  return {
      {1, 13, 13, 4, 748, 8, 400},
      {2, 14, 12, 4, 600, 8, 400},
      {4, 15, 12, 4, 602, 8, 400},
      {8, 16, 12, 8, 1400, 8, 400},
  };
}

ProductionEstimate estimate_production(const ProductionConfig& cfg,
                                       double sec_per_octant_stage,
                                       double utilization) {
  DGR_CHECK(utilization > 0 && sec_per_octant_stage > 0);
  ProductionEstimate est;
  est.config = cfg;

  const oct::Domain dom{cfg.domain_half};
  const Real m1 = cfg.q / (1 + cfg.q), m2 = 1 / (1 + cfg.q);
  // Punctures around the center of mass; a wider cascade (factor 2) models
  // the production grids' refined inspiral + wave zone.
  std::vector<oct::Puncture> ps = {
      {{cfg.separation * m2, 0, 0}, cfg.level_big},
      {{-cfg.separation * m1, 0, 0}, cfg.level_small},
  };
  const oct::Octree tree = oct::build_puncture_octree(dom, ps, 3, 2.0);

  est.octants = tree.size();
  est.unknowns = static_cast<std::uint64_t>(tree.size()) * mesh::kOctPts *
                 24;  // patch points x variables (duplicates ~few %)
  const int lmax = tree.max_level();
  est.dx_min = dom.octant_edge(lmax) / (mesh::kR - 1);
  est.timesteps =
      static_cast<std::uint64_t>(cfg.horizon / (0.25 * est.dx_min));
  // RK4: 4 stages per step, distributed over the GPUs.
  est.seconds_per_step = 4.0 * static_cast<double>(est.octants) *
                         sec_per_octant_stage /
                         (cfg.gpus * utilization);
  est.wall_hours = est.seconds_per_step * est.timesteps / 3600.0;
  return est;
}

}  // namespace dgr::perf
