/// \file bench_fig16_rk4_cpu_gpu.cpp
/// \brief Regenerates Fig. 16: overall wall-clock for 5 RK4 timesteps on
/// binary-black-hole grids of growing size — one A100 vs a two-socket EPYC
/// node (paper: ~2.5x overall speedup). Same-counts modeling as Fig. 15,
/// now for the full pipeline (halo, unzip, RHS, zip, AXPY).

#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 16", "5 RK4 steps: one A100 vs two-socket EPYC node");
  bench::Reporter rep("fig16_rk4_cpu_gpu", argc, argv);

  const perf::MachineModel a100 = perf::a100();
  const perf::MachineModel epyc = perf::epyc7763_node();
  std::printf(
      "  grid      | octants | unknowns | A100 (s) | EPYC node (s) | speedup "
      "(paper ~2.5x) | host (s)\n");

  struct Config {
    const char* name;
    int base, finest;
    Real half;
  };
  const Config configs[] = {{"bbh-small", 2, 3, 16.0},
                            {"bbh-medium", 2, 4, 16.0},
                            {"bbh-large", 3, 5, 16.0}};
  for (const auto& cfg : configs) {
    auto m = bench::bbh_mesh(1.0, cfg.half, 2.0, cfg.base, cfg.finest);
    simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
    bssn::BssnState s;
    bench::init_bbh_state(*m, 1.0, 2.0, s);
    gpu.upload(s);
    WallTimer t;
    for (int i = 0; i < 5; ++i) gpu.rk4_step();
    const double host_s = t.seconds();
    const double a100_s = gpu.runtime().modeled_total_with(a100);
    const double epyc_s = gpu.runtime().modeled_total_with(epyc);
    rep.pair(std::string("rk4_speedup_") + cfg.name, 2.5, epyc_s / a100_s,
             "x");
    rep.metric(std::string("a100_s_") + cfg.name, a100_s);
    // Actual host wall time of the (possibly multi-threaded) sweep — the
    // number the --threads 1 vs --threads N comparison reads.
    rep.metric(std::string("host_s_") + cfg.name, host_s);
    std::printf(
        "  %-9s | %-7zu | %-7.1fM | %-8.3f | %-13.3f | %-20.2f | %-7.1f\n",
        cfg.name, m->num_octants(),
        m->num_dofs() * 24 / 1e6, a100_s, epyc_s, epyc_s / a100_s, host_s);
  }
  bench::note("paper grids carry 36M-104M unknowns; ours are scaled to");
  bench::note("single-core-buildable sizes. Once patches are built the RHS");
  bench::note("cost per octant is independent of refinement (paper §V-A).");
  return 0;
}
