#pragma once
/// \file constraints.hpp
/// \brief Hamiltonian and momentum constraint evaluation — the accuracy
/// diagnostics used in §V-C (and by the error-driven regrid criterion).

#include "bssn/rhs.hpp"
#include "bssn/vars.hpp"
#include "common/types.hpp"
#include "mesh/mesh.hpp"

namespace dgr::bssn {

/// Evaluate the vacuum constraints on the interior of one patch:
///   H   = R + (2/3) K^2 - At_ij At^ij                  (Hamiltonian)
///   M^i = dj At^ij + Gammat^i_jk At^jk
///         - (3/(2chi)) At^ij dj chi - (2/3) gtu^ij dj K (momentum)
/// Outputs are 13^3 buffers with the interior 7^3 region written; `ws` must
/// already hold the derivative stage of the same input patch (or pass
/// `run_derivs = true` to compute it here).
void bssn_constraints_patch(const Real* const in[kNumVars],
                            const mesh::PatchGeom& geom,
                            const BssnParams& params, DerivWorkspace& ws,
                            Real* ham, Real* mom /*3 x kPatchPts*/,
                            bool run_derivs = true);

/// Constraint norms over a whole mesh/state (L2 and Linf of H), optionally
/// excluding balls of radius `excise_radius` around given centers (the
/// puncture neighborhoods, where constraint violation is expected and
/// gauge-protected).
struct ConstraintNorms {
  Real ham_l2 = 0;
  Real ham_linf = 0;
  Real mom_l2 = 0;
  Real mom_linf = 0;
};

class BssnState;

ConstraintNorms compute_constraint_norms(
    const mesh::Mesh& mesh, const BssnState& state, const BssnParams& params,
    const std::vector<std::array<Real, 3>>& excise_centers = {},
    Real excise_radius = 0.0);

}  // namespace dgr::bssn
