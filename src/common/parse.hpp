#pragma once
/// \file parse.hpp
/// \brief Strict parsers for CLI flags and DGR_* environment knobs.
///
/// Every knob in the tree routes through these (the discipline started by
/// exec::parse_thread_count and generalized by the serve protocol): digits
/// are consumed in full, bounds are enforced, and anything else throws
/// dgr::Error naming the offending knob — a typo'd DGR_* variable fails
/// loudly at first use instead of being silently ignored, truncated, or
/// read as zero. serve::parse_count / parse_real / env_count and
/// exec::parse_thread_count are thin forwards to this family, so the error
/// text is uniform across CLI flags, protocol fields, and environment.

#include <initializer_list>

namespace dgr {

/// Strict bounded integer parse: digits (optional leading '-') only, full
/// consume, value in [lo, hi]; anything else throws dgr::Error naming
/// `what`.
long parse_count(const char* s, const char* what, long lo, long hi);

/// Strict double parse: std::from_chars over the whole token (no trailing
/// junk, no empty string); throws dgr::Error naming `what`. Round-trips
/// shortest-decimal output bit-for-bit.
double parse_real(const char* s, const char* what);

/// Environment knob helper: returns fallback when `name` is unset,
/// otherwise the strictly parsed value (unset and invalid are different —
/// invalid throws).
long env_count(const char* name, long fallback, long lo, long hi);

/// Strict keyword parse: `s` must match one of `choices` exactly; returns
/// its index. Anything else throws dgr::Error naming `what` and listing
/// the accepted values.
int parse_choice(const char* s, const char* what,
                 std::initializer_list<const char*> choices);

}  // namespace dgr
