#pragma once
/// \file pool.hpp
/// \brief Work-stealing host thread pool — the parallel execution engine
/// under the simulated GPU runtime, the CPU solver pipeline, and the
/// distributed engine.
///
/// Lane model. A pool of `threads` lanes runs `threads - 1` OS worker
/// threads; lane 0 is the *caller* lane: the thread that opens a parallel
/// region participates in it (it drains chunks like a worker), so
/// `--threads 4` means four concurrent execution lanes, not 4 workers plus
/// a blocked driver. this_lane() identifies the executing lane and indexes
/// per-lane scratch state (derivative workspaces, scratch arenas). One
/// external driver thread at a time may open parallel regions — the
/// solver, benches, and tests are all single-driver, and lane 0 is shared
/// by whichever external thread is driving.
///
/// Scheduling. Each worker owns a deque: it pops its own work LIFO (cache
/// warmth for nested regions) and steals FIFO from a victim scan when its
/// deque is empty. Tasks submitted from a worker go to that worker's own
/// deque (nested parallel regions stay local until stolen); external
/// submissions are distributed round-robin. Scheduling order is
/// intentionally *not* deterministic — determinism is provided one level
/// up, by the fixed chunk partition and ordered reductions of
/// parallel.hpp, which make results independent of which lane ran what.
///
/// The global pool is sized from DGR_THREADS (or --threads via
/// set_global_threads(); default std::thread::hardware_concurrency) and
/// created lazily on first use. Resizing must happen between parallel
/// regions, never during one.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dgr::exec {

/// Lane id of the calling thread: 0 for external (driver) threads, 1..N-1
/// for pool workers. Always < ThreadPool::global().threads() when called
/// from inside a parallel region.
int this_lane();

class ThreadPool {
 public:
  /// A pool with `threads` total lanes (>= 1): `threads - 1` workers plus
  /// the participating caller lane. threads == 1 runs everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + caller).
  int threads() const { return lanes_; }

  /// Enqueue a task. From a worker thread of this pool the task goes to
  /// that worker's own deque; otherwise it is distributed round-robin.
  /// With no workers (threads() == 1) the task runs inline.
  void submit(std::function<void()> task);

  // ------------------------------------------------- process-wide pool --
  /// The lazily created global pool, sized by configured_threads().
  static ThreadPool& global();
  /// Replace the global pool with one of `threads` lanes. Must not be
  /// called while a parallel region is open.
  static void set_global_threads(int threads);
  /// DGR_THREADS if set (validated via parse_thread_count — garbage or
  /// non-positive values throw), else hardware_concurrency (>= 1).
  static int configured_threads();

 private:
  struct Worker {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  void run(int widx);
  bool try_pop(int widx, std::function<void()>& out);

  int lanes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> os_threads_;
  std::mutex cv_m_;
  std::condition_variable cv_;
  std::atomic<int> pending_{0};  ///< queued, not yet started
  std::atomic<std::uint64_t> rr_{0};
  bool stop_ = false;  ///< guarded by cv_m_
};

/// Lanes of the global pool — the size for per-lane workspace arrays.
inline int lanes() { return ThreadPool::global().threads(); }

/// Strict thread-count parse shared by the DGR_THREADS env var and the
/// benches' --threads flag: digits only, value in [1, 4096]. Anything else
/// ("garbage", "-3", "0", "4x", empty) throws dgr::Error with a message
/// naming `what` — a silent std::atoi fallback to 0 lanes is exactly the
/// bug this replaces.
int parse_thread_count(const char* s, const char* what);

}  // namespace dgr::exec
