/// \file test_fault_recovery.cpp
/// \brief Fault-tolerance tests for the simulated multi-rank engine:
/// deterministic FaultPlan streams, dropped-message retransmit with
/// exponential backoff, delay faults, heartbeat failure detection, and the
/// headline guarantee — a run with an injected rank failure recovers from
/// the last coordinated checkpoint and finishes with a final state and
/// Psi4 waveform bitwise identical to the fault-free run.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "dist/engine.hpp"
#include "solver/evolution.hpp"
#include "solver/io.hpp"

namespace dgr::dist {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;

std::shared_ptr<Mesh> puncture_mesh(int finest = 3, int base = 2) {
  Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, finest}}, base),
      dom);
}

void init_puncture(const Mesh& m, BssnState& s) {
  s.resize(m.num_dofs());
  bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
}

bool file_exists(const std::string& path) {
  return bool(std::ifstream(path));
}

TEST(FaultPlan, SameSeedSameStreams) {
  FaultConfig fc;
  fc.enabled = true;
  fc.random_failures = 3;
  fc.random_fail_t_min = 1.0;
  fc.random_fail_t_max = 2.0;
  fc.msg_drop_prob = 0.2;
  fc.msg_delay_prob = 0.2;
  FaultPlan a(fc), b(fc);
  ASSERT_EQ(a.failures().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.failures()[i].t_virtual, b.failures()[i].t_virtual);
    EXPECT_EQ(a.failures()[i].rank, b.failures()[i].rank);
    EXPECT_GE(a.failures()[i].t_virtual, 1.0);
    EXPECT_LT(a.failures()[i].t_virtual, 2.0);
    if (i > 0)
      EXPECT_LE(a.failures()[i - 1].t_virtual, a.failures()[i].t_virtual);
  }
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.draw_msg_fault();
    const auto fb = b.draw_msg_fault();
    EXPECT_EQ(fa.drops, fb.drops);
    EXPECT_EQ(fa.delayed, fb.delayed);
  }
  // A different seed reshuffles the event stream.
  FaultConfig other = fc;
  other.seed = 12345;
  FaultPlan c(fc), d(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < 3; ++i)
    any_diff |= c.failures()[i].t_virtual != d.failures()[i].t_virtual;
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, PendingFailuresConsumedInTimeOrder) {
  FaultConfig fc;
  fc.enabled = true;
  fc.rank_failures = {{2.0, 1}, {1.0, 0}};  // out of order on purpose
  FaultPlan plan(fc);
  EXPECT_EQ(plan.pending_failure(0.5), nullptr);
  const auto* f = plan.pending_failure(1.5);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank, 0);
  plan.consume_failure();
  EXPECT_EQ(plan.pending_failure(1.5), nullptr);  // next event is at 2.0
  f = plan.pending_failure(2.5);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->rank, 1);
  plan.consume_failure();
  EXPECT_EQ(plan.pending_failure(1e9), nullptr);

  FaultConfig off = fc;
  off.enabled = false;
  FaultPlan inert(off);
  EXPECT_EQ(inert.pending_failure(1e9), nullptr);
  EXPECT_EQ(inert.draw_msg_fault().drops, 0);
}

TEST(SimCommFault, DroppedMessageRetransmitsWithBackoff) {
  FaultConfig fc;
  fc.enabled = true;
  fc.msg_drop_prob = 1.0;  // every attempt up to max_retries is lost
  fc.max_retries = 2;
  fc.retry_timeout = 1e-3;
  fc.retry_backoff = 2.0;
  FaultPlan plan(fc);
  SimComm comm(2, perf::flat_network(perf::infiniband()), &plan);

  SimComm::Payload in = {1.0, 2.5, -3.0}, out;
  std::vector<SimComm::Request> reqs;
  reqs.push_back(comm.irecv(0, 1, 0, &out));
  comm.isend(1, 0, 0, in);
  comm.wait_all(0, reqs);

  // Payload delivered intact — drops cost time, never data.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], 2.5);
  EXPECT_EQ(out[2], -3.0);
  EXPECT_EQ(comm.stats(1).retransmits, 2u);
  // Arrival = 3 full injections (original + 2 resends) + the NACK
  // timeouts 1e-3 and 2e-3 (exponential backoff).
  const auto link = perf::infiniband();
  const double wire = link.alpha + link.beta * (3 * sizeof(Real));
  EXPECT_DOUBLE_EQ(comm.log()[0].t_ready, 3 * wire + 3e-3);
  EXPECT_DOUBLE_EQ(comm.clock(0), comm.log()[0].t_ready);
  EXPECT_GT(comm.stats(0).t_comm_exposed, 3e-3);
}

TEST(SimCommFault, DelayedMessageArrivesLateIntact) {
  FaultConfig fc;
  fc.enabled = true;
  fc.msg_delay_prob = 1.0;
  fc.msg_delay_factor = 4.0;
  FaultPlan plan(fc);
  SimComm comm(2, perf::flat_network(perf::infiniband()), &plan);

  SimComm::Payload in(256, 7.0), out;
  std::vector<SimComm::Request> reqs;
  reqs.push_back(comm.irecv(0, 1, 0, &out));
  comm.isend(1, 0, 0, in);
  comm.wait_all(0, reqs);

  ASSERT_EQ(out.size(), 256u);
  EXPECT_EQ(out[100], 7.0);
  EXPECT_EQ(comm.stats(1).msgs_delayed, 1u);
  EXPECT_EQ(comm.stats(1).retransmits, 0u);
  // Serialization term stretched by the delay factor.
  const auto link = perf::infiniband();
  EXPECT_DOUBLE_EQ(comm.log()[0].t_ready,
                   link.alpha + 4.0 * link.beta * (256 * sizeof(Real)));
}

TEST(SimCommFault, HeartbeatDetectionAdvancesSurvivors) {
  SimComm comm(4, perf::gpu_cluster(2));
  comm.advance(3, 1.0);  // the furthest survivor sets the sync point
  EXPECT_EQ(comm.alive_count(), 4);
  comm.fail_rank(2, 0.55);
  EXPECT_FALSE(comm.alive(2));
  EXPECT_EQ(comm.alive_count(), 3);
  EXPECT_THROW(comm.fail_rank(2, 0.6), Error);  // already dead

  // Sync point = max(survivor clocks, failure time) = 1.0; the first
  // heartbeat slot after it (period 0.25) is 1.25, and death is declared
  // timeout=0.05 later: every survivor stalls until 1.3.
  const auto detected = comm.detect_failures(0.25, 0.05);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], 2);
  const double t_detect = 5 * 0.25 + 0.05;
  EXPECT_DOUBLE_EQ(comm.clock(0), t_detect);
  EXPECT_DOUBLE_EQ(comm.stats(0).t_failover, t_detect);
  EXPECT_DOUBLE_EQ(comm.clock(1), t_detect);
  EXPECT_DOUBLE_EQ(comm.clock(3), t_detect);
  EXPECT_DOUBLE_EQ(comm.stats(3).t_failover, t_detect - 1.0);
  // A second sweep finds nothing new and moves no clocks.
  EXPECT_TRUE(comm.detect_failures(0.25, 0.05).empty());
  EXPECT_DOUBLE_EQ(comm.clock(0), t_detect);
}

/// The headline acceptance test: a 4-rank run with a mid-run rank failure
/// rolls back to the last coordinated checkpoint, rebuilds over the 3
/// survivors, and finishes with state AND Psi4 waveform bitwise identical
/// to the fault-free run — only the virtual clock shows the fault.
TEST(FaultRecovery, RankFailureRecoversBitwise) {
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx probe(m, scfg);
  init_puncture(*m, probe.state());
  const Real dt = probe.suggested_dt();

  BssnState initial;
  init_puncture(*m, initial);
  DistConfig base;
  base.ranks = 4;
  base.t_end = 8.2 * dt;
  base.regrid_every = 4;
  base.regrid.eps = 2e-3;
  base.regrid.min_level = 2;
  base.regrid.max_level = 3;  // keep dt constant across the regrid
  base.sec_per_octant = 1e-5;
  base.checkpoint_interval = 2;
  base.extraction_radii = {5.0};
  base.extract_every = 2;
  const auto clean = evolve_distributed(m, initial, scfg, base);
  ASSERT_GE(clean.steps, 8);
  ASSERT_GE(clean.regrids, 1);
  ASSERT_GE(clean.checkpoints, 4);
  ASSERT_EQ(clean.recoveries, 0);
  ASSERT_EQ(clean.final_ranks, 4);
  ASSERT_EQ(clean.waves22.size(), 1u);
  ASSERT_GE(clean.waves22[0].times.size(), 4u);

  DistConfig faulty = base;
  faulty.faults.enabled = true;
  faulty.faults.rank_failures = {{0.6 * clean.t_virtual, 2}};
  const auto rec = evolve_distributed(m, initial, scfg, faulty);

  EXPECT_EQ(rec.failures, 1);
  EXPECT_GE(rec.recoveries, 1);
  EXPECT_GT(rec.lost_steps, 0);
  EXPECT_EQ(rec.final_ranks, 3);
  EXPECT_GT(rec.t_failover_max, 0.0);

  // Same net trajectory...
  EXPECT_EQ(rec.steps, clean.steps);
  EXPECT_EQ(rec.regrids, clean.regrids);
  // ...paid for with re-executed steps and extra virtual time.
  EXPECT_EQ(rec.steps_executed, rec.steps + rec.lost_steps);
  EXPECT_GT(rec.t_virtual, clean.t_virtual);

  // The determinism invariant: bitwise-identical state and waveform.
  ASSERT_EQ(rec.state.num_dofs(), clean.state.num_dofs());
  EXPECT_EQ(rec.state.max_abs_diff(clean.state), 0.0);
  ASSERT_EQ(rec.waves22.size(), 1u);
  ASSERT_EQ(rec.waves22[0].times.size(), clean.waves22[0].times.size());
  for (std::size_t i = 0; i < clean.waves22[0].times.size(); ++i) {
    EXPECT_EQ(rec.waves22[0].times[i], clean.waves22[0].times[i]) << i;
    EXPECT_EQ(rec.waves22[0].values[i], clean.waves22[0].values[i]) << i;
  }
}

/// Recovery through the on-disk restart path: the coordinated checkpoint
/// is written with solver::save_checkpoint and reloaded with
/// load_checkpoint + checkpoint_mesh, and the atomic write leaves no .tmp
/// debris behind.
TEST(FaultRecovery, DiskCheckpointRecoveryMatchesInMemory) {
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx probe(m, scfg);
  init_puncture(*m, probe.state());
  const Real dt = probe.suggested_dt();

  BssnState initial;
  init_puncture(*m, initial);
  DistConfig base;
  base.ranks = 4;
  base.t_end = 4.2 * dt;
  base.regrid_every = 4;
  base.regrid.eps = 2e-3;
  base.regrid.min_level = 2;
  base.regrid.max_level = 3;
  base.sec_per_octant = 1e-5;
  base.checkpoint_interval = 2;
  const auto clean = evolve_distributed(m, initial, scfg, base);
  ASSERT_GE(clean.steps, 4);

  const std::string path = "/tmp/dgr_test_fault_recovery_cp.bin";
  DistConfig faulty = base;
  faulty.checkpoint_path = path;
  faulty.faults.enabled = true;
  faulty.faults.rank_failures = {{0.6 * clean.t_virtual, 1}};
  const auto rec = evolve_distributed(m, initial, scfg, faulty);

  EXPECT_GE(rec.recoveries, 1);
  EXPECT_EQ(rec.final_ranks, 3);
  EXPECT_EQ(rec.steps, clean.steps);
  EXPECT_EQ(rec.state.max_abs_diff(clean.state), 0.0);
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

/// Message drops and delays perturb only the virtual clock: the evolved
/// state stays bitwise identical because every payload is eventually
/// delivered intact.
TEST(FaultRecovery, MessageFaultsOnlyShiftTheClock) {
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx probe(m, scfg);
  init_puncture(*m, probe.state());
  const Real dt = probe.suggested_dt();

  BssnState initial;
  init_puncture(*m, initial);
  DistConfig base;
  base.ranks = 4;
  base.t_end = 4.2 * dt;
  base.regrid_every = 4;
  base.regrid.eps = 2e-3;
  base.regrid.min_level = 2;
  base.regrid.max_level = 3;
  base.sec_per_octant = 1e-5;
  const auto clean = evolve_distributed(m, initial, scfg, base);

  DistConfig lossy = base;
  lossy.faults.enabled = true;
  lossy.faults.msg_drop_prob = 0.3;
  lossy.faults.msg_delay_prob = 0.3;
  const auto res = evolve_distributed(m, initial, scfg, lossy);

  EXPECT_EQ(res.steps, clean.steps);
  EXPECT_EQ(res.recoveries, 0);
  EXPECT_EQ(res.final_ranks, 4);
  EXPECT_GT(res.retransmits, 0u);
  EXPECT_GT(res.msgs_delayed, 0u);
  EXPECT_GT(res.t_virtual, clean.t_virtual);
  EXPECT_EQ(res.state.max_abs_diff(clean.state), 0.0);
}

TEST(FaultRecovery, RankFailuresRequireACheckpointInterval) {
  auto m = puncture_mesh();
  BssnState initial;
  init_puncture(*m, initial);
  solver::SolverConfig scfg;
  DistConfig cfg;
  cfg.ranks = 2;
  cfg.t_end = 1e-3;
  cfg.faults.enabled = true;
  cfg.faults.rank_failures = {{1e-6, 1}};
  ASSERT_EQ(cfg.checkpoint_interval, 0);
  EXPECT_THROW(evolve_distributed(m, initial, scfg, cfg), Error);
}

}  // namespace
}  // namespace dgr::dist
