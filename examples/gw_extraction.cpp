/// \file gw_extraction.cpp
/// \brief Gravitational-wave extraction walkthrough: spin-weighted
/// spherical harmonics, sphere quadrature, mode decomposition of an
/// analytic signal, and the type-D check (Psi4 ~ 0 for a single static
/// black hole viewed through the radial tetrad).
///
///   ./build/examples/gw_extraction

#include <cmath>
#include <complex>
#include <cstdio>
#include <memory>

#include "bssn/initial_data.hpp"
#include "gw/extract.hpp"
#include "gw/psi4.hpp"
#include "gw/swsh.hpp"

int main() {
  using namespace dgr;
  constexpr Real kPi = 3.14159265358979323846;

  // 1. The basis: spin-weight -2 spherical harmonics.
  std::printf("-2Y22(pi/3, 0)       = %.6f  (closed form %.6f)\n",
              gw::swsh_m2(2, 2, kPi / 3, 0).real(),
              std::sqrt(5.0 / (64 * kPi)) * std::pow(1 + 0.5, 2));

  // 2. Decompose an analytic signal: 2*(-2Y22) + (1-0.5i)*(-2Y2-1).
  gw::WaveExtractor extractor({1.0}, /*lmax=*/3, /*quad=*/10);
  const auto& quad = extractor.quadrature();
  std::vector<gw::Complex> samples(quad.size());
  for (std::size_t i = 0; i < quad.size(); ++i) {
    const auto& n = quad.points[i];
    const Real th = std::acos(n[2]);
    const Real ph = std::atan2(n[1], n[0]);
    samples[i] = 2.0 * gw::swsh_m2(2, 2, th, ph) +
                 gw::Complex{1.0, -0.5} * gw::swsh_m2(2, -1, th, ph);
  }
  const auto modes = extractor.decompose(samples);
  std::printf("decomposed (2, 2): %.4f%+.4fi  expected 2\n",
              modes.mode(2, 2).real(), modes.mode(2, 2).imag());
  std::printf("decomposed (2,-1): %.4f%+.4fi  expected 1-0.5i\n",
              modes.mode(2, -1).real(), modes.mode(2, -1).imag());
  std::printf("decomposed (3, 0): %.1e (spurious leakage)\n",
              std::abs(modes.mode(3, 0)));

  // 3. Physics check: a single (Schwarzschild) puncture is Petrov type D —
  //    the radial quasi-Kinnersley tetrad sees essentially zero Psi4, even
  //    though the Coulomb curvature M/r^3 is finite.
  oct::Domain dom{8.0};
  auto mesh = std::make_shared<mesh::Mesh>(oct::Octree::uniform(3), dom);
  bssn::BssnState s;
  bssn::set_punctures(*mesh, {{1.0, {0.02, 0.013, 0.009}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  gw::WaveExtractor far({4.0}, 2, 8);
  const auto bh = far.extract_from_state(*mesh, s, bssn::BssnParams{});
  std::printf(
      "Schwarzschild |psi4_22| at r=4M: %.2e   (Coulomb scale M/r^3 = "
      "%.2e)\n",
      std::abs(bh[0].mode(2, 2)), 1.0 / 64.0);

  // 4. Two separated punctures break type D: quadrupole content appears.
  bssn::set_punctures(*mesh,
                      {{0.5, {1.0, 0.01, 0.013}, {0, 0, 0}, {0, 0, 0}},
                       {0.5, {-1.0, 0.01, 0.013}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  const auto bbh = far.extract_from_state(*mesh, s, bssn::BssnParams{});
  std::printf("binary |psi4_22| at r=4M:        %.2e\n",
              std::abs(bbh[0].mode(2, 2)));
  return 0;
}
