file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_weak_scaling_frontera.dir/bench_fig20_weak_scaling_frontera.cpp.o"
  "CMakeFiles/bench_fig20_weak_scaling_frontera.dir/bench_fig20_weak_scaling_frontera.cpp.o.d"
  "bench_fig20_weak_scaling_frontera"
  "bench_fig20_weak_scaling_frontera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_weak_scaling_frontera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
