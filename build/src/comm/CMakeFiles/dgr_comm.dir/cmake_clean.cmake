file(REMOVE_RECURSE
  "CMakeFiles/dgr_comm.dir/partition.cpp.o"
  "CMakeFiles/dgr_comm.dir/partition.cpp.o.d"
  "libdgr_comm.a"
  "libdgr_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
