/// \file subcycle.cpp
/// \brief Depth-local sub-cycled RK4 (Berger–Oliger power-of-two cadence).
///
/// One subcycle_cycle(fine_dt) advances the whole mesh by one coarse step
/// = cycle() fine substeps. At each substep the due depth suffix steps
/// coarsest-first; each depth runs a full RK4 step of size
/// fine_dt * 2^(dmax - d) with the unzip/RHS/zip sweeps restricted to its
/// own octant runs. Ghost data at refinement boundaries comes from the
/// dense-output time interpolation of fd/dense_output.hpp: every depth
/// retains its step-start state u0 and first RHS k1 so neighbors can
/// evaluate it at intermediate stage times to second order.
///
/// Determinism contract: every sweep below is a fixed-grain parallel_for
/// with disjoint writes and per-element arithmetic independent of chunk
/// boundaries — results are bitwise identical at any DGR_THREADS and any
/// DGR_SIMD width, matching the global-dt path's guarantees. On a uniform
/// mesh (cycle() == 1) the stage fill reduces to the exact par_set_axpy
/// arithmetic of rk4_step and the restricted update to its four sequential
/// par_axpy roundings, so the sub-cycled step is bitwise identical to the
/// global step — the degeneracy pin of test_subcycle.

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "fd/dense_output.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::solver {

using bssn::BssnState;
using bssn::kNumVars;

namespace {

constexpr std::uint8_t kModeLinear = 0;
constexpr std::uint8_t kModeQuad = 1;

/// RK4 stage-time fractions: stage j evaluates the RHS at t0 + c_j * dt.
constexpr Real kStageC[4] = {0.0, 0.5, 0.5, 1.0};

/// Per-depth recipe for one stage-fill sweep: how DOFs owned at that depth
/// are written into the stage buffer.
struct FillCoef {
  enum Mode : int {
    kCopy,    ///< stage = state (stepping depth, first stage)
    kRkAxpy,  ///< stage = state + a * k_prev (stepping depth, stages 2-4)
    kDense,   ///< stage = dense output on (u0, state, k1) at the stage time
  };
  Mode mode = kCopy;
  Real a = 0;
  fd::DenseCoeffs dc;
};

}  // namespace

const mesh::SubcycleIndex& BssnCtx::subcycle_index() {
  if (!subidx_)
    subidx_ = std::make_unique<mesh::SubcycleIndex>(
        mesh::SubcycleIndex::build(*mesh_));
  return *subidx_;
}

void BssnCtx::subcycle_bootstrap() {
  const mesh::SubcycleIndex& idx = *subidx_;
  const std::size_t nd = mesh_->num_dofs();
  dense_u0_.resize(nd);
  dense_k1_.resize(nd);
  dense_t0_.assign(static_cast<std::size_t>(idx.depths()), time_);
  dense_mode_.assign(static_cast<std::size_t>(idx.depths()), kModeLinear);
  // One full-mesh RHS at the aligned start time seeds the first-order
  // dense output u0 + (t - t0) k1 for every depth. Substep 0 activates
  // every depth (all strides divide 0), so each switches to the quadratic
  // form after its first step — linear fills are only ever read while
  // stepping through substep 0 right after (re)initialization.
  compute_rhs(state_, dense_k1_);
  phases_.update.start();
  exec::parallel_for(
      0, kNumVars, 1,
      [&](std::int64_t vb, std::int64_t ve) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          const Real* uv = state_.field(v);
          std::copy(uv, uv + nd, dense_u0_.field(v));
        }
      },
      "update");
  phases_.update.stop();
  dense_ready_ = true;
}

void BssnCtx::subcycle_step_depth(int depth, Real fine_dt) {
  const mesh::SubcycleIndex& idx = *subidx_;
  const int slot = depth - idx.dmin;
  const Real dt = fine_dt * static_cast<Real>(1 << (idx.dmax - depth));
  const auto& runs = idx.runs[static_cast<std::size_t>(slot)];
  const std::size_t nd = mesh_->num_dofs();
  const std::uint8_t* dd = idx.dof_depth.data();
  const int nslots = idx.depths();

  for (int j = 0; j < 4; ++j) {
    // Per-depth fill recipe at this stage's time. The stepping depth uses
    // the exact RK4 stage arithmetic of rk4_step; every other depth is
    // dense-output-evaluated at ts. Depths coarser than `depth` already
    // stepped this substep (coarsest-first order), so their retained
    // interval covers ts — pure interpolation. Finer depths are
    // extrapolated by at most two of their intervals (the 2:1 balance
    // bound); depths further away get fill values the restricted RHS
    // never reads (unzip halos only reach adjacent levels).
    const Real ts = time_ + kStageC[j] * dt;
    std::vector<FillCoef> tab(static_cast<std::size_t>(nslots));
    for (int s = 0; s < nslots; ++s) {
      FillCoef& f = tab[static_cast<std::size_t>(s)];
      if (s == slot) {
        if (j == 0) {
          f.mode = FillCoef::kCopy;
        } else {
          f.mode = FillCoef::kRkAxpy;
          f.a = kStageC[j] * dt;
        }
      } else {
        f.mode = FillCoef::kDense;
        const Real dtp =
            fine_dt * static_cast<Real>(1 << (idx.dmax - (idx.dmin + s)));
        if (dense_mode_[static_cast<std::size_t>(s)] == kModeQuad)
          f.dc = fd::dense_output_quadratic(
              (ts - dense_t0_[static_cast<std::size_t>(s)]) / dtp, dtp);
        else
          f.dc = fd::dense_output_linear(
              ts - dense_t0_[static_cast<std::size_t>(s)]);
      }
    }

    const BssnState* kprev = (j > 0) ? &k_[j - 1] : nullptr;
    phases_.update.start();
    exec::parallel_for(
        0, kNumVars, 1,
        [&](std::int64_t vb, std::int64_t ve) {
          for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
            Real* sv = stage_.field(v);
            const Real* uv = state_.field(v);
            const Real* u0v = dense_u0_.field(v);
            const Real* k1v = dense_k1_.field(v);
            const Real* kv = kprev ? kprev->field(v) : nullptr;
            for (std::size_t d = 0; d < nd; ++d) {
              const FillCoef& f = tab[static_cast<std::size_t>(
                  static_cast<int>(dd[d]) - idx.dmin)];
              switch (f.mode) {
                case FillCoef::kCopy:
                  sv[d] = uv[d];
                  break;
                case FillCoef::kRkAxpy:
                  sv[d] = uv[d] + f.a * kv[d];
                  break;
                case FillCoef::kDense:
                  sv[d] = fd::dense_output_eval(f.dc, u0v[d], uv[d], k1v[d]);
                  break;
              }
            }
          }
        },
        "update");
    phases_.update.stop();

    pipeline_.compute(stage_, k_[j], runs, &phases_, &counts_);

    if (j == 0 && !idx.uniform()) {
      // Retain this depth's step-start state and first RHS for its dense
      // output, before the final update overwrites state_.
      phases_.update.start();
      exec::parallel_for(
          0, kNumVars, 1,
          [&](std::int64_t vb, std::int64_t ve) {
            for (int v = static_cast<int>(vb); v < static_cast<int>(ve);
                 ++v) {
              Real* u0v = dense_u0_.field(v);
              Real* k1v = dense_k1_.field(v);
              const Real* uv = state_.field(v);
              const Real* kv = k_[0].field(v);
              for (std::size_t d = 0; d < nd; ++d) {
                if (static_cast<int>(dd[d]) != depth) continue;
                u0v[d] = uv[d];
                k1v[d] = kv[d];
              }
            }
          },
          "update");
      phases_.update.stop();
    }
  }

  // u += dt/6 k1 + dt/3 k2 + dt/3 k3 + dt/6 k4, restricted to this depth's
  // DOFs, as four sequential per-element AXPYs — the same rounding order
  // as rk4_step's four par_axpy calls.
  const Real a16 = dt / 6.0;
  const Real a13 = dt / 3.0;
  phases_.update.start();
  exec::parallel_for(
      0, kNumVars, 1,
      [&](std::int64_t vb, std::int64_t ve) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* uv = state_.field(v);
          const Real* k0v = k_[0].field(v);
          const Real* k1v = k_[1].field(v);
          const Real* k2v = k_[2].field(v);
          const Real* k3v = k_[3].field(v);
          for (std::size_t d = 0; d < nd; ++d) {
            if (static_cast<int>(dd[d]) != depth) continue;
            uv[d] += a16 * k0v[d];
            uv[d] += a13 * k1v[d];
            uv[d] += a13 * k2v[d];
            uv[d] += a16 * k3v[d];
          }
        }
      },
      "update");
  phases_.update.stop();

  if (!idx.uniform()) {
    dense_t0_[static_cast<std::size_t>(slot)] = time_;
    dense_mode_[static_cast<std::size_t>(slot)] = kModeQuad;
  }
}

void BssnCtx::subcycle_cycle(Real fine_dt) {
  DGR_CHECK(fine_dt > 0);
  const mesh::SubcycleIndex& idx = subcycle_index();
  if (!idx.uniform() && !dense_ready_) subcycle_bootstrap();
  const int cycle = idx.cycle();
  for (int s = 0; s < cycle; ++s) {
    for (int d = idx.active_cutoff(s); d <= idx.dmax; ++d)
      subcycle_step_depth(d, fine_dt);
    time_ += fine_dt;
    ++steps_;
  }
}

}  // namespace dgr::solver
