/// \file octree_playground.cpp
/// \brief The AMR substrate on its own: build, balance, remesh and
/// partition linear octrees; inspect the mesh maps the solver runs on.
///
///   ./build/examples/octree_playground

#include <cstdio>
#include <memory>

#include "comm/partition.hpp"
#include "mesh/mesh.hpp"
#include "octree/refinement.hpp"

int main() {
  using namespace dgr;

  // Build: refine toward a point until level 5 — intentionally unbalanced.
  const oct::Coord c = oct::kDomainSize / 2 - 1;
  oct::Octree raw = oct::Octree::build(
      [&](const oct::TreeNode& t) {
        return t.contains_point(c, c, c) ? oct::Refine::kSplit
                                         : oct::Refine::kKeep;
      },
      5);
  std::printf("raw tree:      %4zu leaves, levels %d..%d, balanced: %s\n",
              raw.size(), raw.min_level(), raw.max_level(),
              raw.is_balanced() ? "yes" : "no");

  // 2:1 balance (the Algorithm 2 precondition).
  oct::Octree balanced = raw.balanced();
  std::printf("balanced tree: %4zu leaves, levels %d..%d, balanced: %s\n",
              balanced.size(), balanced.min_level(), balanced.max_level(),
              balanced.is_balanced() ? "yes" : "no");

  // Remesh: coarsen everything one notch (complete sibling octets only).
  std::vector<oct::RemeshFlag> flags(balanced.size(),
                                     oct::RemeshFlag::kCoarsen);
  oct::Octree coarser = balanced.remesh(flags);
  std::printf("after coarsen: %4zu leaves\n", coarser.size());

  // The grid layer: deduplicated points, hanging nodes, patch maps.
  oct::Domain dom{32.0};
  mesh::Mesh mesh(balanced, dom);
  std::printf(
      "mesh: %zu octants -> %zu unique points (%zu hanging), finest h = "
      "%.4f\n",
      mesh.num_octants(), mesh.num_dofs(), mesh.num_hanging(),
      mesh.finest_spacing());
  std::size_t adj = 0;
  for (OctIndex e = 0; e < OctIndex(mesh.num_octants()); ++e)
    adj += mesh.adjacency(e).size();
  std::printf("average O2P adjacency: %.1f neighbors per octant\n",
              double(adj) / mesh.num_octants());

  // Space-filling-curve partition across 4 simulated ranks with real
  // ghost-layer volumes.
  const auto part = comm::partition_mesh(mesh, 4);
  for (int r = 0; r < 4; ++r)
    std::printf(
        "rank %d: %4.0f octants, ghost layer %3zu octants, halo %6.1f KB, "
        "%d peer(s)\n",
        r, part.work[r], part.ghost_octants[r], part.send_bytes[r] / 1024.0,
        part.neighbor_ranks[r]);
  return 0;
}
