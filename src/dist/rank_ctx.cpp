#include "dist/rank_ctx.hpp"

#include <limits>

#include "common/error.hpp"

namespace dgr::dist {

using bssn::kNumVars;

std::vector<solver::OctRange> runs_of(const std::vector<OctIndex>& octs) {
  std::vector<solver::OctRange> runs;
  for (OctIndex e : octs) {
    if (!runs.empty() && runs.back().second == e)
      runs.back().second = e + 1;
    else
      runs.push_back({e, e + 1});
  }
  return runs;
}

RankCtx::RankCtx(int rank, std::shared_ptr<const mesh::Mesh> mesh,
                 const comm::RankPartition& part, comm::ExchangeMaps maps,
                 const solver::SolverConfig& scfg, bool alloc_stages)
    : rank_(rank),
      mesh_(std::move(mesh)),
      maps_(std::move(maps)),
      owned_begin_(part.owned_begin(rank)),
      owned_end_(part.owned_end(rank)),
      pipeline_(mesh_, scfg) {
  DGR_CHECK(maps_.rank == rank_);
  interior_runs_ = runs_of(maps_.interior);
  boundary_runs_ = runs_of(maps_.boundary);
  for (DofIndex d = 0; d < static_cast<DofIndex>(mesh_->num_dofs()); ++d)
    if (part.rank_of(mesh_->dof_owner(d)) == rank_) owned_dofs_.push_back(d);
  u_.resize(mesh_->num_dofs());
  if (alloc_stages) {
    for (auto& k : k_) k.resize(mesh_->num_dofs());
    stage_.resize(mesh_->num_dofs());
  }
  recv_buf_.resize(part.ranks);
}

double RankCtx::local_finest_spacing() const {
  double h = std::numeric_limits<double>::infinity();
  for (std::size_t e = owned_begin_; e < owned_end_; ++e)
    h = std::min(h, mesh_->octant_spacing(static_cast<OctIndex>(e)));
  return h;
}

void RankCtx::adopt_owned(const bssn::BssnState& global) {
  DGR_CHECK(global.num_dofs() == mesh_->num_dofs());
  u_.resize(mesh_->num_dofs());  // zero everything, then copy owned
  for (int v = 0; v < kNumVars; ++v) {
    Real* dst = u_.field(v);
    const Real* src = global.field(v);
    for (DofIndex d : owned_dofs_) dst[d] = src[d];
  }
}

SimComm::Payload RankCtx::pack_owned() const {
  SimComm::Payload out;
  out.reserve(owned_dofs_.size() * kNumVars);
  for (int v = 0; v < kNumVars; ++v) {
    const Real* f = u_.field(v);
    for (DofIndex d : owned_dofs_) out.push_back(f[d]);
  }
  return out;
}

void RankCtx::post_exchange_lists(
    SimComm& comm, const bssn::BssnState& u, int tag,
    const std::vector<std::vector<DofIndex>>& send_to,
    const std::vector<std::vector<DofIndex>>& recv_from) {
  DGR_CHECK_MSG(pending_.empty(), "exchange already in flight");
  // Post receives first (as a real code would), then pack and send.
  for (int p : maps_.peers)
    if (!recv_from[p].empty())
      pending_.push_back(comm.irecv(rank_, p, tag, &recv_buf_[p]));
  for (int p : maps_.peers) {
    const auto& dofs = send_to[p];
    if (dofs.empty()) continue;
    SimComm::Payload payload;
    payload.reserve(dofs.size() * kNumVars);
    for (int v = 0; v < kNumVars; ++v) {
      const Real* f = u.field(v);
      for (DofIndex d : dofs) payload.push_back(f[d]);
    }
    pending_.push_back(comm.isend(rank_, p, tag, std::move(payload)));
  }
}

void RankCtx::finish_exchange_lists(
    SimComm& comm, bssn::BssnState& u,
    const std::vector<std::vector<DofIndex>>& recv_from) {
  comm.wait_all(rank_, pending_);
  pending_.clear();
  for (int p : maps_.peers) {
    const auto& dofs = recv_from[p];
    if (dofs.empty()) continue;
    SimComm::Payload& buf = recv_buf_[p];
    DGR_CHECK(buf.size() == dofs.size() * kNumVars);
    std::size_t off = 0;
    for (int v = 0; v < kNumVars; ++v) {
      Real* f = u.field(v);
      for (DofIndex d : dofs) f[d] = buf[off++];
    }
    buf.clear();
  }
}

void RankCtx::post_exchange(SimComm& comm, const bssn::BssnState& u,
                            int tag) {
  post_exchange_lists(comm, u, tag, maps_.send_to, maps_.recv_from);
}

void RankCtx::finish_exchange(SimComm& comm, bssn::BssnState& u) {
  finish_exchange_lists(comm, u, maps_.recv_from);
}

void RankCtx::build_depth_maps(const mesh::SubcycleIndex& idx) {
  const int nslots = idx.depths();
  const int nranks = static_cast<int>(recv_buf_.size());
  depth_send_.assign(
      static_cast<std::size_t>(nslots),
      std::vector<std::vector<DofIndex>>(static_cast<std::size_t>(nranks)));
  depth_recv_.assign(
      static_cast<std::size_t>(nslots),
      std::vector<std::vector<DofIndex>>(static_cast<std::size_t>(nranks)));
  // A DOF's cadence is its owner-octant depth on BOTH sides of an
  // exchange (sender and receiver agree on dof_depth — it is mesh
  // geometry), so the filtered lists stay pairwise consistent: a peer's
  // depth-d send list is exactly this rank's depth-d recv list.
  for (int p : maps_.peers) {
    for (DofIndex d : maps_.send_to[p])
      depth_send_[static_cast<std::size_t>(
                      static_cast<int>(idx.dof_depth[d]) - idx.dmin)][p]
          .push_back(d);
    for (DofIndex d : maps_.recv_from[p])
      depth_recv_[static_cast<std::size_t>(
                      static_cast<int>(idx.dof_depth[d]) - idx.dmin)][p]
          .push_back(d);
  }
  depth_interior_.assign(static_cast<std::size_t>(nslots), 0);
  depth_boundary_.assign(static_cast<std::size_t>(nslots), 0);
  const auto& leaves = mesh_->tree().leaves();
  for (OctIndex e : maps_.interior)
    ++depth_interior_[static_cast<std::size_t>(
        leaves[static_cast<std::size_t>(e)].level - idx.dmin)];
  for (OctIndex e : maps_.boundary)
    ++depth_boundary_[static_cast<std::size_t>(
        leaves[static_cast<std::size_t>(e)].level - idx.dmin)];
}

void RankCtx::post_exchange_depth(SimComm& comm, const bssn::BssnState& u,
                                  int tag, int slot) {
  DGR_CHECK(slot >= 0 && slot < static_cast<int>(depth_send_.size()));
  post_exchange_lists(comm, u, tag, depth_send_[static_cast<std::size_t>(slot)],
                      depth_recv_[static_cast<std::size_t>(slot)]);
}

void RankCtx::finish_exchange_depth(SimComm& comm, bssn::BssnState& u,
                                    int slot) {
  finish_exchange_lists(comm, u,
                        depth_recv_[static_cast<std::size_t>(slot)]);
}

void RankCtx::compute_rhs_interior(const bssn::BssnState& u,
                                   bssn::BssnState& rhs) {
  pipeline_.compute(u, rhs, interior_runs_, nullptr, nullptr);
}

void RankCtx::compute_rhs_boundary(const bssn::BssnState& u,
                                   bssn::BssnState& rhs) {
  pipeline_.compute(u, rhs, boundary_runs_, nullptr, nullptr);
}

}  // namespace dgr::dist
