#include "gw/quadrature.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dgr::gw {

namespace {
constexpr Real kPi = 3.14159265358979323846;

void add_point(SphereQuadrature& q, Real x, Real y, Real z, Real w) {
  q.points.push_back({x, y, z});
  q.weights.push_back(w);
}

/// All sign/permutation images of (1,0,0): the 6 octahedron vertices.
void add_a1(SphereQuadrature& q, Real w) {
  for (int a = 0; a < 3; ++a)
    for (int s = -1; s <= 1; s += 2) {
      Real v[3] = {0, 0, 0};
      v[a] = s;
      add_point(q, v[0], v[1], v[2], w);
    }
}

/// The 12 edge midpoints (+-1, +-1, 0)/sqrt(2).
void add_a2(SphereQuadrature& q, Real w) {
  const Real c = 1.0 / std::sqrt(2.0);
  for (int a = 0; a < 3; ++a)
    for (int s1 = -1; s1 <= 1; s1 += 2)
      for (int s2 = -1; s2 <= 1; s2 += 2) {
        Real v[3];
        v[a] = 0;
        v[(a + 1) % 3] = s1 * c;
        v[(a + 2) % 3] = s2 * c;
        add_point(q, v[0], v[1], v[2], w);
      }
}

/// The 8 cube corners (+-1, +-1, +-1)/sqrt(3).
void add_a3(SphereQuadrature& q, Real w) {
  const Real c = 1.0 / std::sqrt(3.0);
  for (int s1 = -1; s1 <= 1; s1 += 2)
    for (int s2 = -1; s2 <= 1; s2 += 2)
      for (int s3 = -1; s3 <= 1; s3 += 2)
        add_point(q, s1 * c, s2 * c, s3 * c, w);
}

}  // namespace

Real SphereQuadrature::integrate(const std::vector<Real>& values) const {
  DGR_CHECK(values.size() == weights.size());
  Real s = 0;
  for (std::size_t i = 0; i < values.size(); ++i) s += weights[i] * values[i];
  return s;
}

SphereQuadrature lebedev_6() {
  SphereQuadrature q;
  add_a1(q, 4.0 * kPi / 6.0);
  return q;
}

SphereQuadrature lebedev_26() {
  SphereQuadrature q;
  // Classic order-7 rule: weights 1/21, 4/105, 9/280 (normalized to 1),
  // scaled by 4*pi to integrate plain functions.
  add_a1(q, 4.0 * kPi * (1.0 / 21.0));
  add_a2(q, 4.0 * kPi * (4.0 / 105.0));
  add_a3(q, 4.0 * kPi * (9.0 / 280.0));
  return q;
}

void gauss_legendre(int n, std::vector<Real>& nodes,
                    std::vector<Real>& weights) {
  DGR_CHECK(n >= 1);
  nodes.resize(n);
  weights.resize(n);
  for (int i = 0; i < n; ++i) {
    // Chebyshev-based initial guess, then Newton on P_n.
    Real x = std::cos(kPi * (i + 0.75) / (n + 0.5));
    Real pp = 0;
    for (int it = 0; it < 100; ++it) {
      Real p0 = 1, p1 = 0;
      for (int j = 0; j < n; ++j) {
        const Real p2 = p1;
        p1 = p0;
        p0 = ((2 * j + 1) * x * p1 - j * p2) / (j + 1);
      }
      pp = n * (x * p0 - p1) / (x * x - 1);
      const Real dx = p0 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes[i] = x;
    weights[i] = 2.0 / ((1 - x * x) * pp * pp);
  }
}

SphereQuadrature gauss_product(int n) {
  std::vector<Real> ct, wt;
  gauss_legendre(n, ct, wt);
  SphereQuadrature q;
  const int nphi = 2 * n;
  const Real wphi = 2.0 * kPi / nphi;
  for (int i = 0; i < n; ++i) {
    const Real cth = ct[i];
    const Real sth = std::sqrt(std::max(Real(0), 1 - cth * cth));
    for (int j = 0; j < nphi; ++j) {
      const Real phi = wphi * j;
      add_point(q, sth * std::cos(phi), sth * std::sin(phi), cth,
                wt[i] * wphi);
    }
  }
  return q;
}

}  // namespace dgr::gw
