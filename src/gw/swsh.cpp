#include "gw/swsh.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dgr::gw {

namespace {
constexpr Real kPi = 3.14159265358979323846;

Real factorial(int n) {
  Real f = 1;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}
}  // namespace

Real wigner_d(int l, int m, int mp, Real theta) {
  DGR_CHECK(l >= 0 && std::abs(m) <= l && std::abs(mp) <= l);
  const Real c = std::cos(theta / 2), s = std::sin(theta / 2);
  const Real pre = std::sqrt(factorial(l + m) * factorial(l - m) *
                             factorial(l + mp) * factorial(l - mp));
  // Sum over k with all factorial arguments non-negative.
  const int kmin = std::max(0, m - mp);
  const int kmax = std::min(l + m, l - mp);
  Real sum = 0;
  for (int k = kmin; k <= kmax; ++k) {
    const Real den = factorial(l + m - k) * factorial(k) *
                     factorial(mp - m + k) * factorial(l - mp - k);
    const int pc = 2 * l + m - mp - 2 * k;  // power of cos(theta/2)
    const int ps = mp - m + 2 * k;          // power of sin(theta/2)
    const Real sign = (k % 2 == 0) ? 1.0 : -1.0;
    sum += sign * std::pow(c, pc) * std::pow(s, ps) / den;
  }
  return pre * sum;
}

Complex swsh(int s, int l, int m, Real theta, Real phi) {
  if (l < std::abs(m) || l < std::abs(s)) return {0, 0};
  const Real sign = (s % 2 == 0) ? 1.0 : -1.0;
  const Real amp =
      sign * std::sqrt((2 * l + 1) / (4 * kPi)) * wigner_d(l, m, -s, theta);
  return amp * Complex{std::cos(m * phi), std::sin(m * phi)};
}

}  // namespace dgr::gw
