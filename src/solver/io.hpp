#pragma once
/// \file io.hpp
/// \brief Checkpoint/restart and visualization output. Production NR runs
/// last days to weeks (Table IV), so restartable state is part of the
/// system: a checkpoint stores the octree, domain, time/step counters and
/// all 24 zipped fields in a versioned binary format. VTK legacy output
/// (point cloud with per-DOF scalars) loads directly in ParaView/VisIt.

#include <string>

#include "bssn/state.hpp"
#include "mesh/mesh.hpp"

namespace dgr::solver {

struct Checkpoint {
  oct::Octree tree;
  oct::Domain domain;
  Real time = 0;
  std::uint64_t step = 0;
  bssn::BssnState state;
};

/// Write a checkpoint; throws dgr::Error on I/O failure.
void save_checkpoint(const std::string& path, const mesh::Mesh& mesh,
                     const bssn::BssnState& state, Real time,
                     std::uint64_t step);

/// Read a checkpoint written by save_checkpoint; validates magic, version,
/// and structural consistency (field sizes vs the rebuilt mesh).
Checkpoint load_checkpoint(const std::string& path);

/// Write selected variables of a zipped state as a legacy-VTK point cloud
/// (POINTS + POINT_DATA scalars), one scalar array per variable.
void write_vtk_points(const std::string& path, const mesh::Mesh& mesh,
                      const bssn::BssnState& state,
                      const std::vector<int>& vars);

}  // namespace dgr::solver
