/// \file bench_fig20_weak_scaling_frontera.cpp
/// \brief Regenerates Fig. 20: weak scaling of one RK4 step on Frontera
/// with the per-phase cost breakdown (octant-to-patch, RHS, patch-to-octant
/// / update, communication). Real per-phase op counts feed the Cascade
/// Lake per-core model; real SFC partitions supply load balance and halo
/// volumes up to the sizes a single core can build, and the same
/// surface-to-volume model extrapolates to the paper's 229,376-core run.

#include <cstdio>

#include "bench_common.hpp"
#include "comm/partition.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main() {
  using namespace dgr;
  bench::header("Fig. 20",
                "Frontera weak scaling: per-phase cost of one RK4 step");

  // Per-octant per-RHS-eval op counts by phase, measured once.
  auto m0 = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
  simgpu::GpuBssnSolver gpu(m0, simgpu::GpuSolverConfig{});
  bssn::BssnState s;
  bench::init_bbh_state(*m0, 1.0, 2.0, s);
  gpu.upload(s);
  gpu.rk4_step();
  const double n_evals = 4.0 * double(m0->num_octants());
  const perf::MachineModel node = perf::frontera_node();
  // Per-core slice of the node model (56 cores/node).
  perf::MachineModel core = node;
  core.tau_f *= 56;
  core.tau_m *= 56;
  const auto phase_cost = [&](const char* kernel) {
    return gpu.runtime().record(kernel).modeled_seconds(core) /
           n_evals;  // seconds per octant per evaluation, one core
  };
  const double c_unzip = phase_cost("octant-to-patch");
  const double c_rhs = phase_cost("bssn-rhs");
  const double c_zip = phase_cost("patch-to-octant") + phase_cost("axpy");

  // ~500K unknowns per core ~ 60 octants/core (343 pts x 24 vars).
  const double oct_per_core = 500e3 / (mesh::kOctPts * 24.0);
  const perf::NetworkModel net = perf::infiniband();

  std::printf(
      "  cores   | unknowns | o2p (s)  | RHS (s)  | zip+update | comm (s) | "
      "total/step\n");
  for (long cores : {56L, 448L, 3584L, 28672L, 114688L, 229376L}) {
    const double work_oct = oct_per_core;  // weak scaling: constant/core
    // Halo: ghost layer of an SFC part of ~60 octants is ~O(surface);
    // measured from a real partition at small scale, constant beyond.
    static double ghost_per_rank = -1;
    if (ghost_per_rank < 0) {
      const int ranks =
          std::max(2, int(m0->num_octants() / oct_per_core));
      const auto part = comm::partition_mesh(*m0, ranks);
      double g = 0;
      for (int r = 0; r < ranks; ++r) g += double(part.ghost_octants[r]);
      ghost_per_rank = g / ranks;
    }
    const std::uint64_t halo_bytes =
        std::uint64_t(ghost_per_rank) * mesh::kOctPts * 24 * sizeof(Real);
    // One RK4 step = 4 evaluations; comm once per evaluation.
    const double t_unzip = 4 * work_oct * c_unzip;
    const double t_rhs = 4 * work_oct * c_rhs;
    const double t_zip = 4 * work_oct * c_zip;
    const double t_comm = 4 * net.time(halo_bytes, 8);
    const double unknowns = double(cores) * 500e3;
    std::printf(
        "  %-7ld | %-7.2gB | %-8.3f | %-8.3f | %-10.3f | %-8.4f | %-8.3f\n",
        cores, unknowns / 1e9, t_unzip, t_rhs, t_zip, t_comm,
        t_unzip + t_rhs + t_zip + t_comm);
  }
  bench::note("weak scaling keeps per-core work constant; the halo volume per");
  bench::note("rank saturates (surface-to-volume), so the breakdown stays flat");
  bench::note("out to 229,376 cores / 118B unknowns, as in the paper.");
  return 0;
}
