#pragma once
/// \file production.hpp
/// \brief Production-run wall-clock estimator behind Table IV: builds the
/// actual paper-scale BBH octree (domain half-extent 400 M, finest levels
/// 13-16), derives step counts from the CFL condition, and converts
/// per-octant kernel costs (measured op counts fed through the A100 model)
/// into wall-clock hours.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "octree/refinement.hpp"

namespace dgr::perf {

struct ProductionConfig {
  Real q = 1;            ///< mass ratio
  int level_small = 13;  ///< finest level at the smaller hole
  int level_big = 13;    ///< finest level at the larger hole
  int gpus = 4;
  Real horizon = 748;    ///< evolution time T (units of M)
  Real separation = 8;   ///< initial coordinate separation
  Real domain_half = 400;
};

struct ProductionEstimate {
  ProductionConfig config;
  std::size_t octants = 0;
  std::uint64_t unknowns = 0;  ///< grid points x 24 variables (approx.)
  Real dx_min = 0;
  std::uint64_t timesteps = 0;  ///< T / (0.25 dx_min), RK4 CFL
  double seconds_per_step = 0;  ///< modeled, all GPUs
  double wall_hours = 0;
};

/// The paper's Table IV configurations (q = 1, 2, 4, 8).
std::vector<ProductionConfig> table4_configs();

/// Build the production octree for `cfg` and estimate the run. The caller
/// supplies the modeled per-octant per-RK-stage cost on one A100
/// (seconds), measured from the simulated GPU kernels, and a utilization
/// factor folding in regrid/extraction/I-O overhead and multi-GPU
/// efficiency (1 = ideal).
ProductionEstimate estimate_production(const ProductionConfig& cfg,
                                       double sec_per_octant_stage,
                                       double utilization = 1.0);

}  // namespace dgr::perf
