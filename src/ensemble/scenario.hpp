#pragma once
/// \file scenario.hpp
/// \brief The ensemble request vocabulary: a ScenarioConfig describes one
/// scaled-down BBH evolution over the Table IV parameter space (mass ratio,
/// spins, resolution, tolerance), canonically encoded into a deterministic
/// byte string whose content hash keys the waveform cache.
///
/// Canonicalization contract. encode() serializes every field in a fixed
/// order with doubles written as their IEEE-754 bit patterns (little-endian
/// std::bit_cast, never printf), so the encoding round-trips byte-for-byte:
/// decode(encode(cfg)) reproduces cfg exactly, including -0.0 and the last
/// ulp of any tolerance. Two configs hash equal iff every field is bitwise
/// equal — the property the cache's correctness rests on, tested across
/// thread counts and repeated runs in test_ensemble.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gw/extract.hpp"
#include "perf/production.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::ensemble {

using gw::Complex;

/// One ensemble scenario: the knobs a parameter-estimation consumer sweeps
/// (Table IV space: mass ratio, spins, resolution, tolerance), scaled to
/// runnable size. `steps` counts RK4 steps; the regrid band is pinned to
/// [base_level, finest_level] so dt stays constant and t_end = steps * dt.
struct ScenarioConfig {
  Real q = 1.0;                        ///< mass ratio m1/m2
  Real separation = 2.0;               ///< initial coordinate separation
  std::array<Real, 3> spin1{0, 0, 0};  ///< dimensionless spin, larger hole
  std::array<Real, 3> spin2{0, 0, 0};  ///< dimensionless spin, smaller hole
  Real domain_half = 16.0;             ///< domain half-extent
  int base_level = 2;                  ///< coarsest octree level
  int finest_level = 3;                ///< resolution knob (puncture cascade)
  Real eps = 2e-3;                     ///< regrid tolerance
  int steps = 4;                       ///< RK4 steps to evolve
  int regrid_every = 4;                ///< f_r of Algorithm 1
  int extract_every = 2;               ///< wave-extraction cadence
  Real extraction_radius = 5.0;        ///< Psi4 extraction sphere radius
  Real cfl = 0.25;                     ///< Courant factor
  Real ko_sigma = 0.3;                 ///< Kreiss-Oliger dissipation
  /// Depth-local sub-cycled timestepping (EvolutionConfig::subcycle). Off
  /// by default: existing encodings evolve bitwise-identically. Cadences
  /// must align to the cycle length (solver::evolve validates).
  bool subcycle = false;

  bool operator==(const ScenarioConfig&) const = default;
};

/// Canonical byte encoding (versioned, fixed field order, IEEE-754 bit
/// patterns for doubles). Stable across processes, thread counts and
/// architectures of the same endianness.
std::string encode(const ScenarioConfig& cfg);

/// Exact inverse of encode(); throws dgr::Error on truncated or
/// wrong-version input. decode(encode(c)) == c bitwise, always.
ScenarioConfig decode(const std::string& bytes);

/// FNV-1a 64-bit over a byte string — the content hash of the canonical
/// encoding. Collisions are guarded one level up: the cache compares the
/// full canonical bytes, the hash only names entries and disk files.
std::uint64_t fnv1a64(const std::string& bytes);

/// Cache key: canonical bytes plus their content hash (hex() names disk
/// spill files and appears in protocol responses).
struct ScenarioKey {
  std::string bytes;
  std::uint64_t hash = 0;

  static ScenarioKey of(const ScenarioConfig& cfg) {
    ScenarioKey k;
    k.bytes = encode(cfg);
    k.hash = fnv1a64(k.bytes);
    return k;
  }
  std::string hex() const;
  bool operator==(const ScenarioKey& o) const { return bytes == o.bytes; }
};

/// Scale a Table IV production row into a runnable scenario: q, horizon and
/// the level split survive (shifted into the scaled band), so every row of
/// perf::table4_configs() maps to a distinct canonical encoding.
ScenarioConfig scenario_from_table4(const perf::ProductionConfig& cfg);

/// Cheap octant-count estimate for the size-aware scheduling policy: the
/// uniform base grid plus a per-level cascade ring around each puncture.
/// A policy heuristic, not a mesh build — monotone in base/finest level is
/// all the driver needs.
std::size_t estimated_octants(const ScenarioConfig& cfg);

/// The memoized product: the Psi4 (2,2) mode series at the extraction
/// radius and the strain h = h+ - i hx double-integrated from it.
struct Waveform {
  int steps = 0;
  int regrids = 0;
  Real t_final = 0;
  gw::ModeTimeSeries psi4_22;
  std::vector<Complex> strain;  ///< empty when too few samples to detrend

  /// Serialized footprint, the unit of the cache's byte accounting.
  std::size_t byte_size() const;

  // gw::ModeTimeSeries has no operator==, so spell the comparison out.
  bool operator==(const Waveform& o) const {
    return steps == o.steps && regrids == o.regrids && t_final == o.t_final &&
           psi4_22.l == o.psi4_22.l && psi4_22.m == o.psi4_22.m &&
           psi4_22.radius == o.psi4_22.radius &&
           psi4_22.times == o.psi4_22.times &&
           psi4_22.values == o.psi4_22.values && strain == o.strain;
  }
};

/// Exact binary serialization (bit patterns, versioned header). The digest
/// of these bytes is what the serve protocol reports, so a cache hit and a
/// recomputation agree iff the waveforms are bitwise identical.
std::string serialize(const Waveform& wf);
Waveform deserialize(const std::string& bytes);

/// Run the scenario synchronously on the calling thread: build the
/// puncture mesh and Bowen-York initial data, evolve `steps` RK4 steps
/// with regridding pinned to [base_level, finest_level], extract Psi4
/// (2,2), and integrate the strain. Deterministic: bitwise-identical output
/// at any thread count and on any execution lane (the src/exec contract).
Waveform run_scenario(const ScenarioConfig& cfg);

}  // namespace dgr::ensemble
