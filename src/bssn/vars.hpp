#pragma once
/// \file vars.hpp
/// \brief The 24 evolved BSSN variables (paper §III-A, Eqs. (1)–(8)):
/// lapse alpha, conformal factor chi, trace K, conformal connection Gt^i,
/// shift beta^i, Gamma-driver auxiliary B^i, conformal metric gt_ij and
/// trace-free conformal extrinsic curvature At_ij.

#include <array>
#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace dgr::bssn {

inline constexpr int kNumVars = 24;

enum Var : int {
  kAlpha = 0,
  kChi = 1,
  kK = 2,
  kGt0 = 3,  ///< Gamma-tilde^x
  kGt1 = 4,
  kGt2 = 5,
  kBeta0 = 6,
  kBeta1 = 7,
  kBeta2 = 8,
  kB0 = 9,
  kB1 = 10,
  kB2 = 11,
  kGtxx = 12,  ///< conformal metric, symmetric storage xx,xy,xz,yy,yz,zz
  kGtxy = 13,
  kGtxz = 14,
  kGtyy = 15,
  kGtyz = 16,
  kGtzz = 17,
  kAtxx = 18,  ///< trace-free conformal extrinsic curvature
  kAtxy = 19,
  kAtxz = 20,
  kAtyy = 21,
  kAtyz = 22,
  kAtzz = 23,
};

/// Symmetric 3x3 storage index: (0,0)->0 (0,1)->1 (0,2)->2 (1,1)->3
/// (1,2)->4 (2,2)->5. Table lookup keeps the hot RHS loops branch-free.
inline constexpr int kSymTable[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
constexpr int sym_idx(int i, int j) { return kSymTable[i][j]; }

/// Variables whose second derivatives enter the RHS (paper §IV-B: alpha,
/// beta^i, chi, gt_ij — 11 variables, 66 Hessian components).
inline constexpr std::array<int, 11> kSecondDerivVars = {
    kAlpha, kBeta0, kBeta1, kBeta2, kChi, kGtxx,
    kGtxy,  kGtxz,  kGtyy,  kGtyz,  kGtzz};

/// Names for diagnostics and I/O.
std::string_view var_name(int v);

/// Asymptotic (Minkowski) value of each variable, used by the Sommerfeld
/// boundary condition and by robust-stability tests.
constexpr Real var_asymptotic(int v) {
  switch (v) {
    case kAlpha:
    case kChi:
    case kGtxx:
    case kGtyy:
    case kGtzz:
      return 1.0;
    default:
      return 0.0;
  }
}

/// Characteristic wave speed factor for the Sommerfeld condition (in units
/// of the coordinate light speed; gauge variables propagate at sqrt(2) in
/// 1+log slicing, which production codes approximate with 1..sqrt(2)).
constexpr Real var_wave_speed(int v) {
  switch (v) {
    case kAlpha:
    case kK:
      return 1.4142135623730951;  // sqrt(2): 1+log gauge speed
    default:
      return 1.0;
  }
}

}  // namespace dgr::bssn
