/// \file test_perfdiff.cpp
/// \brief Tests for the perf-trajectory diff engine (obs/perfdiff): row
/// flattening of dgr-bench-v1 reports, worse-direction inference, gating
/// semantics (threshold strictness, base==0, missing metrics, gate regex
/// narrowing), directory pairing, and the dgr_perfdiff CLI exit codes.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/perfdiff.hpp"

using namespace dgr::obs::perfdiff;
namespace fs = std::filesystem;

namespace {

/// A minimal dgr-bench-v1 report with one of each metric kind.
std::string report(double pair_ours, double latency_p99, double throughput,
                   double errors, double threads) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"schema\":\"dgr-bench-v1\",\"bench\":\"t\","
      "\"pairs\":[{\"name\":\"state_max_abs_diff\",\"paper\":0,"
      "\"ours\":%g}],"
      "\"metrics\":{\"counters\":{},"
      "\"gauges\":{\"bench.throughput_rps\":%g,\"bench.errors\":%g,"
      "\"bench.threads\":%g},"
      "\"summaries\":{\"ensemble.queue_us\":{\"count\":4,\"mean\":12.5}},"
      "\"histograms\":{\"serve.latency_us.mem\":{\"count\":9,\"min\":1,"
      "\"max\":99,\"p50\":10,\"p90\":50,\"p99\":%g,\"p999\":99}}}}",
      pair_ours, throughput, errors, threads, latency_p99);
  return buf;
}

const Row* find_row(const Report& rep, const std::string& key) {
  for (const Row& r : rep.rows)
    if (r.key == key) return &r;
  return nullptr;
}

/// Fresh temp dir under gtest's TempDir, unique per tag.
std::string temp_dir(const char* tag) {
  const std::string d = testing::TempDir() + "dgr_perfdiff_" + tag + "_" +
                        std::to_string(::getpid());
  fs::remove_all(d);
  fs::create_directories(d);
  return d;
}

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

int cli(std::vector<std::string> args) {
  std::vector<char*> argv;
  std::string argv0 = "dgr_perfdiff";
  argv.push_back(argv0.data());
  for (std::string& a : args) argv.push_back(a.data());
  return run_cli(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

// -------------------------------------------------- direction inference

TEST(PerfDiff, InfersWorseDirectionFromMetricName) {
  EXPECT_EQ(infer_direction("hist:serve.latency_us.mem.p99"),
            Direction::kLowerBetter);
  EXPECT_EQ(infer_direction("summary:ensemble.queue_us.mean"),
            Direction::kLowerBetter);
  EXPECT_EQ(infer_direction("gauge:bench.errors"), Direction::kLowerBetter);
  EXPECT_EQ(infer_direction("pair:state_max_abs_diff"),
            Direction::kLowerBetter);
  EXPECT_EQ(infer_direction("gauge:bench.throughput_rps"),
            Direction::kHigherBetter);
  EXPECT_EQ(infer_direction("pair:gpu_eff_4"), Direction::kHigherBetter);
  EXPECT_EQ(infer_direction("gauge:bench.answered"),
            Direction::kHigherBetter);
  // No direction tokens → two-sided; both directions' tokens → two-sided.
  EXPECT_EQ(infer_direction("gauge:bench.threads"), Direction::kTwoSided);
  EXPECT_EQ(infer_direction("gauge:bench.hit_rate_us"),
            Direction::kTwoSided);
}

// ------------------------------------------------------- diff semantics

TEST(PerfDiff, IdenticalReportsAreClean) {
  Report rep;
  const std::string r = report(0.0, 80, 500, 0, 4);
  diff_reports("t", r, r, Options{}, rep);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.benches_compared, 1);
  EXPECT_EQ(rep.regressions(), 0u);
  // One row per flattened metric, all gated under the default ".*".
  ASSERT_FALSE(rep.rows.empty());
  for (const Row& row : rep.rows) {
    EXPECT_TRUE(row.gated) << row.key;
    EXPECT_EQ(row.delta_pct, 0.0) << row.key;
  }
}

TEST(PerfDiff, WorsenedLatencyBeyondThresholdRegresses) {
  Report rep;
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 120, 500, 0, 4),
               Options{}, rep);
  EXPECT_FALSE(rep.ok());
  const Row* row = find_row(rep, "hist:serve.latency_us.mem.p99");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->regression);
  EXPECT_NEAR(row->delta_pct, 50.0, 1e-9);
}

TEST(PerfDiff, ImprovedLatencyAndThroughputDoNotRegress) {
  Report rep;
  // Latency halves, throughput doubles: both large drifts, both in the
  // better direction.
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 40, 1000, 0, 4),
               Options{}, rep);
  EXPECT_TRUE(rep.ok());
}

TEST(PerfDiff, ThroughputDropRegresses) {
  Report rep;
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 80, 300, 0, 4),
               Options{}, rep);
  const Row* row = find_row(rep, "gauge:bench.throughput_rps");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->regression);
  EXPECT_EQ(row->dir, Direction::kHigherBetter);
}

TEST(PerfDiff, TwoSidedMetricRegressesOnAnyDriftPastThreshold) {
  Report rep;
  // bench.threads has no direction tokens: 4 -> 2 is a -50% drift.
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 80, 500, 0, 2),
               Options{}, rep);
  const Row* row = find_row(rep, "gauge:bench.threads");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->dir, Direction::kTwoSided);
  EXPECT_TRUE(row->regression);
}

TEST(PerfDiff, ThresholdIsAStrictBound) {
  Options opt;
  opt.threshold_pct = 25.0;
  Report at;
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 100, 500, 0, 4),
               opt, at);  // exactly +25%
  const Row* row = find_row(at, "hist:serve.latency_us.mem.p99");
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->regression) << "drift == threshold must pass";

  Report past;
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 101, 500, 0, 4),
               opt, past);
  EXPECT_TRUE(find_row(past, "hist:serve.latency_us.mem.p99")->regression);
}

TEST(PerfDiff, ZeroBaselineRegressesOnAnyWorseNonzero) {
  Report rep;
  // errors 0 -> 3: no percentage can express this; it must still fail.
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 80, 500, 3, 4),
               Options{}, rep);
  const Row* row = find_row(rep, "gauge:bench.errors");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->regression);

  // ...but a zero that stays zero is clean.
  Report clean;
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 80, 500, 0, 4),
               Options{}, clean);
  EXPECT_FALSE(find_row(clean, "gauge:bench.errors")->regression);
}

TEST(PerfDiff, MissingGatedMetricRegresses) {
  Report rep;
  // Current report lost the histogram entirely (e.g. instrumentation
  // removed): every gated hist row goes missing -> regression.
  std::string cur = report(0, 80, 500, 0, 4);
  const auto pos = cur.find("\"histograms\"");
  ASSERT_NE(pos, std::string::npos);
  cur = cur.substr(0, pos) + "\"histograms\":{}}}";
  diff_reports("t", report(0, 80, 500, 0, 4), cur, Options{}, rep);
  const Row* row = find_row(rep, "hist:serve.latency_us.mem.p99");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->missing);
  EXPECT_TRUE(row->regression);
}

TEST(PerfDiff, GateRegexNarrowsWhatCanRegress) {
  Options opt;
  opt.gate = "gauge:bench\\.(errors|throughput_rps)$";
  Report rep;
  // Latency +50% would regress under the default gate, but only the two
  // gauges are gated here — and they are unchanged.
  diff_reports("t", report(0, 80, 500, 0, 4), report(0, 120, 500, 0, 4),
               opt, rep);
  EXPECT_TRUE(rep.ok());
  const Row* lat = find_row(rep, "hist:serve.latency_us.mem.p99");
  ASSERT_NE(lat, nullptr);
  EXPECT_FALSE(lat->gated);
  EXPECT_FALSE(lat->regression);
  EXPECT_TRUE(find_row(rep, "gauge:bench.errors")->gated);
}

TEST(PerfDiff, MalformedJsonIsAProblemNotACrash) {
  Report rep;
  diff_reports("t", "{not json", report(0, 80, 500, 0, 4), Options{}, rep);
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.problems.size(), 1u);
  EXPECT_NE(rep.problems[0].find("unparsable"), std::string::npos);
}

// ------------------------------------------------------ directory diffs

TEST(PerfDiff, DiffDirsPairsBenchesByNameAndFlagsMissingOnes) {
  const std::string base = temp_dir("dirs_base");
  const std::string cur = temp_dir("dirs_cur");
  write_file(base + "/BENCH_alpha.json", report(0, 80, 500, 0, 4));
  write_file(base + "/BENCH_beta.json", report(0, 10, 100, 0, 4));
  // Trace sidecars must not be mistaken for reports.
  write_file(base + "/BENCH_alpha.trace.json", "{\"traceEvents\":[]}");
  write_file(cur + "/BENCH_alpha.json", report(0, 80, 500, 0, 4));
  // beta has no current report.

  const Report rep = diff_dirs(base, cur, Options{});
  EXPECT_EQ(rep.benches_compared, 1);
  ASSERT_EQ(rep.problems.size(), 1u);
  EXPECT_NE(rep.problems[0].find("beta"), std::string::npos);
  EXPECT_FALSE(rep.ok());
  fs::remove_all(base);
  fs::remove_all(cur);
}

TEST(PerfDiff, EmptyBaselineDirectoryIsAProblem) {
  const std::string base = temp_dir("empty_base");
  const std::string cur = temp_dir("empty_cur");
  const Report rep = diff_dirs(base, cur, Options{});
  EXPECT_FALSE(rep.ok());
  ASSERT_FALSE(rep.problems.empty());
  EXPECT_NE(rep.problems[0].find("no BENCH_"), std::string::npos);
  fs::remove_all(base);
  fs::remove_all(cur);
}

// ------------------------------------------------------------------ CLI

TEST(PerfDiff, CliExitCodesMatchContract) {
  const std::string base = temp_dir("cli_base");
  const std::string cur = temp_dir("cli_cur");
  write_file(base + "/BENCH_t.json", report(0, 80, 500, 0, 4));
  write_file(cur + "/BENCH_t.json", report(0, 80, 500, 0, 4));
  EXPECT_EQ(cli({base, cur}), 0);

  // Injected synthetic regression: p99 latency +50%.
  write_file(cur + "/BENCH_t.json", report(0, 120, 500, 0, 4));
  EXPECT_EQ(cli({base, cur}), 1);
  // ...which a gate that excludes latency waves through.
  EXPECT_EQ(cli({base, cur, "--gate", "gauge:bench\\.errors"}), 0);
  // ...as does a threshold above the drift.
  EXPECT_EQ(cli({base, cur, "--threshold", "60"}), 0);

  // Usage and option errors exit 2.
  EXPECT_EQ(cli({base}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "abc"}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "-5"}), 2);
  // Trailing garbage and non-finite values must be rejected too: strtod
  // happily parses "5%" as 5 and "nan"/"inf" as non-finite thresholds that
  // would silently disable (or trip) every gate comparison.
  EXPECT_EQ(cli({base, cur, "--threshold", "5%"}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "60 "}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", ""}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "nan"}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "inf"}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold", "-inf"}), 2);
  EXPECT_EQ(cli({base, cur, "--threshold"}), 2);
  EXPECT_EQ(cli({base, cur, "--gate", "(unclosed"}), 2);
  EXPECT_EQ(cli({base, cur, "--bogus"}), 2);
  EXPECT_EQ(cli({"--help"}), 0);
  fs::remove_all(base);
  fs::remove_all(cur);
}
