# Empty dependencies file for bench_fig11_rhs_variants.
# This may be replaced when dependencies are built.
