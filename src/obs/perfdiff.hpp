#pragma once
/// \file perfdiff.hpp
/// \brief The perf-trajectory diff engine behind tools/dgr_perfdiff: load
/// two directories of BENCH_*.json reports (bench_common::Reporter's
/// dgr-bench-v1 schema), pair them by bench name, and compare every
/// paper-value pair, counter, gauge, summary, and histogram quantile as a
/// flat list of keyed rows. Rows whose key matches the gate regex are
/// REGRESSION-GATED: a change past the threshold in the metric's "worse"
/// direction fails the run. Everything else is report-only, so the full
/// trajectory stays visible while only machine-independent metrics (exact
/// request counts, hit rates, bitwise-identity diffs, virtual-clock times,
/// modeled efficiencies) gate CI.
///
/// Row keys are "<kind>:<name>" with kinds pair / counter / gauge /
/// summary / hist, e.g.
///   pair:state_max_abs_diff        (the "ours" value of a Reporter pair)
///   gauge:bench.hit_rate
///   summary:ensemble.queue_us.mean
///   hist:serve.latency_us.mem.p99
///
/// Worse-direction inference from the metric name: latency/time/error-ish
/// names (…_us, …seconds, latency, err, mismatch, shed, lost, spill,
/// queue, bytes, diff) regress upward; rate/throughput/efficiency-ish
/// names (rate, throughput, rps, eff, speedup, gflops, answered, drained,
/// recoveries) regress downward; anything else is two-sided — any drift
/// past the threshold regresses. A gated metric with base 0 regresses on
/// ANY worse nonzero (you cannot express "0 errors grew by 10%").

#include <cstddef>
#include <string>
#include <vector>

namespace dgr::obs::perfdiff {

struct Options {
  double threshold_pct = 10.0;  ///< max tolerated worse-direction drift
  std::string gate = ".*";      ///< ECMAScript regex over row keys
};

enum class Direction { kLowerBetter, kHigherBetter, kTwoSided };

struct Row {
  std::string bench;  ///< "serve_load"
  std::string key;    ///< "gauge:bench.hit_rate"
  double base = 0;
  double cur = 0;
  double delta_pct = 0;  ///< signed, relative to |base|; 0 when base==cur
  Direction dir = Direction::kTwoSided;
  bool gated = false;
  bool regression = false;
  bool missing = false;  ///< present in base, absent in current
};

struct Report {
  std::vector<Row> rows;
  /// Structural problems (unreadable report, bench present in the
  /// baseline but absent from the current run). Each one fails the diff.
  std::vector<std::string> problems;
  int benches_compared = 0;

  std::size_t regressions() const;
  bool ok() const { return regressions() == 0 && problems.empty(); }
  /// Human-readable table; `all_rows` includes unchanged/ungated rows.
  std::string text(bool all_rows = false) const;
};

/// Infer the worse direction from a row key (see file comment).
Direction infer_direction(const std::string& key);

/// Diff one parsed pair of reports (JSON text of the same bench).
/// Malformed JSON is reported via `problems`.
void diff_reports(const std::string& bench, const std::string& base_json,
                  const std::string& cur_json, const Options& opt,
                  Report& report);

/// Diff every BENCH_*.json in `base_dir` against `cur_dir`.
Report diff_dirs(const std::string& base_dir, const std::string& cur_dir,
                 const Options& opt);

/// The dgr_perfdiff CLI: BASE_DIR CUR_DIR [--threshold PCT] [--gate RE]
/// [--all]. Returns the process exit code: 0 clean, 1 regressions or
/// structural problems, 2 usage/IO errors. Prints to stdout/stderr.
int run_cli(int argc, char** argv);

}  // namespace dgr::obs::perfdiff
