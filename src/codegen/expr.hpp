#pragma once
/// \file expr.hpp
/// \brief Symbolic expression DAG for the BSSN algebraic stage — the
/// from-scratch equivalent of the paper's SymPyGR pipeline (§IV-B).
/// Hash-consing performs common-subexpression elimination at construction
/// time; the `Sym` scalar type plugs into `bssn_algebra_point<S>` so the
/// emitted DAG is guaranteed to compute the same algebra as the compiled
/// production kernel.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dgr::codegen {

enum class Op : std::uint8_t { kInput, kConst, kAdd, kSub, kMul, kDiv, kNeg };

struct Node {
  Op op = Op::kConst;
  std::int32_t a = -1, b = -1;  ///< operand node ids
  double value = 0;             ///< kConst payload
  std::int32_t input_id = -1;   ///< kInput payload
};

/// An append-only DAG with hash-consing (structural CSE) and local constant
/// folding / identity simplification.
class Graph {
 public:
  /// Register a named input; returns its node id.
  std::int32_t add_input(std::string name);
  std::int32_t add_const(double v);
  std::int32_t add_unary(Op op, std::int32_t a);
  std::int32_t add_binary(Op op, std::int32_t a, std::int32_t b);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(std::int32_t id) const { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }
  int num_inputs() const { return static_cast<int>(input_names_.size()); }
  const std::string& input_name(int input_id) const {
    return input_names_[input_id];
  }

  /// Number of operand edges over the whole DAG (Fig. 10 statistic).
  std::size_t num_edges() const;

  /// Count of nodes reachable from the given roots (the live DAG size).
  std::size_t reachable_size(const std::vector<std::int32_t>& roots) const;

  /// Evaluate nodes directly (reference evaluator for tests): `inputs` is
  /// indexed by input_id.
  double evaluate(std::int32_t root, const std::vector<double>& inputs) const;

 private:
  std::int32_t push(Node n);
  bool is_const(std::int32_t id, double v) const {
    return nodes_[id].op == Op::kConst && nodes_[id].value == v;
  }

  std::vector<Node> nodes_;
  std::vector<std::string> input_names_;
  std::unordered_map<std::uint64_t, std::int32_t> cse_;
  std::unordered_map<std::uint64_t, std::int32_t> const_pool_;
};

/// Value-semantic symbolic scalar: drop-in for `Real` in
/// bssn_algebra_point<S>. Supports mixed arithmetic with double.
class Sym {
 public:
  Sym() = default;
  Sym(Graph* g, std::int32_t id) : g_(g), id_(id) {}
  /// Implicit lift of a literal requires a graph: provided via binary ops
  /// with an existing Sym.
  std::int32_t id() const { return id_; }
  Graph* graph() const { return g_; }

  friend Sym operator+(const Sym& x, const Sym& y) {
    return {x.g_, x.g_->add_binary(Op::kAdd, x.id_, y.id_)};
  }
  friend Sym operator-(const Sym& x, const Sym& y) {
    return {x.g_, x.g_->add_binary(Op::kSub, x.id_, y.id_)};
  }
  friend Sym operator*(const Sym& x, const Sym& y) {
    return {x.g_, x.g_->add_binary(Op::kMul, x.id_, y.id_)};
  }
  friend Sym operator/(const Sym& x, const Sym& y) {
    return {x.g_, x.g_->add_binary(Op::kDiv, x.id_, y.id_)};
  }
  friend Sym operator-(const Sym& x) {
    return {x.g_, x.g_->add_unary(Op::kNeg, x.id_)};
  }

  friend Sym operator+(double c, const Sym& x) { return lift(c, x) + x; }
  friend Sym operator+(const Sym& x, double c) { return x + lift(c, x); }
  friend Sym operator-(double c, const Sym& x) { return lift(c, x) - x; }
  friend Sym operator-(const Sym& x, double c) { return x - lift(c, x); }
  friend Sym operator*(double c, const Sym& x) { return lift(c, x) * x; }
  friend Sym operator*(const Sym& x, double c) { return x * lift(c, x); }
  friend Sym operator/(double c, const Sym& x) { return lift(c, x) / x; }
  friend Sym operator/(const Sym& x, double c) { return x / lift(c, x); }

 private:
  static Sym lift(double c, const Sym& like) {
    return {like.g_, like.g_->add_const(c)};
  }
  Graph* g_ = nullptr;
  std::int32_t id_ = -1;
};

}  // namespace dgr::codegen
