#pragma once
/// \file simd.hpp
/// \brief Thin explicit-SIMD wrapper `dgr::simd<double, W>` for the fused
/// RHS kernels (ROADMAP item 2): a fixed-width pack of doubles with
/// elementwise load/store/arithmetic whose per-lane results are bitwise
/// identical to the scalar expressions they replace.
///
/// Three instantiations coexist:
///  - `simd<double, 1>`  — the scalar reference, always available;
///  - `simd<double, 4>`  — AVX2 (`__m256d`) when the build enables it
///    (`-DDGR_ENABLE_AVX2=ON` -> global `-mavx2` + `DGR_SIMD_AVX2`),
///    otherwise the generic array fallback below;
///  - `simd<double, W>`  — a portable array-of-W fallback whose per-lane
///    loops the compiler auto-vectorizes (asserted by tools/vec_probe.cpp).
///
/// ODR/ABI safety: everything here is a header-only template, and the AVX2
/// specialization is compiled in (or out) uniformly for the whole build via
/// the global `DGR_SIMD_AVX2` definition — never by mixing `-march` flags
/// between translation units. Backend choice at run time (`DGR_SIMD=avx2|
/// scalar`) only selects which already-instantiated width to dispatch to.
///
/// Determinism contract: add/sub/mul/div/neg/min/max/select are lanewise
/// identical to their scalar counterparts; `fma` is a single-rounding fused
/// multiply-add in every backend (`std::fma` == `vfmadd`), so results never
/// depend on the width. The build adds `-ffp-contract=off` so the compiler
/// cannot contract scalar a*b+c into an FMA behind our back.

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/types.hpp"

#if defined(DGR_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define DGR_SIMD_HAS_AVX2 1
#else
#define DGR_SIMD_HAS_AVX2 0
#endif

namespace dgr {

template <class T, int W>
struct simd;

/// Portable array backend: per-lane loops, written stride-1 so the
/// auto-vectorizer turns them into vector code at any width.
template <int W>
struct simd<double, W> {
  static_assert(W >= 1, "simd width must be positive");
  double v[W];

  static constexpr int width = W;

  static simd load(const double* p) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static simd load_aligned(const double* p) { return load(p); }
  /// First n lanes from p, remaining lanes zero (tail handling).
  static simd load_partial(const double* p, int n) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = i < n ? p[i] : 0.0;
    return r;
  }
  static simd broadcast(double c) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = c;
    return r;
  }
  static simd zero() { return broadcast(0.0); }

  void store(double* p) const {
    for (int i = 0; i < W; ++i) p[i] = v[i];
  }
  void store_aligned(double* p) const { store(p); }
  void store_partial(double* p, int n) const {
    for (int i = 0; i < W && i < n; ++i) p[i] = v[i];
  }
  double operator[](int i) const { return v[i]; }

  friend simd operator+(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend simd operator-(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend simd operator*(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  friend simd operator/(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  friend simd operator-(const simd& a) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = -a.v[i];
    return r;
  }
  /// Single-rounding fused multiply-add: a*b + c (std::fma is correctly
  /// rounded, bitwise-equal to the hardware vfmadd lanes).
  friend simd fma(const simd& a, const simd& b, const simd& c) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
    return r;
  }
  /// maxpd semantics: a > b ? a : b (returns b on NaN or equal operands).
  friend simd max(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  /// minpd semantics: a < b ? a : b (returns b on NaN or equal operands).
  friend simd min(const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  /// Lanewise c >= 0 ? a : b (upwind stencil side selection).
  friend simd select_ge_zero(const simd& c, const simd& a, const simd& b) {
    simd r;
    for (int i = 0; i < W; ++i) r.v[i] = c.v[i] >= 0.0 ? a.v[i] : b.v[i];
    return r;
  }
};

/// Scalar specialization: the reference every wider width must match
/// bitwise, lane for lane.
template <>
struct simd<double, 1> {
  double v;

  static constexpr int width = 1;

  static simd load(const double* p) { return {*p}; }
  static simd load_aligned(const double* p) { return {*p}; }
  static simd load_partial(const double* p, int n) {
    return {n > 0 ? *p : 0.0};
  }
  static simd broadcast(double c) { return {c}; }
  static simd zero() { return {0.0}; }

  void store(double* p) const { *p = v; }
  void store_aligned(double* p) const { *p = v; }
  void store_partial(double* p, int n) const {
    if (n > 0) *p = v;
  }
  double operator[](int) const { return v; }

  friend simd operator+(const simd& a, const simd& b) { return {a.v + b.v}; }
  friend simd operator-(const simd& a, const simd& b) { return {a.v - b.v}; }
  friend simd operator*(const simd& a, const simd& b) { return {a.v * b.v}; }
  friend simd operator/(const simd& a, const simd& b) { return {a.v / b.v}; }
  friend simd operator-(const simd& a) { return {-a.v}; }
  friend simd fma(const simd& a, const simd& b, const simd& c) {
    return {std::fma(a.v, b.v, c.v)};
  }
  friend simd max(const simd& a, const simd& b) {
    return {a.v > b.v ? a.v : b.v};
  }
  friend simd min(const simd& a, const simd& b) {
    return {a.v < b.v ? a.v : b.v};
  }
  friend simd select_ge_zero(const simd& c, const simd& a, const simd& b) {
    return {c.v >= 0.0 ? a.v : b.v};
  }
};

#if DGR_SIMD_HAS_AVX2
/// AVX2 backend: one 256-bit register, four doubles.
template <>
struct simd<double, 4> {
  __m256d v;

  static constexpr int width = 4;

  static simd load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static simd load_aligned(const double* p) { return {_mm256_load_pd(p)}; }
  static simd load_partial(const double* p, int n) {
    alignas(32) double tmp[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4 && i < n; ++i) tmp[i] = p[i];
    return {_mm256_load_pd(tmp)};
  }
  static simd broadcast(double c) { return {_mm256_set1_pd(c)}; }
  static simd zero() { return {_mm256_setzero_pd()}; }

  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void store_aligned(double* p) const { _mm256_store_pd(p, v); }
  void store_partial(double* p, int n) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    for (int i = 0; i < 4 && i < n; ++i) p[i] = tmp[i];
  }
  double operator[](int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  friend simd operator+(const simd& a, const simd& b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend simd operator-(const simd& a, const simd& b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend simd operator*(const simd& a, const simd& b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend simd operator/(const simd& a, const simd& b) {
    return {_mm256_div_pd(a.v, b.v)};
  }
  friend simd operator-(const simd& a) {
    return {_mm256_sub_pd(_mm256_setzero_pd(), a.v)};
  }
  friend simd fma(const simd& a, const simd& b, const simd& c) {
#if defined(__FMA__)
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
    // Lanewise std::fma keeps the single-rounding contract without -mfma.
    alignas(32) double xa[4], xb[4], xc[4];
    _mm256_store_pd(xa, a.v);
    _mm256_store_pd(xb, b.v);
    _mm256_store_pd(xc, c.v);
    for (int i = 0; i < 4; ++i) xa[i] = std::fma(xa[i], xb[i], xc[i]);
    return {_mm256_load_pd(xa)};
#endif
  }
  friend simd max(const simd& a, const simd& b) {
    return {_mm256_max_pd(a.v, b.v)};
  }
  friend simd min(const simd& a, const simd& b) {
    return {_mm256_min_pd(a.v, b.v)};
  }
  friend simd select_ge_zero(const simd& c, const simd& a, const simd& b) {
    const __m256d m = _mm256_cmp_pd(c.v, _mm256_setzero_pd(), _CMP_GE_OQ);
    return {_mm256_blendv_pd(b.v, a.v, m)};
  }
};
#endif  // DGR_SIMD_HAS_AVX2

/// Widest backend the build compiled real vector instructions for.
inline constexpr int kSimdNativeWidth = DGR_SIMD_HAS_AVX2 ? 4 : 1;

/// Name of the backend a given width dispatches to.
inline const char* simd_backend_name(int width) {
  if (width <= 1) return "scalar";
#if DGR_SIMD_HAS_AVX2
  if (width == 4) return "avx2";
#endif
  return "generic";
}

/// Compiler flags the SIMD-bearing TUs were built with (set by CMake; the
/// bench telemetry records it as `march` so hosts are comparable).
inline const char* simd_march() {
#ifdef DGR_MARCH
  return DGR_MARCH;
#else
  return "unknown";
#endif
}

/// Active dispatch width: `DGR_SIMD=scalar` forces 1, `DGR_SIMD=avx2`
/// forces 4 (the generic 4-wide fallback when AVX2 was not compiled in),
/// default is the native width. Any other value throws dgr::Error at first
/// use — a typo'd DGR_SIMD must not silently run at the native width.
/// Read once and cached — set the environment variable before the first
/// kernel runs.
inline int simd_active_width() {
  static const int w = [] {
    const char* e = std::getenv("DGR_SIMD");
    if (e == nullptr || *e == '\0') return kSimdNativeWidth;
    if (std::strcmp(e, "scalar") == 0) return 1;
    if (std::strcmp(e, "avx2") == 0) return 4;
    DGR_CHECK_MSG(false, "DGR_SIMD must be one of scalar|avx2, got \"" << e
                                                                      << "\"");
    return kSimdNativeWidth;  // unreachable
  }();
  return w;
}

}  // namespace dgr
