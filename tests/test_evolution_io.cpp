/// \file test_evolution_io.cpp
/// \brief Tests for the Algorithm 1 evolution driver (regrid windows,
/// puncture tracking, wave recording), checkpoint/restart, VTK output, and
/// the Psi4 -> strain integration chain.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <vector>

#include "bssn/initial_data.hpp"
#include "gw/strain.hpp"
#include "solver/evolution.hpp"
#include "solver/io.hpp"

namespace dgr::solver {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

std::shared_ptr<Mesh> small_puncture_mesh() {
  Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
}

TEST(Evolution, RunsToHorizonAndCountsSteps) {
  auto m = small_puncture_mesh();
  SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  BssnCtx ctx(m, scfg);
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());
  EvolutionConfig cfg;
  cfg.t_end = 2.5 * ctx.suggested_dt();
  cfg.regrid_every = 2;
  cfg.regrid.eps = 1e10;  // effectively disable refinement
  cfg.regrid.min_level = 2;
  int callbacks = 0;
  const auto result =
      evolve(ctx, cfg, nullptr, [&](const BssnCtx&) { ++callbacks; });
  EXPECT_EQ(result.steps, 3);  // 2 full steps + 1 clipped to t_end
  EXPECT_EQ(callbacks, 3);
  EXPECT_NEAR(ctx.time(), cfg.t_end, 1e-12);
}

TEST(Evolution, RecordsWaveSeries) {
  auto m = small_puncture_mesh();
  SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  BssnCtx ctx(m, scfg);
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());
  EvolutionConfig cfg;
  cfg.t_end = 2 * ctx.suggested_dt();
  cfg.extract_every = 1;
  cfg.regrid_every = 8;
  cfg.extraction_radii = {5.0, 7.0};
  const auto result = evolve(ctx, cfg, nullptr);
  ASSERT_EQ(result.waves22.size(), 2u);
  EXPECT_EQ(result.waves22[0].times.size(), std::size_t(result.steps));
  EXPECT_EQ(result.waves22[1].radius, 7.0);
}

TEST(Evolution, PunctureTrackerFollowsShift) {
  // With a hand-imposed constant shift, the tracker must move the puncture
  // by -beta * t.
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  BssnState s;
  bssn::set_minkowski(*m, s);
  const Real b0 = 0.25;
  for (std::size_t d = 0; d < m->num_dofs(); ++d)
    s.field(bssn::kBeta0)[d] = b0;
  PunctureTracker tracker({{1.0, 0.5, -0.25}});
  const Real dt = 0.1;
  for (int i = 0; i < 5; ++i) tracker.step(*m, s, dt);
  EXPECT_NEAR(tracker.positions()[0][0], 1.0 - b0 * 0.5, 1e-10);
  EXPECT_NEAR(tracker.positions()[0][1], 0.5, 1e-12);
  EXPECT_NEAR(tracker.positions()[0][2], -0.25, 1e-12);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  auto m = small_puncture_mesh();
  BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0.1, 0, 0}, {0, 0, 0}}},
                      s);
  const std::string path = "/tmp/dgr_test_checkpoint.bin";
  save_checkpoint(path, *m, s, 3.75, 42);
  const Checkpoint cp = load_checkpoint(path);
  EXPECT_EQ(cp.time, 3.75);
  EXPECT_EQ(cp.step, 42u);
  EXPECT_EQ(cp.domain.half_extent, 16.0);
  EXPECT_EQ(cp.tree, m->tree());
  ASSERT_EQ(cp.state.num_dofs(), s.num_dofs());
  EXPECT_EQ(cp.state.max_abs_diff(s), 0.0);
  // The mesh rebuilt from the checkpointed tree matches the original.
  Mesh rebuilt(cp.tree, cp.domain);
  EXPECT_EQ(rebuilt.num_dofs(), m->num_dofs());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  const std::string path = "/tmp/dgr_test_corrupt.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  EXPECT_THROW(load_checkpoint("/nonexistent/nope.bin"), Error);
  std::remove(path.c_str());
}

/// The checkpoint round-trip restart contract: evolving N steps, saving,
/// restoring into a fresh context, and evolving M more is bitwise
/// identical — state, clock, step counter, and Psi4 series — to the
/// uninterrupted run.
TEST(Checkpoint, RestartResumesBitwise) {
  auto m = small_puncture_mesh();
  SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  BssnCtx ctx(m, scfg);
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());
  const Real dt = ctx.suggested_dt();
  EvolutionConfig seg1;
  seg1.t_end = 3.2 * dt;
  seg1.regrid_every = 4;
  seg1.regrid.eps = 2e-3;
  seg1.regrid.min_level = 2;
  seg1.regrid.max_level = 3;  // keep dt constant across the regrid
  evolve(ctx, seg1, nullptr);

  const std::string path = "/tmp/dgr_test_restart_cp.bin";
  save_checkpoint(path, ctx.mesh(), ctx.state(), ctx.time(),
                  ctx.steps_taken());

  EvolutionConfig seg2 = seg1;
  seg2.t_end = 6.4 * dt;
  seg2.extraction_radii = {5.0};
  seg2.extract_every = 1;
  const auto ref = evolve(ctx, seg2, nullptr);
  ASSERT_GE(ref.steps, 3);

  const Checkpoint cp = load_checkpoint(path);
  auto rm = checkpoint_mesh(cp);
  BssnCtx restored(rm, scfg);
  restored.state() = cp.state;
  restored.restore(cp.time, cp.step);
  const auto res = evolve(restored, seg2, nullptr);

  EXPECT_EQ(res.steps, ref.steps);
  EXPECT_EQ(restored.time(), ctx.time());
  EXPECT_EQ(restored.steps_taken(), ctx.steps_taken());
  ASSERT_EQ(restored.state().num_dofs(), ctx.state().num_dofs());
  EXPECT_EQ(restored.state().max_abs_diff(ctx.state()), 0.0);
  ASSERT_EQ(res.waves22.size(), ref.waves22.size());
  ASSERT_EQ(res.waves22[0].times.size(), ref.waves22[0].times.size());
  for (std::size_t i = 0; i < ref.waves22[0].times.size(); ++i) {
    EXPECT_EQ(res.waves22[0].times[i], ref.waves22[0].times[i]) << i;
    EXPECT_EQ(res.waves22[0].values[i], ref.waves22[0].values[i]) << i;
  }
  std::remove(path.c_str());
}

/// Truncating a valid checkpoint at any section boundary (or mid-section)
/// must throw a clean Error, never return a partial Checkpoint or drive an
/// absurd allocation.
TEST(Checkpoint, TruncatedFilesThrowCleanly) {
  auto m = small_puncture_mesh();
  bssn::BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  const std::string path = "/tmp/dgr_test_trunc_src.bin";
  save_checkpoint(path, *m, s, 1.5, 7);
  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();
  ASSERT_GT(bytes.size(), 100u);

  const std::string cut = "/tmp/dgr_test_trunc_cut.bin";
  // Mid-magic, mid-header, mid-leaf-table, mid-fields, one byte short.
  for (std::size_t n : {std::size_t(4), std::size_t(20), std::size_t(60),
                        bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream os(cut, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), std::streamsize(n));
    os.close();
    EXPECT_THROW(load_checkpoint(cut), Error) << "truncated at " << n;
  }
  // An empty file must fail too (size probe reads nothing).
  { std::ofstream os(cut, std::ios::binary | std::ios::trunc); }
  EXPECT_THROW(load_checkpoint(cut), Error);
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

/// Garbage section counts (huge leaf/dof counts, trailing junk) are caught
/// by the size sanity checks before any allocation or partial read.
TEST(Checkpoint, GarbageCountsAndTrailingJunkThrow) {
  auto m = small_puncture_mesh();
  bssn::BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  const std::string path = "/tmp/dgr_test_garbage_cp.bin";
  save_checkpoint(path, *m, s, 0.0, 0);
  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  is.close();

  const auto dump = [&](const std::vector<char>& b) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(b.data(), std::streamsize(b.size()));
  };
  // nleaves lives right after magic+version+domain+time+step = 36 bytes.
  const std::size_t nleaves_off = 8 + 4 + 8 + 8 + 8;
  auto evil = bytes;
  const std::uint64_t huge = ~std::uint64_t(0) / 2;
  std::memcpy(evil.data() + nleaves_off, &huge, sizeof huge);
  dump(evil);
  EXPECT_THROW(load_checkpoint(path), Error);
  // ndofs follows the leaf table (13 bytes per leaf).
  const std::size_t ndofs_off =
      nleaves_off + 8 + m->tree().leaves().size() * 13;
  evil = bytes;
  std::memcpy(evil.data() + ndofs_off, &huge, sizeof huge);
  dump(evil);
  EXPECT_THROW(load_checkpoint(path), Error);
  // Trailing junk: the field payload no longer accounts for the file tail.
  evil = bytes;
  evil.insert(evil.end(), 16, char(0xAB));
  dump(evil);
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

/// save_checkpoint is atomic: success leaves no .tmp behind, and a failed
/// rename cleans up its temp file instead of leaking it.
TEST(Checkpoint, AtomicSaveCleansUpTempFile) {
  auto m = small_puncture_mesh();
  bssn::BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  const std::string ok = "/tmp/dgr_test_atomic_cp.bin";
  save_checkpoint(ok, *m, s, 0.0, 0);
  EXPECT_TRUE(bool(std::ifstream(ok)));
  EXPECT_FALSE(bool(std::ifstream(ok + ".tmp")));

  // Target is a non-empty directory: the temp write succeeds but the
  // rename cannot — the temp must be removed on the error path.
  const std::string dir = "/tmp/dgr_test_atomic_cp_dir";
  std::filesystem::create_directory(dir);
  std::ofstream(dir + "/occupant") << "x";
  EXPECT_THROW(save_checkpoint(dir, *m, s, 0.0, 0), Error);
  EXPECT_FALSE(bool(std::ifstream(dir + ".tmp")));
  std::filesystem::remove_all(dir);
  std::remove(ok.c_str());
}

TEST(Vtk, WritesLoadableLegacyFile) {
  Domain dom{4.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  BssnState s;
  bssn::set_minkowski(*m, s);
  const std::string path = "/tmp/dgr_test_snapshot.vtk";
  write_vtk_points(path, *m, s, {bssn::kAlpha, bssn::kChi});
  std::ifstream is(path);
  ASSERT_TRUE(bool(is));
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  int points = 0, scalars = 0;
  while (std::getline(is, line)) {
    if (line.rfind("POINTS", 0) == 0) ++points;
    if (line.rfind("SCALARS", 0) == 0) ++scalars;
  }
  EXPECT_EQ(points, 1);
  EXPECT_EQ(scalars, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dgr::solver

namespace dgr::gw {
namespace {

TEST(Strain, TrendFitRecoversPolynomial) {
  std::vector<Real> t, y;
  for (int i = 0; i <= 50; ++i) {
    t.push_back(0.1 * i);
    y.push_back(2.0 - 0.5 * t.back() + 0.25 * t.back() * t.back());
  }
  const auto trend = polynomial_trend(t, y, 2);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_NEAR(trend[i], y[i], 1e-9);
}

TEST(Strain, IntegrateSeriesLinearExact) {
  std::vector<Real> t;
  std::vector<Complex> y;
  for (int i = 0; i <= 20; ++i) {
    t.push_back(0.05 * i);
    y.push_back({2 * t.back(), 1.0});  // integral: t^2 + i t (trapz exact)
  }
  const auto I = integrate_series(t, y);
  EXPECT_NEAR(I.back().real(), 1.0, 1e-12);
  EXPECT_NEAR(I.back().imag(), 1.0, 1e-12);
}

TEST(Strain, Psi4DoubleIntegrationRecoversOscillation) {
  // psi4 = d^2/dt^2 [e^{i w t}] = -w^2 e^{i w t}: the strain must match the
  // oscillation away from the detrended edges.
  // Time-domain double integration with polynomial detrending carries the
  // well-known low-frequency artifact that shrinks with the window length
  // (production pipelines use fixed-frequency integration to kill it); a
  // ~30-period window brings it to the few-percent level.
  const Real w = 4.0;
  std::vector<Real> t;
  std::vector<Complex> psi4;
  for (int i = 0; i <= 4800; ++i) {
    t.push_back(i * 0.01);
    psi4.push_back(-w * w *
                   Complex{std::cos(w * t.back()), std::sin(w * t.back())});
  }
  const auto h = psi4_to_strain(t, psi4, 2);
  Real err = 0;
  for (std::size_t i = 400; i + 400 < h.size(); ++i) {
    const Complex expect{std::cos(w * t[i]), std::sin(w * t[i])};
    err = std::max(err, std::abs(h[i] - expect));
  }
  EXPECT_LT(err, 0.1);
}

}  // namespace
}  // namespace dgr::gw
