# Empty dependencies file for test_gw.
# This may be replaced when dependencies are built.
