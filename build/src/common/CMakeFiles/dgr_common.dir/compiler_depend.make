# Empty compiler generated dependencies file for dgr_common.
# This may be replaced when dependencies are built.
