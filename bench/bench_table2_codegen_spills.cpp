/// \file bench_table2_codegen_spills.cpp
/// \brief Regenerates Table II (and the Fig. 10 graph statistics): spill
/// loads/stores of the three RHS code-generation variants under the
/// 56-register budget (__launch_bounds__(343,3)), plus their measured
/// relative speed from the register-machine interpreter.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "codegen/bssn_graph.hpp"
#include "codegen/machine.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  using namespace dgr::codegen;
  bench::header("Table II", "RHS code-generation variants: spills + speedup");
  bench::Reporter rep("table2_codegen_spills", argc, argv);

  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  std::printf(
      "  composed DAG (Fig. 10 stats): %zu nodes, %zu edges, %d inputs\n"
      "  (paper: 2516 nodes, 6708 edges, 234 inputs; ours differs in CSE\n"
      "   granularity and pre-combined advective/KO inputs)\n\n",
      bg.graph.reachable_size(roots), bg.graph.num_edges(), bg.num_inputs);

  struct PaperRow {
    const char* name;
    double stores, loads, speedup;
  };
  const PaperRow paper[] = {{"sympygr-cse", 15892, 33288, 1.00},
                            {"binary-reduce", -1, 22012, 1.55},
                            {"staged-cse", 8876, 22028, 1.76}};

  // Measure interpreter time per point for each variant.
  Rng rng(17);
  std::vector<double> inputs(bg.num_inputs);
  for (auto& v : inputs) v = rng.uniform(0.5, 1.5);
  double outputs[bssn::kNumVars];

  const Strategy strategies[] = {Strategy::kSympygrCse,
                                 Strategy::kBinaryReduce,
                                 Strategy::kStagedCse};
  double baseline_time = 0;
  std::printf(
      "  %-15s | %-23s | %-23s | %-10s | %-17s\n", "variant",
      "spill stores (bytes)", "spill loads (bytes)", "max live",
      "speedup vs base");
  std::printf("  %-15s | %-10s %-12s | %-10s %-12s | %-10s | %-8s %-8s\n", "",
              "paper", "ours", "paper", "ours", "ours", "paper", "ours");
  for (int s = 0; s < 3; ++s) {
    const CompiledKernel k(bg.graph, roots, strategies[s]);
    WallTimer t;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i) k.run(inputs.data(), outputs);
    const double per_point = t.seconds() / reps;
    if (s == 0) baseline_time = per_point;
    const auto& st = k.stats();
    char stores_paper[32];
    if (paper[s].stores < 0)
      std::snprintf(stores_paper, sizeof stores_paper, "%s", "(n/r)");
    else
      std::snprintf(stores_paper, sizeof stores_paper, "%.0f",
                    paper[s].stores);
    std::printf(
        "  %-15s | %-10s %-12llu | %-10.0f %-12llu | %-10d | %-8.2f %-8.2f\n",
        strategy_name(strategies[s]), stores_paper,
        (unsigned long long)st.spill_store_bytes, paper[s].loads,
        (unsigned long long)st.spill_load_bytes, st.max_live,
        paper[s].speedup, baseline_time / per_point);
    const std::string variant = strategy_name(strategies[s]);
    rep.pair("spill_loads_" + variant, paper[s].loads,
             double(st.spill_load_bytes), "bytes");
    rep.pair("speedup_" + variant, paper[s].speedup,
             baseline_time / per_point, "x");
  }
  bench::note("56 registers/thread as in __launch_bounds__(343,3);");
  bench::note("speedups measured on the register-machine interpreter, where");
  bench::note("spill traffic costs real loads/stores (paper: 675 max live");
  bench::note("temporaries for binary-reduce on their DAG).");
  return 0;
}
