#include "common/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace dgr::log {

namespace {
bool g_level_set = false;
Level g_level = Level::kWarn;
std::FILE* g_json = nullptr;

const char* level_name(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    default: return "?";
  }
}

Level level_from_env() {
  const char* e = std::getenv("DGR_LOG");
  if (!e || !*e) return Level::kWarn;
  // Strict knob: an unknown DGR_LOG token throws instead of silently
  // logging at the kWarn default (parse_level keeps its fallback form for
  // CLI callers that supply their own default). A valid token parses the
  // same under any fallback; only garbage echoes the fallback back.
  const Level a = parse_level(e, Level::kWarn);
  const Level b = parse_level(e, Level::kError);
  DGR_CHECK_MSG(a == b,
                "DGR_LOG must be one of debug|info|warn|error|off, got \""
                    << e << "\"");
  return a;
}
}  // namespace

Level parse_level(const std::string& name, Level fallback) {
  std::string s;
  for (char c : name) s += static_cast<char>(std::tolower((unsigned char)c));
  if (s == "debug" || s == "0") return Level::kDebug;
  if (s == "info" || s == "1") return Level::kInfo;
  if (s == "warn" || s == "warning" || s == "2") return Level::kWarn;
  if (s == "error" || s == "3") return Level::kError;
  if (s == "off" || s == "none" || s == "silent" || s == "4")
    return Level::kOff;
  return fallback;
}

void set_level(Level lvl) {
  g_level = lvl;
  g_level_set = true;
}

Level level() {
  if (!g_level_set) {
    g_level = level_from_env();
    g_level_set = true;
  }
  return g_level;
}

bool open_json_sink(const std::string& path) {
  close_json_sink();
  g_json = std::fopen(path.c_str(), "a");
  return g_json != nullptr;
}

void close_json_sink() {
  if (g_json) std::fclose(g_json);
  g_json = nullptr;
}

bool json_sink_open() { return g_json != nullptr; }

void write(Level lvl, const std::string& msg) {
  if (lvl < level()) return;
  std::fprintf(stderr, "[dgr %s] %s\n", level_name(lvl), msg.c_str());
  if (g_json) {
    std::string line = "{\"ts_us\":";
    line += jsonu::num(monotonic_us());
    line += ",\"level\":";
    line += jsonu::quote(level_name(lvl));
    line += ",\"msg\":";
    line += jsonu::quote(msg);
    line += "}\n";
    std::fputs(line.c_str(), g_json);
    std::fflush(g_json);
  }
}

}  // namespace dgr::log
