/// \file test_integration.cpp
/// \brief Cross-module integration tests: bitwise-exact restart from
/// checkpoint, point sampling against grid truth, and the full
/// evolve -> extract -> strain chain running clean end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "bssn/initial_data.hpp"
#include "common/rng.hpp"
#include "gw/extract.hpp"
#include "gw/strain.hpp"
#include "mesh/sampling.hpp"
#include "solver/bssn_ctx.hpp"
#include "solver/io.hpp"
#include "solver/regrid.hpp"

namespace dgr {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

std::shared_ptr<Mesh> adaptive_mesh() {
  Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
}

solver::SolverConfig cfg_ko() {
  solver::SolverConfig cfg;
  cfg.bssn.ko_sigma = 0.3;
  return cfg;
}

TEST(Integration, CheckpointRestartIsBitwiseExact) {
  // Run 3 steps straight through; separately run 2 steps, checkpoint,
  // reload into a fresh context (mesh rebuilt from the stored octree), run
  // 1 more step. The trajectories must agree exactly — the restart path
  // reproduces every map and kernel deterministically.
  const auto init = [&](solver::BssnCtx& ctx, const Mesh& m) {
    bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                        ctx.state());
  };
  auto m1 = adaptive_mesh();
  solver::BssnCtx straight(m1, cfg_ko());
  init(straight, *m1);
  const Real dt = straight.suggested_dt();
  straight.rk4_step(dt);
  straight.rk4_step(dt);
  straight.rk4_step(dt);

  auto m2 = adaptive_mesh();
  solver::BssnCtx first_leg(m2, cfg_ko());
  init(first_leg, *m2);
  first_leg.rk4_step(dt);
  first_leg.rk4_step(dt);
  const std::string path = "/tmp/dgr_integration_cpt.bin";
  solver::save_checkpoint(path, *m2, first_leg.state(), first_leg.time(), 2);

  const auto cp = solver::load_checkpoint(path);
  auto m3 = std::make_shared<Mesh>(cp.tree, cp.domain);
  solver::BssnCtx second_leg(m3, cfg_ko());
  second_leg.state() = cp.state;
  second_leg.rk4_step(dt);

  EXPECT_EQ(second_leg.state().max_abs_diff(straight.state()), 0.0);
  std::remove(path.c_str());
}

TEST(Integration, PointSamplerExactOnGridAndPolynomials) {
  auto m = adaptive_mesh();
  std::vector<Real> field(m->num_dofs());
  auto poly = [](Real x, Real y, Real z) {
    return 0.1 * x * x * y - z * z * z + 2.0;
  };
  m->sample(poly, field.data());
  mesh::PointSampler sampler(*m);
  // Exact (to roundoff) at DOF positions.
  for (DofIndex d = 0; d < DofIndex(m->num_dofs()); d += 97) {
    const auto x = m->dof_position(d);
    EXPECT_NEAR(sampler.evaluate(field.data(), x[0], x[1], x[2]), field[d],
                1e-12 * (1 + std::abs(field[d])));
  }
  // Degree-6 interpolation at arbitrary points.
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const Real x = rng.uniform(-15, 15), y = rng.uniform(-15, 15),
               z = rng.uniform(-15, 15);
    const Real expect = poly(x, y, z);
    EXPECT_NEAR(sampler.evaluate(field.data(), x, y, z), expect,
                1e-9 * (1 + std::abs(expect)));
  }
}

TEST(Integration, EvolveExtractStrainChainIsFinite) {
  auto m = adaptive_mesh();
  solver::BssnCtx ctx(m, cfg_ko());
  bssn::set_punctures(*m,
                      {{0.5, {1.0, 0.02, 0.01}, {0, 0.1, 0}, {0, 0, 0}},
                       {0.5, {-1.0, 0.02, 0.01}, {0, -0.1, 0}, {0, 0, 0}}},
                      ctx.state());
  gw::WaveExtractor extractor({6.0}, 2, 8);
  std::vector<Real> times;
  std::vector<gw::Complex> psi4;
  for (int i = 0; i < 4; ++i) {
    ctx.rk4_step();
    const auto modes =
        extractor.extract_from_state(*m, ctx.state(), ctx.config().bssn);
    times.push_back(ctx.time());
    psi4.push_back(modes[0].mode(2, 2));
    EXPECT_TRUE(std::isfinite(psi4.back().real()));
    EXPECT_TRUE(std::isfinite(psi4.back().imag()));
  }
  const auto h = gw::psi4_to_strain(times, psi4, 1);
  ASSERT_EQ(h.size(), times.size());
  for (const auto& v : h) {
    EXPECT_TRUE(std::isfinite(v.real()));
    EXPECT_TRUE(std::isfinite(v.imag()));
  }
}

TEST(Integration, RegriddedEvolutionKeepsConstraintsBounded) {
  auto m = adaptive_mesh();
  solver::BssnCtx ctx(m, cfg_ko());
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());
  const auto before = ctx.constraint_norms({{0.05, 0.03, 0.02}}, 2.0);
  ctx.rk4_step();
  ctx.rk4_step();
  // Coarsen-biased regrid, then keep evolving on the new mesh.
  solver::RegridConfig rc;
  rc.eps = 1e-1;
  rc.min_level = 2;
  rc.max_level = 3;
  auto next = solver::regrid_mesh(*m, ctx.state(), rc);
  if (next) ctx.remesh(next);
  ctx.rk4_step();
  const auto after = ctx.constraint_norms({{0.05, 0.03, 0.02}}, 2.0);
  EXPECT_TRUE(std::isfinite(after.ham_l2));
  EXPECT_LT(after.ham_l2, 1e4 * (before.ham_l2 + 1e-10));
}

}  // namespace
}  // namespace dgr
