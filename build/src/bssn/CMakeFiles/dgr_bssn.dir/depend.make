# Empty dependencies file for dgr_bssn.
# This may be replaced when dependencies are built.
