#pragma once
/// \file network.hpp
/// \brief Latency–bandwidth (alpha–beta) interconnect models used to
/// convert measured halo-exchange volumes into modeled communication time
/// for the scaling studies (Figs. 17, 18, 20).

#include <cstdint>

namespace dgr::perf {

struct NetworkModel {
  const char* name;
  double alpha;  ///< per-message latency, seconds
  double beta;   ///< per-byte cost, seconds (1 / bandwidth)

  double time(std::uint64_t bytes, int messages = 1) const {
    return alpha * messages + beta * static_cast<double>(bytes);
  }
};

/// NVLink 3 between A100s on one node (~250 GB/s effective per direction).
inline NetworkModel nvlink() { return {"NVLink3", 5.0e-6, 1.0 / 250.0e9}; }

/// HDR InfiniBand between nodes (~23 GB/s effective).
inline NetworkModel infiniband() { return {"HDR-IB", 2.0e-6, 1.0 / 23.0e9}; }

}  // namespace dgr::perf
