#include "bssn/vars.hpp"

namespace dgr::bssn {

std::string_view var_name(int v) {
  static constexpr std::string_view names[kNumVars] = {
      "alpha", "chi",   "K",     "Gt0",   "Gt1",   "Gt2",
      "beta0", "beta1", "beta2", "B0",    "B1",    "B2",
      "gt_xx", "gt_xy", "gt_xz", "gt_yy", "gt_yz", "gt_zz",
      "At_xx", "At_xy", "At_xz", "At_yy", "At_yz", "At_zz"};
  return (v >= 0 && v < kNumVars) ? names[v] : "?";
}

}  // namespace dgr::bssn
