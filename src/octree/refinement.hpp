#pragma once
/// \file refinement.hpp
/// \brief Physical-domain mapping and the refinement functors that generate
/// the paper's grids: puncture-centered cascades for binary black holes
/// (Figs. 3, 12, 13) and the decreasing-adaptivity family m1–m5 (Table III).

#include <array>
#include <vector>

#include "common/types.hpp"
#include "octree/octree.hpp"

namespace dgr::oct {

/// Mapping between the dyadic octree coordinates and the physical cube
/// [-half_extent, +half_extent]^3 (geometric units; the paper uses total
/// binary mass M = 1).
struct Domain {
  Real half_extent = 400.0;

  Real to_phys(Coord c) const {
    return -half_extent +
           2.0 * half_extent * static_cast<Real>(c) / kDomainSize;
  }
  /// Physical edge length of a level-l octant.
  Real octant_edge(int level) const {
    return 2.0 * half_extent / static_cast<Real>(Coord{1} << level);
  }
  std::array<Real, 3> to_phys(Coord x, Coord y, Coord z) const {
    return {to_phys(x), to_phys(y), to_phys(z)};
  }
};

/// A puncture (black hole location) with its own finest refinement level,
/// as in the BBH grids of the paper (the small hole carries deeper levels).
struct Puncture {
  std::array<Real, 3> pos{0, 0, 0};  ///< physical coordinates
  int finest_level = 8;              ///< deepest level requested around it
};

/// Builds a 2:1-balanced octree refined in a geometric cascade around each
/// puncture: an octant is split while it is coarser than the puncture's
/// finest level and its box intersects a ball of radius
/// `cascade_radius_factor x (octant physical edge)` centered at the
/// puncture. This reproduces the nested-level rings of Fig. 3.
Octree build_puncture_octree(const Domain& domain,
                             const std::vector<Puncture>& punctures,
                             int base_level, Real cascade_radius_factor = 1.5);

/// The Table III adaptivity family: index 1 (most adaptive) … 5 (nearly
/// uniform). Returns grids with decreasing numbers of level transitions,
/// built over a fixed domain with two off-center punctures.
Octree build_adaptivity_grid(const Domain& domain, int family_index);

/// Squared distance from point p to the axis-aligned box [lo, hi].
Real point_box_dist2(const std::array<Real, 3>& p,
                     const std::array<Real, 3>& lo,
                     const std::array<Real, 3>& hi);

}  // namespace dgr::oct
