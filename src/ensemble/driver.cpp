#include "ensemble/driver.hpp"

#include "common/clock.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace dgr::ensemble {

const char* source_name(Source s) {
  switch (s) {
    case Source::kComputed: return "miss";
    case Source::kCoalesced: return "join";
    case Source::kMemory: return "mem";
    case Source::kDisk: return "disk";
  }
  return "?";
}

EnsembleDriver::EnsembleDriver(EnsembleConfig cfg)
    : cfg_(cfg), cache_(cfg.cache_bytes, cfg.spill_dir) {
  if (cfg_.concurrency <= 0) cfg_.concurrency = exec::lanes();
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

EnsembleDriver::~EnsembleDriver() {
  drain();
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
}

EnsembleDriver::Ticket EnsembleDriver::submit(const ScenarioConfig& cfg) {
  const ScenarioKey key = ScenarioKey::of(cfg);
  Ticket t;
  t.hash = key.hash;

  // Cache lookup happens outside m_ (the cache has its own lock, and the
  // disk fault-in path can be slow). A lookup racing a concurrent
  // completion of the same config either hits (fine) or misses — and is
  // then caught below, under m_, by the inflight_ check or the memory-only
  // cache re-read.
  const double t0 = monotonic_us();
  bool from_disk = false;
  if (auto wf = cache_.get(key, &from_disk)) {
    obs::observe("ensemble.lookup_us", monotonic_us() - t0);
    t.source = from_disk ? Source::kDisk : Source::kMemory;
    std::promise<Result> p;
    p.set_value(std::move(wf));
    t.future = p.get_future().share();
    std::lock_guard<std::mutex> lk(m_);
    ++stats_.submitted;
    return t;
  }

  std::unique_lock<std::mutex> lk(m_);
  ++stats_.submitted;
  if (auto it = inflight_.find(key.bytes); it != inflight_.end()) {
    ++stats_.coalesced;
    obs::count("ensemble.coalesced");
    t.source = Source::kCoalesced;
    t.future = it->second;
    return t;
  }

  // The unlocked lookup above can race a completing job: execute() puts
  // the result into the cache *before* erasing the inflight_ entry, so a
  // config that is neither in flight nor in the memory cache here really
  // must be computed. This memory-only re-read (no disk I/O under m_)
  // closes the miss -> complete -> schedule-duplicate window.
  if (auto wf = cache_.get_memory(key)) {
    t.source = Source::kMemory;
    std::promise<Result> p;
    p.set_value(std::move(wf));
    t.future = p.get_future().share();
    return t;
  }

  auto job = std::make_shared<Job>();
  job->key = key;
  job->cfg = cfg;
  job->t_submit_us = monotonic_us();
  t.source = Source::kComputed;
  t.future = job->promise.get_future().share();
  inflight_.emplace(key.bytes, t.future);

  const bool large = estimated_octants(cfg) >= cfg_.large_job_octants;
  if (large) {
    ++stats_.jobs_large;
    obs::count("ensemble.jobs_large");
    large_queue_.push_back(std::move(job));
    lk.unlock();
    cv_.notify_all();
  } else {
    ++stats_.jobs_small;
    obs::count("ensemble.jobs_small");
    small_queue_.push_back(std::move(job));
    // Seed up to `concurrency` chained runner tasks in the pool; each
    // runner drains queued jobs until the queue is empty, so no pool lane
    // ever blocks waiting for work.
    const bool seed = active_small_ < cfg_.concurrency;
    if (seed) ++active_small_;
    lk.unlock();
    if (seed)
      exec::ThreadPool::global().submit([this] { run_small_jobs(); });
  }
  return t;
}

EnsembleDriver::Result EnsembleDriver::evolve(const ScenarioConfig& cfg,
                                              Source* source_out) {
  Ticket t = submit(cfg);
  if (source_out) *source_out = t.source;
  return t.future.get();
}

void EnsembleDriver::execute(const JobPtr& job) {
  const double t_start = monotonic_us();
  obs::observe("ensemble.queue_us", t_start - job->t_submit_us);
  obs::observe_hist_timing("ensemble.queue_us", t_start - job->t_submit_us);
  Result result;
  try {
    obs::ScopedSpan span("ensemble.evolve", "ensemble");
    result = std::make_shared<const Waveform>(run_scenario(job->cfg));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(m_);
      ++stats_.failures;
      inflight_.erase(job->key.bytes);
    }
    cv_.notify_all();
    job->promise.set_exception(std::current_exception());
    return;
  }
  obs::observe("ensemble.evolve_us", monotonic_us() - t_start);
  obs::count("ensemble.evolutions");
  cache_.put(job->key, result);
  {
    std::lock_guard<std::mutex> lk(m_);
    ++stats_.evolutions;
    inflight_.erase(job->key.bytes);
  }
  cv_.notify_all();
  job->promise.set_value(std::move(result));
}

void EnsembleDriver::run_small_jobs() {
  for (;;) {
    JobPtr job;
    {
      std::lock_guard<std::mutex> lk(m_);
      if (small_queue_.empty()) {
        --active_small_;
        // Notify while still holding m_: the instant the lock is released
        // with active_small_ == 0 a drain() waiter may complete and the
        // driver be destroyed, so no member may be touched afterwards.
        cv_.notify_all();
        return;
      }
      job = std::move(small_queue_.front());
      small_queue_.pop_front();
    }
    execute(job);
  }
}

void EnsembleDriver::dispatcher_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return stop_ || !large_queue_.empty(); });
      if (stop_ && large_queue_.empty()) return;
      job = std::move(large_queue_.front());
      large_queue_.pop_front();
      large_running_ = true;
    }
    // The dispatcher is the pool's single external driver: this evolution's
    // parallel_for internals spread over every lane.
    execute(job);
    {
      std::lock_guard<std::mutex> lk(m_);
      large_running_ = false;
    }
    cv_.notify_all();
  }
}

void EnsembleDriver::drain() {
  std::unique_lock<std::mutex> lk(m_);
  cv_.wait(lk, [&] {
    return inflight_.empty() && small_queue_.empty() && large_queue_.empty() &&
           active_small_ == 0 && !large_running_;
  });
}

EnsembleDriver::Stats EnsembleDriver::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

int EnsembleDriver::queue_depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return int(small_queue_.size() + large_queue_.size());
}

}  // namespace dgr::ensemble
