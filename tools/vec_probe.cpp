/// \file vec_probe.cpp
/// \brief Auto-vectorization probe for the CI gate (tools/
/// check_vectorization.sh). Each loop tagged `DGR_HOT_LOOP(name)` must be
/// reported "loop vectorized" under `-O2 -mavx2 -fopt-info-vec-optimized`,
/// or the gate fails the build with the compiler's -fopt-info-vec-missed
/// reasons. The loops are the solver's compiler-vectorized hot shapes:
/// the RK4 state updates (solver par_axpy / par_set_axpy) and the SoA
/// gather/scatter streams of the fused RHS kernel. The stencil reductions
/// themselves are deliberately NOT here: auto-vectorizing a left-associated
/// floating-point sum requires reassociation, which would break the repo's
/// bitwise-determinism contract — those are vectorized across points with
/// explicit dgr::simd packs instead, asserted by an asm grep for ymm
/// registers in the same gate.

#include <cstddef>

namespace dgr::vecprobe {

/// RK4 update y += s * x over one field (par_axpy inner loop).
void axpy(double* __restrict y, const double* __restrict x, double s,
          std::size_t n) {
  // DGR_HOT_LOOP(axpy)
  for (std::size_t d = 0; d < n; ++d) y[d] += s * x[d];
}

/// RK4 stage y = a + s * b over one field (par_set_axpy inner loop).
void set_axpy(double* __restrict y, const double* __restrict a,
              const double* __restrict b, double s, std::size_t n) {
  // DGR_HOT_LOOP(set_axpy)
  for (std::size_t d = 0; d < n; ++d) y[d] = a[d] + s * b[d];
}

/// Stride-1 SoA gather with a uniform scale (fused-kernel input staging).
void soa_gather(double* __restrict dst, const double* __restrict src,
                double scale, std::size_t n) {
  // DGR_HOT_LOOP(soa_gather)
  for (std::size_t p = 0; p < n; ++p) dst[p] = src[p] * scale;
}

/// Elementwise ternary over SoA rows (register-machine compute-op shape).
void soa_mul_add(double* __restrict out, const double* __restrict a,
                 const double* __restrict b, const double* __restrict c,
                 std::size_t n) {
  // DGR_HOT_LOOP(soa_mul_add)
  for (std::size_t p = 0; p < n; ++p) out[p] = a[p] * b[p] + c[p];
}

}  // namespace dgr::vecprobe
