file(REMOVE_RECURSE
  "CMakeFiles/dgr_mesh.dir/interp.cpp.o"
  "CMakeFiles/dgr_mesh.dir/interp.cpp.o.d"
  "CMakeFiles/dgr_mesh.dir/mesh.cpp.o"
  "CMakeFiles/dgr_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/dgr_mesh.dir/sampling.cpp.o"
  "CMakeFiles/dgr_mesh.dir/sampling.cpp.o.d"
  "libdgr_mesh.a"
  "libdgr_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
