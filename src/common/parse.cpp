#include "common/parse.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace dgr {

long parse_count(const char* s, const char* what, long lo, long hi) {
  DGR_CHECK_MSG(s != nullptr && *s != '\0',
                what << " expects an integer, got an empty value");
  long v = 0;
  const char* end = s + std::strlen(s);
  const auto r = std::from_chars(s, end, v, 10);
  DGR_CHECK_MSG(r.ec == std::errc() && r.ptr == end,
                what << " expects an integer, got \"" << s << "\"");
  DGR_CHECK_MSG(v >= lo && v <= hi, what << " must be in [" << lo << ", "
                                         << hi << "], got " << v);
  return v;
}

double parse_real(const char* s, const char* what) {
  DGR_CHECK_MSG(s != nullptr && *s != '\0',
                what << " expects a number, got an empty value");
  double v = 0;
  const char* end = s + std::strlen(s);
  const auto r = std::from_chars(s, end, v);
  DGR_CHECK_MSG(r.ec == std::errc() && r.ptr == end,
                what << " expects a number, got \"" << s << "\"");
  return v;
}

long env_count(const char* name, long fallback, long lo, long hi) {
  const char* e = std::getenv(name);
  if (!e) return fallback;
  return parse_count(e, name, lo, hi);
}

int parse_choice(const char* s, const char* what,
                 std::initializer_list<const char*> choices) {
  if (s != nullptr && *s != '\0') {
    int i = 0;
    for (const char* c : choices) {
      if (std::strcmp(s, c) == 0) return i;
      ++i;
    }
  }
  std::string accepted;
  for (const char* c : choices) {
    if (!accepted.empty()) accepted += "|";
    accepted += c;
  }
  DGR_CHECK_MSG(false, what << " must be one of " << accepted << ", got \""
                            << (s ? s : "(null)") << "\"");
  return -1;  // unreachable
}

}  // namespace dgr
