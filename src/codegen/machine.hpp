#pragma once
/// \file machine.hpp
/// \brief A register machine for the scheduled algebraic stage: linear-scan
/// register allocation with a fixed register budget (56 registers per
/// thread, the paper's __launch_bounds__(343,3) setting) and Belady
/// furthest-next-use eviction. Evicted temporaries spill; the compiler
/// reports spill load/store bytes exactly as Table II's ptxas columns do,
/// and the interpreter executes the resulting micro-ops so that spills cost
/// real time (Fig. 11's mechanism).

#include <cstdint>
#include <vector>

#include "codegen/expr.hpp"
#include "codegen/scheduler.hpp"

namespace dgr::codegen {

/// Table II row: spill traffic of one compiled variant.
struct SpillStats {
  std::uint64_t spill_store_bytes = 0;
  std::uint64_t spill_load_bytes = 0;
  int max_live = 0;       ///< live computed temporaries (Fig. 10 metric)
  int spill_slots = 0;    ///< distinct spilled values
  std::size_t num_ops = 0;///< compute micro-ops
};

/// Micro-operations executed by the interpreter.
struct MicroOp {
  enum Kind : std::uint8_t {
    kLoadInput,   ///< reg[dst] = inputs[input_id]      (global load)
    kLoadConst,   ///< reg[dst] = cval
    kLoadSpill,   ///< reg[dst] = spill[slot]           (spill load)
    kStoreSpill,  ///< spill[slot] = reg[dst]           (spill store)
    kCompute,     ///< reg[dst] = op(reg[a], reg[b])
    kStoreOutput, ///< outputs[out_idx] = reg[dst]
  };
  Kind kind;
  Op op = Op::kAdd;
  std::int16_t dst = 0, a = 0, b = 0;
  std::int32_t slot = 0;      // spill slot / input_id / out_idx
  double cval = 0;
};

/// Compile a (graph, outputs, strategy) triple into an executable
/// register-machine program.
class CompiledKernel {
 public:
  CompiledKernel(const Graph& g, const std::vector<std::int32_t>& outputs,
                 Strategy strategy, int num_regs = 56);

  const SpillStats& stats() const { return stats_; }
  Strategy strategy() const { return strategy_; }
  int num_regs() const { return num_regs_; }
  std::size_t num_micro_ops() const { return ops_.size(); }

  /// Execute at one point: `inputs` indexed by input_id, `outputs` by the
  /// position in the original outputs vector.
  void run(const Real* inputs, Real* outputs) const;

  /// Execute the same program at a block of n points in structure-of-arrays
  /// layout: inputs_soa[input_id * n + p], outputs_soa[out_idx * n + p].
  /// Points run through SIMD packs of `width` lanes (1 or 4; 0 selects the
  /// active runtime width, see simd_active_width) with a scalar tail. Every
  /// arithmetic micro-op is elementwise, so each point's result is bitwise
  /// identical to a scalar run() at that point, at any width.
  ///
  /// `spill_scratch` must hold spill_scratch_size() Reals; pass a per-thread
  /// buffer for concurrent calls (nullptr uses an internal buffer that is
  /// only safe for serial use, like run()).
  void run_block(const Real* inputs_soa, Real* outputs_soa, int n,
                 int width = 0, Real* spill_scratch = nullptr) const;

  /// Scratch Reals run_block needs for spills (sized for the widest pack).
  int spill_scratch_size() const { return num_spill_slots_ > 0 ? num_spill_slots_ * 4 : 1; }

 private:
  void compile(const Graph& g, const std::vector<std::int32_t>& outputs,
               const std::vector<std::int32_t>& order);

  Strategy strategy_;
  int num_regs_;
  SpillStats stats_;
  std::vector<MicroOp> ops_;
  int num_spill_slots_ = 0;
  mutable std::vector<Real> spill_;        // reused across run() calls
  mutable std::vector<Real> block_spill_;  // reused across run_block() calls
};

}  // namespace dgr::codegen
