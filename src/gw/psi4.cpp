#include "gw/psi4.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dgr::gw {

using namespace dgr::bssn;
using mesh::kPad;
using mesh::kPatchPts;
using mesh::kR;
using mesh::patch_idx;

namespace {

void sym_inverse(const Real g[6], Real inv[6]) {
  const Real a = g[0], b = g[1], c = g[2], d = g[3], e = g[4], f = g[5];
  const Real det =
      a * (d * f - e * e) - b * (b * f - e * c) + c * (b * e - d * c);
  const Real idet = 1.0 / det;
  inv[0] = (d * f - e * e) * idet;
  inv[1] = (c * e - b * f) * idet;
  inv[2] = (b * e - c * d) * idet;
  inv[3] = (a * f - c * c) * idet;
  inv[4] = (b * c - a * e) * idet;
  inv[5] = (a * d - b * b) * idet;
}

constexpr Real eps_sym(int i, int j, int k) {
  return Real(((i - j) * (j - k) * (k - i))) / 2.0;  // Levi-Civita symbol
}

}  // namespace

void psi4_patch(const Real* const in[kNumVars], const mesh::PatchGeom& geom,
                const BssnParams& prm, DerivWorkspace& ws, Real* out_re,
                Real* out_im, bool run_derivs, Real r_min) {
  if (run_derivs) bssn_deriv_stage(in, geom.h, ws, nullptr);

  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj)
      for (int ii = kPad; ii < kPad + kR; ++ii) {
        const int p = patch_idx(ii, jj, kk);
        const Real px = geom.origin[0] + ii * geom.h;
        const Real py = geom.origin[1] + jj * geom.h;
        const Real pz = geom.origin[2] + kk * geom.h;
        const Real r = std::sqrt(px * px + py * py + pz * pz);
        if (r < r_min) {
          out_re[p] = 0;
          out_im[p] = 0;
          continue;
        }

        const Real ch = std::max(in[kChi][p], prm.chi_floor);
        const Real Kt = in[kK][p];
        Real gt[6], At[6], gtu[6], Gt[3];
        for (int s = 0; s < 6; ++s) {
          gt[s] = in[kGtxx + s][p];
          At[s] = in[kAtxx + s][p];
        }
        for (int i = 0; i < 3; ++i) Gt[i] = in[kGt0 + i][p];
        sym_inverse(gt, gtu);
        auto GTU = [&](int i, int j) { return gtu[sym_idx(i, j)]; };
        auto GT = [&](int i, int j) { return gt[sym_idx(i, j)]; };
        auto ATl = [&](int i, int j) { return At[sym_idx(i, j)]; };

        Real d_ch[3], d_K[3];
        for (int a = 0; a < 3; ++a) {
          d_ch[a] = ws.grad_of(kChi, a)[p];
          d_K[a] = ws.grad_of(kK, a)[p];
        }
        auto DGT = [&](int i, int j, int k) {
          return ws.grad_of(kGtxx + sym_idx(i, j), k)[p];
        };
        auto DAT = [&](int i, int j, int k) {
          return ws.grad_of(kAtxx + sym_idx(i, j), k)[p];
        };
        auto DDCH = [&](int i, int j) {
          return ws.hess_of(4, sym_idx(i, j))[p];
        };
        auto DDGT = [&](int i, int j, int l, int m) {
          return ws.hess_of(5 + sym_idx(i, j), sym_idx(l, m))[p];
        };
        auto DGTV = [&](int i, int j) { return ws.grad_of(kGt0 + i, j)[p]; };

        Real C1low[3][6];
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j)
            for (int k = j; k < 3; ++k)
              C1low[i][sym_idx(j, k)] =
                  0.5 * (DGT(i, j, k) + DGT(i, k, j) - DGT(j, k, i));
        auto C1LOW = [&](int i, int j, int k) {
          return C1low[i][sym_idx(j, k)];
        };
        Real C1[3][6];
        for (int k = 0; k < 3; ++k)
          for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
              Real s = 0;
              for (int l = 0; l < 3; ++l) s += GTU(k, l) * C1LOW(l, i, j);
              C1[k][sym_idx(i, j)] = s;
            }
        auto C1R = [&](int k, int i, int j) { return C1[k][sym_idx(i, j)]; };

        // Physical Ricci (conformal + chi parts, as in the RHS kernel).
        Real Ric[6];
        {
          Real tr = 0;
          for (int k = 0; k < 3; ++k)
            for (int l = 0; l < 3; ++l)
              tr += GTU(k, l) *
                    (DDCH(k, l) - (3.0 / (2.0 * ch)) * d_ch[k] * d_ch[l]);
          for (int m = 0; m < 3; ++m) tr -= Gt[m] * d_ch[m];
          for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
              Real t1 = 0;
              for (int l = 0; l < 3; ++l)
                for (int m = 0; m < 3; ++m) t1 += GTU(l, m) * DDGT(i, j, l, m);
              t1 *= -0.5;
              Real t2 = 0;
              for (int k = 0; k < 3; ++k)
                t2 += GT(k, i) * DGTV(k, j) + GT(k, j) * DGTV(k, i);
              t2 *= 0.5;
              Real t3 = 0;
              for (int k = 0; k < 3; ++k)
                t3 += Gt[k] * (C1LOW(i, j, k) + C1LOW(j, i, k));
              t3 *= 0.5;
              Real t4 = 0;
              for (int l = 0; l < 3; ++l)
                for (int m = 0; m < 3; ++m) {
                  const Real g = GTU(l, m);
                  Real s = 0;
                  for (int k = 0; k < 3; ++k)
                    s += C1R(k, l, i) * C1LOW(j, k, m) +
                         C1R(k, l, j) * C1LOW(i, k, m) +
                         C1R(k, i, m) * C1LOW(k, l, j);
                  t4 += g * s;
                }
              Real Qij = DDCH(i, j);
              for (int k = 0; k < 3; ++k) Qij -= C1R(k, i, j) * d_ch[k];
              const Real Mij =
                  Qij / (2.0 * ch) - d_ch[i] * d_ch[j] / (4.0 * ch * ch);
              Ric[sym_idx(i, j)] =
                  t1 + t2 + t3 + t4 + Mij + GT(i, j) * tr / (2.0 * ch);
            }
        }
        auto RIC = [&](int i, int j) { return Ric[sym_idx(i, j)]; };

        // Physical metric / extrinsic curvature.
        auto GAM = [&](int i, int j) { return GT(i, j) / ch; };
        auto GAMU = [&](int i, int j) { return ch * GTU(i, j); };
        Real Kdd[6];
        for (int i = 0; i < 3; ++i)
          for (int j = i; j < 3; ++j)
            Kdd[sym_idx(i, j)] =
                (ATl(i, j) + GT(i, j) * Kt / 3.0) / ch;
        auto KDD = [&](int i, int j) { return Kdd[sym_idx(i, j)]; };

        // Electric Weyl part: E_ij = R_ij + K K_ij - K_ik K^k_j.
        Real KUD[3][3];  // K^k_j
        for (int k = 0; k < 3; ++k)
          for (int j = 0; j < 3; ++j) {
            Real s = 0;
            for (int l = 0; l < 3; ++l) s += GAMU(k, l) * KDD(l, j);
            KUD[k][j] = s;
          }
        Real E[6];
        for (int i = 0; i < 3; ++i)
          for (int j = i; j < 3; ++j) {
            Real s = RIC(i, j) + Kt * KDD(i, j);
            for (int k = 0; k < 3; ++k) s -= KDD(i, k) * KUD[k][j];
            E[sym_idx(i, j)] = s;
          }

        // Physical Christoffel (Eq. 13).
        Real Cf[3][6];
        for (int k = 0; k < 3; ++k)
          for (int i = 0; i < 3; ++i)
            for (int j = i; j < 3; ++j) {
              Real corr = 0;
              if (k == i) corr += d_ch[j];
              if (k == j) corr += d_ch[i];
              Real up = 0;
              for (int l = 0; l < 3; ++l) up += GTU(k, l) * d_ch[l];
              corr -= GT(i, j) * up;
              Cf[k][sym_idx(i, j)] = C1R(k, i, j) - corr / (2.0 * ch);
            }
        auto CF = [&](int k, int i, int j) { return Cf[k][sym_idx(i, j)]; };

        // D_k K_lj = partial_k K_lj - Cf^m_kl K_mj - Cf^m_kj K_lm, with
        // partial_k K_lj from the product rule on (At + gt K/3)/chi.
        Real DK[3][3][3];  // [k][l][j]
        for (int k = 0; k < 3; ++k)
          for (int l = 0; l < 3; ++l)
            for (int j = l; j < 3; ++j) {
              Real dk = (DAT(l, j, k) + DGT(l, j, k) * Kt / 3.0 +
                         GT(l, j) * d_K[k] / 3.0) /
                            ch -
                        KDD(l, j) * d_ch[k] / ch;
              for (int m = 0; m < 3; ++m)
                dk -= CF(m, k, l) * KDD(m, j) + CF(m, k, j) * KDD(l, m);
              DK[k][l][j] = dk;
              DK[k][j][l] = dk;
            }

        // Magnetic Weyl: B_ij = eps_i^{kl} D_k K_lj (symmetrized), with
        // eps_i^{kl} = sqrt(gamma) gamma^{ka} gamma^{lb} eps_{iab} and
        // sqrt(gamma) = chi^{-3/2} (det gt = 1).
        const Real sqrtg = std::pow(ch, -1.5);
        Real B[3][3];
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) {
            Real s = 0;
            for (int k = 0; k < 3; ++k)
              for (int l = 0; l < 3; ++l) {
                Real e_ikl = 0;
                for (int a = 0; a < 3; ++a)
                  for (int b = 0; b < 3; ++b)
                    e_ikl += GAMU(k, a) * GAMU(l, b) * eps_sym(i, a, b);
                s += sqrtg * e_ikl * DK[k][l][j];
              }
            B[i][j] = s;
          }
        Real Bs[6];
        for (int i = 0; i < 3; ++i)
          for (int j = i; j < 3; ++j)
            Bs[sym_idx(i, j)] = 0.5 * (B[i][j] + B[j][i]);

        // Quasi-Kinnersley tetrad: Gram–Schmidt of (r^, theta^, phi^) in the
        // physical metric.
        Real vr[3] = {px / r, py / r, pz / r};
        const Real rho = std::sqrt(px * px + py * py);
        Real vphi[3], vth[3];
        if (rho > 1e-12 * r) {
          vphi[0] = -py / rho;
          vphi[1] = px / rho;
          vphi[2] = 0;
        } else {  // on the z axis: any transverse direction works
          vphi[0] = 0;
          vphi[1] = 1;
          vphi[2] = 0;
        }
        // theta^ = phi^ x r^ completes the right-handed triad.
        vth[0] = vphi[1] * vr[2] - vphi[2] * vr[1];
        vth[1] = vphi[2] * vr[0] - vphi[0] * vr[2];
        vth[2] = vphi[0] * vr[1] - vphi[1] * vr[0];

        auto dot = [&](const Real* u, const Real* v) {
          Real s = 0;
          for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j) s += GAM(i, j) * u[i] * v[j];
          return s;
        };
        auto normalize = [&](Real* u) {
          const Real n = std::sqrt(dot(u, u));
          for (int i = 0; i < 3; ++i) u[i] /= n;
        };
        normalize(vr);
        // theta^ orthogonal to r^.
        {
          const Real pr = dot(vth, vr);
          for (int i = 0; i < 3; ++i) vth[i] -= pr * vr[i];
          normalize(vth);
        }
        // phi^ orthogonal to both.
        {
          const Real pr = dot(vphi, vr), pt = dot(vphi, vth);
          for (int i = 0; i < 3; ++i) vphi[i] -= pr * vr[i] + pt * vth[i];
          normalize(vphi);
        }

        // mbar = (theta^ - i phi^)/sqrt(2); Psi4 = (E - iB)_jk mbar^j mbar^k.
        Real re = 0, im = 0;
        for (int i = 0; i < 3; ++i)
          for (int j = 0; j < 3; ++j) {
            const Real Eij = E[sym_idx(i, j)];
            const Real Bij = Bs[sym_idx(i, j)];
            // mbar^i mbar^j = 0.5 [(th th - ph ph) - i (th ph + ph th)]
            const Real mm_re = 0.5 * (vth[i] * vth[j] - vphi[i] * vphi[j]);
            const Real mm_im = -0.5 * (vth[i] * vphi[j] + vphi[i] * vth[j]);
            // (E - iB)(mm_re + i mm_im)
            re += Eij * mm_re + Bij * mm_im;
            im += Eij * mm_im - Bij * mm_re;
          }
        out_re[p] = re;
        out_im[p] = im;
      }
}

void compute_psi4_field(const mesh::Mesh& mesh, const BssnState& state,
                        const BssnParams& params, Real* re, Real* im) {
  const auto in = state.cptrs();
  std::vector<Real> patches(std::size_t(kNumVars) * kPatchPts);
  std::vector<Real> pre(kPatchPts), pim(kPatchPts);
  DerivWorkspace ws;
  for (OctIndex e = 0; e < static_cast<OctIndex>(mesh.num_octants()); ++e) {
    mesh.unzip(in.data(), kNumVars, e, e + 1, patches.data());
    const Real* pin[kNumVars];
    for (int v = 0; v < kNumVars; ++v) pin[v] = &patches[v * kPatchPts];
    psi4_patch(pin, mesh.patch_geom(e), params, ws, pre.data(), pim.data());
    Real* outs_re[1] = {re};
    Real* outs_im[1] = {im};
    mesh.zip(pre.data(), 1, e, e + 1, outs_re);
    mesh.zip(pim.data(), 1, e, e + 1, outs_im);
  }
}

}  // namespace dgr::gw
