#include "solver/bssn_ctx.hpp"

#include <algorithm>
#include <vector>

#include "codegen/bssn_graph.hpp"
#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "mesh/sampling.hpp"
#include "obs/obs.hpp"

namespace dgr::solver {

using bssn::BssnState;
using bssn::kNumVars;
using mesh::kPatchPts;

namespace {

/// Run body(b, e, OpCounts&) over fixed-grain chunks of [0, n) on the pool
/// and fold the per-chunk counts into *counts in chunk order — the same
/// totals a serial sweep accumulates (integer sums), at any thread count.
template <class Body>
void par_counted(std::int64_t n, std::int64_t grain, OpCounts* counts,
                 const char* label, Body&& body) {
  const std::int64_t nc = exec::num_chunks(0, n, grain);
  std::vector<OpCounts> slots(static_cast<std::size_t>(nc));
  exec::for_each_chunk(
      0, n, grain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        body(b, e, slots[static_cast<std::size_t>(c)]);
      },
      label);
  if (counts)
    for (const OpCounts& s : slots) *counts += s;
}

/// y += s * x over all variables, parallel per variable. Whole fields per
/// chunk keep writes disjoint and the per-element arithmetic identical to
/// BssnState::axpy — bitwise-equal results at any thread count.
void par_axpy(BssnState& y, Real s, const BssnState& x) {
  const std::size_t nd = y.num_dofs();
  exec::parallel_for(
      0, kNumVars, 1,
      [&](std::int64_t vb, std::int64_t ve) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* yv = y.field(v);
          const Real* xv = x.field(v);
          for (std::size_t d = 0; d < nd; ++d) yv[d] += s * xv[d];
        }
      },
      "update");
}

/// y = a + s * b over all variables, parallel per variable (see par_axpy).
void par_set_axpy(BssnState& y, const BssnState& a, Real s,
                  const BssnState& b) {
  const std::size_t nd = y.num_dofs();
  exec::parallel_for(
      0, kNumVars, 1,
      [&](std::int64_t vb, std::int64_t ve) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* yv = y.field(v);
          const Real* av = a.field(v);
          const Real* bv = b.field(v);
          for (std::size_t d = 0; d < nd; ++d) yv[d] = av[d] + s * bv[d];
        }
      },
      "update");
}

}  // namespace

RhsPipeline::RhsPipeline(std::shared_ptr<const mesh::Mesh> mesh,
                         SolverConfig config)
    : mesh_(std::move(mesh)), config_(config) {
  DGR_CHECK(mesh_ != nullptr);
  DGR_CHECK(config_.chunk_octants > 0);
  const std::size_t cap =
      static_cast<std::size_t>(config_.chunk_octants) * kNumVars * kPatchPts;
  patch_in_.resize(cap);
  patch_out_.resize(cap);
  if (config_.rhs_kernel == RhsKernel::kStagedFusedSimd) {
    const auto g = codegen::build_bssn_algebra_graph(
        config_.bssn.lambda_f0, config_.bssn.eta, config_.bssn.ko_sigma);
    fused_kernel_ = std::make_unique<codegen::CompiledKernel>(
        g.graph, std::vector<std::int32_t>(g.outputs.begin(), g.outputs.end()),
        codegen::Strategy::kStagedCse);
  }
}

void RhsPipeline::set_mesh(std::shared_ptr<const mesh::Mesh> mesh) {
  DGR_CHECK(mesh != nullptr);
  mesh_ = std::move(mesh);
}

void RhsPipeline::compute(const BssnState& u, BssnState& rhs,
                          const std::vector<OctRange>& runs,
                          PhaseBreakdown* phases, OpCounts* counts) {
  const auto in = u.cptrs();
  const auto out = rhs.ptrs();
  const Real half = mesh_->domain().half_extent;
  if (static_cast<int>(ws_.size()) < exec::lanes())
    ws_.resize(exec::lanes());
  if (fused_kernel_ && static_cast<int>(fws_.size()) < exec::lanes())
    fws_.resize(exec::lanes());

  // Per-call phase durations feed the timing-gated histograms below: the
  // banked PhaseTimer totals are snapshotted here and the deltas observed
  // once the call completes.
  const double t_unzip0 = phases ? phases->unzip.total_seconds() : 0.0;
  const double t_rhs0 = phases ? phases->rhs.total_seconds() : 0.0;
  const double t_zip0 = phases ? phases->zip.total_seconds() : 0.0;

  // Each phase of a chunk runs data-parallel on the host pool. Split axes
  // preserve the serial arithmetic and op counts exactly: unzip splits by
  // VARIABLE (per-var work is independent; an octant split would re-count
  // shared prolonged sources), RHS and zip split by octant (disjoint
  // patches / owner-DOF writes).
  for (const auto& run : runs) {
    DGR_CHECK(run.first >= 0 &&
              run.second <= static_cast<OctIndex>(mesh_->num_octants()));
    for (OctIndex begin = run.first; begin < run.second;
         begin += config_.chunk_octants) {
      const OctIndex end =
          std::min<OctIndex>(begin + config_.chunk_octants, run.second);

      if (phases) phases->unzip.start();
      par_counted(kNumVars, /*grain=*/4, counts, "unzip",
                  [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
                    mesh_->unzip_slice(in.data(), kNumVars,
                                       static_cast<int>(vb),
                                       static_cast<int>(ve), begin, end,
                                       patch_in_.data(), config_.unzip_method,
                                       &c);
                  });
      if (phases) phases->unzip.stop();

      if (phases) phases->rhs.start();
      par_counted(
          end - begin, /*grain=*/4, counts, "rhs",
          [&](std::int64_t eb, std::int64_t ee, OpCounts& c) {
            bssn::DerivWorkspace& ws = ws_[exec::this_lane()];
            for (OctIndex e = begin + static_cast<OctIndex>(eb);
                 e < begin + static_cast<OctIndex>(ee); ++e) {
              const std::size_t base =
                  static_cast<std::size_t>(e - begin) * kNumVars * kPatchPts;
              const Real* pin[kNumVars];
              Real* pout[kNumVars];
              for (int v = 0; v < kNumVars; ++v) {
                pin[v] = &patch_in_[base + v * kPatchPts];
                pout[v] = &patch_out_[base + v * kPatchPts];
              }
              if (fused_kernel_) {
                codegen::bssn_rhs_patch_fused(
                    pin, pout, mesh_->patch_geom(e), half, config_.bssn,
                    *fused_kernel_, fws_[exec::this_lane()], &c,
                    config_.simd_width);
              } else {
                bssn::bssn_rhs_patch(pin, pout, mesh_->patch_geom(e), half,
                                     config_.bssn, ws, &c);
              }
            }
          });
      if (phases) phases->rhs.stop();

      if (phases) phases->zip.start();
      par_counted(end - begin, /*grain=*/8, counts, "zip",
                  [&](std::int64_t eb, std::int64_t ee, OpCounts& c) {
                    mesh_->zip(
                        patch_out_.data() +
                            static_cast<std::size_t>(eb) * kNumVars *
                                kPatchPts,
                        kNumVars, begin + static_cast<OctIndex>(eb),
                        begin + static_cast<OctIndex>(ee), out.data(), &c);
                  });
      if (phases) phases->zip.stop();
    }
  }

  if (phases) {
    obs::observe_hist_timing(
        "solver.rhs.unzip_us",
        (phases->unzip.total_seconds() - t_unzip0) * 1e6);
    obs::observe_hist_timing(
        "solver.rhs.rhs_us", (phases->rhs.total_seconds() - t_rhs0) * 1e6);
    obs::observe_hist_timing(
        "solver.rhs.zip_us", (phases->zip.total_seconds() - t_zip0) * 1e6);
  }
}

BssnCtx::BssnCtx(std::shared_ptr<mesh::Mesh> mesh, SolverConfig config)
    : mesh_(std::move(mesh)), config_(config), pipeline_(mesh_, config) {
  DGR_CHECK(mesh_ != nullptr);
  state_.resize(mesh_->num_dofs());
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
}

Real BssnCtx::suggested_dt() const {
  return config_.cfl * mesh_->finest_spacing();
}

void BssnCtx::compute_rhs(const BssnState& u, BssnState& rhs) {
  pipeline_.compute(u, rhs,
                    {{0, static_cast<OctIndex>(mesh_->num_octants())}},
                    &phases_, &counts_);
}

void BssnCtx::rk4_step(Real dt) {
  // Classical RK4: k1 = F(u), k2 = F(u + dt/2 k1), k3 = F(u + dt/2 k2),
  // k4 = F(u + dt k3), u += dt/6 (k1 + 2 k2 + 2 k3 + k4).
  compute_rhs(state_, k_[0]);

  phases_.update.start();
  par_set_axpy(stage_, state_, 0.5 * dt, k_[0]);
  phases_.update.stop();
  compute_rhs(stage_, k_[1]);

  phases_.update.start();
  par_set_axpy(stage_, state_, 0.5 * dt, k_[1]);
  phases_.update.stop();
  compute_rhs(stage_, k_[2]);

  phases_.update.start();
  par_set_axpy(stage_, state_, dt, k_[2]);
  phases_.update.stop();
  compute_rhs(stage_, k_[3]);

  phases_.update.start();
  par_axpy(state_, dt / 6.0, k_[0]);
  par_axpy(state_, dt / 3.0, k_[1]);
  par_axpy(state_, dt / 3.0, k_[2]);
  par_axpy(state_, dt / 6.0, k_[3]);
  phases_.update.stop();

  time_ += dt;
  ++steps_;
  // A global-dt step desynchronizes the retained dense stages (they cover
  // the interval before it); the next sub-cycled cycle re-bootstraps.
  dense_ready_ = false;
}

void BssnCtx::evolve_steps(int n) {
  for (int i = 0; i < n; ++i) rk4_step();
}

bssn::ConstraintNorms BssnCtx::constraint_norms(
    const std::vector<std::array<Real, 3>>& excise, Real excise_radius) const {
  return bssn::compute_constraint_norms(*mesh_, state_, config_.bssn, excise,
                                        excise_radius);
}

void BssnCtx::remesh(std::shared_ptr<mesh::Mesh> new_mesh) {
  DGR_CHECK(new_mesh != nullptr);
  BssnState next = transfer_state(*mesh_, state_, *new_mesh);
  mesh_ = std::move(new_mesh);
  pipeline_.set_mesh(mesh_);
  state_ = std::move(next);
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
  subidx_.reset();
  dense_ready_ = false;
}

BssnState transfer_state(const mesh::Mesh& src_mesh, const BssnState& src,
                         const mesh::Mesh& dst_mesh) {
  BssnState out(dst_mesh.num_dofs());
  const auto in = src.cptrs();
  // Parallel over destination DOFs; every DOF is evaluated independently,
  // so chunking changes nothing but wall time. The sampler caches the last
  // loaded octant (stateful), so each chunk carries its own instance.
  exec::parallel_for(
      0, static_cast<std::int64_t>(dst_mesh.num_dofs()), /*grain=*/512,
      [&](std::int64_t db, std::int64_t de) {
        mesh::PointSampler sampler(src_mesh);
        std::array<Real, kNumVars> vals;
        for (DofIndex d = static_cast<DofIndex>(db);
             d < static_cast<DofIndex>(de); ++d) {
          const auto x = dst_mesh.dof_position(d);
          sampler.evaluate_many(in.data(), kNumVars, x[0], x[1], x[2],
                                vals.data());
          for (int v = 0; v < kNumVars; ++v) out.field(v)[d] = vals[v];
        }
      },
      "transfer");
  return out;
}

}  // namespace dgr::solver
