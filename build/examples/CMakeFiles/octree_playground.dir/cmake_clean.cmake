file(REMOVE_RECURSE
  "CMakeFiles/octree_playground.dir/octree_playground.cpp.o"
  "CMakeFiles/octree_playground.dir/octree_playground.cpp.o.d"
  "octree_playground"
  "octree_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octree_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
