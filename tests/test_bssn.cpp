/// \file test_bssn.cpp
/// \brief Physics validation of the BSSN right-hand side, initial data and
/// constraints: flat-space identities, analytic gauge-dynamics checks,
/// constraint satisfaction and convergence for puncture data.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bssn/constraints.hpp"
#include "bssn/initial_data.hpp"
#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::bssn {
namespace {

using mesh::Mesh;
using oct::Domain;
using oct::Octree;
using solver::BssnCtx;
using solver::SolverConfig;

std::shared_ptr<Mesh> uniform_mesh(int level, Real half) {
  return std::make_shared<Mesh>(Octree::uniform(level), Domain{half});
}

SolverConfig quiet_config(bool sommerfeld = true, Real ko = 0.0) {
  SolverConfig cfg;
  cfg.bssn.sommerfeld = sommerfeld;
  cfg.bssn.ko_sigma = ko;
  return cfg;
}

TEST(BssnRhs, FlatSpaceRhsIsZero) {
  auto m = uniform_mesh(1, 4.0);
  BssnCtx ctx(m, quiet_config(/*sommerfeld=*/true, /*ko=*/0.1));
  set_minkowski(*m, ctx.state());
  BssnState rhs(m->num_dofs());
  ctx.compute_rhs(ctx.state(), rhs);
  EXPECT_LT(rhs.max_abs(), 1e-11);
}

TEST(BssnRhs, ConstantTraceKGaugeDynamics) {
  // Flat metric with uniform K = K0: the exact RHS is
  //   d_t alpha = -2 alpha K,   d_t K = alpha K^2 / 3,
  //   d_t chi = (2/3) chi alpha K, everything else zero.
  auto m = uniform_mesh(1, 4.0);
  BssnCtx ctx(m, quiet_config(/*sommerfeld=*/false));
  set_minkowski(*m, ctx.state());
  const Real K0 = 0.37;
  for (std::size_t d = 0; d < m->num_dofs(); ++d)
    ctx.state().field(kK)[d] = K0;
  BssnState rhs(m->num_dofs());
  ctx.compute_rhs(ctx.state(), rhs);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    EXPECT_NEAR(rhs.field(kAlpha)[d], -2.0 * K0, 1e-11);
    EXPECT_NEAR(rhs.field(kK)[d], K0 * K0 / 3.0, 1e-11);
    EXPECT_NEAR(rhs.field(kChi)[d], (2.0 / 3.0) * K0, 1e-11);
    for (int s = 0; s < 6; ++s) {
      EXPECT_NEAR(rhs.field(kGtxx + s)[d], 0.0, 1e-11);
      EXPECT_NEAR(rhs.field(kAtxx + s)[d], 0.0, 1e-11);
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(rhs.field(kGt0 + i)[d], 0.0, 1e-11);
      EXPECT_NEAR(rhs.field(kBeta0 + i)[d], 0.0, 1e-11);
      EXPECT_NEAR(rhs.field(kB0 + i)[d], 0.0, 1e-11);
    }
  }
}

TEST(BssnRhs, BilinearLapsePerturbation) {
  // alpha = 1 + c x y on flat space (K = 0, beta = 0):
  //   d_t K  = -D^i D_i alpha = -(dxx + dyy + dzz) alpha = 0,
  //   d_t At_xy = chi (-(DiDj alpha))^TF_xy = -c (the Hessian is traceless),
  //   d_t alpha = 0.
  auto m = uniform_mesh(1, 2.0);
  BssnCtx ctx(m, quiet_config(/*sommerfeld=*/false));
  set_minkowski(*m, ctx.state());
  const Real c = 0.01;
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const auto x = m->dof_position(static_cast<DofIndex>(d));
    ctx.state().field(kAlpha)[d] = 1.0 + c * x[0] * x[1];
  }
  BssnState rhs(m->num_dofs());
  ctx.compute_rhs(ctx.state(), rhs);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    EXPECT_NEAR(rhs.field(kAlpha)[d], 0.0, 1e-10);
    EXPECT_NEAR(rhs.field(kK)[d], 0.0, 1e-9);
    EXPECT_NEAR(rhs.field(kAtxy)[d], -c, 1e-9);
    EXPECT_NEAR(rhs.field(kAtxx)[d], 0.0, 1e-9);
    EXPECT_NEAR(rhs.field(kAtzz)[d], 0.0, 1e-9);
  }
}

TEST(BssnRhs, ConstantShiftAdvectsLinearLapse) {
  // beta^x = b0 constant, alpha = 1 + c x: d_t alpha = beta^x dx alpha = b0 c
  // (upwind derivative is exact on linear data); the Gamma-driver gives
  // d_t beta = 0 (B = 0) and d_t Gt^i = 0 (all second derivatives vanish).
  auto m = uniform_mesh(1, 2.0);
  BssnCtx ctx(m, quiet_config(/*sommerfeld=*/false));
  set_minkowski(*m, ctx.state());
  const Real b0 = 0.3, c = 0.02;
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const auto x = m->dof_position(static_cast<DofIndex>(d));
    ctx.state().field(kBeta0)[d] = b0;
    ctx.state().field(kAlpha)[d] = 1.0 + c * x[0];
  }
  BssnState rhs(m->num_dofs());
  ctx.compute_rhs(ctx.state(), rhs);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    EXPECT_NEAR(rhs.field(kAlpha)[d], b0 * c, 1e-10);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(rhs.field(kGt0 + i)[d], 0.0, 1e-10);
      EXPECT_NEAR(rhs.field(kBeta0 + i)[d], 0.0, 1e-10);
    }
    // chi advected: d_t chi = beta dx chi + 2/3 chi (0 - div beta) = 0.
    EXPECT_NEAR(rhs.field(kChi)[d], 0.0, 1e-10);
  }
}

TEST(BssnRhs, AtRhsTraceFreeOnPunctureData) {
  // For Brill–Lindquist data (At = 0), d_t At = chi(-DDalpha + alpha R)^TF
  // must be trace-free w.r.t. the conformal metric (here delta_ij).
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(2), dom);
  BssnCtx ctx(m, quiet_config(/*sommerfeld=*/false));
  set_punctures(*m, {{1.0, {0.13, 0.07, 0.045}, {0, 0, 0}, {0, 0, 0}}},
                ctx.state());
  BssnState rhs(m->num_dofs());
  ctx.compute_rhs(ctx.state(), rhs);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const Real tr = rhs.field(kAtxx)[d] + rhs.field(kAtyy)[d] +
                    rhs.field(kAtzz)[d];
    const Real mag = std::abs(rhs.field(kAtxx)[d]) +
                     std::abs(rhs.field(kAtyy)[d]) +
                     std::abs(rhs.field(kAtzz)[d]) + 1.0;
    EXPECT_LT(std::abs(tr) / mag, 1e-10) << "dof " << d;
  }
}

TEST(BssnConstraints, FlatSpaceConstraintsVanish) {
  auto m = uniform_mesh(1, 4.0);
  BssnState s;
  set_minkowski(*m, s);
  const auto norms = compute_constraint_norms(*m, s, BssnParams{});
  EXPECT_LT(norms.ham_linf, 1e-12);
  EXPECT_LT(norms.mom_linf, 1e-12);
}

TEST(BssnConstraints, BrillLindquistHamiltonianConverges) {
  // Exact solution of the constraints: the discrete violation is pure
  // truncation error and must fall steeply (6th order) with resolution away
  // from the puncture.
  Domain dom{8.0};
  const PunctureData bh{1.0, {0.11, 0.06, 0.042}, {0, 0, 0}, {0, 0, 0}};
  Real l2[2];
  int idx = 0;
  for (int level : {2, 3}) {
    auto m = std::make_shared<Mesh>(Octree::uniform(level), dom);
    BssnState s;
    set_punctures(*m, {bh}, s);
    const auto norms =
        compute_constraint_norms(*m, s, BssnParams{}, {bh.pos}, 3.0);
    l2[idx++] = norms.ham_l2;
  }
  EXPECT_LT(l2[1], l2[0]);
  EXPECT_GT(l2[0] / l2[1], 16.0) << "expected near-6th-order drop, got "
                                 << l2[0] / l2[1];
}

TEST(BssnConstraints, BowenYorkMomentumSmallAndConverging) {
  // The Bowen–York At satisfies the momentum constraint analytically, so
  // the discrete M^i must converge to zero.
  Domain dom{8.0};
  const PunctureData bh{0.5, {0.11, 0.06, 0.042}, {0.2, 0.1, 0.0}, {0, 0, 0.1}};
  Real l2[2];
  int idx = 0;
  for (int level : {2, 3}) {
    auto m = std::make_shared<Mesh>(Octree::uniform(level), dom);
    BssnState s;
    set_punctures(*m, {bh}, s);
    const auto norms =
        compute_constraint_norms(*m, s, BssnParams{}, {bh.pos}, 3.0);
    l2[idx++] = norms.mom_l2;
  }
  EXPECT_LT(l2[1], l2[0]);
  EXPECT_GT(l2[0] / l2[1], 8.0);
}

TEST(BssnInitialData, MakeBinaryProperties) {
  const auto bhs = make_binary(4.0, 6.0);
  ASSERT_EQ(bhs.size(), 2u);
  EXPECT_NEAR(bhs[0].mass + bhs[1].mass, 1.0, 1e-14);
  EXPECT_NEAR(bhs[0].mass / bhs[1].mass, 4.0, 1e-12);
  // Center of mass at the origin; opposite momenta (quasi-circular).
  EXPECT_NEAR(bhs[0].mass * bhs[0].pos[0] + bhs[1].mass * bhs[1].pos[0], 0.0,
              1e-12);
  EXPECT_NEAR(bhs[0].momentum[1] + bhs[1].momentum[1], 0.0, 1e-14);
  EXPECT_NEAR(bhs[0].pos[0] - bhs[1].pos[0], 6.0, 1e-12);
}

TEST(BssnInitialData, ConformalFactorAndPrecollapsedLapse) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  BssnState s;
  const PunctureData bh{1.0, {0.1, 0.1, 0.1}, {0, 0, 0}, {0, 0, 0}};
  set_punctures(*m, {bh}, s);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const auto x = m->dof_position(static_cast<DofIndex>(d));
    const Real psi =
        bl_conformal_factor({bh}, x[0], x[1], x[2]);
    EXPECT_NEAR(s.field(kChi)[d], std::pow(psi, -4), 1e-13);
    EXPECT_NEAR(s.field(kAlpha)[d], std::pow(psi, -2), 1e-13);
    // chi in (0, 1]; conformal metric stays the identity.
    EXPECT_GT(s.field(kChi)[d], 0.0);
    EXPECT_LE(s.field(kChi)[d], 1.0 + 1e-14);
    EXPECT_EQ(s.field(kGtxy)[d], 0.0);
    EXPECT_EQ(s.field(kGtxx)[d], 1.0);
  }
}

TEST(BssnInitialData, BowenYorkAtIsTraceFree) {
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  BssnState s;
  set_punctures(*m,
                {{0.6, {0.1, 0.0, 0.0}, {0.0, 0.3, 0.0}, {0.1, 0.0, 0.2}}},
                s);
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    const Real tr =
        s.field(kAtxx)[d] + s.field(kAtyy)[d] + s.field(kAtzz)[d];
    EXPECT_NEAR(tr, 0.0, 1e-12);
  }
}

TEST(BssnVars, NamesAndAsymptotics) {
  EXPECT_EQ(var_name(kAlpha), "alpha");
  EXPECT_EQ(var_name(kAtzz), "At_zz");
  EXPECT_EQ(var_asymptotic(kGtyy), 1.0);
  EXPECT_EQ(var_asymptotic(kAtxy), 0.0);
  EXPECT_EQ(sym_idx(2, 0), 2);
  EXPECT_EQ(sym_idx(1, 2), 4);
  EXPECT_EQ(sym_idx(2, 2), 5);
  // Hessian variable table covers exactly the 11 paper variables.
  EXPECT_EQ(kSecondDerivVars.size(), 11u);
  EXPECT_EQ(hess_slot(kChi), 4);
  EXPECT_EQ(hess_slot(kK), -1);
}

}  // namespace
}  // namespace dgr::bssn
