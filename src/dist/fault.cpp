#include "dist/fault.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dgr::dist {

FaultPlan::FaultPlan(const FaultConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  DGR_CHECK(cfg.msg_drop_prob >= 0 && cfg.msg_drop_prob <= 1);
  DGR_CHECK(cfg.msg_delay_prob >= 0 && cfg.msg_delay_prob <= 1);
  DGR_CHECK(cfg.msg_drop_prob + cfg.msg_delay_prob <= 1);
  DGR_CHECK(cfg.heartbeat_period > 0 && cfg.heartbeat_timeout >= 0);
  DGR_CHECK(cfg.max_retries >= 0 && cfg.retry_timeout > 0);
  DGR_CHECK(cfg.retry_backoff >= 1);
  events_ = cfg.rank_failures;
  // Randomized failures draw (time, rank spec) pairs before any message
  // draw happens, so the two streams stay reproducible independently of
  // how many messages the schedule injects.
  for (int i = 0; i < cfg.random_failures; ++i) {
    FaultConfig::RankFailure f;
    f.t_virtual = rng_.uniform(cfg.random_fail_t_min, cfg.random_fail_t_max);
    f.rank = static_cast<int>(rng_.uniform_int(1u << 20));
    events_.push_back(f);
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultConfig::RankFailure& a,
                      const FaultConfig::RankFailure& b) {
                     return a.t_virtual < b.t_virtual;
                   });
}

const FaultConfig::RankFailure* FaultPlan::pending_failure(double now) const {
  if (!cfg_.enabled || next_event_ >= events_.size()) return nullptr;
  const FaultConfig::RankFailure& f = events_[next_event_];
  return f.t_virtual <= now ? &f : nullptr;
}

void FaultPlan::consume_failure() {
  DGR_CHECK(next_event_ < events_.size());
  ++next_event_;
}

FaultPlan::MsgFault FaultPlan::draw_msg_fault() {
  MsgFault out;
  if (!cfg_.enabled || (cfg_.msg_drop_prob <= 0 && cfg_.msg_delay_prob <= 0))
    return out;
  const double u = rng_.uniform();
  if (u < cfg_.msg_drop_prob) {
    // First attempt lost; each retransmit is lost again with the same
    // probability, up to max_retries — then the link is forced good.
    out.drops = 1;
    while (out.drops < cfg_.max_retries &&
           rng_.uniform() < cfg_.msg_drop_prob)
      ++out.drops;
  } else if (u < cfg_.msg_drop_prob + cfg_.msg_delay_prob) {
    out.delayed = true;
  }
  return out;
}

}  // namespace dgr::dist
