# Empty compiler generated dependencies file for bench_fig7_padding_variants.
# This may be replaced when dependencies are built.
