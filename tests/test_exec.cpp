/// \file test_exec.cpp
/// \brief The work-stealing host pool (src/exec): chunk coverage,
/// determinism of parallel_for / parallel_reduce across thread counts,
/// exception propagation, nesting, the per-launch scratch arena, and the
/// launch_range path of the simulated GPU runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"

#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "simgpu/runtime.hpp"

namespace dgr {
namespace {

/// Bit pattern of a double — bitwise comparisons, not epsilon ones.
std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

TEST(Pool, LaneModelAndResize) {
  exec::ThreadPool::set_global_threads(3);
  EXPECT_EQ(exec::lanes(), 3);
  EXPECT_EQ(exec::this_lane(), 0);  // the driver is lane 0
  exec::ThreadPool::set_global_threads(1);
  EXPECT_EQ(exec::lanes(), 1);
}

TEST(Pool, SubmittedTasksRunOnWorkerLanes) {
  exec::ThreadPool::set_global_threads(4);
  std::atomic<int> ran{0};
  std::atomic<bool> lane_ok{true};
  // Tasks observe a worker lane in [1, lanes); synchronize via a region.
  exec::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
    const int lane = exec::this_lane();
    if (lane < 0 || lane >= exec::lanes()) lane_ok = false;
    ran += static_cast<int>(e - b);
  });
  EXPECT_EQ(ran.load(), 64);
  EXPECT_TRUE(lane_ok.load());
  exec::ThreadPool::set_global_threads(1);
}

TEST(Parallel, ChunksCoverRangeExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    exec::ThreadPool::set_global_threads(threads);
    for (const auto& [begin, end, grain] :
         std::vector<std::array<std::int64_t, 3>>{
             {0, 100, 7}, {5, 6, 1}, {3, 3, 4}, {0, 64, 64}, {-10, 10, 3}}) {
      // Each index belongs to exactly one chunk, so plain increments are
      // race-free; a double visit would leave a count != 1.
      std::vector<int> hit(
          static_cast<std::size_t>(std::max<std::int64_t>(end - begin, 0)), 0);
      exec::for_each_chunk(begin, end, grain,
                           [&](std::int64_t, std::int64_t b, std::int64_t e) {
                             for (std::int64_t i = b; i < e; ++i)
                               hit[static_cast<std::size_t>(i - begin)]++;
                           });
      for (int h : hit) EXPECT_EQ(h, 1) << threads;
    }
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(Parallel, ReduceIsBitwiseIdenticalAcrossThreadCounts) {
  // A floating-point sum whose grouping matters: 1/(i+1) over a range long
  // enough that naive per-thread partial sums would differ in the last ulp.
  const auto run = [] {
    return exec::parallel_reduce(
        0, 10007, 13, 0.0,
        [](std::int64_t b, std::int64_t e) {
          double s = 0;
          for (std::int64_t i = b; i < e; ++i) s += 1.0 / double(i + 1);
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  exec::ThreadPool::set_global_threads(1);
  const double ref = run();
  for (int threads : {2, 7}) {
    exec::ThreadPool::set_global_threads(threads);
    for (int rep = 0; rep < 3; ++rep)
      EXPECT_EQ(bits(run()), bits(ref)) << threads;
  }
  exec::ThreadPool::set_global_threads(1);
  EXPECT_NEAR(ref, 9.7883, 1e-3);  // harmonic number H_10007
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  for (int threads : {1, 4}) {
    exec::ThreadPool::set_global_threads(threads);
    EXPECT_THROW(
        exec::for_each_chunk(0, 32, 1,
                             [&](std::int64_t c, std::int64_t, std::int64_t) {
                               if (c == 3) throw std::runtime_error("boom");
                             }),
        std::runtime_error);
    // The pool survives a failed region.
    std::atomic<int> n{0};
    exec::parallel_for(0, 8, 1,
                       [&](std::int64_t b, std::int64_t e) { n += int(e - b); });
    EXPECT_EQ(n.load(), 8);
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(Parallel, NestedRegionsComplete) {
  exec::ThreadPool::set_global_threads(4);
  // Outer region over 6 items, each opening an inner reduction: the lane
  // that opens the inner region drains it itself, so this cannot deadlock
  // even with every worker busy in the outer region.
  std::vector<double> inner(6);
  exec::parallel_for(0, 6, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      inner[static_cast<std::size_t>(i)] = exec::parallel_reduce(
          0, 100, 9, 0.0,
          [](std::int64_t lo, std::int64_t hi) {
            double s = 0;
            for (std::int64_t k = lo; k < hi; ++k) s += double(k);
            return s;
          },
          [](double a, double b) { return a + b; });
  });
  for (double v : inner) EXPECT_EQ(v, 4950.0);
  exec::ThreadPool::set_global_threads(1);
}

TEST(ScratchArena, RetainsCapacityAcrossResets) {
  simgpu::ScratchArena arena;
  // First cycle allocates; identical later cycles must not touch the heap.
  for (int cycle = 0; cycle < 2; ++cycle) {
    arena.get<OpCounts>(16);
    arena.get<double>(333);
    arena.reset();
  }
  const std::uint64_t warm = arena.stats().heap_allocs;
  for (int cycle = 0; cycle < 10; ++cycle) {
    OpCounts* c = arena.get<OpCounts>(16);
    EXPECT_EQ(c[7].flops, 0u);  // slots come back default-constructed
    double* d = arena.get<double>(333);
    d[0] = 1.0;
    arena.reset();
  }
  EXPECT_EQ(arena.stats().heap_allocs, warm);
  EXPECT_EQ(arena.stats().requests, 4u + 20u);
}

TEST(ScratchArena, OversizeRequestThrowsCapacityExceeded) {
  simgpu::ScratchArena arena;
  // One slot over the representable request limit, and the wrap-around
  // case where n * sizeof(T) would overflow size_t to a tiny byte count —
  // both must fail loudly instead of handing back an undersized block.
  const std::size_t over =
      simgpu::ScratchArena::kMaxRequestBytes / sizeof(OpCounts) + 1;
  EXPECT_THROW(arena.get<OpCounts>(over), Error);
  EXPECT_THROW(arena.get<OpCounts>(std::numeric_limits<std::size_t>::max()),
               Error);
  EXPECT_THROW(arena.get<double>(simgpu::ScratchArena::kMaxRequestBytes),
               Error);
  // The exact limit is representable for byte-sized elements (the check is
  // on the request form, not a smaller ad-hoc bound) ... but don't actually
  // allocate it: the rejected requests above must leave the arena usable.
  OpCounts* c = arena.get<OpCounts>(4);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c[3].flops, 0u);
  arena.reset();
  EXPECT_EQ(arena.get<OpCounts>(4)[0].bytes_read, 0u);
}

TEST(ScratchArena, BoundarySpillKeepsRequestsDisjoint) {
  simgpu::ScratchArena arena;
  // 64 x 256-byte regions overflow the first 4096-byte block several times
  // over; every region must stay disjoint and intact across the block
  // spills (the take() pointer math regression: an alignment bump at a
  // block boundary must move to a fresh block, never wrap within one).
  std::vector<unsigned char*> ptrs;
  for (int i = 0; i < 64; ++i) {
    unsigned char* p = arena.get<unsigned char>(256);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << i;
    std::memset(p, i + 1, 256);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 64; ++i)
    for (int b = 0; b < 256; b += 61)
      ASSERT_EQ(int(ptrs[std::size_t(i)][b]), i + 1)
          << "region " << i << " byte " << b;
}

TEST(ScratchArena, SlotsAreCacheLineAligned) {
  simgpu::ScratchArena arena;
  auto* a = arena.get<OpCounts>(3);
  auto* b = arena.get<OpCounts>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_NE(a, b);
}

TEST(Runtime, LaunchRangeMatchesSerialLaunchBitwise) {
  // The same work recorded through launch() (serial) and launch_range()
  // (parallel) must produce identical KernelRecords and modeled times.
  const auto work = [](std::int64_t b, std::int64_t e, OpCounts& c) {
    c.flops += 10 * std::uint64_t(e - b);
    c.bytes_read += 8 * std::uint64_t(e - b);
  };
  simgpu::GpuRuntime serial;
  serial.launch("k", 32, 0, [&](OpCounts& c) { work(0, 1000, c); });
  for (int threads : {1, 2, 7}) {
    exec::ThreadPool::set_global_threads(threads);
    simgpu::GpuRuntime par;
    par.launch_range("k", 32, 0, 1000, 64, work);
    const auto& a = serial.record("k");
    const auto& b = par.record("k");
    EXPECT_EQ(a.counts.flops, b.counts.flops) << threads;
    EXPECT_EQ(a.counts.bytes_read, b.counts.bytes_read) << threads;
    ASSERT_EQ(a.per_launch.size(), b.per_launch.size()) << threads;
    EXPECT_EQ(a.per_launch[0].flops, b.per_launch[0].flops) << threads;
    EXPECT_EQ(bits(serial.modeled_kernel_seconds("k")),
              bits(par.modeled_kernel_seconds("k")))
        << threads;
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(Runtime, SteadyStateLaunchesDoNotAllocate) {
  exec::ThreadPool::set_global_threads(2);
  simgpu::GpuRuntime rt;
  const auto one = [&] {
    rt.launch_range("k", 8, 0, 512, 16,
                    [](std::int64_t b, std::int64_t e, OpCounts& c) {
                      c.flops += std::uint64_t(e - b);
                    });
  };
  one();  // warm-up: the arena acquires its capacity here
  one();  // one more cycle lets a multi-block first pass coalesce
  const std::uint64_t warm_allocs = rt.scratch_stats().heap_allocs;
  const std::uint64_t warm_requests = rt.scratch_stats().requests;
  for (int i = 0; i < 50; ++i) one();
  EXPECT_EQ(rt.scratch_stats().heap_allocs, warm_allocs);
  EXPECT_EQ(rt.scratch_stats().requests, warm_requests + 50);
  EXPECT_EQ(rt.record("k").launches, 52);
  EXPECT_EQ(rt.record("k").counts.flops, 52u * 512u);
  exec::ThreadPool::set_global_threads(1);
}

/// The strict thread-count parse behind DGR_THREADS and --threads: the old
/// std::atoi path silently turned garbage into 0 lanes.
TEST(Pool, ParseThreadCountValidates) {
  EXPECT_EQ(exec::parse_thread_count("1", "t"), 1);
  EXPECT_EQ(exec::parse_thread_count("4", "t"), 4);
  EXPECT_EQ(exec::parse_thread_count("4096", "t"), 4096);
  for (const char* bad :
       {"garbage", "-3", "0", "4x", "", " 4 ", "1e3", "4097", "99999999999"}) {
    EXPECT_THROW(exec::parse_thread_count(bad, "t"), Error) << bad;
  }
  EXPECT_THROW(exec::parse_thread_count(nullptr, "t"), Error);
  // The error message names the offending knob.
  try {
    exec::parse_thread_count("nope", "DGR_THREADS");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DGR_THREADS"), std::string::npos);
  }
}

}  // namespace
}  // namespace dgr
