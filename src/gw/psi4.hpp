#pragma once
/// \file psi4.hpp
/// \brief The Penrose scalar Psi4 used for gravitational-wave extraction
/// (paper §III-A): computed from the evolved BSSN variables via the
/// electric/magnetic parts of the Weyl tensor,
///   E_ij = R_ij + K K_ij - K_ik K^k_j,
///   B_ij = eps_i^{kl} D_k K_{lj},
/// projected onto a quasi-Kinnersley null tetrad built by Gram–Schmidt
/// orthonormalization of the spherical coordinate triad:
///   Psi4 = (E_jk - i B_jk) mbar^j mbar^k,  mbar = (e_theta - i e_phi)/sqrt2.

#include <complex>

#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "mesh/mesh.hpp"

namespace dgr::gw {

using Complex = std::complex<Real>;

/// Compute Psi4 on the interior of one patch (outputs are 13^3 buffers,
/// interior region written). `ws` must hold the derivative stage of `in`
/// (pass run_derivs = true to compute it here). Points too close to the
/// coordinate origin (within `r_min`) are set to zero — the tetrad is
/// radial and extraction happens on far spheres anyway.
void psi4_patch(const Real* const in[bssn::kNumVars],
                const mesh::PatchGeom& geom, const bssn::BssnParams& params,
                bssn::DerivWorkspace& ws, Real* out_re, Real* out_im,
                bool run_derivs = true, Real r_min = 1e-8);

/// Compute Psi4 as a pair of zipped scalar fields over the whole mesh.
void compute_psi4_field(const mesh::Mesh& mesh, const bssn::BssnState& state,
                        const bssn::BssnParams& params, Real* re, Real* im);

}  // namespace dgr::gw
