#include "solver/io.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace dgr::solver {

namespace {
constexpr std::uint64_t kMagic = 0x4447525F43505431ULL;  // "DGR_CPT1"
constexpr std::uint32_t kVersion = 1;

template <class T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
void get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DGR_CHECK_MSG(bool(is), "truncated checkpoint");
}
}  // namespace

void save_checkpoint(const std::string& path, const mesh::Mesh& mesh,
                     const bssn::BssnState& state, Real time,
                     std::uint64_t step) {
  DGR_CHECK(state.num_dofs() == mesh.num_dofs());
  // Write-to-temp + rename: `path` either keeps its previous (good) content
  // or atomically becomes the complete new checkpoint — never a torn write.
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DGR_CHECK_MSG(bool(os), "cannot open checkpoint for writing: " + tmp);
    put(os, kMagic);
    put(os, kVersion);
    put(os, mesh.domain().half_extent);
    put(os, time);
    put(os, step);
    const auto& leaves = mesh.tree().leaves();
    put(os, std::uint64_t(leaves.size()));
    for (const auto& t : leaves) {
      put(os, t.x);
      put(os, t.y);
      put(os, t.z);
      put(os, t.level);
    }
    put(os, std::uint64_t(mesh.num_dofs()));
    for (int v = 0; v < bssn::kNumVars; ++v)
      os.write(reinterpret_cast<const char*>(state.field(v)),
               mesh.num_dofs() * sizeof(Real));
    os.flush();
    DGR_CHECK_MSG(bool(os), "checkpoint write failed: " + tmp);
    os.close();
    DGR_CHECK_MSG(!os.fail(), "checkpoint close failed: " + tmp);
    DGR_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot move checkpoint into place: " + tmp + " -> " + path);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DGR_CHECK_MSG(bool(is), "cannot open checkpoint: " + path);
  // Total file size up front: every variable-length section is checked
  // against the bytes actually present before it is read (or allocated), so
  // a truncated or garbage file fails cleanly instead of driving a huge
  // resize/reserve or returning a partially-populated checkpoint.
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = std::uint64_t(is.tellg());
  is.seekg(0, std::ios::beg);
  const auto remaining = [&]() -> std::uint64_t {
    return file_size - std::uint64_t(is.tellg());
  };

  std::uint64_t magic;
  std::uint32_t version;
  get(is, magic);
  DGR_CHECK_MSG(magic == kMagic, "not a dendrite-gr checkpoint: " + path);
  get(is, version);
  DGR_CHECK_MSG(version == kVersion, "unsupported checkpoint version");

  Checkpoint cp;
  get(is, cp.domain.half_extent);
  get(is, cp.time);
  get(is, cp.step);
  std::uint64_t nleaves;
  get(is, nleaves);
  constexpr std::uint64_t kLeafBytes = 3 * sizeof(oct::Coord) + 1;
  DGR_CHECK_MSG(nleaves >= 1 && nleaves <= remaining() / kLeafBytes,
                "corrupt checkpoint: leaf table (" << nleaves
                    << " octants) exceeds file size: " + path);
  std::vector<oct::TreeNode> leaves;
  leaves.reserve(nleaves);
  for (std::uint64_t i = 0; i < nleaves; ++i) {
    oct::Coord x, y, z;
    std::uint8_t level;
    get(is, x);
    get(is, y);
    get(is, z);
    get(is, level);
    leaves.emplace_back(x, y, z, level);
  }
  cp.tree = oct::Octree(std::move(leaves));  // validates on construction

  std::uint64_t ndofs;
  get(is, ndofs);
  // The field payload must account for every remaining byte — catches
  // truncation and trailing garbage in one check, before the allocation.
  constexpr std::uint64_t kDofBytes = std::uint64_t(bssn::kNumVars) * sizeof(Real);
  DGR_CHECK_MSG(
      ndofs >= 1 && ndofs <= remaining() / kDofBytes &&
          ndofs * kDofBytes == remaining(),
      "corrupt checkpoint: field payload (" << ndofs
          << " dofs x " << bssn::kNumVars
          << " vars) does not match file size: " + path);
  cp.state.resize(ndofs);
  for (int v = 0; v < bssn::kNumVars; ++v) {
    is.read(reinterpret_cast<char*>(cp.state.field(v)),
            ndofs * sizeof(Real));
    DGR_CHECK_MSG(bool(is) && std::uint64_t(is.gcount()) == ndofs * sizeof(Real),
                  "truncated checkpoint fields: " + path);
  }
  return cp;
}

std::shared_ptr<mesh::Mesh> checkpoint_mesh(const Checkpoint& cp) {
  auto m = std::make_shared<mesh::Mesh>(cp.tree, cp.domain);
  DGR_CHECK_MSG(cp.state.num_dofs() == m->num_dofs(),
                "checkpoint fields inconsistent with its octree: "
                    << cp.state.num_dofs() << " dofs vs " << m->num_dofs());
  return m;
}

void write_vtk_points(const std::string& path, const mesh::Mesh& mesh,
                      const bssn::BssnState& state,
                      const std::vector<int>& vars) {
  DGR_CHECK(state.num_dofs() == mesh.num_dofs());
  std::ofstream os(path);
  DGR_CHECK_MSG(bool(os), "cannot open VTK file for writing: " + path);
  const std::size_t n = mesh.num_dofs();
  os << "# vtk DataFile Version 3.0\n"
     << "dendrite-gr snapshot\nASCII\nDATASET UNSTRUCTURED_GRID\n"
     << "POINTS " << n << " double\n";
  for (DofIndex d = 0; d < DofIndex(n); ++d) {
    const auto x = mesh.dof_position(d);
    os << x[0] << " " << x[1] << " " << x[2] << "\n";
  }
  os << "POINT_DATA " << n << "\n";
  for (int v : vars) {
    DGR_CHECK(v >= 0 && v < bssn::kNumVars);
    os << "SCALARS " << bssn::var_name(v) << " double 1\n"
       << "LOOKUP_TABLE default\n";
    const Real* f = state.field(v);
    for (std::size_t d = 0; d < n; ++d) os << f[d] << "\n";
  }
  DGR_CHECK_MSG(bool(os), "VTK write failed: " + path);
}

}  // namespace dgr::solver
