# Empty dependencies file for bench_fig20_weak_scaling_frontera.
# This may be replaced when dependencies are built.
