file(REMOVE_RECURSE
  "CMakeFiles/test_gw.dir/test_gw.cpp.o"
  "CMakeFiles/test_gw.dir/test_gw.cpp.o.d"
  "test_gw"
  "test_gw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
