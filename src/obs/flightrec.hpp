#pragma once
/// \file flightrec.hpp
/// \brief The flight recorder: an always-on, lock-light, per-thread ring
/// buffer of recent trace spans and instants, dumped as Perfetto-loadable
/// Chrome trace JSON when something goes wrong — SIGSEGV/SIGABRT, a
/// fault-injection recovery in src/dist, a drained SHUTDOWN of the serve
/// daemon, or an operator DUMP request. It turns "the daemon hung/died"
/// into a readable last-N-milliseconds timeline without anyone having
/// arranged tracing in advance.
///
/// Design. Each thread owns a fixed-capacity ring of POD entries
/// (overwriting oldest first; default ~64 KiB per thread, DGR_FLIGHTREC_KB
/// overrides). Recording is lock-free on the hot path: the only lock is
/// taken once per thread, at ring registration. Rings outlive their
/// threads (the registry keeps them), so a crash dump includes what
/// already-exited workers were last doing. Entry names/categories are
/// stored as `const char*` and MUST point at storage that outlives the
/// recorder — string literals in practice; that is what keeps recording
/// allocation-free.
///
/// obs::ScopedSpan feeds the recorder automatically (in addition to any
/// installed TraceSession), so the solver, the distributed engine, the
/// ensemble driver, and the serve front-end are covered by their existing
/// instrumentation. DGR_FLIGHTREC=off disables recording entirely.
///
/// Crash dumps (crash_dump / the installed signal handler) use only
/// snprintf into a stack buffer plus write(2) — no allocation, no
/// locking — and are best-effort by nature: a handler that loses the race
/// with a registering thread can drop that thread's ring, never corrupt
/// the process further.

#include <cstddef>
#include <cstdint>
#include <string>

namespace dgr::obs::flightrec {

/// One recorded event. ph 'X' = complete span (ts + dur), 'i' = instant.
struct Entry {
  double ts_us = 0;
  double dur_us = 0;
  const char* name = nullptr;  ///< static string (see file comment)
  const char* cat = nullptr;   ///< static string
  char ph = 'X';
};

/// Recording enabled? Parsed once from DGR_FLIGHTREC (anything but "off"
/// is on); set_enabled overrides (tests, tools).
bool enabled();
void set_enabled(bool on);

/// Per-thread ring budget in bytes. Applies to rings created afterwards
/// (and to every ring after reset()). Default 64 KiB or DGR_FLIGHTREC_KB.
void set_capacity_bytes(std::size_t bytes);
std::size_t capacity_entries();

/// Record on the calling thread's ring. No-ops when disabled. `name` and
/// `cat` must be static strings.
void record_span(const char* name, const char* cat, double ts_us,
                 double dur_us);
void record_instant(const char* name, const char* cat, double ts_us);

/// Total entries currently held across all rings (capped by capacity).
std::size_t recorded_entries();

/// Default dump destination: DGR_FLIGHTREC_PATH or "flightrec.json".
std::string dump_path();

/// Perfetto-loadable Chrome trace JSON of every ring, oldest entry first
/// per ring; one pid, one tid per recorded thread (registration order).
std::string dump_json();

/// Write dump_json() to `path` (empty: dump_path()). Returns false when
/// disabled, nothing was recorded, or the file cannot be written.
bool dump(const std::string& path = "");

/// Async-signal-cautious dump: snprintf + write(2) only, no allocation,
/// no locking. Used by the crash handler; callable directly.
void crash_dump(const char* path);

/// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that crash_dump() to
/// `path` (nullptr: dump_path() resolved now) and then re-raise with the
/// default disposition, so the process still dies with the original
/// signal. Idempotent.
void install_crash_handler(const char* path = nullptr);

/// Drop all rings and thread registrations, re-reading capacity on next
/// use. Test hook: golden dumps need a clean, deterministically-numbered
/// recorder. Not safe while other threads are recording.
void reset();

}  // namespace dgr::obs::flightrec
