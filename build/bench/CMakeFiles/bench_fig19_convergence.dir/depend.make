# Empty dependencies file for bench_fig19_convergence.
# This may be replaced when dependencies are built.
