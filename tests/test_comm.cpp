/// \file test_comm.cpp
/// \brief Simulated-communicator tests: SFC partitioning, real ghost-layer
/// accounting, halo-exchange data movement, and the scaling-point model.

#include <gtest/gtest.h>

#include <memory>

#include "comm/partition.hpp"
#include "common/rng.hpp"
#include "octree/refinement.hpp"

namespace dgr::comm {
namespace {

using mesh::Mesh;
using oct::Domain;
using oct::Octree;

Mesh make_mesh(int level = 2) { return Mesh(Octree::uniform(level), Domain{1.0}); }

Mesh make_adaptive() {
  Domain dom{8.0};
  return Mesh(oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.01}, 5}}, 2),
              dom);
}

TEST(Partition, SplitsCoverAllOctants) {
  Mesh m = make_mesh();
  for (int ranks : {1, 2, 4, 7}) {
    const auto part = partition_mesh(m, ranks);
    ASSERT_EQ(part.splits.size(), std::size_t(ranks + 1));
    EXPECT_EQ(part.splits.front(), 0u);
    EXPECT_EQ(part.splits.back(), m.num_octants());
    double total_work = 0;
    for (double w : part.work) total_work += w;
    EXPECT_DOUBLE_EQ(total_work, double(m.num_octants()));
  }
}

TEST(Partition, RankOfIsConsistentWithSplits) {
  Mesh m = make_mesh();
  const auto part = partition_mesh(m, 4);
  for (OctIndex e = 0; e < OctIndex(m.num_octants()); ++e) {
    const int r = part.rank_of(e);
    EXPECT_GE(std::size_t(e), part.owned_begin(r));
    EXPECT_LT(std::size_t(e), part.owned_end(r));
  }
}

TEST(Partition, UniformMeshBalanced) {
  Mesh m = make_mesh(2);  // 64 octants
  const auto part = partition_mesh(m, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(part.work[r], 16.0);
}

TEST(Partition, SingleRankHasNoGhosts) {
  Mesh m = make_mesh();
  const auto part = partition_mesh(m, 1);
  EXPECT_EQ(part.ghost_octants[0], 0u);
  EXPECT_EQ(part.send_bytes[0], 0u);
  EXPECT_EQ(part.neighbor_ranks[0], 0);
}

TEST(Partition, GhostLayerGrowsSublinearly) {
  // Surface-to-volume: per-rank ghost fraction grows with ranks, but the
  // ghost layer stays well below the owned octant count for few ranks.
  Mesh m = make_adaptive();
  const auto p2 = partition_mesh(m, 2);
  const auto p8 = partition_mesh(m, 8);
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(p2.ghost_octants[r], 0u);
    EXPECT_LT(p2.ghost_octants[r], m.num_octants() / 2);
  }
  std::size_t g2 = 0, g8 = 0;
  for (auto g : p2.ghost_octants) g2 += g;
  for (auto g : p8.ghost_octants) g8 += g;
  EXPECT_GT(g8, g2);  // more ranks -> more total halo
}

TEST(HaloExchange, BytesMatchGhostCount) {
  Mesh m = make_mesh();
  const auto part = partition_mesh(m, 4);
  std::vector<Real> field(m.num_dofs(), 1.5);
  const std::uint64_t bytes =
      halo_exchange_field(m, part, field.data(), nullptr);
  std::uint64_t ghosts = 0;
  for (auto g : part.ghost_octants) ghosts += g;
  EXPECT_EQ(bytes, ghosts * mesh::kOctPts * sizeof(Real));
}

TEST(HaloExchange, GhostValuesMatchGlobalField) {
  Mesh m = make_adaptive();
  Rng rng(31);
  std::vector<Real> field(m.num_dofs());
  for (auto& v : field) v = rng.uniform(-1, 1);
  const auto part = partition_mesh(m, 3);
  std::vector<std::vector<Real>> ghosts;
  halo_exchange_field(m, part, field.data(), &ghosts);
  // Re-derive each rank's ghost list in the same (sorted) order and compare
  // the exchanged payload against direct octant loads.
  for (int r = 0; r < 3; ++r) {
    std::set<OctIndex> gset;
    for (std::size_t e = part.splits[r]; e < part.splits[r + 1]; ++e)
      for (OctIndex nb : m.adjacency(OctIndex(e)))
        if (part.rank_of(nb) != r) gset.insert(nb);
    ASSERT_EQ(ghosts[r].size(), gset.size() * mesh::kOctPts);
    std::size_t off = 0;
    for (OctIndex g : gset) {
      Real u[mesh::kOctPts];
      m.load_octant(field.data(), g, u);
      for (int i = 0; i < mesh::kOctPts; ++i)
        EXPECT_EQ(ghosts[r][off + i], u[i]);
      off += mesh::kOctPts;
    }
  }
}

TEST(HaloExchange, CrossesCoarseFinePartitionBoundaries) {
  // A refined octree split mid-level: partition ranks so that rank
  // boundaries cut through the level transitions around the puncture, then
  // check the exchanged ghost payloads — including hanging points resolved
  // through coarse-host interpolation rules — against direct octant loads.
  Mesh m = make_adaptive();
  const auto part = partition_mesh(m, 5);

  // The partition must actually put a coarse-fine interface on a rank
  // boundary, i.e. some ghost octant differs in level from the owned
  // octant adjacent to it.
  bool cross_level_halo = false;
  for (int r = 0; r < part.ranks && !cross_level_halo; ++r)
    for (std::size_t e = part.splits[r]; e < part.splits[r + 1]; ++e)
      for (OctIndex nb : m.adjacency(OctIndex(e)))
        if (part.rank_of(nb) != r &&
            m.tree().leaf(nb).level != m.tree().leaf(OctIndex(e)).level) {
          cross_level_halo = true;
          break;
        }
  ASSERT_TRUE(cross_level_halo);

  Rng rng(77);
  std::vector<Real> field(m.num_dofs());
  for (auto& v : field) v = rng.uniform(-2, 2);
  std::vector<std::vector<Real>> ghosts;
  halo_exchange_field(m, part, field.data(), &ghosts);
  for (int r = 0; r < part.ranks; ++r) {
    std::set<OctIndex> gset;
    for (std::size_t e = part.splits[r]; e < part.splits[r + 1]; ++e)
      for (OctIndex nb : m.adjacency(OctIndex(e)))
        if (part.rank_of(nb) != r) gset.insert(nb);
    ASSERT_EQ(ghosts[r].size(), gset.size() * mesh::kOctPts);
    std::size_t off = 0;
    for (OctIndex g : gset) {
      Real u[mesh::kOctPts];
      m.load_octant(field.data(), g, u);  // resolves hanging rules
      for (int i = 0; i < mesh::kOctPts; ++i)
        EXPECT_EQ(ghosts[r][off + i], u[i]) << "rank " << r << " oct " << g;
      off += mesh::kOctPts;
    }
  }
}

TEST(ExchangeMaps, InteriorOctantsReadOnlyLocalDofs) {
  // The overlap schedule computes interior octants while the halo is in
  // flight — their full unzip read set (own points, adjacent sources,
  // hanging-rule terms) must be rank-local.
  Mesh m = make_adaptive();
  const auto part = partition_mesh(m, 4);
  const auto maps = build_exchange_maps(m, part);
  for (int r = 0; r < 4; ++r) {
    for (OctIndex b : maps[r].interior) {
      std::vector<OctIndex> sources = {b};
      for (OctIndex e : m.adjacency(b)) sources.push_back(e);
      for (OctIndex e : sources) {
        const std::int64_t* o2n = m.o2n(e);
        for (int i = 0; i < mesh::kOctPts; ++i) {
          if (o2n[i] >= 0) {
            EXPECT_EQ(part.rank_of(m.dof_owner(o2n[i])), r);
          } else {
            for (const auto& [dof, w] :
                 m.hanging_rules()[-(o2n[i] + 1)].terms) {
              (void)w;
              EXPECT_EQ(part.rank_of(m.dof_owner(dof)), r);
            }
          }
        }
      }
    }
    // Boundary octants exist wherever the rank has peers.
    if (!maps[r].peers.empty()) {
      EXPECT_FALSE(maps[r].boundary.empty());
    }
  }
}

TEST(Scaling, PerfectOnOneRank) {
  Mesh m = make_mesh();
  const auto part = partition_mesh(m, 1);
  const auto pt = scaling_point(m, part, 1e-4, perf::nvlink());
  EXPECT_NEAR(pt.efficiency, 1.0, 1e-12);
  EXPECT_EQ(pt.t_comm, 0.0);
}

TEST(Scaling, EfficiencyDecaysWithRanks) {
  Mesh m = make_adaptive();
  double prev_eff = 1.1;
  for (int ranks : {2, 4, 8, 16}) {
    const auto part = partition_mesh(m, ranks);
    const auto pt = scaling_point(m, part, 1e-5, perf::nvlink());
    EXPECT_LE(pt.efficiency, 1.01);
    EXPECT_GT(pt.efficiency, 0.05);
    EXPECT_LT(pt.efficiency, prev_eff + 0.05) << ranks;
    prev_eff = pt.efficiency;
  }
}

TEST(Scaling, FasterNetworkHigherEfficiency) {
  Mesh m = make_adaptive();
  const auto part = partition_mesh(m, 8);
  const auto fast = scaling_point(m, part, 1e-5, perf::nvlink());
  const auto slow = scaling_point(m, part, 1e-5, perf::infiniband());
  EXPECT_GE(fast.efficiency, slow.efficiency);
}

}  // namespace
}  // namespace dgr::comm
