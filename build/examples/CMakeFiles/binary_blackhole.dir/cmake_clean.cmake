file(REMOVE_RECURSE
  "CMakeFiles/binary_blackhole.dir/binary_blackhole.cpp.o"
  "CMakeFiles/binary_blackhole.dir/binary_blackhole.cpp.o.d"
  "binary_blackhole"
  "binary_blackhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_blackhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
