#include "exec_space/bssn_sweeps.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dgr::exec_space {

using bssn::BssnState;
using bssn::kNumVars;
using mesh::kPatchPts;

void sweep_octant_to_patch(const ExecSpace& es, const mesh::Mesh& mesh,
                           const Real* const* fields, OctIndex begin,
                           OctIndex end, Real* patches,
                           mesh::UnzipMethod method, OpCounts* counts) {
  const LaunchSpec spec{"octant-to-patch", "unzip",
                        std::uint64_t(end - begin) * kNumVars, 0};
  es.range_for(spec, kNumVars, /*grain=*/4, counts,
               [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
                 mesh.unzip_slice(fields, kNumVars, static_cast<int>(vb),
                                  static_cast<int>(ve), begin, end, patches,
                                  method, &c);
               });
}

void sweep_rhs(const ExecSpace& es, const mesh::Mesh& mesh,
               const RhsDispatch& d, OctIndex begin, OctIndex end,
               const Real* patch_in, Real* patch_out, OpCounts* counts) {
  const Real half = mesh.domain().half_extent;
  const LaunchSpec spec{"bssn-rhs", "rhs", std::uint64_t(end - begin), 0};
  es.team_for(
      spec, end - begin, /*grain=*/4, counts,
      [&](const TeamMember& tm, std::int64_t eb, std::int64_t ee,
          OpCounts& c) {
        bssn::DerivWorkspace& ws = (*d.ws)[static_cast<std::size_t>(tm.lane())];
        for (OctIndex e = begin + static_cast<OctIndex>(eb);
             e < begin + static_cast<OctIndex>(ee); ++e) {
          const Real* pin[kNumVars];
          Real* pout[kNumVars];
          for (int v = 0; v < kNumVars; ++v) {
            const std::size_t off =
                patch_offset(e - begin, v, kNumVars, kPatchPts);
            pin[v] = patch_in + off;
            pout[v] = patch_out + off;
          }
          if (d.fused) {
            codegen::bssn_rhs_patch_fused(
                pin, pout, mesh.patch_geom(e), half, *d.params, *d.fused,
                (*d.fws)[static_cast<std::size_t>(tm.lane())], &c,
                tm.vector_width());
          } else {
            bssn::bssn_rhs_patch(pin, pout, mesh.patch_geom(e), half,
                                 *d.params, ws, &c);
          }
        }
      });
}

void sweep_patch_to_octant(const ExecSpace& es, const mesh::Mesh& mesh,
                           const Real* patches, OctIndex begin, OctIndex end,
                           Real* const* fields, OpCounts* counts) {
  const LaunchSpec spec{"patch-to-octant", "zip",
                        std::uint64_t(end - begin) * kNumVars, 0};
  es.range_for(spec, end - begin, /*grain=*/8, counts,
               [&](std::int64_t eb, std::int64_t ee, OpCounts& c) {
                 mesh.zip(patches + patch_offset(eb, 0, kNumVars, kPatchPts),
                          kNumVars, begin + static_cast<OctIndex>(eb),
                          begin + static_cast<OctIndex>(ee), fields, &c);
               });
}

void sweep_rk4_axpy(const ExecSpace& es, BssnState& y, Real s,
                    const BssnState& x, const BssnState* base,
                    OpCounts* counts) {
  const std::size_t nd = y.num_dofs();
  const LaunchSpec spec{"axpy", "update", nd, 0};
  es.range_for(spec, kNumVars, /*grain=*/1, counts,
               [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
                 for (int v = static_cast<int>(vb); v < static_cast<int>(ve);
                      ++v) {
                   Real* yv = y.field(v);
                   const Real* xv = x.field(v);
                   if (base) {
                     const Real* bv = base->field(v);
                     for (std::size_t d = 0; d < nd; ++d)
                       yv[d] = bv[d] + s * xv[d];
                   } else {
                     for (std::size_t d = 0; d < nd; ++d) yv[d] += s * xv[d];
                   }
                 }
                 const std::uint64_t n = std::uint64_t(ve - vb) * nd;
                 c.flops += 2 * n;
                 c.bytes_read += 2 * n * sizeof(Real);
                 c.bytes_written += n * sizeof(Real);
               });
}

void sweep_dense_save_all(const ExecSpace& es, const BssnState& u,
                          BssnState& dense_u0, OpCounts* counts) {
  const std::size_t nd = u.num_dofs();
  const LaunchSpec spec{"subcycle-save", "update", nd, 0};
  es.range_for(spec, kNumVars, /*grain=*/1, counts,
               [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
                 for (int v = static_cast<int>(vb); v < static_cast<int>(ve);
                      ++v) {
                   const Real* uv = u.field(v);
                   std::copy(uv, uv + nd, dense_u0.field(v));
                 }
                 const std::uint64_t n = std::uint64_t(ve - vb) * nd;
                 c.bytes_read += n * sizeof(Real);
                 c.bytes_written += n * sizeof(Real);
               });
}

namespace {

/// RK4 stage-time fractions (stage j evaluates at t0 + c_j dt).
constexpr Real kStageC[4] = {0.0, 0.5, 0.5, 1.0};

/// Per-depth recipe for one stage-fill sweep: how DOFs owned at that depth
/// are written into the stage buffer.
struct FillCoef {
  enum Mode : int {
    kCopy,    ///< stage = state (stepping depth, first stage)
    kRkAxpy,  ///< stage = state + a * k_prev (stepping depth, stages 2-4)
    kDense,   ///< stage = dense output on (u0, state, k1) at the stage time
  };
  Mode mode = kCopy;
  Real a = 0;
  fd::DenseCoeffs dc;
};

}  // namespace

void subcycle_step_depth(const ExecSpace& es, const mesh::SubcycleIndex& idx,
                         int depth, Real fine_dt, Real time,
                         const SubcycleState& st, const SubcycleRhsFn& rhs,
                         OpCounts* counts,
                         const std::function<void()>& update_begin,
                         const std::function<void()>& update_end) {
  const int slot = depth - idx.dmin;
  const Real dt = fine_dt * static_cast<Real>(1 << (idx.dmax - depth));
  const auto& runs = idx.runs[static_cast<std::size_t>(slot)];
  BssnState& state = *st.state;
  BssnState& stage = *st.stage;
  BssnState* k = st.k;
  const std::size_t nd = state.num_dofs();
  const std::uint8_t* dd = idx.dof_depth.data();
  const int nslots = idx.depths();

  for (int j = 0; j < 4; ++j) {
    // Per-depth fill recipe at this stage's time. The stepping depth uses
    // the exact RK4 stage arithmetic of rk4_step; every other depth is
    // dense-output-evaluated at ts. Depths coarser than `depth` already
    // stepped this substep (coarsest-first order), so their retained
    // interval covers ts — pure interpolation. Finer depths are
    // extrapolated by at most two of their intervals (the 2:1 balance
    // bound); depths further away get fill values the restricted RHS
    // never reads (unzip halos only reach adjacent levels).
    const Real ts = time + kStageC[j] * dt;
    std::vector<FillCoef> tab(static_cast<std::size_t>(nslots));
    for (int s = 0; s < nslots; ++s) {
      FillCoef& f = tab[static_cast<std::size_t>(s)];
      if (s == slot) {
        if (j == 0) {
          f.mode = FillCoef::kCopy;
        } else {
          f.mode = FillCoef::kRkAxpy;
          f.a = kStageC[j] * dt;
        }
      } else {
        f.mode = FillCoef::kDense;
        const Real dtp =
            fine_dt * static_cast<Real>(1 << (idx.dmax - (idx.dmin + s)));
        if ((*st.dense_mode)[static_cast<std::size_t>(s)] == kDenseModeQuad)
          f.dc = fd::dense_output_quadratic(
              (ts - (*st.dense_t0)[static_cast<std::size_t>(s)]) / dtp, dtp);
        else
          f.dc = fd::dense_output_linear(
              ts - (*st.dense_t0)[static_cast<std::size_t>(s)]);
      }
    }

    const BssnState* kprev = (j > 0) ? &k[j - 1] : nullptr;
    if (update_begin) update_begin();
    es.range_for(
        LaunchSpec{"subcycle-fill", "update", nd, 0}, kNumVars, /*grain=*/1,
        counts, [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
          for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
            Real* sv = stage.field(v);
            const Real* uv = state.field(v);
            const Real* u0v = st.dense_u0->field(v);
            const Real* k1v = st.dense_k1->field(v);
            const Real* kv = kprev ? kprev->field(v) : nullptr;
            for (std::size_t d = 0; d < nd; ++d) {
              const FillCoef& f = tab[static_cast<std::size_t>(
                  static_cast<int>(dd[d]) - idx.dmin)];
              switch (f.mode) {
                case FillCoef::kCopy:
                  sv[d] = uv[d];
                  break;
                case FillCoef::kRkAxpy:
                  sv[d] = uv[d] + f.a * kv[d];
                  break;
                case FillCoef::kDense:
                  sv[d] = fd::dense_output_eval(f.dc, u0v[d], uv[d], k1v[d]);
                  break;
              }
            }
          }
          const std::uint64_t n = std::uint64_t(ve - vb) * nd;
          c.flops += 5 * n;
          c.bytes_read += 4 * n * sizeof(Real);
          c.bytes_written += n * sizeof(Real);
        });
    if (update_end) update_end();

    rhs(stage, k[j], runs);

    if (j == 0 && !idx.uniform()) {
      // Retain this depth's step-start state and first RHS for its dense
      // output, before the final update overwrites the state.
      if (update_begin) update_begin();
      es.range_for(
          LaunchSpec{"subcycle-save", "update", nd, 0}, kNumVars,
          /*grain=*/1, counts,
          [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
            for (int v = static_cast<int>(vb); v < static_cast<int>(ve);
                 ++v) {
              Real* u0v = st.dense_u0->field(v);
              Real* k1v = st.dense_k1->field(v);
              const Real* uv = state.field(v);
              const Real* kv = k[0].field(v);
              for (std::size_t d = 0; d < nd; ++d) {
                if (static_cast<int>(dd[d]) != depth) continue;
                u0v[d] = uv[d];
                k1v[d] = kv[d];
              }
            }
            const std::uint64_t n = std::uint64_t(ve - vb) * nd;
            c.bytes_read += 2 * n * sizeof(Real);
            c.bytes_written += 2 * n * sizeof(Real);
          });
      if (update_end) update_end();
    }
  }

  // u += dt/6 k1 + dt/3 k2 + dt/3 k3 + dt/6 k4, restricted to this depth's
  // DOFs, as four sequential per-element AXPYs — the same rounding order
  // as rk4_step's four axpy sweeps.
  const Real a16 = dt / 6.0;
  const Real a13 = dt / 3.0;
  if (update_begin) update_begin();
  es.range_for(
      LaunchSpec{"subcycle-update", "update", nd, 0}, kNumVars, /*grain=*/1,
      counts, [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* uv = state.field(v);
          const Real* k0v = k[0].field(v);
          const Real* k1v = k[1].field(v);
          const Real* k2v = k[2].field(v);
          const Real* k3v = k[3].field(v);
          for (std::size_t d = 0; d < nd; ++d) {
            if (static_cast<int>(dd[d]) != depth) continue;
            uv[d] += a16 * k0v[d];
            uv[d] += a13 * k1v[d];
            uv[d] += a13 * k2v[d];
            uv[d] += a16 * k3v[d];
          }
        }
        const std::uint64_t n = std::uint64_t(ve - vb) * nd;
        c.flops += 8 * n;
        c.bytes_read += 5 * n * sizeof(Real);
        c.bytes_written += n * sizeof(Real);
      });
  if (update_end) update_end();

  if (!idx.uniform()) {
    (*st.dense_t0)[static_cast<std::size_t>(slot)] = time;
    (*st.dense_mode)[static_cast<std::size_t>(slot)] = kDenseModeQuad;
  }
}

}  // namespace dgr::exec_space
