#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/obs.hpp"

namespace dgr::serve {

namespace {

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 0; i < 16; ++i) s[i] = digits[(v >> (60 - 4 * i)) & 0xf];
  return s;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer went away; nothing useful left to do
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

Server::Server(ServeConfig cfg) : cfg_(std::move(cfg)) {
  driver_ = std::make_unique<ensemble::EnsembleDriver>(cfg_.ensemble);
}

Server::~Server() {
  request_shutdown();
  if (acceptor_.joinable()) wait();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(cfg_.socket_path.c_str());
}

void Server::start() {
  DGR_CHECK_MSG(listen_fd_ < 0, "server already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DGR_CHECK_MSG(listen_fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DGR_CHECK_MSG(cfg_.socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " << cfg_.socket_path);
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(cfg_.socket_path.c_str());  // stale socket from a previous run
  DGR_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind(" << cfg_.socket_path << "): " << std::strerror(errno));
  DGR_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                "listen(): " << std::strerror(errno));
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::request_shutdown() { draining_.store(true); }

void Server::wait() {
  std::unique_lock<std::mutex> lk(stats_m_);
  drained_cv_.wait(lk, [&] { return drain_done_; });
}

void Server::reap_handlers() {
  // Joining happens outside conn_m_ so a handler finishing right now can
  // still take the lock to enqueue its id; anything in finished_ has
  // already done so and is past its last statement.
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(conn_m_);
    if (finished_.empty()) return;
    for (const std::thread::id id : finished_) {
      for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
        if (it->get_id() == id) {
          done.push_back(std::move(*it));
          handlers_.erase(it);
          break;
        }
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done) t.join();
}

void Server::accept_loop() {
  while (!draining_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    reap_handlers();
    if (r <= 0) continue;  // timeout or EINTR: re-check draining_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A receive timeout keeps handlers responsive to drain even when the
    // client holds the connection open without sending.
    timeval tv{0, 200 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    {
      std::lock_guard<std::mutex> lk(stats_m_);
      ++stats_.connections;
    }
    obs::count("serve.connections");
    std::lock_guard<std::mutex> lk(conn_m_);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
  // Drain: no new connections; every admitted request finishes; handler
  // threads exit once their clients disconnect or go idle.
  driver_->drain();
  {
    // Join outside conn_m_: a handler exiting right now needs the lock to
    // enqueue its id in finished_.
    std::vector<std::thread> rest;
    {
      std::lock_guard<std::mutex> lk(conn_m_);
      rest.swap(handlers_);
    }
    for (std::thread& t : rest) t.join();
    std::lock_guard<std::mutex> lk(conn_m_);
    finished_.clear();
  }
  stopped_.store(true);
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    stats_.drained = true;
    drain_done_ = true;
  }
  obs::gauge_set("serve.drained", 1.0);
  // A gracefully drained daemon leaves the same last-moments timeline a
  // crashed one would (dump() no-ops when disabled or nothing recorded).
  if (cfg_.flightrec_on_drain) obs::flightrec::dump(cfg_.flightrec_path);
  drained_cv_.notify_all();
}

std::string Server::stats_line() {
  const auto ds = driver_->stats();
  const auto cs = driver_->cache().stats();
  Stats ss;
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    ss = stats_;
  }
  std::string s = "STATS";
  s += " requests=" + std::to_string(ss.requests);
  s += " shed=" + std::to_string(ss.shed);
  s += " errors=" + std::to_string(ss.errors);
  s += " connections=" + std::to_string(ss.connections);
  s += " pending=" + std::to_string(pending_.load());
  s += " evolutions=" + std::to_string(ds.evolutions);
  s += " coalesced=" + std::to_string(ds.coalesced);
  s += " jobs_small=" + std::to_string(ds.jobs_small);
  s += " jobs_large=" + std::to_string(ds.jobs_large);
  s += " hits_mem=" + std::to_string(cs.hits_memory);
  s += " hits_disk=" + std::to_string(cs.hits_disk);
  s += " misses=" + std::to_string(cs.misses);
  s += " evictions=" + std::to_string(cs.evictions);
  s += " spills=" + std::to_string(cs.spills);
  s += " cache_bytes=" + std::to_string(cs.bytes);
  // Deduplication rate over admitted EVOLVEs: cache hits (mem + disk) and
  // coalesced joins all avoided an evolution.
  const std::uint64_t hits = cs.hits_memory + cs.hits_disk + ds.coalesced;
  s += " hit_rate=" +
       jsonu::num(ss.requests ? double(hits) / double(ss.requests) : 0.0);
  s += " inflight=" + std::to_string(pending_.load());
  s += " queue_depth=" + std::to_string(driver_->queue_depth());
  s += " draining=" + std::to_string(draining_.load() ? 1 : 0);
  return s;
}

std::string Server::metrics_text() {
  obs::MetricsRegistry* reg = obs::metrics();
  if (!reg) return "END";
  // Point-in-time gauges ride along with the accumulated counters and
  // latency histograms, so one METRICS scrape answers "how loaded is it
  // right now" as well as "how has it been behaving".
  const auto ds = driver_->stats();
  const auto cs = driver_->cache().stats();
  const std::uint64_t hits = cs.hits_memory + cs.hits_disk + ds.coalesced;
  std::uint64_t requests;
  {
    std::lock_guard<std::mutex> lk(stats_m_);
    requests = stats_.requests;
  }
  reg->set("serve.hit_rate",
           requests ? double(hits) / double(requests) : 0.0);
  reg->set("serve.inflight", double(pending_.load()));
  reg->set("serve.queue_depth", double(driver_->queue_depth()));
  return reg->prometheus() + "END";
}

std::string Server::dump_response(const std::string& path) {
  std::string dest = path.empty() ? cfg_.flightrec_path : path;
  if (dest.empty()) dest = obs::flightrec::dump_path();
  if (!obs::flightrec::dump(dest))
    return "ERR flightrec dump failed (disabled, empty, or unwritable)";
  return "OK flightrec=" + dest;
}

void Server::handle_connection(int fd) {
  // One queued response per request line, written strictly in request
  // order after the whole batch has been submitted to the driver.
  struct Pending {
    bool is_ticket = false;
    std::string text;  // immediate responses (PONG, STATS, BUSY, ERR, ...)
    ensemble::EnsembleDriver::Ticket ticket;
    bool full = false;
    double t_submit_us = 0;
  };

  std::string buf;
  bool open = true;
  while (open && !stopped_.load()) {
    // Only read from the socket while no complete line is buffered: a
    // pipelined burst larger than max_batch is answered batch by batch
    // from buf without ever blocking in recv() on a client that is
    // waiting for those very responses.
    while (buf.find('\n') == std::string::npos) {
      char chunk[8192];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (draining_.load() || stopped_.load()) {
          open = false;  // idle client during drain: close
          break;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {  // EOF or hard error
        open = false;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (!open) break;

    // Batch: up to max_batch complete lines from buf; the remainder is
    // processed on the next iteration before any further recv().
    std::vector<std::string> lines;
    const int max_batch = cfg_.max_batch < 1 ? 1 : cfg_.max_batch;
    std::size_t nl;
    while (static_cast<int>(lines.size()) < max_batch &&
           (nl = buf.find('\n')) != std::string::npos) {
      lines.push_back(buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }

    std::vector<Pending> batch;
    batch.reserve(lines.size());
    int evolves_submitted = 0;
    for (const std::string& line : lines) {
      Pending p;
      Request req;
      try {
        req = parse_request(line, cfg_.defaults);
      } catch (const Error& e) {
        p.text = std::string("ERR ") + e.what();
        {
          std::lock_guard<std::mutex> lk(stats_m_);
          ++stats_.errors;
        }
        obs::count("serve.errors");
        batch.push_back(std::move(p));
        continue;
      }
      switch (req.kind) {
        case Request::Kind::kPing:
          p.text = "PONG";
          break;
        case Request::Kind::kStats:
          p.text = stats_line();
          break;
        case Request::Kind::kMetrics:
          p.text = metrics_text();
          break;
        case Request::Kind::kDump:
          p.text = dump_response(req.dump_path);
          break;
        case Request::Kind::kQuit:
          open = false;
          break;
        case Request::Kind::kShutdown:
          p.text = "OK draining";
          request_shutdown();
          break;
        case Request::Kind::kEvolve: {
          if (draining_.load()) {
            p.text = "DRAINING";
            break;
          }
          // Admission control: shed with an explicit reject once the
          // unanswered-request window is full. fetch_add + re-check keeps
          // the bound exact under concurrent handlers.
          const int depth = pending_.fetch_add(1);
          if (depth >= cfg_.queue_max) {
            pending_.fetch_sub(1);
            p.text = "BUSY depth=" + std::to_string(depth);
            {
              std::lock_guard<std::mutex> lk(stats_m_);
              ++stats_.shed;
            }
            obs::count("serve.shed");
            break;
          }
          {
            std::lock_guard<std::mutex> lk(stats_m_);
            ++stats_.requests;
          }
          obs::count("serve.requests");
          p.is_ticket = true;
          p.full = req.full;
          p.t_submit_us = monotonic_us();
          p.ticket = driver_->submit(req.cfg);
          obs::count((std::string("serve.source.") +
                      ensemble::source_name(p.ticket.source))
                         .c_str());
          ++evolves_submitted;
          break;
        }
      }
      if (!open) break;
      batch.push_back(std::move(p));
    }
    if (evolves_submitted > 0) obs::observe("serve.batch", evolves_submitted);

    std::string out;
    for (Pending& p : batch) {
      if (!p.is_ticket) {
        if (!p.text.empty()) out += p.text + "\n";
        continue;
      }
      std::string resp;
      try {
        const auto wf = p.ticket.future.get();
        const double wait_us = monotonic_us() - p.t_submit_us;
        obs::observe("serve.wait_us", wait_us);
        // Latency quantiles split by cache outcome (the METRICS view of
        // the service's cache effectiveness). Literal names: the flight
        // recorder and registry keep the pointers/strings they're given.
        switch (p.ticket.source) {
          case ensemble::Source::kComputed:
            obs::observe_hist_timing("serve.latency_us.miss", wait_us);
            break;
          case ensemble::Source::kCoalesced:
            obs::observe_hist_timing("serve.latency_us.join", wait_us);
            break;
          case ensemble::Source::kMemory:
            obs::observe_hist_timing("serve.latency_us.mem", wait_us);
            break;
          case ensemble::Source::kDisk:
            obs::observe_hist_timing("serve.latency_us.disk", wait_us);
            break;
        }
        const std::string blob = ensemble::serialize(*wf);
        resp = "OK hash=" + hex16(p.ticket.hash) +
               " source=" + ensemble::source_name(p.ticket.source) +
               " wait_us=" + jsonu::num(wait_us) +
               " samples=" + std::to_string(wf->psi4_22.times.size()) +
               " digest=" + hex16(ensemble::fnv1a64(blob));
        if (p.full) {
          resp += "\nSAMPLES " + std::to_string(wf->psi4_22.times.size());
          for (std::size_t i = 0; i < wf->psi4_22.times.size(); ++i) {
            // Bit patterns in hex: the textual stream is bitwise-faithful.
            resp += "\n" +
                    hex16(std::bit_cast<std::uint64_t>(
                        wf->psi4_22.times[i])) +
                    " " +
                    hex16(std::bit_cast<std::uint64_t>(
                        wf->psi4_22.values[i].real())) +
                    " " +
                    hex16(std::bit_cast<std::uint64_t>(
                        wf->psi4_22.values[i].imag()));
          }
          resp += "\nEND";
        }
      } catch (const std::exception& e) {
        resp = std::string("ERR evolve failed: ") + e.what();
        {
          std::lock_guard<std::mutex> lk(stats_m_);
          ++stats_.errors;
        }
        obs::count("serve.errors");
      }
      pending_.fetch_sub(1);
      out += resp + "\n";
    }
    if (!out.empty()) send_all(fd, out);
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_m_);
  finished_.push_back(std::this_thread::get_id());
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lk(stats_m_);
  return stats_;
}

}  // namespace dgr::serve
