#include "solver/regrid.hpp"

#include <cmath>

#include "common/error.hpp"
#include "mesh/interp.hpp"
#include "mesh/patch.hpp"
#include "obs/obs.hpp"

namespace dgr::solver {

using mesh::kOctPts;
using mesh::kR;
using mesh::oct_idx;

namespace {

/// Cubic Lagrange weights of the 4 coarse skeleton nodes {0,2,4,6} at fine
/// position t (grid index units 0..6).
void skeleton_weights(Real t, Real w[4]) {
  const Real nodes[4] = {0, 2, 4, 6};
  for (int m = 0; m < 4; ++m) {
    Real num = 1, den = 1;
    for (int j = 0; j < 4; ++j) {
      if (j == m) continue;
      num *= (t - nodes[j]);
      den *= (nodes[m] - nodes[j]);
    }
    w[m] = num / den;
  }
}

}  // namespace

Real octant_detail(const Real* u) {
  // Precompute the 7x4 prolongation rows once.
  static const auto rows = [] {
    std::array<std::array<Real, 4>, kR> r{};
    for (int t = 0; t < kR; ++t) skeleton_weights(Real(t), r[t].data());
    return r;
  }();
  Real detail = 0;
  for (int k = 0; k < kR; ++k)
    for (int j = 0; j < kR; ++j)
      for (int i = 0; i < kR; ++i) {
        if (i % 2 == 0 && j % 2 == 0 && k % 2 == 0) continue;  // skeleton
        Real s = 0;
        for (int kk = 0; kk < 4; ++kk) {
          const Real wz = rows[k][kk];
          if (wz == 0) continue;
          for (int jj = 0; jj < 4; ++jj) {
            const Real wy = rows[j][jj];
            if (wy == 0) continue;
            for (int ii = 0; ii < 4; ++ii) {
              const Real wx = rows[i][ii];
              if (wx == 0) continue;
              s += wx * wy * wz * u[oct_idx(2 * ii, 2 * jj, 2 * kk)];
            }
          }
        }
        detail = std::max(detail, std::abs(u[oct_idx(i, j, k)] - s));
      }
  return detail;
}

std::vector<Real> compute_octant_errors(const mesh::Mesh& mesh,
                                        const bssn::BssnState& state,
                                        const RegridConfig& cfg) {
  const std::size_t n = mesh.num_octants();
  std::vector<Real> err(n, 0.0);
  Real u[kOctPts];
  for (OctIndex e = 0; e < static_cast<OctIndex>(n); ++e) {
    Real m = 0;
    for (int v : cfg.vars) {
      mesh.load_octant(state.field(v), e, u);
      m = std::max(m, octant_detail(u));
    }
    err[e] = m;
  }
  return err;
}

std::vector<oct::RemeshFlag> flags_from_errors(const mesh::Mesh& mesh,
                                               const std::vector<Real>& err,
                                               const RegridConfig& cfg) {
  DGR_CHECK(err.size() == mesh.num_octants());
  std::vector<oct::RemeshFlag> flags(err.size(), oct::RemeshFlag::kKeep);
  for (std::size_t e = 0; e < err.size(); ++e) {
    const int level = mesh.tree().leaf(static_cast<OctIndex>(e)).level;
    if (err[e] > cfg.eps && level < cfg.max_level)
      flags[e] = oct::RemeshFlag::kRefine;
    else if (err[e] < cfg.eps * cfg.coarsen_factor && level > cfg.min_level)
      flags[e] = oct::RemeshFlag::kCoarsen;
  }
  return flags;
}

std::shared_ptr<mesh::Mesh> regrid_mesh(const mesh::Mesh& mesh,
                                        const bssn::BssnState& state,
                                        const RegridConfig& cfg) {
  obs::ScopedSpan span("regrid_mesh", "solver");
  const auto err = compute_octant_errors(mesh, state, cfg);
  const auto flags = flags_from_errors(mesh, err, cfg);
  bool any = false;
  for (auto f : flags)
    if (f != oct::RemeshFlag::kKeep) any = true;
  if (!any) return nullptr;
  oct::Octree next = mesh.tree().remesh(flags);
  if (next == mesh.tree()) return nullptr;
  return std::make_shared<mesh::Mesh>(std::move(next), mesh.domain());
}

}  // namespace dgr::solver
