#pragma once
/// \file network.hpp
/// \brief Latency–bandwidth (alpha–beta) interconnect models used to
/// convert measured halo-exchange volumes into modeled communication time
/// for the scaling studies (Figs. 17, 18, 20).

#include <cstdint>

namespace dgr::perf {

struct NetworkModel {
  const char* name;
  double alpha;  ///< per-message latency, seconds
  double beta;   ///< per-byte cost, seconds (1 / bandwidth)

  double time(std::uint64_t bytes, int messages = 1) const {
    return alpha * messages + beta * static_cast<double>(bytes);
  }
};

/// NVLink 3 between A100s on one node (~250 GB/s effective per direction).
inline NetworkModel nvlink() { return {"NVLink3", 5.0e-6, 1.0 / 250.0e9}; }

/// HDR InfiniBand between nodes (~23 GB/s effective).
inline NetworkModel infiniband() { return {"HDR-IB", 2.0e-6, 1.0 / 23.0e9}; }

/// Two-level interconnect: ranks on the same node talk over `intra`
/// (NVLink-class), ranks on different nodes over `inter` (IB-class). The
/// link for a message is chosen by rank distance given `ranks_per_node`,
/// which is how the Summit/Frontera runs of Figs. 17-20 actually route.
struct HierarchicalNetworkModel {
  NetworkModel intra = nvlink();
  NetworkModel inter = infiniband();
  int ranks_per_node = 4;

  bool same_node(int a, int b) const {
    return a / ranks_per_node == b / ranks_per_node;
  }
  const NetworkModel& link(int a, int b) const {
    return same_node(a, b) ? intra : inter;
  }
  double time(int src, int dst, std::uint64_t bytes, int messages = 1) const {
    return link(src, dst).time(bytes, messages);
  }

  /// Binary-tree allreduce over `ranks` ranks: ceil(log2 P) reduce rounds up
  /// the tree plus the same number of broadcast rounds down, each paying one
  /// message of `bytes` over the slowest link the round crosses (inter-node
  /// once the job spans more than one node).
  double allreduce_time(int ranks, std::uint64_t bytes) const {
    if (ranks <= 1) return 0.0;
    int rounds = 0;
    for (int p = 1; p < ranks; p <<= 1) ++rounds;
    const NetworkModel& nm = ranks > ranks_per_node ? inter : intra;
    return 2.0 * rounds * nm.time(bytes, 1);
  }
};

/// A single-level network expressed as a hierarchy (both tiers identical) —
/// lets flat-interconnect studies reuse the hierarchical-model code paths.
inline HierarchicalNetworkModel flat_network(const NetworkModel& m) {
  return {m, m, 1 << 30};
}

/// The default GPU-cluster model of the scaling figures: 4 A100s per node
/// on NVLink, HDR-IB across nodes.
inline HierarchicalNetworkModel gpu_cluster(int ranks_per_node = 4) {
  return {nvlink(), infiniband(), ranks_per_node};
}

}  // namespace dgr::perf
