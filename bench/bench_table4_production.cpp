/// \file bench_table4_production.cpp
/// \brief Regenerates Table IV: production BBH wall-clock estimates for
/// q = 1, 2, 4, 8. The paper-scale octrees (domain 800 M, finest levels
/// 13-16) are actually built; per-octant-per-stage cost comes from the
/// simulated GPU pipeline's op counts through the A100 model; a fixed
/// utilization factor calibrated on the q = 1 row folds in regrid, I/O,
/// extraction and multi-GPU overheads (documented substitution).

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "perf/production.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Table IV", "production BBH wall-clock, q = 1, 2, 4, 8");
  bench::Reporter rep("table4_production", argc, argv);

  // Calibrate per-octant-stage modeled cost on a small real pipeline run.
  auto m = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
  simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
  bssn::BssnState s;
  bench::init_bbh_state(*m, 1.0, 2.0, s);
  gpu.upload(s);
  gpu.rk4_step();
  const double step_model = gpu.runtime().modeled_total_seconds();
  const double per_oct_stage = step_model / (4.0 * m->num_octants());
  std::printf("  calibrated A100 cost: %.2f us per octant per RK stage\n",
              per_oct_stage * 1e6);

  struct PaperRow {
    double q, dx1, dx2, T, steps_k, hours;
    int gpus;
  };
  const PaperRow paper[] = {{1, 1.62e-2, 1.62e-2, 748, 183, 87, 4},
                            {2, 8.13e-3, 3.25e-2, 600, 252, 96, 4},
                            {4, 4.06e-3, 3.25e-2, 602, 506, 129, 4},
                            {8, 2.03e-3, 3.25e-2, 1400, 4000, 388, 8}};

  // Utilization calibrated so the q = 1 row matches the paper's 87 h; the
  // same factor is then applied to every configuration (the test of the
  // model is the *relative* growth with q).
  const auto cfgs = perf::table4_configs();
  const auto est1 = perf::estimate_production(cfgs[0], per_oct_stage, 1.0);
  const double utilization = est1.wall_hours / paper[0].hours;
  std::printf("  utilization factor (q=1 calibration): %.4f\n\n", utilization);

  std::printf(
      "  q | dx_min        | GPUs | T(M)  | timesteps         | wall (hrs)\n"
      "    | paper   ours  |      |       | paper    ours     | paper  ours\n");
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const auto est =
        perf::estimate_production(cfgs[i], per_oct_stage, utilization);
    const std::string q = "q" + std::to_string(int(paper[i].q));
    rep.pair("dx_min_" + q, paper[i].dx1, est.dx_min);
    rep.pair("timesteps_k_" + q, paper[i].steps_k, est.timesteps / 1e3, "K");
    rep.pair("wall_hours_" + q, paper[i].hours, est.wall_hours, "h");
    std::printf(
        "  %1.0f | %-7.1e %-6.1e| %-4d | %-5.0f | %-8.0fK %-8.0fK | %-6.0f "
        "%-6.0f\n",
        paper[i].q, paper[i].dx1, est.dx_min, cfgs[i].gpus, cfgs[i].horizon,
        paper[i].steps_k, est.timesteps / 1e3, paper[i].hours,
        est.wall_hours);
  }
  bench::note("octrees built at paper scale (the q=8 grid reaches level 16);");
  bench::note("the headline shape is cost growth with q: more timesteps from");
  bench::note("the finer dx_min dominate the wall-clock growth.");
  return 0;
}
