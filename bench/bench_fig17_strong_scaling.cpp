/// \file bench_fig17_strong_scaling.cpp
/// \brief Regenerates Fig. 17: strong scaling of 5 RK4 steps on a fixed
/// binary-black-hole grid over 1-16 GPUs (and the CPU-node series). The
/// SFC partitioner and ghost layers are real; per-rank kernel time comes
/// from the A100 (resp. EPYC) model on real per-octant op counts and the
/// interconnect from the alpha-beta models. Paper efficiencies: GPU
/// 97/89/64 % at 4/8/16; CPU 93/79/66 %.

#include <cstdio>

#include "bench_common.hpp"
#include "comm/partition.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main() {
  using namespace dgr;
  bench::header("Fig. 17", "strong scaling, 5 RK4 steps, fixed BBH grid");

  auto m = bench::bbh_mesh(2.0, 16.0, 2.0, 3, 5);
  std::printf("  grid: %zu octants, %.1fM unknowns (paper: 257M)\n",
              m->num_octants(), m->num_dofs() * 24 / 1e6);

  // Per-octant cost per RHS evaluation from one measured pipeline pass.
  simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
  bssn::BssnState s;
  bench::init_bbh_state(*m, 2.0, 2.0, s);
  gpu.upload(s);
  gpu.rk4_step();
  const double gpu_oct = gpu.runtime().modeled_total_with(perf::a100()) /
                         4.0 / double(m->num_octants());
  const double cpu_oct =
      gpu.runtime().modeled_total_with(perf::epyc7763_node()) / 4.0 /
      double(m->num_octants());

  struct PaperEff {
    int ranks;
    double gpu, cpu;
  };
  const PaperEff paper[] = {
      {1, 100, 100}, {2, -1, -1}, {4, 97, 93}, {8, 89, 79}, {16, 64, 66}};

  std::printf(
      "\n  GPUs | t_total (s) | t_comm (s) | GPU eff (paper)  | CPU eff "
      "(paper)\n");
  // Single-rank references.
  const double t1_gpu = m->num_octants() * gpu_oct;
  const double t1_cpu = m->num_octants() * cpu_oct;
  for (const auto& p : paper) {
    const auto part = comm::partition_mesh(*m, p.ranks);
    // 20 RHS evaluations (5 RK4 steps) — the per-eval point scales linearly.
    const auto gpu_pt =
        comm::scaling_point(*m, part, gpu_oct, perf::nvlink(), t1_gpu);
    const auto cpu_pt =
        comm::scaling_point(*m, part, cpu_oct, perf::infiniband(), t1_cpu);
    char pg[16], pc[16];
    if (p.gpu < 0) {
      std::snprintf(pg, sizeof pg, "%s", "-");
      std::snprintf(pc, sizeof pc, "%s", "-");
    } else {
      std::snprintf(pg, sizeof pg, "%.0f%%", p.gpu);
      std::snprintf(pc, sizeof pc, "%.0f%%", p.cpu);
    }
    std::printf(
        "  %-4d | %-11.4f | %-10.5f | %5.1f%%  (%-5s) | %5.1f%%  (%-5s)\n",
        p.ranks, 20 * gpu_pt.t_total, 20 * gpu_pt.t_comm,
        100 * gpu_pt.efficiency, pg, 100 * cpu_pt.efficiency, pc);
  }
  bench::note("efficiency loss = SFC load imbalance (real) + halo traffic");
  bench::note("(real bytes through the alpha-beta interconnect model); the");
  bench::note("drop beyond 8 ranks mirrors the paper's 64-66% at 16.");
  return 0;
}
