#pragma once
/// \file machine_model.hpp
/// \brief The slow–fast memory performance model of §III-D and the machine
/// parameter sets used throughout the paper's analysis (A100, dual-socket
/// EPYC 7763, Frontera Cascade Lake). Kernel op counts measured by the
/// simulated GPU runtime feed these models to produce modeled kernel times
/// and roofline points (Table III, Fig. 14, Figs. 15-18, Fig. 20).

#include <algorithm>
#include <cmath>
#include <string>

#include "common/counters.hpp"
#include "common/types.hpp"

namespace dgr::perf {

struct MachineModel {
  std::string name;
  double tau_f;     ///< seconds per double-precision flop
  double tau_m;     ///< seconds per byte of slow-memory traffic
  double cache_l2;  ///< fast-memory (L2) capacity, bytes
  double cache_reg; ///< register-file capacity, bytes
  double ell;       ///< relative cost of L2<->register traffic (< 1)
  double h2d_bw;    ///< host<->device bandwidth, bytes/s (0 if N/A)

  /// xi = 1/C_L + ell/C_R (paper §III-D).
  double xi() const { return 1.0 / cache_l2 + ell / cache_reg; }

  double peak_gflops() const { return 1e-9 / tau_f; }
  double peak_bandwidth_gbs() const { return 1e-9 / tau_m; }

  /// T_inf(f, m) = f tau_f + m tau_m  (infinite fast memory).
  double time_infinite_cache(const OpCounts& c) const {
    return static_cast<double>(c.flops) * tau_f +
           static_cast<double>(c.bytes_moved()) * tau_m;
  }

  /// T(f, m) = m tau_m max(1, m xi) + f tau_f  (finite fast memory).
  double time_finite_cache(const OpCounts& c) const {
    const double m = static_cast<double>(c.bytes_moved());
    const double penalty = std::max(1.0, m * xi());
    return m * tau_m * penalty + static_cast<double>(c.flops) * tau_f;
  }

  /// Attainable GFlops/s at arithmetic intensity Q (classic roofline).
  double roofline_gflops(double ai) const {
    return std::min(peak_gflops(), ai * peak_bandwidth_gbs());
  }

  /// AI below which a kernel is bandwidth-bound. The paper: with
  /// tau_f/tau_m = 0.16, kernels with Q < 6.25 are bandwidth limited.
  double ridge_ai() const { return tau_m / tau_f; }
};

/// NVIDIA A100 (paper §III-D): tau_f = 1.0e-13 s, tau_m = 6.4e-13 s,
/// C_L = 40 MB, C_R = 27 MB, ell ~ 1/4, xi ~ 4e-8.
MachineModel a100();

/// Two-socket AMD EPYC 7763 node (128 cores): ~3.5 TFlop/s DP aggregate,
/// ~400 GB/s DRAM bandwidth.
MachineModel epyc7763_node();

/// One Frontera Cascade Lake node (56 cores, Intel 8280): ~3.1 TFlop/s DP,
/// ~140 GB/s.
MachineModel frontera_node();

/// The host this library actually runs on, calibrated at startup from a
/// small STREAM-like and FMA-loop measurement (used to convert measured
/// seconds into model-comparable numbers).
MachineModel calibrated_host();

}  // namespace dgr::perf
