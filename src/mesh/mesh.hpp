#pragma once
/// \file mesh.hpp
/// \brief The AMR grid layer (paper §III-C, §IV-A): deduplicated
/// vertex-centered grid points over a balanced linear octree, hanging-point
/// interpolation rules, the O2N / O2P maps, and the octant-to-patch /
/// patch-to-octant operations in both the loop-over-patches (baseline) and
/// loop-over-octants (proposed) variants.
///
/// Grid layout. Each leaf octant carries a 7^3 vertex-centered block whose
/// boundary points are shared with neighbors ("duplicate points removed").
/// Points of a fine octant that lie on an interface to a coarser neighbor
/// but not on the coarse grid are "hanging": they are not degrees of
/// freedom; their values are obtained by degree-6 tensor-product Lagrange
/// interpolation of the coarse host octant's points (resolved transitively
/// to true DOFs at mesh build time).

#include <array>
#include <cstdint>
#include <vector>

#include "common/counters.hpp"
#include "common/types.hpp"
#include "mesh/patch.hpp"
#include "octree/octree.hpp"
#include "octree/refinement.hpp"

namespace dgr::mesh {

namespace detail {
/// Record kept per unique grid point during mesh construction.
struct PointRecord {
  bool hanging = false;
  std::int64_t dof = -1;   // assigned for non-hanging points
  std::int64_t hidx = -1;  // assigned for hanging points
  int owner_level = -1;    // finest octant level seeing this point
  OctIndex owner = kInvalidOct;
  oct::TreeNode host;      // coarse host octant (hanging points only)
};
}  // namespace detail

/// Strategy for computing padding zones (paper §IV-A, Fig. 7).
enum class UnzipMethod {
  kLoopOverOctants,  ///< proposed: each source scatters, one interpolation
  kLoopOverPatches,  ///< baseline: each patch gathers, redundant interpolation
};

/// One resolved hanging-point rule: value = sum_i weight_i * field[dof_i].
struct HangingRule {
  std::vector<std::pair<DofIndex, Real>> terms;
};

/// Physical geometry of an octant's 13^3 patch.
struct PatchGeom {
  std::array<Real, 3> origin;  ///< physical position of patch index (0,0,0)
  Real h;                      ///< physical grid spacing
};

class Mesh {
 public:
  /// Builds all maps for the given 2:1-balanced tree. Throws if the tree is
  /// not balanced (the precondition of the octant-to-patch cases).
  Mesh(oct::Octree tree, oct::Domain domain);

  const oct::Octree& tree() const { return tree_; }
  const oct::Domain& domain() const { return domain_; }

  std::size_t num_octants() const { return tree_.size(); }
  std::size_t num_dofs() const { return dof_pu_.size(); }
  std::size_t num_hanging() const { return hanging_rules_.size(); }

  /// Physical coordinates of a DOF.
  std::array<Real, 3> dof_position(DofIndex d) const;
  /// True if the DOF lies on the outer domain boundary.
  bool dof_on_boundary(DofIndex d) const;
  /// Point-unit coordinates of a DOF.
  const std::array<Pu, 3>& dof_pu(DofIndex d) const { return dof_pu_[d]; }

  /// Physical grid spacing of octant e.
  Real octant_spacing(OctIndex e) const;
  /// Smallest spacing on the mesh (sets the global timestep).
  Real finest_spacing() const;
  /// Patch geometry (origin/h) of octant e.
  PatchGeom patch_geom(OctIndex e) const;

  /// O2N map entry encoding: value >= 0 is a DOF index; value < 0 encodes
  /// hanging-rule index -(value+1).
  const std::int64_t* o2n(OctIndex e) const { return &o2n_[e * kOctPts]; }

  /// Unique neighbor octants over all 26 directions (the O2P adjacency).
  const std::vector<OctIndex>& adjacency(OctIndex e) const {
    return adjacency_[e];
  }

  /// Sample a scalar functor f(x,y,z) into a zipped field (size num_dofs()).
  void sample(const std::function<Real(Real, Real, Real)>& f,
              Real* field) const;

  /// Load the 7^3 values of octant e from a zipped field, resolving hanging
  /// points via their interpolation rules.
  void load_octant(const Real* field, OctIndex e, Real* out /*343*/) const;

  /// Octant-to-patch for octants [begin, end) and nvar fields.
  /// fields[v] points at the zipped data of variable v (num_dofs() reals);
  /// patches is laid out [(e - begin) * nvar + v] * kPatchPts, x fastest.
  /// Out-of-domain padding is filled by degree-4 extrapolation.
  void unzip(const Real* const* fields, int nvar, OctIndex begin, OctIndex end,
             Real* patches, UnzipMethod method = UnzipMethod::kLoopOverOctants,
             OpCounts* counts = nullptr) const;

  /// Variable slice of unzip: computes only variables [vbegin, vend) into
  /// the *same* patches layout (full nvar stride, relative to `begin`).
  /// Per-variable work is independent, so slices over a partition of
  /// [0, nvar) write disjoint patch regions and their OpCounts sum exactly
  /// to the full unzip's counts — the property the parallel host pipeline
  /// (src/exec) relies on for bitwise-stable modeled kernel times.
  void unzip_slice(const Real* const* fields, int nvar, int vbegin, int vend,
                   OctIndex begin, OctIndex end, Real* patches,
                   UnzipMethod method = UnzipMethod::kLoopOverOctants,
                   OpCounts* counts = nullptr) const;

  /// Patch-to-octant for octants [begin, end): copy interior (non-padding)
  /// points of each patch back to the zipped fields. Each DOF is written
  /// only by its owner octant (finest touching octant, SFC-first tie-break),
  /// so the result is deterministic.
  void zip(const Real* patches, int nvar, OctIndex begin, OctIndex end,
           Real* const* fields, OpCounts* counts = nullptr) const;

  /// Convenience: full-mesh unzip/zip roundtrip helpers used by tests.
  void unzip_all(const Real* const* fields, int nvar, Real* patches,
                 UnzipMethod method = UnzipMethod::kLoopOverOctants,
                 OpCounts* counts = nullptr) const;

  /// The resolved hanging rules (exposed for tests).
  const std::vector<HangingRule>& hanging_rules() const {
    return hanging_rules_;
  }

  /// Owner octant of each DOF (exposed for partitioning / comm layers).
  OctIndex dof_owner(DofIndex d) const { return dof_owner_[d]; }

  /// Flops spent resolving hanging points when loading octant e (2 per
  /// interpolation-rule term) — charged to the octant-to-patch counters.
  std::uint64_t hanging_flops(OctIndex e) const { return hanging_flops_[e]; }

 private:
  void build_points();
  void build_hanging_rules();
  void build_adjacency();

  /// Scatter source octant e into target b's patch (same / coarser / finer
  /// geometry resolved by exact integer arithmetic). `u_e` holds e's 343
  /// values; `fine_e` its 13^3 prolongation (nullptr if not needed).
  void scatter_into_patch(OctIndex b, OctIndex e, const Real* u_e,
                          const Real* fine_e, Real* patch,
                          OpCounts* counts) const;

  /// Gather variant for one target patch (loop-over-patches baseline).
  void gather_patch(const Real* field, OctIndex b, Real* patch,
                    OpCounts* counts) const;

  /// Degree-4 extrapolation into out-of-domain patch planes.
  void fill_domain_boundary(OctIndex b, Real* patch, OpCounts* counts) const;

  oct::Octree tree_;
  oct::Domain domain_;

  std::vector<std::int64_t> o2n_;              // num_octants * 343
  std::vector<std::array<Pu, 3>> dof_pu_;      // per DOF
  std::vector<OctIndex> dof_owner_;            // per DOF
  std::vector<HangingRule> hanging_rules_;     // per hanging point
  std::vector<std::array<Pu, 3>> hanging_pu_;  // per hanging point
  // Raw hanging info needed to build rules (host octant per hanging point).
  std::vector<oct::TreeNode> hanging_host_;
  std::vector<std::vector<OctIndex>> adjacency_;  // per octant
  // Per-octant write set for zip: (local 343 index, dof).
  std::vector<std::vector<std::pair<std::int32_t, DofIndex>>> write_set_;
  std::vector<std::uint64_t> hanging_flops_;  // per octant
  // Transient point map, alive between build_points() and
  // build_hanging_rules() only.
  std::unordered_map<std::uint64_t, detail::PointRecord> pmap_for_rules_;
};

}  // namespace dgr::mesh
