
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gw/extract.cpp" "src/gw/CMakeFiles/dgr_gw.dir/extract.cpp.o" "gcc" "src/gw/CMakeFiles/dgr_gw.dir/extract.cpp.o.d"
  "/root/repo/src/gw/psi4.cpp" "src/gw/CMakeFiles/dgr_gw.dir/psi4.cpp.o" "gcc" "src/gw/CMakeFiles/dgr_gw.dir/psi4.cpp.o.d"
  "/root/repo/src/gw/quadrature.cpp" "src/gw/CMakeFiles/dgr_gw.dir/quadrature.cpp.o" "gcc" "src/gw/CMakeFiles/dgr_gw.dir/quadrature.cpp.o.d"
  "/root/repo/src/gw/strain.cpp" "src/gw/CMakeFiles/dgr_gw.dir/strain.cpp.o" "gcc" "src/gw/CMakeFiles/dgr_gw.dir/strain.cpp.o.d"
  "/root/repo/src/gw/swsh.cpp" "src/gw/CMakeFiles/dgr_gw.dir/swsh.cpp.o" "gcc" "src/gw/CMakeFiles/dgr_gw.dir/swsh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bssn/CMakeFiles/dgr_bssn.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dgr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/dgr_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/dgr_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
