#pragma once
/// \file bssn_ctx.hpp
/// \brief The BSSN evolution context — the CPU analogue of the paper's
/// `bssnSolverCtx` and the host side of Algorithm 1. Drives the
/// halo-consistent unzip -> RHS -> zip -> AXPY pipeline with RK4 time
/// stepping, per-phase cost breakdown (Fig. 20), and error-driven
/// regridding.

#include <functional>
#include <memory>

#include "bssn/constraints.hpp"
#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "codegen/fused_rhs.hpp"
#include "common/counters.hpp"
#include "common/timer.hpp"
#include "exec_space/exec_space.hpp"
#include "mesh/mesh.hpp"
#include "mesh/subcycle_index.hpp"

namespace dgr::solver {

/// Which patch-RHS kernel the pipeline runs.
enum class RhsKernel {
  kCompiled,         ///< bssn_rhs_patch: staged compiled C++ (default)
  kStagedFusedSimd,  ///< fused SIMD path over the staged+CSE program
};

struct SolverConfig {
  bssn::BssnParams bssn;
  Real cfl = 0.25;  ///< Courant factor lambda (paper §III-A)
  /// Octants processed per pipeline chunk (bounds patch-buffer memory; the
  /// GPU analogue launches one block per octant).
  int chunk_octants = 64;
  mesh::UnzipMethod unzip_method = mesh::UnzipMethod::kLoopOverOctants;
  RhsKernel rhs_kernel = RhsKernel::kCompiled;
  /// SIMD pack width for the fused kernel: 0 = the runtime width selected
  /// by DGR_SIMD (see simd_active_width), else 1 or 4. Results are bitwise
  /// identical at every width and thread count.
  int simd_width = 0;
};

/// Per-phase accumulated wall-clock cost of the evolution pipeline; the
/// breakdown reported in the paper's Fig. 20.
struct PhaseBreakdown {
  PhaseTimer unzip;    ///< octant-to-patch (incl. halo/hanging resolution)
  PhaseTimer rhs;      ///< derivative + algebraic stages
  PhaseTimer zip;      ///< patch-to-octant
  PhaseTimer update;   ///< RK stage AXPY combinations
  void reset() {
    unzip.reset();
    rhs.reset();
    zip.reset();
    update.reset();
  }
  double total() const {
    return unzip.total_seconds() + rhs.total_seconds() + zip.total_seconds() +
           update.total_seconds();
  }
};

/// One contiguous run of octant indices [first, second).
using OctRange = std::pair<OctIndex, OctIndex>;

/// The chunked unzip -> patch-RHS -> zip pipeline over arbitrary contiguous
/// octant runs, factored out of BssnCtx so per-rank mesh views (src/dist)
/// run the exact same arithmetic over octant subsets. Restricting the runs
/// is bitwise-safe: unzip scatters into each target patch in a fixed order
/// (self, then adjacency order) independent of chunk composition, and zip
/// writes each DOF only from its owner octant. DOFs owned by octants
/// outside the runs are left untouched in the output state.
class RhsPipeline {
 public:
  /// `space` is where the unzip/RHS/zip sweeps execute (default: the
  /// process host space, honoring DGR_EXEC_SPACE). The pipeline arithmetic
  /// is bitwise identical on every backend; only instrumentation differs.
  RhsPipeline(std::shared_ptr<const mesh::Mesh> mesh, SolverConfig config,
              exec_space::ExecSpace space = exec_space::ExecSpace::host());

  const SolverConfig& config() const { return config_; }
  const exec_space::ExecSpace& space() const { return space_; }

  /// Swap the mesh (after a regrid); buffers are reused.
  void set_mesh(std::shared_ptr<const mesh::Mesh> mesh);

  /// Evaluate the BSSN RHS of `u` into `rhs` over the given runs.
  void compute(const bssn::BssnState& u, bssn::BssnState& rhs,
               const std::vector<OctRange>& runs, PhaseBreakdown* phases,
               OpCounts* counts);

 private:
  std::shared_ptr<const mesh::Mesh> mesh_;
  SolverConfig config_;
  exec_space::ExecSpace space_;
  /// One derivative workspace per execution lane: the RHS sweep body
  /// indexes this by TeamMember::lane().
  std::vector<bssn::DerivWorkspace> ws_;
  /// Fused-kernel state (only populated for RhsKernel::kStagedFusedSimd):
  /// the compiled staged+CSE program and one SoA workspace per pool lane.
  std::unique_ptr<codegen::CompiledKernel> fused_kernel_;
  std::vector<codegen::FusedWorkspace> fws_;
  std::vector<Real> patch_in_, patch_out_;
};

class BssnCtx {
 public:
  /// `space` is the execution space every sweep of the context (RHS
  /// pipeline, RK4 AXPYs, sub-cycled fills) runs in; the default is the
  /// process host space, honoring the DGR_EXEC_SPACE override.
  BssnCtx(std::shared_ptr<mesh::Mesh> mesh, SolverConfig config,
          exec_space::ExecSpace space = exec_space::ExecSpace::host());

  const mesh::Mesh& mesh() const { return *mesh_; }
  const SolverConfig& config() const { return config_; }
  bssn::BssnState& state() { return state_; }
  const bssn::BssnState& state() const { return state_; }
  Real time() const { return time_; }
  std::size_t steps_taken() const { return steps_; }

  /// Global timestep from the finest spacing (lambda * h_min).
  Real suggested_dt() const;

  /// Evaluate the BSSN RHS of `u` into `rhs` over the whole mesh (chunked
  /// unzip -> patch RHS -> zip).
  void compute_rhs(const bssn::BssnState& u, bssn::BssnState& rhs);

  /// One explicit RK4 step with global timestepping (paper §III-A).
  void rk4_step(Real dt);
  void rk4_step() { rk4_step(suggested_dt()); }

  /// Depth-local sub-cycled stepping (solver/subcycle.cpp). One call
  /// advances every octant by one coarse step = subcycle_index().cycle()
  /// fine substeps of `fine_dt`: at each substep the due depth suffix
  /// steps coarsest-first, each depth running a full RK4 restricted to its
  /// octant runs, with every other depth's DOFs dense-output-interpolated
  /// to the stage times (fd/dense_output.hpp). Bitwise deterministic at
  /// any thread count and SIMD width; on a uniform mesh the arithmetic
  /// degenerates to exactly rk4_step(fine_dt).
  void subcycle_cycle(Real fine_dt);

  /// The per-depth octant/DOF decomposition of the current mesh (built
  /// lazily, invalidated by remesh()).
  const mesh::SubcycleIndex& subcycle_index();

  /// Advance n steps.
  void evolve_steps(int n);

  /// Constraint norms of the current state.
  bssn::ConstraintNorms constraint_norms(
      const std::vector<std::array<Real, 3>>& excise = {},
      Real excise_radius = 0.0) const;

  const PhaseBreakdown& breakdown() const { return phases_; }
  PhaseBreakdown& breakdown() { return phases_; }
  const OpCounts& op_counts() const { return counts_; }
  void reset_instrumentation() {
    phases_.reset();
    counts_ = OpCounts{};
  }

  /// Replace the mesh (after a regrid): transfers the current state onto
  /// the new mesh by degree-6 interpolation.
  void remesh(std::shared_ptr<mesh::Mesh> new_mesh);

  /// Restart support: overwrite the clock and step counter when resuming
  /// from a checkpoint (the state itself is restored through state(), on a
  /// context built over solver::checkpoint_mesh). Evolution resumed this
  /// way is bitwise identical to the uninterrupted run — the round-trip
  /// determinism contract of the checkpoint tests.
  void restore(Real time, std::size_t steps) {
    time_ = time;
    steps_ = steps;
  }

 private:
  /// Full RK4 step of the depth-d octant runs against dense-output ghost
  /// data, advancing only depth-d DOFs (defined in subcycle.cpp).
  void subcycle_step_depth(int depth, Real fine_dt);
  /// First-order dense bootstrap: one full-mesh RHS at the current time.
  void subcycle_bootstrap();

  std::shared_ptr<mesh::Mesh> mesh_;
  SolverConfig config_;
  exec_space::ExecSpace space_;
  bssn::BssnState state_;
  bssn::BssnState k_[4], stage_;
  Real time_ = 0;
  std::size_t steps_ = 0;
  PhaseBreakdown phases_;
  OpCounts counts_;
  RhsPipeline pipeline_;

  // Depth-local sub-cycling state (allocated on first subcycle_cycle; a
  // global-dt step or a remesh invalidates the retained dense stages).
  std::unique_ptr<mesh::SubcycleIndex> subidx_;
  bssn::BssnState dense_u0_, dense_k1_;
  std::vector<Real> dense_t0_;            // per depth, absolute step start
  std::vector<std::uint8_t> dense_mode_;  // per depth: linear or quadratic
  bool dense_ready_ = false;
};

/// Transfer all 24 fields of `src` (on `src_mesh`) to a state on
/// `dst_mesh`, by exact copy where points coincide and degree-6
/// interpolation elsewhere.
bssn::BssnState transfer_state(const mesh::Mesh& src_mesh,
                               const bssn::BssnState& src,
                               const mesh::Mesh& dst_mesh);

}  // namespace dgr::solver
