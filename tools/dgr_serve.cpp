/// \file dgr_serve.cpp
/// \brief The waveform-service daemon: serves the dgr_serve line protocol
/// (src/serve) over a Unix-domain socket, backed by the ensemble driver
/// and the content-addressed waveform cache.
///
/// Configuration precedence: built-in default < DGR_SERVE_* environment <
/// command-line flag. Every numeric knob is strictly parsed (the
/// exec::parse_thread_count discipline) — garbage is a startup error, not
/// a silent zero:
///
///   --socket PATH / DGR_SERVE_SOCKET        socket path
///   --concurrency N / DGR_SERVE_CONCURRENCY max concurrent small evolutions
///   --cache-mb N / DGR_SERVE_CACHE_MB       in-memory cache budget (MiB)
///   --queue-max N / DGR_SERVE_QUEUE_MAX     admission-control bound
///   --spill-dir PATH / DGR_SERVE_SPILL_DIR  on-disk spill directory
///   --threads N                             host pool lanes (else DGR_THREADS)
///   --json PATH                             metrics snapshot on exit
///   --flightrec PATH / DGR_FLIGHTREC_PATH   flight-recorder dump path
///
/// SIGINT/SIGTERM (or a client SHUTDOWN) begin a graceful drain: admitted
/// requests finish, new ones get DRAINING, then the process exits 0 after
/// writing the metrics snapshot.
///
/// Telemetry. The daemon's registry opts into wall-clock timing, so the
/// METRICS verb exposes live latency quantiles by cache outcome. The
/// flight recorder runs always-on (DGR_FLIGHTREC=off disables): a crash
/// (SIGSEGV/SIGABRT), a completed drain, or a client DUMP leaves a
/// Perfetto-loadable flightrec.json of the last moments per thread.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int) { g_signal = 1; }

const char* arg_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a value\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgr;

  serve::ServeConfig cfg;
  std::string json_path;
  try {
    // Environment first, flags override.
    if (const char* e = std::getenv("DGR_SERVE_SOCKET")) cfg.socket_path = e;
    if (const char* e = std::getenv("DGR_SERVE_SPILL_DIR"))
      cfg.ensemble.spill_dir = e;
    cfg.ensemble.concurrency = static_cast<int>(
        serve::env_count("DGR_SERVE_CONCURRENCY", 0, 1, 4096));
    cfg.ensemble.cache_bytes =
        static_cast<std::size_t>(
            serve::env_count("DGR_SERVE_CACHE_MB", 64, 1, 1 << 20))
        << 20;
    cfg.queue_max = static_cast<int>(
        serve::env_count("DGR_SERVE_QUEUE_MAX", 64, 1, 1 << 20));

    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--socket") {
        cfg.socket_path = arg_value(argc, argv, i, "--socket");
      } else if (a == "--spill-dir") {
        cfg.ensemble.spill_dir = arg_value(argc, argv, i, "--spill-dir");
      } else if (a == "--concurrency") {
        cfg.ensemble.concurrency = static_cast<int>(serve::parse_count(
            arg_value(argc, argv, i, "--concurrency"), "--concurrency", 1,
            4096));
      } else if (a == "--cache-mb") {
        cfg.ensemble.cache_bytes =
            static_cast<std::size_t>(serve::parse_count(
                arg_value(argc, argv, i, "--cache-mb"), "--cache-mb", 1,
                1 << 20))
            << 20;
      } else if (a == "--queue-max") {
        cfg.queue_max = static_cast<int>(
            serve::parse_count(arg_value(argc, argv, i, "--queue-max"),
                               "--queue-max", 1, 1 << 20));
      } else if (a == "--threads") {
        exec::ThreadPool::set_global_threads(exec::parse_thread_count(
            arg_value(argc, argv, i, "--threads"), "--threads"));
      } else if (a == "--json") {
        json_path = arg_value(argc, argv, i, "--json");
      } else if (a == "--flightrec") {
        cfg.flightrec_path = arg_value(argc, argv, i, "--flightrec");
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", a.c_str());
        return 2;
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  obs::MetricsRegistry metrics;
  // A daemon is a single long-lived run, not a determinism comparison:
  // opt into wall-clock latency histograms for the METRICS exposition.
  metrics.enable_timing(true);
  obs::install_metrics(&metrics);

  // Crash dumps and the post-drain dump share the configured destination.
  cfg.flightrec_on_drain = true;
  obs::flightrec::install_crash_handler(
      cfg.flightrec_path.empty() ? nullptr : cfg.flightrec_path.c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    serve::Server server(cfg);
    server.start();
    std::printf("dgr_serve listening on %s (threads=%d concurrency=%d "
                "cache=%zuMiB queue_max=%d spill=%s)\n",
                cfg.socket_path.c_str(), exec::lanes(),
                server.driver().config().concurrency,
                server.driver().config().cache_bytes >> 20, cfg.queue_max,
                cfg.ensemble.spill_dir.empty()
                    ? "off"
                    : cfg.ensemble.spill_dir.c_str());
    std::fflush(stdout);

    // The signal handler only sets a flag; this watcher turns it into a
    // graceful drain on the main thread.
    while (!server.draining()) {
      if (g_signal) server.request_shutdown();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.wait();
    const auto ss = server.stats();
    std::printf("dgr_serve drained: %llu requests, %llu shed, %llu errors\n",
                static_cast<unsigned long long>(ss.requests),
                static_cast<unsigned long long>(ss.shed),
                static_cast<unsigned long long>(ss.errors));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    obs::install_metrics(nullptr);
    return 1;
  }

  obs::install_metrics(nullptr);
  if (!json_path.empty()) {
    if (metrics.write_file(json_path))
      std::printf("dgr_serve wrote metrics to %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "dgr_serve: cannot write %s\n", json_path.c_str());
  }
  return 0;
}
