/// \file test_gw.cpp
/// \brief Gravitational-wave extraction tests: sphere quadrature exactness,
/// spin-weighted spherical harmonics (closed forms + orthonormality), mode
/// decomposition, and Psi4 identities (flat space, Schwarzschild type-D).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bssn/initial_data.hpp"
#include "gw/extract.hpp"
#include "gw/psi4.hpp"
#include "gw/quadrature.hpp"
#include "gw/swsh.hpp"

namespace dgr::gw {
namespace {

constexpr Real kPi = 3.14159265358979323846;

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

TEST(GaussLegendre, NodesAndWeights) {
  std::vector<Real> x, w;
  gauss_legendre(5, x, w);
  Real sum = 0;
  for (Real wi : w) sum += wi;
  EXPECT_NEAR(sum, 2.0, 1e-13);
  // Integrates x^8 on [-1,1] exactly (degree 9 rule): 2/9.
  Real s8 = 0;
  for (int i = 0; i < 5; ++i) s8 += w[i] * std::pow(x[i], 8);
  EXPECT_NEAR(s8, 2.0 / 9.0, 1e-12);
  // Symmetric nodes.
  EXPECT_NEAR(x[0] + x[4], 0.0, 1e-13);
  EXPECT_NEAR(x[2], 0.0, 1e-13);
}

class QuadratureExactness
    : public ::testing::TestWithParam<std::pair<const char*, SphereQuadrature (*)()>> {};

SphereQuadrature make_gauss8() { return gauss_product(8); }

TEST_P(QuadratureExactness, LowDegreeMoments) {
  const SphereQuadrature q = GetParam().second();
  std::vector<Real> ones(q.size(), 1.0), x2(q.size()), x2y2(q.size()),
      xy(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto& n = q.points[i];
    x2[i] = n[0] * n[0];
    x2y2[i] = n[0] * n[0] * n[1] * n[1];
    xy[i] = n[0] * n[1];
  }
  EXPECT_NEAR(q.integrate(ones), 4 * kPi, 1e-10);
  EXPECT_NEAR(q.integrate(x2), 4 * kPi / 3, 1e-10);
  EXPECT_NEAR(q.integrate(xy), 0.0, 1e-10);
  EXPECT_NEAR(q.integrate(x2y2), 4 * kPi / 15, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, QuadratureExactness,
    ::testing::Values(std::make_pair("lebedev26", &lebedev_26),
                      std::make_pair("gauss8", &make_gauss8)),
    [](const auto& info) { return info.param.first; });

TEST(Quadrature, Lebedev6IntegratesDegree3) {
  const SphereQuadrature q = lebedev_6();
  EXPECT_EQ(q.size(), 6u);
  std::vector<Real> x2(q.size()), x3(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    x2[i] = q.points[i][0] * q.points[i][0];
    x3[i] = std::pow(q.points[i][0], 3);
  }
  EXPECT_NEAR(q.integrate(x2), 4 * kPi / 3, 1e-12);
  EXPECT_NEAR(q.integrate(x3), 0.0, 1e-12);
}

TEST(Quadrature, Lebedev26PointsOnSphere) {
  const SphereQuadrature q = lebedev_26();
  EXPECT_EQ(q.size(), 26u);
  Real wsum = 0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto& n = q.points[i];
    EXPECT_NEAR(n[0] * n[0] + n[1] * n[1] + n[2] * n[2], 1.0, 1e-13);
    wsum += q.weights[i];
  }
  EXPECT_NEAR(wsum, 4 * kPi, 1e-12);
}

TEST(Wigner, IdentityAtZeroAngle) {
  for (int l = 0; l <= 4; ++l)
    for (int m = -l; m <= l; ++m)
      for (int mp = -l; mp <= l; ++mp)
        EXPECT_NEAR(wigner_d(l, m, mp, 0.0), m == mp ? 1.0 : 0.0, 1e-12);
}

TEST(Wigner, ClosedFormD222) {
  for (Real th : {0.3, 1.1, 2.0, 2.9}) {
    const Real expect = std::pow((1 + std::cos(th)) / 2, 2);
    EXPECT_NEAR(wigner_d(2, 2, 2, th), expect, 1e-12);
  }
}

TEST(Swsh, SpinZeroReducesToY00AndY11) {
  for (Real th : {0.4, 1.3}) {
    for (Real ph : {0.0, 2.1}) {
      EXPECT_NEAR(swsh(0, 0, 0, th, ph).real(), std::sqrt(1.0 / (4 * kPi)),
                  1e-12);
      // Y11 = -sqrt(3/8pi) sin(theta) e^{i phi}.
      const Complex y11 = swsh(0, 1, 1, th, ph);
      const Complex expect =
          -std::sqrt(3.0 / (8 * kPi)) * std::sin(th) *
          Complex{std::cos(ph), std::sin(ph)};
      EXPECT_NEAR(y11.real(), expect.real(), 1e-12);
      EXPECT_NEAR(y11.imag(), expect.imag(), 1e-12);
    }
  }
}

TEST(Swsh, ClosedFormSm2Y22) {
  // -2Y22 = sqrt(5/(64 pi)) (1 + cos th)^2 e^{2 i phi}.
  for (Real th : {0.2, 1.0, 2.4}) {
    for (Real ph : {0.5, 3.0}) {
      const Complex v = swsh_m2(2, 2, th, ph);
      const Real amp = std::sqrt(5.0 / (64 * kPi)) * std::pow(1 + std::cos(th), 2);
      EXPECT_NEAR(v.real(), amp * std::cos(2 * ph), 1e-12);
      EXPECT_NEAR(v.imag(), amp * std::sin(2 * ph), 1e-12);
    }
  }
}

TEST(Swsh, OrthonormalityUnderQuadrature) {
  const SphereQuadrature q = gauss_product(12);
  struct LM {
    int l, m;
  };
  const LM modes[] = {{2, 2}, {2, 0}, {2, -1}, {3, 2}, {3, -3}, {4, 0}};
  for (const auto& a : modes)
    for (const auto& b : modes) {
      Complex s{0, 0};
      for (std::size_t i = 0; i < q.size(); ++i) {
        const auto& n = q.points[i];
        const Real th = std::acos(std::clamp(n[2], Real(-1), Real(1)));
        const Real ph = std::atan2(n[1], n[0]);
        s += q.weights[i] * swsh_m2(a.l, a.m, th, ph) *
             std::conj(swsh_m2(b.l, b.m, th, ph));
      }
      const Real expect = (a.l == b.l && a.m == b.m) ? 1.0 : 0.0;
      EXPECT_NEAR(s.real(), expect, 1e-10)
          << a.l << a.m << " vs " << b.l << b.m;
      EXPECT_NEAR(s.imag(), 0.0, 1e-10);
    }
}

TEST(Extractor, DecomposeRecoversInjectedModes) {
  WaveExtractor ex({1.0}, /*lmax=*/4, /*quad_order=*/12);
  const auto& q = ex.quadrature();
  // f = 3*(-2Y22) + (0.5 - 2i)*(-2Y3-1).
  std::vector<Complex> samples(q.size());
  const Complex c22{3.0, 0.0}, c3m1{0.5, -2.0};
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto& n = q.points[i];
    const Real th = std::acos(std::clamp(n[2], Real(-1), Real(1)));
    const Real ph = std::atan2(n[1], n[0]);
    samples[i] = c22 * swsh_m2(2, 2, th, ph) + c3m1 * swsh_m2(3, -1, th, ph);
  }
  const SphereModes modes = ex.decompose(samples);
  EXPECT_NEAR(std::abs(modes.mode(2, 2) - c22), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(modes.mode(3, -1) - c3m1), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(modes.mode(2, 0)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(modes.mode(4, 2)), 0.0, 1e-9);
}

TEST(Extractor, ModeIndexPacking) {
  EXPECT_EQ(SphereModes::mode_index(2, -2), 0);
  EXPECT_EQ(SphereModes::mode_index(2, 2), 4);
  EXPECT_EQ(SphereModes::mode_index(3, -3), 5);
  EXPECT_EQ(SphereModes::mode_index(4, 0), 12 + 4);
}

TEST(Psi4, FlatSpaceIsZero) {
  Domain dom{4.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(1), dom);
  BssnState s;
  bssn::set_minkowski(*m, s);
  std::vector<Real> re(m->num_dofs(), 1.0), im(m->num_dofs(), 1.0);
  compute_psi4_field(*m, s, bssn::BssnParams{}, re.data(), im.data());
  for (std::size_t d = 0; d < m->num_dofs(); ++d) {
    EXPECT_NEAR(re[d], 0.0, 1e-11);
    EXPECT_NEAR(im[d], 0.0, 1e-11);
  }
}

TEST(Psi4, SchwarzschildIsTypeD) {
  // For a single static puncture the radial tetrad is principal-null:
  // Psi4 must vanish up to truncation error and the small tetrad
  // misalignment from the puncture offset, while the Coulomb scale M/r^3 is
  // finite. We check |Psi4| << M/r^3 on an extraction sphere.
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(3), dom);
  BssnState s;
  bssn::set_punctures(*m, {{1.0, {0.02, 0.013, 0.009}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  WaveExtractor ex({4.0}, 2, 8);
  const auto modes = ex.extract_from_state(*m, s, bssn::BssnParams{});
  ASSERT_EQ(modes.size(), 1u);
  const Real coulomb = 1.0 / std::pow(4.0, 3);  // M/r^3 at r = 4
  for (int mm = -2; mm <= 2; ++mm)
    EXPECT_LT(std::abs(modes[0].mode(2, mm)), 0.1 * coulomb)
        << "mode m=" << mm;
}

TEST(Psi4, BinaryPunctureProducesQuadrupole) {
  // Two separated punctures are not type D w.r.t. the radial tetrad: the
  // (2,2) + (2,-2) quadrupole content must dominate odd-m modes.
  Domain dom{8.0};
  auto m = std::make_shared<Mesh>(Octree::uniform(3), dom);
  BssnState s;
  bssn::set_punctures(
      *m, {{0.5, {1.0, 0.01, 0.013}, {0, 0, 0}, {0, 0, 0}},
           {0.5, {-1.0, 0.01, 0.013}, {0, 0, 0}, {0, 0, 0}}},
      s);
  WaveExtractor ex({4.0}, 2, 8);
  const auto modes = ex.extract_from_state(*m, s, bssn::BssnParams{});
  const Real quad = std::abs(modes[0].mode(2, 2)) +
                    std::abs(modes[0].mode(2, -2)) +
                    std::abs(modes[0].mode(2, 0));
  const Real odd = std::abs(modes[0].mode(2, 1)) +
                   std::abs(modes[0].mode(2, -1));
  EXPECT_GT(quad, 1e-6);
  EXPECT_LT(odd, 0.2 * quad);
}

TEST(ModeTimeSeriesRecord, AppendsSamples) {
  ModeTimeSeries ts;
  ts.l = 2;
  ts.m = 2;
  ts.radius = 50;
  ts.append(0.0, {1.0, 0.5});
  ts.append(0.25, {0.9, 0.6});
  ASSERT_EQ(ts.times.size(), 2u);
  EXPECT_EQ(ts.values[1], (Complex{0.9, 0.6}));
}

}  // namespace
}  // namespace dgr::gw
