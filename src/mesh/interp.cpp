#include "mesh/interp.hpp"

namespace dgr::mesh {

Real Prolongation::lagrange(int m, Real t) {
  Real num = 1, den = 1;
  for (int j = 0; j < kR; ++j) {
    if (j == m) continue;
    num *= (t - j);
    den *= (m - j);
  }
  return num / den;
}

Prolongation::Prolongation() {
  for (int a = 0; a < kFine; ++a) {
    const Real t = 0.5 * a;
    for (int m = 0; m < kR; ++m) rows_[a][m] = lagrange(m, t);
    if (a % 2 == 0) {
      // Exact deltas at coincident points (avoid rounding noise).
      for (int m = 0; m < kR; ++m) rows_[a][m] = (m == a / 2) ? 1.0 : 0.0;
    }
  }
}

const Prolongation& Prolongation::get() {
  static const Prolongation p;
  return p;
}

void prolong_octant(const Real* coarse, Real* fine, OpCounts* counts) {
  const Prolongation& P = Prolongation::get();
  // Sweep 1 (x): [7,7,7] -> [13,7,7], stored x-fastest.
  Real t1[kFine * kR * kR];
  for (int k = 0; k < kR; ++k)
    for (int j = 0; j < kR; ++j)
      for (int a = 0; a < kFine; ++a) {
        const auto& w = P.row(a);
        Real s = 0;
        for (int i = 0; i < kR; ++i) s += w[i] * coarse[oct_idx(i, j, k)];
        t1[(k * kR + j) * kFine + a] = s;
      }
  // Sweep 2 (y): [13,7,7] -> [13,13,7].
  Real t2[kFine * kFine * kR];
  for (int k = 0; k < kR; ++k)
    for (int b = 0; b < kFine; ++b) {
      const auto& w = P.row(b);
      for (int a = 0; a < kFine; ++a) {
        Real s = 0;
        for (int j = 0; j < kR; ++j) s += w[j] * t1[(k * kR + j) * kFine + a];
        t2[(k * kFine + b) * kFine + a] = s;
      }
    }
  // Sweep 3 (z): [13,13,7] -> [13,13,13].
  for (int c = 0; c < kFine; ++c) {
    const auto& w = P.row(c);
    for (int b = 0; b < kFine; ++b)
      for (int a = 0; a < kFine; ++a) {
        Real s = 0;
        for (int k = 0; k < kR; ++k) s += w[k] * t2[(k * kFine + b) * kFine + a];
        fine[(c * kFine + b) * kFine + a] = s;
      }
  }
  if (counts) {
    // 2 flops (mul+add) per inner term per output point of each sweep.
    counts->flops += 2ull * kR *
                     (kFine * kR * kR + kFine * kFine * kR +
                      kFine * kFine * kFine);
  }
}

Real prolong_point_cached(const Real* coarse, int a, int b, int c,
                          OpCounts* counts) {
  const Prolongation& P = Prolongation::get();
  const auto& wa = P.row(a);
  const auto& wb = P.row(b);
  const auto& wc = P.row(c);
  Real s = 0;
  for (int k = 0; k < kR; ++k) {
    if (wc[k] == 0.0) continue;
    Real sk = 0;
    for (int j = 0; j < kR; ++j) {
      if (wb[j] == 0.0) continue;
      Real sj = 0;
      for (int i = 0; i < kR; ++i) sj += wa[i] * coarse[oct_idx(i, j, k)];
      sk += wb[j] * sj;
    }
    s += wc[k] * sk;
  }
  if (counts) counts->flops += 2ull * (kR * kR * kR + kR * kR + kR);
  return s;
}

Real prolong_point(const Real* coarse, int a, int b, int c, OpCounts* counts) {
  // Recompute the three weight rows and contract directly: this repeats the
  // row computation for every point — the redundant-interpolation cost the
  // loop-over-patches baseline pays (paper Fig. 7).
  Real wa[kR], wb[kR], wc[kR];
  for (int m = 0; m < kR; ++m) {
    wa[m] = Prolongation::lagrange(m, 0.5 * a);
    wb[m] = Prolongation::lagrange(m, 0.5 * b);
    wc[m] = Prolongation::lagrange(m, 0.5 * c);
  }
  Real s = 0;
  for (int k = 0; k < kR; ++k) {
    Real sk = 0;
    for (int j = 0; j < kR; ++j) {
      Real sj = 0;
      for (int i = 0; i < kR; ++i) sj += wa[i] * coarse[oct_idx(i, j, k)];
      sk += wb[j] * sj;
    }
    s += wc[k] * sk;
  }
  if (counts) {
    counts->flops += 3ull * kR * 13 /* row recomputation */ +
                     2ull * (kR * kR * kR + kR * kR + kR);
  }
  return s;
}

}  // namespace dgr::mesh
