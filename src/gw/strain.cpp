#include "gw/strain.hpp"

#include <array>
#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dgr::gw {

std::vector<Real> polynomial_trend(const std::vector<Real>& t,
                                   const std::vector<Real>& y, int degree) {
  DGR_CHECK(t.size() == y.size() && !t.empty());
  DGR_CHECK(degree >= 0 && degree <= 4);
  const int m = degree + 1;
  // Normal equations A c = b with A_jk = sum t^(j+k), solved by Gaussian
  // elimination with partial pivoting (tiny system). Times are shifted to
  // the interval midpoint for conditioning.
  const Real t0 = 0.5 * (t.front() + t.back());
  std::array<std::array<Real, 6>, 5> A{};
  std::array<Real, 5> b{};
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Real dt = t[i] - t0;
    Real powj = 1;
    for (int j = 0; j < m; ++j) {
      Real powk = powj * powj;  // t^(j+k) starting at k = j
      for (int k = j; k < m; ++k) {
        A[j][k] += powk;
        powk *= dt;
      }
      b[j] += powj * y[i];
      powj *= dt;
    }
  }
  for (int j = 0; j < m; ++j)
    for (int k = 0; k < j; ++k) A[j][k] = A[k][j];
  // Solve.
  std::array<Real, 5> c{};
  for (int col = 0; col < m; ++col) {
    int piv = col;
    for (int r = col + 1; r < m; ++r)
      if (std::abs(A[r][col]) > std::abs(A[piv][col])) piv = r;
    std::swap(A[col], A[piv]);
    std::swap(b[col], b[piv]);
    DGR_CHECK_MSG(std::abs(A[col][col]) > 1e-300, "singular trend fit");
    for (int r = col + 1; r < m; ++r) {
      const Real f = A[r][col] / A[col][col];
      for (int k = col; k < m; ++k) A[r][k] -= f * A[col][k];
      b[r] -= f * b[col];
    }
  }
  for (int r = m - 1; r >= 0; --r) {
    Real s = b[r];
    for (int k = r + 1; k < m; ++k) s -= A[r][k] * c[k];
    c[r] = s / A[r][r];
  }
  std::vector<Real> trend(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Real dt = t[i] - t0;
    Real v = 0, p = 1;
    for (int j = 0; j < m; ++j) {
      v += c[j] * p;
      p *= dt;
    }
    trend[i] = v;
  }
  return trend;
}

std::vector<Complex> integrate_series(const std::vector<Real>& t,
                                      const std::vector<Complex>& y) {
  DGR_CHECK(t.size() == y.size() && !t.empty());
  std::vector<Complex> out(t.size(), {0, 0});
  for (std::size_t i = 1; i < t.size(); ++i)
    out[i] = out[i - 1] + 0.5 * (t[i] - t[i - 1]) * (y[i] + y[i - 1]);
  return out;
}

namespace {
void detrend_complex(const std::vector<Real>& t, std::vector<Complex>& y,
                     int degree) {
  std::vector<Real> re(y.size()), im(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    re[i] = y[i].real();
    im[i] = y[i].imag();
  }
  const auto tr = polynomial_trend(t, re, degree);
  const auto ti = polynomial_trend(t, im, degree);
  for (std::size_t i = 0; i < y.size(); ++i)
    y[i] -= Complex{tr[i], ti[i]};
}
}  // namespace

std::vector<Complex> psi4_to_strain(const std::vector<Real>& t,
                                    const std::vector<Complex>& psi4,
                                    int detrend) {
  auto hdot = integrate_series(t, psi4);
  detrend_complex(t, hdot, detrend);
  auto h = integrate_series(t, hdot);
  // The first stage's (small) fit residual integrates into a polynomial of
  // one degree higher, so the second detrend removes degree detrend + 1.
  detrend_complex(t, h, std::min(4, detrend + 1));
  return h;
}

}  // namespace dgr::gw
