#pragma once
/// \file interp.hpp
/// \brief 1-D interpolation operators and their tensor products (paper
/// §IV-A): coarse-to-fine prolongation is applied as three sweeps of the 1-D
/// operator, exactly as in the GPU octant-to-patch kernel.

#include <array>

#include "common/counters.hpp"
#include "common/types.hpp"
#include "mesh/patch.hpp"

namespace dgr::mesh {

/// The 1-D prolongation operator I (13 x 7): degree-6 Lagrange interpolation
/// of the 7 coarse points onto the 13 half-spacing points covering the same
/// interval. Rows at even positions are Kronecker deltas (points coincide).
class Prolongation {
 public:
  static const Prolongation& get();

  /// Row weights for the half-spacing position a in [0, 12].
  const std::array<Real, kR>& row(int a) const { return rows_[a]; }

  /// Evaluate the degree-6 Lagrange basis l_m at arbitrary position t
  /// (in coarse index units, nodes at 0..6).
  static Real lagrange(int m, Real t);

 private:
  Prolongation();
  std::array<std::array<Real, kR>, kFine> rows_;
};

/// Tensor-product prolongation of a 7^3 octant block to its 13^3 fine
/// covering (half spacing, same volume). Three 1-D sweeps (x, then y, then
/// z), as in the GPU kernel. Adds ~3(2r-1)r^3-scale flops to \p counts.
void prolong_octant(const Real* coarse /*343*/, Real* fine /*2197*/,
                    OpCounts* counts = nullptr);

/// Interpolate a single point of the fine covering, recomputing the weight
/// rows on the fly (worst-case redundant work; used in tests).
Real prolong_point(const Real* coarse /*343*/, int a, int b, int c,
                   OpCounts* counts = nullptr);

/// Interpolate a single point using the precomputed 1-D rows: the
/// per-point full tensor contraction the loop-over-patches baseline pays
/// for every padding point (Fig. 7) — redundant relative to the scatter
/// path's single prolongation per source octant.
Real prolong_point_cached(const Real* coarse /*343*/, int a, int b, int c,
                          OpCounts* counts = nullptr);

}  // namespace dgr::mesh
