#pragma once
/// \file trace.hpp
/// \brief TraceSession: typed span / instant / counter / flow events on
/// named tracks, exported as Chrome trace-event JSON (loadable in
/// chrome://tracing and Perfetto).
///
/// Two time domains coexist in one session:
///   - Clock::kHost    — wall time from dgr::monotonic_us() (the same epoch
///                       the JSON-lines log sink stamps), used by the RAII
///                       span guards around host code (solver, regrid,
///                       simulated-GPU kernel launches);
///   - Clock::kVirtual — modeled virtual time (dist::SimComm rank clocks,
///                       in microseconds of virtual time), used to render
///                       the overlapped halo-exchange schedule: per-rank
///                       compute spans, hidden/exposed comm windows, and
///                       message-flow arrows from sender to receiver.
/// Host and virtual timestamps are not comparable, so the exporter emits
/// one domain per file.
///
/// All event timestamps are microseconds in the track's domain. Events are
/// serialized in insertion order, one per line, with numbers in shortest
/// round-trip form — a deterministic input stream yields a byte-identical
/// trace, which is what the golden-file tests pin down.
///
/// Thread safety: every event call and track registration is guarded by an
/// internal mutex, so pool workers (src/exec) may emit on their own tracks
/// concurrently. Single-threaded event streams keep a deterministic
/// insertion order; concurrent streams interleave by arrival (wall time is
/// nondeterministic anyway). B/E nesting is per track: each worker lane
/// must emit only on its own worker_track(lane).

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dgr::obs {

/// Time domain of a track (see file comment).
enum class Clock { kHost, kVirtual };

class TraceSession {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Register a timeline row. Tracks with the same `process` name share a
  /// pid in the exported trace; `thread` names the row (tid). Returns the
  /// track handle used by all event calls.
  int add_track(const std::string& process, const std::string& thread,
                Clock domain);

  /// The lazily-created default host-domain track ("host"/"main") the RAII
  /// span guards write to.
  int host_track();

  /// The lazily-created host-domain track ("exec"/"worker <lane>") a pool
  /// worker lane emits its parallel-region spans on (src/exec).
  int worker_track(int lane);

  std::size_t num_tracks() const {
    std::lock_guard<std::mutex> lk(m_);
    return tracks_.size();
  }
  Clock track_domain(int track) const {
    std::lock_guard<std::mutex> lk(m_);
    return tracks_[track].domain;
  }

  // ------------------------------------------------------------ events --
  // `ts_us` is microseconds in the track's time domain.

  /// Begin a span ('B'); pair with span_end on the same track.
  void span_begin(int track, const std::string& name, const std::string& cat,
                  double ts_us, Args args = {});
  /// End the innermost open span ('E') on `track`.
  void span_end(int track, double ts_us);
  /// Zero-duration instant event ('i', thread scope).
  void instant(int track, const std::string& name, const std::string& cat,
               double ts_us);
  /// Counter sample ('C'): the value of series `name` at `ts_us`.
  void counter(int track, const std::string& name, double ts_us,
               double value);
  /// Flow arrow start/end ('s'/'f'): same `id` links the two endpoints
  /// (message injection on the sender track -> delivery on the receiver
  /// track). The arrow binds to the slice enclosing `ts_us`.
  void flow_begin(int track, const std::string& name, const std::string& cat,
                  double ts_us, std::uint64_t id);
  void flow_end(int track, const std::string& name, const std::string& cat,
                double ts_us, std::uint64_t id);

  /// Fresh process-unique flow id.
  std::uint64_t next_flow_id() {
    std::lock_guard<std::mutex> lk(m_);
    return ++flow_seq_;
  }

  std::size_t event_count() const {
    std::lock_guard<std::mutex> lk(m_);
    return events_.size();
  }

  // ------------------------------------------------------------ export --
  /// Chrome trace-event JSON of all tracks in `domain`: metadata
  /// process_name/thread_name events followed by the event stream in
  /// insertion order, one event per line.
  std::string chrome_json(Clock domain) const;

  /// Write chrome_json(domain) to `path`; logs the destination at info
  /// level. Returns false if the file cannot be written.
  bool write_chrome_trace(const std::string& path, Clock domain) const;

 private:
  struct Track {
    std::string process, thread;
    Clock domain;
    int pid = 0, tid = 0;
  };
  struct Event {
    char ph;      // 'B','E','i','C','s','f'
    int track;
    double ts;    // microseconds in the track's domain
    std::string name, cat;
    std::uint64_t id = 0;  // flow id
    double value = 0;      // counter value
    Args args;
  };

  void push(Event e) {
    std::lock_guard<std::mutex> lk(m_);
    events_.push_back(std::move(e));
  }
  int add_track_locked(const std::string& process, const std::string& thread,
                       Clock domain);

  mutable std::mutex m_;
  std::vector<Track> tracks_;
  std::vector<Event> events_;
  std::vector<std::string> processes_;  // pid order (pid = index + 1)
  std::vector<int> worker_tracks_;      // per lane, -1 until created
  std::uint64_t flow_seq_ = 0;
  int host_track_ = -1;
};

}  // namespace dgr::obs
