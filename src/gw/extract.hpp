#pragma once
/// \file extract.hpp
/// \brief Gravitational-wave extraction on spheres (paper §III-A, Fig. 4):
/// Psi4 is sampled on extraction spheres at radii 50–100 M (scaled down in
/// our configurations), decomposed into spin-weight -2 (l, m) modes with
/// sphere quadrature, and recorded as time series.

#include <complex>
#include <map>
#include <vector>

#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "gw/quadrature.hpp"
#include "gw/swsh.hpp"
#include "mesh/mesh.hpp"

namespace dgr::gw {

/// Mode coefficients C_lm = \int Psi4 \bar{sYlm} dOmega on one sphere.
struct SphereModes {
  Real radius = 0;
  int lmax = 2;
  /// Index (l, m) with l in [2, lmax], m in [-l, l]: see mode_index().
  std::vector<Complex> coeffs;

  static int mode_index(int l, int m) {
    // Modes are packed l = 2..lmax, each with 2l+1 m values.
    int idx = 0;
    for (int ll = 2; ll < l; ++ll) idx += 2 * ll + 1;
    return idx + (m + l);
  }
  Complex mode(int l, int m) const { return coeffs[mode_index(l, m)]; }
};

class WaveExtractor {
 public:
  /// `radii`: extraction sphere radii; `lmax`: highest multipole;
  /// `quad_order`: Gauss product-rule order (2*order^2 points per sphere).
  WaveExtractor(std::vector<Real> radii, int lmax = 4, int quad_order = 12);

  const std::vector<Real>& radii() const { return radii_; }
  int lmax() const { return lmax_; }
  const SphereQuadrature& quadrature() const { return quad_; }

  /// Decompose precomputed zipped Psi4 fields on every sphere.
  std::vector<SphereModes> extract(const mesh::Mesh& mesh, const Real* psi4_re,
                                   const Real* psi4_im) const;

  /// Convenience: compute Psi4 from the state, then extract.
  std::vector<SphereModes> extract_from_state(
      const mesh::Mesh& mesh, const bssn::BssnState& state,
      const bssn::BssnParams& params) const;

  /// Decompose an analytic function on the unit sphere (tests).
  SphereModes decompose(const std::vector<Complex>& samples,
                        Real radius = 1.0) const;

 private:
  std::vector<Real> radii_;
  int lmax_;
  SphereQuadrature quad_;
  // Precomputed conj(sYlm) at the quadrature points, per mode.
  std::vector<std::vector<Complex>> basis_conj_;
};

/// A recorded (l, m) waveform: time samples of one mode at one radius —
/// the series plotted in the paper's Figs. 19 and 21.
struct ModeTimeSeries {
  int l = 2, m = 2;
  Real radius = 0;
  std::vector<Real> times;
  std::vector<Complex> values;

  void append(Real t, Complex v) {
    times.push_back(t);
    values.push_back(v);
  }
};

}  // namespace dgr::gw
