#include "ensemble/scenario.hpp"

#include <bit>
#include <cmath>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "gw/strain.hpp"
#include "mesh/mesh.hpp"
#include "octree/refinement.hpp"
#include "solver/evolution.hpp"

namespace dgr::ensemble {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'C', '2'};  // scenario encoding v2
constexpr char kWaveMagic[4] = {'D', 'W', 'F', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Doubles travel as their IEEE-754 bit pattern: byte-for-byte round trip,
/// no formatting, no locale, -0.0 and NaN payloads preserved.
void put_real(std::string& out, Real v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

struct Reader {
  const std::string& b;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    DGR_CHECK_MSG(pos + n <= b.size(),
                  "truncated canonical encoding: need " << n << " bytes at "
                                                        << pos << " of "
                                                        << b.size());
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[pos++]))
           << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[pos++]))
           << (8 * i);
    return v;
  }
  Real real() { return std::bit_cast<Real>(u64()); }
};

}  // namespace

std::string encode(const ScenarioConfig& cfg) {
  std::string out;
  out.reserve(4 + 15 * 8 + 5 * 4);
  out.append(kMagic, 4);
  put_real(out, cfg.q);
  put_real(out, cfg.separation);
  for (Real s : cfg.spin1) put_real(out, s);
  for (Real s : cfg.spin2) put_real(out, s);
  put_real(out, cfg.domain_half);
  put_u32(out, static_cast<std::uint32_t>(cfg.base_level));
  put_u32(out, static_cast<std::uint32_t>(cfg.finest_level));
  put_real(out, cfg.eps);
  put_u32(out, static_cast<std::uint32_t>(cfg.steps));
  put_u32(out, static_cast<std::uint32_t>(cfg.regrid_every));
  put_u32(out, static_cast<std::uint32_t>(cfg.extract_every));
  put_real(out, cfg.extraction_radius);
  put_real(out, cfg.cfl);
  put_real(out, cfg.ko_sigma);
  put_u32(out, cfg.subcycle ? 1u : 0u);
  return out;
}

ScenarioConfig decode(const std::string& bytes) {
  DGR_CHECK_MSG(bytes.size() >= 4 && bytes.compare(0, 4, kMagic, 4) == 0,
                "not a canonical scenario encoding (bad magic)");
  Reader r{bytes, 4};
  ScenarioConfig cfg;
  cfg.q = r.real();
  cfg.separation = r.real();
  for (Real& s : cfg.spin1) s = r.real();
  for (Real& s : cfg.spin2) s = r.real();
  cfg.domain_half = r.real();
  cfg.base_level = static_cast<int>(r.u32());
  cfg.finest_level = static_cast<int>(r.u32());
  cfg.eps = r.real();
  cfg.steps = static_cast<int>(r.u32());
  cfg.regrid_every = static_cast<int>(r.u32());
  cfg.extract_every = static_cast<int>(r.u32());
  cfg.extraction_radius = r.real();
  cfg.cfl = r.real();
  cfg.ko_sigma = r.real();
  const std::uint32_t sub = r.u32();
  DGR_CHECK_MSG(sub <= 1, "subcycle flag must be 0 or 1, got " << sub);
  cfg.subcycle = sub != 0;
  DGR_CHECK_MSG(r.pos == bytes.size(),
                "trailing bytes after canonical scenario encoding");
  return cfg;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ScenarioKey::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 0; i < 16; ++i)
    s[i] = digits[(hash >> (60 - 4 * i)) & 0xf];
  return s;
}

ScenarioConfig scenario_from_table4(const perf::ProductionConfig& cfg) {
  ScenarioConfig s;
  s.q = cfg.q;
  s.separation = cfg.separation / 4;  // 8 M production -> 2 M scaled
  s.domain_half = 16.0;
  // Shift the production level split (13-16 / 12) into the runnable band:
  // the small hole keeps its extra depth relative to the big one.
  s.base_level = 2;
  s.finest_level = 3 + (cfg.level_small - 13);
  // The horizon distinguishes rows with equal levels; encode it through
  // the step count (a few steps per 100 M of production horizon).
  s.steps = 2 + static_cast<int>(cfg.horizon / 200);
  return s;
}

std::size_t estimated_octants(const ScenarioConfig& cfg) {
  // Uniform base grid: 8^base_level octants; each cascade level adds a
  // ring of ~56 octants (a 4^3 refinement ball, 8 of which replace the
  // parent) around each of the two punctures.
  const std::size_t base = std::size_t{1}
                           << (3 * std::min(cfg.base_level, 10));
  const int cascade = std::max(0, cfg.finest_level - cfg.base_level);
  return base + 2u * 56u * static_cast<std::size_t>(cascade);
}

std::size_t Waveform::byte_size() const {
  return 4 + 3 * 8 + 2 * 4 + 8 + 8 +
         psi4_22.times.size() * 3 * 8 + strain.size() * 2 * 8;
}

std::string serialize(const Waveform& wf) {
  std::string out;
  out.reserve(wf.byte_size());
  out.append(kWaveMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(wf.steps));
  put_u32(out, static_cast<std::uint32_t>(wf.regrids));
  put_real(out, wf.t_final);
  put_u32(out, static_cast<std::uint32_t>(wf.psi4_22.l));
  put_u32(out, static_cast<std::uint32_t>(wf.psi4_22.m));
  put_real(out, wf.psi4_22.radius);
  put_u64(out, wf.psi4_22.times.size());
  for (std::size_t i = 0; i < wf.psi4_22.times.size(); ++i) {
    put_real(out, wf.psi4_22.times[i]);
    put_real(out, wf.psi4_22.values[i].real());
    put_real(out, wf.psi4_22.values[i].imag());
  }
  put_u64(out, wf.strain.size());
  for (const Complex& h : wf.strain) {
    put_real(out, h.real());
    put_real(out, h.imag());
  }
  return out;
}

Waveform deserialize(const std::string& bytes) {
  DGR_CHECK_MSG(bytes.size() >= 4 && bytes.compare(0, 4, kWaveMagic, 4) == 0,
                "not a serialized waveform (bad magic)");
  Reader r{bytes, 4};
  Waveform wf;
  wf.steps = static_cast<int>(r.u32());
  wf.regrids = static_cast<int>(r.u32());
  wf.t_final = r.real();
  wf.psi4_22.l = static_cast<int>(r.u32());
  wf.psi4_22.m = static_cast<int>(r.u32());
  wf.psi4_22.radius = r.real();
  const std::uint64_t n = r.u64();
  // Bounded by the actual payload: a corrupt count cannot trigger an
  // oversized allocation (the load_checkpoint hardening pattern).
  DGR_CHECK_MSG(n <= (bytes.size() - r.pos) / (3 * 8),
                "waveform sample count " << n << " exceeds payload");
  wf.psi4_22.times.reserve(n);
  wf.psi4_22.values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Real t = r.real();
    const Real re = r.real();
    const Real im = r.real();
    wf.psi4_22.append(t, Complex{re, im});
  }
  const std::uint64_t ns = r.u64();
  DGR_CHECK_MSG(ns <= (bytes.size() - r.pos) / (2 * 8),
                "strain sample count " << ns << " exceeds payload");
  wf.strain.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    const Real re = r.real();
    const Real im = r.real();
    wf.strain.emplace_back(re, im);
  }
  DGR_CHECK_MSG(r.pos == bytes.size(),
                "trailing bytes after serialized waveform");
  return wf;
}

Waveform run_scenario(const ScenarioConfig& cfg) {
  DGR_CHECK_MSG(cfg.q >= 1 && cfg.separation > 0 && cfg.steps > 0 &&
                    cfg.base_level >= 1 &&
                    cfg.finest_level >= cfg.base_level &&
                    cfg.finest_level <= 8,
                "scenario out of the runnable envelope");

  // Quasi-circular binary with the configured spins, punctures slightly
  // off the grid axes (the bench_common convention).
  auto bhs = bssn::make_binary(cfg.q, cfg.separation);
  bhs[0].spin = cfg.spin1;
  bhs[1].spin = cfg.spin2;
  for (auto& b : bhs) {
    b.pos[1] = 0.011;
    b.pos[2] = 0.007;
  }

  std::vector<oct::Puncture> ps;
  for (const auto& b : bhs) ps.push_back({b.pos, cfg.finest_level});
  const oct::Domain dom{cfg.domain_half};
  auto mesh = std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(dom, ps, cfg.base_level), dom);

  solver::SolverConfig scfg;
  scfg.cfl = cfg.cfl;
  scfg.bssn.ko_sigma = cfg.ko_sigma;
  solver::BssnCtx ctx(mesh, scfg);
  bssn::set_punctures(*mesh, bhs, ctx.state());

  solver::EvolutionConfig ecfg;
  // The regrid band is pinned to [base, finest], so dt is constant across
  // regrids and `steps` RK4 steps span exactly steps * dt.
  const Real dt = ctx.suggested_dt();
  ecfg.t_end = cfg.steps * dt;
  ecfg.regrid_every = cfg.regrid_every;
  ecfg.extract_every = cfg.extract_every;
  ecfg.regrid.eps = cfg.eps;
  ecfg.regrid.min_level = cfg.base_level;
  ecfg.regrid.max_level = cfg.finest_level;
  ecfg.extraction_radii = {cfg.extraction_radius};
  ecfg.subcycle = cfg.subcycle;
  const auto res = solver::evolve(ctx, ecfg, nullptr);

  Waveform wf;
  wf.steps = res.steps;
  wf.regrids = res.regrids;
  wf.t_final = ctx.time();
  wf.psi4_22 = res.waves22.at(0);
  // Strain needs enough samples for the degree-2 detrend of the double
  // integration; short smoke runs memoize Psi4 only.
  if (wf.psi4_22.times.size() >= 4)
    wf.strain = gw::psi4_to_strain(wf.psi4_22.times, wf.psi4_22.values);
  return wf;
}

}  // namespace dgr::ensemble
