#include "dist/sim_comm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dgr::dist {

namespace {
constexpr double kUs = 1e6;  // virtual seconds -> trace microseconds
}

SimComm::SimComm(int ranks, perf::HierarchicalNetworkModel net)
    : net_(net), stats_(ranks), mailbox_(ranks) {
  DGR_CHECK(ranks >= 1);
  trace_ = obs::trace();
  tracks_.resize(ranks);
  if (trace_) {
    for (int r = 0; r < ranks; ++r) {
      const std::string proc = "rank " + std::to_string(r);
      tracks_[r].exec = trace_->add_track(proc, "exec", obs::Clock::kVirtual);
      tracks_[r].halo = trace_->add_track(proc, "halo", obs::Clock::kVirtual);
    }
  }
}

void SimComm::trace_span(int track, const std::string& name, const char* cat,
                         double t0, double t1) {
  if (!trace_ || t1 <= t0) return;
  trace_->span_begin(track, name, cat, t0 * kUs);
  trace_->span_end(track, t1 * kUs);
}

double SimComm::max_clock() const {
  double m = 0;
  for (const auto& s : stats_) m = std::max(m, s.clock);
  return m;
}

std::uint64_t SimComm::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& m : log_) b += m.bytes;
  return b;
}

void SimComm::advance(int r, double seconds) {
  DGR_CHECK(seconds >= 0);
  trace_span(tracks_[r].exec, "compute", "compute", stats_[r].clock,
             stats_[r].clock + seconds);
  stats_[r].clock += seconds;
  stats_[r].t_compute += seconds;
}

SimComm::Request SimComm::irecv(int r, int src, int tag, Payload* out) {
  DGR_CHECK(out != nullptr && r != src);
  Req q;
  q.recv = true;
  q.rank = r;
  q.peer = src;
  q.tag = tag;
  q.t_post = stats_[r].clock;
  q.out = out;
  reqs_.push_back(q);
  return Request{reqs_.size() - 1};
}

SimComm::Request SimComm::isend(int r, int dst, int tag, Payload payload) {
  DGR_CHECK(r != dst);
  const std::uint64_t bytes = payload.size() * sizeof(Real);
  const perf::NetworkModel& link = net_.link(r, dst);
  Req q;
  q.rank = r;
  q.peer = dst;
  q.tag = tag;
  q.t_post = stats_[r].clock;
  q.done = true;  // nonblocking send completes locally at injection
  reqs_.push_back(q);

  // Injection serializes on the sender (alpha per message); the payload is
  // deliverable once it has crossed the wire.
  stats_[r].clock += link.alpha;
  const double t_ready = stats_[r].clock + link.beta * double(bytes);
  stats_[r].msgs_sent += 1;
  stats_[r].bytes_sent += bytes;
  const std::uint64_t seq = log_.size();
  if (trace_) {
    trace_->span_begin(tracks_[r].exec, "isend", "comm", q.t_post * kUs,
                       {{"dst", std::to_string(dst)},
                        {"bytes", std::to_string(bytes)}});
    trace_->flow_begin(tracks_[r].exec, "msg", "comm", q.t_post * kUs, seq);
    trace_->span_end(tracks_[r].exec, stats_[r].clock * kUs);
  }
  log_.push_back({r, dst, tag, bytes, q.t_post, t_ready});
  mailbox_[dst].push_back({r, tag, std::move(payload), t_ready, seq});
  return Request{reqs_.size() - 1};
}

void SimComm::wait_all(int r, std::vector<Request>& reqs) {
  double t_post_min = -1, arrival = -1;
  std::vector<std::pair<std::uint64_t, double>> delivered;  // (seq, t_ready)
  for (const Request& h : reqs) {
    DGR_CHECK(h.idx < reqs_.size());
    Req& q = reqs_[h.idx];
    DGR_CHECK(q.rank == r);
    if (q.done) continue;  // sends (or repeated waits)
    DGR_CHECK(q.recv);
    // Match the oldest unconsumed mailbox entry with (src, tag).
    Pending* match = nullptr;
    for (Pending& p : mailbox_[r])
      if (!p.consumed && p.src == q.peer && p.tag == q.tag) {
        match = &p;
        break;
      }
    DGR_CHECK_MSG(match != nullptr, "wait_all: unmatched irecv");
    *q.out = std::move(match->data);
    match->consumed = true;
    q.done = true;
    t_post_min = t_post_min < 0 ? q.t_post : std::min(t_post_min, q.t_post);
    arrival = std::max(arrival, match->t_ready);
    if (trace_) delivered.emplace_back(match->seq, match->t_ready);
  }
  mailbox_[r].erase(
      std::remove_if(mailbox_[r].begin(), mailbox_[r].end(),
                     [](const Pending& p) { return p.consumed; }),
      mailbox_[r].end());
  if (arrival < 0) return;  // nothing but sends

  RankStats& s = stats_[r];
  const double t_wait = s.clock;
  const double exposed = std::max(0.0, arrival - t_wait);
  // Portion of the comm window [t_post_min, arrival] covered by the compute
  // this rank performed between posting the receives and waiting.
  const double hidden =
      std::max(0.0, std::min(t_wait, arrival) - t_post_min);
  s.t_comm_exposed += exposed;
  s.t_comm_hidden += hidden;
  if (trace_) {
    // Halo row: the comm window split into its hidden and exposed parts.
    const double t_split = std::min(t_wait, arrival);
    trace_span(tracks_[r].halo, "halo hidden", "comm", t_post_min, t_split);
    trace_span(tracks_[r].halo, "halo exposed", "comm", t_split, arrival);
    // Exec row: the stall, if any.
    trace_span(tracks_[r].exec, "wait", "comm", t_wait, arrival);
    // Message-flow arrows terminate at each payload's delivery time.
    for (const auto& [seq, t_ready] : delivered)
      trace_->flow_end(tracks_[r].halo, "msg", "comm", t_ready * kUs, seq);
  }
  s.clock = std::max(s.clock, arrival);
}

double SimComm::reduce_clocks(std::uint64_t bytes) {
  const double sync = max_clock();
  const double cost = net_.allreduce_time(ranks(), bytes);
  for (int r = 0; r < ranks(); ++r) {
    RankStats& s = stats_[r];
    trace_span(tracks_[r].exec, "allreduce", "collective", s.clock,
               sync + cost);
    s.t_collective += (sync + cost) - s.clock;
    s.clock = sync + cost;
  }
  return cost;
}

double SimComm::allreduce_min(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  return *std::min_element(contrib.begin(), contrib.end());
}

double SimComm::allreduce_max(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  return *std::max_element(contrib.begin(), contrib.end());
}

double SimComm::allreduce_sum(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  double s = 0;
  for (double v : contrib) s += v;
  return s;
}

SimComm::Payload SimComm::allgather(const std::vector<Payload>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  const double sync = max_clock();
  // Ring allgather: every rank receives each other rank's block once, so
  // rank r pays sum over peers of one message of that peer's block over the
  // peer->r link.
  for (int r = 0; r < ranks(); ++r) {
    double cost = 0;
    for (int p = 0; p < ranks(); ++p) {
      if (p == r) continue;
      cost += net_.time(p, r, contrib[p].size() * sizeof(Real), 1);
      stats_[p].msgs_sent += 1;  // each block forwarded once along the ring
      stats_[p].bytes_sent += contrib[p].size() * sizeof(Real);
    }
    trace_span(tracks_[r].exec, "allgather", "collective", stats_[r].clock,
               sync + cost);
    stats_[r].t_collective += (sync + cost) - stats_[r].clock;
    stats_[r].clock = sync + cost;
  }
  Payload all;
  for (const Payload& c : contrib) all.insert(all.end(), c.begin(), c.end());
  return all;
}

}  // namespace dgr::dist
