/// \file bench_fig14_roofline.cpp
/// \brief Regenerates Fig. 14: empirical roofline for the key kernels on
/// the (modeled) A100 — overall RHS, the algebraic stage A, and the
/// octant-to-patch operation on the m1..m5 grids. Arithmetic intensities
/// come from the kernels' exact op counters; attainable GFlops/s from the
/// paper's machine parameters.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "codegen/bssn_graph.hpp"
#include "codegen/fused_rhs.hpp"
#include "codegen/interp_rhs.hpp"
#include "common/timer.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 14", "empirical roofline on the A100 model");
  bench::Reporter rep("fig14_roofline", argc, argv);

  const perf::MachineModel a100 = perf::a100();
  std::printf("  peak: %.0f GFlops/s DP, %.0f GB/s; ridge AI = %.2f\n",
              a100.peak_gflops(), a100.peak_bandwidth_gbs(), a100.ridge_ai());
  std::printf("\n  %-20s | %-8s | %-15s | %-14s | %-22s\n", "kernel", "AI",
              "attainable GF/s", "achieved GF/s", "paper reference");

  // Attainable = classic roofline at the kernel's AI; achieved = flops over
  // the modeled per-block time (per-octant working set, as the GPU kernels
  // launch one block per octant).
  auto report = [&](const char* name, const OpCounts& c, std::uint64_t blocks,
                    const char* ref, const char* key = nullptr,
                    double paper_ai = 0) {
    const double ai = c.arithmetic_intensity();
    OpCounts per_block;
    per_block.flops = c.flops / std::max<std::uint64_t>(1, blocks);
    per_block.bytes_read = c.bytes_read / std::max<std::uint64_t>(1, blocks);
    per_block.bytes_written =
        c.bytes_written / std::max<std::uint64_t>(1, blocks);
    const double achieved =
        1e-9 * double(c.flops) /
        (blocks * a100.time_finite_cache(per_block));
    std::printf("  %-20s | %-8.2f | %-15.0f | %-14.0f | %-22s\n", name, ai,
                a100.roofline_gflops(ai), achieved, ref);
    if (key) {
      rep.pair(std::string("ai_") + key, paper_ai, ai);
      rep.metric(std::string("achieved_gflops_") + key, achieved);
    }
  };

  // RHS and algebraic stage on a puncture pipeline run.
  {
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
    simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
    bssn::BssnState s;
    bench::init_bbh_state(*m, 1.0, 2.0, s);
    gpu.upload(s);
    gpu.rk4_step();
    const auto& rhs_rec = gpu.runtime().record("bssn-rhs");
    report("RHS (D + A)", rhs_rec.counts, rhs_rec.blocks,
           "AI~0.62, ~700 GF/s", "rhs", 0.62);

    // The A stage alone: per-point flop and byte accounting of Eq. 21b.
    OpCounts a_only;
    a_only.flops = std::uint64_t(bssn::kAFlopsPerPoint);
    a_only.bytes_read = (24 * 2 + 210) * sizeof(Real);
    a_only.bytes_written = 24 * sizeof(Real);
    report("A (algebraic)", a_only, 1, "Q_A ~ 1.94 (Eq. 21b)", "algebraic",
           1.94);
  }

  // octant-to-patch on the adaptivity family.
  for (int fam = 1; fam <= 5; ++fam) {
    auto m = bench::adaptivity_mesh(fam);
    constexpr int kVars = 24;
    std::vector<Real> fields(std::size_t(kVars) * m->num_dofs(), 1.0);
    std::vector<const Real*> fp(kVars);
    for (int v = 0; v < kVars; ++v)
      fp[v] = fields.data() + std::size_t(v) * m->num_dofs();
    const int chunk = 64;
    std::vector<Real> patches(std::size_t(chunk) * kVars * mesh::kPatchPts);
    OpCounts c;
    for (OctIndex b = 0; b < OctIndex(m->num_octants()); b += chunk) {
      const OctIndex e =
          std::min<OctIndex>(b + chunk, OctIndex(m->num_octants()));
      m->unzip(fp.data(), kVars, b, e, patches.data(),
               mesh::UnzipMethod::kLoopOverOctants, &c);
    }
    char name[32];
    std::snprintf(name, sizeof name, "octant-to-patch m%d", fam);
    char key[16];
    std::snprintf(key, sizeof key, "o2p_m%d", fam);
    report(name, c, m->num_octants(),
           fam == 1 ? "~900 GF/s, AI 4.07" : "AI falls with m", key,
           fam == 1 ? 4.07 : NAN);
  }
  bench::note("all kernels sit left of the ridge point (memory bound),");
  bench::note("matching the paper's conclusion Q < 6.25 => bandwidth limited.");

  // Host vector-units roofline: the same staged+CSE RHS program, measured
  // on this machine against the calibrated host model. Fusion lifts the
  // kernel's arithmetic intensity (no 210-array derivative round trip);
  // the SIMD width then lifts achieved flops toward the vector ceiling.
  {
    const perf::MachineModel host = perf::calibrated_host();
    const int wact = simd_active_width();
    std::printf(
        "\n  host (%s): peak %.1f GFlops/s, %.1f GB/s; ridge AI = %.2f; "
        "simd width %d\n",
        host.name.c_str(), host.peak_gflops(), host.peak_bandwidth_gbs(),
        host.ridge_ai(), wact);
    std::printf("  %-24s | %-8s | %-15s | %-14s\n", "host kernel", "AI",
                "attainable GF/s", "achieved GF/s");

    const auto bg = codegen::build_bssn_algebra_graph();
    const codegen::CompiledKernel staged(
        bg.graph,
        std::vector<std::int32_t>(bg.outputs.begin(), bg.outputs.end()),
        codegen::Strategy::kStagedCse);
    constexpr int kVars = bssn::kNumVars;
    std::vector<Real> in(std::size_t(kVars) * mesh::kPatchPts), out(in.size());
    for (int v = 0; v < kVars; ++v)
      for (int p = 0; p < mesh::kPatchPts; ++p)
        in[std::size_t(v) * mesh::kPatchPts + p] =
            bssn::var_asymptotic(v) + 1e-3 * std::sin(0.1 * p + v);
    const Real* pi[kVars];
    Real* po[kVars];
    for (int v = 0; v < kVars; ++v) {
      pi[v] = &in[std::size_t(v) * mesh::kPatchPts];
      po[v] = &out[std::size_t(v) * mesh::kPatchPts];
    }
    mesh::PatchGeom geom{{0, 0, 0}, 0.05};
    bssn::BssnParams prm;
    prm.sommerfeld = false;
    bssn::DerivWorkspace dws;
    codegen::FusedWorkspace fws;

    const int evals = 20;
    const auto row = [&](const char* name, const char* key,
                         const OpCounts& c, double seconds) {
      const double ai = c.arithmetic_intensity();
      const double achieved = 1e-9 * double(c.flops) * evals / seconds;
      std::printf("  %-24s | %-8.2f | %-15.1f | %-14.1f\n", name, ai,
                  host.roofline_gflops(ai), achieved);
      rep.metric(std::string("host_ai_") + key, ai);
      rep.metric(std::string("host_gflops_") + key, achieved);
    };
    OpCounts ci, cf;
    codegen::bssn_rhs_patch_interp(pi, po, geom, prm, dws, staged, &ci);
    codegen::bssn_rhs_patch_fused(pi, po, geom, 1e9, prm, staged, fws, &cf);
    WallTimer t0;
    for (int e = 0; e < evals; ++e)
      codegen::bssn_rhs_patch_interp(pi, po, geom, prm, dws, staged);
    const double sec_interp = t0.seconds();
    WallTimer t1;
    for (int e = 0; e < evals; ++e)
      codegen::bssn_rhs_patch_fused(pi, po, geom, 1e9, prm, staged, fws,
                                    nullptr, 1);
    const double sec_w1 = t1.seconds();
    WallTimer t2;
    for (int e = 0; e < evals; ++e)
      codegen::bssn_rhs_patch_fused(pi, po, geom, 1e9, prm, staged, fws,
                                    nullptr, wact);
    const double sec_simd = t2.seconds();
    row("staged interp (arrays)", "interp", ci, sec_interp);
    row("fused SoA width 1", "fused_w1", cf, sec_w1);
    row("fused SoA active width", "fused_simd", cf, sec_simd);
    rep.metric("host_simd_width", double(wact));
    bench::note("fusion raises AI (fewer slow-memory bytes per flop) and the");
    bench::note("explicit width-" + std::to_string(wact) +
                " packs raise achieved GF/s; at these AIs the");
    bench::note("host kernels sit right of the (low) host ridge - compute");
    bench::note("bound - which is exactly where vector units pay off.");
  }
  return 0;
}
