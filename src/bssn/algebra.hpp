#pragma once
/// \file algebra.hpp
/// \brief The algebraic stage "A" of the BSSN RHS (paper §IV-B): the map
/// from 234+ point-local inputs (field values, derivatives, advective
/// derivatives, KO terms) to the 24 RHS outputs, written once as a template
/// over the scalar type.
///
/// Instantiated with S = Real it is the compiled production kernel used by
/// `bssn_rhs_patch`; instantiated with the codegen module's symbolic scalar
/// it emits the expression DAG from which the paper's code-generation
/// variants (SymPyGR-CSE, binary-reduce, staged+CSE — Table II / Fig. 11)
/// are scheduled. A single source of truth guarantees the scheduled
/// programs compute exactly the tested physics.

#include "bssn/vars.hpp"

namespace dgr::bssn {

/// Point-local inputs of the algebraic stage. `ch` must already be floored
/// (chi floor applied by the caller); `ad[v]` are the upwind advection terms
/// beta^j dj v; `ko[v]` the (unit-sigma) KO dissipation values.
template <class S>
struct AlgebraInputs {
  S a, ch, Kt;
  S Gt[3], bet[3], Bv[3], gt[6], At[6];
  S d_a[3], d_ch[3], d_K[3];
  S d_b[3][3];   // d_b[i][j] = d beta^i / dx^j
  S d_Gt[3][3];  // d Gt^i / dx^j
  S d_gt[6][3], d_At[6][3];
  S dd_a[6], dd_ch[6];
  S dd_b[3][6];
  S dd_gt[6][6];
  S ad[kNumVars];
  S ko[kNumVars];
};

template <class S>
struct AlgebraParams {
  S lambda_f0, eta, ko_sigma;
};

/// Inverse of a symmetric 3x3 (adjugate over determinant).
template <class S>
inline void sym_inverse_t(const S g[6], S inv[6]) {
  const S a = g[0], b = g[1], c = g[2], d = g[3], e = g[4], f = g[5];
  const S det = a * (d * f - e * e) - b * (b * f - e * c) + c * (b * e - d * c);
  const S idet = 1.0 / det;
  inv[0] = (d * f - e * e) * idet;
  inv[1] = (c * e - b * f) * idet;
  inv[2] = (b * e - c * d) * idet;
  inv[3] = (a * f - c * c) * idet;
  inv[4] = (b * c - a * e) * idet;
  inv[5] = (a * d - b * b) * idet;
}

/// Evaluate the full algebraic stage at one point. `out[v]` receives the
/// RHS of variable v (paper Eqs. (1)-(19)), including the KO term.
template <class S>
void bssn_algebra_point(const AlgebraInputs<S>& q,
                        const AlgebraParams<S>& prm, S out[kNumVars]) {
  S gtu[6];
  sym_inverse_t(q.gt, gtu);
  auto GTU = [&](int i, int j) { return gtu[sym_idx(i, j)]; };
  auto GT = [&](int i, int j) { return q.gt[sym_idx(i, j)]; };
  auto AT = [&](int i, int j) { return q.At[sym_idx(i, j)]; };
  auto DGT = [&](int i, int j, int k) { return q.d_gt[sym_idx(i, j)][k]; };

  // Lowered conformal Christoffel Gammat_{i,jk}.
  S C1low[3][6];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = j; k < 3; ++k)
        C1low[i][sym_idx(j, k)] =
            0.5 * (DGT(i, j, k) + DGT(i, k, j) - DGT(j, k, i));
  auto C1LOW = [&](int i, int j, int k) { return C1low[i][sym_idx(j, k)]; };

  // Raised Gammat^k_{ij}.
  S C1[3][6];
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 3; ++i)
      for (int j = i; j < 3; ++j) {
        S s = GTU(k, 0) * C1LOW(0, i, j);
        for (int l = 1; l < 3; ++l) s = s + GTU(k, l) * C1LOW(l, i, j);
        C1[k][sym_idx(i, j)] = s;
      }
  auto C1R = [&](int k, int i, int j) { return C1[k][sym_idx(i, j)]; };

  // At with raised indices.
  S AtUD[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      S s = GTU(i, 0) * AT(0, j);
      for (int l = 1; l < 3; ++l) s = s + GTU(i, l) * AT(l, j);
      AtUD[i][j] = s;
    }
  S AtUU[6];
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) {
      S s = AtUD[i][0] * GTU(0, j);
      for (int l = 1; l < 3; ++l) s = s + AtUD[i][l] * GTU(l, j);
      AtUU[sym_idx(i, j)] = s;
    }
  auto ATU = [&](int i, int j) { return AtUU[sym_idx(i, j)]; };

  S aTa = AT(0, 0) * ATU(0, 0);
  {
    bool first = true;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        if (first) {
          first = false;
          continue;
        }
        aTa = aTa + AT(i, j) * ATU(i, j);
      }
  }

  const S divb = q.d_b[0][0] + q.d_b[1][1] + q.d_b[2][2];

  // Gauge (Eqs. 1-2).
  out[kAlpha] = q.ad[kAlpha] - 2.0 * q.a * q.Kt + prm.ko_sigma * q.ko[kAlpha];
  for (int i = 0; i < 3; ++i)
    out[kBeta0 + i] = prm.lambda_f0 * q.Bv[i] + q.ad[kBeta0 + i] +
                      prm.ko_sigma * q.ko[kBeta0 + i];

  // Conformal metric (Eq. 4).
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) {
      S lie = q.ad[kGtxx + sym_idx(i, j)];
      for (int k = 0; k < 3; ++k)
        lie = lie + GT(i, k) * q.d_b[k][j] + GT(j, k) * q.d_b[k][i];
      lie = lie - (2.0 / 3.0) * GT(i, j) * divb;
      out[kGtxx + sym_idx(i, j)] =
          lie - 2.0 * q.a * AT(i, j) + prm.ko_sigma * q.ko[kGtxx + sym_idx(i, j)];
    }

  // chi (Eq. 5).
  out[kChi] = q.ad[kChi] + (2.0 / 3.0) * q.ch * (q.a * q.Kt - divb) +
              prm.ko_sigma * q.ko[kChi];

  // Ricci tensor (Eqs. 16-19).
  S Ric[6];
  {
    S tr = GTU(0, 0) *
           (q.dd_ch[0] - (3.0 / 2.0) * (q.d_ch[0] * q.d_ch[0] / q.ch));
    for (int k = 0; k < 3; ++k)
      for (int l = 0; l < 3; ++l) {
        if (k == 0 && l == 0) continue;
        tr = tr + GTU(k, l) * (q.dd_ch[sym_idx(k, l)] -
                               (3.0 / 2.0) * (q.d_ch[k] * q.d_ch[l] / q.ch));
      }
    for (int m = 0; m < 3; ++m) tr = tr - q.Gt[m] * q.d_ch[m];
    for (int i = 0; i < 3; ++i)
      for (int j = i; j < 3; ++j) {
        S t1 = GTU(0, 0) * q.dd_gt[sym_idx(i, j)][0];
        for (int l = 0; l < 3; ++l)
          for (int m = 0; m < 3; ++m) {
            if (l == 0 && m == 0) continue;
            t1 = t1 + GTU(l, m) * q.dd_gt[sym_idx(i, j)][sym_idx(l, m)];
          }
        t1 = -0.5 * t1;
        S t2 = GT(0, i) * q.d_Gt[0][j] + GT(0, j) * q.d_Gt[0][i];
        for (int k = 1; k < 3; ++k)
          t2 = t2 + GT(k, i) * q.d_Gt[k][j] + GT(k, j) * q.d_Gt[k][i];
        t2 = 0.5 * t2;
        S t3 = q.Gt[0] * (C1LOW(i, j, 0) + C1LOW(j, i, 0));
        for (int k = 1; k < 3; ++k)
          t3 = t3 + q.Gt[k] * (C1LOW(i, j, k) + C1LOW(j, i, k));
        t3 = 0.5 * t3;
        S t4 = 0.0 * t1;  // zero of the scalar type
        for (int l = 0; l < 3; ++l)
          for (int m = 0; m < 3; ++m) {
            S s = C1R(0, l, i) * C1LOW(j, 0, m) + C1R(0, l, j) * C1LOW(i, 0, m) +
                  C1R(0, i, m) * C1LOW(0, l, j);
            for (int k = 1; k < 3; ++k)
              s = s + C1R(k, l, i) * C1LOW(j, k, m) +
                  C1R(k, l, j) * C1LOW(i, k, m) + C1R(k, i, m) * C1LOW(k, l, j);
            t4 = t4 + GTU(l, m) * s;
          }
        S Qij = q.dd_ch[sym_idx(i, j)];
        for (int k = 0; k < 3; ++k) Qij = Qij - C1R(k, i, j) * q.d_ch[k];
        const S Mij = Qij / (2.0 * q.ch) -
                      q.d_ch[i] * q.d_ch[j] / (4.0 * q.ch * q.ch);
        Ric[sym_idx(i, j)] =
            t1 + t2 + t3 + t4 + Mij + GT(i, j) * (tr / (2.0 * q.ch));
      }
  }
  auto RIC = [&](int i, int j) { return Ric[sym_idx(i, j)]; };

  // Covariant Hessian of the lapse (Eqs. 13-15).
  S DDa[6];
  for (int i = 0; i < 3; ++i)
    for (int j = i; j < 3; ++j) {
      S s = q.dd_a[sym_idx(i, j)];
      for (int k = 0; k < 3; ++k) {
        S up = GTU(k, 0) * q.d_ch[0];
        for (int l = 1; l < 3; ++l) up = up + GTU(k, l) * q.d_ch[l];
        S corr = (-1.0) * GT(i, j) * up;
        if (k == i) corr = corr + q.d_ch[j];
        if (k == j) corr = corr + q.d_ch[i];
        const S Cfull = C1R(k, i, j) - corr / (2.0 * q.ch);
        s = s - Cfull * q.d_a[k];
      }
      DDa[sym_idx(i, j)] = s;
    }
  S lap_a = GTU(0, 0) * DDa[0];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      if (i == 0 && j == 0) continue;
      lap_a = lap_a + GTU(i, j) * DDa[sym_idx(i, j)];
    }
  lap_a = q.ch * lap_a;

  // At (Eq. 6).
  {
    S X[6];
    for (int i = 0; i < 3; ++i)
      for (int j = i; j < 3; ++j)
        X[sym_idx(i, j)] = q.a * RIC(i, j) - DDa[sym_idx(i, j)];
    S trX = GTU(0, 0) * X[0];
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        if (i == 0 && j == 0) continue;
        trX = trX + GTU(i, j) * X[sym_idx(i, j)];
      }
    for (int i = 0; i < 3; ++i)
      for (int j = i; j < 3; ++j) {
        const int s6 = sym_idx(i, j);
        S lie = q.ad[kAtxx + s6];
        for (int k = 0; k < 3; ++k)
          lie = lie + AT(i, k) * q.d_b[k][j] + AT(j, k) * q.d_b[k][i];
        lie = lie - (2.0 / 3.0) * AT(i, j) * divb;
        S quad = AT(i, 0) * AtUD[0][j];
        for (int k = 1; k < 3; ++k) quad = quad + AT(i, k) * AtUD[k][j];
        out[kAtxx + s6] = lie + q.ch * (X[s6] - (1.0 / 3.0) * GT(i, j) * trX) +
                          q.a * (q.Kt * AT(i, j) - 2.0 * quad) +
                          prm.ko_sigma * q.ko[kAtxx + s6];
      }
  }

  // K (Eq. 7).
  out[kK] = q.ad[kK] - lap_a + q.a * (aTa + q.Kt * q.Kt / 3.0) +
            prm.ko_sigma * q.ko[kK];

  // Gt and B (Eqs. 3, 8).
  for (int i = 0; i < 3; ++i) {
    S s = GTU(0, 0) * q.dd_b[i][0];
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k) {
        if (j == 0 && k == 0) continue;
        s = s + GTU(j, k) * q.dd_b[i][sym_idx(j, k)];
      }
    S mixed = 0.0 * s;
    for (int j = 0; j < 3; ++j) {
      S inner = q.dd_b[0][sym_idx(j, 0)];
      for (int k = 1; k < 3; ++k) inner = inner + q.dd_b[k][sym_idx(j, k)];
      mixed = mixed + GTU(i, j) * inner;
    }
    s = s + mixed / 3.0;
    s = s + q.ad[kGt0 + i];
    for (int j = 0; j < 3; ++j) s = s - q.Gt[j] * q.d_b[i][j];
    s = s + (2.0 / 3.0) * q.Gt[i] * divb;
    for (int j = 0; j < 3; ++j) s = s - 2.0 * ATU(i, j) * q.d_a[j];
    S para = C1R(i, 0, 0) * ATU(0, 0);
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k) {
        if (j == 0 && k == 0) continue;
        para = para + C1R(i, j, k) * ATU(j, k);
      }
    S chterm = ATU(i, 0) * q.d_ch[0];
    S kterm = GTU(i, 0) * q.d_K[0];
    for (int j = 1; j < 3; ++j) {
      chterm = chterm + ATU(i, j) * q.d_ch[j];
      kterm = kterm + GTU(i, j) * q.d_K[j];
    }
    s = s + 2.0 * q.a *
            (para - (3.0 / 2.0) * (chterm / q.ch) - (2.0 / 3.0) * kterm);
    out[kGt0 + i] = s + prm.ko_sigma * q.ko[kGt0 + i];
    out[kB0 + i] = s - prm.eta * q.Bv[i] + q.ad[kB0 + i] - q.ad[kGt0 + i] +
                   prm.ko_sigma * q.ko[kB0 + i];
  }
}

}  // namespace dgr::bssn
