#include "bssn/initial_data.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dgr::bssn {

std::vector<PunctureData> make_binary(Real q, Real separation) {
  DGR_CHECK(q >= 1.0 && separation > 0.0);
  // Bare masses summing to 1, placed on the x axis around the center of
  // mass; tangential momenta from the Newtonian circular-orbit estimate
  // P = mu * sqrt(M/d) with reduced mass mu.
  const Real m1 = q / (1.0 + q);
  const Real m2 = 1.0 / (1.0 + q);
  const Real x1 = separation * m2;   // m1 * x1 = m2 * x2 (c.o.m. at origin)
  const Real x2 = -separation * m1;
  const Real mu = m1 * m2;           // total mass M = 1
  const Real p = mu * std::sqrt(1.0 / separation);
  std::vector<PunctureData> out(2);
  out[0] = {m1, {x1, 0, 0}, {0, p, 0}, {0, 0, 0}};
  out[1] = {m2, {x2, 0, 0}, {0, -p, 0}, {0, 0, 0}};
  return out;
}

void set_minkowski(const mesh::Mesh& mesh, BssnState& state) {
  state.resize(mesh.num_dofs());
  for (int v = 0; v < kNumVars; ++v) {
    const Real a = var_asymptotic(v);
    Real* f = state.field(v);
    for (std::size_t d = 0; d < mesh.num_dofs(); ++d) f[d] = a;
  }
}

Real bl_conformal_factor(const std::vector<PunctureData>& punctures, Real x,
                         Real y, Real z, Real r_floor) {
  Real psi = 1.0;
  for (const auto& p : punctures) {
    const Real dx = x - p.pos[0], dy = y - p.pos[1], dz = z - p.pos[2];
    const Real r = std::max(std::sqrt(dx * dx + dy * dy + dz * dz), r_floor);
    psi += p.mass / (2.0 * r);
  }
  return psi;
}

void set_punctures(const mesh::Mesh& mesh,
                   const std::vector<PunctureData>& punctures,
                   BssnState& state, Real r_floor) {
  set_minkowski(mesh, state);
  const std::size_t n = mesh.num_dofs();
  for (std::size_t d = 0; d < n; ++d) {
    const auto pos = mesh.dof_position(static_cast<DofIndex>(d));
    const Real psi =
        bl_conformal_factor(punctures, pos[0], pos[1], pos[2], r_floor);
    const Real chi = 1.0 / std::pow(psi, 4);
    state.field(kChi)[d] = chi;
    state.field(kAlpha)[d] = 1.0 / (psi * psi);  // pre-collapsed lapse

    // Bowen–York conformal extrinsic curvature, summed over punctures:
    //   Ahat_ij = 3/(2 r^2) [P_i n_j + P_j n_i - (delta_ij - n_i n_j) P.n]
    //           + 3/r^3 [eps_kil S^k n^l n_j + eps_kjl S^k n^l n_i].
    // Physical K_ij = psi^-2 Ahat_ij, so At_ij = chi K_ij = psi^-6 Ahat_ij.
    Real Ahat[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& p : punctures) {
      const Real dx = pos[0] - p.pos[0];
      const Real dy = pos[1] - p.pos[1];
      const Real dz = pos[2] - p.pos[2];
      const Real r =
          std::max(std::sqrt(dx * dx + dy * dy + dz * dz), r_floor);
      const Real nvec[3] = {dx / r, dy / r, dz / r};
      const Real* P = p.momentum.data();
      const Real* S = p.spin.data();
      const Real Pn = P[0] * nvec[0] + P[1] * nvec[1] + P[2] * nvec[2];
      // (S x n)_i = eps_ikl S^k n^l.
      const Real Sxn[3] = {S[1] * nvec[2] - S[2] * nvec[1],
                           S[2] * nvec[0] - S[0] * nvec[2],
                           S[0] * nvec[1] - S[1] * nvec[0]};
      for (int i = 0; i < 3; ++i)
        for (int j = i; j < 3; ++j) {
          const Real dij = (i == j) ? 1.0 : 0.0;
          Real lin = P[i] * nvec[j] + P[j] * nvec[i] -
                     (dij - nvec[i] * nvec[j]) * Pn;
          lin *= 3.0 / (2.0 * r * r);
          Real sp = Sxn[i] * nvec[j] + Sxn[j] * nvec[i];
          sp *= 3.0 / (r * r * r);
          Ahat[sym_idx(i, j)] += lin + sp;
        }
    }
    const Real psi6 = std::pow(psi, 6);
    for (int s = 0; s < 6; ++s)
      state.field(kAtxx + s)[d] = Ahat[s] / psi6;
  }
}

}  // namespace dgr::bssn
