file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_roofline.dir/bench_fig14_roofline.cpp.o"
  "CMakeFiles/bench_fig14_roofline.dir/bench_fig14_roofline.cpp.o.d"
  "bench_fig14_roofline"
  "bench_fig14_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
