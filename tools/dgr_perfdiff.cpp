/// \file dgr_perfdiff.cpp
/// \brief Perf-trajectory regression gate: diff two directories of
/// BENCH_*.json reports (the bench_common::Reporter output) and fail on
/// gated metrics that drifted past the threshold. All of the logic lives
/// in obs/perfdiff.{hpp,cpp} so tests can drive it in-process; this
/// binary is the thin CLI the CI perf-trajectory job invokes:
///
///   dgr_perfdiff bench/baselines telemetry/current \
///       --threshold 0.1 --gate '(pair:|gauge:bench\.hit_rate)'
///
/// Exit 0 clean, 1 regressions or structural problems (missing bench,
/// unparsable report), 2 usage/IO errors.

#include "obs/perfdiff.hpp"

int main(int argc, char** argv) {
  return dgr::obs::perfdiff::run_cli(argc, argv);
}
