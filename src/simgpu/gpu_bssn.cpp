#include "simgpu/gpu_bssn.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gw/psi4.hpp"

namespace dgr::simgpu {

using bssn::BssnState;
using bssn::kNumVars;
using mesh::kPatchPts;

namespace {
std::uint64_t state_bytes(const mesh::Mesh& m) {
  return std::uint64_t(m.num_dofs()) * kNumVars * sizeof(Real);
}
}  // namespace

GpuBssnSolver::GpuBssnSolver(std::shared_ptr<mesh::Mesh> mesh,
                             GpuSolverConfig config, perf::MachineModel model)
    : mesh_(std::move(mesh)), config_(config), runtime_(std::move(model)) {
  DGR_CHECK(mesh_ != nullptr);
  state_.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  // Device allocations: 6 state-sized vectors + the chunked patch buffers.
  runtime_.device_alloc(6 * state_bytes(*mesh_));
  const std::size_t cap =
      std::size_t(config_.chunk_octants) * kNumVars * kPatchPts;
  patch_in_.resize(cap);
  patch_out_.resize(cap);
  runtime_.device_alloc(2 * cap * sizeof(Real));
}

void GpuBssnSolver::upload(const bssn::BssnState& state) {
  DGR_CHECK(state.num_dofs() == mesh_->num_dofs());
  state_ = state;
  runtime_.h2d(state_bytes(*mesh_));
}

BssnState GpuBssnSolver::download() {
  runtime_.d2h(state_bytes(*mesh_));
  return state_;
}

void GpuBssnSolver::compute_rhs(const BssnState& u, BssnState& rhs) {
  const auto in = u.cptrs();
  const auto out = rhs.ptrs();
  const OctIndex n = static_cast<OctIndex>(mesh_->num_octants());
  const Real half = mesh_->domain().half_extent;

  // Halo exchange (Algorithm 1 line 6): on a single simulated device the
  // partition is whole, so only the (empty) kernel is recorded.
  runtime_.launch("halo-exchange", 1, 0, [&](OpCounts&) {});

  for (OctIndex begin = 0; begin < n; begin += config_.chunk_octants) {
    const OctIndex end = std::min<OctIndex>(begin + config_.chunk_octants, n);

    runtime_.launch("octant-to-patch", std::uint64_t(end - begin) * kNumVars,
                    0, [&](OpCounts& c) {
                      mesh_->unzip(in.data(), kNumVars, begin, end,
                                   patch_in_.data(),
                                   mesh::UnzipMethod::kLoopOverOctants, &c);
                    });

    runtime_.launch("bssn-rhs", std::uint64_t(end - begin), 0,
                    [&](OpCounts& c) {
                      for (OctIndex e = begin; e < end; ++e) {
                        const std::size_t base =
                            std::size_t(e - begin) * kNumVars * kPatchPts;
                        const Real* pin[kNumVars];
                        Real* pout[kNumVars];
                        for (int v = 0; v < kNumVars; ++v) {
                          pin[v] = &patch_in_[base + v * kPatchPts];
                          pout[v] = &patch_out_[base + v * kPatchPts];
                        }
                        bssn::bssn_rhs_patch(pin, pout, mesh_->patch_geom(e),
                                             half, config_.bssn, ws_, &c);
                      }
                    });

    runtime_.launch("patch-to-octant", std::uint64_t(end - begin) * kNumVars,
                    0, [&](OpCounts& c) {
                      mesh_->zip(patch_out_.data(), kNumVars, begin, end,
                                 out.data(), &c);
                    });
  }
}

void GpuBssnSolver::launch_axpy(const char* name, BssnState& y, Real s,
                                const BssnState& x, bool assign_from_base,
                                const BssnState* base) {
  runtime_.launch(name, mesh_->num_dofs(), 0, [&](OpCounts& c) {
    if (assign_from_base)
      y.set_axpy(*base, s, x);
    else
      y.axpy(s, x);
    const std::uint64_t n = std::uint64_t(mesh_->num_dofs()) * kNumVars;
    c.flops += 2 * n;
    c.bytes_read += 2 * n * sizeof(Real);
    c.bytes_written += n * sizeof(Real);
  });
}

void GpuBssnSolver::rk4_step(Real dt) {
  compute_rhs(state_, k_[0]);
  launch_axpy("axpy", stage_, 0.5 * dt, k_[0], true, &state_);
  compute_rhs(stage_, k_[1]);
  launch_axpy("axpy", stage_, 0.5 * dt, k_[1], true, &state_);
  compute_rhs(stage_, k_[2]);
  launch_axpy("axpy", stage_, dt, k_[2], true, &state_);
  compute_rhs(stage_, k_[3]);
  launch_axpy("axpy", state_, dt / 6.0, k_[0], false, nullptr);
  launch_axpy("axpy", state_, dt / 3.0, k_[1], false, nullptr);
  launch_axpy("axpy", state_, dt / 3.0, k_[2], false, nullptr);
  launch_axpy("axpy", state_, dt / 6.0, k_[3], false, nullptr);
  time_ += dt;
}

std::vector<gw::SphereModes> GpuBssnSolver::extract_waves(
    const gw::WaveExtractor& ex) {
  std::vector<gw::SphereModes> modes;
  runtime_.launch("psi4-extract", mesh_->num_octants(), /*stream=*/1,
                  [&](OpCounts& c) {
                    modes = ex.extract_from_state(*mesh_, state_,
                                                  config_.bssn);
                    // Rough accounting: one Ricci-scale pass per octant.
                    c.flops += std::uint64_t(mesh_->num_octants()) *
                               mesh::kOctPts * 600;
                    c.bytes_read += std::uint64_t(mesh_->num_octants()) *
                                    kNumVars * kPatchPts * sizeof(Real);
                  });
  return modes;
}

}  // namespace dgr::simgpu
