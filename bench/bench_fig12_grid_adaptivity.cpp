/// \file bench_fig12_grid_adaptivity.cpp
/// \brief Regenerates Figs. 12 and 13: octant refinement-level profiles
/// along the x axis for (a) an inspiral-stage q = 8 binary grid (deep
/// levels pinned to the two punctures, asymmetric depths) and (b) a
/// post-merger-style grid (single remnant plus refined outgoing-wave
/// shells). These grids are exactly the shape local timestepping exists
/// for, so the bench also runs the paired sub-cycling on/off evolve
/// timings over depth spreads 1..3: per-substep active-octant counts and
/// the deterministic work ratio gate the perf trajectory, the measured
/// wall speedups ride along report-only.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace dgr;

void print_profile(const oct::Octree& tree, const oct::Domain& dom,
                   const char* title) {
  std::printf("\n  %s\n", title);
  std::printf("  x (M)      level  bar\n");
  const int samples = 64;
  for (int i = 0; i < samples; ++i) {
    const Real x =
        -dom.half_extent + (i + 0.5) * (2 * dom.half_extent / samples);
    const auto cx = static_cast<oct::Coord>(
        (x + dom.half_extent) / (2 * dom.half_extent) * oct::kDomainSize);
    const OctIndex e =
        tree.find_leaf(cx, oct::kDomainSize / 2, oct::kDomainSize / 2);
    const int lvl = tree.leaf(e).level;
    std::printf("  %+8.1f   %-5d  ", x, lvl);
    for (int b = 0; b < lvl; ++b) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Figs. 12/13", "grid level variation along x");
  bench::Reporter rep("fig12_grid_adaptivity", argc, argv);

  // Fig. 12: q = 8 inspiral — small hole much deeper than the large one.
  {
    oct::Domain dom{64.0};
    const Real q = 8, sep = 8;
    const Real m1 = q / (1 + q), m2 = 1 / (1 + q);
    auto tree = oct::build_puncture_octree(
        dom,
        {{{sep * m2, 0, 0}, 9 /* small hole, deep */},
         {{-sep * m1, 0, 0}, 6 /* large hole */}},
        2);
    std::printf("  inspiral grid: %zu octants, levels %d..%d\n", tree.size(),
                tree.min_level(), tree.max_level());
    rep.metric("inspiral_octants", double(tree.size()));
    rep.pair("inspiral_max_level", 9, tree.max_level());
    print_profile(tree, dom, "Fig. 12: inspiral (q=8), level vs x");
  }

  // Fig. 13: post-merger — remnant at center plus refined wave shells.
  {
    oct::Domain dom{64.0};
    auto should_split = [&](const oct::TreeNode& t) {
      if (t.level < 2) return oct::Refine::kSplit;
      const Real e = dom.octant_edge(t.level);
      const auto lo = dom.to_phys(t.x, t.y, t.z);
      const std::array<Real, 3> hi = {lo[0] + e, lo[1] + e, lo[2] + e};
      const Real d =
          std::sqrt(oct::point_box_dist2({0, 0, 0}, lo, hi));
      const Real far = std::sqrt(std::max(
          oct::point_box_dist2({0, 0, 0}, lo, hi),
          std::pow(std::max({std::abs(lo[0]), std::abs(hi[0]),
                             std::abs(lo[1]), std::abs(hi[1]),
                             std::abs(lo[2]), std::abs(hi[2])}),
                   2)));
      // Remnant cascade at the center...
      if (t.level < 7 && d < 1.5 * e) return oct::Refine::kSplit;
      // ...plus a refined shell tracking the outgoing radiation (r ~ 30 M).
      const Real shell_r = 30.0, shell_w = 8.0;
      if (t.level < 4 && far >= shell_r - shell_w && d <= shell_r + shell_w)
        return oct::Refine::kSplit;
      return oct::Refine::kKeep;
    };
    auto tree = oct::Octree::build(should_split, 8).balanced();
    std::printf("\n  post-merger grid: %zu octants, levels %d..%d\n",
                tree.size(), tree.min_level(), tree.max_level());
    rep.metric("post_merger_octants", double(tree.size()));
    rep.pair("post_merger_max_level", 7, tree.max_level());
    print_profile(tree, dom, "Fig. 13: post-merger, level vs x (wave shell)");
  }
  dgr::bench::note("deep pinned levels at the punctures during inspiral;");
  dgr::bench::note("after merger the adaptivity follows the outgoing waves.");

  // ---- Local timestepping on these grid shapes: paired sub-cycling
  // on/off evolve timings over increasing depth spread. Coarse-dominated
  // single-puncture grids (base level 2 on a 128 M box, cascade to
  // 2 + spread): as the spread grows, global-dt pays the finest dt on an
  // ever-larger coarse majority, and the sub-cycled walk's advantage is
  // monotone in the spread.
  std::printf("\n  local timestepping: paired evolve, depth spread 1..3\n");
  std::printf(
      "  spread | octants | cycle | work ratio | t_global (s) | t_sub (s)"
      " | speedup\n");
  double prev_speedup = 0;
  for (int spread = 1; spread <= 3; ++spread) {
    const std::string tag = "spread" + std::to_string(spread);
    oct::Domain dom{64.0};
    auto m = std::make_shared<mesh::Mesh>(
        oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 2 + spread}},
                                   2),
        dom);
    solver::SolverConfig scfg;
    scfg.bssn.ko_sigma = 0.3;
    solver::BssnCtx global(m, scfg);
    solver::BssnCtx sub(m, scfg);
    for (solver::BssnCtx* c : {&global, &sub}) {
      c->state().resize(m->num_dofs());
      bssn::set_punctures(
          *m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}}, c->state());
    }
    const auto& idx = sub.subcycle_index();
    const int cycle = idx.cycle();
    const Real dt = global.suggested_dt();
    // Deterministic work counts: RK-stage octant evaluations per cycle,
    // sub-cycled vs global-dt. These (and the per-substep active-octant
    // counts) are thread/SIMD/machine independent and gate the perf
    // trajectory; wall speedups below are report-only.
    const double work_ratio = double(idx.global_octant_evals()) /
                              double(idx.cycle_octant_evals());
    rep.metric("grid_" + tag + "_octants", double(m->num_octants()));
    rep.metric("grid_" + tag + "_cycle", double(cycle));
    for (int s = 0; s < cycle; ++s)
      rep.metric("grid_" + tag + "_active_" + std::to_string(s),
                 double(idx.active_octants(s)));
    rep.pair("subcycle_work_ratio_" + tag, NAN, work_ratio);

    // Unmeasured warmup: one global step warms the caches, one sub-cycle
    // pays the one-time dense bootstrap (a full-mesh RHS) and the retained-
    // stage allocations, so the measured cycle is the steady state.
    global.rk4_step(dt);
    sub.subcycle_cycle(dt);
    // One measured coarse cycle per leg: at spread 3 that is already 8
    // global-dt RK4 steps on ~1.2k octants, enough for a stable ratio.
    const int kCycles = 1;
    WallTimer tg;
    for (int i = 0; i < kCycles * cycle; ++i) global.rk4_step(dt);
    const double t_global = tg.seconds();
    WallTimer ts;
    for (int c = 0; c < kCycles; ++c) sub.subcycle_cycle(dt);
    const double t_sub = ts.seconds();
    const double speedup = t_global / t_sub;
    rep.metric("subcycle_speedup_" + tag, speedup);
    rep.metric("subcycle_t_global_" + tag, t_global);
    rep.metric("subcycle_t_sub_" + tag, t_sub);
    std::printf("  %-6d | %-7zu | %-5d | %-10.2f | %-12.3f | %-9.3f | %.2fx\n",
                spread, m->num_octants(), cycle, work_ratio, t_global, t_sub,
                speedup);
    for (int s = 0; s < cycle; ++s)
      std::printf("           substep %d: %zu active octants\n", s,
                  idx.active_octants(s));
    if (spread == 3 && speedup < 1.5)
      std::printf("  [warn] spread-3 speedup %.2fx below the 1.5x target\n",
                  speedup);
    if (speedup < prev_speedup)
      std::printf("  [warn] speedup not monotone in depth spread\n");
    prev_speedup = speedup;
  }
  dgr::bench::note("sub-cycling: work ratio is the deterministic per-cycle");
  dgr::bench::note("RK-stage octant-evaluation saving (gated); wall speedup");
  dgr::bench::note("approaches it as depth spread grows (report-only).");
  return 0;
}
