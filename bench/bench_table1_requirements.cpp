/// \file bench_table1_requirements.cpp
/// \brief Regenerates Table I: resolution and timestep requirements for
/// binaries of increasing mass ratio (120 points across each horizon,
/// initial separation d = 8, merger times from NR for q <= 16 and
/// calibrated 2.5PN above).

#include <cstdio>

#include "bench_common.hpp"
#include "perf/requirements.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Table I", "resolution requirements vs mass ratio");
  bench::Reporter rep("table1_requirements", argc, argv);

  struct PaperRow {
    double q, dx1, dx2, time, steps;
  };
  const PaperRow paper[] = {
      {1, 8.33e-3, 8.33e-3, 650, 7.8e4},    {4, 3.33e-3, 1.33e-2, 700, 2.1e5},
      {16, 9.80e-4, 1.57e-2, 1400, 1.4e6},  {64, 2.56e-4, 1.64e-2, 6000, 2.3e7},
      {256, 6.46e-5, 1.65e-2, 24000, 3.7e8}, {512, 3.23e-5, 1.65e-2, 48000, 1.5e9},
  };

  std::printf(
      "  %-6s | %-22s | %-22s | %-18s | %-20s\n"
      "  %-6s | %-10s %-11s | %-10s %-11s | %-8s %-9s | %-9s %-10s\n",
      "q", "dx_min(small BH)", "dx_min(large BH)", "merger time",
      "timesteps", "", "paper", "ours", "paper", "ours", "paper", "ours",
      "paper", "ours");
  for (const auto& row : paper) {
    const auto r = perf::resolution_requirements(row.q);
    const std::string q = std::to_string(int(row.q));
    rep.pair("dx_small_q" + q, row.dx1, r.dx_small);
    rep.pair("merger_time_q" + q, row.time, r.merger_time);
    rep.pair("timesteps_q" + q, row.steps, r.timesteps);
    std::printf(
        "  %-6.0f | %-10.2e %-11.2e | %-10.2e %-11.2e | %-8.0f %-9.0f | "
        "%-9.1e %-10.1e\n",
        row.q, row.dx1, r.dx_small, row.dx2, r.dx_large, row.time,
        r.merger_time, row.steps, r.timesteps);
  }
  bench::note("dx from ~120 points across the isotropic horizon diameter;");
  bench::note("merger times: NR values (q<=16), calibrated 2.5PN quadrupole");
  bench::note("decay above; timesteps use the table's dt = dx convention.");
  return 0;
}
