#include "dist/sim_comm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dgr::dist {

namespace {
constexpr double kUs = 1e6;  // virtual seconds -> trace microseconds
}

SimComm::SimComm(int ranks, perf::HierarchicalNetworkModel net,
                 FaultPlan* faults, double start_clock, int epoch)
    : net_(net),
      stats_(ranks),
      mailbox_(ranks),
      faults_(faults),
      dead_(ranks, false),
      fail_time_(ranks, 0),
      reported_(ranks, false) {
  DGR_CHECK(ranks >= 1 && start_clock >= 0);
  for (auto& s : stats_) s.clock = start_clock;
  trace_ = obs::trace();
  tracks_.resize(ranks);
  if (trace_) {
    for (int r = 0; r < ranks; ++r) {
      std::string proc = "rank " + std::to_string(r);
      if (epoch > 0) proc += " (epoch " + std::to_string(epoch) + ")";
      tracks_[r].exec = trace_->add_track(proc, "exec", obs::Clock::kVirtual);
      tracks_[r].halo = trace_->add_track(proc, "halo", obs::Clock::kVirtual);
    }
  }
}

void SimComm::trace_span(int track, const std::string& name, const char* cat,
                         double t0, double t1) {
  if (!trace_ || t1 <= t0) return;
  trace_->span_begin(track, name, cat, t0 * kUs);
  trace_->span_end(track, t1 * kUs);
}

double SimComm::max_clock() const {
  double m = 0;
  for (const auto& s : stats_) m = std::max(m, s.clock);
  return m;
}

std::uint64_t SimComm::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& m : log_) b += m.bytes;
  return b;
}

int SimComm::alive_count() const {
  int n = 0;
  for (std::size_t r = 0; r < dead_.size(); ++r) n += !dead_[r];
  return n;
}

void SimComm::fail_rank(int r, double t) {
  DGR_CHECK(r >= 0 && r < ranks() && t >= 0);
  DGR_CHECK_MSG(!dead_[r], "rank already failed");
  dead_[r] = true;
  fail_time_[r] = t;
  if (trace_) trace_->instant(tracks_[r].exec, "rank-failure", "fault", t * kUs);
}

std::vector<int> SimComm::detect_failures(double heartbeat_period,
                                          double timeout) {
  DGR_CHECK(heartbeat_period > 0 && timeout >= 0);
  std::vector<int> detected;
  double t_base = 0;
  for (int r = 0; r < ranks(); ++r)
    if (!dead_[r]) t_base = std::max(t_base, stats_[r].clock);
  for (int r = 0; r < ranks(); ++r) {
    if (!dead_[r] || reported_[r]) continue;
    reported_[r] = true;
    detected.push_back(r);
    t_base = std::max(t_base, fail_time_[r]);
  }
  if (detected.empty()) return detected;
  // Survivors can only notice missing beats once they reach their sync
  // point (the lockstep engine finishes the interrupted step first): the
  // first heartbeat slot strictly after `t_base` goes unanswered, and
  // death is declared `timeout` later — every survivor stalls until then.
  const double slot =
      (std::floor(t_base / heartbeat_period) + 1) * heartbeat_period;
  const double t_detect = slot + timeout;
  for (int r = 0; r < ranks(); ++r) {
    if (dead_[r]) continue;
    RankStats& s = stats_[r];
    if (t_detect > s.clock) {
      trace_span(tracks_[r].exec, "failure-detect", "fault", s.clock,
                 t_detect);
      s.t_failover += t_detect - s.clock;
      s.clock = t_detect;
    }
  }
  return detected;
}

void SimComm::advance(int r, double seconds) {
  DGR_CHECK(seconds >= 0);
  trace_span(tracks_[r].exec, "compute", "compute", stats_[r].clock,
             stats_[r].clock + seconds);
  stats_[r].clock += seconds;
  stats_[r].t_compute += seconds;
}

SimComm::Request SimComm::irecv(int r, int src, int tag, Payload* out) {
  DGR_CHECK(out != nullptr && r != src);
  Req q;
  q.recv = true;
  q.rank = r;
  q.peer = src;
  q.tag = tag;
  q.t_post = stats_[r].clock;
  q.out = out;
  reqs_.push_back(q);
  return Request{reqs_.size() - 1};
}

SimComm::Request SimComm::isend(int r, int dst, int tag, Payload payload) {
  DGR_CHECK(r != dst);
  const std::uint64_t bytes = payload.size() * sizeof(Real);
  const perf::NetworkModel& link = net_.link(r, dst);
  Req q;
  q.rank = r;
  q.peer = dst;
  q.tag = tag;
  q.t_post = stats_[r].clock;
  q.done = true;  // nonblocking send completes locally at injection
  reqs_.push_back(q);

  // Injection serializes on the sender (alpha per message); the payload is
  // deliverable once it has crossed the wire.
  stats_[r].clock += link.alpha;
  double t_ready = stats_[r].clock + link.beta * double(bytes);
  if (faults_) {
    const FaultPlan::MsgFault f = faults_->draw_msg_fault();
    const FaultConfig& fc = faults_->config();
    if (f.drops > 0) {
      // Each lost attempt costs the receiver-side NACK timeout (backing off
      // per attempt) plus a fresh injection + serialization for the resend.
      double timeout = fc.retry_timeout;
      for (int k = 0; k < f.drops; ++k) {
        t_ready += timeout + link.alpha + link.beta * double(bytes);
        timeout *= fc.retry_backoff;
      }
      stats_[r].retransmits += std::uint64_t(f.drops);
      obs::count("dist.faults.msg_retransmits", std::uint64_t(f.drops));
      if (trace_)
        trace_->instant(tracks_[r].exec, "msg-drop", "fault",
                        q.t_post * kUs);
    } else if (f.delayed) {
      t_ready += (fc.msg_delay_factor - 1.0) * link.beta * double(bytes);
      stats_[r].msgs_delayed += 1;
      obs::count("dist.faults.msg_delayed");
      if (trace_)
        trace_->instant(tracks_[r].exec, "msg-delay", "fault",
                        q.t_post * kUs);
    }
  }
  stats_[r].msgs_sent += 1;
  stats_[r].bytes_sent += bytes;
  const std::uint64_t seq = log_.size();
  if (trace_) {
    trace_->span_begin(tracks_[r].exec, "isend", "comm", q.t_post * kUs,
                       {{"dst", std::to_string(dst)},
                        {"bytes", std::to_string(bytes)}});
    trace_->flow_begin(tracks_[r].exec, "msg", "comm", q.t_post * kUs, seq);
    trace_->span_end(tracks_[r].exec, stats_[r].clock * kUs);
  }
  log_.push_back({r, dst, tag, bytes, q.t_post, t_ready});
  mailbox_[dst].push_back({r, tag, std::move(payload), t_ready, seq});
  return Request{reqs_.size() - 1};
}

void SimComm::wait_all(int r, std::vector<Request>& reqs) {
  double t_post_min = -1, arrival = -1;
  std::vector<std::pair<std::uint64_t, double>> delivered;  // (seq, t_ready)
  for (const Request& h : reqs) {
    DGR_CHECK(h.idx < reqs_.size());
    Req& q = reqs_[h.idx];
    DGR_CHECK(q.rank == r);
    if (q.done) continue;  // sends (or repeated waits)
    DGR_CHECK(q.recv);
    // Match the oldest unconsumed mailbox entry with (src, tag).
    Pending* match = nullptr;
    for (Pending& p : mailbox_[r])
      if (!p.consumed && p.src == q.peer && p.tag == q.tag) {
        match = &p;
        break;
      }
    DGR_CHECK_MSG(match != nullptr, "wait_all: unmatched irecv");
    *q.out = std::move(match->data);
    match->consumed = true;
    q.done = true;
    t_post_min = t_post_min < 0 ? q.t_post : std::min(t_post_min, q.t_post);
    arrival = std::max(arrival, match->t_ready);
    if (trace_) delivered.emplace_back(match->seq, match->t_ready);
  }
  mailbox_[r].erase(
      std::remove_if(mailbox_[r].begin(), mailbox_[r].end(),
                     [](const Pending& p) { return p.consumed; }),
      mailbox_[r].end());
  if (arrival < 0) return;  // nothing but sends

  RankStats& s = stats_[r];
  const double t_wait = s.clock;
  const double exposed = std::max(0.0, arrival - t_wait);
  // Portion of the comm window [t_post_min, arrival] covered by the compute
  // this rank performed between posting the receives and waiting.
  const double hidden =
      std::max(0.0, std::min(t_wait, arrival) - t_post_min);
  s.t_comm_exposed += exposed;
  s.t_comm_hidden += hidden;
  // Virtual-clock durations are deterministic model outputs, so these
  // histograms are safe to record unconditionally (unlike wall-clock
  // timing histograms, which are gated behind enable_timing).
  obs::observe_hist("dist.halo.exposed_us", exposed * kUs);
  obs::observe_hist("dist.halo.hidden_us", hidden * kUs);
  if (trace_) {
    // Halo row: the comm window split into its hidden and exposed parts.
    const double t_split = std::min(t_wait, arrival);
    trace_span(tracks_[r].halo, "halo hidden", "comm", t_post_min, t_split);
    trace_span(tracks_[r].halo, "halo exposed", "comm", t_split, arrival);
    // Exec row: the stall, if any.
    trace_span(tracks_[r].exec, "wait", "comm", t_wait, arrival);
    // Message-flow arrows terminate at each payload's delivery time.
    for (const auto& [seq, t_ready] : delivered)
      trace_->flow_end(tracks_[r].halo, "msg", "comm", t_ready * kUs, seq);
  }
  s.clock = std::max(s.clock, arrival);
}

double SimComm::reduce_clocks(std::uint64_t bytes) {
  const double sync = max_clock();
  const double cost = net_.allreduce_time(ranks(), bytes);
  for (int r = 0; r < ranks(); ++r) {
    RankStats& s = stats_[r];
    trace_span(tracks_[r].exec, "allreduce", "collective", s.clock,
               sync + cost);
    s.t_collective += (sync + cost) - s.clock;
    s.clock = sync + cost;
  }
  return cost;
}

double SimComm::allreduce_min(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  return *std::min_element(contrib.begin(), contrib.end());
}

double SimComm::allreduce_max(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  return *std::max_element(contrib.begin(), contrib.end());
}

double SimComm::allreduce_sum(const std::vector<double>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  reduce_clocks(sizeof(double));
  double s = 0;
  for (double v : contrib) s += v;
  return s;
}

SimComm::Payload SimComm::allgather(const std::vector<Payload>& contrib) {
  DGR_CHECK(contrib.size() == stats_.size());
  const double sync = max_clock();
  // Ring allgather: every rank receives each other rank's block once, so
  // rank r pays sum over peers of one message of that peer's block over the
  // peer->r link.
  for (int r = 0; r < ranks(); ++r) {
    double cost = 0;
    for (int p = 0; p < ranks(); ++p) {
      if (p == r) continue;
      cost += net_.time(p, r, contrib[p].size() * sizeof(Real), 1);
      stats_[p].msgs_sent += 1;  // each block forwarded once along the ring
      stats_[p].bytes_sent += contrib[p].size() * sizeof(Real);
    }
    trace_span(tracks_[r].exec, "allgather", "collective", stats_[r].clock,
               sync + cost);
    stats_[r].t_collective += (sync + cost) - stats_[r].clock;
    stats_[r].clock = sync + cost;
  }
  Payload all;
  for (const Payload& c : contrib) all.insert(all.end(), c.begin(), c.end());
  return all;
}

}  // namespace dgr::dist
