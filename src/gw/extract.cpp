#include "gw/extract.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gw/psi4.hpp"
#include "mesh/sampling.hpp"

namespace dgr::gw {

namespace {
int num_modes(int lmax) {
  int n = 0;
  for (int l = 2; l <= lmax; ++l) n += 2 * l + 1;
  return n;
}
}  // namespace

WaveExtractor::WaveExtractor(std::vector<Real> radii, int lmax, int quad_order)
    : radii_(std::move(radii)), lmax_(lmax), quad_(gauss_product(quad_order)) {
  DGR_CHECK(lmax_ >= 2);
  basis_conj_.resize(num_modes(lmax_));
  for (int l = 2; l <= lmax_; ++l)
    for (int m = -l; m <= l; ++m) {
      auto& b = basis_conj_[SphereModes::mode_index(l, m)];
      b.resize(quad_.size());
      for (std::size_t i = 0; i < quad_.size(); ++i) {
        const auto& n = quad_.points[i];
        const Real theta = std::acos(std::clamp(n[2], Real(-1), Real(1)));
        const Real phi = std::atan2(n[1], n[0]);
        b[i] = std::conj(swsh_m2(l, m, theta, phi));
      }
    }
}

std::vector<SphereModes> WaveExtractor::extract(const mesh::Mesh& mesh,
                                                const Real* psi4_re,
                                                const Real* psi4_im) const {
  mesh::PointSampler sampler(mesh);
  std::vector<SphereModes> out;
  out.reserve(radii_.size());
  std::vector<Complex> samples(quad_.size());
  for (Real r : radii_) {
    for (std::size_t i = 0; i < quad_.size(); ++i) {
      const auto& n = quad_.points[i];
      const Real re = sampler.evaluate(psi4_re, r * n[0], r * n[1], r * n[2]);
      const Real im = sampler.evaluate(psi4_im, r * n[0], r * n[1], r * n[2]);
      samples[i] = {re, im};
    }
    out.push_back(decompose(samples, r));
  }
  return out;
}

std::vector<SphereModes> WaveExtractor::extract_from_state(
    const mesh::Mesh& mesh, const bssn::BssnState& state,
    const bssn::BssnParams& params) const {
  std::vector<Real> re(mesh.num_dofs()), im(mesh.num_dofs());
  compute_psi4_field(mesh, state, params, re.data(), im.data());
  return extract(mesh, re.data(), im.data());
}

SphereModes WaveExtractor::decompose(const std::vector<Complex>& samples,
                                     Real radius) const {
  DGR_CHECK(samples.size() == quad_.size());
  SphereModes modes;
  modes.radius = radius;
  modes.lmax = lmax_;
  modes.coeffs.resize(num_modes(lmax_));
  for (int l = 2; l <= lmax_; ++l)
    for (int m = -l; m <= l; ++m) {
      const auto& b = basis_conj_[SphereModes::mode_index(l, m)];
      Complex s{0, 0};
      for (std::size_t i = 0; i < quad_.size(); ++i)
        s += quad_.weights[i] * samples[i] * b[i];
      modes.coeffs[SphereModes::mode_index(l, m)] = s;
    }
  return modes;
}

}  // namespace dgr::gw
