# Empty dependencies file for dgr_solver.
# This may be replaced when dependencies are built.
