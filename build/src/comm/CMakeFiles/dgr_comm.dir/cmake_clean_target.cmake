file(REMOVE_RECURSE
  "libdgr_comm.a"
)
