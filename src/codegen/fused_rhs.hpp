#pragma once
/// \file fused_rhs.hpp
/// \brief SIMD-vectorized, stencil-fused BSSN RHS (ROADMAP item 2): the
/// derivative stencils are evaluated point-locally and written straight
/// into a structure-of-arrays input block, which the scheduled register-
/// machine program then consumes W points at a time through the explicit
/// `dgr::simd<double, W>` packs.
///
/// Compared to `bssn_rhs_patch_interp` this eliminates almost all of the
/// patch-sized intermediate arrays (72 gradients, 72 advective gradients,
/// 33 of 66 Hessian components, 24 KO buffers — each 13^3 doubles) and the
/// out-of-interior sweep work that produced them: centered sweeps fill
/// 7x13x13 = 1183 points per axis where the algebra consumes only the 7^3 =
/// 343 interior ones. The only intermediates kept are the 22 inner
/// first-derivative sweeps feeding the mixed second derivatives, where the
/// sweep's value reuse beats per-point recomputation.
///
/// Determinism contract: at every point the fused path is bitwise identical
/// to the interpreter path with the same kernel (and to itself at any SIMD
/// width and thread count). See stencils_point.hpp and
/// CompiledKernel::run_block for the mechanism; tests/test_codegen.cpp and
/// tests/test_determinism.cpp enforce it.

#include "bssn/rhs.hpp"
#include "codegen/machine.hpp"

namespace dgr::codegen {

/// Per-thread scratch of the fused path: the SoA input/output blocks, the
/// inner mixed-derivative sweeps and the kernel spill scratch. Allocate one
/// per execution lane — not shareable across concurrent calls.
struct FusedWorkspace {
  std::vector<Real> inner_d1;  ///< [hvar][axis 0|1] * kPatchPts
  std::vector<Real> in_soa;    ///< [input_id] * 343 interior points
  std::vector<Real> out_soa;   ///< [var] * 343 interior points
  std::vector<Real> spill;     ///< kernel spill scratch (widest pack)

  FusedWorkspace();
  Real* inner_of(int hvar, int axis) {
    return inner_d1.data() + (hvar * 2 + axis) * mesh::kPatchPts;
  }
};

/// Full RHS on one patch through the fused SIMD path. Semantics match
/// `bssn_rhs_patch` evaluated with the kernel's scheduled algebra: the
/// derivative and algebraic stages are fused, and the Sommerfeld boundary
/// overwrite is applied when `params.sommerfeld` is set (unlike the interp
/// path, this one is a production solver kernel). `width` selects the SIMD
/// pack width (1 or 4; 0 = the active runtime width from DGR_SIMD).
void bssn_rhs_patch_fused(const Real* const in[bssn::kNumVars],
                          Real* const out[bssn::kNumVars],
                          const mesh::PatchGeom& geom, Real half_extent,
                          const bssn::BssnParams& params,
                          const CompiledKernel& kernel, FusedWorkspace& ws,
                          OpCounts* counts = nullptr, int width = 0);

}  // namespace dgr::codegen
