# Empty dependencies file for dgr_gw.
# This may be replaced when dependencies are built.
