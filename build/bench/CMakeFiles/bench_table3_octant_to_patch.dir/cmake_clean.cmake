file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_octant_to_patch.dir/bench_table3_octant_to_patch.cpp.o"
  "CMakeFiles/bench_table3_octant_to_patch.dir/bench_table3_octant_to_patch.cpp.o.d"
  "bench_table3_octant_to_patch"
  "bench_table3_octant_to_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_octant_to_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
