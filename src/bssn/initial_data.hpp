#pragma once
/// \file initial_data.hpp
/// \brief Puncture initial data for binary black holes.
///
/// The paper's production runs solve the two-puncture elliptic problem with
/// a separate `tpid` solver. Here we provide the closed-form families that
/// cover the same code paths without an elliptic solve (documented
/// substitution in DESIGN.md):
///  - Minkowski (flat space),
///  - Brill–Lindquist N-puncture data (exact for zero momenta/spins),
///  - Bowen–York extrinsic curvature with the Brill–Lindquist conformal
///    factor (approximate for nonzero momenta, as in standard moving
///    puncture test setups).
/// The lapse is pre-collapsed (alpha = psi^-2) and the shift starts at zero.

#include <array>
#include <vector>

#include "bssn/state.hpp"
#include "mesh/mesh.hpp"

namespace dgr::bssn {

/// One puncture: bare mass, position, linear momentum, spin.
struct PunctureData {
  Real mass = 1.0;
  std::array<Real, 3> pos{0, 0, 0};
  std::array<Real, 3> momentum{0, 0, 0};
  std::array<Real, 3> spin{0, 0, 0};
};

/// Quasi-circular binary of mass ratio q = m1/m2 at separation d (total
/// bare mass ~1), with tangential momenta from the Newtonian circular-orbit
/// estimate — the standard scaled-down BBH setup.
std::vector<PunctureData> make_binary(Real q, Real separation);

/// Fill `state` with Minkowski data.
void set_minkowski(const mesh::Mesh& mesh, BssnState& state);

/// Fill `state` with puncture data. `r_floor` regularizes 1/r at the
/// punctures (punctures are additionally assumed to sit off grid points).
void set_punctures(const mesh::Mesh& mesh,
                   const std::vector<PunctureData>& punctures,
                   BssnState& state, Real r_floor = 1e-6);

/// Brill–Lindquist conformal factor psi at a point.
Real bl_conformal_factor(const std::vector<PunctureData>& punctures, Real x,
                         Real y, Real z, Real r_floor = 1e-6);

}  // namespace dgr::bssn
