#pragma once
/// \file parallel.hpp
/// \brief Deterministic parallel loops and reductions on the work-stealing
/// pool (pool.hpp).
///
/// Determinism contract. A parallel region partitions [begin, end) into
/// ceil(n / grain) fixed chunks that depend only on (begin, end, grain) —
/// never on the thread count or on scheduling. Chunk c always covers
/// [begin + c*grain, min(end, begin + (c+1)*grain)), and any per-chunk
/// result lands in slot c. parallel_reduce combines the slots in a fixed
/// pairwise tree on the calling thread, so floating-point reductions are
/// bitwise identical at any thread count — the property the solver's
/// norms, the metrics snapshots, and the modeled kernel times are tested
/// for at DGR_THREADS = 1, 2, 7. Callers must keep `grain` a constant (or
/// a function of the problem only) for results to be comparable across
/// thread counts.
///
/// Execution. The calling thread participates: it drains chunks alongside
/// min(threads - 1, chunks - 1) helper tasks submitted to the pool, then
/// blocks until every claimed chunk has finished. Nested regions are safe:
/// a worker opening a region drains it itself while idle workers steal its
/// helper tasks. With a single-lane pool (or a single chunk) the region
/// runs inline with zero synchronization. The first exception thrown by a
/// chunk is rethrown on the caller after the region completes; remaining
/// chunks are skipped.
///
/// Observability: helpers emit one span per region on their per-worker
/// host-domain trace track ("exec" / "worker N") when a TraceSession is
/// installed and the region carries a label.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace dgr::exec {

/// Number of fixed chunks a region over [begin, end) with `grain` has.
inline std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                               std::int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

namespace detail {

struct RegionState {
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::int64_t chunks = 0;
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr error;  ///< first failure, guarded by m
  std::atomic<bool> failed{false};
};

}  // namespace detail

/// Run body(chunk, chunk_begin, chunk_end) for every fixed-grain chunk of
/// [begin, end), distributed over the global pool. See the determinism
/// contract above.
template <class Body>
void for_each_chunk(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    Body&& body, const char* label = nullptr) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t nc = num_chunks(begin, end, grain);
  ThreadPool& pool = ThreadPool::global();
  if (pool.threads() <= 1 || nc == 1) {
    for (std::int64_t c = 0; c < nc; ++c)
      body(c, begin + c * grain, std::min(end, begin + (c + 1) * grain));
    return;
  }

  auto st = std::make_shared<detail::RegionState>();
  st->chunks = nc;
  // The caller outlives the region (it blocks on st->cv below), so helpers
  // may use this pointer for any chunk they claim; a stale helper that
  // wakes after the region closed claims no chunk and never touches it.
  auto* bp = &body;

  const auto drain = [st, begin, end, grain, nc, bp, label](bool helper) {
    obs::TraceSession* tr = helper ? obs::trace() : nullptr;
    int track = -1;
    std::int64_t c;
    while ((c = st->next.fetch_add(1, std::memory_order_relaxed)) < nc) {
      if (tr && label && track < 0) {
        track = tr->worker_track(this_lane());
        tr->span_begin(track, label, "exec", monotonic_us());
      }
      if (!st->failed.load(std::memory_order_relaxed)) {
        try {
          (*bp)(c, begin + c * grain, std::min(end, begin + (c + 1) * grain));
        } catch (...) {
          std::lock_guard<std::mutex> lk(st->m);
          if (!st->error) st->error = std::current_exception();
          st->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == nc) {
        std::lock_guard<std::mutex> lk(st->m);
        st->cv.notify_all();
      }
    }
    if (track >= 0) tr->span_end(track, monotonic_us());
  };

  const int helpers =
      static_cast<int>(std::min<std::int64_t>(pool.threads() - 1, nc - 1));
  for (int h = 0; h < helpers; ++h) pool.submit([drain] { drain(true); });
  drain(false);
  {
    std::unique_lock<std::mutex> lk(st->m);
    st->cv.wait(lk, [&] {
      return st->done.load(std::memory_order_acquire) >= nc;
    });
  }
  if (st->error) std::rethrow_exception(st->error);
}

/// Run body(range_begin, range_end) over fixed-grain subranges of
/// [begin, end) in parallel.
template <class Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Body&& body, const char* label = nullptr) {
  for_each_chunk(
      begin, end, grain,
      [&](std::int64_t, std::int64_t b, std::int64_t e) { body(b, e); },
      label);
}

/// Deterministic reduction: body(range_begin, range_end) -> T per fixed
/// chunk, combined by join in a fixed pairwise tree over the chunk slots
/// (bitwise independent of thread count). `identity` seeds empty ranges.
template <class T, class Body, class Join>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T identity, Body&& body, Join&& join,
                  const char* label = nullptr) {
  const std::int64_t nc = num_chunks(begin, end, grain);
  if (nc == 0) return identity;
  if (grain < 1) grain = 1;
  std::vector<T> slot(static_cast<std::size_t>(nc), identity);
  for_each_chunk(
      begin, end, grain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        slot[static_cast<std::size_t>(c)] = body(b, e);
      },
      label);
  // Pairwise tree over chunk order: (s0⊕s1)⊕(s2⊕s3)⊕... independent of
  // which lane produced which slot.
  for (std::int64_t width = nc; width > 1; width = (width + 1) / 2) {
    for (std::int64_t i = 0; 2 * i < width; ++i)
      slot[i] = (2 * i + 1 < width) ? join(slot[2 * i], slot[2 * i + 1])
                                    : slot[2 * i];
  }
  return slot[0];
}

}  // namespace dgr::exec
