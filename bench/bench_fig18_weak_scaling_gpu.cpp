/// \file bench_fig18_weak_scaling_gpu.cpp
/// \brief Regenerates Fig. 18: weak scaling of 5 RK4 steps with a fixed
/// number of unknowns per GPU up to 16 GPUs (paper: ~35M unknowns/GPU,
/// average parallel efficiency 83%, largest problem 560M unknowns). Since
/// the src/dist engine, each point executes the overlapped message
/// schedule on its own grid and reads t_step5 off the max per-rank virtual
/// clock; the analytic alpha-beta estimate remains as a cross-check.

#include <cstdio>

#include "bench_common.hpp"
#include "comm/partition.hpp"
#include "dist/engine.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 18", "GPU weak scaling, ~constant unknowns per GPU");
  bench::Reporter rep("fig18_weak_scaling_gpu", argc, argv);

  // Grow the grid with the rank count: deeper refinement for more ranks.
  struct Series {
    int ranks, base, finest;
  };
  const Series series[] = {{1, 2, 3}, {2, 2, 4}, {4, 3, 4},
                           {8, 3, 5}, {16, 4, 5}};

  // Calibrate per-octant cost once.
  double gpu_oct = 0;
  {
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
    simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
    bssn::BssnState s;
    bench::init_bbh_state(*m, 1.0, 2.0, s);
    gpu.upload(s);
    gpu.rk4_step();
    gpu_oct = gpu.runtime().modeled_total_with(perf::a100()) / 4.0 /
              double(m->num_octants());
  }

  const int kEvals = 20;  // 5 RK4 steps
  std::printf(
      "  GPUs | octants | unknowns | oct/GPU | t_step5 (s) | comm hid. | "
      "efficiency (paper avg 83%%) | analytic\n");
  double t_ref = -1;
  for (const auto& sr : series) {
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, sr.base, sr.finest);
    bssn::BssnState s;
    bench::init_bbh_state(*m, 1.0, 2.0, s);

    dist::DistConfig dcfg;
    dcfg.ranks = sr.ranks;
    dcfg.execute = false;
    dcfg.schedule_evals = kEvals;
    dcfg.sec_per_octant = gpu_oct;
    dcfg.net = perf::gpu_cluster(4);
    const auto res =
        dist::evolve_distributed(m, s, solver::SolverConfig{}, dcfg);
    const double t5 = res.t_virtual;

    const auto part = comm::partition_mesh(*m, sr.ranks);
    const auto pt = comm::scaling_point(*m, part, gpu_oct, perf::nvlink());

    const double per_rank = double(m->num_octants()) / sr.ranks;
    if (t_ref < 0) t_ref = t5 / per_rank;  // reference time per octant/rank
    const double weak_eff = t_ref * per_rank / t5;
    rep.pair("weak_eff_" + std::to_string(sr.ranks), 83.0, 100 * weak_eff,
             "%");
    rep.metric("t_step5_" + std::to_string(sr.ranks), t5);
    std::printf(
        "  %-4d | %-7zu | %-7.1fM | %-7.0f | %-11.4f | %-9.5f | %5.1f%%"
        "                     | %.4f\n",
        sr.ranks, m->num_octants(), m->num_dofs() * 24 / 1e6, per_rank, t5,
        res.t_comm_hidden_max, 100 * weak_eff, kEvals * pt.t_total);
  }
  // Sub-cycled halo cadence on the largest weak-scaling grid: the same
  // scheduled eval count walked per-depth with filtered payloads.
  {
    const Series& sr = series[4];
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, sr.base, sr.finest);
    bssn::BssnState s;
    bench::init_bbh_state(*m, 1.0, 2.0, s);
    dist::DistConfig dcfg;
    dcfg.ranks = sr.ranks;
    dcfg.execute = false;
    dcfg.schedule_evals = kEvals;
    dcfg.sec_per_octant = gpu_oct;
    dcfg.net = perf::gpu_cluster(4);
    const auto full =
        dist::evolve_distributed(m, s, solver::SolverConfig{}, dcfg);
    dcfg.subcycle = true;
    const auto sub =
        dist::evolve_distributed(m, s, solver::SolverConfig{}, dcfg);
    rep.metric("subcycle_halo_bytes_ratio_16",
               double(full.bytes) / double(sub.bytes));
    rep.metric("subcycle_t_step5_ratio_16", full.t_virtual / sub.t_virtual);
    std::printf(
        "\n  sub-cycled schedule at 16 GPUs: halo bytes /%.2f, t_step5"
        " /%.2f\n",
        double(full.bytes) / double(sub.bytes),
        full.t_virtual / sub.t_virtual);
  }

  bench::note("t_step5 = max over per-rank virtual clocks of 20 executed");
  bench::note("exchange schedules; deviations from 100% combine AMR load");
  bench::note("imbalance with the exposed part of the halo traffic,");
  bench::note("matching the paper's ~83% average.");
  return 0;
}
