#pragma once
/// \file regrid.hpp
/// \brief Error-driven regridding (the re-grid step of Algorithm 1): a
/// wavelet-style per-octant error estimator (magnitude of the finest
/// interpolation detail coefficients) marks octants for refinement or
/// coarsening; the octree is remeshed and the state transferred.

#include <memory>
#include <vector>

#include "bssn/state.hpp"
#include "mesh/mesh.hpp"
#include "octree/octree.hpp"

namespace dgr::solver {

struct RegridConfig {
  /// Refinement error tolerance epsilon (the knob of Fig. 19): octants whose
  /// wavelet detail magnitude exceeds it are refined.
  Real eps = 1e-3;
  /// Coarsen when the detail magnitude falls below eps * coarsen_factor.
  Real coarsen_factor = 0.05;
  int max_level = 10;
  int min_level = 2;
  /// Variables driving the estimator; defaults to the conformal factor and
  /// lapse, which track the punctures and the outgoing waves.
  std::vector<int> vars = {bssn::kChi, bssn::kAlpha};
};

/// Wavelet-style detail magnitude of one octant for one field: restrict the
/// 7^3 block to its even-index 4^3 coarse skeleton, prolong back with cubic
/// tensor interpolation, and return the max abs difference at odd points.
Real octant_detail(const Real* u /*343*/);

/// Per-octant estimator over the configured variables (state is zipped).
std::vector<Real> compute_octant_errors(const mesh::Mesh& mesh,
                                        const bssn::BssnState& state,
                                        const RegridConfig& cfg);

/// Map errors to remesh flags under the level bounds.
std::vector<oct::RemeshFlag> flags_from_errors(const mesh::Mesh& mesh,
                                               const std::vector<Real>& err,
                                               const RegridConfig& cfg);

/// Full regrid step: estimate, remesh the octree (keeping 2:1 balance),
/// rebuild the mesh, and transfer the state. Returns nullptr if the grid is
/// unchanged (caller keeps the old mesh).
std::shared_ptr<mesh::Mesh> regrid_mesh(const mesh::Mesh& mesh,
                                        const bssn::BssnState& state,
                                        const RegridConfig& cfg);

}  // namespace dgr::solver
