#include "simgpu/gpu_bssn.hpp"

#include <algorithm>

#include "codegen/bssn_graph.hpp"
#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "fd/dense_output.hpp"
#include "gw/psi4.hpp"

namespace dgr::simgpu {

using bssn::BssnState;
using bssn::kNumVars;
using mesh::kPatchPts;

namespace {
std::uint64_t state_bytes(const mesh::Mesh& m) {
  return std::uint64_t(m.num_dofs()) * kNumVars * sizeof(Real);
}

constexpr std::uint8_t kModeLinear = 0;
constexpr std::uint8_t kModeQuad = 1;

/// RK4 stage-time fractions (stage j evaluates at t0 + c_j dt).
constexpr Real kStageC[4] = {0.0, 0.5, 0.5, 1.0};

/// Per-depth stage-fill recipe, identical to the solver-side subcycle.cpp
/// so the device mirror reproduces the CPU arithmetic bitwise.
struct FillCoef {
  enum Mode : int { kCopy, kRkAxpy, kDense };
  Mode mode = kCopy;
  Real a = 0;
  fd::DenseCoeffs dc;
};
}  // namespace

GpuBssnSolver::GpuBssnSolver(std::shared_ptr<mesh::Mesh> mesh,
                             GpuSolverConfig config, perf::MachineModel model)
    : mesh_(std::move(mesh)), config_(config), runtime_(std::move(model)) {
  DGR_CHECK(mesh_ != nullptr);
  state_.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  // Device allocations: 6 state-sized vectors + the chunked patch buffers.
  runtime_.device_alloc(6 * state_bytes(*mesh_));
  const std::size_t cap =
      std::size_t(config_.chunk_octants) * kNumVars * kPatchPts;
  patch_in_.resize(cap);
  patch_out_.resize(cap);
  runtime_.device_alloc(2 * cap * sizeof(Real));
  if (config_.fused_simd_rhs) {
    const auto g = codegen::build_bssn_algebra_graph(
        config_.bssn.lambda_f0, config_.bssn.eta, config_.bssn.ko_sigma);
    fused_kernel_ = std::make_unique<codegen::CompiledKernel>(
        g.graph, std::vector<std::int32_t>(g.outputs.begin(), g.outputs.end()),
        codegen::Strategy::kStagedCse);
  }
}

void GpuBssnSolver::upload(const bssn::BssnState& state) {
  DGR_CHECK(state.num_dofs() == mesh_->num_dofs());
  state_ = state;
  runtime_.h2d(state_bytes(*mesh_));
  // The uploaded state replaces the evolution history; retained dense
  // stages no longer bracket it.
  dense_ready_ = false;
}

BssnState GpuBssnSolver::download() {
  runtime_.d2h(state_bytes(*mesh_));
  return state_;
}

void GpuBssnSolver::compute_rhs(const BssnState& u, BssnState& rhs) {
  compute_rhs(u, rhs,
              {{0, static_cast<OctIndex>(mesh_->num_octants())}});
}

void GpuBssnSolver::compute_rhs(
    const BssnState& u, BssnState& rhs,
    const std::vector<std::pair<OctIndex, OctIndex>>& runs) {
  const auto in = u.cptrs();
  const auto out = rhs.ptrs();
  const Real half = mesh_->domain().half_extent;
  if (static_cast<int>(ws_.size()) < exec::lanes())
    ws_.resize(exec::lanes());
  if (fused_kernel_ && static_cast<int>(fws_.size()) < exec::lanes())
    fws_.resize(exec::lanes());

  // Halo exchange (Algorithm 1 line 6): on a single simulated device the
  // partition is whole, so only the (empty) kernel is recorded.
  runtime_.launch("halo-exchange", 1, 0, [&](OpCounts&) {});

  // Each launch body is data-parallel over the host pool (launch_range).
  // The split axes are chosen so chunk OpCounts sum exactly to the serial
  // counts: octant-to-patch splits by VARIABLE (unzip_slice — per-var work
  // is independent; an octant-range split would re-count shared prolonged
  // sources), RHS and patch-to-octant split by octant (per-octant work and
  // per-owner-DOF writes are disjoint). Restricting the runs (sub-cycling)
  // keeps launches, op counts and modeled time proportional to live work.
  for (const auto& run : runs) {
  DGR_CHECK(run.first >= 0 &&
            run.second <= static_cast<OctIndex>(mesh_->num_octants()));
  for (OctIndex begin = run.first; begin < run.second;
       begin += config_.chunk_octants) {
    const OctIndex end =
        std::min<OctIndex>(begin + config_.chunk_octants, run.second);

    runtime_.launch_range(
        "octant-to-patch", std::uint64_t(end - begin) * kNumVars, 0, kNumVars,
        /*grain=*/4, [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
          mesh_->unzip_slice(in.data(), kNumVars, static_cast<int>(vb),
                             static_cast<int>(ve), begin, end,
                             patch_in_.data(),
                             mesh::UnzipMethod::kLoopOverOctants, &c);
        });

    runtime_.launch_range(
        "bssn-rhs", std::uint64_t(end - begin), 0, end - begin,
        /*grain=*/4, [&](std::int64_t eb, std::int64_t ee, OpCounts& c) {
          bssn::DerivWorkspace& ws = ws_[exec::this_lane()];
          for (OctIndex e = begin + static_cast<OctIndex>(eb);
               e < begin + static_cast<OctIndex>(ee); ++e) {
            const std::size_t base =
                std::size_t(e - begin) * kNumVars * kPatchPts;
            const Real* pin[kNumVars];
            Real* pout[kNumVars];
            for (int v = 0; v < kNumVars; ++v) {
              pin[v] = &patch_in_[base + v * kPatchPts];
              pout[v] = &patch_out_[base + v * kPatchPts];
            }
            if (fused_kernel_) {
              codegen::bssn_rhs_patch_fused(
                  pin, pout, mesh_->patch_geom(e), half, config_.bssn,
                  *fused_kernel_, fws_[exec::this_lane()], &c,
                  config_.simd_width);
            } else {
              bssn::bssn_rhs_patch(pin, pout, mesh_->patch_geom(e), half,
                                   config_.bssn, ws, &c);
            }
          }
        });

    runtime_.launch_range(
        "patch-to-octant", std::uint64_t(end - begin) * kNumVars, 0,
        end - begin,
        /*grain=*/8, [&](std::int64_t eb, std::int64_t ee, OpCounts& c) {
          const OctIndex b = begin + static_cast<OctIndex>(eb);
          const OctIndex e = begin + static_cast<OctIndex>(ee);
          mesh_->zip(patch_out_.data() +
                         std::size_t(eb) * kNumVars * kPatchPts,
                     kNumVars, b, e, out.data(), &c);
        });
  }
  }
}

void GpuBssnSolver::launch_axpy(const char* name, BssnState& y, Real s,
                                const BssnState& x, bool assign_from_base,
                                const BssnState* base) {
  // Parallel over variables: each chunk updates whole fields, so writes are
  // disjoint and the per-element arithmetic is unchanged from the serial
  // state-level axpy (bitwise-identical results at any thread count).
  const std::size_t nd = mesh_->num_dofs();
  runtime_.launch_range(
      name, nd, 0, kNumVars, /*grain=*/1,
      [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* yv = y.field(v);
          const Real* xv = x.field(v);
          if (assign_from_base) {
            const Real* bv = base->field(v);
            for (std::size_t d = 0; d < nd; ++d) yv[d] = bv[d] + s * xv[d];
          } else {
            for (std::size_t d = 0; d < nd; ++d) yv[d] += s * xv[d];
          }
        }
        const std::uint64_t n = std::uint64_t(ve - vb) * nd;
        c.flops += 2 * n;
        c.bytes_read += 2 * n * sizeof(Real);
        c.bytes_written += n * sizeof(Real);
      });
}

void GpuBssnSolver::rk4_step(Real dt) {
  compute_rhs(state_, k_[0]);
  launch_axpy("axpy", stage_, 0.5 * dt, k_[0], true, &state_);
  compute_rhs(stage_, k_[1]);
  launch_axpy("axpy", stage_, 0.5 * dt, k_[1], true, &state_);
  compute_rhs(stage_, k_[2]);
  launch_axpy("axpy", stage_, dt, k_[2], true, &state_);
  compute_rhs(stage_, k_[3]);
  launch_axpy("axpy", state_, dt / 6.0, k_[0], false, nullptr);
  launch_axpy("axpy", state_, dt / 3.0, k_[1], false, nullptr);
  launch_axpy("axpy", state_, dt / 3.0, k_[2], false, nullptr);
  launch_axpy("axpy", state_, dt / 6.0, k_[3], false, nullptr);
  time_ += dt;
  dense_ready_ = false;
}

const mesh::SubcycleIndex& GpuBssnSolver::subcycle_index() {
  if (!subidx_)
    subidx_ = std::make_unique<mesh::SubcycleIndex>(
        mesh::SubcycleIndex::build(*mesh_));
  return *subidx_;
}

void GpuBssnSolver::subcycle_bootstrap() {
  const mesh::SubcycleIndex& idx = *subidx_;
  const std::size_t nd = mesh_->num_dofs();
  if (!dense_alloc_) {
    // Two more device-resident state-sized arrays for the retained dense
    // stages (u0, k1), priced into the memory model.
    runtime_.device_alloc(2 * state_bytes(*mesh_));
    dense_alloc_ = true;
  }
  dense_u0_.resize(nd);
  dense_k1_.resize(nd);
  dense_t0_.assign(static_cast<std::size_t>(idx.depths()), time_);
  dense_mode_.assign(static_cast<std::size_t>(idx.depths()), kModeLinear);
  compute_rhs(state_, dense_k1_);
  runtime_.launch_range(
      "subcycle-save", nd, 0, kNumVars, /*grain=*/1,
      [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          const Real* uv = state_.field(v);
          std::copy(uv, uv + nd, dense_u0_.field(v));
        }
        const std::uint64_t n = std::uint64_t(ve - vb) * nd;
        c.bytes_read += n * sizeof(Real);
        c.bytes_written += n * sizeof(Real);
      });
  dense_ready_ = true;
}

void GpuBssnSolver::subcycle_step_depth(int depth, Real fine_dt) {
  const mesh::SubcycleIndex& idx = *subidx_;
  const int slot = depth - idx.dmin;
  const Real dt = fine_dt * static_cast<Real>(1 << (idx.dmax - depth));
  const auto& runs = idx.runs[static_cast<std::size_t>(slot)];
  const std::size_t nd = mesh_->num_dofs();
  const std::uint8_t* dd = idx.dof_depth.data();
  const int nslots = idx.depths();

  for (int j = 0; j < 4; ++j) {
    // Stage fill, identical arithmetic to solver/subcycle.cpp (see the
    // rationale there): stepping depth takes the exact RK stage AXPY,
    // every other depth a dense-output evaluation at the stage time.
    const Real ts = time_ + kStageC[j] * dt;
    std::vector<FillCoef> tab(static_cast<std::size_t>(nslots));
    for (int s = 0; s < nslots; ++s) {
      FillCoef& f = tab[static_cast<std::size_t>(s)];
      if (s == slot) {
        if (j == 0) {
          f.mode = FillCoef::kCopy;
        } else {
          f.mode = FillCoef::kRkAxpy;
          f.a = kStageC[j] * dt;
        }
      } else {
        f.mode = FillCoef::kDense;
        const Real dtp =
            fine_dt * static_cast<Real>(1 << (idx.dmax - (idx.dmin + s)));
        if (dense_mode_[static_cast<std::size_t>(s)] == kModeQuad)
          f.dc = fd::dense_output_quadratic(
              (ts - dense_t0_[static_cast<std::size_t>(s)]) / dtp, dtp);
        else
          f.dc = fd::dense_output_linear(
              ts - dense_t0_[static_cast<std::size_t>(s)]);
      }
    }

    const BssnState* kprev = (j > 0) ? &k_[j - 1] : nullptr;
    runtime_.launch_range(
        "subcycle-fill", nd, 0, kNumVars, /*grain=*/1,
        [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
          for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
            Real* sv = stage_.field(v);
            const Real* uv = state_.field(v);
            const Real* u0v = dense_u0_.field(v);
            const Real* k1v = dense_k1_.field(v);
            const Real* kv = kprev ? kprev->field(v) : nullptr;
            for (std::size_t d = 0; d < nd; ++d) {
              const FillCoef& f = tab[static_cast<std::size_t>(
                  static_cast<int>(dd[d]) - idx.dmin)];
              switch (f.mode) {
                case FillCoef::kCopy:
                  sv[d] = uv[d];
                  break;
                case FillCoef::kRkAxpy:
                  sv[d] = uv[d] + f.a * kv[d];
                  break;
                case FillCoef::kDense:
                  sv[d] = fd::dense_output_eval(f.dc, u0v[d], uv[d], k1v[d]);
                  break;
              }
            }
          }
          const std::uint64_t n = std::uint64_t(ve - vb) * nd;
          c.flops += 5 * n;
          c.bytes_read += 4 * n * sizeof(Real);
          c.bytes_written += n * sizeof(Real);
        });

    compute_rhs(stage_, k_[j], runs);

    if (j == 0 && !idx.uniform()) {
      runtime_.launch_range(
          "subcycle-save", nd, 0, kNumVars, /*grain=*/1,
          [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
            for (int v = static_cast<int>(vb); v < static_cast<int>(ve);
                 ++v) {
              Real* u0v = dense_u0_.field(v);
              Real* k1v = dense_k1_.field(v);
              const Real* uv = state_.field(v);
              const Real* kv = k_[0].field(v);
              for (std::size_t d = 0; d < nd; ++d) {
                if (static_cast<int>(dd[d]) != depth) continue;
                u0v[d] = uv[d];
                k1v[d] = kv[d];
              }
            }
            const std::uint64_t n = std::uint64_t(ve - vb) * nd;
            c.bytes_read += 2 * n * sizeof(Real);
            c.bytes_written += 2 * n * sizeof(Real);
          });
    }
  }

  // Final combination restricted to this depth's DOFs; per-element
  // rounding order matches the CPU path (and rk4_step's axpy sequence).
  const Real a16 = dt / 6.0;
  const Real a13 = dt / 3.0;
  runtime_.launch_range(
      "subcycle-update", nd, 0, kNumVars, /*grain=*/1,
      [&](std::int64_t vb, std::int64_t ve, OpCounts& c) {
        for (int v = static_cast<int>(vb); v < static_cast<int>(ve); ++v) {
          Real* uv = state_.field(v);
          const Real* k0v = k_[0].field(v);
          const Real* k1v = k_[1].field(v);
          const Real* k2v = k_[2].field(v);
          const Real* k3v = k_[3].field(v);
          for (std::size_t d = 0; d < nd; ++d) {
            if (static_cast<int>(dd[d]) != depth) continue;
            uv[d] += a16 * k0v[d];
            uv[d] += a13 * k1v[d];
            uv[d] += a13 * k2v[d];
            uv[d] += a16 * k3v[d];
          }
        }
        const std::uint64_t n = std::uint64_t(ve - vb) * nd;
        c.flops += 8 * n;
        c.bytes_read += 5 * n * sizeof(Real);
        c.bytes_written += n * sizeof(Real);
      });

  if (!idx.uniform()) {
    dense_t0_[static_cast<std::size_t>(slot)] = time_;
    dense_mode_[static_cast<std::size_t>(slot)] = kModeQuad;
  }
}

void GpuBssnSolver::subcycle_cycle(Real fine_dt) {
  DGR_CHECK(fine_dt > 0);
  const mesh::SubcycleIndex& idx = subcycle_index();
  if (!idx.uniform() && !dense_ready_) subcycle_bootstrap();
  const int cycle = idx.cycle();
  for (int s = 0; s < cycle; ++s) {
    for (int d = idx.active_cutoff(s); d <= idx.dmax; ++d)
      subcycle_step_depth(d, fine_dt);
    time_ += fine_dt;
  }
}

std::vector<gw::SphereModes> GpuBssnSolver::extract_waves(
    const gw::WaveExtractor& ex) {
  std::vector<gw::SphereModes> modes;
  runtime_.launch("psi4-extract", mesh_->num_octants(), /*stream=*/1,
                  [&](OpCounts& c) {
                    modes = ex.extract_from_state(*mesh_, state_,
                                                  config_.bssn);
                    // Rough accounting: one Ricci-scale pass per octant.
                    c.flops += std::uint64_t(mesh_->num_octants()) *
                               mesh::kOctPts * 600;
                    c.bytes_read += std::uint64_t(mesh_->num_octants()) *
                                    kNumVars * kPatchPts * sizeof(Real);
                  });
  return modes;
}

}  // namespace dgr::simgpu
