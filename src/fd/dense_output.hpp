#pragma once
/// \file dense_output.hpp
/// \brief Dense-output time interpolation for depth-local sub-cycling: the
/// ghost-fill stencil that lets an active fine octant read a coarser
/// neighbor's state at an intermediate stage time.
///
/// A depth that completed a step over [t0, t0 + dt] retains three arrays
/// per DOF — u0 (state at t0), k1 (the step's first RHS evaluation, i.e.
/// u'(t0)) and u1 (state at t0 + dt). The unique quadratic matching u(t0),
/// u'(t0) and u(t0 + dt) is, with theta = (t - t0) / dt,
///
///   u(t) ~= (1 - theta^2) u0 + theta^2 u1 + dt theta (1 - theta) k1,
///
/// a second-order (local error O(dt^3)) continuous extension of the RK
/// step. Inside [t0, t0 + dt] this is pure interpolation; the sub-cycle
/// schedule guarantees a coarser depth's interval always covers every stage
/// time of a finer active depth. A coarse octant reading a *finer*
/// neighbor extrapolates the finer depth's most recent quadratic by at most
/// two of its intervals (the 2:1 balance bound) — still O(dt^3) locally,
/// with a bounded constant.
///
/// Before a depth has taken its first step (evolution start, or right
/// after a remesh invalidated the retained stages), only u0 and one fresh
/// full-mesh RHS are available; the linear u(t) ~= u0 + (t - t0) k1 covers
/// at most the first cycle and keeps the global scheme second order.

#include "common/types.hpp"

namespace dgr::fd {

/// Weights of the quadratic dense output: value = c_u0 * u0 + c_u1 * u1 +
/// c_k1 * k1. Exact for any quadratic-in-time trajectory (tested in
/// test_subcycle); theta may lie outside [0, 1] (bounded extrapolation).
struct DenseCoeffs {
  Real c_u0 = 0;
  Real c_u1 = 0;
  Real c_k1 = 0;
};

inline DenseCoeffs dense_output_quadratic(Real theta, Real dt) {
  DenseCoeffs c;
  const Real t2 = theta * theta;
  c.c_u0 = 1.0 - t2;
  c.c_u1 = t2;
  c.c_k1 = dt * theta * (1.0 - theta);
  return c;
}

/// First-order bootstrap variant (no u1 yet): value = u0 + (t - t0) * k1.
inline DenseCoeffs dense_output_linear(Real t_minus_t0) {
  DenseCoeffs c;
  c.c_u0 = 1.0;
  c.c_u1 = 0.0;
  c.c_k1 = t_minus_t0;
  return c;
}

/// Evaluate the dense output for one value triple.
inline Real dense_output_eval(const DenseCoeffs& c, Real u0, Real u1,
                              Real k1) {
  return c.c_u0 * u0 + c.c_u1 * u1 + c.c_k1 * k1;
}

}  // namespace dgr::fd
