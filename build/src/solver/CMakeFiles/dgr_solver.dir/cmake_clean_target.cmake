file(REMOVE_RECURSE
  "libdgr_solver.a"
)
