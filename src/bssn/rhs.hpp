#pragma once
/// \file rhs.hpp
/// \brief Compiled evaluation of the BSSN right-hand side (paper Eqs.
/// (1)–(19)) on a single 13^3 patch: the derivative stage D (210 derivative
/// evaluations) followed by the algebraic stage A (234 inputs -> 24
/// outputs), organized in the "staged" fashion of §IV-B: each equation's
/// algebra runs as soon as its derivatives are available at a point.

#include "common/counters.hpp"
#include "common/types.hpp"
#include "bssn/vars.hpp"
#include "mesh/mesh.hpp"

namespace dgr::bssn {

/// Evolution parameters (gauge + dissipation), defaults as in the paper's
/// production setup: 1+log slicing, Gamma-driver shift with damping eta,
/// RK4 with Courant factor 0.25, KO dissipation.
struct BssnParams {
  Real lambda_f0 = 0.75;   ///< 3/4 f(alpha) coefficient with f = 1
  Real eta = 2.0;          ///< Gamma-driver damping
  Real ko_sigma = 0.1;     ///< Kreiss–Oliger dissipation strength
  Real chi_floor = 1e-4;   ///< floor on the conformal factor near punctures
  /// Apply Sommerfeld radiative conditions on the outer boundary.
  bool sommerfeld = true;
};

/// Scratch buffers for the derivative stage; allocate once, reuse across
/// patches (the GPU analogue is the per-block shared-memory workspace of
/// Fig. 9).
struct DerivWorkspace {
  // Centered gradients and upwind (advective) gradients of all 24 vars.
  std::vector<Real> grad;   ///< [var][axis] * kPatchPts
  std::vector<Real> agrad;  ///< [var][axis] * kPatchPts
  // Hessians of the 11 second-derivative variables, symmetric storage.
  std::vector<Real> hess;   ///< [hvar][sym6] * kPatchPts
  std::vector<Real> ko;     ///< [var] * kPatchPts
  std::vector<Real> scratch;///< one patch, for mixed-derivative sweeps

  DerivWorkspace();
  Real* grad_of(int var, int axis) {
    return grad.data() + (var * 3 + axis) * mesh::kPatchPts;
  }
  Real* agrad_of(int var, int axis) {
    return agrad.data() + (var * 3 + axis) * mesh::kPatchPts;
  }
  Real* hess_of(int hvar, int s) {
    return hess.data() + (hvar * 6 + s) * mesh::kPatchPts;
  }
  Real* ko_of(int var) { return ko.data() + var * mesh::kPatchPts; }
};

/// Position of variable v within kSecondDerivVars, or -1.
int hess_slot(int var);

template <class S>
struct AlgebraInputs;

/// Gather the point-local inputs of the algebraic stage at patch index p
/// (exposed for the codegen interpreter path, which evaluates the same
/// algebra from a scheduled program — §IV-B variants).
void bssn_gather_point(const Real* const in[kNumVars], DerivWorkspace& ws,
                       int p, const BssnParams& prm, AlgebraInputs<Real>& q);

/// Derivative stage: fills the workspace from the 24 input patches.
/// Performs the paper's 210 derivative evaluations (72 first, 66 second,
/// 72 KO directional pieces folded into 24 combined KO terms) plus the
/// upwind derivatives used for the advection terms.
void bssn_deriv_stage(const Real* const in[kNumVars], Real h,
                      DerivWorkspace& ws, OpCounts* counts = nullptr);

/// Algebraic stage A + KO + (optionally) Sommerfeld boundary overwrite.
/// Writes rhs values on the interior 7^3 region of each output patch.
/// `geom` gives the patch origin/spacing; `half_extent` the outer boundary.
void bssn_algebraic_stage(const Real* const in[kNumVars],
                          Real* const out[kNumVars],
                          const mesh::PatchGeom& geom, Real half_extent,
                          const BssnParams& params, DerivWorkspace& ws,
                          OpCounts* counts = nullptr);

/// Full RHS on one patch: derivative stage then algebraic stage.
void bssn_rhs_patch(const Real* const in[kNumVars], Real* const out[kNumVars],
                    const mesh::PatchGeom& geom, Real half_extent,
                    const BssnParams& params, DerivWorkspace& ws,
                    OpCounts* counts = nullptr);

/// Approximate flop count of the algebraic stage per grid point, matching
/// the paper's operation count O_A in Eq. (21b) (Q_A ~ 1.94 with m = 8 *
/// (24*2 + 210) bytes per point).
inline constexpr int kAFlopsPerPoint = 4005;

}  // namespace dgr::bssn
