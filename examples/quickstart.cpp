/// \file quickstart.cpp
/// \brief Quickstart: build an adaptive octree mesh around a black-hole
/// puncture, set constraint-satisfying initial data, take a few RK4 steps
/// of the full BSSN system, and monitor the constraints.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "bssn/initial_data.hpp"
#include "octree/refinement.hpp"
#include "solver/bssn_ctx.hpp"

int main() {
  using namespace dgr;

  // 1. A computational domain of +-16 M and an octree refined around a
  //    puncture near the origin (2:1 balanced automatically).
  oct::Domain domain{16.0};
  const std::array<Real, 3> bh_pos = {0.05, 0.03, 0.02};  // off grid lines
  oct::Octree tree =
      oct::build_puncture_octree(domain, {{bh_pos, /*finest_level=*/4}},
                                 /*base_level=*/2);
  auto mesh = std::make_shared<mesh::Mesh>(tree, domain);
  std::printf("mesh: %zu octants, %zu unique grid points, %zu hanging\n",
              mesh->num_octants(), mesh->num_dofs(), mesh->num_hanging());

  // 2. A solver context with default gauge (1+log slicing, Gamma-driver
  //    shift) and Kreiss-Oliger dissipation.
  solver::SolverConfig config;
  config.bssn.ko_sigma = 0.3;
  solver::BssnCtx ctx(mesh, config);

  // 3. Brill-Lindquist puncture initial data with pre-collapsed lapse.
  bssn::set_punctures(*mesh, {{1.0, bh_pos, {0, 0, 0}, {0, 0, 0}}},
                      ctx.state());

  const auto norms0 = ctx.constraint_norms({bh_pos}, 2.0);
  std::printf("t = 0     : |H|_2 = %.3e  |M|_2 = %.3e (puncture excised)\n",
              norms0.ham_l2, norms0.mom_l2);

  // 4. Evolve: the timestep follows the finest spacing (CFL 0.25).
  const Real dt = ctx.suggested_dt();
  std::printf("dt = %.4f M (finest h = %.4f M)\n", dt,
              mesh->finest_spacing());
  for (int i = 0; i < 3; ++i) {
    ctx.rk4_step();
    const auto n = ctx.constraint_norms({bh_pos}, 2.0);
    std::printf("t = %.4f: |H|_2 = %.3e  |M|_2 = %.3e\n", ctx.time(),
                n.ham_l2, n.mom_l2);
  }

  // 5. Where did the time go? (the Fig. 20-style phase breakdown)
  const auto& ph = ctx.breakdown();
  std::printf(
      "phases: octant-to-patch %.2fs | RHS %.2fs | patch-to-octant %.2fs | "
      "update %.2fs\n",
      ph.unzip.total_seconds(), ph.rhs.total_seconds(),
      ph.zip.total_seconds(), ph.update.total_seconds());
  return 0;
}
