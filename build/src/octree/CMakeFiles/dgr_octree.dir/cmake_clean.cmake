file(REMOVE_RECURSE
  "CMakeFiles/dgr_octree.dir/octree.cpp.o"
  "CMakeFiles/dgr_octree.dir/octree.cpp.o.d"
  "CMakeFiles/dgr_octree.dir/refinement.cpp.o"
  "CMakeFiles/dgr_octree.dir/refinement.cpp.o.d"
  "libdgr_octree.a"
  "libdgr_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
