/// \file test_subcycle.cpp
/// \brief Depth-local sub-cycled timestepping: the scheduler truth table,
/// the per-depth mesh decomposition, dense-output accuracy, the bitwise
/// contracts (uniform-mesh degeneracy to rk4_step, determinism across
/// DGR_THREADS and SIMD widths, CPU/simulated-GPU agreement, global-dt
/// path unchanged), convergence of the sub-cycled evolution to the
/// global-dt answer, the RK2 puncture tracker, cadence validation, and the
/// distributed engine's depth-filtered halo schedule.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "dist/engine.hpp"
#include "ensemble/scenario.hpp"
#include "exec/pool.hpp"
#include "fd/dense_output.hpp"
#include "gw/extract.hpp"
#include "mesh/sampling.hpp"
#include "mesh/subcycle_index.hpp"
#include "simgpu/gpu_bssn.hpp"
#include "solver/evolution.hpp"

namespace dgr {
namespace {

using bssn::BssnState;
using mesh::Mesh;

/// Two-depth puncture mesh (levels 2..3, cycle length 2) — the
/// test_determinism grid.
std::shared_ptr<Mesh> puncture_mesh() {
  oct::Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
}

/// Uniform level-2 mesh over the same domain (cycle length 1).
std::shared_ptr<Mesh> uniform_mesh() {
  oct::Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 2}}, 2), dom);
}

void init_puncture(const Mesh& m, BssnState& s) {
  s.resize(m.num_dofs());
  bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
}

solver::SolverConfig solver_config() {
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  return scfg;
}

// ------------------------------------------------------------ scheduler --

TEST(SubcycleScheduler, ActivationMatchesTruthTable) {
  // Depth band [1, 4]: cycle 8. Depth d is due every 2^(4 - d) substeps.
  ASSERT_EQ(mesh::subcycle_length(1, 4), 8);
  for (int s = 0; s < 8; ++s)
    for (int d = 1; d <= 4; ++d)
      EXPECT_EQ(mesh::active_depth(s, d, 4), s % (1 << (4 - d)) == 0)
          << "substep " << s << " depth " << d;
  // Substep 0 activates everything; odd substeps only the finest depth.
  for (int d = 1; d <= 4; ++d) {
    EXPECT_TRUE(mesh::active_depth(0, d, 4));
    EXPECT_EQ(mesh::active_depth(1, d, 4), d == 4);
  }
}

TEST(SubcycleScheduler, ActiveSetIsDepthSuffixWithCorrectCounts) {
  mesh::SubcycleIndex idx;
  idx.dmin = 1;
  idx.dmax = 4;
  idx.octants = {1, 10, 100, 1000};
  std::array<int, 5> steps_per_depth{};
  for (int s = 0; s < idx.cycle(); ++s) {
    const int cutoff = idx.active_cutoff(s);
    std::size_t expect_active = 0;
    for (int d = idx.dmin; d <= idx.dmax; ++d) {
      // The suffix property: active set == [cutoff, dmax], exactly the
      // truth-table predicate.
      EXPECT_EQ(d >= cutoff, mesh::active_depth(s, d, idx.dmax))
          << "substep " << s << " depth " << d;
      if (d >= cutoff) {
        ++steps_per_depth[d];
        expect_active += idx.octants[d - idx.dmin];
      }
    }
    EXPECT_EQ(idx.active_octants(s), expect_active) << "substep " << s;
  }
  // Over one cycle, depth d steps exactly 2^(d - dmin) times.
  for (int d = idx.dmin; d <= idx.dmax; ++d)
    EXPECT_EQ(steps_per_depth[d], 1 << (d - idx.dmin)) << "depth " << d;
}

// ---------------------------------------------------- mesh decomposition --

TEST(SubcycleIndex, BuildDecomposesMeshExactly) {
  auto m = puncture_mesh();
  const auto idx = mesh::SubcycleIndex::build(*m);
  EXPECT_EQ(idx.dmin, 2);
  EXPECT_EQ(idx.dmax, 3);
  EXPECT_EQ(idx.cycle(), 2);
  EXPECT_FALSE(idx.uniform());

  // Every octant appears in exactly one run, at its own depth's slot.
  const auto& leaves = m->tree().leaves();
  std::vector<int> seen(m->num_octants(), 0);
  for (int s = 0; s < idx.depths(); ++s) {
    std::size_t in_runs = 0;
    for (const auto& [b, e] : idx.runs[s]) {
      ASSERT_LT(b, e);
      for (OctIndex o = b; o < e; ++o) {
        ++seen[o];
        EXPECT_EQ(int(leaves[o].level), idx.dmin + s) << "octant " << o;
      }
      in_runs += e - b;
    }
    EXPECT_EQ(in_runs, idx.octants[s]);
  }
  for (std::size_t o = 0; o < seen.size(); ++o)
    EXPECT_EQ(seen[o], 1) << "octant " << o;

  // Per-depth octant/DOF counts partition the mesh; dof_depth is the
  // owner-octant level.
  std::size_t octs = 0, dofs = 0;
  for (int s = 0; s < idx.depths(); ++s) {
    ASSERT_GT(idx.octants[s], 0u);
    octs += idx.octants[s];
    dofs += idx.dofs[s];
  }
  EXPECT_EQ(octs, m->num_octants());
  EXPECT_EQ(dofs, m->num_dofs());
  ASSERT_EQ(idx.dof_depth.size(), m->num_dofs());
  for (DofIndex d = 0; d < DofIndex(m->num_dofs()); ++d)
    EXPECT_EQ(int(idx.dof_depth[d]), int(leaves[m->dof_owner(d)].level))
        << "dof " << d;

  // The deterministic work counts the perf gate regresses on.
  const std::uint64_t global =
      std::uint64_t(m->num_octants()) * 4u * std::uint64_t(idx.cycle());
  EXPECT_EQ(idx.global_octant_evals(), global);
  EXPECT_EQ(idx.cycle_octant_evals(),
            std::uint64_t(idx.octants[0]) * 4u +
                std::uint64_t(idx.octants[1]) * 8u);
  EXPECT_LT(idx.cycle_octant_evals(), idx.global_octant_evals());
}

// --------------------------------------------------------- dense output --

TEST(DenseOutput, QuadraticWeightsAreExactOnQuadratics) {
  const auto u = [](Real t) { return 1.7 - 0.3 * t + 0.8 * t * t; };
  const auto du = [](Real t) { return -0.3 + 1.6 * t; };
  const Real dt = 0.37;
  // Interpolation (theta in [0,1]) and the bounded extrapolation the
  // coarse-reads-fine fill uses (theta up to 2, the 2:1 balance bound).
  for (Real theta : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    const auto c = fd::dense_output_quadratic(theta, dt);
    const Real v = fd::dense_output_eval(c, u(0), u(dt), du(0));
    EXPECT_NEAR(v, u(theta * dt), 1e-12) << "theta " << theta;
  }
  // Endpoint exactness must be bitwise, not just close: theta = 0 returns
  // u0 untouched (what makes the retained step-start state a safe read).
  const auto c0 = fd::dense_output_quadratic(0.0, dt);
  EXPECT_EQ(fd::dense_output_eval(c0, 4.25, 99.0, 7.0), 4.25);
}

TEST(DenseOutput, MidpointErrorIsThirdOrderInDt) {
  // u(t) = t^3 with u(0) = u'(0) = 0: the dense output gives theta^2 dt^3,
  // the truth (theta dt)^3 — midpoint error dt^3 / 8, exactly O(dt^3).
  const auto err = [](Real dt) {
    const auto c = fd::dense_output_quadratic(0.5, dt);
    const Real v = fd::dense_output_eval(c, 0.0, dt * dt * dt, 0.0);
    return std::abs(v - 0.125 * dt * dt * dt);
  };
  EXPECT_NEAR(err(0.4) / err(0.2), 8.0, 1e-9);
}

TEST(DenseOutput, LinearBootstrapReproducesLines) {
  const auto c = fd::dense_output_linear(0.23);
  // u1 must not participate in the linear mode.
  EXPECT_NEAR(fd::dense_output_eval(c, 2.0, 999.0, -0.5), 2.0 - 0.5 * 0.23,
              1e-15);
}

// ----------------------------------------------------- bitwise contracts --

TEST(Subcycle, UniformMeshDegeneratesToGlobalStepBitwise) {
  auto m = uniform_mesh();
  solver::BssnCtx a(m, solver_config());
  solver::BssnCtx b(m, solver_config());
  init_puncture(*m, a.state());
  init_puncture(*m, b.state());
  ASSERT_TRUE(b.subcycle_index().uniform());
  const Real dt = a.suggested_dt();
  a.rk4_step(dt);
  a.rk4_step(dt);
  b.subcycle_cycle(dt);
  b.subcycle_cycle(dt);
  EXPECT_EQ(b.state().max_abs_diff(a.state()), 0.0);
  EXPECT_EQ(b.time(), a.time());
  EXPECT_EQ(b.steps_taken(), a.steps_taken());
}

TEST(Subcycle, GlobalDtEvolveIsUnchangedByTheSubcycleBranch) {
  // evolve() with subcycle off must still be the plain rk4_step loop,
  // bitwise — the flag's default cannot perturb existing runs.
  auto m = puncture_mesh();
  solver::BssnCtx via_evolve(m, solver_config());
  init_puncture(*m, via_evolve.state());
  solver::EvolutionConfig ecfg;
  ecfg.t_end = 3.1 * via_evolve.suggested_dt();
  ecfg.regrid_every = 100;  // no regrid inside this horizon
  const auto res = solver::evolve(via_evolve, ecfg, nullptr);

  solver::BssnCtx manual(m, solver_config());
  init_puncture(*m, manual.state());
  int steps = 0;
  while (manual.time() < ecfg.t_end - 1e-12) {
    manual.rk4_step(std::min(manual.suggested_dt(),
                             ecfg.t_end - manual.time()));
    ++steps;
  }
  EXPECT_EQ(res.steps, steps);
  EXPECT_EQ(via_evolve.state().max_abs_diff(manual.state()), 0.0);
  EXPECT_EQ(via_evolve.time(), manual.time());
}

BssnState run_subcycled(int threads, int width) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::SolverConfig scfg = solver_config();
  scfg.rhs_kernel = solver::RhsKernel::kStagedFusedSimd;
  scfg.simd_width = width;
  solver::BssnCtx ctx(m, scfg);
  init_puncture(*m, ctx.state());
  // One cycle already exercises both fill modes: the linear bootstrap at
  // substep 0 and the quadratic dense read of the coarse step at substep 1.
  ctx.subcycle_cycle(ctx.suggested_dt());
  return ctx.state();
}

TEST(Subcycle, BitwiseDeterministicAcrossThreadsAndSimdWidths) {
  // The acceptance contract: DGR_THREADS and DGR_SIMD never change the
  // sub-cycled state — fill sweeps, restricted RHS runs and the restricted
  // final update all use the fixed-chunk partition.
  const BssnState ref = run_subcycled(1, 1);
  ASSERT_GT(ref.num_dofs(), 0u);
  for (int threads : {1, 4})
    for (int width : {1, 4}) {
      if (threads == 1 && width == 1) continue;
      const BssnState run = run_subcycled(threads, width);
      EXPECT_EQ(run.max_abs_diff(ref), 0.0)
          << "threads " << threads << " width " << width;
    }
  exec::ThreadPool::set_global_threads(1);
}

/// A full sub-cycled evolve (regrid + tracker + extraction on cycle
/// boundaries), captured for cross-thread comparison.
struct SubRun {
  BssnState state;
  std::vector<gw::ModeTimeSeries> waves;
  std::vector<std::array<Real, 3>> punctures;
  int steps = 0, regrids = 0;
};

SubRun run_subcycled_evolve(int threads) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::BssnCtx ctx(m, solver_config());
  init_puncture(*m, ctx.state());
  solver::EvolutionConfig ecfg;
  ecfg.subcycle = true;
  ecfg.t_end = 4.1 * ctx.suggested_dt();  // 2 cycles + a clamped tail step
  ecfg.regrid_every = 4;                  // multiple of the cycle length 2
  ecfg.regrid.max_level = 3;
  ecfg.extract_every = 2;
  ecfg.extraction_radii = {4.0};
  solver::PunctureTracker tracker({{0.05, 0.03, 0.02}});
  const auto res = solver::evolve(ctx, ecfg, &tracker);
  return {ctx.state(), res.waves22, tracker.positions(), res.steps,
          res.regrids};
}

TEST(Subcycle, EvolveWithRegridIsBitwiseStableAcrossThreadCounts) {
  const SubRun ref = run_subcycled_evolve(1);
  EXPECT_EQ(ref.steps, 5);  // 2 cycles of 2 fine steps + the 0.1 dt tail
  ASSERT_FALSE(ref.waves.empty());
  ASSERT_FALSE(ref.waves[0].values.empty());
  const SubRun run = run_subcycled_evolve(4);
  EXPECT_EQ(run.steps, ref.steps);
  EXPECT_EQ(run.regrids, ref.regrids);
  ASSERT_EQ(run.state.num_dofs(), ref.state.num_dofs());
  EXPECT_EQ(run.state.max_abs_diff(ref.state), 0.0);
  for (std::size_t r = 0; r < ref.waves.size(); ++r) {
    EXPECT_EQ(run.waves[r].times, ref.waves[r].times);
    EXPECT_EQ(run.waves[r].values, ref.waves[r].values);
  }
  for (int a = 0; a < 3; ++a)
    EXPECT_EQ(run.punctures[0][a], ref.punctures[0][a]);
  exec::ThreadPool::set_global_threads(1);
}

TEST(Subcycle, GpuMirrorMatchesCpuBitwise) {
  auto m = puncture_mesh();
  solver::BssnCtx ctx(m, solver_config());
  init_puncture(*m, ctx.state());
  simgpu::GpuSolverConfig gcfg;
  gcfg.bssn.ko_sigma = 0.3;
  simgpu::GpuBssnSolver gpu(m, gcfg);
  BssnState s;
  init_puncture(*m, s);
  gpu.upload(s);
  const Real dt = ctx.suggested_dt();
  ctx.subcycle_cycle(dt);
  ctx.subcycle_cycle(dt);
  gpu.subcycle_cycle(dt);
  gpu.subcycle_cycle(dt);
  EXPECT_EQ(gpu.device_state().max_abs_diff(ctx.state()), 0.0);
  EXPECT_EQ(gpu.time(), ctx.time());
  // The restricted sweeps must be priced by the machine model: the
  // sub-cycle kernels show up in the modeled time.
  EXPECT_GT(gpu.runtime().modeled_total_seconds(), 0.0);
}

// ------------------------------------------------------------ convergence --

/// Max-abs distance between the sub-cycled and global-dt states after the
/// same horizon at fine step `dt` (`cycles` coarse cycles).
Real subcycle_error(Real dt, int cycles) {
  auto m = puncture_mesh();
  solver::BssnCtx global(m, solver_config());
  solver::BssnCtx sub(m, solver_config());
  init_puncture(*m, global.state());
  init_puncture(*m, sub.state());
  const int cycle = sub.subcycle_index().cycle();
  for (int c = 0; c < cycles; ++c) {
    sub.subcycle_cycle(dt);
    for (int s = 0; s < cycle; ++s) global.rk4_step(dt);
  }
  EXPECT_EQ(sub.time(), global.time());
  return sub.state().max_abs_diff(global.state());
}

TEST(Subcycle, ConvergesToGlobalDtAtSecondOrder) {
  // The sub-cycling error (dense-output boundary coupling) must vanish at
  // least second order as dt -> 0: local O(dt^3) over O(1/dt) substeps.
  auto m = puncture_mesh();
  const Real dt = solver::BssnCtx(m, solver_config()).suggested_dt();
  const Real e1 = subcycle_error(dt, 1);
  const Real e2 = subcycle_error(dt / 2, 2);  // same horizon, halved dt
  ASSERT_GT(e1, 0.0);
  ASSERT_GT(e2, 0.0);
  // Well above FP noise, or the ratio below is meaningless.
  ASSERT_GT(e1, 1e-13);
  EXPECT_GE(e1 / e2, 3.0) << "e1 " << e1 << " e2 " << e2;
}

// ------------------------------------------------------- puncture tracker --

TEST(Subcycle, PunctureTrackerTakesAnRk2MidpointStep) {
  auto m = puncture_mesh();
  solver::BssnCtx ctx(m, solver_config());
  init_puncture(*m, ctx.state());
  // Two steps of gauge evolution so the shift is nonzero at the puncture.
  ctx.rk4_step();
  ctx.rk4_step();
  const std::array<Real, 3> start{0.05, 0.03, 0.02};
  const Real dt = ctx.suggested_dt();
  solver::PunctureTracker tracker({start});
  tracker.step(*m, ctx.state(), dt);
  const auto& pos = tracker.positions()[0];

  mesh::PointSampler sampler(*m);
  const Real* fields[3] = {ctx.state().field(bssn::kBeta0),
                           ctx.state().field(bssn::kBeta1),
                           ctx.state().field(bssn::kBeta2)};
  Real beta0[3];
  sampler.evaluate_many(fields, 3, start[0], start[1], start[2], beta0);
  ASSERT_NE(beta0[0] * beta0[0] + beta0[1] * beta0[1] + beta0[2] * beta0[2],
            0.0)
      << "gamma-driver produced no shift; the tracker test is vacuous";
  Real mid[3], betam[3];
  for (int a = 0; a < 3; ++a) mid[a] = start[a] - 0.5 * dt * beta0[a];
  sampler.evaluate_many(fields, 3, mid[0], mid[1], mid[2], betam);
  bool differs_from_euler = false;
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(pos[a], start[a] - dt * betam[a]) << "component " << a;
    if (pos[a] != start[a] - dt * beta0[a]) differs_from_euler = true;
  }
  // The midpoint correction must actually bite on this field.
  EXPECT_TRUE(differs_from_euler);
}

// ---------------------------------------------------- cadence validation --

TEST(Subcycle, RejectsMidCycleSamplingCadences) {
  auto m = puncture_mesh();  // cycle length 2
  solver::SolverConfig scfg = solver_config();
  const auto attempt = [&](int regrid_every, int extract_every) {
    solver::BssnCtx ctx(m, scfg);
    init_puncture(*m, ctx.state());
    solver::EvolutionConfig ecfg;
    ecfg.subcycle = true;
    ecfg.t_end = 2.1 * ctx.suggested_dt();
    ecfg.regrid_every = regrid_every;
    ecfg.regrid.max_level = 3;
    ecfg.extract_every = extract_every;
    ecfg.extraction_radii = {4.0};
    return solver::evolve(ctx, ecfg, nullptr);
  };
  EXPECT_THROW(attempt(2, 1), Error);  // mid-cycle wave sampling
  EXPECT_THROW(attempt(3, 2), Error);  // mid-cycle regrid
  EXPECT_NO_THROW(attempt(2, 2));      // aligned cadences pass
}

// ------------------------------------------------------- dist scheduling --

TEST(Subcycle, DistScheduleFiltersHalosByDepth) {
  auto m = puncture_mesh();
  BssnState initial;
  init_puncture(*m, initial);
  solver::SolverConfig scfg = solver_config();
  dist::DistConfig base;
  base.ranks = 3;
  base.execute = false;
  base.schedule_evals = 6;
  const auto global = dist::evolve_distributed(m, initial, scfg, base);
  ASSERT_GT(global.messages, 0u);

  dist::DistConfig sub = base;
  sub.subcycle = true;
  const auto subr = dist::evolve_distributed(m, initial, scfg, sub);
  EXPECT_EQ(subr.rhs_evals, global.rhs_evals);
  EXPECT_GT(subr.messages, 0u);
  // Depth-filtered payloads: same number of scheduled evaluations moves
  // strictly fewer halo bytes and virtual compute time.
  EXPECT_LT(subr.bytes, global.bytes);
  EXPECT_LT(subr.t_virtual, global.t_virtual);

  // The schedule itself is deterministic.
  const auto subr2 = dist::evolve_distributed(m, initial, scfg, sub);
  EXPECT_EQ(subr2.t_virtual, subr.t_virtual);
  EXPECT_EQ(subr2.messages, subr.messages);
  EXPECT_EQ(subr2.bytes, subr.bytes);
}

TEST(Subcycle, DistExecuteModeRejectsSubcycle) {
  auto m = puncture_mesh();
  BssnState initial;
  init_puncture(*m, initial);
  solver::SolverConfig scfg = solver_config();
  dist::DistConfig bad;
  bad.ranks = 2;
  bad.execute = true;
  bad.subcycle = true;
  bad.t_end = 0.1;
  EXPECT_THROW(dist::evolve_distributed(m, initial, scfg, bad), Error);
}

// --------------------------------------------------- scenario round-trip --

TEST(Subcycle, ScenarioEncodingRoundTripsTheFlag) {
  ensemble::ScenarioConfig cfg;
  cfg.subcycle = true;
  cfg.steps = 2;
  const auto bytes = ensemble::encode(cfg);
  EXPECT_EQ(ensemble::decode(bytes), cfg);
  // The flag changes the canonical bytes (distinct cache keys).
  ensemble::ScenarioConfig off = cfg;
  off.subcycle = false;
  EXPECT_NE(ensemble::encode(off), bytes);
}

}  // namespace
}  // namespace dgr
