/// \file test_determinism.cpp
/// \brief Cross-thread-count determinism of the full stack: the CPU
/// evolution (solver::evolve incl. regrid + wave extraction), the
/// simulated-GPU pipeline, and the distributed engine must produce
/// bitwise-identical state vectors, Psi4 output, modeled times, and
/// metrics snapshots at DGR_THREADS = 1, 2, 7 — the contract of the
/// src/exec fixed-chunk partition and ordered reductions.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bssn/initial_data.hpp"
#include "dist/engine.hpp"
#include "exec/pool.hpp"
#include "gw/extract.hpp"
#include "obs/obs.hpp"
#include "simgpu/gpu_bssn.hpp"
#include "solver/evolution.hpp"

namespace dgr {
namespace {

using bssn::BssnState;
using mesh::Mesh;

constexpr int kThreadCounts[] = {1, 2, 7};

std::shared_ptr<Mesh> puncture_mesh() {
  oct::Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
}

void init_puncture(const Mesh& m, BssnState& s) {
  s.resize(m.num_dofs());
  bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
}

/// Everything one CPU evolution run exposes, captured for comparison.
struct CpuRun {
  BssnState state;
  std::vector<gw::ModeTimeSeries> waves;
  std::string metrics;
  int steps = 0, regrids = 0;
};

CpuRun run_cpu(int threads) {
  exec::ThreadPool::set_global_threads(threads);
  obs::MetricsRegistry reg;
  obs::install_metrics(&reg);
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx ctx(m, scfg);
  init_puncture(*m, ctx.state());
  solver::EvolutionConfig ecfg;
  ecfg.t_end = 6.1 * ctx.suggested_dt();
  ecfg.regrid_every = 3;  // exercise regrid + transfer_state mid-run
  ecfg.regrid.max_level = 3;
  ecfg.extract_every = 2;
  ecfg.extraction_radii = {4.0};
  const auto res = solver::evolve(ctx, ecfg, nullptr);
  CpuRun out{ctx.state(), res.waves22, reg.json(), res.steps, res.regrids};
  obs::install_metrics(nullptr);
  return out;
}

TEST(Determinism, CpuEvolveIsBitwiseStableAcrossThreadCounts) {
  const CpuRun ref = run_cpu(1);
  ASSERT_GE(ref.steps, 6);
  ASSERT_FALSE(ref.waves.empty());
  ASSERT_FALSE(ref.waves[0].values.empty());
  for (int threads : {2, 7}) {
    const CpuRun run = run_cpu(threads);
    EXPECT_EQ(run.steps, ref.steps) << threads;
    EXPECT_EQ(run.regrids, ref.regrids) << threads;
    ASSERT_EQ(run.state.num_dofs(), ref.state.num_dofs()) << threads;
    EXPECT_EQ(run.state.max_abs_diff(ref.state), 0.0) << threads;
    ASSERT_EQ(run.waves.size(), ref.waves.size()) << threads;
    for (std::size_t r = 0; r < ref.waves.size(); ++r) {
      EXPECT_EQ(run.waves[r].times, ref.waves[r].times) << threads;
      EXPECT_EQ(run.waves[r].values, ref.waves[r].values) << threads;
    }
    EXPECT_EQ(run.metrics, ref.metrics) << threads;
  }
  exec::ThreadPool::set_global_threads(1);
}

/// One fused-SIMD-kernel evolution: 2 RK4 steps through the staged+CSE
/// program at a given SIMD width.
BssnState run_fused(int threads, int width) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  scfg.rhs_kernel = solver::RhsKernel::kStagedFusedSimd;
  scfg.simd_width = width;
  solver::BssnCtx ctx(m, scfg);
  init_puncture(*m, ctx.state());
  ctx.rk4_step();
  ctx.rk4_step();
  return ctx.state();
}

TEST(Determinism, FusedSimdRhsIsBitwiseStableAcrossThreadsAndWidths) {
  // The fused SIMD kernel must be bitwise identical to
  // its scalar reference at every thread count AND every pack width — the
  // two knobs (DGR_THREADS, DGR_SIMD) never change results.
  const BssnState ref = run_fused(1, 1);
  ASSERT_GT(ref.num_dofs(), 0u);
  for (int threads : kThreadCounts)
    for (int width : {1, 4}) {
      if (threads == 1 && width == 1) continue;
      const BssnState run = run_fused(threads, width);
      EXPECT_EQ(run.max_abs_diff(ref), 0.0)
          << "threads " << threads << " width " << width;
    }
  exec::ThreadPool::set_global_threads(1);
}

/// One simulated-GPU run: 2 RK4 steps + async wave extraction.
struct GpuRun {
  BssnState state;
  std::vector<gw::SphereModes> modes;
  double modeled = 0, modeled_cpu = 0;
  std::string metrics;
};

GpuRun run_gpu(int threads) {
  exec::ThreadPool::set_global_threads(threads);
  obs::MetricsRegistry reg;
  obs::install_metrics(&reg);
  auto m = puncture_mesh();
  simgpu::GpuSolverConfig gcfg;
  gcfg.bssn.ko_sigma = 0.3;
  simgpu::GpuBssnSolver gpu(m, gcfg);
  BssnState s;
  init_puncture(*m, s);
  gpu.upload(s);
  gpu.rk4_step();
  gpu.rk4_step();
  gw::WaveExtractor ex({4.0}, 2);
  GpuRun out;
  out.modes = gpu.extract_waves(ex);
  out.state = gpu.download();
  out.modeled = gpu.runtime().modeled_total_seconds();
  out.modeled_cpu =
      gpu.runtime().modeled_total_with(perf::epyc7763_node());
  out.metrics = reg.json();
  obs::install_metrics(nullptr);
  return out;
}

TEST(Determinism, GpuPipelineIsBitwiseStableAcrossThreadCounts) {
  const GpuRun ref = run_gpu(1);
  ASSERT_FALSE(ref.modes.empty());
  for (int threads : {2, 7}) {
    const GpuRun run = run_gpu(threads);
    EXPECT_EQ(run.state.max_abs_diff(ref.state), 0.0) << threads;
    // Modeled device/CPU times are functions of the recorded op counts
    // only — the partition merge keeps them bitwise equal (acceptance
    // criterion: thread count never changes modeled results).
    EXPECT_EQ(run.modeled, ref.modeled) << threads;
    EXPECT_EQ(run.modeled_cpu, ref.modeled_cpu) << threads;
    ASSERT_EQ(run.modes.size(), ref.modes.size()) << threads;
    for (std::size_t i = 0; i < ref.modes.size(); ++i)
      EXPECT_EQ(run.modes[i].coeffs, ref.modes[i].coeffs) << threads;
    EXPECT_EQ(run.metrics, ref.metrics) << threads;
  }
  exec::ThreadPool::set_global_threads(1);
}

/// One distributed run: 3 ranks, execute mode, regrid mid-run.
struct DistRun {
  BssnState state;
  double t_virtual = 0;
  std::uint64_t messages = 0, bytes = 0;
  std::string metrics;
};

DistRun run_dist(int threads) {
  exec::ThreadPool::set_global_threads(threads);
  obs::MetricsRegistry reg;
  obs::install_metrics(&reg);
  auto m = puncture_mesh();
  BssnState initial;
  init_puncture(*m, initial);
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx probe(m, scfg);  // only for suggested_dt
  dist::DistConfig dcfg;
  dcfg.ranks = 3;
  dcfg.t_end = 4.1 * probe.suggested_dt();
  dcfg.regrid_every = 2;
  dcfg.regrid.max_level = 3;
  dcfg.sec_per_octant = 1e-5;
  const auto res = dist::evolve_distributed(m, initial, scfg, dcfg);
  DistRun out{res.state, res.t_virtual, res.messages, res.bytes, reg.json()};
  obs::install_metrics(nullptr);
  return out;
}

TEST(Determinism, DistributedEngineIsBitwiseStableAcrossThreadCounts) {
  const DistRun ref = run_dist(1);
  ASSERT_GT(ref.messages, 0u);
  for (int threads : {2, 7}) {
    const DistRun run = run_dist(threads);
    EXPECT_EQ(run.state.max_abs_diff(ref.state), 0.0) << threads;
    // The virtual-clock comm schedule must not see the host thread count.
    EXPECT_EQ(run.t_virtual, ref.t_virtual) << threads;
    EXPECT_EQ(run.messages, ref.messages) << threads;
    EXPECT_EQ(run.bytes, ref.bytes) << threads;
    EXPECT_EQ(run.metrics, ref.metrics) << threads;
  }
  exec::ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace dgr
