#pragma once
/// \file swsh.hpp
/// \brief Spin-weighted spherical harmonics sYlm (the basis in which Psi4 is
/// decomposed into (l, m) modes, paper §III-A), via the Wigner small-d
/// matrix:
///   sYlm(theta, phi) = (-1)^s sqrt((2l+1)/(4 pi)) d^l_{m,-s}(theta)
///                      e^{i m phi}.

#include <complex>

#include "common/types.hpp"

namespace dgr::gw {

using Complex = std::complex<Real>;

/// Wigner small-d matrix element d^l_{m,mp}(theta) (factorial-sum formula,
/// valid for the moderate l used in wave extraction).
Real wigner_d(int l, int m, int mp, Real theta);

/// Spin-weighted spherical harmonic of spin weight s.
Complex swsh(int s, int l, int m, Real theta, Real phi);

/// Convenience: the gravitational-wave basis functions (s = -2).
inline Complex swsh_m2(int l, int m, Real theta, Real phi) {
  return swsh(-2, l, m, theta, phi);
}

}  // namespace dgr::gw
