#pragma once
/// \file counters.hpp
/// \brief Flop and byte counters backing the empirical arithmetic-intensity
/// measurements (paper §III-D, Table III, Fig. 14).
///
/// Kernels report how many double-precision flops they executed and how many
/// bytes they moved between "slow" (global/RAM) and "fast" (cache/registers)
/// memory. The counters feed the slow–fast memory model of §III-D to produce
/// modeled A100 kernel times and roofline points.

#include <cstdint>
#include <string>

namespace dgr {

/// Accumulated operation counts for one kernel invocation (or a sum of them).
struct OpCounts {
  std::uint64_t flops = 0;        ///< double-precision flops
  std::uint64_t bytes_read = 0;   ///< bytes read from slow (global) memory
  std::uint64_t bytes_written = 0;///< bytes written to slow (global) memory
  std::uint64_t shared_bytes = 0; ///< fast-memory traffic (shared/L2 proxy)

  std::uint64_t bytes_moved() const { return bytes_read + bytes_written; }

  /// Arithmetic intensity Q = f / m (flops per slow-memory byte).
  double arithmetic_intensity() const;

  OpCounts& operator+=(const OpCounts& o);
  friend OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }
};

/// A named scoped accumulator: kernels add their counts to the active scope.
/// Single-threaded by design (the simulated GPU executes blocks serially).
class CounterScope {
 public:
  explicit CounterScope(std::string name) : name_(std::move(name)) {}

  void add(const OpCounts& c) { total_ += c; }
  void add_flops(std::uint64_t f) { total_.flops += f; }
  void add_read(std::uint64_t b) { total_.bytes_read += b; }
  void add_write(std::uint64_t b) { total_.bytes_written += b; }

  const OpCounts& total() const { return total_; }
  const std::string& name() const { return name_; }
  void reset() { total_ = OpCounts{}; }

 private:
  std::string name_;
  OpCounts total_;
};

}  // namespace dgr
