#pragma once
/// \file bssn_sweeps.hpp
/// \brief The BSSN sweep kernels, written once against dgr::exec_space.
///
/// Each of the sweep families that used to exist twice — once as a host
/// pool sweep in solver/bssn_ctx.cpp + solver/subcycle.cpp and once as a
/// simgpu launch in simgpu/gpu_bssn.cpp — has exactly one kernel body
/// here, parameterized on the ExecSpace it runs in:
///
///   octant-to-patch (unzip)   sweep_octant_to_patch
///   patch RHS dispatch        sweep_rhs
///   patch-to-octant (zip)     sweep_patch_to_octant
///   RK4 AXPY                  sweep_rk4_axpy
///   subcycle stage fill/save/update
///                             subcycle_step_depth + sweep_dense_save_all
///
/// Every body charges its OpCounts slot the way the simgpu launches always
/// did; host callers that historically did not accumulate counts for a
/// sweep simply pass counts == nullptr (the merged counts are dropped, the
/// simgpu backend still records them into the kernel's record). The
/// LaunchSpec of each sweep carries the pinned simgpu kernel-record name
/// AND the pinned host trace label, so kernel records, modeled times, and
/// worker spans are all unchanged from the pre-exec_space tree.
///
/// Split axes (bitwise-determinism rationale, unchanged): octant-to-patch
/// splits by VARIABLE (per-var unzip work is independent; an octant split
/// would re-count shared prolonged sources), RHS and patch-to-octant split
/// by octant (disjoint patches / owner-DOF writes), the state-wide AXPY
/// and subcycle sweeps split by variable (whole fields per chunk keep
/// writes disjoint and per-element arithmetic identical to a serial
/// sweep).

#include <cstdint>
#include <functional>
#include <vector>

#include "bssn/rhs.hpp"
#include "bssn/state.hpp"
#include "codegen/fused_rhs.hpp"
#include "common/counters.hpp"
#include "exec_space/exec_space.hpp"
#include "fd/dense_output.hpp"
#include "mesh/mesh.hpp"
#include "mesh/subcycle_index.hpp"

namespace dgr::exec_space {

/// One contiguous run of octant indices [first, second) — the element type
/// of mesh::SubcycleIndex::runs and solver::OctRange.
using OctRange = std::pair<OctIndex, OctIndex>;

// ----------------------------------------------------- RHS sweep family --

/// Octant-to-patch gather (unzip) of octants [begin, end) into `patches`,
/// split by variable. Kernel "octant-to-patch", host label "unzip".
void sweep_octant_to_patch(const ExecSpace& es, const mesh::Mesh& mesh,
                           const Real* const* fields, OctIndex begin,
                           OctIndex end, Real* patches,
                           mesh::UnzipMethod method, OpCounts* counts);

/// Which patch-RHS kernel sweep_rhs dispatches to, plus the per-lane
/// scratch it indexes by TeamMember::lane(). `fused` == nullptr selects the
/// staged compiled C++ kernel (bssn_rhs_patch); otherwise the fused SIMD
/// path runs at the space's vector-policy width.
struct RhsDispatch {
  const bssn::BssnParams* params = nullptr;
  const codegen::CompiledKernel* fused = nullptr;
  std::vector<bssn::DerivWorkspace>* ws = nullptr;
  std::vector<codegen::FusedWorkspace>* fws = nullptr;
};

/// Patch RHS of octants [begin, end) from `patch_in` into `patch_out`,
/// split by octant. Kernel "bssn-rhs", host label "rhs".
void sweep_rhs(const ExecSpace& es, const mesh::Mesh& mesh,
               const RhsDispatch& d, OctIndex begin, OctIndex end,
               const Real* patch_in, Real* patch_out, OpCounts* counts);

/// Patch-to-octant scatter (zip) of octants [begin, end), split by octant
/// (owner-DOF writes are disjoint). Kernel "patch-to-octant", host label
/// "zip".
void sweep_patch_to_octant(const ExecSpace& es, const mesh::Mesh& mesh,
                           const Real* patches, OctIndex begin, OctIndex end,
                           Real* const* fields, OpCounts* counts);

// ------------------------------------------------------ RK4 AXPY family --

/// State-wide AXPY, split by variable: y = *base + s * x when `base` is
/// non-null (RK stage construction), else y += s * x (solution update).
/// Per-element arithmetic identical to the serial state-level axpy at any
/// thread count. Kernel "axpy", host label "update".
void sweep_rk4_axpy(const ExecSpace& es, bssn::BssnState& y, Real s,
                    const bssn::BssnState& x, const bssn::BssnState* base,
                    OpCounts* counts);

// ----------------------------------------------- sub-cycled RK4 family --

/// Dense-output mode per depth: linear right after a (re)bootstrap,
/// quadratic once the depth has taken its first sub-cycled step.
inline constexpr std::uint8_t kDenseModeLinear = 0;
inline constexpr std::uint8_t kDenseModeQuad = 1;

/// Bootstrap save: dense_u0 = u over all variables. Kernel
/// "subcycle-save", host label "update".
void sweep_dense_save_all(const ExecSpace& es, const bssn::BssnState& u,
                          bssn::BssnState& dense_u0, OpCounts* counts);

/// Everything one depth-local sub-cycled RK4 step reads and writes; the
/// caller (solver::BssnCtx or simgpu::GpuBssnSolver) owns the storage.
struct SubcycleState {
  bssn::BssnState* state = nullptr;     ///< the evolved solution u
  bssn::BssnState* stage = nullptr;     ///< RK stage input buffer
  bssn::BssnState* k = nullptr;         ///< k[4]: per-stage RHS
  bssn::BssnState* dense_u0 = nullptr;  ///< retained step-start state
  bssn::BssnState* dense_k1 = nullptr;  ///< retained first RHS
  std::vector<Real>* dense_t0 = nullptr;          ///< per-depth step start
  std::vector<std::uint8_t>* dense_mode = nullptr;  ///< per-depth kDenseMode*
};

/// RHS evaluation callback: rhs(u, out, runs) evaluates the BSSN RHS of
/// `u` into `out` restricted to the octant runs — solver::RhsPipeline on
/// every backend (the simgpu caller's wrapper also records its
/// halo-exchange kernel first).
using SubcycleRhsFn = std::function<void(
    const bssn::BssnState&, bssn::BssnState&, const std::vector<OctRange>&)>;

/// Full RK4 step of depth `depth` against dense-output ghost data,
/// advancing only depth-owned DOFs — the single body behind both
/// solver::BssnCtx::subcycle_step_depth and the simgpu mirror (bitwise
/// identical state evolution; see solver/subcycle.cpp for the scheme).
/// Runs the "subcycle-fill" / "subcycle-save" / "subcycle-update" sweeps
/// (host label "update") on `es` with the pinned OpCounts charges, calling
/// `rhs` once per stage. `update_begin` / `update_end` (nullable) bracket
/// each update-class sweep — the host solver hangs its update PhaseTimer
/// here. `counts` feeds the sweeps' merged OpCounts (nullable).
void subcycle_step_depth(const ExecSpace& es, const mesh::SubcycleIndex& idx,
                         int depth, Real fine_dt, Real time,
                         const SubcycleState& st, const SubcycleRhsFn& rhs,
                         OpCounts* counts,
                         const std::function<void()>& update_begin,
                         const std::function<void()>& update_end);

}  // namespace dgr::exec_space
