/// \file bench_ablation_pipeline.cpp
/// \brief Ablations of the design choices DESIGN.md calls out:
///  (a) pipeline chunk size — the device-memory / launch-overhead tradeoff
///      of processing the octant pipeline in chunks (the GPU analogue is
///      patch-buffer residency; results are bit-identical by construction);
///  (b) unzip method inside the full solver — the end-to-end cost of
///      running Algorithm 1 with the loop-over-patches baseline instead of
///      the proposed loop-over-octants scatter;
///  (c) register budget — spill traffic of the binary-reduce kernel as the
///      per-thread register budget shrinks (the paper's launch-bounds
///      choice of 56 sits at the knee).

#include <cstdio>

#include "bench_common.hpp"
#include "codegen/bssn_graph.hpp"
#include "codegen/machine.hpp"
#include "common/timer.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Ablation", "chunk size / unzip method / register budget");
  bench::Reporter rep("ablation_pipeline", argc, argv);

  // (a) chunk size.
  {
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 4);
    std::printf("  (a) pipeline chunk size (1 RK4 step, %zu octants):\n",
                m->num_octants());
    std::printf("      chunk | patch buffers (MB) | wall (s)\n");
    for (int chunk : {8, 32, 64, 256}) {
      solver::SolverConfig cfg;
      cfg.chunk_octants = chunk;
      solver::BssnCtx ctx(m, cfg);
      bench::init_bbh_state(*m, 1.0, 2.0, ctx.state());
      WallTimer t;
      ctx.rk4_step();
      const double mb = 2.0 * chunk * bssn::kNumVars * mesh::kPatchPts *
                        sizeof(Real) / 1e6;
      std::printf("      %-5d | %-18.1f | %.2f\n", chunk, mb, t.seconds());
      rep.metric("chunk" + std::to_string(chunk) + "_wall_s", t.seconds());
    }
    bench::note("larger chunks amortize halo loads; memory grows linearly —");
    bench::note("the default (64) keeps buffers ~70 MB at equal speed.");
  }

  // (b) unzip method end-to-end.
  {
    auto m = bench::bbh_mesh(1.0, 16.0, 2.0, 2, 3);
    std::printf("\n  (b) solver with each unzip method (1 RK4 step, %zu "
                "octants):\n", m->num_octants());
    double base = 0;
    for (auto method : {mesh::UnzipMethod::kLoopOverOctants,
                        mesh::UnzipMethod::kLoopOverPatches}) {
      solver::SolverConfig cfg;
      cfg.unzip_method = method;
      solver::BssnCtx ctx(m, cfg);
      bench::init_bbh_state(*m, 1.0, 2.0, ctx.state());
      WallTimer t;
      ctx.rk4_step();
      const double s = t.seconds();
      const bool scatter = method == mesh::UnzipMethod::kLoopOverOctants;
      if (scatter) base = s;
      else rep.pair("end_to_end_slowdown_gather", NAN, s / base, "x");
      std::printf("      %-18s | wall %.2f s | unzip share %.0f%%%s\n",
                  scatter ? "loop-over-octants" : "loop-over-patches", s,
                  100 * ctx.breakdown().unzip.total_seconds() / s,
                  scatter ? "" : "  <- baseline");
    }
    (void)base;
    bench::note("the padding-zone advantage survives end-to-end, diluted by");
    bench::note("the RHS share (Amdahl), as the paper's overall 2.5x implies.");
  }

  // (c) register budget.
  {
    using namespace dgr::codegen;
    const auto bg = build_bssn_algebra_graph();
    std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
    std::printf("\n  (c) binary-reduce spill traffic vs register budget:\n");
    std::printf("      regs | spill loads+stores (bytes)\n");
    for (int regs : {16, 32, 56, 96, 160}) {
      const CompiledKernel k(bg.graph, roots, Strategy::kBinaryReduce, regs);
      const auto spill =
          k.stats().spill_load_bytes + k.stats().spill_store_bytes;
      rep.metric("spill_bytes_r" + std::to_string(regs), double(spill));
      std::printf("      %-4d | %llu\n", regs,
                  (unsigned long long)spill);
    }
    bench::note("the paper's launch_bounds(343,3) = 56 registers sits near");
    bench::note("the knee: more registers buy little once live range fits.");
  }
  return 0;
}
