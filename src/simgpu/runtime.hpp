#pragma once
/// \file runtime.hpp
/// \brief Simulated GPU runtime. Kernels execute on the host under a
/// block-level launch abstraction while recording their operation counts;
/// modeled device time comes from feeding those counts through the §III-D
/// slow–fast memory model (perf::MachineModel). Host<->device transfers and
/// device memory are accounted the same way, and streams tag kernels so the
/// asynchronous wave-extraction path (Algorithm 1) can be excluded from the
/// critical path.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "common/counters.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "perf/machine_model.hpp"

namespace dgr::simgpu {

/// Bump allocator for per-launch bookkeeping (the per-chunk OpCounts slots
/// of launch_range, and any transient buffers a kernel body wants for one
/// launch). reset() recycles all blocks but keeps their capacity, so a
/// steady-state launch loop performs zero heap allocations — the property
/// the scratch-arena test pins down via stats().heap_allocs.
class ScratchArena {
 public:
  struct Stats {
    std::uint64_t heap_allocs = 0;  ///< blocks obtained from the heap
    std::uint64_t requests = 0;     ///< get<T>() calls served
  };

  /// Largest single request the arena will serve. Well above any real use;
  /// the bound exists so the alignment bump and the block-end pointer math
  /// in take() can never overflow std::size_t and hand back a pointer into
  /// (or past) a block that is too small.
  static constexpr std::size_t kMaxRequestBytes =
      std::numeric_limits<std::size_t>::max() / 2;

  /// `n` default-constructed T slots, 64-byte aligned (slots written by
  /// different worker lanes must not share a cache line). Valid until the
  /// next reset(). Throws dgr::Error when the request exceeds the arena's
  /// representable capacity (element-count * sizeof(T) or the alignment
  /// round-up would overflow).
  template <class T>
  T* get(std::size_t n) {
    ++stats_.requests;
    DGR_CHECK_MSG(n <= kMaxRequestBytes / sizeof(T),
                  "ScratchArena capacity exceeded: " << n << " slots of "
                      << sizeof(T) << " bytes overflow the request limit");
    const std::size_t bytes = align_up(n * sizeof(T));
    unsigned char* p = take(bytes);
    T* out = reinterpret_cast<T*>(p);
    for (std::size_t i = 0; i < n; ++i) new (out + i) T();
    return out;
  }

  /// Recycle every block (trivially-destructible contents only), keeping
  /// the capacity already acquired.
  void reset() {
    if (blocks_.size() > 1) {
      // Coalesce so the next cycle is served from one block.
      std::size_t total = 0;
      for (const auto& b : blocks_) total += b.size();
      blocks_.clear();
      blocks_.emplace_back(total);
      ++stats_.heap_allocs;
    }
    block_ = used_ = 0;
  }

  const Stats& stats() const { return stats_; }

 private:
  /// Overflow-checked round-up to the 64-byte slot alignment. The caller
  /// (get<T>) has already bounded the raw byte count by kMaxRequestBytes,
  /// so the +63 bump cannot wrap; the check is kept here as a hard
  /// capacity-exceeded error in case a future caller bypasses get<T>.
  static std::size_t align_up(std::size_t n) {
    DGR_CHECK_MSG(n <= kMaxRequestBytes,
                  "ScratchArena capacity exceeded: aligning a " << n
                      << "-byte request would overflow");
    return (n + 63) & ~std::size_t(63);
  }

  /// First offset >= off whose absolute address is 64-byte aligned (the
  /// block's base address need not be).
  static std::size_t aligned_offset(const unsigned char* base,
                                    std::size_t off) {
    const auto p = reinterpret_cast<std::uintptr_t>(base) + off;
    return off + ((64 - (p % 64)) % 64);
  }

  unsigned char* take(std::size_t bytes) {
    while (block_ < blocks_.size()) {
      unsigned char* base = blocks_[block_].data();
      const std::size_t size = blocks_[block_].size();
      const std::size_t start = aligned_offset(base, used_);
      // Overflow-safe form of `start + bytes <= size`: the alignment bump
      // may push `start` past the block end, and `start + bytes` must not
      // wrap around before the comparison (a wrapped sum would hand back a
      // pointer into a block that is far too small).
      if (start <= size && bytes <= size - start) {
        used_ = start + bytes;
        return base + start;
      }
      ++block_;
      used_ = 0;
    }
    // bytes <= kMaxRequestBytes (align_up), so +64 cannot overflow.
    blocks_.emplace_back(std::max<std::size_t>(bytes + 64, 4096));
    ++stats_.heap_allocs;
    block_ = blocks_.size() - 1;
    unsigned char* base = blocks_.back().data();
    const std::size_t start = aligned_offset(base, 0);
    used_ = start + bytes;
    return base + start;
  }

  std::vector<std::vector<unsigned char>> blocks_;
  std::size_t block_ = 0, used_ = 0;  // bump position
  Stats stats_;
};

struct KernelRecord {
  int launches = 0;
  std::uint64_t blocks = 0;
  int stream = 0;
  OpCounts counts;              ///< totals over all launches
  std::vector<OpCounts> per_launch;  ///< per-launch counts (model input)
  double host_seconds = 0;

  /// Modeled device time: the finite-cache model applied per launch (the
  /// §III-D working set m is a per-kernel-invocation quantity).
  double modeled_seconds(const perf::MachineModel& m) const {
    double t = 0;
    for (const auto& c : per_launch) t += m.time_finite_cache(c);
    return t;
  }
};

class GpuRuntime {
 public:
  explicit GpuRuntime(perf::MachineModel model = perf::a100())
      : model_(std::move(model)) {}

  const perf::MachineModel& model() const { return model_; }

  // ------------------------------------------------- memory accounting --
  // The byte counters are atomic so kernel bodies running on pool workers
  // may account transfers concurrently; kernel-launch bookkeeping itself
  // stays a single-driver operation (see launch/launch_range).
  void device_alloc(std::uint64_t bytes) {
    const std::uint64_t now =
        allocated_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed))
      ;
  }
  void device_free(std::uint64_t bytes) {
    std::uint64_t cur = allocated_.load(std::memory_order_relaxed);
    while (!allocated_.compare_exchange_weak(cur, cur - std::min(cur, bytes),
                                             std::memory_order_relaxed))
      ;
  }
  void h2d(std::uint64_t bytes) {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    obs::count("gpu.h2d_bytes", bytes);
  }
  void d2h(std::uint64_t bytes) {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    obs::count("gpu.d2h_bytes", bytes);
  }

  std::uint64_t allocated_bytes() const { return allocated_; }
  std::uint64_t peak_bytes() const { return peak_; }
  std::uint64_t h2d_bytes() const { return h2d_bytes_; }
  std::uint64_t d2h_bytes() const { return d2h_bytes_; }

  /// Modeled PCIe transfer time for all H2D/D2H traffic so far.
  double transfer_seconds() const {
    if (model_.h2d_bw <= 0) return 0;
    return static_cast<double>(h2d_bytes_ + d2h_bytes_) / model_.h2d_bw;
  }

  // --------------------------------------------------- kernel launches --
  /// Execute `body` as one kernel launch of `blocks` blocks on `stream`.
  /// The body receives an OpCounts to fill with the work it performed.
  template <class F>
  void launch(const std::string& name, std::uint64_t blocks, int stream,
              F&& body) {
    KernelRecord& rec = records_[name];
    WallTimer t;
    OpCounts c;
    {
      obs::ScopedSpan span(name.c_str(), "kernel");
      body(c);
    }
    rec.host_seconds += t.seconds();
    rec.counts += c;
    rec.per_launch.push_back(c);
    rec.launches += 1;
    rec.blocks += blocks;
    rec.stream = stream;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->add("gpu.launches");
      m->add("gpu.flops", c.flops);
      m->add("gpu.kernel." + name + ".bytes", c.bytes_moved());
    }
  }

  /// Execute one kernel launch whose body is data-parallel over [0, n):
  /// body(i0, i1, OpCounts&) runs for fixed-grain chunks distributed over
  /// the host pool (src/exec). Per-chunk counts land in arena slots indexed
  /// by chunk and are merged in chunk order, so the recorded totals and the
  /// per-launch model input are bitwise identical to a serial launch() that
  /// does the same work — thread count never leaks into modeled times.
  /// Chunks of one launch must write disjoint outputs; the launch itself is
  /// still a single sequential record update on the caller. When `out` is
  /// non-null the chunk-order-merged counts are also accumulated into it
  /// (the exec_space layer routes solver-side OpCounts through this).
  template <class F>
  void launch_range(const std::string& name, std::uint64_t blocks, int stream,
                    std::int64_t n, std::int64_t grain, F&& body,
                    OpCounts* out = nullptr) {
    KernelRecord& rec = records_[name];
    WallTimer t;
    scratch_.reset();
    const std::int64_t nc = exec::num_chunks(0, n, grain);
    OpCounts* slots = scratch_.get<OpCounts>(static_cast<std::size_t>(nc));
    {
      obs::ScopedSpan span(name.c_str(), "kernel");
      exec::for_each_chunk(
          0, n, grain,
          [&](std::int64_t c, std::int64_t b, std::int64_t e) {
            body(b, e, slots[c]);
          },
          name.c_str());
    }
    OpCounts c;
    for (std::int64_t i = 0; i < nc; ++i) c += slots[i];
    if (out) *out += c;
    rec.host_seconds += t.seconds();
    rec.counts += c;
    rec.per_launch.push_back(c);
    rec.launches += 1;
    rec.blocks += blocks;
    rec.stream = stream;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->add("gpu.launches");
      m->add("gpu.flops", c.flops);
      m->add("gpu.kernel." + name + ".bytes", c.bytes_moved());
    }
  }

  /// The per-launch scratch arena (reset at the start of every
  /// launch_range; see ScratchArena).
  ScratchArena& scratch() { return scratch_; }
  const ScratchArena::Stats& scratch_stats() const { return scratch_.stats(); }

  bool has_kernel(const std::string& name) const {
    return records_.count(name) > 0;
  }
  const KernelRecord& record(const std::string& name) const {
    return records_.at(name);
  }
  const std::map<std::string, KernelRecord>& records() const {
    return records_;
  }

  /// Modeled device time of one kernel (finite-cache model of §III-D,
  /// applied per launch).
  double modeled_kernel_seconds(const std::string& name) const {
    return records_.at(name).modeled_seconds(model_);
  }

  /// Modeled device time of the synchronous pipeline (stream 0) plus
  /// transfers; kernels on other streams overlap (Algorithm 1's async wave
  /// extraction) and are excluded unless `include_async`.
  double modeled_total_seconds(bool include_async = false) const {
    return modeled_total_with(model_, include_async) + transfer_seconds();
  }

  /// Same pipeline evaluated under a different machine model (the CPU side
  /// of the paper's GPU-vs-node comparisons).
  double modeled_total_with(const perf::MachineModel& m,
                            bool include_async = false) const {
    double t = 0;
    for (const auto& [name, rec] : records_)
      if (rec.stream == 0 || include_async) t += rec.modeled_seconds(m);
    return t;
  }

  double host_total_seconds() const {
    double t = 0;
    for (const auto& [name, rec] : records_) t += rec.host_seconds;
    return t;
  }

  /// Reset semantics. The runtime distinguishes *counters* — statistics of
  /// work submitted so far (kernel records, H2D/D2H transfer bytes, and the
  /// allocation high-water mark) — from *live allocation state*
  /// (allocated_bytes(), which tracks memory currently held and is only
  /// changed by device_alloc/device_free). reset_counters() clears all
  /// counters and restarts the high-water mark from the current allocation,
  /// so after a reset peak_bytes() reports the maximum reached *since the
  /// reset* and allocated_bytes() is untouched.
  void reset_counters() {
    records_.clear();
    h2d_bytes_ = 0;
    d2h_bytes_ = 0;
    peak_ = allocated_.load();
  }

 private:
  perf::MachineModel model_;
  std::map<std::string, KernelRecord> records_;
  ScratchArena scratch_;
  std::atomic<std::uint64_t> allocated_{0}, peak_{0};
  std::atomic<std::uint64_t> h2d_bytes_{0}, d2h_bytes_{0};
};

}  // namespace dgr::simgpu
