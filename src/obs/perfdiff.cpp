#include "obs/perfdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

#include "common/json_read.hpp"

namespace dgr::obs::perfdiff {

namespace fs = std::filesystem;

namespace {

bool contains_any(const std::string& s,
                  std::initializer_list<const char*> needles) {
  for (const char* n : needles)
    if (s.find(n) != std::string::npos) return true;
  return false;
}

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// One flattened metric from a dgr-bench-v1 report.
struct Flat {
  std::string key;
  double value;
};

void flatten(const jsonu::JValue& root, std::vector<Flat>& out) {
  if (const jsonu::JValue* pairs = root.get("pairs")) {
    for (const jsonu::JValue& p : pairs->arr) {
      const std::string name = p.get_str("name");
      const auto ours = p.get_num("ours");
      if (!name.empty() && ours) out.push_back({"pair:" + name, *ours});
    }
  }
  const jsonu::JValue* metrics = root.get("metrics");
  if (!metrics) return;
  if (const jsonu::JValue* c = metrics->get("counters"))
    for (const auto& [k, v] : c->obj)
      if (v.is_num()) out.push_back({"counter:" + k, v.num});
  if (const jsonu::JValue* g = metrics->get("gauges"))
    for (const auto& [k, v] : g->obj)
      if (v.is_num()) out.push_back({"gauge:" + k, v.num});
  if (const jsonu::JValue* s = metrics->get("summaries"))
    for (const auto& [k, v] : s->obj) {
      if (const auto n = v.get_num("count"))
        out.push_back({"summary:" + k + ".count", *n});
      if (const auto n = v.get_num("mean"))
        out.push_back({"summary:" + k + ".mean", *n});
    }
  if (const jsonu::JValue* h = metrics->get("histograms"))
    for (const auto& [k, v] : h->obj)
      for (const char* q : {"count", "p50", "p90", "p99", "p999"})
        if (const auto n = v.get_num(q))
          out.push_back({"hist:" + k + "." + q, *n});
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

Direction infer_direction(const std::string& key) {
  // Two-sided when the name smells of both directions ("hit_rate_us"
  // style ambiguity) — any drift then counts against it.
  const bool lower_better =
      ends_with(key, "_us") || ends_with(key, "_s") ||
      contains_any(key, {"_us.", "seconds", "latency", "time", "err",
                         "mismatch", "shed", "lost", "spill", "queue",
                         "bytes", "diff", "overhead"});
  const bool higher_better =
      contains_any(key, {"rate", "throughput", "rps", "eff", "speedup",
                         "gflops", "answered", "drained", "recoveries"});
  if (lower_better && !higher_better) return Direction::kLowerBetter;
  if (higher_better && !lower_better) return Direction::kHigherBetter;
  return Direction::kTwoSided;
}

std::size_t Report::regressions() const {
  return std::size_t(std::count_if(rows.begin(), rows.end(),
                                   [](const Row& r) { return r.regression; }));
}

std::string Report::text(bool all_rows) const {
  std::string out;
  for (const std::string& p : problems) out += "PROBLEM  " + p + "\n";
  for (const Row& r : rows) {
    if (!all_rows && !r.regression && !r.gated) continue;
    const char* tag = r.regression ? "REGRESS " : (r.gated ? "ok      "
                                                           : "info    ");
    out += tag + r.bench + " " + r.key + "  base=" + fmt(r.base);
    if (r.missing) {
      out += "  cur=MISSING";
    } else {
      out += "  cur=" + fmt(r.cur) + "  (" + (r.delta_pct >= 0 ? "+" : "") +
             fmt(r.delta_pct) + "%)";
    }
    out += "\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "perfdiff: %d bench(es), %zu row(s), %zu regression(s), "
                "%zu problem(s)\n",
                benches_compared, rows.size(), regressions(),
                problems.size());
  out += buf;
  return out;
}

void diff_reports(const std::string& bench, const std::string& base_json,
                  const std::string& cur_json, const Options& opt,
                  Report& report) {
  std::string err;
  const auto base = jsonu::parse(base_json, &err);
  if (!base) {
    report.problems.push_back(bench + ": baseline unparsable (" + err + ")");
    return;
  }
  const auto cur = jsonu::parse(cur_json, &err);
  if (!cur) {
    report.problems.push_back(bench + ": current unparsable (" + err + ")");
    return;
  }
  std::vector<Flat> bflat, cflat;
  flatten(*base, bflat);
  flatten(*cur, cflat);
  std::map<std::string, double> cur_by_key;
  for (const Flat& f : cflat) cur_by_key.emplace(f.key, f.value);

  const std::regex gate(opt.gate.empty() ? ".*" : opt.gate);
  report.benches_compared += 1;
  for (const Flat& b : bflat) {
    Row row;
    row.bench = bench;
    row.key = b.key;
    row.base = b.value;
    row.dir = infer_direction(b.key);
    row.gated = std::regex_search(b.key, gate);
    const auto it = cur_by_key.find(b.key);
    if (it == cur_by_key.end()) {
      row.missing = true;
      row.cur = std::nan("");
      row.regression = row.gated;
      report.rows.push_back(row);
      continue;
    }
    row.cur = it->second;
    const double delta = row.cur - row.base;
    row.delta_pct = row.base != 0 ? 100.0 * delta / std::fabs(row.base)
                                  : (delta == 0 ? 0.0 : HUGE_VAL *
                                                            (delta > 0 ? 1
                                                                       : -1));
    double worse_pct = 0;  // drift in the metric's worse direction, in %
    switch (row.dir) {
      case Direction::kLowerBetter: worse_pct = row.delta_pct; break;
      case Direction::kHigherBetter: worse_pct = -row.delta_pct; break;
      case Direction::kTwoSided: worse_pct = std::fabs(row.delta_pct); break;
    }
    row.regression = row.gated && worse_pct > opt.threshold_pct;
    report.rows.push_back(row);
  }
}

namespace {

std::map<std::string, std::string> bench_files(const std::string& dir,
                                               std::string* err) {
  std::map<std::string, std::string> out;  // bench name -> path
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    const std::string fn = e.path().filename().string();
    if (fn.rfind("BENCH_", 0) != 0 || !ends_with(fn, ".json")) continue;
    if (ends_with(fn, ".trace.json")) continue;
    out.emplace(fn.substr(6, fn.size() - 6 - 5), e.path().string());
  }
  if (ec && err) *err = dir + ": " + ec.message();
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

Report diff_dirs(const std::string& base_dir, const std::string& cur_dir,
                 const Options& opt) {
  Report report;
  std::string err;
  const auto base = bench_files(base_dir, &err);
  if (!err.empty()) report.problems.push_back(err);
  err.clear();
  const auto cur = bench_files(cur_dir, &err);
  if (!err.empty()) report.problems.push_back(err);
  if (base.empty())
    report.problems.push_back(base_dir + ": no BENCH_*.json baselines");
  for (const auto& [bench, bpath] : base) {
    const auto it = cur.find(bench);
    if (it == cur.end()) {
      report.problems.push_back(bench + ": no current report in " + cur_dir);
      continue;
    }
    diff_reports(bench, slurp(bpath), slurp(it->second), opt, report);
  }
  return report;
}

int run_cli(int argc, char** argv) {
  Options opt;
  std::vector<std::string> dirs;
  bool all_rows = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threshold requires a value\n");
        return 2;
      }
      // Reject empty values, trailing garbage, negatives, and non-finite
      // forms ("nan"/"inf" satisfy strtod and are not < 0 — a nan
      // threshold silently disables every gate comparison).
      char* tail = nullptr;
      opt.threshold_pct = std::strtod(argv[++i], &tail);
      if (!tail || tail == argv[i] || *tail ||
          !std::isfinite(opt.threshold_pct) || opt.threshold_pct < 0) {
        std::fprintf(stderr, "error: bad --threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (a == "--gate") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --gate requires a value\n");
        return 2;
      }
      opt.gate = argv[++i];
    } else if (a == "--all") {
      all_rows = true;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: dgr_perfdiff BASE_DIR CUR_DIR [--threshold PCT] "
          "[--gate REGEX] [--all]\n"
          "Diff two directories of BENCH_*.json perf reports. Rows whose\n"
          "key matches --gate regress the run when they drift more than\n"
          "--threshold %% in the metric's worse direction.\n"
          "exit: 0 clean, 1 regressions/problems, 2 usage/IO error\n");
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", a.c_str());
      return 2;
    } else {
      dirs.push_back(a);
    }
  }
  if (dirs.size() != 2) {
    std::fprintf(stderr,
                 "usage: dgr_perfdiff BASE_DIR CUR_DIR [--threshold PCT] "
                 "[--gate REGEX] [--all]\n");
    return 2;
  }
  try {
    const Report rep = diff_dirs(dirs[0], dirs[1], opt);
    std::fputs(rep.text(all_rows).c_str(), stdout);
    return rep.ok() ? 0 : 1;
  } catch (const std::regex_error& e) {
    std::fprintf(stderr, "error: bad --gate regex: %s\n", e.what());
    return 2;
  }
}

}  // namespace dgr::obs::perfdiff
