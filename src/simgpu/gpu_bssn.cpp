#include "simgpu/gpu_bssn.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "exec_space/bssn_sweeps.hpp"
#include "gw/psi4.hpp"

namespace dgr::simgpu {

using bssn::BssnState;
using bssn::kNumVars;
using mesh::kPatchPts;

namespace {
std::uint64_t state_bytes(const mesh::Mesh& m) {
  return std::uint64_t(m.num_dofs()) * kNumVars * sizeof(Real);
}

/// The host pipeline configuration equivalent to a GpuSolverConfig: same
/// params, chunking and SIMD width; the device kernels always unzip by
/// looping over octants (one block per octant).
solver::SolverConfig pipeline_config(const GpuSolverConfig& c) {
  solver::SolverConfig s;
  s.bssn = c.bssn;
  s.cfl = c.cfl;
  s.chunk_octants = c.chunk_octants;
  s.unzip_method = mesh::UnzipMethod::kLoopOverOctants;
  s.rhs_kernel = c.fused_simd_rhs ? solver::RhsKernel::kStagedFusedSimd
                                  : solver::RhsKernel::kCompiled;
  s.simd_width = c.simd_width;
  return s;
}
}  // namespace

GpuBssnSolver::GpuBssnSolver(std::shared_ptr<mesh::Mesh> mesh,
                             GpuSolverConfig config, perf::MachineModel model)
    : mesh_(std::move(mesh)),
      config_(config),
      runtime_(std::move(model)),
      space_(exec_space::ExecSpace::simgpu(runtime_)),
      pipeline_(mesh_, pipeline_config(config), space_) {
  DGR_CHECK(mesh_ != nullptr);
  state_.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  // Device allocations: 6 state-sized vectors + the chunked patch buffers
  // (owned by the pipeline, priced here).
  runtime_.device_alloc(6 * state_bytes(*mesh_));
  const std::size_t cap =
      std::size_t(config_.chunk_octants) * kNumVars * kPatchPts;
  runtime_.device_alloc(2 * cap * sizeof(Real));
}

void GpuBssnSolver::upload(const bssn::BssnState& state) {
  DGR_CHECK(state.num_dofs() == mesh_->num_dofs());
  state_ = state;
  runtime_.h2d(state_bytes(*mesh_));
  // The uploaded state replaces the evolution history; retained dense
  // stages no longer bracket it.
  dense_ready_ = false;
}

BssnState GpuBssnSolver::download() {
  runtime_.d2h(state_bytes(*mesh_));
  return state_;
}

void GpuBssnSolver::compute_rhs(const BssnState& u, BssnState& rhs) {
  compute_rhs(u, rhs,
              {{0, static_cast<OctIndex>(mesh_->num_octants())}});
}

void GpuBssnSolver::compute_rhs(
    const BssnState& u, BssnState& rhs,
    const std::vector<std::pair<OctIndex, OctIndex>>& runs) {
  // Halo exchange (Algorithm 1 line 6): on a single simulated device the
  // partition is whole, so only the (empty) kernel is recorded. The
  // pipeline then runs the shared octant-to-patch / bssn-rhs /
  // patch-to-octant sweep bodies on the simgpu space — each a recorded
  // kernel launch, restricted runs keeping launches, op counts and modeled
  // time proportional to live work.
  runtime_.launch("halo-exchange", 1, 0, [&](OpCounts&) {});
  pipeline_.compute(u, rhs, runs, nullptr, nullptr);
}

void GpuBssnSolver::rk4_step(Real dt) {
  compute_rhs(state_, k_[0]);
  exec_space::sweep_rk4_axpy(space_, stage_, 0.5 * dt, k_[0], &state_,
                             nullptr);
  compute_rhs(stage_, k_[1]);
  exec_space::sweep_rk4_axpy(space_, stage_, 0.5 * dt, k_[1], &state_,
                             nullptr);
  compute_rhs(stage_, k_[2]);
  exec_space::sweep_rk4_axpy(space_, stage_, dt, k_[2], &state_, nullptr);
  compute_rhs(stage_, k_[3]);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 6.0, k_[0], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 3.0, k_[1], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 3.0, k_[2], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 6.0, k_[3], nullptr,
                             nullptr);
  time_ += dt;
  dense_ready_ = false;
}

const mesh::SubcycleIndex& GpuBssnSolver::subcycle_index() {
  if (!subidx_)
    subidx_ = std::make_unique<mesh::SubcycleIndex>(
        mesh::SubcycleIndex::build(*mesh_));
  return *subidx_;
}

void GpuBssnSolver::subcycle_bootstrap() {
  const mesh::SubcycleIndex& idx = *subidx_;
  const std::size_t nd = mesh_->num_dofs();
  if (!dense_alloc_) {
    // Two more device-resident state-sized arrays for the retained dense
    // stages (u0, k1), priced into the memory model.
    runtime_.device_alloc(2 * state_bytes(*mesh_));
    dense_alloc_ = true;
  }
  dense_u0_.resize(nd);
  dense_k1_.resize(nd);
  dense_t0_.assign(static_cast<std::size_t>(idx.depths()), time_);
  dense_mode_.assign(static_cast<std::size_t>(idx.depths()),
                     exec_space::kDenseModeLinear);
  compute_rhs(state_, dense_k1_);
  exec_space::sweep_dense_save_all(space_, state_, dense_u0_, nullptr);
  dense_ready_ = true;
}

void GpuBssnSolver::subcycle_step_depth(int depth, Real fine_dt) {
  // The shared depth-local RK4 body (exec_space/bssn_sweeps.cpp) on the
  // simgpu space: the fill/save/update sweeps record as the
  // "subcycle-fill"/"subcycle-save"/"subcycle-update" kernels, the
  // restricted RHS goes through compute_rhs (halo-exchange + pipeline).
  const exec_space::SubcycleState st{&state_,    &stage_,     k_,
                                     &dense_u0_, &dense_k1_,  &dense_t0_,
                                     &dense_mode_};
  exec_space::subcycle_step_depth(
      space_, *subidx_, depth, fine_dt, time_, st,
      [&](const BssnState& u, BssnState& k,
          const std::vector<exec_space::OctRange>& runs) {
        compute_rhs(u, k, runs);
      },
      nullptr, nullptr, nullptr);
}

void GpuBssnSolver::subcycle_cycle(Real fine_dt) {
  DGR_CHECK(fine_dt > 0);
  const mesh::SubcycleIndex& idx = subcycle_index();
  if (!idx.uniform() && !dense_ready_) subcycle_bootstrap();
  const int cycle = idx.cycle();
  for (int s = 0; s < cycle; ++s) {
    for (int d = idx.active_cutoff(s); d <= idx.dmax; ++d)
      subcycle_step_depth(d, fine_dt);
    time_ += fine_dt;
  }
}

std::vector<gw::SphereModes> GpuBssnSolver::extract_waves(
    const gw::WaveExtractor& ex) {
  std::vector<gw::SphereModes> modes;
  runtime_.launch("psi4-extract", mesh_->num_octants(), /*stream=*/1,
                  [&](OpCounts& c) {
                    modes = ex.extract_from_state(*mesh_, state_,
                                                  config_.bssn);
                    // Rough accounting: one Ricci-scale pass per octant.
                    c.flops += std::uint64_t(mesh_->num_octants()) *
                               mesh::kOctPts * 600;
                    c.bytes_read += std::uint64_t(mesh_->num_octants()) *
                                    kNumVars * kPatchPts * sizeof(Real);
                  });
  return modes;
}

}  // namespace dgr::simgpu
