#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation (splitmix64-seeded
/// xoshiro256**). All randomized tests and synthetic workloads use this so
/// results are bit-reproducible across runs.

#include <cstdint>

namespace dgr {

/// splitmix64: used to expand a single seed into a full xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B9ULL) {
    for (auto& w : s_) w = splitmix64(seed);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return (next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace dgr
