#include "octree/refinement.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dgr::oct {

Real point_box_dist2(const std::array<Real, 3>& p,
                     const std::array<Real, 3>& lo,
                     const std::array<Real, 3>& hi) {
  Real d2 = 0;
  for (int a = 0; a < 3; ++a) {
    const Real d = std::max({lo[a] - p[a], Real(0), p[a] - hi[a]});
    d2 += d * d;
  }
  return d2;
}

Octree build_puncture_octree(const Domain& domain,
                             const std::vector<Puncture>& punctures,
                             int base_level, Real cascade_radius_factor) {
  DGR_CHECK(base_level >= 0 && base_level <= kMaxDepth);
  auto should_split = [&](const TreeNode& t) {
    if (int(t.level) < base_level) return Refine::kSplit;
    const Real e = domain.octant_edge(t.level);
    const std::array<Real, 3> lo = domain.to_phys(t.x, t.y, t.z);
    const std::array<Real, 3> hi = {lo[0] + e, lo[1] + e, lo[2] + e};
    for (const auto& p : punctures) {
      if (int(t.level) >= p.finest_level) continue;
      const Real r = cascade_radius_factor * e;
      if (point_box_dist2(p.pos, lo, hi) < r * r) return Refine::kSplit;
    }
    return Refine::kKeep;
  };
  int deepest = base_level;
  for (const auto& p : punctures) deepest = std::max(deepest, p.finest_level);
  return Octree::build(should_split, deepest).balanced();
}

Octree build_adaptivity_grid(const Domain& domain, int family_index) {
  DGR_CHECK_MSG(family_index >= 1 && family_index <= 5,
                "adaptivity family index must be in 1..5");
  // Moving from m1 to m5 the grid becomes more uniform (paper §V-A). Real
  // BBH grids do this as the regrid criterion widens the refined wave zone:
  // mid levels cover growing shells while the deepest puncture levels are
  // dropped. We emulate that with per-level refinement radii (fractions of
  // the half extent): an octant is refined to level l+1 while its box
  // intersects the ball of radius r[l+1] around the domain center.
  struct Shells {
    int base;
    // radius fraction indexed by target level (base+1 ...); 0 terminates.
    Real r[6];
  };
  static const Shells kFamily[5] = {
      // m1: deep and narrow (most adaptive) ... m5: shallow and wide.
      {3, {0.08, 0.040, 0.020, 0.010, 0}},   // levels 4..7
      {3, {0.30, 0.130, 0.050, 0, 0}},       // levels 4..6
      {3, {0.45, 0.180, 0.060, 0, 0}},       // levels 4..6
      {3, {0.85, 0.330, 0, 0, 0}},           // levels 4..5
      {3, {1.50, 0.520, 0, 0, 0}},           // levels 4..5 (near-uniform L4)
  };
  const Shells& fam = kFamily[family_index - 1];
  auto should_split = [&](const TreeNode& t) {
    if (int(t.level) < fam.base) return Refine::kSplit;
    const int slot = int(t.level) - fam.base;
    if (slot >= 6 || fam.r[slot] <= 0) return Refine::kKeep;
    const Real e = domain.octant_edge(t.level);
    const std::array<Real, 3> lo = domain.to_phys(t.x, t.y, t.z);
    const std::array<Real, 3> hi = {lo[0] + e, lo[1] + e, lo[2] + e};
    const Real r = fam.r[slot] * domain.half_extent;
    return point_box_dist2({0, 0, 0}, lo, hi) < r * r ? Refine::kSplit
                                                      : Refine::kKeep;
  };
  return Octree::build(should_split, kMaxDepth).balanced();
}

}  // namespace dgr::oct
