/// \file test_perf.cpp
/// \brief Performance-model tests: the §III-D slow–fast memory model with
/// the paper's A100 constants, roofline behaviour, the Table I requirements
/// model, and the Table IV production estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/timer.hpp"
#include "perf/machine_model.hpp"
#include "perf/network.hpp"
#include "perf/production.hpp"
#include "perf/requirements.hpp"

namespace dgr::perf {
namespace {

// Busy-wait so PhaseTimer's steady clock observes a nonzero interval.
void spin_for(double seconds) {
  WallTimer t;
  while (t.seconds() < seconds) {
  }
}

TEST(PhaseTimer, StartStopAccumulates) {
  PhaseTimer t;
  EXPECT_FALSE(t.running());
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.start();
  EXPECT_TRUE(t.running());
  spin_for(1e-3);
  t.stop();
  EXPECT_FALSE(t.running());
  const double first = t.total_seconds();
  EXPECT_GE(first, 1e-3);
  t.start();
  spin_for(1e-3);
  t.stop();
  EXPECT_GE(t.total_seconds(), first + 1e-3);
}

TEST(PhaseTimer, RestartWhileRunningBanksElapsedTime) {
  // start() on a running timer must bank the open interval instead of
  // silently discarding it (the bug this test pins down): the second
  // start() below may not erase the first millisecond.
  PhaseTimer t;
  t.start();
  spin_for(1e-3);
  t.start();  // re-begin: banks the ~1ms interval, keeps running
  EXPECT_TRUE(t.running());
  EXPECT_GE(t.total_seconds(), 1e-3);
  spin_for(1e-3);
  t.stop();
  EXPECT_GE(t.total_seconds(), 2e-3);
}

TEST(PhaseTimer, StopWithoutStartAndReset) {
  PhaseTimer t;
  t.stop();  // no open interval: a no-op, not a negative or garbage total
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.start();
  spin_for(1e-4);
  t.reset();
  EXPECT_FALSE(t.running());
  EXPECT_EQ(t.total_seconds(), 0.0);
}

TEST(MachineModel, A100MatchesPaperConstants) {
  const MachineModel m = a100();
  EXPECT_DOUBLE_EQ(m.tau_f, 1.0e-13);
  EXPECT_DOUBLE_EQ(m.tau_m, 6.4e-13);
  // xi ~ 4e-8 (paper §III-D).
  EXPECT_NEAR(m.xi(), 4e-8, 1.5e-8);
  // Bandwidth-bound threshold 1/0.16 = 6.25.
  EXPECT_NEAR(m.ridge_ai(), 6.4, 0.01);
  EXPECT_NEAR(m.peak_gflops(), 10000, 1);       // 10 TFlop/s DP
  EXPECT_NEAR(m.peak_bandwidth_gbs(), 1562.5, 1);
}

TEST(MachineModel, InfiniteCacheModel) {
  const MachineModel m = a100();
  OpCounts c;
  c.flops = 1'000'000;
  c.bytes_read = 500'000;
  c.bytes_written = 500'000;
  // T = f tau_f + m tau_m.
  EXPECT_NEAR(m.time_infinite_cache(c), 1e6 * 1e-13 + 1e6 * 6.4e-13, 1e-18);
}

TEST(MachineModel, FiniteCachePenalizesLargeWorkingSets) {
  const MachineModel m = a100();
  OpCounts small, big;
  small.bytes_read = 1'000'000;  // m xi << 1: no penalty
  big.bytes_read = 1'000'000'000;  // m xi ~ 40: hefty penalty
  EXPECT_NEAR(m.time_finite_cache(small), m.time_infinite_cache(small),
              1e-12);
  EXPECT_GT(m.time_finite_cache(big), 10 * m.time_infinite_cache(big));
}

TEST(MachineModel, RooflineClampsAtPeak) {
  const MachineModel m = a100();
  EXPECT_NEAR(m.roofline_gflops(0.5), 0.5 * m.peak_bandwidth_gbs(), 1e-6);
  EXPECT_NEAR(m.roofline_gflops(1000.0), m.peak_gflops(), 1e-6);
}

TEST(MachineModel, CalibratedHostIsSane) {
  const MachineModel m = calibrated_host();
  EXPECT_GT(m.tau_f, 1e-12);   // slower than 1 TFlop/s single core
  EXPECT_LT(m.tau_f, 1e-8);
  EXPECT_GT(m.tau_m, 1e-12);
  // Machine balance within physically plausible bounds (a single core can
  // have tau_m < tau_f, unlike the accelerator models).
  const double balance = m.tau_m / m.tau_f;
  EXPECT_GT(balance, 0.01);
  EXPECT_LT(balance, 100.0);
}

TEST(Network, AlphaBetaModel) {
  const NetworkModel n = infiniband();
  EXPECT_NEAR(n.time(0, 1), n.alpha, 1e-15);
  EXPECT_GT(n.time(1 << 20, 1), n.time(1 << 10, 1));
  EXPECT_GT(nvlink().time(1 << 20) * 5, 0);
  EXPECT_LT(nvlink().beta, infiniband().beta);  // NVLink is faster
}

TEST(Requirements, Table1GridSpacings) {
  // Paper Table I: dx_min(small hole) for q = 1, 4, 16, 64, 256, 512.
  const Real expect_small[] = {8.33e-3, 3.33e-3, 9.80e-4,
                               2.56e-4, 6.46e-5, 3.23e-5};
  const Real qs[] = {1, 4, 16, 64, 256, 512};
  for (int i = 0; i < 6; ++i) {
    const auto r = resolution_requirements(qs[i]);
    EXPECT_NEAR(r.dx_small, expect_small[i], 0.02 * expect_small[i])
        << "q=" << qs[i];
  }
  // Large-hole spacing approaches 2/120 = 1.67e-2 as q grows.
  EXPECT_NEAR(resolution_requirements(512).dx_large, 1.65e-2, 2e-4);
}

TEST(Requirements, Table1TimestepCounts) {
  // Paper: 7.8e4 (q=1), 2.1e5 (q=4), 1.4e6 (q=16), 2.3e7 (q=64),
  // 3.7e8 (q=256), 1.5e9 (q=512). PN rows are approximate.
  struct Row { Real q, steps, tol; };
  const Row rows[] = {{1, 7.8e4, 0.05},  {4, 2.1e5, 0.05},
                      {16, 1.4e6, 0.05}, {64, 2.3e7, 0.25},
                      {256, 3.7e8, 0.25}, {512, 1.5e9, 0.25}};
  for (const auto& row : rows) {
    const auto r = resolution_requirements(row.q);
    EXPECT_NEAR(r.timesteps, row.steps, row.tol * row.steps)
        << "q=" << row.q;
  }
}

TEST(Requirements, MergerTimeGrowsWithQ) {
  Real prev = 0;
  for (Real q : {1.0, 4.0, 16.0, 64.0, 256.0, 512.0}) {
    const Real t = merger_time_estimate(q);
    EXPECT_GT(t, prev) << "q=" << q;
    prev = t;
  }
  EXPECT_NEAR(merger_time_estimate(1), 650, 1e-12);
  EXPECT_NEAR(merger_time_estimate(256), 24000, 0.15 * 24000);
}

TEST(Production, Table4Configurations) {
  const auto cfgs = table4_configs();
  ASSERT_EQ(cfgs.size(), 4u);
  // dx_min from the finest level must reproduce Table IV's column.
  const Real expect_dx[] = {1.62e-2, 8.13e-3, 4.06e-3, 2.03e-3};
  for (int i = 0; i < 4; ++i) {
    const auto est = estimate_production(cfgs[i], 1e-5);
    EXPECT_NEAR(est.dx_min, expect_dx[i], 0.01 * expect_dx[i]);
    EXPECT_GT(est.octants, 1000u);
    EXPECT_GT(est.wall_hours, 0);
  }
}

TEST(Production, StepCountsMatchTable4) {
  const auto cfgs = table4_configs();
  // Paper: 183K, 252K, 506K steps for q = 1, 2, 4 (q=8 approximate). The
  // paper's own rows imply Courant factors between 0.25 (q=1) and 0.29
  // (q=2, 4); with our uniform lambda = 0.25 the counts land within ~18%.
  const double expect_steps[] = {183e3, 252e3, 506e3};
  for (int i = 0; i < 3; ++i) {
    const auto est = estimate_production(cfgs[i], 1e-5);
    EXPECT_NEAR(double(est.timesteps), expect_steps[i],
                0.20 * expect_steps[i])
        << "q=" << cfgs[i].q;
  }
}

TEST(Production, CostGrowsWithMassRatio) {
  // Table IV's qualitative claim: wall time grows with q (more steps).
  const auto cfgs = table4_configs();
  double prev = 0;
  for (const auto& cfg : cfgs) {
    const auto est = estimate_production(cfg, 1e-5);
    const double gpu_hours = est.wall_hours * cfg.gpus;
    EXPECT_GT(gpu_hours, prev) << "q=" << cfg.q;
    prev = gpu_hours;
  }
}

}  // namespace
}  // namespace dgr::perf
