#pragma once
/// \file protocol.hpp
/// \brief The dgr_serve line protocol and its strict parsers. One request
/// per newline-terminated line, one (or, with full=1, several) response
/// lines per request:
///
///   PING                      -> PONG
///   STATS                     -> STATS key=value ...
///   METRICS                   -> Prometheus-style text exposition of the
///                                live registry (latency quantiles by
///                                cache outcome, hit rate, queue depth,
///                                in-flight count), terminated by END
///   DUMP [path]               -> OK flightrec=<path>; writes the flight
///                                recorder's ring buffers as Perfetto-
///                                loadable JSON (ERR when disabled/empty)
///   EVOLVE k=v ...            -> OK hash=<16hex> source=miss|join|mem|disk
///                                wait_us=<n> samples=<n> digest=<16hex>
///   EVOLVEX <hex>             -> same, config given as the hex canonical
///                                encoding (exact bit round trip)
///   SHUTDOWN                  -> OK draining   (graceful drain begins)
///   QUIT                      -> connection closed
///
/// Overload responses: BUSY depth=<n> (admission control shed) and
/// DRAINING (server is shutting down). Malformed input gets ERR <msg>.
///
/// EVOLVE fields (all optional, server defaults apply): q, sep, s1x s1y
/// s1z, s2x s2y s2z, half, base, finest, eps, steps, regrid, extract,
/// radius, cfl, ko, full. Doubles are parsed with std::from_chars over the
/// full token — shortest round-trip decimals (jsonu::num) reproduce the
/// exact bits; EVOLVEX skips text entirely. Integers and every
/// DGR_SERVE_* environment knob go through the strict parse_count /
/// parse_real parsers below (the exec::parse_thread_count discipline —
/// garbage never silently becomes zero).

#include <cstdint>
#include <string>

#include "ensemble/scenario.hpp"

namespace dgr::serve {

/// Strict bounded integer parse: digits (optional leading '-') only, full
/// consume, value in [lo, hi]; anything else throws dgr::Error naming
/// `what`. The generalization of exec::parse_thread_count to arbitrary
/// bounds, shared by CLI flags and DGR_SERVE_* environment knobs.
long parse_count(const char* s, const char* what, long lo, long hi);

/// Strict double parse: std::from_chars over the whole token (no trailing
/// junk, no empty string); throws dgr::Error naming `what`. Round-trips
/// shortest-decimal output bit-for-bit.
double parse_real(const char* s, const char* what);

/// Environment knob helper: returns fallback when `name` is unset,
/// otherwise the strictly parsed value (unset and invalid are different —
/// invalid throws).
long env_count(const char* name, long fallback, long lo, long hi);

std::string to_hex(const std::string& bytes);
std::string from_hex(const std::string& hex);  ///< throws on odd/non-hex

struct Request {
  enum class Kind { kPing, kStats, kMetrics, kDump, kEvolve, kShutdown,
                    kQuit };
  Kind kind = Kind::kPing;
  ensemble::ScenarioConfig cfg;  ///< kEvolve only
  bool full = false;             ///< stream waveform samples after OK
  std::string dump_path;         ///< kDump only; "" = server default
};

/// Admission bounds shared by every config path into the service (EVOLVE
/// per-field parses, EVOLVEX hex decodes, server defaults): base/finest in
/// 1..8, steps in 1..100000, regrid/extract in 1..2^20. Throws dgr::Error
/// on violation — a hex-encoded config cannot smuggle in an effectively
/// unbounded evolution that admission control could never shed.
void validate_scenario(const ensemble::ScenarioConfig& cfg);

/// Parse one request line against the server's default scenario; throws
/// dgr::Error with a client-presentable message on malformed input.
/// EVOLVE/EVOLVEX configs are checked with validate_scenario().
Request parse_request(const std::string& line,
                      const ensemble::ScenarioConfig& defaults);

/// Client-side formatter for an EVOLVE line: every double emitted with
/// jsonu::num (shortest round trip), so parse_request reproduces `cfg`
/// bit-for-bit.
std::string format_evolve(const ensemble::ScenarioConfig& cfg,
                          bool full = false);

/// Client-side formatter for EVOLVEX (hex canonical encoding).
std::string format_evolvex(const ensemble::ScenarioConfig& cfg,
                           bool full = false);

/// A minimal blocking line-protocol client over a Unix-domain socket, used
/// by the load generator, the tests, and scripting. Not thread-safe; one
/// per client thread.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the server socket; throws dgr::Error on failure.
  void connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one line (newline appended); throws on I/O failure.
  void send_line(const std::string& line);
  /// Receive one line (without the newline); throws on EOF / I/O failure.
  std::string recv_line();
  /// send_line + recv_line.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace dgr::serve
