#include "solver/evolution.hpp"

#include "common/error.hpp"
#include "mesh/sampling.hpp"
#include "obs/obs.hpp"

namespace dgr::solver {

void PunctureTracker::step(const mesh::Mesh& mesh,
                           const bssn::BssnState& state, Real dt) {
  // RK2 (explicit midpoint) on dx/dt = -beta(x): a half step locates the
  // midpoint, whose shift advances the full step. Both samples read the
  // same end-of-step field — the tracker is a diagnostic and the shift
  // varies slowly over one dt, so the spatial midpoint correction is what
  // buys the accuracy order, not the temporal one.
  mesh::PointSampler sampler(mesh);
  const Real* fields[3] = {state.field(bssn::kBeta0),
                           state.field(bssn::kBeta1),
                           state.field(bssn::kBeta2)};
  for (auto& pos : positions_) {
    Real beta[3];
    sampler.evaluate_many(fields, 3, pos[0], pos[1], pos[2], beta);
    Real mid[3];
    for (int a = 0; a < 3; ++a) mid[a] = pos[a] - 0.5 * dt * beta[a];
    sampler.evaluate_many(fields, 3, mid[0], mid[1], mid[2], beta);
    for (int a = 0; a < 3; ++a) pos[a] -= dt * beta[a];
  }
}

EvolutionResult evolve(BssnCtx& ctx, const EvolutionConfig& config,
                       PunctureTracker* tracker,
                       const std::function<void(const BssnCtx&)>& on_step) {
  DGR_CHECK(config.regrid_every > 0 && config.extract_every > 0);
  obs::ScopedSpan top("solver::evolve", "solver");
  EvolutionResult result;

  // Per-step observability: step/regrid counters, mesh size gauges,
  // cumulative slow-memory traffic, and (opt-in) constraint norms. All of
  // it is a no-op when no MetricsRegistry is installed.
  const auto record_step_metrics = [&](const BssnCtx& ctx) {
    obs::MetricsRegistry* m = obs::metrics();
    if (!m) return;
    m->add("solver.steps");
    m->set("solver.time", ctx.time());
    m->set("solver.octants", double(ctx.mesh().num_octants()));
    m->set("solver.dofs", double(ctx.mesh().num_dofs()));
    m->set("solver.bytes_read", double(ctx.op_counts().bytes_read));
    m->set("solver.bytes_written", double(ctx.op_counts().bytes_written));
    if (config.metrics_constraints_every > 0 &&
        result.steps % config.metrics_constraints_every == 0) {
      const auto norms = ctx.constraint_norms();
      m->observe("solver.ham_l2", norms.ham_l2);
      m->observe("solver.ham_linf", norms.ham_linf);
      m->observe("solver.mom_l2", norms.mom_l2);
    }
  };

  std::optional<gw::WaveExtractor> extractor;
  if (!config.extraction_radii.empty()) {
    extractor.emplace(config.extraction_radii, config.lmax);
    for (Real r : config.extraction_radii) {
      gw::ModeTimeSeries ts;
      ts.l = 2;
      ts.m = 2;
      ts.radius = r;
      result.waves22.push_back(ts);
    }
  }

  if (!config.subcycle) {
    while (ctx.time() < config.t_end - 1e-12) {
      // One re-grid window of f_r steps (Algorithm 1 lines 5-10).
      for (int i = 0; i < config.regrid_every && ctx.time() < config.t_end;
           ++i) {
        const Real dt =
            std::min(ctx.suggested_dt(), config.t_end - ctx.time());
        {
          obs::ScopedSpan step_span("rk4_step", "solver");
          ctx.rk4_step(dt);
        }
        ++result.steps;
        record_step_metrics(ctx);
        if (tracker) tracker->step(ctx.mesh(), ctx.state(), dt);
        if (extractor && result.steps % config.extract_every == 0) {
          obs::ScopedSpan extract_span("wave-extract", "solver");
          const auto modes = extractor->extract_from_state(
              ctx.mesh(), ctx.state(), ctx.config().bssn);
          for (std::size_t r = 0; r < modes.size(); ++r)
            result.waves22[r].append(ctx.time(), modes[r].mode(2, 2));
        }
        if (on_step) on_step(ctx);
      }
      // Re-grid (Algorithm 1 line 3): the host-side synchronization point.
      if (ctx.time() < config.t_end - 1e-12) {
        obs::ScopedSpan regrid_span("regrid", "solver");
        auto next = regrid_mesh(ctx.mesh(), ctx.state(), config.regrid);
        if (next) {
          ctx.remesh(next);
          ++result.regrids;
          obs::count("solver.regrids");
        }
      }
    }
    if (tracker) result.final_punctures = tracker->positions();
    return result;
  }

  // Sub-cycled evolution: advance in full cycles of 2^(dmax - dmin) fine
  // substeps. Depths are only time-aligned at cycle boundaries, so the
  // tracker, wave extraction and regrid fire there and nowhere else — a
  // cadence that straddles a cycle would sample mid-cycle state and is
  // rejected. The cycle length can change across a regrid, so cadences are
  // re-validated per window.
  while (ctx.time() < config.t_end - 1e-12) {
    const int cycle = ctx.subcycle_index().cycle();
    DGR_CHECK_MSG(config.regrid_every % cycle == 0,
                  "subcycle: regrid_every=" << config.regrid_every
                                            << " must be a multiple of the "
                                               "cycle length "
                                            << cycle);
    if (extractor)
      DGR_CHECK_MSG(config.extract_every % cycle == 0,
                    "subcycle: extract_every="
                        << config.extract_every
                        << " must be a multiple of the cycle length "
                        << cycle << " (mid-cycle wave sampling)");
    for (int i = 0;
         i < config.regrid_every && ctx.time() < config.t_end - 1e-12;) {
      const Real dt = ctx.suggested_dt();
      Real tracker_dt;
      if (config.t_end - ctx.time() < cycle * dt - 1e-12) {
        // Tail shorter than one full cycle: finish with clamped global-dt
        // steps (every depth stays aligned through them).
        tracker_dt = std::min(dt, config.t_end - ctx.time());
        obs::ScopedSpan step_span("rk4_step", "solver");
        ctx.rk4_step(tracker_dt);
        ++result.steps;
        ++i;
      } else {
        tracker_dt = cycle * dt;
        obs::ScopedSpan cycle_span("subcycle", "solver");
        ctx.subcycle_cycle(dt);
        result.steps += cycle;
        i += cycle;
      }
      record_step_metrics(ctx);
      if (tracker) tracker->step(ctx.mesh(), ctx.state(), tracker_dt);
      if (extractor && result.steps % config.extract_every == 0) {
        obs::ScopedSpan extract_span("wave-extract", "solver");
        const auto modes = extractor->extract_from_state(
            ctx.mesh(), ctx.state(), ctx.config().bssn);
        for (std::size_t r = 0; r < modes.size(); ++r)
          result.waves22[r].append(ctx.time(), modes[r].mode(2, 2));
      }
      if (on_step) on_step(ctx);
    }
    if (ctx.time() < config.t_end - 1e-12) {
      obs::ScopedSpan regrid_span("regrid", "solver");
      auto next = regrid_mesh(ctx.mesh(), ctx.state(), config.regrid);
      if (next) {
        ctx.remesh(next);
        ++result.regrids;
        obs::count("solver.regrids");
      }
    }
  }
  if (tracker) result.final_punctures = tracker->positions();
  return result;
}

}  // namespace dgr::solver
