#pragma once
/// \file patch.hpp
/// \brief Grid-point and patch geometry constants (paper §III-C): each leaf
/// octant carries r^3 = 7^3 vertex-centered grid points; padded with k = 3
/// ghost points per side it becomes a 13^3 "patch" on which the 6th-order
/// stencils are applied.

#include <array>

#include "common/types.hpp"
#include "octree/treenode.hpp"

namespace dgr::mesh {

inline constexpr int kR = 7;                ///< grid points per octant per axis
inline constexpr int kPad = 3;              ///< padding points per side
inline constexpr int kPatch = kR + 2 * kPad;///< patch extent per axis (13)
inline constexpr int kOctPts = kR * kR * kR;        ///< 343
inline constexpr int kPatchPts = kPatch * kPatch * kPatch;  ///< 2197
/// Extent of an octant prolonged to half spacing (its fine covering).
inline constexpr int kFine = 2 * kR - 1;    ///< 13 (same as kPatch by design)

/// Linear index into a 7^3 octant block (x fastest).
constexpr int oct_idx(int ix, int iy, int iz) {
  return (iz * kR + iy) * kR + ix;
}

/// Linear index into a 13^3 patch (x fastest).
constexpr int patch_idx(int ix, int iy, int iz) {
  return (iz * kPatch + iy) * kPatch + ix;
}

/// Point-unit coordinate system: dyadic octree coordinates scaled by
/// (kR - 1) = 6, so that every octant grid point has exact integer
/// coordinates. An octant at level l has point spacing
/// 2^(kMaxDepth - l) point units, and fine/coarse points coincide exactly.
using Pu = std::int32_t;

inline constexpr Pu kPuPerDyadic = kR - 1;  // 6
inline constexpr Pu kPuDomain =
    static_cast<Pu>(kPuPerDyadic) * static_cast<Pu>(oct::kDomainSize);

/// Point spacing (in point units) of a level-l octant.
constexpr Pu spacing_pu(int level) {
  return static_cast<Pu>(oct::kDomainSize >> level);
}

/// Anchor of an octant in point units.
inline std::array<Pu, 3> anchor_pu(const oct::TreeNode& t) {
  return {static_cast<Pu>(kPuPerDyadic * t.x),
          static_cast<Pu>(kPuPerDyadic * t.y),
          static_cast<Pu>(kPuPerDyadic * t.z)};
}

/// Packed 64-bit key of a point-unit coordinate (21 bits per axis).
constexpr std::uint64_t point_key(Pu x, Pu y, Pu z) {
  return (static_cast<std::uint64_t>(x) << 42) |
         (static_cast<std::uint64_t>(y) << 21) | static_cast<std::uint64_t>(z);
}

}  // namespace dgr::mesh
