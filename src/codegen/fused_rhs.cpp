#include "codegen/fused_rhs.hpp"

#include <cmath>

#include "codegen/bssn_graph.hpp"
#include "fd/stencils_point.hpp"
#include "simd/simd.hpp"

namespace dgr::codegen {

using bssn::kNumVars;
using bssn::kSecondDerivVars;
using mesh::kPad;
using mesh::kPatch;
using mesh::kPatchPts;
using mesh::kR;
using mesh::patch_idx;

namespace {

constexpr int kOct = kR * kR * kR;  // interior points per patch

/// Evaluate every algebra input for W consecutive x-points starting at
/// patch index p, and store the first `store_n` lanes at SoA column `col`.
/// A chunk may extend past the interior row end (lanes beyond store_n are
/// computed from in-bounds padding data and discarded), which keeps the
/// 7-point rows fully vectorized as one whole + one partial pack.
template <int W>
void gather_chunk(const Real* const in[kNumVars], FusedWorkspace& ws, int p,
                  int col, int store_n, Real inv_h, Real inv_h2,
                  Real chi_floor) {
  using P = dgr::simd<Real, W>;
  using namespace bssn;
  const AlgebraInputIndex& L = algebra_input_index();
  Real* soa = ws.in_soa.data();
  auto put = [&](int slot, const P& v) {
    v.store_partial(soa + std::size_t(slot) * kOct + col, store_n);
  };

  // Field values. The chi floor uses max(floor, chi): with maxpd semantics
  // (a > b ? a : b) this is lanewise bitwise-equal to std::max(chi, floor).
  put(L.idx.a, P::load(in[kAlpha] + p));
  put(L.idx.ch, max(P::broadcast(chi_floor), P::load(in[kChi] + p)));
  put(L.idx.Kt, P::load(in[kK] + p));
  for (int i = 0; i < 3; ++i) {
    put(L.idx.Gt[i], P::load(in[kGt0 + i] + p));
    put(L.idx.bet[i], P::load(in[kBeta0 + i] + p));
    put(L.idx.Bv[i], P::load(in[kB0 + i] + p));
  }
  for (int s = 0; s < 6; ++s) {
    put(L.idx.gt[s], P::load(in[kGtxx + s] + p));
    put(L.idx.At[s], P::load(in[kAtxx + s] + p));
  }

  // First derivatives: fused centered stencils, no intermediate arrays.
  for (int ax = 0; ax < 3; ++ax) {
    put(L.idx.d_a[ax], fd::d1_point<P>(in[kAlpha], p, ax, inv_h));
    put(L.idx.d_ch[ax], fd::d1_point<P>(in[kChi], p, ax, inv_h));
    put(L.idx.d_K[ax], fd::d1_point<P>(in[kK], p, ax, inv_h));
    for (int i = 0; i < 3; ++i) {
      put(L.idx.d_b[i][ax], fd::d1_point<P>(in[kBeta0 + i], p, ax, inv_h));
      put(L.idx.d_Gt[i][ax], fd::d1_point<P>(in[kGt0 + i], p, ax, inv_h));
    }
    for (int s = 0; s < 6; ++s) {
      put(L.idx.d_gt[s][ax], fd::d1_point<P>(in[kGtxx + s], p, ax, inv_h));
      put(L.idx.d_At[s][ax], fd::d1_point<P>(in[kAtxx + s], p, ax, inv_h));
    }
  }

  // Second derivatives. Diagonals are fused d2 stencils; mixed components
  // contract the outer d1 stencil over the precomputed inner d1 sweep
  // (sym slots: (0,1)->1 outer y over d/dx, (0,2)->2 outer z over d/dx,
  // (1,2)->4 outer z over d/dy), matching fd::d2_mixed's sweep order.
  for (int s = 0; s < static_cast<int>(kSecondDerivVars.size()); ++s) {
    const int v = kSecondDerivVars[s];
    const int* dd = s == 0   ? L.idx.dd_a
                    : s <= 3 ? L.idx.dd_b[s - 1]
                    : s == 4 ? L.idx.dd_ch
                             : L.idx.dd_gt[s - 5];
    put(dd[sym_idx(0, 0)], fd::d2_point<P>(in[v], p, 0, inv_h2));
    put(dd[sym_idx(1, 1)], fd::d2_point<P>(in[v], p, 1, inv_h2));
    put(dd[sym_idx(2, 2)], fd::d2_point<P>(in[v], p, 2, inv_h2));
    const Real* dx = ws.inner_of(s, 0);
    const Real* dy = ws.inner_of(s, 1);
    put(dd[sym_idx(0, 1)], fd::d1_point<P>(dx, p, 1, inv_h));
    put(dd[sym_idx(0, 2)], fd::d1_point<P>(dx, p, 2, inv_h));
    put(dd[sym_idx(1, 2)], fd::d1_point<P>(dy, p, 2, inv_h));
  }

  // Advective terms (upwind stencil selected lanewise by the shift's sign)
  // and KO dissipation (unit sigma, as in the derivative stage).
  P bet[3];
  for (int ax = 0; ax < 3; ++ax) bet[ax] = P::load(in[kBeta0 + ax] + p);
  for (int v = 0; v < kNumVars; ++v) {
    P adv = P::zero();
    for (int ax = 0; ax < 3; ++ax)
      adv = adv + bet[ax] * fd::upwind_point<P>(in[v], bet[ax], p, ax, inv_h);
    put(L.idx.ad[v], adv);
    put(L.idx.ko[v], fd::ko_point<P>(in[v], p, inv_h));
  }
}

}  // namespace

FusedWorkspace::FusedWorkspace()
    : inner_d1(static_cast<std::size_t>(kSecondDerivVars.size()) * 2 *
               kPatchPts),
      in_soa(static_cast<std::size_t>(bssn_algebra_num_inputs()) * kOct),
      out_soa(static_cast<std::size_t>(kNumVars) * kOct) {}

void bssn_rhs_patch_fused(const Real* const in[kNumVars],
                          Real* const out[kNumVars],
                          const mesh::PatchGeom& geom, Real half_extent,
                          const bssn::BssnParams& params,
                          const CompiledKernel& kernel, FusedWorkspace& ws,
                          OpCounts* counts, int width) {
  if (width <= 0) width = simd_active_width();
  if (ws.spill.size() < static_cast<std::size_t>(kernel.spill_scratch_size()))
    ws.spill.resize(static_cast<std::size_t>(kernel.spill_scratch_size()));
  const Real inv_h = 1.0 / geom.h;
  const Real inv_h2 = 1.0 / (geom.h * geom.h);

  // Stage 1: the only patch-sized intermediates — inner d1 sweeps feeding
  // the three mixed Hessian components of each second-derivative variable.
  for (int s = 0; s < static_cast<int>(kSecondDerivVars.size()); ++s) {
    const int v = kSecondDerivVars[s];
    fd::d1(in[v], ws.inner_of(s, 0), 0, geom.h);
    fd::d1(in[v], ws.inner_of(s, 1), 1, geom.h);
  }

  // Stage 2: fused SoA gather over the interior, one 7-point x-row at a
  // time as one full pack plus one partial pack (or scalars at width 1).
  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj) {
      const int p0 = patch_idx(kPad, jj, kk);
      const int col0 = ((kk - kPad) * kR + (jj - kPad)) * kR;
      if (width >= 4) {
        gather_chunk<4>(in, ws, p0, col0, 4, inv_h, inv_h2, params.chi_floor);
        gather_chunk<4>(in, ws, p0 + 4, col0 + 4, kR - 4, inv_h, inv_h2,
                        params.chi_floor);
      } else {
        for (int t = 0; t < kR; ++t)
          gather_chunk<1>(in, ws, p0 + t, col0 + t, 1, inv_h, inv_h2,
                          params.chi_floor);
      }
    }

  // Stage 3: the scheduled algebra over all 343 points, W at a time.
  kernel.run_block(ws.in_soa.data(), ws.out_soa.data(), kOct, width,
                   ws.spill.data());

  // Stage 4: scatter back to patch layout + Sommerfeld boundary overwrite
  // (the radial derivative is the same fused d1 stencil, always scalar —
  // boundary handling is width-independent by construction).
  for (int kk = kPad; kk < kPad + kR; ++kk)
    for (int jj = kPad; jj < kPad + kR; ++jj)
      for (int ii = kPad; ii < kPad + kR; ++ii) {
        const int p = patch_idx(ii, jj, kk);
        const int col =
            ((kk - kPad) * kR + (jj - kPad)) * kR + (ii - kPad);
        for (int v = 0; v < kNumVars; ++v)
          out[v][p] = ws.out_soa[std::size_t(v) * kOct + col];

        if (params.sommerfeld) {
          const Real x = geom.origin[0] + ii * geom.h;
          const Real y = geom.origin[1] + jj * geom.h;
          const Real z = geom.origin[2] + kk * geom.h;
          const Real eps = 1e-9 * half_extent;
          const bool on_boundary =
              std::abs(std::abs(x) - half_extent) < eps ||
              std::abs(std::abs(y) - half_extent) < eps ||
              std::abs(std::abs(z) - half_extent) < eps;
          if (on_boundary) {
            using S1 = dgr::simd<Real, 1>;
            const Real r = std::sqrt(x * x + y * y + z * z);
            for (int v = 0; v < kNumVars; ++v) {
              const Real du = (x * fd::d1_point<S1>(in[v], p, 0, inv_h)[0] +
                               y * fd::d1_point<S1>(in[v], p, 1, inv_h)[0] +
                               z * fd::d1_point<S1>(in[v], p, 2, inv_h)[0]) /
                              r;
              out[v][p] = -bssn::var_wave_speed(v) *
                          (du + (in[v][p] - bssn::var_asymptotic(v)) / r);
            }
          }
        }
      }

  if (counts) {
    const std::uint64_t pts = kOct;
    const std::uint64_t nh = kSecondDerivVars.size();
    // Inner mixed-derivative sweeps cover 7x13x13 points per axis.
    counts->flops += nh * 2 * std::uint64_t(kR * kPatch * kPatch) *
                     fd::kD1Flops;
    // Fused per-point stencil work: 63 first derivatives, 33 diagonal +
    // 33 outer-mixed second derivatives, 72 upwind pieces plus the
    // advective contraction, 24 KO terms, the chi floor.
    counts->flops +=
        pts * (63ull * fd::kD1Flops + 33ull * fd::kD2Flops +
               33ull * fd::kD1Flops + 72ull * fd::kUpwindFlops +
               std::uint64_t(kNumVars) * 6 +
               std::uint64_t(kNumVars) * fd::kKoFlops + 1);
    counts->flops += pts * kernel.stats().num_ops;
    // Global traffic: each input patch streamed once, interior written once.
    counts->bytes_read += std::uint64_t(kNumVars) * kPatchPts * sizeof(Real);
    counts->bytes_written += pts * kNumVars * sizeof(Real);
    // On-chip traffic: the SoA blocks + inner sweeps + kernel spills (the
    // shared-memory analogue of the interp path's workspace arrays).
    counts->shared_bytes +=
        (ws.in_soa.size() + ws.out_soa.size() + ws.inner_d1.size()) *
        sizeof(Real);
    counts->shared_bytes += pts * (kernel.stats().spill_load_bytes +
                                   kernel.stats().spill_store_bytes);
  }
}

}  // namespace dgr::codegen
