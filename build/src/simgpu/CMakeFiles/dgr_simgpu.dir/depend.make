# Empty dependencies file for dgr_simgpu.
# This may be replaced when dependencies are built.
