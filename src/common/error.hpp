#pragma once
/// \file error.hpp
/// \brief Check macros: invariant violations throw, so tests can assert on
/// failure behaviour instead of aborting the process.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dgr {

/// Exception thrown on violated invariants and invalid user input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dgr

/// Always-on invariant check (not compiled out in release builds; the cost is
/// negligible outside inner kernels, where we avoid it).
#define DGR_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::dgr::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DGR_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::dgr::detail::throw_check_failure(#cond, __FILE__, __LINE__,        \
                                         os_.str());                       \
    }                                                                      \
  } while (0)
