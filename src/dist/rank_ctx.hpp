#pragma once
/// \file rank_ctx.hpp
/// \brief Per-rank view of the mesh for the simulated distributed engine:
/// the rank's contiguous SFC range from comm::RankPartition, its ghost
/// octants and DOF-granularity send/recv maps (comm::ExchangeMaps), the
/// interior/boundary octant split that enables overlap, and the rank-local
/// zipped state. State vectors are globally indexed (full length) for
/// simplicity — the rank only ever reads its owned + ghost entries and
/// only ever writes its owned entries, which is what makes the N-rank
/// result bitwise-identical to the single-rank pipeline.

#include <memory>
#include <vector>

#include "bssn/state.hpp"
#include "comm/partition.hpp"
#include "dist/sim_comm.hpp"
#include "mesh/subcycle_index.hpp"
#include "solver/bssn_ctx.hpp"

namespace dgr::dist {

class RankCtx {
 public:
  /// `alloc_stages` allocates the RK scratch states (k1..k4 and the stage
  /// vector); schedule-only runs skip them.
  RankCtx(int rank, std::shared_ptr<const mesh::Mesh> mesh,
          const comm::RankPartition& part, comm::ExchangeMaps maps,
          const solver::SolverConfig& scfg, bool alloc_stages);

  int rank() const { return rank_; }
  const comm::ExchangeMaps& maps() const { return maps_; }
  const std::vector<DofIndex>& owned_dofs() const { return owned_dofs_; }
  std::size_t owned_octants() const { return owned_end_ - owned_begin_; }
  std::size_t interior_octants() const { return maps_.interior.size(); }
  std::size_t boundary_octants() const { return maps_.boundary.size(); }

  bssn::BssnState& state() { return u_; }
  bssn::BssnState& k(int s) { return k_[s]; }
  bssn::BssnState& stage() { return stage_; }

  /// Smallest octant spacing this rank owns (+inf when it owns nothing);
  /// allreduce_min over ranks reproduces mesh.finest_spacing() exactly.
  double local_finest_spacing() const;

  /// Copy the rank's owned DOF values out of a global state (initial
  /// scatter and post-regrid redistribution); all other entries are zero.
  void adopt_owned(const bssn::BssnState& global);

  /// Serialize the owned DOF values (var-major, DOFs ascending) — the
  /// allgather payload for regrid and result collection.
  SimComm::Payload pack_owned() const;

  /// Post the ghost exchange for state `u`: one irecv per sending peer and
  /// one packed isend per receiving peer. `tag` disambiguates RK stages.
  void post_exchange(SimComm& comm, const bssn::BssnState& u, int tag);

  /// Complete the posted exchange and unpack the peers' payloads into the
  /// ghost DOF entries of `u`.
  void finish_exchange(SimComm& comm, bssn::BssnState& u);

  /// RHS over the interior octants only (safe while the halo is in
  /// flight) / over the boundary octants only (requires finished halo).
  void compute_rhs_interior(const bssn::BssnState& u, bssn::BssnState& rhs);
  void compute_rhs_boundary(const bssn::BssnState& u, bssn::BssnState& rhs);

  /// Depth-local sub-cycling support (schedule-only engine mode): split
  /// the send/recv DOF lists and interior/boundary octant counts by
  /// refinement depth, so each depth's halo exchange carries only the DOFs
  /// advancing on its cadence and each depth's compute advance reflects
  /// only its own octants. Depth slots index as depth - idx.dmin.
  void build_depth_maps(const mesh::SubcycleIndex& idx);
  std::size_t interior_octants_depth(int slot) const {
    return depth_interior_[static_cast<std::size_t>(slot)];
  }
  std::size_t boundary_octants_depth(int slot) const {
    return depth_boundary_[static_cast<std::size_t>(slot)];
  }
  void post_exchange_depth(SimComm& comm, const bssn::BssnState& u, int tag,
                           int slot);
  void finish_exchange_depth(SimComm& comm, bssn::BssnState& u, int slot);

 private:
  void post_exchange_lists(SimComm& comm, const bssn::BssnState& u, int tag,
                           const std::vector<std::vector<DofIndex>>& send_to,
                           const std::vector<std::vector<DofIndex>>& recv_from);
  void finish_exchange_lists(
      SimComm& comm, bssn::BssnState& u,
      const std::vector<std::vector<DofIndex>>& recv_from);

  int rank_;
  std::shared_ptr<const mesh::Mesh> mesh_;
  comm::ExchangeMaps maps_;
  std::size_t owned_begin_ = 0, owned_end_ = 0;
  std::vector<DofIndex> owned_dofs_;
  std::vector<solver::OctRange> interior_runs_, boundary_runs_;
  solver::RhsPipeline pipeline_;
  bssn::BssnState u_, k_[4], stage_;
  // In-flight exchange bookkeeping.
  std::vector<SimComm::Request> pending_;
  std::vector<SimComm::Payload> recv_buf_;  // per peer rank
  // Per-depth filtered exchange lists [slot][peer] and octant counts
  // [slot] (populated by build_depth_maps).
  std::vector<std::vector<std::vector<DofIndex>>> depth_send_, depth_recv_;
  std::vector<std::size_t> depth_interior_, depth_boundary_;
};

/// Collapse a sorted octant list into maximal contiguous [begin, end) runs.
std::vector<solver::OctRange> runs_of(const std::vector<OctIndex>& octs);

}  // namespace dgr::dist
