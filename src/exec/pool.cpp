#include "exec/pool.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace dgr::exec {

int parse_thread_count(const char* s, const char* what) {
  return static_cast<int>(dgr::parse_count(s, what, 1, 4096));
}

namespace {
thread_local int tl_lane = 0;
thread_local ThreadPool* tl_pool = nullptr;

std::mutex g_pool_m;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

int this_lane() { return tl_lane; }

ThreadPool::ThreadPool(int threads) : lanes_(threads < 1 ? 1 : threads) {
  const int nworkers = lanes_ - 1;
  workers_.reserve(nworkers);
  for (int i = 0; i < nworkers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  os_threads_.reserve(nworkers);
  for (int i = 0; i < nworkers; ++i)
    os_threads_.emplace_back([this, i] { run(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(cv_m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : os_threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {  // single lane: no workers to hand off to
    task();
    return;
  }
  std::size_t w;
  if (tl_pool == this && tl_lane >= 1)
    w = static_cast<std::size_t>(tl_lane - 1);
  else
    w = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lk(workers_[w]->m);
    workers_[w]->q.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section orders the pending_ increment against a waiter
  // that just evaluated its predicate, so the notify cannot be missed.
  { std::lock_guard<std::mutex> lk(cv_m_); }
  cv_.notify_one();
}

bool ThreadPool::try_pop(int widx, std::function<void()>& out) {
  {  // own deque, newest first (LIFO)
    Worker& me = *workers_[widx];
    std::lock_guard<std::mutex> lk(me.m);
    if (!me.q.empty()) {
      out = std::move(me.q.back());
      me.q.pop_back();
      return true;
    }
  }
  // Steal oldest-first (FIFO) from the first non-empty victim.
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& v = *workers_[(widx + k) % n];
    std::lock_guard<std::mutex> lk(v.m);
    if (!v.q.empty()) {
      out = std::move(v.q.front());
      v.q.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run(int widx) {
  tl_lane = widx + 1;
  tl_pool = this;
  for (;;) {
    std::function<void()> task;
    if (try_pop(widx, task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(cv_m_);
    cv_.wait(lk, [&] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_pool_m);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(configured_threads());
  return *g_pool;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lk(g_pool_m);
  g_pool.reset();  // join the old workers before spawning replacements
  g_pool = std::make_unique<ThreadPool>(threads);
}

int ThreadPool::configured_threads() {
  if (const char* e = std::getenv("DGR_THREADS"))
    return parse_thread_count(e, "DGR_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

}  // namespace dgr::exec
