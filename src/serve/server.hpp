#pragma once
/// \file server.hpp
/// \brief The waveform-service front-end: a Unix-domain-socket line
/// protocol server (protocol.hpp) over the ensemble driver.
///
/// Architecture. One accept loop (polling, so shutdown is prompt) spawns a
/// handler thread per connection. A handler drains every complete request
/// line already buffered on its socket and submits them to the ensemble
/// driver as one batch before writing any response — pipelined clients get
/// request batching (and in-flight coalescing across the batch) for free;
/// responses are written in request order.
///
/// Admission control. The server tracks admitted-but-unanswered EVOLVE
/// requests; at `queue_max` it sheds load with an explicit `BUSY depth=N`
/// response instead of queueing unboundedly — no request is ever silently
/// dropped. Cache hits resolve immediately, so shedding bites exactly when
/// evolutions back up.
///
/// Graceful drain. SHUTDOWN (or request_shutdown()) stops accepting
/// connections, answers new EVOLVEs with DRAINING, lets every admitted
/// request finish, then wakes wait(). Per-request observability feeds the
/// installed obs::MetricsRegistry: serve.requests / serve.shed /
/// serve.source.* counters, serve.wait_us / serve.batch summaries, and
/// (when the registry opted into wall-clock timing) per-cache-outcome
/// latency histograms serve.latency_us.{miss,join,mem,disk} — the
/// quantiles behind the METRICS Prometheus exposition. After a completed
/// drain the flight recorder is dumped (flightrec_on_drain), so a
/// gracefully stopped daemon leaves its last-moments timeline next to a
/// crashed one's.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ensemble/driver.hpp"
#include "serve/protocol.hpp"

namespace dgr::serve {

struct ServeConfig {
  std::string socket_path = "/tmp/dgr_serve.sock";
  /// Admission bound: max admitted EVOLVEs awaiting a response.
  int queue_max = 64;
  /// Max request lines pulled from one socket read into a single batch.
  int max_batch = 64;
  ensemble::EnsembleConfig ensemble;
  /// Defaults applied to EVOLVE requests with omitted fields.
  ensemble::ScenarioConfig defaults;
  /// Flight-recorder dump destination for DUMP and the drain dump; ""
  /// falls back to obs::flightrec::dump_path() (DGR_FLIGHTREC_PATH or
  /// ./flightrec.json).
  std::string flightrec_path;
  /// Dump the flight recorder after a completed graceful drain. Off by
  /// default so embedded servers (tests, benches) don't write files as a
  /// side effect; the dgr_serve daemon turns it on.
  bool flightrec_on_drain = false;
};

class Server {
 public:
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;  ///< EVOLVE requests admitted
    std::uint64_t shed = 0;      ///< EVOLVE requests rejected with BUSY
    std::uint64_t errors = 0;    ///< malformed request lines
    bool drained = false;        ///< graceful drain completed
  };

  explicit Server(ServeConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start accepting; throws dgr::Error on failure.
  void start();
  /// Block until a graceful shutdown has fully drained.
  void wait();
  /// Begin graceful drain (idempotent, callable from any thread or from a
  /// signal-watcher).
  void request_shutdown();
  bool draining() const { return draining_.load(); }

  const ServeConfig& config() const { return cfg_; }
  ensemble::EnsembleDriver& driver() { return *driver_; }
  Stats stats() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Join handler threads whose connections have closed (they enqueue
  /// their id in finished_ as their last act), so a long-lived daemon
  /// serving many short connections doesn't accumulate joinable threads.
  void reap_handlers();
  std::string stats_line();
  /// METRICS response body: refresh the live serve.* gauges in the
  /// installed registry, then its Prometheus exposition + "END".
  std::string metrics_text();
  /// DUMP response: write the flight recorder to `path` (or the config /
  /// global default) and report the destination.
  std::string dump_response(const std::string& path);

  ServeConfig cfg_;
  std::unique_ptr<ensemble::EnsembleDriver> driver_;
  int listen_fd_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> pending_{0};  ///< admitted EVOLVEs not yet answered
  std::thread acceptor_;
  std::mutex conn_m_;
  std::vector<std::thread> handlers_;          ///< guarded by conn_m_
  std::vector<std::thread::id> finished_;      ///< guarded by conn_m_
  mutable std::mutex stats_m_;
  std::condition_variable drained_cv_;
  Stats stats_;
  bool drain_done_ = false;  ///< guarded by stats_m_
};

}  // namespace dgr::serve
