#include "mesh/mesh.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/error.hpp"
#include "mesh/interp.hpp"

namespace dgr::mesh {

namespace {

using PointRecord = detail::PointRecord;
using PointMap = std::unordered_map<std::uint64_t, PointRecord>;

/// All leaf octants whose closure contains point p (point units): probe the
/// up-to-8 dyadic cells adjacent to p. Octant faces live at point-unit
/// multiples of kPuPerDyadic, so an axis only straddles a face if p is such
/// a multiple.
void touching_leaves(const oct::Octree& tree, const std::array<Pu, 3>& p,
                     std::vector<OctIndex>& out) {
  out.clear();
  std::int64_t cand[3][2];
  int ncand[3];
  for (int a = 0; a < 3; ++a) {
    if (p[a] % kPuPerDyadic == 0) {
      const std::int64_t c = p[a] / kPuPerDyadic;
      ncand[a] = 0;
      if (c - 1 >= 0) cand[a][ncand[a]++] = c - 1;
      if (c < static_cast<std::int64_t>(oct::kDomainSize))
        cand[a][ncand[a]++] = c;
    } else {
      cand[a][0] = p[a] / kPuPerDyadic;
      ncand[a] = 1;
    }
  }
  for (int i = 0; i < ncand[0]; ++i)
    for (int j = 0; j < ncand[1]; ++j)
      for (int k = 0; k < ncand[2]; ++k) {
        const OctIndex n = tree.find_leaf(
            static_cast<oct::Coord>(cand[0][i]),
            static_cast<oct::Coord>(cand[1][j]),
            static_cast<oct::Coord>(cand[2][k]));
        if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
      }
}

bool representable_at_level(const std::array<Pu, 3>& p, int level) {
  const Pu s = spacing_pu(level);
  return p[0] % s == 0 && p[1] % s == 0 && p[2] % s == 0;
}

}  // namespace

Mesh::Mesh(oct::Octree tree, oct::Domain domain)
    : tree_(std::move(tree)), domain_(domain) {
  DGR_CHECK_MSG(tree_.is_balanced(),
                "Mesh requires a 2:1-balanced octree (Algorithm 2 precondition)");
  build_adjacency();
  build_points();
  build_hanging_rules();
}

void Mesh::build_adjacency() {
  const std::size_t n = tree_.size();
  adjacency_.assign(n, {});
  for (OctIndex e = 0; e < static_cast<OctIndex>(n); ++e) {
    auto& adj = adjacency_[e];
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (!dx && !dy && !dz) continue;
          for (OctIndex nb : tree_.neighbors(e, dx, dy, dz)) {
            if (std::find(adj.begin(), adj.end(), nb) == adj.end())
              adj.push_back(nb);
          }
        }
    std::sort(adj.begin(), adj.end());
  }
}

void Mesh::build_points() {
  const std::size_t n = tree_.size();
  o2n_.assign(n * kOctPts, kInvalidDof);
  write_set_.assign(n, {});

  PointMap pmap;
  pmap.reserve(n * 64);
  std::vector<OctIndex> touching;

  // Pass 1: classify every unique point (hanging / DOF) and find the finest
  // owner octant. Interior points (all local indices in 1..5) are trivially
  // non-hanging and owned by their octant.
  for (OctIndex e = 0; e < static_cast<OctIndex>(n); ++e) {
    const oct::TreeNode& t = tree_.leaf(e);
    const auto A = anchor_pu(t);
    const Pu S = spacing_pu(t.level);
    for (int k = 0; k < kR; ++k)
      for (int j = 0; j < kR; ++j)
        for (int i = 0; i < kR; ++i) {
          const std::array<Pu, 3> p = {A[0] + i * S, A[1] + j * S,
                                       A[2] + k * S};
          const std::uint64_t key = point_key(p[0], p[1], p[2]);
          auto [it, fresh] = pmap.try_emplace(key);
          PointRecord& rec = it->second;
          if (fresh) {
            const bool interior = i > 0 && i < kR - 1 && j > 0 && j < kR - 1 &&
                                  k > 0 && k < kR - 1;
            if (interior) {
              rec.hanging = false;
            } else {
              touching_leaves(tree_, p, touching);
              int lmin = oct::kMaxDepth + 1;
              OctIndex host = kInvalidOct;
              for (OctIndex nb : touching) {
                const int lv = tree_.leaf(nb).level;
                if (lv < lmin) {
                  lmin = lv;
                  host = nb;
                }
              }
              rec.hanging = !representable_at_level(p, lmin);
              if (rec.hanging) rec.host = tree_.leaf(host);
            }
          }
          if (!rec.hanging && int(t.level) > rec.owner_level) {
            rec.owner_level = t.level;
            rec.owner = e;
          }
        }
  }

  // Pass 2: deterministic numbering in octant-then-local order, o2n fill,
  // and per-octant write sets.
  dof_pu_.clear();
  dof_owner_.clear();
  hanging_pu_.clear();
  hanging_host_.clear();
  for (OctIndex e = 0; e < static_cast<OctIndex>(n); ++e) {
    const oct::TreeNode& t = tree_.leaf(e);
    const auto A = anchor_pu(t);
    const Pu S = spacing_pu(t.level);
    for (int k = 0; k < kR; ++k)
      for (int j = 0; j < kR; ++j)
        for (int i = 0; i < kR; ++i) {
          const std::array<Pu, 3> p = {A[0] + i * S, A[1] + j * S,
                                       A[2] + k * S};
          PointRecord& rec = pmap.at(point_key(p[0], p[1], p[2]));
          const int local = oct_idx(i, j, k);
          if (!rec.hanging) {
            if (rec.dof < 0) {
              rec.dof = static_cast<std::int64_t>(dof_pu_.size());
              dof_pu_.push_back(p);
              dof_owner_.push_back(rec.owner);
            }
            o2n_[e * kOctPts + local] = rec.dof;
            if (rec.owner == e)
              write_set_[e].emplace_back(local, rec.dof);
          } else {
            if (rec.hidx < 0) {
              rec.hidx = static_cast<std::int64_t>(hanging_pu_.size());
              hanging_pu_.push_back(p);
              hanging_host_.push_back(rec.host);
            }
            o2n_[e * kOctPts + local] = -(rec.hidx + 1);
          }
        }
  }

  // Stash the point map for hanging-rule resolution.
  pmap_for_rules_ = std::move(pmap);
}

void Mesh::build_hanging_rules() {
  const auto& P = Prolongation::get();
  const std::size_t nh = hanging_pu_.size();
  hanging_rules_.assign(nh, {});
  std::vector<int> state(nh, 0);  // 0 = unresolved, 1 = in progress, 2 = done

  // Raw rule of hanging point h: degree-6 tensor interpolation of its host
  // octant's grid points at the half-spacing offsets. References may be
  // hanging themselves (w.r.t. an even coarser neighbor); resolve
  // recursively — levels strictly decrease, so this terminates.
  std::function<const HangingRule&(std::size_t)> resolve =
      [&](std::size_t h) -> const HangingRule& {
    if (state[h] == 2) return hanging_rules_[h];
    DGR_CHECK_MSG(state[h] != 1, "cycle in hanging-point resolution");
    state[h] = 1;
    const oct::TreeNode host = hanging_host_[h];
    const auto A = anchor_pu(host);
    const Pu Sh = spacing_pu(host.level) / 2;  // half spacing
    const auto& p = hanging_pu_[h];
    int tpos[3];
    for (int a = 0; a < 3; ++a) {
      const Pu d = p[a] - A[a];
      DGR_CHECK(d >= 0 && d % Sh == 0);
      tpos[a] = d / Sh;
      DGR_CHECK(tpos[a] >= 0 && tpos[a] <= 12);
    }
    std::unordered_map<DofIndex, Real> acc;
    for (int k = 0; k < kR; ++k) {
      const Real wz = P.row(tpos[2])[k];
      if (wz == 0.0) continue;
      for (int j = 0; j < kR; ++j) {
        const Real wy = P.row(tpos[1])[j];
        if (wy == 0.0) continue;
        for (int i = 0; i < kR; ++i) {
          const Real wx = P.row(tpos[0])[i];
          if (wx == 0.0) continue;
          const Real w = wx * wy * wz;
          const std::array<Pu, 3> q = {A[0] + i * (2 * Sh),
                                       A[1] + j * (2 * Sh),
                                       A[2] + k * (2 * Sh)};
          const PointRecord& rec =
              pmap_for_rules_.at(point_key(q[0], q[1], q[2]));
          if (!rec.hanging) {
            acc[rec.dof] += w;
          } else {
            for (const auto& [dof, w2] : resolve(rec.hidx).terms)
              acc[dof] += w * w2;
          }
        }
      }
    }
    auto& rule = hanging_rules_[h];
    rule.terms.assign(acc.begin(), acc.end());
    std::sort(rule.terms.begin(), rule.terms.end());
    state[h] = 2;
    return rule;
  };

  for (std::size_t h = 0; h < nh; ++h) resolve(h);
  pmap_for_rules_.clear();

  // Per-octant hanging-resolution flop cost (2 per rule term), charged by
  // unzip whenever the octant is loaded.
  hanging_flops_.assign(tree_.size(), 0);
  for (OctIndex e = 0; e < static_cast<OctIndex>(tree_.size()); ++e) {
    const std::int64_t* map = o2n(e);
    std::uint64_t f = 0;
    for (int i = 0; i < kOctPts; ++i)
      if (map[i] < 0) f += 2 * hanging_rules_[-(map[i] + 1)].terms.size();
    hanging_flops_[e] = f;
  }
}

std::array<Real, 3> Mesh::dof_position(DofIndex d) const {
  const auto& p = dof_pu_[d];
  const Real scale = 2.0 * domain_.half_extent / kPuDomain;
  return {-domain_.half_extent + scale * p[0],
          -domain_.half_extent + scale * p[1],
          -domain_.half_extent + scale * p[2]};
}

bool Mesh::dof_on_boundary(DofIndex d) const {
  const auto& p = dof_pu_[d];
  for (int a = 0; a < 3; ++a)
    if (p[a] == 0 || p[a] == kPuDomain) return true;
  return false;
}

Real Mesh::octant_spacing(OctIndex e) const {
  return domain_.octant_edge(tree_.leaf(e).level) / (kR - 1);
}

Real Mesh::finest_spacing() const {
  return domain_.octant_edge(tree_.max_level()) / (kR - 1);
}

PatchGeom Mesh::patch_geom(OctIndex e) const {
  const oct::TreeNode& t = tree_.leaf(e);
  const Real h = octant_spacing(e);
  const auto lo = domain_.to_phys(t.x, t.y, t.z);
  return {{lo[0] - kPad * h, lo[1] - kPad * h, lo[2] - kPad * h}, h};
}

void Mesh::sample(const std::function<Real(Real, Real, Real)>& f,
                  Real* field) const {
  for (DofIndex d = 0; d < static_cast<DofIndex>(num_dofs()); ++d) {
    const auto x = dof_position(d);
    field[d] = f(x[0], x[1], x[2]);
  }
}

void Mesh::load_octant(const Real* field, OctIndex e, Real* out) const {
  const std::int64_t* map = o2n(e);
  for (int i = 0; i < kOctPts; ++i) {
    const std::int64_t v = map[i];
    if (v >= 0) {
      out[i] = field[v];
    } else {
      const HangingRule& r = hanging_rules_[-(v + 1)];
      Real s = 0;
      for (const auto& [dof, w] : r.terms) s += w * field[dof];
      out[i] = s;
    }
  }
}

void Mesh::scatter_into_patch(OctIndex b, OctIndex e, const Real* u_e,
                              const Real* fine_e, Real* patch,
                              OpCounts* counts) const {
  const oct::TreeNode& tb = tree_.leaf(b);
  const oct::TreeNode& te = tree_.leaf(e);
  const auto Ab = anchor_pu(tb);
  const auto Ae = anchor_pu(te);
  const Pu Sb = spacing_pu(tb.level);
  const Pu Se = spacing_pu(te.level);

  // Per-axis lists of patch indices m whose coordinate lies in e's closed
  // box, together with the source index along that axis.
  int ms[3][kPatch], src[3][kPatch], cnt[3] = {0, 0, 0};
  for (int a = 0; a < 3; ++a) {
    const std::int64_t A_b = (a == 0 ? Ab[0] : a == 1 ? Ab[1] : Ab[2]);
    const std::int64_t A_e = (a == 0 ? Ae[0] : a == 1 ? Ae[1] : Ae[2]);
    for (int m = 0; m < kPatch; ++m) {
      const std::int64_t p = A_b + std::int64_t(m - kPad) * Sb;
      if (p < A_e || p > A_e + std::int64_t(kR - 1) * Se) continue;
      std::int64_t s;
      if (te.level == tb.level) {
        s = (p - A_e) / Se;                 // direct copy index (0..6)
      } else if (te.level < tb.level) {
        s = (p - A_e) / (Se / 2);           // fine-covering index (0..12)
      } else {
        if ((p - A_e) % Se != 0) continue;  // cannot happen; keep safe
        s = (p - A_e) / Se;                 // injection index (0..6)
      }
      ms[a][cnt[a]] = m;
      src[a][cnt[a]] = static_cast<int>(s);
      ++cnt[a];
    }
  }
  if (cnt[0] == 0 || cnt[1] == 0 || cnt[2] == 0) return;

  const bool use_fine = te.level < tb.level;
  std::uint64_t written = 0;
  for (int kk = 0; kk < cnt[2]; ++kk)
    for (int jj = 0; jj < cnt[1]; ++jj)
      for (int ii = 0; ii < cnt[0]; ++ii) {
        const int m = patch_idx(ms[0][ii], ms[1][jj], ms[2][kk]);
        if (use_fine) {
          patch[m] = fine_e[(src[2][kk] * kFine + src[1][jj]) * kFine +
                            src[0][ii]];
        } else {
          patch[m] = u_e[oct_idx(src[0][ii], src[1][jj], src[2][kk])];
        }
        ++written;
      }
  if (counts) counts->bytes_written += written * sizeof(Real);
}

void Mesh::fill_domain_boundary(OctIndex b, Real* patch,
                                OpCounts* counts) const {
  const oct::TreeNode& t = tree_.leaf(b);
  const auto A = anchor_pu(t);
  const Pu S = spacing_pu(t.level);
  // Degree-4 extrapolation one step at a time: f(-1) from f(0..4).
  const auto extrap = [](Real f0, Real f1, Real f2, Real f3, Real f4) {
    return 5 * f0 - 10 * f1 + 10 * f2 - 5 * f3 + f4;
  };
  // Which sides of this octant lie on the outer boundary?
  bool lo_side[3], hi_side[3];
  for (int a = 0; a < 3; ++a) {
    lo_side[a] = (A[a] == 0);
    hi_side[a] = (A[a] + (kR - 1) * S == kPuDomain);
  }
  std::uint64_t flops = 0;
  // Sweep x, then y, then z: later sweeps overwrite any corner values a
  // previous sweep computed from not-yet-filled rows, so after the z sweep
  // every out-of-domain point holds a valid extrapolation.
  for (int axis = 0; axis < 3; ++axis) {
    if (!lo_side[axis] && !hi_side[axis]) continue;
    const int stride = (axis == 0) ? 1 : (axis == 1) ? kPatch : kPatch * kPatch;
    for (int u = 0; u < kPatch; ++u)
      for (int v = 0; v < kPatch; ++v) {
        // Base index of this 1-D line.
        int base;
        if (axis == 0) base = patch_idx(0, u, v);
        else if (axis == 1) base = patch_idx(u, 0, v);
        else base = patch_idx(u, v, 0);
        Real* line = patch + base;
        if (lo_side[axis]) {
          for (int m = kPad - 1; m >= 0; --m) {
            line[m * stride] = extrap(line[(m + 1) * stride],
                                      line[(m + 2) * stride],
                                      line[(m + 3) * stride],
                                      line[(m + 4) * stride],
                                      line[(m + 5) * stride]);
            flops += 9;
          }
        }
        if (hi_side[axis]) {
          for (int m = kPatch - kPad; m < kPatch; ++m) {
            line[m * stride] = extrap(line[(m - 1) * stride],
                                      line[(m - 2) * stride],
                                      line[(m - 3) * stride],
                                      line[(m - 4) * stride],
                                      line[(m - 5) * stride]);
            flops += 9;
          }
        }
      }
  }
  if (counts) counts->flops += flops;
}

void Mesh::unzip(const Real* const* fields, int nvar, OctIndex begin,
                 OctIndex end, Real* patches, UnzipMethod method,
                 OpCounts* counts) const {
  unzip_slice(fields, nvar, 0, nvar, begin, end, patches, method, counts);
}

void Mesh::unzip_slice(const Real* const* fields, int nvar, int vbegin,
                       int vend, OctIndex begin, OctIndex end, Real* patches,
                       UnzipMethod method, OpCounts* counts) const {
  DGR_CHECK(begin >= 0 && end <= static_cast<OctIndex>(num_octants()) &&
            begin <= end);
  DGR_CHECK(0 <= vbegin && vbegin <= vend && vend <= nvar);

  if (method == UnzipMethod::kLoopOverPatches) {
    for (OctIndex b = begin; b < end; ++b)
      for (int v = vbegin; v < vend; ++v) {
        Real* patch = patches +
                      (static_cast<std::size_t>(b - begin) * nvar + v) *
                          kPatchPts;
        gather_patch(fields[v], b, patch, counts);
        fill_domain_boundary(b, patch, counts);
      }
    return;
  }

  // loop-over-octants: build the source set (chunk targets + their halo),
  // load and prolong each source exactly once per variable, then scatter.
  std::vector<OctIndex> sources;
  std::vector<char> needs_fine_flag;
  {
    std::unordered_map<OctIndex, std::size_t> slot;
    auto add = [&](OctIndex e) {
      if (slot.emplace(e, sources.size()).second) {
        sources.push_back(e);
        needs_fine_flag.push_back(0);
      }
    };
    for (OctIndex b = begin; b < end; ++b) {
      add(b);
      for (OctIndex e : adjacency_[b]) add(e);
    }
    // A source must be prolonged if any chunk target adjacent to it is finer.
    for (OctIndex b = begin; b < end; ++b) {
      const int lb = tree_.leaf(b).level;
      for (OctIndex e : adjacency_[b])
        if (tree_.leaf(e).level < lb) needs_fine_flag[slot.at(e)] = 1;
    }
  }

  std::vector<Real> u_src(sources.size() * kOctPts);
  std::vector<Real> fine_src;
  std::vector<std::int64_t> fine_slot(sources.size(), -1);
  {
    std::int64_t nf = 0;
    for (std::size_t s = 0; s < sources.size(); ++s)
      if (needs_fine_flag[s]) fine_slot[s] = nf++;
    fine_src.resize(static_cast<std::size_t>(nf) * kFine * kFine * kFine);
  }
  std::unordered_map<OctIndex, std::size_t> src_of;
  for (std::size_t s = 0; s < sources.size(); ++s) src_of[sources[s]] = s;

  for (int v = vbegin; v < vend; ++v) {
    const Real* field = fields[v];
    for (std::size_t s = 0; s < sources.size(); ++s) {
      load_octant(field, sources[s], &u_src[s * kOctPts]);
      if (counts) {
        counts->bytes_read += kOctPts * sizeof(Real);
        counts->flops += hanging_flops_[sources[s]];
      }
      if (needs_fine_flag[s])
        prolong_octant(&u_src[s * kOctPts],
                       &fine_src[fine_slot[s] * kFine * kFine * kFine],
                       counts);
    }
    for (OctIndex b = begin; b < end; ++b) {
      Real* patch = patches +
                    (static_cast<std::size_t>(b - begin) * nvar + v) *
                        kPatchPts;
      const std::size_t sb = src_of.at(b);
      scatter_into_patch(b, b, &u_src[sb * kOctPts], nullptr, patch, counts);
      for (OctIndex e : adjacency_[b]) {
        const std::size_t se = src_of.at(e);
        const Real* fine = (fine_slot[se] >= 0)
                               ? &fine_src[fine_slot[se] * kFine * kFine * kFine]
                               : nullptr;
        scatter_into_patch(b, e, &u_src[se * kOctPts], fine, patch, counts);
      }
      fill_domain_boundary(b, patch, counts);
    }
  }
}

void Mesh::gather_patch(const Real* field, OctIndex b, Real* patch,
                        OpCounts* counts) const {
  const oct::TreeNode& tb = tree_.leaf(b);
  const auto Ab = anchor_pu(tb);
  const Pu Sb = spacing_pu(tb.level);

  // Center: the octant's own values.
  Real u_b[kOctPts];
  load_octant(field, b, u_b);
  if (counts) {
    counts->bytes_read += kOctPts * sizeof(Real);
    counts->flops += hanging_flops_[b];
  }
  for (int k = 0; k < kR; ++k)
    for (int j = 0; j < kR; ++j)
      for (int i = 0; i < kR; ++i)
        patch[patch_idx(i + kPad, j + kPad, k + kPad)] =
            u_b[oct_idx(i, j, k)];
  if (counts) counts->bytes_written += kOctPts * sizeof(Real);

  // Padding: gather point by point, loading each contributing source octant
  // for this patch separately (redundant loads) and re-deriving the
  // interpolation weights per point (redundant interpolation) — the
  // loop-over-patches cost structure of Fig. 7.
  std::vector<std::pair<OctIndex, std::vector<Real>>> loaded;
  auto source_values = [&](OctIndex e) -> const Real* {
    for (auto& [oe, u] : loaded)
      if (oe == e) return u.data();
    loaded.emplace_back(e, std::vector<Real>(kOctPts));
    load_octant(field, e, loaded.back().second.data());
    if (counts) {
      counts->bytes_read += kOctPts * sizeof(Real);
      counts->flops += hanging_flops_[e];
    }
    return loaded.back().second.data();
  };

  const auto& adj = adjacency_[b];
  OctIndex last_found = kInvalidOct;  // consecutive points share sources
  for (int k = 0; k < kPatch; ++k)
    for (int j = 0; j < kPatch; ++j)
      for (int i = 0; i < kPatch; ++i) {
        if (i >= kPad && i < kPad + kR && j >= kPad && j < kPad + kR &&
            k >= kPad && k < kPad + kR)
          continue;  // center already done
        const std::int64_t p[3] = {
            std::int64_t(Ab[0]) + std::int64_t(i - kPad) * Sb,
            std::int64_t(Ab[1]) + std::int64_t(j - kPad) * Sb,
            std::int64_t(Ab[2]) + std::int64_t(k - kPad) * Sb};
        if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > kPuDomain ||
            p[1] > kPuDomain || p[2] > kPuDomain)
          continue;  // boundary extrapolation later
        // Find a source octant whose closed box contains p (trying the
        // previous point's source first — adjacent points share sources).
        const auto covers = [&](OctIndex e) {
          const oct::TreeNode& te = tree_.leaf(e);
          const auto Ae = anchor_pu(te);
          const Pu Se = spacing_pu(te.level);
          for (int a = 0; a < 3; ++a)
            if (p[a] < Ae[a] || p[a] > Ae[a] + std::int64_t(kR - 1) * Se)
              return false;
          return true;
        };
        OctIndex found = kInvalidOct;
        if (last_found != kInvalidOct && covers(last_found)) {
          found = last_found;
        } else {
          for (OctIndex e : adj) {
            if (covers(e)) {
              found = e;
              break;
            }
          }
        }
        last_found = found;
        DGR_CHECK_MSG(found != kInvalidOct, "gather: uncovered patch point");
        const oct::TreeNode& te = tree_.leaf(found);
        const auto Ae = anchor_pu(te);
        const Pu Se = spacing_pu(te.level);
        const Real* u_e = source_values(found);
        if (te.level >= tb.level) {
          // Same level or finer: the point coincides with a source point.
          const int si = static_cast<int>((p[0] - Ae[0]) / Se);
          const int sj = static_cast<int>((p[1] - Ae[1]) / Se);
          const int sk = static_cast<int>((p[2] - Ae[2]) / Se);
          patch[patch_idx(i, j, k)] = u_e[oct_idx(si, sj, sk)];
        } else {
          // Coarser: per-point tensor interpolation (redundant relative to
          // the scatter path's one prolongation per source octant).
          const Pu Sh = Se / 2;
          patch[patch_idx(i, j, k)] = prolong_point_cached(
              u_e, static_cast<int>((p[0] - Ae[0]) / Sh),
              static_cast<int>((p[1] - Ae[1]) / Sh),
              static_cast<int>((p[2] - Ae[2]) / Sh), counts);
        }
        if (counts) counts->bytes_written += sizeof(Real);
      }
}

void Mesh::zip(const Real* patches, int nvar, OctIndex begin, OctIndex end,
               Real* const* fields, OpCounts* counts) const {
  DGR_CHECK(begin >= 0 && end <= static_cast<OctIndex>(num_octants()) &&
            begin <= end);
  std::uint64_t moved = 0;
  for (OctIndex b = begin; b < end; ++b) {
    for (int v = 0; v < nvar; ++v) {
      const Real* patch = patches +
                          (static_cast<std::size_t>(b - begin) * nvar + v) *
                              kPatchPts;
      Real* field = fields[v];
      for (const auto& [local, dof] : write_set_[b]) {
        const int i = local % kR;
        const int j = (local / kR) % kR;
        const int k = local / (kR * kR);
        field[dof] = patch[patch_idx(i + kPad, j + kPad, k + kPad)];
        ++moved;
      }
    }
  }
  if (counts) {
    counts->bytes_read += moved * sizeof(Real);
    counts->bytes_written += moved * sizeof(Real);
  }
}

void Mesh::unzip_all(const Real* const* fields, int nvar, Real* patches,
                     UnzipMethod method, OpCounts* counts) const {
  unzip(fields, nvar, 0, static_cast<OctIndex>(num_octants()), patches,
        method, counts);
}

}  // namespace dgr::mesh
