# Empty dependencies file for dgr_fd.
# This may be replaced when dependencies are built.
