#pragma once
/// \file state.hpp
/// \brief Zipped storage of the 24 evolved BSSN fields over a mesh.

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "bssn/vars.hpp"
#include "common/types.hpp"

namespace dgr::bssn {

/// One field per variable, each over the mesh's deduplicated DOFs.
class BssnState {
 public:
  BssnState() = default;
  explicit BssnState(std::size_t ndofs) { resize(ndofs); }

  void resize(std::size_t ndofs) {
    for (auto& f : fields_) f.assign(ndofs, 0.0);
    ndofs_ = ndofs;
  }

  std::size_t num_dofs() const { return ndofs_; }

  Real* field(int v) { return fields_[v].data(); }
  const Real* field(int v) const { return fields_[v].data(); }

  std::array<Real*, kNumVars> ptrs() {
    std::array<Real*, kNumVars> p;
    for (int v = 0; v < kNumVars; ++v) p[v] = fields_[v].data();
    return p;
  }
  std::array<const Real*, kNumVars> cptrs() const {
    std::array<const Real*, kNumVars> p;
    for (int v = 0; v < kNumVars; ++v) p[v] = fields_[v].data();
    return p;
  }

  /// y = y + s * x  (the AXPY of Algorithm 1, over every variable).
  void axpy(Real s, const BssnState& x) {
    for (int v = 0; v < kNumVars; ++v)
      for (std::size_t d = 0; d < ndofs_; ++d)
        fields_[v][d] += s * x.fields_[v][d];
  }

  /// this = a + s * b (RK stage combination).
  void set_axpy(const BssnState& a, Real s, const BssnState& b) {
    for (int v = 0; v < kNumVars; ++v)
      for (std::size_t d = 0; d < ndofs_; ++d)
        fields_[v][d] = a.fields_[v][d] + s * b.fields_[v][d];
  }

  /// Max absolute difference against another state (all variables).
  Real max_abs_diff(const BssnState& o) const {
    Real m = 0;
    for (int v = 0; v < kNumVars; ++v)
      for (std::size_t d = 0; d < ndofs_; ++d)
        m = std::max(m, std::abs(fields_[v][d] - o.fields_[v][d]));
    return m;
  }

  /// Max absolute value over all variables (robust-stability diagnostics).
  Real max_abs() const {
    Real m = 0;
    for (int v = 0; v < kNumVars; ++v)
      for (std::size_t d = 0; d < ndofs_; ++d)
        m = std::max(m, std::abs(fields_[v][d]));
    return m;
  }

 private:
  std::array<std::vector<Real>, kNumVars> fields_;
  std::size_t ndofs_ = 0;
};

}  // namespace dgr::bssn
