# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("octree")
subdirs("mesh")
subdirs("fd")
subdirs("bssn")
subdirs("codegen")
subdirs("simgpu")
subdirs("perf")
subdirs("comm")
subdirs("solver")
subdirs("gw")
