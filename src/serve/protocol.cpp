#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"

namespace dgr::serve {

// Thin forwards: the strict-knob discipline that started here now lives in
// common/parse.cpp, shared by every DGR_* knob and CLI flag in the tree.
long parse_count(const char* s, const char* what, long lo, long hi) {
  return dgr::parse_count(s, what, lo, hi);
}

double parse_real(const char* s, const char* what) {
  return dgr::parse_real(s, what);
}

long env_count(const char* name, long fallback, long lo, long hi) {
  return dgr::env_count(name, fallback, lo, hi);
}

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * bytes.size());
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string from_hex(const std::string& hex) {
  DGR_CHECK_MSG(hex.size() % 2 == 0, "hex payload has odd length");
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]), lo = hex_digit(hex[i + 1]);
    DGR_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex digit in payload");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

void apply_field(ensemble::ScenarioConfig& cfg, bool& full,
                 const std::string& key, const std::string& val) {
  const char* v = val.c_str();
  const std::string what = "EVOLVE field '" + key + "'";
  const char* w = what.c_str();
  if (key == "q") cfg.q = parse_real(v, w);
  else if (key == "sep") cfg.separation = parse_real(v, w);
  else if (key == "s1x") cfg.spin1[0] = parse_real(v, w);
  else if (key == "s1y") cfg.spin1[1] = parse_real(v, w);
  else if (key == "s1z") cfg.spin1[2] = parse_real(v, w);
  else if (key == "s2x") cfg.spin2[0] = parse_real(v, w);
  else if (key == "s2y") cfg.spin2[1] = parse_real(v, w);
  else if (key == "s2z") cfg.spin2[2] = parse_real(v, w);
  else if (key == "half") cfg.domain_half = parse_real(v, w);
  else if (key == "base") cfg.base_level = int(parse_count(v, w, 1, 8));
  else if (key == "finest") cfg.finest_level = int(parse_count(v, w, 1, 8));
  else if (key == "eps") cfg.eps = parse_real(v, w);
  else if (key == "steps") cfg.steps = int(parse_count(v, w, 1, 100000));
  else if (key == "regrid") cfg.regrid_every = int(parse_count(v, w, 1, 1 << 20));
  else if (key == "extract") cfg.extract_every = int(parse_count(v, w, 1, 1 << 20));
  else if (key == "radius") cfg.extraction_radius = parse_real(v, w);
  else if (key == "cfl") cfg.cfl = parse_real(v, w);
  else if (key == "ko") cfg.ko_sigma = parse_real(v, w);
  else if (key == "subcycle") cfg.subcycle = parse_count(v, w, 0, 1) != 0;
  else if (key == "full") full = parse_count(v, w, 0, 1) != 0;
  else DGR_CHECK_MSG(false, "unknown EVOLVE field '" << key << "'");
}

}  // namespace

void validate_scenario(const ensemble::ScenarioConfig& cfg) {
  const auto in = [](long v, long lo, long hi, const char* what) {
    DGR_CHECK_MSG(v >= lo && v <= hi, "scenario field " << what
                                          << " must be in [" << lo << ", "
                                          << hi << "], got " << v);
  };
  in(cfg.base_level, 1, 8, "base");
  in(cfg.finest_level, 1, 8, "finest");
  in(cfg.steps, 1, 100000, "steps");
  in(cfg.regrid_every, 1, 1 << 20, "regrid");
  in(cfg.extract_every, 1, 1 << 20, "extract");
}

Request parse_request(const std::string& line,
                      const ensemble::ScenarioConfig& defaults) {
  const auto toks = split_ws(line);
  DGR_CHECK_MSG(!toks.empty(), "empty request");
  Request req;
  const std::string& verb = toks[0];
  if (verb == "PING") {
    DGR_CHECK_MSG(toks.size() == 1, "PING takes no arguments");
    req.kind = Request::Kind::kPing;
  } else if (verb == "STATS") {
    DGR_CHECK_MSG(toks.size() == 1, "STATS takes no arguments");
    req.kind = Request::Kind::kStats;
  } else if (verb == "METRICS") {
    DGR_CHECK_MSG(toks.size() == 1, "METRICS takes no arguments");
    req.kind = Request::Kind::kMetrics;
  } else if (verb == "DUMP") {
    DGR_CHECK_MSG(toks.size() <= 2, "DUMP takes at most a path argument");
    req.kind = Request::Kind::kDump;
    if (toks.size() == 2) req.dump_path = toks[1];
  } else if (verb == "SHUTDOWN") {
    DGR_CHECK_MSG(toks.size() == 1, "SHUTDOWN takes no arguments");
    req.kind = Request::Kind::kShutdown;
  } else if (verb == "QUIT") {
    req.kind = Request::Kind::kQuit;
  } else if (verb == "EVOLVE") {
    req.kind = Request::Kind::kEvolve;
    req.cfg = defaults;
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const auto eq = toks[i].find('=');
      DGR_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "EVOLVE fields are key=value, got '" << toks[i] << "'");
      apply_field(req.cfg, req.full, toks[i].substr(0, eq),
                  toks[i].substr(eq + 1));
    }
    validate_scenario(req.cfg);
  } else if (verb == "EVOLVEX") {
    DGR_CHECK_MSG(toks.size() == 2 || toks.size() == 3,
                  "EVOLVEX expects a hex config (and optional full=1)");
    req.kind = Request::Kind::kEvolve;
    req.cfg = ensemble::decode(from_hex(toks[1]));
    validate_scenario(req.cfg);
    if (toks.size() == 3) {
      DGR_CHECK_MSG(toks[2] == "full=1" || toks[2] == "full=0",
                    "EVOLVEX trailing token must be full=0|1");
      req.full = toks[2] == "full=1";
    }
  } else {
    DGR_CHECK_MSG(false, "unknown request '" << verb << "'");
  }
  return req;
}

std::string format_evolve(const ensemble::ScenarioConfig& cfg, bool full) {
  using jsonu::num;
  std::string s = "EVOLVE";
  s += " q=" + num(cfg.q);
  s += " sep=" + num(cfg.separation);
  s += " s1x=" + num(cfg.spin1[0]) + " s1y=" + num(cfg.spin1[1]) +
       " s1z=" + num(cfg.spin1[2]);
  s += " s2x=" + num(cfg.spin2[0]) + " s2y=" + num(cfg.spin2[1]) +
       " s2z=" + num(cfg.spin2[2]);
  s += " half=" + num(cfg.domain_half);
  s += " base=" + num(cfg.base_level);
  s += " finest=" + num(cfg.finest_level);
  s += " eps=" + num(cfg.eps);
  s += " steps=" + num(cfg.steps);
  s += " regrid=" + num(cfg.regrid_every);
  s += " extract=" + num(cfg.extract_every);
  s += " radius=" + num(cfg.extraction_radius);
  s += " cfl=" + num(cfg.cfl);
  s += " ko=" + num(cfg.ko_sigma);
  s += " subcycle=" + num(cfg.subcycle ? 1 : 0);
  if (full) s += " full=1";
  return s;
}

std::string format_evolvex(const ensemble::ScenarioConfig& cfg, bool full) {
  std::string s = "EVOLVEX " + to_hex(ensemble::encode(cfg));
  if (full) s += " full=1";
  return s;
}

// ----------------------------------------------------------------- Client

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::connect(const std::string& socket_path) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DGR_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DGR_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " << socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    DGR_CHECK_MSG(false, "connect(" << socket_path
                                    << "): " << std::strerror(err));
  }
}

void Client::send_line(const std::string& line) {
  DGR_CHECK_MSG(fd_ >= 0, "client not connected");
  std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    DGR_CHECK_MSG(n > 0, "send(): " << std::strerror(errno));
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::recv_line() {
  DGR_CHECK_MSG(fd_ >= 0, "client not connected");
  for (;;) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    DGR_CHECK_MSG(n > 0, (n == 0 ? "connection closed by server"
                                 : std::strerror(errno)));
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  send_line(line);
  return recv_line();
}

}  // namespace dgr::serve
