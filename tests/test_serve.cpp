/// \file test_serve.cpp
/// \brief Tests for the waveform-service front-end: strict protocol
/// parsing (the exec::parse_thread_count discipline for every knob),
/// bit-exact EVOLVE/EVOLVEX round trips, and the socket server end to end
/// — hit/miss digest equality, request batching, admission-control load
/// shedding with no lost responses, and graceful drain.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/json_read.hpp"
#include "ensemble/scenario.hpp"
#include "obs/obs.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace dgr;
using namespace dgr::serve;

namespace {

ensemble::ScenarioConfig tiny_scenario() {
  ensemble::ScenarioConfig cfg;
  cfg.base_level = 1;
  cfg.finest_level = 2;
  cfg.domain_half = 8.0;
  cfg.steps = 2;
  cfg.extract_every = 1;
  cfg.extraction_radius = 3.0;
  return cfg;
}

std::string test_socket(const char* tag) {
  return "/tmp/dgr_test_serve_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Read the whole file at `path`; empty string when unreadable.
std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return "";
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Split "OK hash=... source=... ..." into {key: value} (verb under "").
std::map<std::string, std::string> fields(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  bool first = true;
  while (pos < line.size()) {
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) sp = line.size();
    const std::string tok = line.substr(pos, sp - pos);
    const auto eq = tok.find('=');
    if (first && eq == std::string::npos) out[""] = tok;
    else if (eq != std::string::npos)
      out[tok.substr(0, eq)] = tok.substr(eq + 1);
    first = false;
    pos = sp + 1;
  }
  return out;
}

}  // namespace

// ------------------------------------------------------- strict parsing

TEST(Protocol, ParseCountAcceptsBoundedIntegers) {
  EXPECT_EQ(parse_count("42", "n", 1, 100), 42);
  EXPECT_EQ(parse_count("1", "n", 1, 100), 1);
  EXPECT_EQ(parse_count("-3", "n", -10, 10), -3);
}

TEST(Protocol, ParseCountRejectsGarbage) {
  EXPECT_THROW(parse_count("", "n", 1, 100), Error);
  EXPECT_THROW(parse_count(nullptr, "n", 1, 100), Error);
  EXPECT_THROW(parse_count("4x", "n", 1, 100), Error);
  EXPECT_THROW(parse_count("x4", "n", 1, 100), Error);
  EXPECT_THROW(parse_count(" 4", "n", 1, 100), Error);
  EXPECT_THROW(parse_count("4.0", "n", 1, 100), Error);
  EXPECT_THROW(parse_count("0", "n", 1, 100), Error);    // below lo
  EXPECT_THROW(parse_count("101", "n", 1, 100), Error);  // above hi
  EXPECT_THROW(parse_count("99999999999999999999", "n", 1, 100), Error);
}

TEST(Protocol, ParseRealRejectsGarbage) {
  EXPECT_EQ(parse_real("0.25", "x"), 0.25);
  EXPECT_EQ(parse_real("-1e-3", "x"), -1e-3);
  EXPECT_THROW(parse_real("", "x"), Error);
  EXPECT_THROW(parse_real("1.5oops", "x"), Error);
  EXPECT_THROW(parse_real("nanx", "x"), Error);
}

TEST(Protocol, EnvCountUnsetVsInvalid) {
  ::unsetenv("DGR_TEST_SERVE_KNOB");
  EXPECT_EQ(env_count("DGR_TEST_SERVE_KNOB", 7, 1, 100), 7);
  ::setenv("DGR_TEST_SERVE_KNOB", "12", 1);
  EXPECT_EQ(env_count("DGR_TEST_SERVE_KNOB", 7, 1, 100), 12);
  ::setenv("DGR_TEST_SERVE_KNOB", "garbage", 1);
  EXPECT_THROW(env_count("DGR_TEST_SERVE_KNOB", 7, 1, 100), Error);
  ::unsetenv("DGR_TEST_SERVE_KNOB");
}

TEST(Protocol, HexRoundTrip) {
  const std::string bytes("\x00\x7f\xff\x10", 4);
  EXPECT_EQ(from_hex(to_hex(bytes)), bytes);
  EXPECT_THROW(from_hex("abc"), Error);   // odd length
  EXPECT_THROW(from_hex("zz"), Error);    // not hex
}

// ------------------------------------------------------ request parsing

TEST(Protocol, EvolveFormatParseRoundTripIsBitExact) {
  ensemble::ScenarioConfig cfg = tiny_scenario();
  cfg.q = 1.0 + 1.0 / 3.0;  // not representable in short decimal... unless
  cfg.eps = 2e-3 + std::numeric_limits<double>::epsilon();
  cfg.spin1[2] = -0.0;
  cfg.spin2[0] = 0.123456789012345678;  // rounds to a specific double

  const Request req = parse_request(format_evolve(cfg), tiny_scenario());
  EXPECT_EQ(req.kind, Request::Kind::kEvolve);
  // jsonu::num emits shortest round-trip decimals; the canonical encodings
  // (bit patterns) must therefore match exactly.
  EXPECT_EQ(ensemble::encode(req.cfg), ensemble::encode(cfg));

  const Request reqx = parse_request(format_evolvex(cfg), tiny_scenario());
  EXPECT_EQ(ensemble::encode(reqx.cfg), ensemble::encode(cfg));
  EXPECT_FALSE(reqx.full);
  EXPECT_TRUE(
      parse_request(format_evolvex(cfg, true), tiny_scenario()).full);
}

TEST(Protocol, EvolveDefaultsApplyToOmittedFields) {
  const ensemble::ScenarioConfig defaults = tiny_scenario();
  const Request req = parse_request("EVOLVE q=2 steps=5", defaults);
  EXPECT_EQ(req.cfg.q, 2.0);
  EXPECT_EQ(req.cfg.steps, 5);
  EXPECT_EQ(req.cfg.base_level, defaults.base_level);
  EXPECT_EQ(req.cfg.extraction_radius, defaults.extraction_radius);
}

TEST(Protocol, ParseRequestRejectsMalformedLines) {
  const ensemble::ScenarioConfig d = tiny_scenario();
  EXPECT_THROW(parse_request("", d), Error);
  EXPECT_THROW(parse_request("FROBNICATE", d), Error);
  EXPECT_THROW(parse_request("PING now", d), Error);
  EXPECT_THROW(parse_request("EVOLVE q", d), Error);
  EXPECT_THROW(parse_request("EVOLVE bogus=1", d), Error);
  EXPECT_THROW(parse_request("EVOLVE q=abc", d), Error);
  EXPECT_THROW(parse_request("EVOLVE steps=0", d), Error);
  EXPECT_THROW(parse_request("EVOLVE base=9", d), Error);
  EXPECT_THROW(parse_request("EVOLVEX nothex", d), Error);
  EXPECT_THROW(parse_request("EVOLVEX ab full=2", d), Error);
}

TEST(Protocol, EvolvexRejectsOutOfBoundsConfigs) {
  const ensemble::ScenarioConfig defaults = tiny_scenario();
  // A hex config must clear the same admission bounds as EVOLVE fields —
  // steps near INT_MAX passes run_scenario's steps>0 envelope but would
  // tie up the pool for an effectively unbounded evolution.
  ensemble::ScenarioConfig bad = defaults;
  bad.steps = 1 << 30;
  EXPECT_THROW(parse_request(format_evolvex(bad), defaults), Error);
  bad = defaults;
  bad.finest_level = 12;
  EXPECT_THROW(parse_request(format_evolvex(bad), defaults), Error);
  bad = defaults;
  bad.regrid_every = 0;
  EXPECT_THROW(parse_request(format_evolvex(bad), defaults), Error);
  EXPECT_NO_THROW(parse_request(format_evolvex(defaults), defaults));
}

// --------------------------------------------------------- server e2e

TEST(Server, PingStatsAndHitMissDigestEquality) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("basic");
  cfg.defaults = tiny_scenario();
  cfg.ensemble.concurrency = 2;
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  EXPECT_EQ(c.request("PING"), "PONG");

  // Miss, then hit: same hash, same digest (bitwise-identical waveform),
  // different source.
  const auto miss = fields(c.request("EVOLVE"));
  ASSERT_EQ(miss.at(""), "OK") << "miss response";
  EXPECT_EQ(miss.at("source"), "miss");
  const auto hit = fields(c.request("EVOLVE"));
  ASSERT_EQ(hit.at(""), "OK") << "hit response";
  EXPECT_EQ(hit.at("source"), "mem");
  EXPECT_EQ(hit.at("hash"), miss.at("hash"));
  EXPECT_EQ(hit.at("digest"), miss.at("digest"))
      << "cache hit must be bitwise identical to the recompute";
  EXPECT_GT(std::stoul(miss.at("samples")), 0u);

  // The digest over the wire matches a local recompute of the same config.
  const ensemble::Waveform local = ensemble::run_scenario(cfg.defaults);
  const std::uint64_t local_digest =
      ensemble::fnv1a64(ensemble::serialize(local));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(local_digest));
  EXPECT_EQ(miss.at("digest"), hex);

  const auto stats = fields(c.request("STATS"));
  EXPECT_EQ(stats.at(""), "STATS");
  EXPECT_EQ(stats.at("requests"), "2");
  EXPECT_EQ(stats.at("evolutions"), "1");
  EXPECT_EQ(stats.at("hits_mem"), "1");

  // Malformed lines get ERR, and the connection survives.
  EXPECT_EQ(c.request("NONSENSE").substr(0, 3), "ERR");
  EXPECT_EQ(c.request("PING"), "PONG");

  server.request_shutdown();
  server.wait();
  EXPECT_TRUE(server.stats().drained);
}

TEST(Server, FullResponseStreamsBitExactSamples) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("full");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  const auto ok = fields(c.request("EVOLVE full=1"));
  ASSERT_EQ(ok.at(""), "OK");
  const auto header = fields(c.recv_line());
  ASSERT_EQ(header.at(""), "SAMPLES");

  const ensemble::Waveform local = ensemble::run_scenario(cfg.defaults);
  const std::size_t n = local.psi4_22.times.size();
  ASSERT_EQ(std::stoul(ok.at("samples")), n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::string line = c.recv_line();
    char want[64];
    std::snprintf(
        want, sizeof(want), "%016llx %016llx %016llx",
        static_cast<unsigned long long>(
            std::bit_cast<std::uint64_t>(local.psi4_22.times[i])),
        static_cast<unsigned long long>(
            std::bit_cast<std::uint64_t>(local.psi4_22.values[i].real())),
        static_cast<unsigned long long>(
            std::bit_cast<std::uint64_t>(local.psi4_22.values[i].imag())));
    EXPECT_EQ(line, want) << "sample " << i << " not bit-exact";
  }
  EXPECT_EQ(c.recv_line(), "END");

  server.request_shutdown();
  server.wait();
}

TEST(Server, BatchedPipelinedRequestsAnswerInOrder) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("batch");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  // One write carrying several requests: the handler batches them, and the
  // duplicate EVOLVEs coalesce or hit — exactly one evolution runs.
  c.send_line("PING\nEVOLVE\nEVOLVE\nPING");
  EXPECT_EQ(c.recv_line(), "PONG");
  const auto r1 = fields(c.recv_line());
  const auto r2 = fields(c.recv_line());
  EXPECT_EQ(c.recv_line(), "PONG");
  ASSERT_EQ(r1.at(""), "OK");
  ASSERT_EQ(r2.at(""), "OK");
  EXPECT_EQ(r1.at("digest"), r2.at("digest"));

  const auto stats = fields(c.request("STATS"));
  EXPECT_EQ(stats.at("evolutions"), "1")
      << "duplicate EVOLVEs in one batch must not recompute";

  server.request_shutdown();
  server.wait();
}

TEST(Server, BurstLargerThanMaxBatchIsFullyAnswered) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("burst");
  cfg.defaults = tiny_scenario();
  cfg.max_batch = 4;  // force several batches out of one burst
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  // One write carrying far more lines than max_batch, then wait for every
  // response: the handler must keep draining its buffer between batches
  // instead of blocking in recv() on a client that is itself waiting.
  constexpr int kPings = 10;
  std::string burst;
  for (int i = 0; i < kPings; ++i) burst += "PING\n";
  c.send_line(burst + "EVOLVE");
  for (int i = 0; i < kPings; ++i)
    EXPECT_EQ(c.recv_line(), "PONG") << "response " << i;
  EXPECT_EQ(fields(c.recv_line()).at(""), "OK");

  server.request_shutdown();
  server.wait();
}

TEST(Server, LoadSheddingLosesNoResponses) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("shed");
  cfg.defaults = tiny_scenario();
  cfg.queue_max = 2;  // tiny admission window: shedding must kick in
  cfg.ensemble.concurrency = 1;
  Server server(cfg);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 4;
  std::atomic<int> ok{0}, busy{0}, other{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Client c;
      c.connect(cfg.socket_path);
      for (int i = 0; i < kPerClient; ++i) {
        // Unique config per request: all misses, so evolutions back up
        // against the admission window.
        ensemble::ScenarioConfig s = cfg.defaults;
        s.steps = 2 + (t * kPerClient + i) % 7;
        const std::string resp = c.request(format_evolvex(s));
        if (resp.rfind("OK ", 0) == 0) ok.fetch_add(1);
        else if (resp.rfind("BUSY ", 0) == 0) busy.fetch_add(1);
        else other.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every request got exactly one explicit response: admitted or shed,
  // never dropped.
  EXPECT_EQ(ok.load() + busy.load(), kClients * kPerClient);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);

  const auto ss = server.stats();
  EXPECT_EQ(ss.requests, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(ss.shed, static_cast<std::uint64_t>(busy.load()));

  server.request_shutdown();
  server.wait();
  EXPECT_TRUE(server.stats().drained);
}

TEST(Protocol, ParseMetricsAndDumpVerbs) {
  const ensemble::ScenarioConfig d = tiny_scenario();
  EXPECT_EQ(parse_request("METRICS", d).kind, Request::Kind::kMetrics);
  EXPECT_THROW(parse_request("METRICS now", d), Error);

  const Request bare = parse_request("DUMP", d);
  EXPECT_EQ(bare.kind, Request::Kind::kDump);
  EXPECT_TRUE(bare.dump_path.empty());
  const Request with_path = parse_request("DUMP /tmp/fr.json", d);
  EXPECT_EQ(with_path.kind, Request::Kind::kDump);
  EXPECT_EQ(with_path.dump_path, "/tmp/fr.json");
  EXPECT_THROW(parse_request("DUMP a b", d), Error);
}

TEST(Server, GracefulDrainRefusesNewWork) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("drain");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  EXPECT_EQ(c.request("SHUTDOWN"), "OK draining");
  // The same (already-open) connection gets explicit DRAINING rejects.
  EXPECT_EQ(c.request("EVOLVE"), "DRAINING");
  server.wait();
  EXPECT_TRUE(server.stats().drained);
  EXPECT_TRUE(server.draining());
}

// ----------------------------------------------------------- telemetry

TEST(Server, StatsReportsHitRateInflightAndQueueDepth) {
  ServeConfig cfg;
  cfg.socket_path = test_socket("telemetry_stats");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  ASSERT_EQ(fields(c.request("EVOLVE")).at(""), "OK");  // miss
  ASSERT_EQ(fields(c.request("EVOLVE")).at("source"), "mem");  // hit

  const auto stats = fields(c.request("STATS"));
  ASSERT_EQ(stats.at(""), "STATS");
  // 1 hit of 2 answered requests; no work in flight once both answered.
  EXPECT_EQ(stats.at("hit_rate"), "0.5");
  EXPECT_EQ(stats.at("inflight"), "0");
  EXPECT_EQ(stats.at("queue_depth"), "0");

  server.request_shutdown();
  server.wait();
}

TEST(Server, MetricsVerbServesPrometheusTextFromLiveRegistry) {
  obs::MetricsRegistry reg;
  reg.enable_timing(true);  // a daemon-style registry: wall-clock quantiles
  obs::install_metrics(&reg);

  ServeConfig cfg;
  cfg.socket_path = test_socket("telemetry_prom");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  ASSERT_EQ(fields(c.request("EVOLVE")).at(""), "OK");
  ASSERT_EQ(fields(c.request("EVOLVE")).at("source"), "mem");

  c.send_line("METRICS");
  std::string text;
  for (std::string line = c.recv_line(); line != "END";
       line = c.recv_line()) {
    text += line;
    text += "\n";
  }
  // Latency histograms by cache outcome, with quantile labels.
  EXPECT_NE(text.find("# TYPE dgr_serve_latency_us_miss summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dgr_serve_latency_us_miss{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dgr_serve_latency_us_mem{quantile=\"0.99\"}"),
            std::string::npos);
  // Live service gauges refreshed at exposition time.
  EXPECT_NE(text.find("dgr_serve_hit_rate 0.5"), std::string::npos);
  EXPECT_NE(text.find("dgr_serve_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("dgr_serve_inflight 0"), std::string::npos);

  // The connection survives the multi-line response.
  EXPECT_EQ(c.request("PING"), "PONG");

  server.request_shutdown();
  server.wait();
  obs::install_metrics(nullptr);
}

TEST(Server, MetricsVerbWithoutRegistryIsJustEnd) {
  ASSERT_EQ(obs::metrics(), nullptr);
  ServeConfig cfg;
  cfg.socket_path = test_socket("telemetry_noreg");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  EXPECT_EQ(c.request("METRICS"), "END");
  EXPECT_EQ(c.request("PING"), "PONG");

  server.request_shutdown();
  server.wait();
}

TEST(Server, DumpWritesPerfettoLoadableFlightRecording) {
  obs::flightrec::reset();
  obs::flightrec::set_enabled(true);

  ServeConfig cfg;
  cfg.socket_path = test_socket("telemetry_dump");
  cfg.defaults = tiny_scenario();
  Server server(cfg);
  server.start();

  Client c;
  c.connect(cfg.socket_path);
  ASSERT_EQ(fields(c.request("EVOLVE")).at(""), "OK");
  obs::flightrec::record_instant("test.marker", "test", 1.0);

  const std::string path = testing::TempDir() + "dgr_serve_flightrec_" +
                           std::to_string(::getpid()) + ".json";
  const auto resp = fields(c.request("DUMP " + path));
  ASSERT_EQ(resp.at(""), "OK") << "DUMP response";
  EXPECT_EQ(resp.at("flightrec"), path);

  std::string err;
  const auto doc = jsonu::parse(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << "flightrec dump must parse: " << err;
  const jsonu::JValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_arr());
  EXPECT_FALSE(events->arr.empty());
  EXPECT_EQ(doc->get_str("displayTimeUnit"), "ms");
  bool saw_marker = false;
  for (const jsonu::JValue& e : events->arr)
    if (e.get_str("name") == "test.marker") saw_marker = true;
  EXPECT_TRUE(saw_marker) << "instant recorded before DUMP must appear";
  std::remove(path.c_str());

  // An unwritable destination is an explicit ERR, not a broken connection.
  EXPECT_EQ(c.request("DUMP /nonexistent-dir/fr.json").substr(0, 3), "ERR");
  EXPECT_EQ(c.request("PING"), "PONG");

  server.request_shutdown();
  server.wait();
}
