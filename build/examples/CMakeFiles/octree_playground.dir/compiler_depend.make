# Empty compiler generated dependencies file for octree_playground.
# This may be replaced when dependencies are built.
