file(REMOVE_RECURSE
  "CMakeFiles/test_evolution_io.dir/test_evolution_io.cpp.o"
  "CMakeFiles/test_evolution_io.dir/test_evolution_io.cpp.o.d"
  "test_evolution_io"
  "test_evolution_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evolution_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
