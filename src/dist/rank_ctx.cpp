#include "dist/rank_ctx.hpp"

#include <limits>

#include "common/error.hpp"

namespace dgr::dist {

using bssn::kNumVars;

std::vector<solver::OctRange> runs_of(const std::vector<OctIndex>& octs) {
  std::vector<solver::OctRange> runs;
  for (OctIndex e : octs) {
    if (!runs.empty() && runs.back().second == e)
      runs.back().second = e + 1;
    else
      runs.push_back({e, e + 1});
  }
  return runs;
}

RankCtx::RankCtx(int rank, std::shared_ptr<const mesh::Mesh> mesh,
                 const comm::RankPartition& part, comm::ExchangeMaps maps,
                 const solver::SolverConfig& scfg, bool alloc_stages)
    : rank_(rank),
      mesh_(std::move(mesh)),
      maps_(std::move(maps)),
      owned_begin_(part.owned_begin(rank)),
      owned_end_(part.owned_end(rank)),
      pipeline_(mesh_, scfg) {
  DGR_CHECK(maps_.rank == rank_);
  interior_runs_ = runs_of(maps_.interior);
  boundary_runs_ = runs_of(maps_.boundary);
  for (DofIndex d = 0; d < static_cast<DofIndex>(mesh_->num_dofs()); ++d)
    if (part.rank_of(mesh_->dof_owner(d)) == rank_) owned_dofs_.push_back(d);
  u_.resize(mesh_->num_dofs());
  if (alloc_stages) {
    for (auto& k : k_) k.resize(mesh_->num_dofs());
    stage_.resize(mesh_->num_dofs());
  }
  recv_buf_.resize(part.ranks);
}

double RankCtx::local_finest_spacing() const {
  double h = std::numeric_limits<double>::infinity();
  for (std::size_t e = owned_begin_; e < owned_end_; ++e)
    h = std::min(h, mesh_->octant_spacing(static_cast<OctIndex>(e)));
  return h;
}

void RankCtx::adopt_owned(const bssn::BssnState& global) {
  DGR_CHECK(global.num_dofs() == mesh_->num_dofs());
  u_.resize(mesh_->num_dofs());  // zero everything, then copy owned
  for (int v = 0; v < kNumVars; ++v) {
    Real* dst = u_.field(v);
    const Real* src = global.field(v);
    for (DofIndex d : owned_dofs_) dst[d] = src[d];
  }
}

SimComm::Payload RankCtx::pack_owned() const {
  SimComm::Payload out;
  out.reserve(owned_dofs_.size() * kNumVars);
  for (int v = 0; v < kNumVars; ++v) {
    const Real* f = u_.field(v);
    for (DofIndex d : owned_dofs_) out.push_back(f[d]);
  }
  return out;
}

void RankCtx::post_exchange(SimComm& comm, const bssn::BssnState& u,
                            int tag) {
  DGR_CHECK_MSG(pending_.empty(), "exchange already in flight");
  // Post receives first (as a real code would), then pack and send.
  for (int p : maps_.peers)
    if (!maps_.recv_from[p].empty())
      pending_.push_back(comm.irecv(rank_, p, tag, &recv_buf_[p]));
  for (int p : maps_.peers) {
    const auto& dofs = maps_.send_to[p];
    if (dofs.empty()) continue;
    SimComm::Payload payload;
    payload.reserve(dofs.size() * kNumVars);
    for (int v = 0; v < kNumVars; ++v) {
      const Real* f = u.field(v);
      for (DofIndex d : dofs) payload.push_back(f[d]);
    }
    pending_.push_back(comm.isend(rank_, p, tag, std::move(payload)));
  }
}

void RankCtx::finish_exchange(SimComm& comm, bssn::BssnState& u) {
  comm.wait_all(rank_, pending_);
  pending_.clear();
  for (int p : maps_.peers) {
    const auto& dofs = maps_.recv_from[p];
    if (dofs.empty()) continue;
    SimComm::Payload& buf = recv_buf_[p];
    DGR_CHECK(buf.size() == dofs.size() * kNumVars);
    std::size_t off = 0;
    for (int v = 0; v < kNumVars; ++v) {
      Real* f = u.field(v);
      for (DofIndex d : dofs) f[d] = buf[off++];
    }
    buf.clear();
  }
}

void RankCtx::compute_rhs_interior(const bssn::BssnState& u,
                                   bssn::BssnState& rhs) {
  pipeline_.compute(u, rhs, interior_runs_, nullptr, nullptr);
}

void RankCtx::compute_rhs_boundary(const bssn::BssnState& u,
                                   bssn::BssnState& rhs) {
  pipeline_.compute(u, rhs, boundary_runs_, nullptr, nullptr);
}

}  // namespace dgr::dist
