#include "mesh/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/interp.hpp"

namespace dgr::mesh {

OctIndex PointSampler::locate(Real x, Real y, Real z,
                              std::array<Real, 3>& t) const {
  const oct::Domain& dom = mesh_.domain();
  const Real H = dom.half_extent;
  // Map to the dyadic coordinate system and clamp inside.
  const Real scale = oct::kDomainSize / (2.0 * H);
  Real c[3] = {(x + H) * scale, (y + H) * scale, (z + H) * scale};
  for (int a = 0; a < 3; ++a)
    c[a] = std::clamp(c[a], 0.0, oct::kDomainSize - 1e-9);
  const OctIndex e = mesh_.tree().find_leaf(
      static_cast<oct::Coord>(c[0]), static_cast<oct::Coord>(c[1]),
      static_cast<oct::Coord>(c[2]));
  const oct::TreeNode& leaf = mesh_.tree().leaf(e);
  const Real edge = leaf.edge();
  const Real anchor[3] = {Real(leaf.x), Real(leaf.y), Real(leaf.z)};
  for (int a = 0; a < 3; ++a) {
    t[a] = (c[a] - anchor[a]) / edge * (kR - 1);
    t[a] = std::clamp(t[a], 0.0, Real(kR - 1));
  }
  return e;
}

Real PointSampler::evaluate(const Real* field, Real x, Real y, Real z) {
  Real out;
  evaluate_many(&field, 1, x, y, z, &out);
  return out;
}

void PointSampler::evaluate_many(const Real* const* fields, int nvar, Real x,
                                 Real y, Real z, Real* out) {
  std::array<Real, 3> t;
  const OctIndex e = locate(x, y, z, t);
  Real w[3][kR];
  for (int a = 0; a < 3; ++a)
    for (int m = 0; m < kR; ++m)
      w[a][m] = Prolongation::lagrange(m, t[a]);
  for (int v = 0; v < nvar; ++v) {
    if (cached_oct_ != e || cached_field_ != fields[v]) {
      mesh_.load_octant(fields[v], e, cached_vals_);
      cached_oct_ = e;
      cached_field_ = fields[v];
    }
    Real s = 0;
    for (int k = 0; k < kR; ++k) {
      Real sk = 0;
      for (int j = 0; j < kR; ++j) {
        Real sj = 0;
        for (int i = 0; i < kR; ++i)
          sj += w[0][i] * cached_vals_[oct_idx(i, j, k)];
        sk += w[1][j] * sj;
      }
      s += w[2][k] * sk;
    }
    out[v] = s;
  }
}

}  // namespace dgr::mesh
