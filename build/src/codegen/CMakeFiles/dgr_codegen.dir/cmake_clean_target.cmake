file(REMOVE_RECURSE
  "libdgr_codegen.a"
)
