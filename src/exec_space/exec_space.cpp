#include "exec_space/exec_space.hpp"

#include <cstdlib>

#include "common/parse.hpp"

namespace dgr::exec_space {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSerial: return "serial";
    case Backend::kPool: return "pool";
    case Backend::kSimGpu: return "simgpu";
  }
  return "unknown";
}

Backend parse_backend(const char* s, const char* what) {
  return static_cast<Backend>(
      dgr::parse_choice(s, what, {"serial", "pool", "simgpu"}));
}

Backend backend_from_env() {
  const char* e = std::getenv("DGR_EXEC_SPACE");
  if (!e) return Backend::kPool;
  return parse_backend(e, "DGR_EXEC_SPACE");
}

Backend default_backend() {
  static const Backend cached = backend_from_env();
  return cached;
}

Layout layout_of(Backend b) {
  switch (b) {
    case Backend::kSerial: return {layout_traits<Backend::kSerial>::prefers_soa};
    case Backend::kPool: return {layout_traits<Backend::kPool>::prefers_soa};
    case Backend::kSimGpu: return {layout_traits<Backend::kSimGpu>::prefers_soa};
  }
  return {};
}

namespace detail {
namespace {

// Per-thread slot arena for host-backend sweeps, with a busy flag so a
// nested sweep on the same thread (a kernel body launching another sweep)
// degrades to heap slots instead of resetting the outer sweep's live slots.
thread_local dgr::simgpu::ScratchArena t_slot_arena;
thread_local bool t_slot_arena_busy = false;

}  // namespace

HostSlots::HostSlots(std::size_t n) : data_(nullptr), from_arena_(false) {
  if (!t_slot_arena_busy) {
    t_slot_arena_busy = true;
    from_arena_ = true;
    t_slot_arena.reset();
    data_ = t_slot_arena.get<OpCounts>(n);
  } else {
    fallback_.assign(n, OpCounts{});
    data_ = fallback_.data();
  }
}

HostSlots::~HostSlots() {
  if (from_arena_) t_slot_arena_busy = false;
}

}  // namespace detail

ExecSpace ExecSpace::host() {
  const Backend b = default_backend();
  if (b != Backend::kSimGpu) return ExecSpace(b, nullptr);
  // Accounting-only simulated device, one per driver thread: ensemble
  // runners and dist ranks drive solvers concurrently from pool workers,
  // and kernel-record bookkeeping is a single-driver operation.
  thread_local dgr::simgpu::GpuRuntime t_runtime;
  return ExecSpace(Backend::kSimGpu, &t_runtime);
}

}  // namespace dgr::exec_space
