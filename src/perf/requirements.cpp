#include "perf/requirements.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dgr::perf {

Real merger_time_estimate(Real q, Real separation) {
  DGR_CHECK(q >= 1 && separation > 0);
  // Full-NR merger times quoted by the paper for d = 8.
  if (separation == 8.0) {
    if (q == 1.0) return 650;
    if (q == 4.0) return 700;
    if (q == 16.0) return 1400;
  }
  const Real m1 = q / (1 + q), m2 = 1 / (1 + q);
  const Real t_pn = (5.0 / 256.0) * std::pow(separation, 4) / (m1 * m2);
  // Calibration matching the paper's 2.5PN rows (q = 256 -> 24000 M).
  return 1.16 * t_pn;
}

ResolutionRequirement resolution_requirements(Real q, Real separation,
                                              int points_across) {
  ResolutionRequirement r;
  r.q = q;
  const Real m1 = q / (1 + q), m2 = 1 / (1 + q);
  // Isotropic-coordinate horizon diameter ~ 2 m_i (radius m_i/2 doubled
  // and scaled), resolved by `points_across` points.
  r.dx_small = 2 * m2 / points_across;
  r.dx_large = 2 * m1 / points_across;
  r.merger_time = merger_time_estimate(q, separation);
  r.timesteps = r.merger_time / r.dx_small;  // Table I's dt = dx convention
  return r;
}

std::vector<ResolutionRequirement> table1_rows() {
  std::vector<ResolutionRequirement> rows;
  for (Real q : {1.0, 4.0, 16.0, 64.0, 256.0, 512.0})
    rows.push_back(resolution_requirements(q));
  return rows;
}

}  // namespace dgr::perf
