#pragma once
/// \file strain.hpp
/// \brief Strain from Psi4. Detectors measure h(t); numerical relativity
/// extracts Psi4 = d^2 h / dt^2 (for outgoing radiation at large r), so
/// waveform catalogs double-integrate the extracted modes. We provide
/// time-domain double integration (trapezoidal) with low-order polynomial
/// drift removal — the classic alternative to fixed-frequency integration.

#include <vector>

#include "gw/swsh.hpp"

namespace dgr::gw {

/// Least-squares polynomial fit (degree <= 4) evaluated at the sample
/// points; used to remove the secular drift double integration introduces.
std::vector<Real> polynomial_trend(const std::vector<Real>& t,
                                   const std::vector<Real>& y, int degree);

/// Cumulative trapezoidal integral of a complex series (uniform or
/// non-uniform sampling), zero at the first sample.
std::vector<Complex> integrate_series(const std::vector<Real>& t,
                                      const std::vector<Complex>& y);

/// Double-integrate a Psi4 mode series into strain h = h_plus - i h_cross,
/// removing a degree-`detrend` polynomial drift after each integration.
std::vector<Complex> psi4_to_strain(const std::vector<Real>& t,
                                    const std::vector<Complex>& psi4,
                                    int detrend = 2);

}  // namespace dgr::gw
