# Empty dependencies file for binary_blackhole.
# This may be replaced when dependencies are built.
