#pragma once
/// \file clock.hpp
/// \brief The process-wide monotonic host clock shared by logging and
/// observability (src/obs). Host-domain trace events and the JSON-lines log
/// sink stamp timestamps from the same epoch, so a trace and a log of the
/// same run can be correlated directly.

#include <chrono>

namespace dgr {

/// Microseconds elapsed since the process-wide monotonic epoch (the first
/// call to this function anywhere in the process).
inline double monotonic_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

}  // namespace dgr
