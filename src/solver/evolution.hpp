#pragma once
/// \file evolution.hpp
/// \brief The full evolution driver of Algorithm 1: advance the state in
/// windows of f_r timesteps, re-grid between windows (the only host<->
/// device synchronization point in the paper's design), track the puncture
/// positions through the shift vector, and record gravitational-wave modes
/// at a configurable cadence.

#include <functional>
#include <optional>

#include "gw/extract.hpp"
#include "solver/bssn_ctx.hpp"
#include "solver/regrid.hpp"

namespace dgr::solver {

/// Punctures move opposite the shift: dx/dt = -beta(x) (moving-puncture
/// gauge). The tracker integrates this with RK2 (explicit midpoint): both
/// shift samples are taken on the end-of-step field, so the update stays a
/// pure diagnostic — state and waveform are untouched by the tracker.
class PunctureTracker {
 public:
  explicit PunctureTracker(std::vector<std::array<Real, 3>> positions)
      : positions_(std::move(positions)) {}

  const std::vector<std::array<Real, 3>>& positions() const {
    return positions_;
  }

  /// Advance all puncture positions by dt using the current shift field.
  void step(const mesh::Mesh& mesh, const bssn::BssnState& state, Real dt);

 private:
  std::vector<std::array<Real, 3>> positions_;
};

struct EvolutionConfig {
  Real t_end = 1.0;
  int regrid_every = 16;    ///< f_r of Algorithm 1
  int extract_every = 16;   ///< wave-extraction cadence (paper: every 16)
  RegridConfig regrid;
  /// Depth-local sub-cycled timestepping (BssnCtx::subcycle_cycle): octants
  /// at depth d advance with dt_d = lambda h_min 2^(dmax - d) instead of
  /// every octant paying the finest dt. Off by default — global-dt runs
  /// are bitwise unchanged. When on, regrid_every (and extract_every, if
  /// extraction is enabled) must be multiples of the cycle length
  /// 2^(dmax - dmin): regrid, puncture tracking and wave extraction only
  /// fire on full-cycle boundaries where all depths are time-aligned, and
  /// mid-cycle sampling is rejected.
  bool subcycle = false;
  /// Extraction sphere radii; empty disables extraction.
  std::vector<Real> extraction_radii;
  int lmax = 2;
  /// Observability: every N steps, compute constraint norms and record them
  /// to the installed obs::MetricsRegistry (0 disables; norms are not free,
  /// so this is opt-in and a no-op without a registry).
  int metrics_constraints_every = 0;
};

struct EvolutionResult {
  int steps = 0;
  int regrids = 0;
  /// (l=2, m=2) mode series per extraction radius.
  std::vector<gw::ModeTimeSeries> waves22;
  std::vector<std::array<Real, 3>> final_punctures;
};

/// Run Algorithm 1 on an initialized context. `on_step` (optional) is
/// called after every accepted step with (ctx, tracker).
EvolutionResult evolve(
    BssnCtx& ctx, const EvolutionConfig& config, PunctureTracker* tracker,
    const std::function<void(const BssnCtx&)>& on_step = nullptr);

}  // namespace dgr::solver
