#include "codegen/machine.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace dgr::codegen {

namespace {
constexpr std::size_t kNoUse = std::numeric_limits<std::size_t>::max();

bool is_compute(const Node& n) {
  return n.op != Op::kInput && n.op != Op::kConst;
}
}  // namespace

CompiledKernel::CompiledKernel(const Graph& g,
                               const std::vector<std::int32_t>& outputs,
                               Strategy strategy, int num_regs)
    : strategy_(strategy), num_regs_(num_regs) {
  DGR_CHECK_MSG(num_regs >= 4, "register budget too small");
  const auto order = schedule_nodes(g, outputs, strategy);
  stats_.max_live = max_live_temporaries(g, order, outputs);
  compile(g, outputs, order);
}

void CompiledKernel::compile(const Graph& g,
                             const std::vector<std::int32_t>& outputs,
                             const std::vector<std::int32_t>& order) {
  const std::size_t N = g.size();

  // Use lists: positions in `order` where each value is read.
  std::vector<std::vector<std::size_t>> uses(N);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Node& n = g.node(order[i]);
    if (n.a >= 0) uses[n.a].push_back(i);
    if (n.b >= 0) uses[n.b].push_back(i);
  }
  std::vector<std::size_t> use_ptr(N, 0);
  auto next_use = [&](std::int32_t v, std::size_t i) -> std::size_t {
    const auto& u = uses[v];
    std::size_t p = use_ptr[v];
    while (p < u.size() && u[p] <= i) ++p;
    return p < u.size() ? u[p] : kNoUse;
  };

  // Output positions per node (a node may be stored to several outputs).
  std::unordered_map<std::int32_t, std::vector<std::int32_t>> out_of;
  for (std::size_t o = 0; o < outputs.size(); ++o)
    out_of[outputs[o]].push_back(static_cast<std::int32_t>(o));

  std::vector<std::int32_t> reg_holds(num_regs_, -1);
  std::vector<std::int16_t> in_reg(N, -1);
  std::vector<std::int32_t> spill_slot(N, -1);
  std::vector<int> remaining(N, 0);
  for (std::size_t v = 0; v < N; ++v)
    remaining[v] = static_cast<int>(uses[v].size());

  auto free_reg_of = [&](std::int32_t v) {
    if (in_reg[v] >= 0) {
      reg_holds[in_reg[v]] = -1;
      in_reg[v] = -1;
    }
  };

  auto alloc_reg = [&](std::size_t i, std::int32_t excl_a,
                       std::int32_t excl_b) -> std::int16_t {
    for (std::int16_t r = 0; r < num_regs_; ++r)
      if (reg_holds[r] < 0) return r;
    // Evict the register whose value has the furthest next use (Belady).
    std::int16_t victim = -1;
    std::size_t best = 0;
    for (std::int16_t r = 0; r < num_regs_; ++r) {
      const std::int32_t v = reg_holds[r];
      if (v == excl_a || v == excl_b) continue;
      const std::size_t nu = next_use(v, i);
      if (victim < 0 || nu > best || (nu == best && v < reg_holds[victim])) {
        victim = r;
        best = nu;
      }
    }
    DGR_CHECK_MSG(victim >= 0, "register pressure exceeds budget");
    const std::int32_t v = reg_holds[victim];
    const bool needed_later = next_use(v, i) != kNoUse;
    if (needed_later && is_compute(g.node(v)) && spill_slot[v] < 0) {
      spill_slot[v] = num_spill_slots_++;
      ops_.push_back({MicroOp::kStoreSpill, Op::kAdd, victim, 0, 0,
                      spill_slot[v], 0});
      stats_.spill_store_bytes += sizeof(Real);
    }
    reg_holds[victim] = -1;
    in_reg[v] = -1;
    return victim;
  };

  auto ensure_in_reg = [&](std::int32_t v, std::size_t i, std::int32_t excl_a,
                           std::int32_t excl_b) -> std::int16_t {
    if (in_reg[v] >= 0) return in_reg[v];
    const std::int16_t r = alloc_reg(i, excl_a, excl_b);
    const Node& n = g.node(v);
    if (n.op == Op::kInput) {
      ops_.push_back({MicroOp::kLoadInput, Op::kAdd, r, 0, 0, n.input_id, 0});
    } else if (n.op == Op::kConst) {
      ops_.push_back({MicroOp::kLoadConst, Op::kAdd, r, 0, 0, 0, n.value});
    } else {
      DGR_CHECK_MSG(spill_slot[v] >= 0, "temp value lost without spill slot");
      ops_.push_back(
          {MicroOp::kLoadSpill, Op::kAdd, r, 0, 0, spill_slot[v], 0});
      stats_.spill_load_bytes += sizeof(Real);
    }
    reg_holds[r] = v;
    in_reg[v] = r;
    return r;
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::int32_t id = order[i];
    const Node& n = g.node(id);
    std::int16_t ra = -1, rb = -1;
    if (n.a >= 0) ra = ensure_in_reg(n.a, i, n.a, n.b);
    if (n.b >= 0) rb = ensure_in_reg(n.b, i, n.a, n.b);

    // Consume the operand uses at position i; dead operands release their
    // registers before the destination is allocated (register reuse).
    auto consume = [&](std::int32_t v) {
      if (v < 0) return;
      while (use_ptr[v] < uses[v].size() && uses[v][use_ptr[v]] <= i)
        ++use_ptr[v];
      --remaining[v];
    };
    consume(n.a);
    if (n.b >= 0 && n.b != n.a) consume(n.b);
    auto maybe_free = [&](std::int32_t v) {
      if (v >= 0 && remaining[v] <= 0 && !out_of.count(v)) free_reg_of(v);
    };
    maybe_free(n.a);
    if (n.b != n.a) maybe_free(n.b);

    const std::int16_t rd = alloc_reg(i, n.a >= 0 ? n.a : -1,
                                      n.b >= 0 ? n.b : -1);
    ops_.push_back({MicroOp::kCompute, n.op, rd, ra, rb, 0, 0});
    ++stats_.num_ops;
    reg_holds[rd] = id;
    in_reg[id] = rd;

    if (auto it = out_of.find(id); it != out_of.end()) {
      for (std::int32_t o : it->second)
        ops_.push_back({MicroOp::kStoreOutput, Op::kAdd, rd, 0, 0, o, 0});
      out_of.erase(it);
    }
    if (remaining[id] <= 0) free_reg_of(id);
  }

  // Any output that is a bare input or constant (possible in degenerate
  // parameter choices): store it directly.
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const std::int32_t id = outputs[o];
    if (!is_compute(g.node(id)) && out_of.count(id)) {
      const std::int16_t r = ensure_in_reg(id, order.size(), -1, -1);
      ops_.push_back({MicroOp::kStoreOutput, Op::kAdd, r, 0, 0,
                      static_cast<std::int32_t>(o), 0});
    }
  }
  stats_.spill_slots = num_spill_slots_;
  spill_.resize(std::max(1, num_spill_slots_));
}

namespace {

/// One W-lane pass of the micro-op program over points [pos, pos+W) of an
/// n-point SoA block. Spill slots are W-strided in `spill`. All arithmetic
/// is elementwise, so lane l reproduces run() at point pos+l bitwise.
template <int W>
void run_ops_pack(const std::vector<MicroOp>& ops, const Real* in_soa,
                  Real* out_soa, std::size_t n, std::size_t pos, Real* spill) {
  using P = simd<Real, W>;
  P regs[256];
  for (const MicroOp& op : ops) {
    switch (op.kind) {
      case MicroOp::kLoadInput:
        regs[op.dst] = P::load(in_soa + std::size_t(op.slot) * n + pos);
        break;
      case MicroOp::kLoadConst: regs[op.dst] = P::broadcast(op.cval); break;
      case MicroOp::kLoadSpill:
        regs[op.dst] = P::load(spill + std::size_t(op.slot) * W);
        break;
      case MicroOp::kStoreSpill:
        regs[op.dst].store(spill + std::size_t(op.slot) * W);
        break;
      case MicroOp::kStoreOutput:
        regs[op.dst].store(out_soa + std::size_t(op.slot) * n + pos);
        break;
      case MicroOp::kCompute:
        switch (op.op) {
          case Op::kAdd: regs[op.dst] = regs[op.a] + regs[op.b]; break;
          case Op::kSub: regs[op.dst] = regs[op.a] - regs[op.b]; break;
          case Op::kMul: regs[op.dst] = regs[op.a] * regs[op.b]; break;
          case Op::kDiv: regs[op.dst] = regs[op.a] / regs[op.b]; break;
          case Op::kNeg: regs[op.dst] = -regs[op.a]; break;
          default: break;
        }
        break;
    }
  }
}

}  // namespace

void CompiledKernel::run_block(const Real* inputs_soa, Real* outputs_soa,
                               int n, int width, Real* spill_scratch) const {
  DGR_CHECK(num_regs_ <= 256);
  if (width <= 0) width = simd_active_width();
  if (spill_scratch == nullptr) {
    block_spill_.resize(static_cast<std::size_t>(spill_scratch_size()));
    spill_scratch = block_spill_.data();
  }
  const std::size_t un = static_cast<std::size_t>(n);
  std::size_t pos = 0;
  if (width >= 4)
    for (; pos + 4 <= un; pos += 4)
      run_ops_pack<4>(ops_, inputs_soa, outputs_soa, un, pos, spill_scratch);
  for (; pos < un; ++pos)
    run_ops_pack<1>(ops_, inputs_soa, outputs_soa, un, pos, spill_scratch);
}

void CompiledKernel::run(const Real* inputs, Real* outputs) const {
  Real regs[256];
  DGR_CHECK(num_regs_ <= 256);
  Real* spill = spill_.data();
  for (const MicroOp& op : ops_) {
    switch (op.kind) {
      case MicroOp::kLoadInput: regs[op.dst] = inputs[op.slot]; break;
      case MicroOp::kLoadConst: regs[op.dst] = op.cval; break;
      case MicroOp::kLoadSpill: regs[op.dst] = spill[op.slot]; break;
      case MicroOp::kStoreSpill: spill[op.slot] = regs[op.dst]; break;
      case MicroOp::kStoreOutput: outputs[op.slot] = regs[op.dst]; break;
      case MicroOp::kCompute:
        switch (op.op) {
          case Op::kAdd: regs[op.dst] = regs[op.a] + regs[op.b]; break;
          case Op::kSub: regs[op.dst] = regs[op.a] - regs[op.b]; break;
          case Op::kMul: regs[op.dst] = regs[op.a] * regs[op.b]; break;
          case Op::kDiv: regs[op.dst] = regs[op.a] / regs[op.b]; break;
          case Op::kNeg: regs[op.dst] = -regs[op.a]; break;
          default: break;
        }
        break;
    }
  }
}

}  // namespace dgr::codegen
