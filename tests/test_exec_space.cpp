/// \file test_exec_space.cpp
/// \brief The exec_space backend-equivalence contract: every sweep ported
/// onto dgr::exec_space is bitwise identical across {serial, pool, simgpu}
/// backends × thread counts × SIMD widths, and the layer's primitives
/// (range_for, team_for, reduce, OpCounts slot merge, DGR_EXEC_SPACE knob)
/// behave identically on every backend.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "exec/pool.hpp"
#include "exec_space/bssn_sweeps.hpp"
#include "exec_space/exec_space.hpp"
#include "simgpu/gpu_bssn.hpp"
#include "solver/evolution.hpp"

namespace dgr {
namespace {

using bssn::BssnState;
using exec_space::Backend;
using exec_space::ExecSpace;
using exec_space::LaunchSpec;
using mesh::Mesh;

constexpr Backend kBackends[] = {Backend::kSerial, Backend::kPool,
                                 Backend::kSimGpu};

/// A space for `b`, borrowing `rt` when the simgpu backend is requested.
ExecSpace make_space(Backend b, simgpu::GpuRuntime& rt) {
  switch (b) {
    case Backend::kSerial: return ExecSpace::serial();
    case Backend::kPool: return ExecSpace::pool();
    case Backend::kSimGpu: return ExecSpace::simgpu(rt);
  }
  return ExecSpace::pool();
}

// ------------------------------------------------------------ primitives --

TEST(ExecSpaceBasics, ParseBackendAcceptsExactlyTheThreeNames) {
  EXPECT_EQ(exec_space::parse_backend("serial", "t"), Backend::kSerial);
  EXPECT_EQ(exec_space::parse_backend("pool", "t"), Backend::kPool);
  EXPECT_EQ(exec_space::parse_backend("simgpu", "t"), Backend::kSimGpu);
  for (const char* bad : {"Serial", "gpu", "POOL", "", "pool ", "simgpu2"})
    EXPECT_THROW(exec_space::parse_backend(bad, "t"), Error) << bad;
  EXPECT_THROW(exec_space::parse_backend(nullptr, "t"), Error);
  try {
    exec_space::parse_backend("nope", "DGR_EXEC_SPACE");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DGR_EXEC_SPACE"),
              std::string::npos);
  }
  for (Backend b : kBackends)
    EXPECT_EQ(exec_space::parse_backend(exec_space::backend_name(b), "t"), b);
}

TEST(ExecSpaceBasics, BackendFromEnvIsStrict) {
  // Prime the process-default cache with the ambient knob BEFORE mutating
  // the environment: ExecSpace::host() must keep honoring whatever the
  // process was launched with (the CI exec-space job depends on it).
  const Backend def = exec_space::default_backend();
  const char* orig = std::getenv("DGR_EXEC_SPACE");
  const std::string saved = orig ? orig : "";

  ASSERT_EQ(unsetenv("DGR_EXEC_SPACE"), 0);
  EXPECT_EQ(exec_space::backend_from_env(), Backend::kPool);
  ASSERT_EQ(setenv("DGR_EXEC_SPACE", "serial", 1), 0);
  EXPECT_EQ(exec_space::backend_from_env(), Backend::kSerial);
  ASSERT_EQ(setenv("DGR_EXEC_SPACE", "simgpu", 1), 0);
  EXPECT_EQ(exec_space::backend_from_env(), Backend::kSimGpu);
  for (const char* bad : {"cuda", "Pool", "serial ", "1"}) {
    ASSERT_EQ(setenv("DGR_EXEC_SPACE", bad, 1), 0);
    EXPECT_THROW(exec_space::backend_from_env(), Error) << bad;
  }

  if (orig)
    ASSERT_EQ(setenv("DGR_EXEC_SPACE", saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("DGR_EXEC_SPACE"), 0);
  // host() binds the cached process default; whatever it is, it must be
  // consistent and carry a runtime exactly on the simgpu backend.
  const ExecSpace host = ExecSpace::host();
  EXPECT_EQ(host.backend(), def);
  EXPECT_EQ(host.runtime() != nullptr, host.backend() == Backend::kSimGpu);
}

TEST(ExecSpaceBasics, LayoutTraitsShareTheHostPatchLayout) {
  EXPECT_FALSE(exec_space::layout_of(Backend::kSerial).prefers_soa);
  EXPECT_FALSE(exec_space::layout_of(Backend::kPool).prefers_soa);
  EXPECT_TRUE(exec_space::layout_of(Backend::kSimGpu).prefers_soa);
  EXPECT_EQ(exec_space::patch_offset(2, 3, 24, 100), (2 * 24 + 3) * 100u);
  EXPECT_EQ((exec_space::layout_traits<Backend::kSimGpu>::patch_offset(
                2, 3, 24, 100)),
            exec_space::patch_offset(2, 3, 24, 100));
}

TEST(ExecSpacePrimitives, RangeForCoversChunksIdenticallyOnEveryBackend) {
  const std::int64_t n = 1003, grain = 16;
  std::vector<double> ref;
  for (int threads : {1, 4}) {
    exec::ThreadPool::set_global_threads(threads);
    for (Backend b : kBackends) {
      simgpu::GpuRuntime rt;
      const ExecSpace es = make_space(b, rt);
      std::vector<double> out(static_cast<std::size_t>(n), 0.0);
      OpCounts counts;
      es.range_for(LaunchSpec{"t-range", "t-range", 1, 0}, n, grain, &counts,
                   [&](std::int64_t i0, std::int64_t i1, OpCounts& c) {
                     for (std::int64_t i = i0; i < i1; ++i)
                       out[static_cast<std::size_t>(i)] = std::sin(0.1 * i);
                     c.flops += std::uint64_t(i1 - i0);
                   });
      EXPECT_EQ(counts.flops, std::uint64_t(n)) << threads;
      if (ref.empty())
        ref = out;
      else
        EXPECT_EQ(out, ref) << "backend " << exec_space::backend_name(b)
                            << " threads " << threads;
    }
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(ExecSpacePrimitives, ReduceUsesTheFixedPairwiseTreeOnEveryBackend) {
  const std::int64_t n = 777, grain = 8;
  // Expected value: per-chunk sums combined by the documented pairwise
  // tree (NOT plain left-to-right accumulation — FP addition is not
  // associative, so the two orders genuinely differ here).
  std::vector<double> slot;
  for (std::int64_t b = 0; b < n; b += grain) {
    double s = 0;
    for (std::int64_t i = b; i < std::min(n, b + grain); ++i)
      s += std::sin(0.01 * i) * 1e-3 + 1.0;
    slot.push_back(s);
  }
  for (std::int64_t width = static_cast<std::int64_t>(slot.size()); width > 1;
       width = (width + 1) / 2) {
    for (std::int64_t i = 0; 2 * i < width; ++i)
      slot[static_cast<std::size_t>(i)] =
          (2 * i + 1 < width)
              ? slot[static_cast<std::size_t>(2 * i)] +
                    slot[static_cast<std::size_t>(2 * i + 1)]
              : slot[static_cast<std::size_t>(2 * i)];
  }
  const double expected = slot[0];

  for (int threads : {1, 4}) {
    exec::ThreadPool::set_global_threads(threads);
    for (Backend b : kBackends) {
      simgpu::GpuRuntime rt;
      const ExecSpace es = make_space(b, rt);
      const double got = es.reduce(
          LaunchSpec{"t-reduce", "t-reduce", 1, 0}, n, grain, 0.0,
          [&](std::int64_t i0, std::int64_t i1) {
            double s = 0;
            for (std::int64_t i = i0; i < i1; ++i)
              s += std::sin(0.01 * i) * 1e-3 + 1.0;
            return s;
          },
          [](double x, double y) { return x + y; });
      EXPECT_EQ(got, expected) << "backend " << exec_space::backend_name(b)
                               << " threads " << threads;
    }
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(ExecSpacePrimitives, TeamForDeliversLaneAndVectorPolicy) {
  exec::ThreadPool::set_global_threads(4);
  for (Backend b : kBackends) {
    simgpu::GpuRuntime rt;
    ExecSpace es = make_space(b, rt);
    es.set_vector_policy({4});
    EXPECT_EQ(es.vector_policy().width, 4);
    const int lanes = es.max_lanes();
    std::vector<int> lane_of(64, -1);
    es.team_for(LaunchSpec{"t-team", "t-team", 1, 0}, 64, 4, nullptr,
                [&](const exec_space::TeamMember& tm, std::int64_t i0,
                    std::int64_t i1, OpCounts&) {
                  EXPECT_EQ(tm.vector_width(), 4);
                  EXPECT_GE(tm.lane(), 0);
                  EXPECT_LT(tm.lane(), lanes);
                  for (std::int64_t i = i0; i < i1; ++i)
                    lane_of[static_cast<std::size_t>(i)] = tm.lane();
                });
    for (int l : lane_of) EXPECT_GE(l, 0);
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(ExecSpacePrimitives, NestedSweepsFallBackSafely) {
  // A kernel body opening another sweep on the same thread must not
  // corrupt the outer sweep's arena-backed OpCounts slots.
  for (Backend b : {Backend::kSerial, Backend::kPool}) {
    simgpu::GpuRuntime rt;
    const ExecSpace es = make_space(b, rt);
    OpCounts outer;
    es.range_for(LaunchSpec{"t-outer", "t-outer", 1, 0}, 8, 1, &outer,
                 [&](std::int64_t i0, std::int64_t i1, OpCounts& c) {
                   OpCounts inner;
                   ExecSpace::serial().range_for(
                       LaunchSpec{"t-inner", "t-inner", 1, 0}, 4, 1, &inner,
                       [&](std::int64_t, std::int64_t, OpCounts& ic) {
                         ic.flops += 1;
                       });
                   EXPECT_EQ(inner.flops, 4u);
                   c.flops += std::uint64_t(i1 - i0);
                 });
    EXPECT_EQ(outer.flops, 8u);
  }
}

TEST(ExecSpacePrimitives, SimGpuBackendRecordsKernelLaunches) {
  simgpu::GpuRuntime rt;
  const ExecSpace es = ExecSpace::simgpu(rt);
  ASSERT_EQ(es.runtime(), &rt);
  OpCounts out;
  es.range_for(LaunchSpec{"t-kernel", nullptr, 7, 2}, 32, 8, &out,
               [&](std::int64_t i0, std::int64_t i1, OpCounts& c) {
                 c.flops += std::uint64_t(i1 - i0) * 3;
               });
  ASSERT_TRUE(rt.has_kernel("t-kernel"));
  const auto& rec = rt.record("t-kernel");
  EXPECT_EQ(rec.launches, 1);
  EXPECT_EQ(rec.blocks, 7u);
  EXPECT_EQ(rec.stream, 2);
  EXPECT_EQ(rec.counts.flops, 96u);
  EXPECT_EQ(out.flops, 96u);  // chunk-order merge also feeds the out-param
}

// --------------------------------------------- backend-equivalence matrix --

std::shared_ptr<Mesh> puncture_mesh() {
  oct::Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
}

void init_puncture(const Mesh& m, BssnState& s) {
  s.resize(m.num_dofs());
  bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
}

/// Two RK4 steps of the fused-SIMD pipeline on backend `b` at the given
/// thread count and SIMD width.
BssnState run_rk4(Backend b, int threads, int width) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  scfg.rhs_kernel = solver::RhsKernel::kStagedFusedSimd;
  scfg.simd_width = width;
  simgpu::GpuRuntime rt;
  solver::BssnCtx ctx(m, scfg, make_space(b, rt));
  init_puncture(*m, ctx.state());
  ctx.rk4_step();
  ctx.rk4_step();
  return ctx.state();
}

TEST(ExecSpaceMatrix, Rk4IsBitwiseIdenticalAcrossBackendsThreadsAndWidths) {
  const BssnState ref = run_rk4(Backend::kSerial, 1, 1);
  ASSERT_GT(ref.num_dofs(), 0u);
  for (Backend b : kBackends)
    for (int threads : {1, 4})
      for (int width : {1, 4}) {
        if (b == Backend::kSerial && threads == 1 && width == 1) continue;
        const BssnState run = run_rk4(b, threads, width);
        EXPECT_EQ(run.max_abs_diff(ref), 0.0)
            << exec_space::backend_name(b) << " threads " << threads
            << " width " << width;
      }
  exec::ThreadPool::set_global_threads(1);
}

/// A short evolution with a mid-run regrid (remesh + transfer_state) on
/// backend `b`.
BssnState run_evolve(Backend b, int threads) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  simgpu::GpuRuntime rt;
  solver::BssnCtx ctx(m, scfg, make_space(b, rt));
  init_puncture(*m, ctx.state());
  solver::EvolutionConfig ecfg;
  ecfg.t_end = 4.1 * ctx.suggested_dt();
  ecfg.regrid_every = 3;
  ecfg.regrid.max_level = 3;
  const auto res = solver::evolve(ctx, ecfg, nullptr);
  EXPECT_GE(res.steps, 4);
  return ctx.state();
}

TEST(ExecSpaceMatrix, EvolveThroughRegridIsBitwiseIdenticalAcrossBackends) {
  const BssnState ref = run_evolve(Backend::kSerial, 1);
  for (Backend b : kBackends)
    for (int threads : {1, 4}) {
      if (b == Backend::kSerial && threads == 1) continue;
      const BssnState run = run_evolve(b, threads);
      ASSERT_EQ(run.num_dofs(), ref.num_dofs());
      EXPECT_EQ(run.max_abs_diff(ref), 0.0)
          << exec_space::backend_name(b) << " threads " << threads;
    }
  exec::ThreadPool::set_global_threads(1);
}

/// One sub-cycled coarse step (multi-depth mesh => stage fill, dense save
/// and depth-restricted update all execute) on backend `b`.
BssnState run_subcycle(Backend b, int threads) {
  exec::ThreadPool::set_global_threads(threads);
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  simgpu::GpuRuntime rt;
  solver::BssnCtx ctx(m, scfg, make_space(b, rt));
  init_puncture(*m, ctx.state());
  EXPECT_GT(ctx.subcycle_index().cycle(), 1);
  ctx.subcycle_cycle(ctx.suggested_dt());
  return ctx.state();
}

TEST(ExecSpaceMatrix, SubcycleCycleIsBitwiseIdenticalAcrossBackends) {
  const BssnState ref = run_subcycle(Backend::kSerial, 1);
  for (Backend b : kBackends)
    for (int threads : {1, 4}) {
      if (b == Backend::kSerial && threads == 1) continue;
      const BssnState run = run_subcycle(b, threads);
      EXPECT_EQ(run.max_abs_diff(ref), 0.0)
          << exec_space::backend_name(b) << " threads " << threads;
    }
  exec::ThreadPool::set_global_threads(1);
}

/// The simgpu space used from BssnCtx must record the same kernel launch
/// sequence as the dedicated GpuBssnSolver for the same work — the sweeps
/// are the same bodies.
TEST(ExecSpaceMatrix, SimGpuSpaceMatchesGpuSolverKernelAccounting) {
  exec::ThreadPool::set_global_threads(1);
  auto m = puncture_mesh();

  simgpu::GpuSolverConfig gcfg;
  gcfg.bssn.ko_sigma = 0.3;
  simgpu::GpuBssnSolver gpu(m, gcfg);
  BssnState init;
  init_puncture(*m, init);
  gpu.upload(init);
  gpu.rk4_step();

  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  simgpu::GpuRuntime rt;
  solver::BssnCtx ctx(m, scfg, ExecSpace::simgpu(rt));
  init_puncture(*m, ctx.state());
  ctx.rk4_step(gpu.suggested_dt());

  EXPECT_EQ(ctx.state().max_abs_diff(gpu.device_state()), 0.0);
  for (const char* k :
       {"octant-to-patch", "bssn-rhs", "patch-to-octant", "axpy"}) {
    ASSERT_TRUE(rt.has_kernel(k)) << k;
    ASSERT_TRUE(gpu.runtime().has_kernel(k)) << k;
    const auto& a = rt.record(k);
    const auto& b = gpu.runtime().record(k);
    EXPECT_EQ(a.launches, b.launches) << k;
    EXPECT_EQ(a.blocks, b.blocks) << k;
    EXPECT_EQ(a.counts.flops, b.counts.flops) << k;
    EXPECT_EQ(a.counts.bytes_read, b.counts.bytes_read) << k;
    EXPECT_EQ(a.counts.bytes_written, b.counts.bytes_written) << k;
  }
}

}  // namespace
}  // namespace dgr
