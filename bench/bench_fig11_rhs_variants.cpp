/// \file bench_fig11_rhs_variants.cpp
/// \brief Regenerates Fig. 11: time per octant for 10 RHS evaluations using
/// the SymPyGR-CSE baseline, binary-reduce, and staged+CSE generated
/// kernels (register-machine execution with 56 registers), plus the
/// hand-compiled production kernel for reference.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "codegen/bssn_graph.hpp"
#include "codegen/interp_rhs.hpp"
#include "common/timer.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  using namespace dgr::codegen;
  bench::header("Fig. 11", "RHS evaluation: codegen variants, 10 evals/octant");
  bench::Reporter rep("fig11_rhs_variants", argc, argv);

  const auto bg = build_bssn_algebra_graph();
  std::vector<std::int32_t> roots(bg.outputs.begin(), bg.outputs.end());
  const CompiledKernel kernels[] = {
      CompiledKernel(bg.graph, roots, Strategy::kSympygrCse),
      CompiledKernel(bg.graph, roots, Strategy::kBinaryReduce),
      CompiledKernel(bg.graph, roots, Strategy::kStagedCse)};

  // Synthetic near-flat patches (RHS cost is grid-independent, §V-A).
  constexpr int kVars = bssn::kNumVars;
  std::vector<Real> in(std::size_t(kVars) * mesh::kPatchPts);
  std::vector<Real> out(in.size());
  for (int v = 0; v < kVars; ++v)
    for (int p = 0; p < mesh::kPatchPts; ++p)
      in[std::size_t(v) * mesh::kPatchPts + p] =
          bssn::var_asymptotic(v) + 1e-3 * std::sin(0.1 * p + v);
  const Real* pi[kVars];
  Real* po[kVars];
  for (int v = 0; v < kVars; ++v) {
    pi[v] = &in[std::size_t(v) * mesh::kPatchPts];
    po[v] = &out[std::size_t(v) * mesh::kPatchPts];
  }
  mesh::PatchGeom geom{{0, 0, 0}, 0.05};
  bssn::BssnParams prm;
  prm.sommerfeld = false;
  bssn::DerivWorkspace ws;

  std::printf(
      "  octants | sympygr-cse | binary-reduce | staged-cse | compiled || "
      "speedups (paper 1.00 / 1.55 / 1.76)\n");
  std::printf("          |   (ms/octant for 10 RHS evaluations)\n");
  for (int noct : {8, 16, 32}) {
    double times[3];
    for (int s = 0; s < 3; ++s) {
      WallTimer t;
      for (int e = 0; e < noct; ++e)
        for (int rep = 0; rep < 10; ++rep)
          bssn_rhs_patch_interp(pi, po, geom, prm, ws, kernels[s]);
      times[s] = t.milliseconds() / noct;
    }
    WallTimer t;
    for (int e = 0; e < noct; ++e)
      for (int rep = 0; rep < 10; ++rep)
        bssn::bssn_rhs_patch(pi, po, geom, 1e9, prm, ws);
    const double t_comp = t.milliseconds() / noct;
    const std::string oc = std::to_string(noct);
    rep.pair("speedup_binary_reduce_" + oc, 1.55, times[0] / times[1], "x");
    rep.pair("speedup_staged_cse_" + oc, 1.76, times[0] / times[2], "x");
    rep.metric("compiled_ms_per_octant_" + oc, t_comp);
    std::printf(
        "  %-7d | %-11.2f | %-13.2f | %-10.2f | %-8.2f || 1.00 / %.2f / "
        "%.2f\n",
        noct, times[0], times[1], times[2], t_comp, times[0] / times[1],
        times[0] / times[2]);
  }
  bench::note("per-octant cost is constant in octant count (as in the paper's");
  bench::note("flat curves); spill traffic costs explicit load/store micro-ops");
  bench::note("in the register machine, so fewer spills -> faster kernels.");
  return 0;
}
