#pragma once
/// \file interp_rhs.hpp
/// \brief Patch-level BSSN RHS evaluation through a scheduled register-
/// machine program (the paper's generated-kernel path). Used by the
/// Table II / Fig. 11 benchmarks to time the three code-generation variants
/// with spills costing real work, and cross-validated against the compiled
/// kernel in the tests.

#include "bssn/rhs.hpp"
#include "codegen/machine.hpp"

namespace dgr::codegen {

/// Evaluate the full RHS of one patch with the derivative stage followed by
/// the interpreted algebraic stage. Semantics match `bssn_rhs_patch` with
/// the same parameters and Sommerfeld disabled (the boundary overwrite is a
/// host-side concern, not part of the generated kernel).
void bssn_rhs_patch_interp(const Real* const in[bssn::kNumVars],
                           Real* const out[bssn::kNumVars],
                           const mesh::PatchGeom& geom,
                           const bssn::BssnParams& params,
                           bssn::DerivWorkspace& ws,
                           const CompiledKernel& kernel,
                           OpCounts* counts = nullptr);

}  // namespace dgr::codegen
