#pragma once
/// \file treenode.hpp
/// \brief Dyadic octants (nodes of a linear octree) with Morton/space-filling
/// curve ordering — the substrate of §III-B/§III-C of the paper.
///
/// An octant is identified by its anchor (minimum corner) in integer dyadic
/// coordinates of a fixed-depth coordinate system, plus its level. The root
/// octant is the whole domain at level 0. Level l octants have edge length
/// 2^(kMaxDepth - l) dyadic units.

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>

#include "common/error.hpp"

namespace dgr::oct {

/// Maximum refinement depth of the dyadic coordinate system. 16 keeps anchor
/// coordinates comfortably inside 32 bits and point coordinates (×6, see
/// mesh/) inside 32 bits, while allowing far deeper trees than any bench here
/// instantiates.
inline constexpr int kMaxDepth = 16;

/// Dyadic coordinate type; valid values are [0, 2^kMaxDepth].
using Coord = std::uint32_t;

/// Domain extent in dyadic units.
inline constexpr Coord kDomainSize = Coord{1} << kMaxDepth;

/// A node of the octree (an "octant" in the paper's nomenclature).
struct TreeNode {
  Coord x = 0, y = 0, z = 0;  ///< anchor (minimum corner), dyadic units
  std::uint8_t level = 0;     ///< refinement level, 0 = root

  TreeNode() = default;
  TreeNode(Coord x_, Coord y_, Coord z_, std::uint8_t lvl)
      : x(x_), y(y_), z(z_), level(lvl) {
    DGR_CHECK_MSG(lvl <= kMaxDepth, "octant level exceeds kMaxDepth");
    const Coord e = edge();
    DGR_CHECK_MSG((x % e) == 0 && (y % e) == 0 && (z % e) == 0,
                  "octant anchor not aligned to its level");
    DGR_CHECK_MSG(x < kDomainSize && y < kDomainSize && z < kDomainSize,
                  "octant anchor outside domain");
  }

  /// Edge length in dyadic units.
  Coord edge() const { return kDomainSize >> level; }

  bool operator==(const TreeNode& o) const {
    return x == o.x && y == o.y && z == o.z && level == o.level;
  }
  bool operator!=(const TreeNode& o) const { return !(*this == o); }

  /// Parent octant (level-1). Root has no parent.
  TreeNode parent() const {
    DGR_CHECK(level > 0);
    const Coord pe = kDomainSize >> (level - 1);
    return TreeNode((x / pe) * pe, (y / pe) * pe, (z / pe) * pe,
                    static_cast<std::uint8_t>(level - 1));
  }

  /// Child c (c in [0,8), bit 0 → +x half, bit 1 → +y, bit 2 → +z).
  TreeNode child(int c) const {
    DGR_CHECK(level < kMaxDepth && c >= 0 && c < 8);
    const Coord he = edge() / 2;
    return TreeNode(x + ((c & 1) ? he : 0), y + ((c & 2) ? he : 0),
                    z + ((c & 4) ? he : 0), static_cast<std::uint8_t>(level + 1));
  }

  /// Which child of its parent this octant is.
  int child_id() const {
    DGR_CHECK(level > 0);
    const Coord he = edge();
    return ((x / he) & 1) | (((y / he) & 1) << 1) | (((z / he) & 1) << 2);
  }

  /// True if \p o lies strictly inside this octant's subtree.
  bool is_ancestor_of(const TreeNode& o) const {
    if (o.level <= level) return false;
    const Coord e = edge();
    return (o.x >= x && o.x < x + e) && (o.y >= y && o.y < y + e) &&
           (o.z >= z && o.z < z + e);
  }

  /// True if \p o is this octant or inside its subtree.
  bool contains(const TreeNode& o) const {
    return *this == o || is_ancestor_of(o);
  }

  /// True if the dyadic point (px,py,pz) lies in [anchor, anchor+edge).
  bool contains_point(Coord px, Coord py, Coord pz) const {
    const Coord e = edge();
    return px >= x && px < x + e && py >= y && py < y + e && pz >= z &&
           pz < z + e;
  }

  /// True if the two octant closures (including boundary faces) intersect.
  bool touches(const TreeNode& o) const {
    const Coord e = edge(), oe = o.edge();
    return x <= o.x + oe && o.x <= x + e && y <= o.y + oe && o.y <= y + e &&
           z <= o.z + oe && o.z <= z + e;
  }

  /// Neighbor octant at the same level, offset by (dx,dy,dz) octant edges.
  /// Returns false if the neighbor would fall outside the domain.
  bool neighbor(int dx, int dy, int dz, TreeNode& out) const {
    const auto off = [&](Coord c, int d, Coord e) -> std::int64_t {
      return static_cast<std::int64_t>(c) + static_cast<std::int64_t>(d) * e;
    };
    const Coord e = edge();
    const std::int64_t nx = off(x, dx, e), ny = off(y, dy, e), nz = off(z, dz, e);
    if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<std::int64_t>(kDomainSize) ||
        ny >= static_cast<std::int64_t>(kDomainSize) ||
        nz >= static_cast<std::int64_t>(kDomainSize))
      return false;
    out = TreeNode(static_cast<Coord>(nx), static_cast<Coord>(ny),
                   static_cast<Coord>(nz), level);
    return true;
  }

  /// 64-bit Morton key of the anchor at kMaxDepth resolution (bit-interleave
  /// of x, y, z). Ancestors share the key of their first-child chain, so the
  /// SFC comparator below breaks ties by level (coarse first) to obtain the
  /// pre-order traversal of the tree.
  std::uint64_t morton() const {
    auto spread = [](std::uint64_t v) {
      // Standard 21-bit 3D bit-spread (we only need kMaxDepth = 16 bits).
      v &= 0x1fffffULL;
      v = (v | (v << 32)) & 0x001f00000000ffffULL;
      v = (v | (v << 16)) & 0x001f0000ff0000ffULL;
      v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
      v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
      v = (v | (v << 2)) & 0x1249249249249249ULL;
      return v;
    };
    return spread(x) | (spread(y) << 1) | (spread(z) << 2);
  }
};

/// Space-filling-curve ("Morton / pre-order") comparator for linear octrees:
/// sorts by Morton key of the anchor; an ancestor precedes its descendants.
struct SfcLess {
  bool operator()(const TreeNode& a, const TreeNode& b) const {
    const std::uint64_t ka = a.morton(), kb = b.morton();
    if (ka != kb) return ka < kb;
    return a.level < b.level;
  }
};

inline std::ostream& operator<<(std::ostream& os, const TreeNode& t) {
  return os << "oct(" << t.x << "," << t.y << "," << t.z
            << ";L=" << int(t.level) << ")";
}

}  // namespace dgr::oct

namespace std {
template <>
struct hash<dgr::oct::TreeNode> {
  size_t operator()(const dgr::oct::TreeNode& t) const noexcept {
    // Morton key is unique given (anchor,level) except along first-child
    // chains; mix the level in.
    return static_cast<size_t>(t.morton() * 1315423911ULL) ^
           (static_cast<size_t>(t.level) << 1);
  }
};
}  // namespace std
