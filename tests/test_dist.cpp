/// \file test_dist.cpp
/// \brief Simulated multi-rank engine tests: message routing and
/// virtual-clock accounting in SimComm, hierarchical network selection,
/// exchange-map invariants, overlap measurement, and the headline
/// guarantee — the N-rank overlapped RK4 path is bitwise-identical to the
/// single-rank solver::evolve path, through a regrid.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "bssn/initial_data.hpp"
#include "dist/engine.hpp"
#include "solver/evolution.hpp"

namespace dgr::dist {
namespace {

using bssn::BssnState;
using mesh::Mesh;
using oct::Domain;
using oct::Octree;

std::shared_ptr<Mesh> puncture_mesh(int finest = 3, int base = 2) {
  Domain dom{16.0};
  return std::make_shared<Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, finest}}, base),
      dom);
}

void init_puncture(const Mesh& m, BssnState& s) {
  s.resize(m.num_dofs());
  bssn::set_punctures(m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
}

TEST(SimComm, DeliversPayloadAndLogs) {
  SimComm comm(2, perf::flat_network(perf::infiniband()));
  SimComm::Payload in = {1.0, 2.5, -3.0}, out;
  std::vector<SimComm::Request> reqs;
  reqs.push_back(comm.irecv(0, 1, 7, &out));
  std::vector<SimComm::Request> sends;
  sends.push_back(comm.isend(1, 0, 7, in));
  comm.wait_all(0, reqs);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], -3.0);
  ASSERT_EQ(comm.log().size(), 1u);
  EXPECT_EQ(comm.log()[0].src, 1);
  EXPECT_EQ(comm.log()[0].dst, 0);
  EXPECT_EQ(comm.log()[0].bytes, 3 * sizeof(Real));
  // The receiver stalled for the full transit: all exposed, nothing hidden.
  EXPECT_GT(comm.stats(0).t_comm_exposed, 0.0);
  EXPECT_EQ(comm.stats(0).t_comm_hidden, 0.0);
  EXPECT_DOUBLE_EQ(comm.clock(0), comm.log()[0].t_ready);
}

TEST(SimComm, OverlappedComputeHidesTransit) {
  SimComm comm(2, perf::flat_network(perf::infiniband()));
  SimComm::Payload out;
  std::vector<SimComm::Request> reqs;
  reqs.push_back(comm.irecv(0, 1, 0, &out));
  comm.isend(1, 0, 0, SimComm::Payload(1024, 1.0));
  const double transit =
      perf::infiniband().time(1024 * sizeof(Real), 1);
  comm.advance(0, 10 * transit);  // interior compute while in flight
  comm.wait_all(0, reqs);
  EXPECT_EQ(comm.stats(0).t_comm_exposed, 0.0);
  EXPECT_GT(comm.stats(0).t_comm_hidden, 0.0);
  // Clock advanced by compute only — the message arrived earlier.
  EXPECT_DOUBLE_EQ(comm.clock(0), 10 * transit);
}

TEST(SimComm, AllreduceSynchronizesClocks) {
  SimComm comm(4, perf::gpu_cluster(2));
  comm.advance(2, 1.0);  // straggler
  const double v = comm.allreduce_min({4.0, 2.0, 8.0, 3.0});
  EXPECT_EQ(v, 2.0);
  const double cost =
      perf::gpu_cluster(2).allreduce_time(4, sizeof(double));
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(comm.clock(r), 1.0 + cost);
  EXPECT_GT(comm.stats(0).t_collective, comm.stats(2).t_collective);
}

TEST(HierarchicalNetwork, LinkSelectionByRankDistance) {
  const auto net = perf::gpu_cluster(4);
  EXPECT_TRUE(net.same_node(0, 3));
  EXPECT_FALSE(net.same_node(3, 4));
  const std::uint64_t mb = 1 << 20;
  EXPECT_LT(net.time(0, 3, mb), net.time(3, 4, mb));  // NVLink beats IB
  // log2 tree: 8 ranks -> 3 rounds up + 3 down.
  const double t8 = net.allreduce_time(8, 8);
  EXPECT_DOUBLE_EQ(t8, 6 * perf::infiniband().time(8, 1));
  EXPECT_EQ(net.allreduce_time(1, 8), 0.0);
  // Within one node the tree uses the intra link.
  EXPECT_DOUBLE_EQ(net.allreduce_time(2, 8),
                   2 * perf::nvlink().time(8, 1));
}

TEST(ExchangeMaps, TransposeAndOwnershipInvariants) {
  auto m = puncture_mesh();
  const auto part = comm::partition_mesh(*m, 4);
  const auto maps = comm::build_exchange_maps(*m, part);
  for (int r = 0; r < 4; ++r) {
    // interior + boundary partition the owned range.
    EXPECT_EQ(maps[r].interior.size() + maps[r].boundary.size(),
              part.owned_end(r) - part.owned_begin(r));
    for (int p = 0; p < 4; ++p) {
      // send/recv lists are transposes of each other.
      EXPECT_EQ(maps[r].send_to[p], maps[p].recv_from[r]);
      // Received DOFs are owned by the sending peer, never by us.
      for (DofIndex d : maps[r].recv_from[p]) {
        EXPECT_EQ(part.rank_of(m->dof_owner(d)), p);
        EXPECT_NE(part.rank_of(m->dof_owner(d)), r);
      }
    }
    // Ghost octant lists agree with the octant-level halo accounting.
    EXPECT_EQ(maps[r].ghost_octants.size(), part.ghost_octants[r]);
  }
}

TEST(ExchangeMaps, MultiRankHasRemoteTraffic) {
  auto m = puncture_mesh();
  const auto part = comm::partition_mesh(*m, 3);
  const auto maps = comm::build_exchange_maps(*m, part);
  for (int r = 0; r < 3; ++r) {
    EXPECT_FALSE(maps[r].peers.empty());
    EXPECT_GT(maps[r].recv_dofs(), 0u);
    EXPECT_GT(maps[r].boundary.size(), 0u);
  }
}

/// The headline acceptance test: N simulated ranks running the overlapped
/// schedule reproduce the single-rank solver::evolve state bit for bit,
/// across >= 8 steps and a regrid.
TEST(DistEvolve, BitwiseMatchesSingleRankThroughRegrid) {
  auto m = puncture_mesh();
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;

  // Reference: the single-rank Algorithm 1 driver.
  solver::BssnCtx ctx(m, scfg);
  init_puncture(*m, ctx.state());
  solver::EvolutionConfig ecfg;
  ecfg.t_end = 8.2 * ctx.suggested_dt();
  ecfg.regrid_every = 4;
  ecfg.regrid.eps = 2e-3;
  ecfg.regrid.min_level = 2;
  ecfg.regrid.max_level = 3;  // keep dt constant across the regrid
  const auto ref = solver::evolve(ctx, ecfg, nullptr);
  ASSERT_GE(ref.steps, 8);
  ASSERT_GE(ref.regrids, 1);

  BssnState initial;
  init_puncture(*m, initial);
  for (int ranks : {2, 4, 7}) {
    DistConfig dcfg;
    dcfg.ranks = ranks;
    dcfg.t_end = ecfg.t_end;
    dcfg.regrid_every = ecfg.regrid_every;
    dcfg.regrid = ecfg.regrid;
    dcfg.sec_per_octant = 1e-5;
    const auto dist = evolve_distributed(m, initial, scfg, dcfg);
    EXPECT_EQ(dist.steps, ref.steps) << ranks;
    EXPECT_EQ(dist.regrids, ref.regrids) << ranks;
    ASSERT_EQ(dist.state.num_dofs(), ctx.mesh().num_dofs()) << ranks;
    EXPECT_EQ(dist.state.max_abs_diff(ctx.state()), 0.0) << ranks;
    // The schedule really overlapped: hidden communication on >= 2 ranks.
    int ranks_with_hidden = 0;
    for (const auto& rep : dist.ranks)
      if (rep.stats.t_comm_hidden > 0) ++ranks_with_hidden;
    EXPECT_GE(ranks_with_hidden, 2) << ranks;
    EXPECT_GT(dist.messages, 0u);
    EXPECT_GT(dist.t_virtual, 0.0);
  }
}

TEST(DistEvolve, SingleRankDegeneratesGracefully) {
  auto m = puncture_mesh(3, 2);
  solver::SolverConfig scfg;
  scfg.bssn.ko_sigma = 0.3;
  solver::BssnCtx ctx(m, scfg);
  init_puncture(*m, ctx.state());
  const Real dt = ctx.suggested_dt();
  ctx.rk4_step(dt);

  BssnState initial;
  init_puncture(*m, initial);
  DistConfig dcfg;
  dcfg.ranks = 1;
  dcfg.t_end = dt;  // exactly one step, no regrid window completes
  dcfg.regrid_every = 8;
  const auto dist = evolve_distributed(m, initial, scfg, dcfg);
  EXPECT_EQ(dist.steps, 1);
  EXPECT_EQ(dist.messages, 0u);  // one rank, no peers
  EXPECT_EQ(dist.state.max_abs_diff(ctx.state()), 0.0);
}

TEST(DistEvolve, ScheduleOnlyModeExecutesExchanges) {
  auto m = puncture_mesh();
  BssnState initial;
  init_puncture(*m, initial);
  solver::SolverConfig scfg;
  DistConfig dcfg;
  dcfg.ranks = 4;
  dcfg.execute = false;
  dcfg.schedule_evals = 20;  // 5 RK4 steps' worth of exchanges
  dcfg.sec_per_octant = 1e-5;
  const auto res = evolve_distributed(m, initial, scfg, dcfg);
  EXPECT_EQ(res.rhs_evals, 20);
  EXPECT_EQ(res.steps, 0);
  EXPECT_GT(res.messages, 0u);
  EXPECT_GT(res.bytes, 0u);
  EXPECT_GT(res.t_virtual, 0.0);
  // Virtual clock covers the modeled compute of every evaluation.
  for (const auto& rep : res.ranks) {
    EXPECT_NEAR(rep.stats.t_compute,
                20 * 1e-5 * double(rep.owned), 1e-12);
    EXPECT_GT(rep.stats.t_comm_hidden, 0.0);
  }
}

}  // namespace
}  // namespace dgr::dist
