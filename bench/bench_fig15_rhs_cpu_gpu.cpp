/// \file bench_fig15_rhs_cpu_gpu.cpp
/// \brief Regenerates Fig. 15: wall-clock time to compute padding zones and
/// evaluate the RHS 10 times — one A100 vs a two-socket EPYC 7763 node —
/// for grids with an increasing number of octants. Both devices are
/// evaluated with the §III-D finite-cache model applied to the same
/// measured op counts (the host-measured single-core time is printed for
/// reference).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 15", "padding + 10 RHS evaluations: A100 vs EPYC node");
  bench::Reporter rep("fig15_rhs_cpu_gpu", argc, argv);

  const perf::MachineModel a100 = perf::a100();
  const perf::MachineModel epyc = perf::epyc7763_node();
  std::printf(
      "  grid | octants | A100 model (ms) | EPYC node model (ms) | speedup | "
      "host 1-core (ms)\n");
  for (int fam = 1; fam <= 3; ++fam) {
    auto m = bench::adaptivity_mesh(fam);
    simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
    bssn::BssnState s;
    bssn::set_minkowski(*m, s);
    gpu.upload(s);
    // One compute_rhs per rk4 stage: 10 RHS evaluations ~ 2.5 RK4 steps;
    // run the pipeline pieces directly by stepping 10 quarter-steps worth.
    WallTimer t;
    for (int i = 0; i < 2; ++i) gpu.rk4_step(1e-6);  // 8 RHS evaluations
    // plus two more evals via an extra half measurement: scale to 10.
    const double host_ms = t.milliseconds() * (10.0 / 8.0);
    const double scale = 10.0 / 8.0;  // 8 evaluations recorded
    const auto& o2p = gpu.runtime().record("octant-to-patch");
    const auto& rhs = gpu.runtime().record("bssn-rhs");
    const double a100_ms =
        (o2p.modeled_seconds(a100) + rhs.modeled_seconds(a100)) * 1e3 * scale;
    const double epyc_ms =
        (o2p.modeled_seconds(epyc) + rhs.modeled_seconds(epyc)) * 1e3 * scale;
    const std::string g = "m" + std::to_string(fam);
    rep.pair("gpu_speedup_" + g, 4.0, epyc_ms / a100_ms, "x");
    rep.metric("a100_ms_" + g, a100_ms);
    rep.metric("epyc_ms_" + g, epyc_ms);
    std::printf("  m%-3d | %-7zu | %-15.2f | %-20.2f | %-7.2f | %-10.0f\n",
                fam, m->num_octants(), a100_ms, epyc_ms, epyc_ms / a100_ms,
                host_ms);
  }
  bench::note("the A100's ~4x bandwidth advantage over the EPYC node drives");
  bench::note("the gap on these memory-bound kernels (paper Fig. 15 shows the");
  bench::note("same ordering with OpenMP patch-level parallelism on the CPU).");
  return 0;
}
