/// \file test_simd.cpp
/// \brief Tests of the explicit SIMD wrapper dgr::simd<double, W>: memory
/// ops (aligned, unaligned, partial tails), lanewise arithmetic identity
/// with scalar expressions, single-rounding fma, min/max semantics, and the
/// property that the fused pack stencil evaluators (stencils_point.hpp) are
/// bitwise-equal lane for lane to the scalar sweeps they replace.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "fd/stencils.hpp"
#include "fd/stencils_point.hpp"
#include "simd/simd.hpp"

namespace dgr {
namespace {

using P4 = simd<double, 4>;
using P1 = simd<double, 1>;

TEST(Simd, LoadStoreRoundTrip) {
  alignas(32) double src[8] = {1.5, -2.25, 3.0, 0.0, 7.5, -0.5, 2.0, 9.0};
  double dst[4] = {0, 0, 0, 0};
  P4::load(src + 1).store(dst);  // unaligned
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], src[1 + i]);
  alignas(32) double adst[4];
  P4::load_aligned(src).store_aligned(adst);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(adst[i], src[i]);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(P4::load(src)[i], src[i]);
}

TEST(Simd, PartialLoadStoreTails) {
  const double src[4] = {1.0, 2.0, 3.0, 4.0};
  for (int n = 0; n <= 4; ++n) {
    const P4 v = P4::load_partial(src, n);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i < n ? src[i] : 0.0) << n;
    double dst[4] = {-1, -1, -1, -1};
    P4::load(src).store_partial(dst, n);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], i < n ? src[i] : -1.0) << n;
  }
  // Scalar specialization honors the same contract.
  EXPECT_EQ(P1::load_partial(src, 0)[0], 0.0);
  EXPECT_EQ(P1::load_partial(src, 1)[0], 1.0);
}

TEST(Simd, ArithmeticIsLanewiseBitwiseEqualToScalar) {
  Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    double a[4], b[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = rng.uniform(-10, 10);
      b[i] = rng.uniform(0.1, 10);  // nonzero divisor
    }
    const P4 pa = P4::load(a), pb = P4::load(b);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ((pa + pb)[i], a[i] + b[i]);
      EXPECT_EQ((pa - pb)[i], a[i] - b[i]);
      EXPECT_EQ((pa * pb)[i], a[i] * b[i]);
      EXPECT_EQ((pa / pb)[i], a[i] / b[i]);
      EXPECT_EQ((-pa)[i], -a[i]);
    }
  }
}

TEST(Simd, FmaIsSingleRounding) {
  // Pick operands where round(a*b)+c differs from fma(a,b,c): the product
  // 1+2^-30 squared needs more than 53 bits against c = -1.
  const double a = 1.0 + std::ldexp(1.0, -30);
  const double c = -1.0;
  const double fused = std::fma(a, a, c);
  const double unfused = a * a + c;
  ASSERT_NE(fused, unfused);  // the case actually discriminates
  const P4 r = fma(P4::broadcast(a), P4::broadcast(a), P4::broadcast(c));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], fused);
  EXPECT_EQ(fma(P1::broadcast(a), P1::broadcast(a), P1::broadcast(c))[0],
            fused);
}

TEST(Simd, MinMaxMatchVectorSemantics) {
  // maxpd/minpd return the SECOND operand on NaN; both specializations and
  // the chi-floor usage max(floor, x) rely on exactly that.
  const double nan = std::nan("");
  const double xs[4] = {1.0, -2.0, nan, 0.5};
  const double ys[4] = {0.5, -1.0, 2.0, nan};
  const P4 x = P4::load(xs);
  const P4 y = P4::load(ys);
  const P4 mx = max(x, y), mn = min(x, y);
  EXPECT_EQ(mx[0], 1.0);
  EXPECT_EQ(mx[1], -1.0);
  EXPECT_EQ(mx[2], 2.0);  // NaN in first operand -> second
  EXPECT_TRUE(std::isnan(mx[3]));
  EXPECT_EQ(mn[0], 0.5);
  EXPECT_EQ(mn[1], -2.0);
  EXPECT_EQ(mn[2], 2.0);
  EXPECT_TRUE(std::isnan(mn[3]));
  // Scalar specialization agrees lane for lane.
  for (int i = 0; i < 4; ++i) {
    const P1 sx = P1::broadcast(x[i]), sy = P1::broadcast(y[i]);
    const double m4 = mx[i], s1 = max(sx, sy)[0];
    EXPECT_TRUE(m4 == s1 || (std::isnan(m4) && std::isnan(s1)));
  }
}

TEST(Simd, SelectGeZero) {
  const double cs[4] = {1.0, -1.0, 0.0, -0.0};
  const P4 c = P4::load(cs);
  const P4 a = P4::broadcast(10.0), b = P4::broadcast(20.0);
  const P4 r = select_ge_zero(c, a, b);
  EXPECT_EQ(r[0], 10.0);
  EXPECT_EQ(r[1], 20.0);
  EXPECT_EQ(r[2], 10.0);   // +0 >= 0
  EXPECT_EQ(r[3], 10.0);   // -0 >= 0, like the scalar branch
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(r[i], select_ge_zero(P1::broadcast(c[i]), P1::broadcast(10.0),
                                   P1::broadcast(20.0))[0]);
}

TEST(Simd, WidthSelection) {
#if DGR_SIMD_HAS_AVX2
  EXPECT_EQ(kSimdNativeWidth, 4);
  EXPECT_STREQ(simd_backend_name(4), "avx2");
#else
  EXPECT_EQ(kSimdNativeWidth, 1);
#endif
  EXPECT_STREQ(simd_backend_name(1), "scalar");
  const int w = simd_active_width();
  EXPECT_TRUE(w == 1 || w == 4);
}

/// Property test: every fused pack stencil evaluator is bitwise-equal, lane
/// for lane, to (a) its own scalar instantiation and (b) the whole-patch
/// sweep operator it fuses — on random data, at every interior point.
TEST(Simd, FusedStencilsBitwiseEqualScalarSweeps) {
  using namespace dgr::fd;
  Rng rng(7);
  std::vector<Real> u(kPatchPts), beta(kPatchPts);
  for (auto& v : u) v = rng.uniform(-1, 1);
  for (auto& v : beta) v = rng.uniform(-1, 1);
  const Real h = 0.1;
  const Real inv_h = 1.0 / h, inv_h2 = 1.0 / (h * h);
  std::vector<Real> sweep(kPatchPts), asweep(kPatchPts), ko(kPatchPts);
  fd::ko_dissipation(u.data(), ko.data(), 1.0, h);

  for (int axis = 0; axis < 3; ++axis) {
    fd::d1_upwind(u.data(), beta.data(), asweep.data(), axis, h);
    for (int deriv = 0; deriv < 2; ++deriv) {
      if (deriv == 0)
        fd::d1(u.data(), sweep.data(), axis, h);
      else
        fd::d2(u.data(), sweep.data(), axis, h);
      for (int kk = kPad; kk < kPad + kR; ++kk)
        for (int jj = kPad; jj < kPad + kR; ++jj)
          for (int ii = kPad; ii < kPad + kR; ii += 4) {
            const int p = patch_idx(ii, jj, kk);
            const int lanes = std::min(4, kPad + kR - ii);
            const auto pack =
                deriv == 0 ? d1_point<P4>(u.data(), p, axis, inv_h)
                           : d2_point<P4>(u.data(), p, axis, inv_h2);
            const P4 bp = P4::load(beta.data() + p);
            const auto apack =
                upwind_point<P4>(u.data(), bp, p, axis, inv_h);
            const auto kpack = ko_point<P4>(u.data(), p, inv_h);
            for (int l = 0; l < lanes; ++l) {
              ASSERT_EQ(pack[l], sweep[p + l]) << axis << " d" << deriv + 1;
              const auto s1 =
                  deriv == 0
                      ? d1_point<P1>(u.data(), p + l, axis, inv_h)
                      : d2_point<P1>(u.data(), p + l, axis, inv_h2);
              ASSERT_EQ(pack[l], s1[0]);
              ASSERT_EQ(apack[l], asweep[p + l]) << "upwind axis " << axis;
              const P1 b1 = P1::load(beta.data() + p + l);
              ASSERT_EQ(apack[l],
                        upwind_point<P1>(u.data(), b1, p + l, axis, inv_h)[0]);
              if (deriv == 0 && axis == 0) {
                ASSERT_EQ(kpack[l], ko[p + l]) << "ko";
                ASSERT_EQ(kpack[l], ko_point<P1>(u.data(), p + l, inv_h)[0]);
              }
            }
          }
    }
  }
}

}  // namespace
}  // namespace dgr
