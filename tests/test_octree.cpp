/// \file test_octree.cpp
/// \brief Unit and property tests for the linear octree substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "octree/octree.hpp"
#include "octree/refinement.hpp"

namespace dgr::oct {
namespace {

TEST(TreeNode, RootProperties) {
  TreeNode root;
  EXPECT_EQ(root.level, 0);
  EXPECT_EQ(root.edge(), kDomainSize);
  EXPECT_TRUE(root.contains_point(0, 0, 0));
  EXPECT_TRUE(root.contains_point(kDomainSize - 1, 5, 7));
}

TEST(TreeNode, ChildParentRoundTrip) {
  TreeNode root;
  for (int c = 0; c < 8; ++c) {
    TreeNode ch = root.child(c);
    EXPECT_EQ(ch.level, 1);
    EXPECT_EQ(ch.child_id(), c);
    EXPECT_EQ(ch.parent(), root);
    EXPECT_TRUE(root.is_ancestor_of(ch));
    EXPECT_FALSE(ch.is_ancestor_of(root));
  }
}

TEST(TreeNode, DeepChildChainAnchors) {
  TreeNode t;
  for (int l = 0; l < 10; ++l) t = t.child(7);  // +x+y+z corner chain
  EXPECT_EQ(t.level, 10);
  // Anchor accumulates halved edges: domain*(1/2 + 1/4 + ... + 1/1024).
  const Coord expect = kDomainSize - (kDomainSize >> 10);
  EXPECT_EQ(t.x, expect);
  EXPECT_EQ(t.y, expect);
  EXPECT_EQ(t.z, expect);
}

TEST(TreeNode, MisalignedAnchorThrows) {
  EXPECT_THROW(TreeNode(3, 0, 0, 1), Error);  // level-1 anchor must be 0 or half
}

TEST(TreeNode, NeighborInsideAndOutsideDomain) {
  TreeNode t = TreeNode{}.child(0);  // lower corner child
  TreeNode n;
  EXPECT_FALSE(t.neighbor(-1, 0, 0, n));
  ASSERT_TRUE(t.neighbor(1, 0, 0, n));
  EXPECT_EQ(n, TreeNode{}.child(1));
  ASSERT_TRUE(t.neighbor(1, 1, 1, n));
  EXPECT_EQ(n, TreeNode{}.child(7));
}

TEST(TreeNode, SfcOrderAncestorFirst) {
  TreeNode root;
  TreeNode c0 = root.child(0);
  EXPECT_TRUE(SfcLess{}(root, c0));
  EXPECT_FALSE(SfcLess{}(c0, root));
  // Siblings ordered by child id along the Morton curve.
  for (int c = 0; c + 1 < 8; ++c)
    EXPECT_TRUE(SfcLess{}(root.child(c), root.child(c + 1)));
}

TEST(TreeNode, MortonDistinctAcrossSiblingSubtrees) {
  // All level-2 octants must have distinct Morton keys.
  Octree t = Octree::uniform(2);
  std::set<std::uint64_t> keys;
  for (const auto& leaf : t.leaves()) keys.insert(leaf.morton());
  EXPECT_EQ(keys.size(), t.size());
}

TEST(Octree, UniformTreeSizes) {
  EXPECT_EQ(Octree::uniform(0).size(), 1u);
  EXPECT_EQ(Octree::uniform(1).size(), 8u);
  EXPECT_EQ(Octree::uniform(2).size(), 64u);
  EXPECT_EQ(Octree::uniform(3).size(), 512u);
}

TEST(Octree, ValidateRejectsIncomplete) {
  std::vector<TreeNode> leaves;
  for (int c = 0; c < 7; ++c) leaves.push_back(TreeNode{}.child(c));
  EXPECT_THROW(Octree{leaves}, Error);
}

TEST(Octree, ValidateRejectsOverlap) {
  std::vector<TreeNode> leaves;
  for (int c = 0; c < 8; ++c) leaves.push_back(TreeNode{}.child(c));
  leaves.push_back(TreeNode{}.child(0).child(0));  // overlaps child 0
  EXPECT_THROW(Octree{leaves}, Error);
}

TEST(Octree, FindLeafOnUniformTree) {
  Octree t = Octree::uniform(2);
  const Coord q = kDomainSize / 4;
  for (Coord ix = 0; ix < 4; ++ix)
    for (Coord iy = 0; iy < 4; ++iy)
      for (Coord iz = 0; iz < 4; ++iz) {
        OctIndex n = t.find_leaf(ix * q + 1, iy * q + 1, iz * q + 1);
        const TreeNode& leaf = t.leaf(n);
        EXPECT_EQ(leaf.x, ix * q);
        EXPECT_EQ(leaf.y, iy * q);
        EXPECT_EQ(leaf.z, iz * q);
      }
}

Octree make_corner_refined(int depth) {
  // Refine the chain of octants containing the point just below the domain
  // center. The deep leaves end up adjacent to the center corner, touching
  // the seven coarse level-1 octants across it, so for depth >= 3 this tree
  // violates the 2:1 constraint. (A cascade toward the *origin* corner would
  // be naturally balanced: each level ring only touches adjacent rings.)
  const Coord c = kDomainSize / 2 - 1;
  return Octree::build(
      [&](const TreeNode& t) {
        return t.contains_point(c, c, c) ? Refine::kSplit : Refine::kKeep;
      },
      depth);
}

TEST(Octree, CornerRefinedTreeStructure) {
  Octree t = make_corner_refined(5);
  // Each split adds 7 leaves on top of the root.
  EXPECT_EQ(t.size(), 1u + 7u * 5u);
  EXPECT_EQ(t.max_level(), 5);
  EXPECT_EQ(t.min_level(), 1);
  t.validate();
}

TEST(Octree, CornerRefinedIsUnbalancedThenBalances) {
  Octree t = make_corner_refined(5);
  EXPECT_FALSE(t.is_balanced());
  Octree b = t.balanced();
  b.validate();
  EXPECT_TRUE(b.is_balanced());
  // Balancing only refines: every original leaf is covered by leaves at the
  // same or deeper level.
  for (const auto& leaf : b.leaves()) {
    OctIndex orig = t.find_leaf(leaf.x, leaf.y, leaf.z);
    EXPECT_GE(int(leaf.level), int(t.leaf(orig).level));
  }
}

TEST(Octree, BalancedIsIdempotent) {
  Octree b = make_corner_refined(6).balanced();
  Octree b2 = b.balanced();
  EXPECT_EQ(b, b2);
}

TEST(Octree, NeighborsOnUniformTree) {
  Octree t = Octree::uniform(2);
  // An interior octant has exactly one neighbor in every direction.
  const Coord q = kDomainSize / 4;
  OctIndex mid = t.find_leaf(q + 1, q + 1, q + 1);
  int total = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (!dx && !dy && !dz) continue;
        auto nb = t.neighbors(mid, dx, dy, dz);
        ASSERT_EQ(nb.size(), 1u);
        const TreeNode& n = t.leaf(nb[0]);
        EXPECT_TRUE(n.touches(t.leaf(mid)));
        total += 1;
      }
  EXPECT_EQ(total, 26);
}

TEST(Octree, NeighborsAcrossLevelTransition) {
  // Root split once, then child 0 split again -> balanced by construction.
  std::vector<TreeNode> leaves;
  for (int c = 1; c < 8; ++c) leaves.push_back(TreeNode{}.child(c));
  for (int c = 0; c < 8; ++c) leaves.push_back(TreeNode{}.child(0).child(c));
  Octree t{leaves};
  ASSERT_TRUE(t.is_balanced());

  // child(1) looking in -x: 4 finer neighbors (children of child(0)).
  OctIndex c1 = t.find(TreeNode{}.child(1));
  ASSERT_NE(c1, kInvalidOct);
  auto nb = t.neighbors(c1, -1, 0, 0);
  EXPECT_EQ(nb.size(), 4u);
  for (OctIndex n : nb) {
    EXPECT_EQ(t.leaf(n).level, 2);
    EXPECT_TRUE(t.leaf(n).touches(t.leaf(c1)));
  }

  // A grandchild looking in +x toward the coarser child(1): 1 coarser.
  OctIndex gc = t.find(TreeNode{}.child(0).child(1));
  ASSERT_NE(gc, kInvalidOct);
  auto nb2 = t.neighbors(gc, 1, 0, 0);
  ASSERT_EQ(nb2.size(), 1u);
  EXPECT_EQ(t.leaf(nb2[0]), TreeNode{}.child(1));
}

TEST(Octree, NeighborsSymmetric) {
  // Property: if B is a neighbor of A in direction d, then A is a neighbor
  // of B in some direction. Checked on a balanced adaptive tree.
  Octree t = make_corner_refined(4).balanced();
  for (OctIndex i = 0; i < OctIndex(t.size()); ++i) {
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (!dx && !dy && !dz) continue;
          for (OctIndex j : t.neighbors(i, dx, dy, dz)) {
            bool found = false;
            for (int ez = -1; ez <= 1 && !found; ++ez)
              for (int ey = -1; ey <= 1 && !found; ++ey)
                for (int ex = -1; ex <= 1 && !found; ++ex) {
                  if (!ex && !ey && !ez) continue;
                  auto back = t.neighbors(j, ex, ey, ez);
                  found = std::find(back.begin(), back.end(), i) != back.end();
                }
            EXPECT_TRUE(found) << "asymmetric neighbor pair " << i << "," << j;
          }
        }
  }
}

TEST(Octree, RemeshRefineGrowsTree) {
  Octree t = Octree::uniform(1);
  std::vector<RemeshFlag> flags(t.size(), RemeshFlag::kKeep);
  flags[0] = RemeshFlag::kRefine;
  Octree r = t.remesh(flags);
  r.validate();
  EXPECT_EQ(r.size(), 8u + 7u);
  EXPECT_TRUE(r.is_balanced());
}

TEST(Octree, RemeshCoarsenRequiresFullOctet) {
  Octree t = Octree::uniform(2);
  // Flag only 7 of the first octet: no coarsening may happen.
  std::vector<RemeshFlag> flags(t.size(), RemeshFlag::kKeep);
  for (int i = 0; i < 7; ++i) flags[i] = RemeshFlag::kCoarsen;
  EXPECT_EQ(t.remesh(flags).size(), t.size());
  // Flag a complete sibling octet (uniform level-2 tree: the first 8 leaves
  // in SFC order are exactly the children of the first level-1 octant).
  flags[7] = RemeshFlag::kCoarsen;
  Octree r = t.remesh(flags);
  r.validate();
  EXPECT_EQ(r.size(), t.size() - 7);
}

TEST(Octree, RemeshCoarsenThenBalanceKeepsValidity) {
  Octree t = make_corner_refined(4).balanced();
  std::vector<RemeshFlag> flags(t.size(), RemeshFlag::kCoarsen);
  Octree r = t.remesh(flags);
  r.validate();
  EXPECT_TRUE(r.is_balanced());
  EXPECT_LT(r.size(), t.size());
}

TEST(Octree, PunctureOctreeRefinesAroundPunctures) {
  Domain dom{32.0};
  std::vector<Puncture> ps = {{{4.0, 0.0, 0.0}, 6}, {{-4.0, 0.0, 0.0}, 6}};
  Octree t = build_puncture_octree(dom, ps, 2);
  t.validate();
  EXPECT_TRUE(t.is_balanced());
  EXPECT_EQ(t.max_level(), 6);
  // The leaf containing each puncture must be at the finest level.
  for (const auto& p : ps) {
    const Coord cx = static_cast<Coord>((p.pos[0] + dom.half_extent) /
                                        (2 * dom.half_extent) * kDomainSize);
    OctIndex n = t.find_leaf(cx, kDomainSize / 2, kDomainSize / 2);
    EXPECT_EQ(int(t.leaf(n).level), 6);
  }
}

TEST(Octree, AdaptivityFamilyMonotonicity) {
  Domain dom{400.0};
  std::size_t prev_size = 0;
  int prev_spread = 100;
  for (int m = 1; m <= 5; ++m) {
    Octree g = build_adaptivity_grid(dom, m);
    g.validate();
    EXPECT_TRUE(g.is_balanced());
    // Octant count grows and level spread (adaptivity) shrinks with m.
    EXPECT_GT(g.size(), prev_size) << "family " << m;
    const int spread = g.max_level() - g.min_level();
    EXPECT_LE(spread, prev_spread) << "family " << m;
    prev_size = g.size();
    prev_spread = spread;
  }
}

TEST(SfcPartition, EqualWeightsEvenSplit) {
  std::vector<double> w(100, 1.0);
  auto s = sfc_partition(w, 4);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s[4], 100u);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(s[p + 1] - s[p], 25u);
}

TEST(SfcPartition, SkewedWeightsBalanced) {
  // One heavy leaf at the front: first part should contain little else.
  std::vector<double> w(50, 1.0);
  w[0] = 49.0;
  auto s = sfc_partition(w, 2);
  const double total = 49 + 49;
  double first = 0;
  for (std::size_t i = s[0]; i < s[1]; ++i) first += w[i];
  EXPECT_NEAR(first, total / 2, 49.0 / 2 + 1);
}

TEST(SfcPartition, MorePartsThanLeaves) {
  std::vector<double> w(3, 1.0);
  auto s = sfc_partition(w, 8);
  ASSERT_EQ(s.size(), 9u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i], s[i - 1]);
  EXPECT_EQ(s.back(), 3u);
}

TEST(OctreeProperty, RandomTreesBalanceAndValidate) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    // Random refinement with depth-decaying probability.
    auto t = Octree::build(
        [&](const TreeNode& n) {
          const double p = 0.9 / (1 + n.level);
          return rng.uniform() < p ? Refine::kSplit : Refine::kKeep;
        },
        6);
    t.validate();
    Octree b = t.balanced();
    b.validate();
    EXPECT_TRUE(b.is_balanced());
    EXPECT_GE(b.size(), t.size());
  }
}

TEST(OctreeProperty, FindLeafConsistentWithContainment) {
  Rng rng(7);
  Octree t = make_corner_refined(6).balanced();
  for (int i = 0; i < 500; ++i) {
    const Coord px = static_cast<Coord>(rng.uniform_int(kDomainSize));
    const Coord py = static_cast<Coord>(rng.uniform_int(kDomainSize));
    const Coord pz = static_cast<Coord>(rng.uniform_int(kDomainSize));
    OctIndex n = t.find_leaf(px, py, pz);
    EXPECT_TRUE(t.leaf(n).contains_point(px, py, pz));
  }
}

}  // namespace
}  // namespace dgr::oct
