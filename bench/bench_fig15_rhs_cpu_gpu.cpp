/// \file bench_fig15_rhs_cpu_gpu.cpp
/// \brief Regenerates Fig. 15: wall-clock time to compute padding zones and
/// evaluate the RHS 10 times — one A100 vs a two-socket EPYC 7763 node —
/// for grids with an increasing number of octants. Both devices are
/// evaluated with the §III-D finite-cache model applied to the same
/// measured op counts (the host-measured single-core time is printed for
/// reference).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "perf/machine_model.hpp"
#include "simgpu/gpu_bssn.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  bench::header("Fig. 15", "padding + 10 RHS evaluations: A100 vs EPYC node");
  bench::Reporter rep("fig15_rhs_cpu_gpu", argc, argv);

  const perf::MachineModel a100 = perf::a100();
  const perf::MachineModel epyc = perf::epyc7763_node();
  std::printf(
      "  grid | octants | A100 model (ms) | EPYC node model (ms) | speedup | "
      "host 1-core (ms)\n");
  for (int fam = 1; fam <= 3; ++fam) {
    auto m = bench::adaptivity_mesh(fam);
    simgpu::GpuBssnSolver gpu(m, simgpu::GpuSolverConfig{});
    bssn::BssnState s;
    bssn::set_minkowski(*m, s);
    gpu.upload(s);
    // One compute_rhs per rk4 stage: 10 RHS evaluations ~ 2.5 RK4 steps;
    // run the pipeline pieces directly by stepping 10 quarter-steps worth.
    WallTimer t;
    for (int i = 0; i < 2; ++i) gpu.rk4_step(1e-6);  // 8 RHS evaluations
    // plus two more evals via an extra half measurement: scale to 10.
    const double host_ms = t.milliseconds() * (10.0 / 8.0);
    const double scale = 10.0 / 8.0;  // 8 evaluations recorded
    const auto& o2p = gpu.runtime().record("octant-to-patch");
    const auto& rhs = gpu.runtime().record("bssn-rhs");
    const double a100_ms =
        (o2p.modeled_seconds(a100) + rhs.modeled_seconds(a100)) * 1e3 * scale;
    const double epyc_ms =
        (o2p.modeled_seconds(epyc) + rhs.modeled_seconds(epyc)) * 1e3 * scale;
    const std::string g = "m" + std::to_string(fam);
    rep.pair("gpu_speedup_" + g, 4.0, epyc_ms / a100_ms, "x");
    rep.metric("a100_ms_" + g, a100_ms);
    rep.metric("epyc_ms_" + g, epyc_ms);
    std::printf("  m%-3d | %-7zu | %-15.2f | %-20.2f | %-7.2f | %-10.0f\n",
                fam, m->num_octants(), a100_ms, epyc_ms, epyc_ms / a100_ms,
                host_ms);
  }
  bench::note("the A100's ~4x bandwidth advantage over the EPYC node drives");
  bench::note("the gap on these memory-bound kernels (paper Fig. 15 shows the");
  bench::note("same ordering with OpenMP patch-level parallelism on the CPU).");

  // Host hot-kernel companion: the same staged+CSE program per grid, once
  // through the register machine at width 1 (the scalar baseline) and once
  // at the active SIMD width, one full RHS sweep each through the solver
  // pipeline. Only the RHS phase is timed (unzip/zip are unchanged by the
  // kernel width); the target column is the PR's 2x acceptance floor. The
  // two sweeps must agree bitwise on every DOF.
  const int wact = simd_active_width();
  std::printf(
      "\n  host RHS phase, staged+CSE fused kernel (width 1 vs %d):\n", wact);
  std::printf(
      "  grid | scalar (ms) | simd (ms) | speedup (target 2.00) | bitwise\n");
  for (int fam = 1; fam <= 3; ++fam) {
    auto m = bench::adaptivity_mesh(fam);
    solver::SolverConfig scfg;
    scfg.bssn.sommerfeld = false;
    scfg.rhs_kernel = solver::RhsKernel::kStagedFusedSimd;
    bssn::BssnState s, rhs_scalar, rhs_simd;
    bssn::set_minkowski(*m, s);
    rhs_scalar.resize(m->num_dofs());
    rhs_simd.resize(m->num_dofs());
    const std::vector<solver::OctRange> all = {
        {0, OctIndex(m->num_octants())}};
    double ms[2];
    for (int w = 0; w < 2; ++w) {
      scfg.simd_width = w == 0 ? 1 : wact;
      solver::RhsPipeline pipe(m, scfg);
      solver::PhaseBreakdown ph;
      pipe.compute(s, w == 0 ? rhs_scalar : rhs_simd, all, &ph, nullptr);
      ms[w] = ph.rhs.total_seconds() * 1e3;
    }
    const bool bitwise = rhs_simd.max_abs_diff(rhs_scalar) == 0.0;
    const std::string g = "m" + std::to_string(fam);
    rep.pair("fused_simd_speedup_" + g, 2.0, ms[0] / ms[1], "x");
    rep.metric("staged_scalar_rhs_ms_" + g, ms[0]);
    rep.metric("fused_simd_rhs_ms_" + g, ms[1]);
    rep.metric("simd_bitwise_identical_" + g, bitwise ? 1.0 : 0.0);
    std::printf("  m%-3d | %-11.0f | %-9.0f | %-21.2f | %s\n", fam, ms[0],
                ms[1], ms[0] / ms[1], bitwise ? "IDENTICAL" : "MISMATCH");
  }
  bench::note("host SIMD leg: same register-machine program, SoA block");
  bench::note("execution; width is the only knob and never changes bits.");
  return 0;
}
