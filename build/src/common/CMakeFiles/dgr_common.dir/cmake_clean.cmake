file(REMOVE_RECURSE
  "CMakeFiles/dgr_common.dir/counters.cpp.o"
  "CMakeFiles/dgr_common.dir/counters.cpp.o.d"
  "CMakeFiles/dgr_common.dir/log.cpp.o"
  "CMakeFiles/dgr_common.dir/log.cpp.o.d"
  "libdgr_common.a"
  "libdgr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
