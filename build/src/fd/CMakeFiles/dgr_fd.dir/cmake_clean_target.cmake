file(REMOVE_RECURSE
  "libdgr_fd.a"
)
