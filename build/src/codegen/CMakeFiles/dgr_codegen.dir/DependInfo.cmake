
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/bssn_graph.cpp" "src/codegen/CMakeFiles/dgr_codegen.dir/bssn_graph.cpp.o" "gcc" "src/codegen/CMakeFiles/dgr_codegen.dir/bssn_graph.cpp.o.d"
  "/root/repo/src/codegen/expr.cpp" "src/codegen/CMakeFiles/dgr_codegen.dir/expr.cpp.o" "gcc" "src/codegen/CMakeFiles/dgr_codegen.dir/expr.cpp.o.d"
  "/root/repo/src/codegen/interp_rhs.cpp" "src/codegen/CMakeFiles/dgr_codegen.dir/interp_rhs.cpp.o" "gcc" "src/codegen/CMakeFiles/dgr_codegen.dir/interp_rhs.cpp.o.d"
  "/root/repo/src/codegen/machine.cpp" "src/codegen/CMakeFiles/dgr_codegen.dir/machine.cpp.o" "gcc" "src/codegen/CMakeFiles/dgr_codegen.dir/machine.cpp.o.d"
  "/root/repo/src/codegen/scheduler.cpp" "src/codegen/CMakeFiles/dgr_codegen.dir/scheduler.cpp.o" "gcc" "src/codegen/CMakeFiles/dgr_codegen.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bssn/CMakeFiles/dgr_bssn.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/dgr_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/dgr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/dgr_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dgr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
