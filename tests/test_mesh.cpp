/// \file test_mesh.cpp
/// \brief Unit, integration, and property tests for the AMR grid layer:
/// deduplicated points, hanging rules, octant-to-patch (both variants),
/// patch-to-octant, and the interpolation operators.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "mesh/interp.hpp"
#include "mesh/mesh.hpp"

namespace dgr::mesh {
namespace {

using oct::Domain;
using oct::Octree;
using oct::TreeNode;

Mesh make_uniform_mesh(int level, Real half = 1.0) {
  return Mesh(Octree::uniform(level), Domain{half});
}

/// Two-level mesh: root split once, child 0 split again (balanced).
Mesh make_two_level_mesh(Real half = 1.0) {
  std::vector<TreeNode> leaves;
  for (int c = 1; c < 8; ++c) leaves.push_back(TreeNode{}.child(c));
  for (int c = 0; c < 8; ++c) leaves.push_back(TreeNode{}.child(0).child(c));
  return Mesh(Octree{leaves}, Domain{half});
}

Mesh make_adaptive_mesh(Real half = 1.0) {
  Octree t = Octree::build(
      [&](const TreeNode& n) {
        // Refine around an off-center point for an irregular structure.
        const oct::Coord c = oct::kDomainSize / 4;
        return n.contains_point(c, c / 2, c / 4) && n.level < 4
                   ? oct::Refine::kSplit
                   : oct::Refine::kKeep;
      },
      4);
  return Mesh(t.balanced(), Domain{half});
}

// ---------------------------------------------------------------- interp --

TEST(Prolongation, RowsArePartitionOfUnity) {
  const auto& P = Prolongation::get();
  for (int a = 0; a < kFine; ++a) {
    Real s = 0;
    for (int m = 0; m < kR; ++m) s += P.row(a)[m];
    EXPECT_NEAR(s, 1.0, 1e-13) << "row " << a;
  }
}

TEST(Prolongation, EvenRowsAreDeltas) {
  const auto& P = Prolongation::get();
  for (int a = 0; a < kFine; a += 2)
    for (int m = 0; m < kR; ++m)
      EXPECT_EQ(P.row(a)[m], (m == a / 2) ? 1.0 : 0.0);
}

TEST(Prolongation, ExactForDegree6Polynomial1D) {
  const auto& P = Prolongation::get();
  // p(t) = t^6 - 3 t^4 + 2 t - 1 sampled at nodes 0..6.
  auto poly = [](Real t) {
    return std::pow(t, 6) - 3 * std::pow(t, 4) + 2 * t - 1;
  };
  for (int a = 0; a < kFine; ++a) {
    Real s = 0;
    for (int m = 0; m < kR; ++m) s += P.row(a)[m] * poly(m);
    EXPECT_NEAR(s, poly(0.5 * a), 1e-9) << "position " << a;
  }
}

TEST(Prolongation, ProlongOctantExactForTrilinearDegree6) {
  auto f = [](Real x, Real y, Real z) {
    return std::pow(x, 6) + std::pow(y, 5) * z + x * y * z + 2.0;
  };
  Real coarse[kOctPts], fine[kFine * kFine * kFine];
  for (int k = 0; k < kR; ++k)
    for (int j = 0; j < kR; ++j)
      for (int i = 0; i < kR; ++i)
        coarse[oct_idx(i, j, k)] = f(i, j, k);
  prolong_octant(coarse, fine);
  for (int c = 0; c < kFine; ++c)
    for (int b = 0; b < kFine; ++b)
      for (int a = 0; a < kFine; ++a)
        EXPECT_NEAR(fine[(c * kFine + b) * kFine + a],
                    f(0.5 * a, 0.5 * b, 0.5 * c), 1e-8);
}

TEST(Prolongation, PointAndTensorVariantsAgree) {
  Rng rng(3);
  Real coarse[kOctPts], fine[kFine * kFine * kFine];
  for (auto& v : coarse) v = rng.uniform(-1, 1);
  prolong_octant(coarse, fine);
  for (int c = 0; c < kFine; c += 3)
    for (int b = 0; b < kFine; b += 2)
      for (int a = 0; a < kFine; ++a)
        EXPECT_NEAR(prolong_point(coarse, a, b, c),
                    fine[(c * kFine + b) * kFine + a], 1e-11);
}

TEST(Prolongation, CountsFlopsForTensorApply) {
  Real coarse[kOctPts] = {}, fine[kFine * kFine * kFine];
  OpCounts counts;
  prolong_octant(coarse, fine, &counts);
  // 3 sweeps x 2*7 flops per output point; the paper quotes O(3(2r-1)r^3).
  EXPECT_GT(counts.flops, 3u * kR * kR * kR * kR);
  EXPECT_LT(counts.flops, 200000u);
}

// ------------------------------------------------------------ mesh build --

TEST(MeshBuild, UniformMeshDofCount) {
  // Level-2 uniform: 4 octants per axis, 6 intervals each, shared faces:
  // (4*6+1)^3 = 25^3 unique points, none hanging.
  Mesh m = make_uniform_mesh(2);
  EXPECT_EQ(m.num_octants(), 64u);
  EXPECT_EQ(m.num_dofs(), 25u * 25u * 25u);
  EXPECT_EQ(m.num_hanging(), 0u);
}

TEST(MeshBuild, UniformMeshLevel1DofCount) {
  Mesh m = make_uniform_mesh(1);
  EXPECT_EQ(m.num_dofs(), 13u * 13u * 13u);
}

TEST(MeshBuild, TwoLevelMeshHasHangingPoints) {
  Mesh m = make_two_level_mesh();
  EXPECT_EQ(m.num_octants(), 15u);
  EXPECT_GT(m.num_hanging(), 0u);
  // Hanging points sit on the three interfaces between the refined child 0
  // and its same-parent neighbors; interface grid 13x13 has 13^2-7^2=120
  // hanging per face... counted via rule weights instead: every rule's
  // weights must sum to 1 (constant reproduction).
  for (const auto& rule : m.hanging_rules()) {
    Real s = 0;
    for (const auto& [dof, w] : rule.terms) s += w;
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(MeshBuild, RejectsUnbalancedTree) {
  const oct::Coord c = oct::kDomainSize / 2 - 1;
  Octree bad = Octree::build(
      [&](const TreeNode& n) {
        return n.contains_point(c, c, c) ? oct::Refine::kSplit
                                         : oct::Refine::kKeep;
      },
      4);
  EXPECT_THROW(Mesh(bad, Domain{1.0}), Error);
}

TEST(MeshBuild, DofPositionsUniqueAndInDomain) {
  Mesh m = make_adaptive_mesh(2.0);
  std::set<std::array<Pu, 3>> seen;
  for (DofIndex d = 0; d < DofIndex(m.num_dofs()); ++d) {
    EXPECT_TRUE(seen.insert(m.dof_pu(d)).second) << "duplicate dof " << d;
    const auto x = m.dof_position(d);
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(x[a], -2.0);
      EXPECT_LE(x[a], 2.0);
    }
  }
}

TEST(MeshBuild, BoundaryFlagMatchesPosition) {
  Mesh m = make_uniform_mesh(1, 3.0);
  int nboundary = 0;
  for (DofIndex d = 0; d < DofIndex(m.num_dofs()); ++d) {
    const auto x = m.dof_position(d);
    const bool on = std::abs(std::abs(x[0]) - 3.0) < 1e-12 ||
                    std::abs(std::abs(x[1]) - 3.0) < 1e-12 ||
                    std::abs(std::abs(x[2]) - 3.0) < 1e-12;
    EXPECT_EQ(m.dof_on_boundary(d), on);
    nboundary += on;
  }
  // Surface of a 13^3 point cube.
  EXPECT_EQ(nboundary, 13 * 13 * 13 - 11 * 11 * 11);
}

TEST(MeshBuild, OctantSpacingHalvesPerLevel) {
  Mesh m = make_two_level_mesh(1.0);
  Real coarse_h = 0, fine_h = 0;
  for (OctIndex e = 0; e < OctIndex(m.num_octants()); ++e) {
    if (m.tree().leaf(e).level == 1) coarse_h = m.octant_spacing(e);
    if (m.tree().leaf(e).level == 2) fine_h = m.octant_spacing(e);
  }
  EXPECT_NEAR(coarse_h, 2.0 * fine_h, 1e-14);
  EXPECT_NEAR(m.finest_spacing(), fine_h, 1e-14);
  // Level-1 octant: physical edge 1.0, 6 intervals.
  EXPECT_NEAR(coarse_h, 1.0 / 6.0, 1e-14);
}

TEST(MeshBuild, O2nEntriesValid) {
  Mesh m = make_adaptive_mesh();
  for (OctIndex e = 0; e < OctIndex(m.num_octants()); ++e) {
    const std::int64_t* map = m.o2n(e);
    for (int i = 0; i < kOctPts; ++i) {
      if (map[i] >= 0)
        EXPECT_LT(map[i], std::int64_t(m.num_dofs()));
      else
        EXPECT_LT(-(map[i] + 1), std::int64_t(m.num_hanging()));
    }
  }
}

TEST(MeshBuild, EveryDofHasExactlyOneOwnerWrite) {
  Mesh m = make_adaptive_mesh();
  std::vector<Real> field(m.num_dofs(), 0.0);
  // zip from patches of all-ones marks each dof exactly once if write sets
  // partition the DOFs.
  std::vector<Real> patches(m.num_octants() * kPatchPts, 1.0);
  Real* fp = field.data();
  std::vector<Real> counted(m.num_dofs(), 0.0);
  Real* cp = counted.data();
  // Accumulate by zipping a field of ones into `counted` with += semantics
  // emulated: zip overwrites, so instead check coverage: after zip all dofs
  // must be 1.
  m.zip(patches.data(), 1, 0, OctIndex(m.num_octants()), &fp);
  for (Real v : field) EXPECT_EQ(v, 1.0);
  (void)cp;
}

// ------------------------------------------------------------ unzip/zip --

/// Polynomial of total degree 6 — reproduced exactly by the grid transfer
/// operators away from the outer boundary (extrapolation there is degree 4,
/// so we use a degree-4 version when boundary patches are checked).
Real poly6(Real x, Real y, Real z) {
  return std::pow(x, 6) - 2 * std::pow(y, 6) + std::pow(z, 6) +
         x * x * y * y * z * z + 3 * x * y - z + 0.5;
}
Real poly4(Real x, Real y, Real z) {
  return std::pow(x, 4) - 2 * std::pow(y, 4) + std::pow(z, 3) * x +
         x * y * z + 3 * x * y - z + 0.5;
}

void expect_patches_match(const Mesh& m, const std::vector<Real>& patches,
                          Real (*f)(Real, Real, Real), Real tol,
                          bool include_out_of_domain) {
  for (OctIndex e = 0; e < OctIndex(m.num_octants()); ++e) {
    const PatchGeom g = m.patch_geom(e);
    for (int k = 0; k < kPatch; ++k)
      for (int j = 0; j < kPatch; ++j)
        for (int i = 0; i < kPatch; ++i) {
          const Real x = g.origin[0] + i * g.h;
          const Real y = g.origin[1] + j * g.h;
          const Real z = g.origin[2] + k * g.h;
          const Real H = m.domain().half_extent + 1e-12;
          const bool inside = std::abs(x) <= H && std::abs(y) <= H &&
                              std::abs(z) <= H;
          if (!inside && !include_out_of_domain) continue;
          EXPECT_NEAR(patches[e * kPatchPts + patch_idx(i, j, k)], f(x, y, z),
                      tol)
              << "octant " << e << " point " << i << "," << j << "," << k;
        }
  }
}

class UnzipExactness : public ::testing::TestWithParam<UnzipMethod> {};

TEST_P(UnzipExactness, UniformMeshReproducesDegree6InDomain) {
  Mesh m = make_uniform_mesh(1);
  std::vector<Real> field(m.num_dofs());
  m.sample(poly6, field.data());
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts, -1e30);
  m.unzip_all(&fp, 1, patches.data(), GetParam());
  expect_patches_match(m, patches, poly6, 1e-9, false);
}

TEST_P(UnzipExactness, UniformMeshBoundaryExtrapolationDegree4) {
  Mesh m = make_uniform_mesh(1);
  std::vector<Real> field(m.num_dofs());
  m.sample(poly4, field.data());
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts, -1e30);
  m.unzip_all(&fp, 1, patches.data(), GetParam());
  expect_patches_match(m, patches, poly4, 1e-8, true);
}

TEST_P(UnzipExactness, TwoLevelMeshReproducesDegree6) {
  Mesh m = make_two_level_mesh();
  std::vector<Real> field(m.num_dofs());
  m.sample(poly6, field.data());
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts, -1e30);
  m.unzip_all(&fp, 1, patches.data(), GetParam());
  expect_patches_match(m, patches, poly6, 1e-8, false);
}

TEST_P(UnzipExactness, AdaptiveMeshReproducesDegree6) {
  Mesh m = make_adaptive_mesh();
  std::vector<Real> field(m.num_dofs());
  m.sample(poly6, field.data());
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts, -1e30);
  m.unzip_all(&fp, 1, patches.data(), GetParam());
  expect_patches_match(m, patches, poly6, 1e-8, false);
}

INSTANTIATE_TEST_SUITE_P(Methods, UnzipExactness,
                         ::testing::Values(UnzipMethod::kLoopOverOctants,
                                           UnzipMethod::kLoopOverPatches),
                         [](const auto& info) {
                           return info.param == UnzipMethod::kLoopOverOctants
                                      ? "LoopOverOctants"
                                      : "LoopOverPatches";
                         });

TEST(UnzipZip, RoundTripIsIdentityOnRandomField) {
  Mesh m = make_adaptive_mesh();
  Rng rng(11);
  std::vector<Real> field(m.num_dofs());
  for (auto& v : field) v = rng.uniform(-1, 1);
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts, 0.0);
  m.unzip_all(&fp, 1, patches.data());
  std::vector<Real> out(m.num_dofs(), -7.0);
  Real* op = out.data();
  m.zip(patches.data(), 1, 0, OctIndex(m.num_octants()), &op);
  for (std::size_t d = 0; d < m.num_dofs(); ++d)
    EXPECT_EQ(out[d], field[d]) << "dof " << d;
}

TEST(UnzipZip, ChunkedUnzipMatchesFullUnzip) {
  Mesh m = make_adaptive_mesh();
  Rng rng(13);
  std::vector<Real> field(m.num_dofs());
  for (auto& v : field) v = rng.uniform(-1, 1);
  const Real* fp = field.data();
  const std::size_t n = m.num_octants();
  std::vector<Real> full(n * kPatchPts, 0.0);
  m.unzip_all(&fp, 1, full.data());
  // Chunked: 5 octants at a time.
  std::vector<Real> chunked(n * kPatchPts, 0.0);
  for (OctIndex b = 0; b < OctIndex(n); b += 5) {
    const OctIndex e = std::min<OctIndex>(b + 5, OctIndex(n));
    std::vector<Real> tmp((e - b) * kPatchPts);
    m.unzip(&fp, 1, b, e, tmp.data());
    std::copy(tmp.begin(), tmp.end(), chunked.begin() + b * kPatchPts);
  }
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_EQ(full[i], chunked[i]) << "patch slot " << i;
}

TEST(UnzipZip, MultiVariableUnzipMatchesPerVariable) {
  Mesh m = make_two_level_mesh();
  Rng rng(17);
  std::vector<Real> f0(m.num_dofs()), f1(m.num_dofs());
  for (auto& v : f0) v = rng.uniform(-1, 1);
  for (auto& v : f1) v = rng.uniform(-1, 1);
  const Real* fps[2] = {f0.data(), f1.data()};
  const std::size_t n = m.num_octants();
  std::vector<Real> both(n * 2 * kPatchPts);
  m.unzip_all(fps, 2, both.data());
  std::vector<Real> lone(n * kPatchPts);
  for (int v = 0; v < 2; ++v) {
    m.unzip_all(&fps[v], 1, lone.data());
    for (std::size_t e = 0; e < n; ++e)
      for (int p = 0; p < kPatchPts; ++p)
        EXPECT_EQ(both[(e * 2 + v) * kPatchPts + p],
                  lone[e * kPatchPts + p]);
  }
}

TEST(UnzipZip, CountsAccumulate) {
  Mesh m = make_two_level_mesh();
  std::vector<Real> field(m.num_dofs(), 1.0);
  const Real* fp = field.data();
  std::vector<Real> patches(m.num_octants() * kPatchPts);
  OpCounts c;
  m.unzip_all(&fp, 1, patches.data(), UnzipMethod::kLoopOverOctants, &c);
  EXPECT_GT(c.bytes_read, 0u);
  EXPECT_GT(c.bytes_written, 0u);
  EXPECT_GT(c.flops, 0u);  // interpolations at the level interface
  // Gather variant must spend more flops (redundant interpolation).
  OpCounts g;
  m.unzip_all(&fp, 1, patches.data(), UnzipMethod::kLoopOverPatches, &g);
  EXPECT_GT(g.flops + g.bytes_read, c.flops + c.bytes_read);
}

TEST(UnzipZip, HangingValuesInterpolatedExactly) {
  // On the two-level mesh, load_octant must reproduce a degree-6 polynomial
  // at hanging locations.
  Mesh m = make_two_level_mesh();
  std::vector<Real> field(m.num_dofs());
  m.sample(poly6, field.data());
  for (OctIndex e = 0; e < OctIndex(m.num_octants()); ++e) {
    Real u[kOctPts];
    m.load_octant(field.data(), e, u);
    const PatchGeom g = m.patch_geom(e);
    for (int k = 0; k < kR; ++k)
      for (int j = 0; j < kR; ++j)
        for (int i = 0; i < kR; ++i) {
          const Real x = g.origin[0] + (i + kPad) * g.h;
          const Real y = g.origin[1] + (j + kPad) * g.h;
          const Real z = g.origin[2] + (k + kPad) * g.h;
          EXPECT_NEAR(u[oct_idx(i, j, k)], poly6(x, y, z), 1e-9);
        }
  }
}

TEST(UnzipZip, MethodsAgreeOnPolynomialData) {
  Mesh m = make_adaptive_mesh();
  std::vector<Real> field(m.num_dofs());
  m.sample(poly6, field.data());
  const Real* fp = field.data();
  const std::size_t n = m.num_octants();
  std::vector<Real> a(n * kPatchPts), b(n * kPatchPts);
  m.unzip_all(&fp, 1, a.data(), UnzipMethod::kLoopOverOctants);
  m.unzip_all(&fp, 1, b.data(), UnzipMethod::kLoopOverPatches);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-8);
}

}  // namespace
}  // namespace dgr::mesh
