#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for the simulated multi-rank engine.
/// Production NR campaigns (Table IV) run for days to weeks across thousands
/// of GPUs, where node loss and flaky links are routine; the engine therefore
/// carries a fault model instead of assuming a perfect machine.
///
/// A FaultPlan is built once per run from a FaultConfig and a dgr::Rng seed.
/// It holds two deterministic streams:
///   - fail-stop rank failures at chosen virtual-clock times (explicit
///     events plus optionally randomized ones), consumed in time order by
///     the engine's recovery protocol, and
///   - per-message fault draws (drop -> bounded retransmit with exponential
///     backoff, or delay), consumed by SimComm::isend in injection order.
/// Both streams only perturb the *virtual clock*: a dropped message is
/// retransmitted with its payload intact and a failed rank is recovered
/// from the last coordinated checkpoint, so a faulted run's final state and
/// Psi4 waveforms are bitwise identical to the fault-free run — the
/// invariant the fault-recovery tests and CI smoke job assert.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace dgr::dist {

struct FaultConfig {
  /// Master switch; when false the plan is inert and the engine/SimComm
  /// fault paths are never entered.
  bool enabled = false;
  /// Seed of the plan's deterministic stream (event generation first, then
  /// one draw per injected message).
  std::uint64_t seed = 0xD15FA17ULL;

  /// One fail-stop rank failure: the rank dies at virtual time `t_virtual`.
  /// `rank` is interpreted modulo the live rank count of the epoch in which
  /// the failure fires, so plans stay valid across recoveries.
  struct RankFailure {
    double t_virtual = 0;
    int rank = 0;
  };
  /// Explicit failures (tests and benches pick exact instants).
  std::vector<RankFailure> rank_failures;
  /// Additional randomized failures, uniform in [t_min, t_max).
  int random_failures = 0;
  double random_fail_t_min = 0;
  double random_fail_t_max = 0;

  /// Per-message fault probabilities (drawn once per isend).
  double msg_drop_prob = 0;   ///< attempt lost; retransmitted after timeout
  double msg_delay_prob = 0;  ///< delivered late by `msg_delay_factor`
  double msg_delay_factor = 4.0;  ///< multiplier on the serialization term

  /// Failure detector: a live rank heartbeats every `heartbeat_period` of
  /// virtual time; survivors declare it dead `heartbeat_timeout` after the
  /// first missed beat (SimComm::detect_failures).
  double heartbeat_period = 1e-4;
  double heartbeat_timeout = 4e-4;

  /// Dropped-message retransmit protocol: the receiver NACKs after
  /// `retry_timeout` (doubling by `retry_backoff` per attempt); after
  /// `max_retries` lost attempts the next retransmit is delivered — the
  /// link degrades, it does not partition (see DESIGN.md, fault model).
  int max_retries = 3;
  double retry_timeout = 2e-4;
  double retry_backoff = 2.0;
};

/// The materialized, deterministic schedule of a run's injected faults.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultConfig& cfg);

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  /// All failure events, sorted by time (randomized ones materialized).
  const std::vector<FaultConfig::RankFailure>& failures() const {
    return events_;
  }

  /// Earliest unconsumed failure with t_virtual <= now, or nullptr.
  const FaultConfig::RankFailure* pending_failure(double now) const;
  /// Consume the event returned by pending_failure.
  void consume_failure();

  /// One per-message draw (SimComm::isend, injection order): how many
  /// attempts are dropped before delivery (bounded by max_retries) and
  /// whether the delivered attempt is delayed.
  struct MsgFault {
    int drops = 0;
    bool delayed = false;
  };
  MsgFault draw_msg_fault();

 private:
  FaultConfig cfg_;
  std::vector<FaultConfig::RankFailure> events_;  ///< sorted by t_virtual
  std::size_t next_event_ = 0;
  Rng rng_;
};

}  // namespace dgr::dist
