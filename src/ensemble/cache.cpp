#include "ensemble/cache.hpp"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dgr::ensemble {

namespace {

constexpr char kSpillMagic[4] = {'D', 'S', 'P', '1'};
// A spill file is one waveform plus its key; anything larger is corrupt.
constexpr std::size_t kMaxSpillBytes = std::size_t{1} << 30;

std::uint64_t read_u64(const std::string& b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[pos + i]))
         << (8 * i);
  return v;
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/// Atomic-by-rename spill write (the save_checkpoint pattern): payload to
/// <path>.tmp, flush, check, rename into place; the temp file is removed
/// on any failure so a crash never leaves a corrupt spill at `path`.
bool write_spill(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

WaveformCache::WaveformCache(std::size_t capacity_bytes,
                             std::string spill_dir)
    : capacity_(capacity_bytes), spill_dir_(std::move(spill_dir)) {}

std::string WaveformCache::spill_path(const ScenarioKey& key) const {
  return spill_dir_ + "/" + key.hex() + ".wf";
}

std::shared_ptr<const Waveform> WaveformCache::get(const ScenarioKey& key,
                                                   bool* from_disk) {
  if (from_disk) *from_disk = false;
  {
    std::unique_lock<std::mutex> lk(m_);
    auto it = entries_.find(key.bytes);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // promote to MRU
      ++stats_.hits_memory;
      obs::count("cache.hits_memory");
      return it->second.wf;
    }
  }

  if (!spill_dir_.empty()) {
    // Disk fault-in happens unlocked; concurrent faults of the same key
    // both insert the identical content (idempotent).
    const std::string path = spill_path(key);
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (f) {
      const auto size = static_cast<std::size_t>(f.tellg());
      if (size >= 4 + 16 && size <= kMaxSpillBytes) {
        std::string body(size, '\0');
        f.seekg(0);
        f.read(body.data(), static_cast<std::streamsize>(size));
        if (f.gcount() == static_cast<std::streamsize>(size) &&
            body.compare(0, 4, kSpillMagic, 4) == 0) {
          const std::uint64_t klen = read_u64(body, 4);
          if (klen <= size - 12 && body.compare(12, klen, key.bytes) == 0 &&
              klen == key.bytes.size()) {
            try {
              auto wf = std::make_shared<const Waveform>(
                  deserialize(body.substr(12 + klen)));
              if (from_disk) *from_disk = true;
              std::unique_lock<std::mutex> lk(m_);
              ++stats_.hits_disk;
              obs::count("cache.hits_disk");
              insert_locked(lk, key, wf);
              return wf;
            } catch (const Error&) {
              // fall through to the failure count below
            }
          }
        }
      }
      std::unique_lock<std::mutex> lk(m_);
      ++stats_.spill_failures;
      ++stats_.misses;
      obs::count("cache.misses");
      return nullptr;
    }
  }

  std::unique_lock<std::mutex> lk(m_);
  ++stats_.misses;
  obs::count("cache.misses");
  return nullptr;
}

std::shared_ptr<const Waveform> WaveformCache::get_memory(
    const ScenarioKey& key) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = entries_.find(key.bytes);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // promote to MRU
  ++stats_.hits_memory;
  obs::count("cache.hits_memory");
  return it->second.wf;
}

void WaveformCache::put(const ScenarioKey& key,
                        std::shared_ptr<const Waveform> wf) {
  std::unique_lock<std::mutex> lk(m_);
  ++stats_.insertions;
  insert_locked(lk, key, std::move(wf));
}

void WaveformCache::insert_locked(std::unique_lock<std::mutex>& lk,
                                  const ScenarioKey& key,
                                  std::shared_ptr<const Waveform> wf) {
  auto it = entries_.find(key.bytes);
  if (it != entries_.end()) {
    // Refresh in place (same content by construction — keys are content
    // hashes of the full input).
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  Entry e;
  e.key = key;
  e.wf = std::move(wf);
  e.bytes = e.wf->byte_size();
  lru_.push_front(key.bytes);
  e.lru = lru_.begin();
  stats_.bytes += e.bytes;
  entries_.emplace(key.bytes, std::move(e));
  stats_.entries = entries_.size();

  // Evict LRU entries until the budget holds; never evict the entry just
  // inserted (an oversized single waveform stays resident until the next
  // insert displaces it).
  std::vector<Entry> evicted;
  while (stats_.bytes > capacity_ && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto vit = entries_.find(victim);
    stats_.bytes -= vit->second.bytes;
    evicted.push_back(std::move(vit->second));
    entries_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("cache.evictions");
  }
  stats_.entries = entries_.size();
  if (evicted.empty()) return;

  // Spill writes run unlocked: a slow disk never blocks memory hits.
  lk.unlock();
  for (const Entry& e2 : evicted) {
    if (spill_dir_.empty()) continue;
    std::string body;
    const std::string blob = serialize(*e2.wf);
    body.reserve(12 + e2.key.bytes.size() + blob.size());
    body.append(kSpillMagic, 4);
    append_u64(body, e2.key.bytes.size());
    body += e2.key.bytes;
    body += blob;
    if (write_spill(spill_path(e2.key), body)) {
      std::lock_guard<std::mutex> lk2(m_);
      ++stats_.spills;
      obs::count("cache.spills");
    } else {
      std::lock_guard<std::mutex> lk2(m_);
      ++stats_.spill_failures;
    }
  }
}

WaveformCache::Stats WaveformCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  return stats_;
}

}  // namespace dgr::ensemble
