#pragma once
/// \file histogram.hpp
/// \brief Fixed-bucket log-scale latency/size histogram with deterministic
/// snapshots and quantile queries — the metric type behind the service's
/// p50/p90/p99/p999 exposition and the perf-trajectory regression gate.
///
/// Bucket layout. 4 sub-buckets per octave (growth 2^(1/4), ~19% relative
/// resolution) spanning octaves 2^kMinExp2 .. 2^kMaxExp2 — with the
/// defaults, ~1e-3 .. ~1.1e12, wide enough for microsecond latencies and
/// byte counts alike. Values at or below zero (or below the bottom bound)
/// clamp into bucket 0; values at or above the top bound clamp into the
/// last bucket. Bucket indexing uses std::frexp and exact mantissa
/// thresholds — no libm transcendentals on the observe path, and the
/// boundary arithmetic (std::ldexp of compile-time mantissa constants) is
/// exact, so two binaries bucket identically.
///
/// Determinism. A histogram stores only order-independent aggregates:
/// per-bucket counts (commutative integer adds) and min/max (commutative,
/// associative). Feeding the same multiset of observations in ANY order —
/// one thread or many, any interleaving — yields a bitwise-identical
/// json() snapshot; there is deliberately no floating-point sum whose
/// value would depend on accumulation order. quantile() is a pure function
/// of the bucket counts.
///
/// Thread safety: none here. Histogram is a value type; MetricsRegistry
/// guards its histogram map with the registry mutex, exactly as it does
/// counters and summaries.

#include <array>
#include <cstdint>
#include <string>

namespace dgr::obs {

class Histogram {
 public:
  static constexpr int kSubBuckets = 4;   ///< per octave: growth 2^(1/4)
  static constexpr int kMinExp2 = -10;    ///< bottom bound 2^-10 ~ 9.8e-4
  static constexpr int kMaxExp2 = 40;     ///< top bound 2^40 ~ 1.1e12
  static constexpr int kBuckets = (kMaxExp2 - kMinExp2) * kSubBuckets;

  /// Record one observation (any double; non-finite observations are
  /// clamped like out-of-range ones: NaN and -inf low, +inf high).
  void observe(double v);

  /// Fold another histogram in (bucket-wise adds, min/max merge).
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  std::uint64_t bucket_count(int i) const { return buckets_[i]; }

  /// Inclusive lower / exclusive upper bound of bucket `i` (exact:
  /// ldexp of 2^(k/4) mantissa constants).
  static double bucket_lower(int i);
  static double bucket_upper(int i) { return bucket_lower(i + 1); }
  /// The bucket `v` lands in after clamping (also the observe() path).
  static int bucket_index(double v);

  /// Quantile estimate for p in [0, 1]: linear interpolation inside the
  /// bucket holding the ceil(p * count)-th smallest observation, clamped
  /// to [min, max] so degenerate (single-value) histograms answer
  /// exactly. Returns 0 on an empty histogram. Deterministic: a pure
  /// function of the bucket counts and min/max.
  double quantile(double p) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  void reset();

  /// JSON object: {"count":N,"min":..,"max":..,"p50":..,"p90":..,
  /// "p99":..,"p999":..}. Every field is order-independent (see file
  /// comment), so snapshots of the same observation multiset are
  /// byte-identical regardless of thread count.
  std::string json() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double min_ = 0, max_ = 0;  // valid when count_ > 0
};

}  // namespace dgr::obs
