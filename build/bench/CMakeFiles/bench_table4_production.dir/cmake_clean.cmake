file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_production.dir/bench_table4_production.cpp.o"
  "CMakeFiles/bench_table4_production.dir/bench_table4_production.cpp.o.d"
  "bench_table4_production"
  "bench_table4_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
