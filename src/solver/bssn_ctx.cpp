#include "solver/bssn_ctx.hpp"

#include <algorithm>
#include <vector>

#include "codegen/bssn_graph.hpp"
#include "common/error.hpp"
#include "exec_space/bssn_sweeps.hpp"
#include "mesh/sampling.hpp"
#include "obs/obs.hpp"

namespace dgr::solver {

using bssn::BssnState;
using bssn::kNumVars;
using exec_space::ExecSpace;
using mesh::kPatchPts;

RhsPipeline::RhsPipeline(std::shared_ptr<const mesh::Mesh> mesh,
                         SolverConfig config, ExecSpace space)
    : mesh_(std::move(mesh)), config_(config), space_(space) {
  DGR_CHECK(mesh_ != nullptr);
  DGR_CHECK(config_.chunk_octants > 0);
  space_.set_vector_policy({config_.simd_width});
  const std::size_t cap =
      static_cast<std::size_t>(config_.chunk_octants) * kNumVars * kPatchPts;
  patch_in_.resize(cap);
  patch_out_.resize(cap);
  if (config_.rhs_kernel == RhsKernel::kStagedFusedSimd) {
    const auto g = codegen::build_bssn_algebra_graph(
        config_.bssn.lambda_f0, config_.bssn.eta, config_.bssn.ko_sigma);
    fused_kernel_ = std::make_unique<codegen::CompiledKernel>(
        g.graph, std::vector<std::int32_t>(g.outputs.begin(), g.outputs.end()),
        codegen::Strategy::kStagedCse);
  }
}

void RhsPipeline::set_mesh(std::shared_ptr<const mesh::Mesh> mesh) {
  DGR_CHECK(mesh != nullptr);
  mesh_ = std::move(mesh);
}

void RhsPipeline::compute(const BssnState& u, BssnState& rhs,
                          const std::vector<OctRange>& runs,
                          PhaseBreakdown* phases, OpCounts* counts) {
  const auto in = u.cptrs();
  const auto out = rhs.ptrs();
  if (static_cast<int>(ws_.size()) < space_.max_lanes())
    ws_.resize(space_.max_lanes());
  if (fused_kernel_ && static_cast<int>(fws_.size()) < space_.max_lanes())
    fws_.resize(space_.max_lanes());
  const exec_space::RhsDispatch dispatch{&config_.bssn, fused_kernel_.get(),
                                         &ws_, &fws_};

  // Per-call phase durations feed the timing-gated histograms below: the
  // banked PhaseTimer totals are snapshotted here and the deltas observed
  // once the call completes.
  const double t_unzip0 = phases ? phases->unzip.total_seconds() : 0.0;
  const double t_rhs0 = phases ? phases->rhs.total_seconds() : 0.0;
  const double t_zip0 = phases ? phases->zip.total_seconds() : 0.0;

  // Each phase of a chunk is one sweep on space_ (exec_space/bssn_sweeps:
  // the single kernel bodies shared with the simgpu mirror; see there for
  // the split-axis / determinism rationale).
  for (const auto& run : runs) {
    DGR_CHECK(run.first >= 0 &&
              run.second <= static_cast<OctIndex>(mesh_->num_octants()));
    for (OctIndex begin = run.first; begin < run.second;
         begin += config_.chunk_octants) {
      const OctIndex end =
          std::min<OctIndex>(begin + config_.chunk_octants, run.second);

      if (phases) phases->unzip.start();
      exec_space::sweep_octant_to_patch(space_, *mesh_, in.data(), begin, end,
                                        patch_in_.data(), config_.unzip_method,
                                        counts);
      if (phases) phases->unzip.stop();

      if (phases) phases->rhs.start();
      exec_space::sweep_rhs(space_, *mesh_, dispatch, begin, end,
                            patch_in_.data(), patch_out_.data(), counts);
      if (phases) phases->rhs.stop();

      if (phases) phases->zip.start();
      exec_space::sweep_patch_to_octant(space_, *mesh_, patch_out_.data(),
                                        begin, end, out.data(), counts);
      if (phases) phases->zip.stop();
    }
  }

  if (phases) {
    obs::observe_hist_timing(
        "solver.rhs.unzip_us",
        (phases->unzip.total_seconds() - t_unzip0) * 1e6);
    obs::observe_hist_timing(
        "solver.rhs.rhs_us", (phases->rhs.total_seconds() - t_rhs0) * 1e6);
    obs::observe_hist_timing(
        "solver.rhs.zip_us", (phases->zip.total_seconds() - t_zip0) * 1e6);
  }
}

BssnCtx::BssnCtx(std::shared_ptr<mesh::Mesh> mesh, SolverConfig config,
                 ExecSpace space)
    : mesh_(std::move(mesh)),
      config_(config),
      space_(space),
      pipeline_(mesh_, config, space) {
  DGR_CHECK(mesh_ != nullptr);
  state_.resize(mesh_->num_dofs());
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
}

Real BssnCtx::suggested_dt() const {
  return config_.cfl * mesh_->finest_spacing();
}

void BssnCtx::compute_rhs(const BssnState& u, BssnState& rhs) {
  pipeline_.compute(u, rhs,
                    {{0, static_cast<OctIndex>(mesh_->num_octants())}},
                    &phases_, &counts_);
}

void BssnCtx::rk4_step(Real dt) {
  // Classical RK4: k1 = F(u), k2 = F(u + dt/2 k1), k3 = F(u + dt/2 k2),
  // k4 = F(u + dt k3), u += dt/6 (k1 + 2 k2 + 2 k3 + k4). The AXPY sweeps
  // pass counts == nullptr: the host context has never accumulated update
  // flops into counts_ (the simgpu mirror records them per kernel).
  compute_rhs(state_, k_[0]);

  phases_.update.start();
  exec_space::sweep_rk4_axpy(space_, stage_, 0.5 * dt, k_[0], &state_,
                             nullptr);
  phases_.update.stop();
  compute_rhs(stage_, k_[1]);

  phases_.update.start();
  exec_space::sweep_rk4_axpy(space_, stage_, 0.5 * dt, k_[1], &state_,
                             nullptr);
  phases_.update.stop();
  compute_rhs(stage_, k_[2]);

  phases_.update.start();
  exec_space::sweep_rk4_axpy(space_, stage_, dt, k_[2], &state_, nullptr);
  phases_.update.stop();
  compute_rhs(stage_, k_[3]);

  phases_.update.start();
  exec_space::sweep_rk4_axpy(space_, state_, dt / 6.0, k_[0], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 3.0, k_[1], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 3.0, k_[2], nullptr,
                             nullptr);
  exec_space::sweep_rk4_axpy(space_, state_, dt / 6.0, k_[3], nullptr,
                             nullptr);
  phases_.update.stop();

  time_ += dt;
  ++steps_;
  // A global-dt step desynchronizes the retained dense stages (they cover
  // the interval before it); the next sub-cycled cycle re-bootstraps.
  dense_ready_ = false;
}

void BssnCtx::evolve_steps(int n) {
  for (int i = 0; i < n; ++i) rk4_step();
}

bssn::ConstraintNorms BssnCtx::constraint_norms(
    const std::vector<std::array<Real, 3>>& excise, Real excise_radius) const {
  return bssn::compute_constraint_norms(*mesh_, state_, config_.bssn, excise,
                                        excise_radius);
}

void BssnCtx::remesh(std::shared_ptr<mesh::Mesh> new_mesh) {
  DGR_CHECK(new_mesh != nullptr);
  BssnState next = transfer_state(*mesh_, state_, *new_mesh);
  mesh_ = std::move(new_mesh);
  pipeline_.set_mesh(mesh_);
  state_ = std::move(next);
  for (auto& k : k_) k.resize(mesh_->num_dofs());
  stage_.resize(mesh_->num_dofs());
  subidx_.reset();
  dense_ready_ = false;
}

BssnState transfer_state(const mesh::Mesh& src_mesh, const BssnState& src,
                         const mesh::Mesh& dst_mesh) {
  BssnState out(dst_mesh.num_dofs());
  const auto in = src.cptrs();
  // Parallel over destination DOFs; every DOF is evaluated independently,
  // so chunking changes nothing but wall time. The sampler caches the last
  // loaded octant (stateful), so each chunk carries its own instance.
  const std::int64_t nd = static_cast<std::int64_t>(dst_mesh.num_dofs());
  ExecSpace::host().range_for(
      {"transfer", "transfer", static_cast<std::uint64_t>(nd), 0}, nd,
      /*grain=*/512, nullptr,
      [&](std::int64_t db, std::int64_t de, OpCounts&) {
        mesh::PointSampler sampler(src_mesh);
        std::array<Real, kNumVars> vals;
        for (DofIndex d = static_cast<DofIndex>(db);
             d < static_cast<DofIndex>(de); ++d) {
          const auto x = dst_mesh.dof_position(d);
          sampler.evaluate_many(in.data(), kNumVars, x[0], x[1], x[2],
                                vals.data());
          for (int v = 0; v < kNumVars; ++v) out.field(v)[d] = vals[v];
        }
      });
  return out;
}

}  // namespace dgr::solver
