# Empty dependencies file for dgr_comm.
# This may be replaced when dependencies are built.
