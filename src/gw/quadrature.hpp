#pragma once
/// \file quadrature.hpp
/// \brief Quadrature rules on the unit sphere for gravitational-wave mode
/// extraction (paper §III-A: "integrations being performed using Lebedev
/// quadrature" on extraction spheres).
///
/// We provide the classic octahedrally-symmetric Lebedev rules of order 3
/// (6 points) and order 7 (26 points) with exact rational weights, plus
/// Gauss–Legendre x uniform-azimuth product rules of arbitrary order for
/// the production extraction path (exact for spherical harmonics up to
/// degree 2n-1, which exceeds any Lebedev order we would tabulate).

#include <array>
#include <vector>

#include "common/types.hpp"

namespace dgr::gw {

/// A quadrature rule: unit direction vectors and weights summing to 4*pi.
struct SphereQuadrature {
  std::vector<std::array<Real, 3>> points;
  std::vector<Real> weights;

  std::size_t size() const { return points.size(); }

  /// Integrate a sampled function (values at the rule's points).
  Real integrate(const std::vector<Real>& values) const;
};

/// Lebedev order-3 rule (6 points: octahedron vertices).
SphereQuadrature lebedev_6();

/// Lebedev order-7 rule (26 points: vertices + edge midpoints + corners).
SphereQuadrature lebedev_26();

/// Gauss–Legendre (n points in cos(theta)) x trapezoid (2n in phi) product
/// rule; integrates spherical polynomials of degree <= 2n-1 exactly.
SphereQuadrature gauss_product(int n);

/// Gauss–Legendre nodes/weights on [-1, 1] (Newton iteration on P_n).
void gauss_legendre(int n, std::vector<Real>& nodes,
                    std::vector<Real>& weights);

}  // namespace dgr::gw
