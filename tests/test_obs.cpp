/// \file test_obs.cpp
/// \brief Observability tests: the Chrome-trace exporter pinned down by a
/// golden file (byte-exact), the MetricsRegistry JSON snapshot, the
/// log-scale Histogram (bucket math, quantiles vs a sorted reference,
/// bitwise-deterministic snapshots across thread counts), the Prometheus
/// exposition, the flight recorder (golden dump with ring wraparound,
/// crash-handler dump), the install/uninstall no-op contract of the RAII
/// span guards, the DGR_LOG / JSON-lines log sink, and the end-to-end
/// guarantee that a 2-rank evolve_distributed run produces valid,
/// deterministic Chrome-trace JSON (per-rank pids/tids, B/E pairing,
/// monotone span timestamps per track).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bssn/initial_data.hpp"
#include "common/error.hpp"
#include "common/json_read.hpp"
#include "common/log.hpp"
#include "dist/engine.hpp"
#include "exec/parallel.hpp"
#include "exec/pool.hpp"
#include "obs/obs.hpp"

namespace dgr::obs {
namespace {

// ------------------------------------------------------------ exporter --

TEST(Trace, ChromeJsonGoldenFile) {
  TraceSession s;
  const int exec = s.add_track("rank 0", "exec", Clock::kVirtual);
  const int halo = s.add_track("rank 0", "halo", Clock::kVirtual);
  s.span_begin(exec, "compute", "exec", 0);
  s.span_end(exec, 10);
  s.flow_begin(exec, "msg", "comm", 2, 7);
  s.span_begin(halo, "halo hidden", "comm", 2, {{"bytes", "1024"}});
  s.span_end(halo, 8);
  s.flow_end(halo, "msg", "comm", 8, 7);
  s.counter(exec, "octants", 0, 64);
  s.instant(exec, "step", "engine", 10);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"rank 0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"exec\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"halo\"}},\n"
      "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"compute\","
      "\"cat\":\"exec\"},\n"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":10},\n"
      "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":2,\"name\":\"msg\","
      "\"cat\":\"comm\",\"id\":7},\n"
      "{\"ph\":\"B\",\"pid\":1,\"tid\":2,\"ts\":2,\"name\":\"halo hidden\","
      "\"cat\":\"comm\",\"args\":{\"bytes\":\"1024\"}},\n"
      "{\"ph\":\"E\",\"pid\":1,\"tid\":2,\"ts\":8},\n"
      "{\"ph\":\"f\",\"pid\":1,\"tid\":2,\"ts\":8,\"name\":\"msg\","
      "\"cat\":\"comm\",\"id\":7,\"bp\":\"e\"},\n"
      "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"octants\","
      "\"args\":{\"value\":64}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":10,\"name\":\"step\","
      "\"cat\":\"engine\",\"s\":\"t\"}\n"
      "]}\n";
  EXPECT_EQ(s.chrome_json(Clock::kVirtual), expected);
}

TEST(Trace, DomainsExportSeparately) {
  TraceSession s;
  const int v = s.add_track("rank 0", "exec", Clock::kVirtual);
  const int h = s.host_track();  // "host"/"main", Clock::kHost
  s.span_begin(v, "virtual-span", "x", 0);
  s.span_end(v, 1);
  s.span_begin(h, "host-span", "x", 100);
  s.span_end(h, 200);
  const std::string vj = s.chrome_json(Clock::kVirtual);
  const std::string hj = s.chrome_json(Clock::kHost);
  EXPECT_NE(vj.find("virtual-span"), std::string::npos);
  EXPECT_EQ(vj.find("host-span"), std::string::npos);
  EXPECT_NE(hj.find("host-span"), std::string::npos);
  EXPECT_EQ(hj.find("virtual-span"), std::string::npos);
  // Same process name in both domains keeps its pid.
  EXPECT_EQ(s.track_domain(v), Clock::kVirtual);
  EXPECT_EQ(s.track_domain(h), Clock::kHost);
}

TEST(Trace, PidsGroupByProcessName) {
  TraceSession s;
  const int a0 = s.add_track("rank 0", "exec", Clock::kVirtual);
  const int a1 = s.add_track("rank 0", "halo", Clock::kVirtual);
  const int b0 = s.add_track("rank 1", "exec", Clock::kVirtual);
  (void)a0;
  (void)a1;
  (void)b0;
  s.instant(a0, "x", "c", 0);
  s.instant(a1, "x", "c", 0);
  s.instant(b0, "x", "c", 0);
  const std::string j = s.chrome_json(Clock::kVirtual);
  // rank 0's two rows share pid 1 (tids 1, 2); rank 1 gets pid 2.
  EXPECT_NE(j.find("\"ph\":\"i\",\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\",\"pid\":1,\"tid\":2"), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"i\",\"pid\":2,\"tid\":1"), std::string::npos);
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, JsonSnapshotIsSortedAndExact) {
  MetricsRegistry m;
  m.add("b.count", 2);
  m.add("a.count");
  m.set("g", 1.5);
  m.observe("lat", 2);
  m.observe("lat", 4);
  m.observe_hist("h", 2);
  EXPECT_EQ(m.json(),
            "{\"counters\":{\"a.count\":1,\"b.count\":2},"
            "\"gauges\":{\"g\":1.5},"
            "\"summaries\":{\"lat\":{\"count\":2,\"sum\":6,\"min\":2,"
            "\"max\":4,\"mean\":3}},"
            "\"histograms\":{\"h\":{\"count\":1,\"min\":2,\"max\":2,"
            "\"p50\":2,\"p90\":2,\"p99\":2,\"p999\":2}}}");
}

TEST(Metrics, AccessorsAndReset) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("c", 3);
  m.add("c", 4);
  EXPECT_EQ(m.counter("c"), 7u);
  EXPECT_EQ(m.counter("missing"), 0u);
  m.set("g", 2.0);
  m.set("g", -1.0);
  EXPECT_EQ(m.gauge("g"), -1.0);
  m.observe("s", 5.0);
  ASSERT_TRUE(m.summary("s").has_value());
  EXPECT_EQ(m.summary("s")->count, 1u);
  EXPECT_FALSE(m.summary("missing").has_value());
  m.observe_hist("h", 5.0);
  ASSERT_TRUE(m.histogram("h").has_value());
  EXPECT_EQ(m.histogram("h")->count(), 1u);
  EXPECT_FALSE(m.histogram("missing").has_value());
  m.reset();
  EXPECT_TRUE(m.empty());
}

TEST(Metrics, SnapshotIsByValueAndCoherent) {
  MetricsRegistry m;
  m.add("c", 1);
  m.set("g", 2.0);
  m.observe("s", 3.0);
  m.observe_hist("h", 4.0);
  const MetricsRegistry::Snapshot snap = m.snapshot();
  // Mutations after the snapshot must not show through the copy.
  m.add("c", 100);
  m.observe_hist("h", 400.0);
  EXPECT_EQ(snap.counters.at("c"), 1u);
  EXPECT_EQ(snap.gauges.at("g"), 2.0);
  EXPECT_EQ(snap.summaries.at("s").count, 1u);
  EXPECT_EQ(snap.histograms.at("h").count(), 1u);
  EXPECT_EQ(m.counter("c"), 101u);
}

TEST(Metrics, TimingFlagGatesObserveHistTiming) {
  MetricsRegistry m;
  install_metrics(&m);
  observe_hist_timing("wall.us", 12.0);  // default: timing disabled
  EXPECT_FALSE(m.histogram("wall.us").has_value());
  observe_hist("virtual.us", 12.0);  // value histograms are unconditional
  EXPECT_TRUE(m.histogram("virtual.us").has_value());
  m.enable_timing(true);
  EXPECT_TRUE(m.timing_enabled());
  observe_hist_timing("wall.us", 12.0);
  install_metrics(nullptr);
  ASSERT_TRUE(m.histogram("wall.us").has_value());
  EXPECT_EQ(m.histogram("wall.us")->count(), 1u);
}

// ----------------------------------------------------------- histogram --

TEST(Histogram, BucketBoundsAndIndexAgree) {
  // Every value lands in a bucket whose [lower, upper) brackets it, and
  // the exact bucket boundaries index into themselves (half-open).
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const double lo = Histogram::bucket_lower(i);
    const double hi = Histogram::bucket_upper(i);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(Histogram::bucket_index(lo), i);
    const double mid = lo + 0.4 * (hi - lo);
    EXPECT_EQ(Histogram::bucket_index(mid), i);
  }
  // Clamping: non-positive, NaN, below-range low; huge and +inf high.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-7.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(HUGE_VAL), Histogram::kBuckets - 1);
}

TEST(Histogram, QuantilesTrackSortedReference) {
  // A deterministic LCG stream spanning several orders of magnitude; the
  // histogram's quantiles must agree with the exact sorted-vector answer
  // to within the bucket resolution (2^(1/4)-1 ~ 19%).
  Histogram h;
  std::vector<double> ref;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double u = double(x >> 11) / double(1ull << 53);  // [0, 1)
    const double v = std::exp(2.0 + 8.0 * u);               // ~7.4 .. 1.6e4
    h.observe(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        ref[std::size_t(std::ceil(p * double(ref.size())) - 1)];
    const double est = h.quantile(p);
    EXPECT_NEAR(est / exact, 1.0, 0.20)
        << "p=" << p << " exact=" << exact << " est=" << est;
  }
  EXPECT_EQ(h.count(), 20000u);
  EXPECT_EQ(h.min(), ref.front());
  EXPECT_EQ(h.max(), ref.back());
  // Degenerate single-value histogram answers exactly.
  Histogram one;
  one.observe(42.0);
  EXPECT_EQ(one.p50(), 42.0);
  EXPECT_EQ(one.p999(), 42.0);
  EXPECT_EQ(Histogram().quantile(0.5), 0.0);
}

TEST(Histogram, MergeMatchesCombinedFeed) {
  Histogram a, b, all;
  for (int i = 1; i <= 100; ++i) {
    (i % 2 ? a : b).observe(double(i));
    all.observe(double(i));
  }
  a.merge(b);
  EXPECT_EQ(a.json(), all.json());
  Histogram empty;
  a.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.json(), all.json());
}

TEST(Histogram, SnapshotBitwiseIdenticalAcrossThreadCounts) {
  // The same observation multiset fed through the registry from 1-lane
  // and 4-lane parallel regions must produce byte-identical registry
  // JSON — the property that lets instrumented runs stay inside the
  // cross-thread-count determinism tests.
  const auto run = [](int threads) {
    exec::ThreadPool::set_global_threads(threads);
    MetricsRegistry reg;
    install_metrics(&reg);
    exec::parallel_for(0, 5000, 64, [](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i)
        observe_hist("det.h", 1.0 + double((i * 37) % 1000));
    });
    install_metrics(nullptr);
    return reg.json();
  };
  const std::string one = run(1);
  const std::string four = run(4);
  exec::ThreadPool::set_global_threads(exec::ThreadPool::configured_threads());
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"det.h\":{\"count\":5000"), std::string::npos);
}

// ---------------------------------------------------------- prometheus --

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry m;
  m.add("serve.requests", 3);
  m.set("serve.queue-depth", 2.0);  // '-' sanitized to '_'
  m.observe("ens.wait", 4.0);
  m.observe("ens.wait", 6.0);
  for (int i = 0; i < 100; ++i) m.observe_hist("serve.latency_us.mem", 8.0);
  const std::string p = m.prometheus();
  EXPECT_NE(p.find("# TYPE dgr_serve_requests counter\n"
                   "dgr_serve_requests 3\n"),
            std::string::npos);
  EXPECT_NE(p.find("# TYPE dgr_serve_queue_depth gauge\n"
                   "dgr_serve_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(p.find("dgr_ens_wait_count 2\n"), std::string::npos);
  EXPECT_NE(p.find("dgr_ens_wait_sum 10\n"), std::string::npos);
  EXPECT_NE(p.find("# TYPE dgr_serve_latency_us_mem summary\n"),
            std::string::npos);
  EXPECT_NE(p.find("dgr_serve_latency_us_mem{quantile=\"0.5\"} 8\n"),
            std::string::npos);
  EXPECT_NE(p.find("dgr_serve_latency_us_mem{quantile=\"0.999\"} 8\n"),
            std::string::npos);
  EXPECT_NE(p.find("dgr_serve_latency_us_mem_count 100\n"),
            std::string::npos);
}

// ------------------------------------------------------ flight recorder --

TEST(FlightRec, CapacityKnobIsStrict) {
  flightrec::reset();  // re-arm the DGR_FLIGHTREC_KB read
  ASSERT_EQ(setenv("DGR_FLIGHTREC_KB", "64", 1), 0);
  EXPECT_EQ(flightrec::capacity_entries(),
            64u * 1024 / sizeof(flightrec::Entry));
  // Garbage must throw at first use instead of silently recording into the
  // default-sized ring (std::atol would have returned 0 for all of these).
  // A failed read leaves the capacity unset, so each variant re-reads.
  flightrec::reset();
  for (const char* bad : {"64MB", "64 ", "x", "", "0", "-4", "4.5"}) {
    ASSERT_EQ(setenv("DGR_FLIGHTREC_KB", bad, 1), 0);
    EXPECT_THROW(flightrec::capacity_entries(), Error) << bad;
  }
  ASSERT_EQ(unsetenv("DGR_FLIGHTREC_KB"), 0);
  EXPECT_GT(flightrec::capacity_entries(), 0u);  // default capacity
  flightrec::reset();
}

TEST(FlightRec, GoldenDumpWithRingWraparound) {
  flightrec::reset();
  flightrec::set_enabled(true);
  flightrec::set_capacity_bytes(4 * sizeof(flightrec::Entry));
  ASSERT_EQ(flightrec::capacity_entries(), 4u);
  // Six events into a 4-entry ring: the two oldest fall off the end.
  flightrec::record_span("e0", "t", 0.0, 1.0);
  flightrec::record_span("e1", "t", 1.0, 1.0);
  flightrec::record_span("e2", "t", 2.0, 1.0);
  flightrec::record_span("e3", "t", 3.0, 1.0);
  flightrec::record_instant("mark", "t", 4.0);
  flightrec::record_span("e5", "t", 5.0, 1.5);
  EXPECT_EQ(flightrec::recorded_entries(), 4u);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"e2\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":2,\"dur\":1},\n"
      "{\"name\":\"e3\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":3,\"dur\":1},\n"
      "{\"name\":\"mark\",\"cat\":\"t\",\"ph\":\"i\",\"pid\":1,\"tid\":0,"
      "\"ts\":4,\"s\":\"t\"},\n"
      "{\"name\":\"e5\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
      "\"ts\":5,\"dur\":1.5}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(flightrec::dump_json(), expected);

  // dump() writes the same bytes to disk, and the result parses as JSON
  // with the expected traceEvents array (Perfetto-loadable shape).
  const std::string path = testing::TempDir() + "dgr_flightrec_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(flightrec::dump(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), expected);
  std::string err;
  const auto parsed = jsonu::parse(ss.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_NE(parsed->get("traceEvents"), nullptr);
  EXPECT_EQ(parsed->get("traceEvents")->arr.size(), 4u);
  EXPECT_EQ(parsed->get("traceEvents")->arr[3].get_str("name"), "e5");
  std::remove(path.c_str());
  flightrec::reset();
}

TEST(FlightRec, DisabledRecordsAndDumpsNothing) {
  flightrec::reset();
  flightrec::set_enabled(false);
  flightrec::record_span("dropped", "t", 0.0, 1.0);
  EXPECT_EQ(flightrec::recorded_entries(), 0u);
  EXPECT_FALSE(flightrec::dump(testing::TempDir() + "dgr_fr_disabled.json"));
  flightrec::set_enabled(true);
  flightrec::reset();
}

TEST(FlightRec, ScopedSpanFeedsRecorder) {
  flightrec::reset();
  flightrec::set_enabled(true);
  install_trace(nullptr);  // no session: recorder still captures the span
  { ScopedSpan span("fr.span", "test"); }
  EXPECT_EQ(flightrec::recorded_entries(), 1u);
  EXPECT_NE(flightrec::dump_json().find("\"name\":\"fr.span\""),
            std::string::npos);
  flightrec::reset();
}

using FlightRecDeathTest = ::testing::Test;

TEST(FlightRecDeathTest, CrashHandlerDumpsAndReRaises) {
  const std::string path = testing::TempDir() + "dgr_flightrec_crash.json";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        flightrec::reset();
        flightrec::set_enabled(true);
        flightrec::install_crash_handler(path.c_str());
        flightrec::record_span("before-crash", "test", 1.0, 2.0);
        std::raise(SIGSEGV);
      },
      "");
  // The child dumped before dying of the original signal.
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "crash handler did not write " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  std::string err;
  const auto parsed = jsonu::parse(ss.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err << "\n" << ss.str();
  ASSERT_NE(parsed->get("traceEvents"), nullptr);
  ASSERT_EQ(parsed->get("traceEvents")->arr.size(), 1u);
  EXPECT_EQ(parsed->get("traceEvents")->arr[0].get_str("name"),
            "before-crash");
  std::remove(path.c_str());
}

// --------------------------------------------------------- RAII guards --

TEST(Obs, HelpersAreNoOpsWithoutInstall) {
  install_trace(nullptr);
  install_metrics(nullptr);
  EXPECT_EQ(trace(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  {
    ScopedSpan span("noop", "test");  // must not crash or allocate a session
    count("noop.counter");
    gauge_set("noop.gauge", 1.0);
    observe("noop.summary", 1.0);
    observe_hist("noop.hist", 1.0);
    observe_hist_timing("noop.hist.timing", 1.0);
  }
  EXPECT_EQ(trace(), nullptr);
}

TEST(Obs, ScopedSpanWritesToInstalledSession) {
  TraceSession s;
  install_trace(&s);
  {
    ScopedSpan span("outer", "test");
    { ScopedSpan inner("inner", "test"); }
  }
  install_trace(nullptr);
  // 2 B + 2 E events on the host track.
  EXPECT_EQ(s.event_count(), 4u);
  const std::string j = s.chrome_json(Clock::kHost);
  EXPECT_NE(j.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"inner\""), std::string::npos);
}

TEST(Obs, MetricHelpersFeedInstalledRegistry) {
  MetricsRegistry m;
  install_metrics(&m);
  count("x.count", 5);
  gauge_set("x.gauge", 2.5);
  observe("x.obs", 7.0);
  install_metrics(nullptr);
  EXPECT_EQ(m.counter("x.count"), 5u);
  EXPECT_EQ(m.gauge("x.gauge"), 2.5);
  EXPECT_EQ(m.summary("x.obs")->count, 1u);
}

// ----------------------------------------------------------------- log --

TEST(Log, ParseLevelNamesAndDigits) {
  using log::Level;
  using log::parse_level;
  EXPECT_EQ(parse_level("debug"), Level::kDebug);
  EXPECT_EQ(parse_level("INFO"), Level::kInfo);
  EXPECT_EQ(parse_level("Warn"), Level::kWarn);
  EXPECT_EQ(parse_level("error"), Level::kError);
  EXPECT_EQ(parse_level("off"), Level::kOff);
  EXPECT_EQ(parse_level("2"), Level::kWarn);
  EXPECT_EQ(parse_level("bogus", Level::kError), Level::kError);
}

TEST(Log, JsonSinkMirrorsMessages) {
  const std::string path = testing::TempDir() + "dgr_log_sink.jsonl";
  std::remove(path.c_str());
  const log::Level before = log::level();
  log::set_level(log::Level::kInfo);
  ASSERT_TRUE(log::open_json_sink(path));
  EXPECT_TRUE(log::json_sink_open());
  log::info("hello \"quoted\"");
  log::debug("below threshold, dropped");
  log::close_json_sink();
  EXPECT_FALSE(log::json_sink_open());
  log::set_level(before);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[512];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  const std::string line(buf);
  EXPECT_EQ(std::fgets(buf, sizeof buf, f), nullptr);  // one line only
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"INFO\""), std::string::npos);
  EXPECT_NE(line.find("hello \\\"quoted\\\""), std::string::npos);
}

// ------------------------------------------- end-to-end distributed run --

struct ParsedEvent {
  char ph = 0;
  int pid = 0, tid = 0;
  double ts = 0;
};

// Minimal line-oriented parser for the exporter's one-event-per-line form.
std::vector<ParsedEvent> parse_events(const std::string& j) {
  std::vector<ParsedEvent> out;
  const auto field = [](const std::string& line, const std::string& key) {
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
    return line.substr(pos + key.size() + 3);
  };
  std::size_t start = 0;
  while (start < j.size()) {
    auto end = j.find('\n', start);
    if (end == std::string::npos) end = j.size();
    const std::string line = j.substr(start, end - start);
    start = end + 1;
    if (line.rfind("{\"ph\":\"", 0) != 0) continue;
    ParsedEvent e;
    e.ph = line[7];
    e.pid = std::atoi(field(line, "pid").c_str());
    e.tid = std::atoi(field(line, "tid").c_str());
    if (e.ph != 'M') e.ts = std::atof(field(line, "ts").c_str());
    out.push_back(e);
  }
  return out;
}

std::string run_two_rank_trace() {
  oct::Domain dom{16.0};
  auto m = std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
  bssn::BssnState s;
  s.resize(m->num_dofs());
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  TraceSession session;
  install_trace(&session);
  dist::DistConfig dcfg;
  dcfg.ranks = 2;
  dcfg.execute = false;
  dcfg.schedule_evals = 4;
  dist::evolve_distributed(m, s, solver::SolverConfig{}, dcfg);
  install_trace(nullptr);
  return session.chrome_json(Clock::kVirtual);
}

TEST(Trace, TwoRankDistributedRunExportsValidSchedule) {
  const std::string j = run_two_rank_trace();

  // Frame: header and footer of the Chrome trace format.
  EXPECT_EQ(j.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", 0), 0u);
  ASSERT_GE(j.size(), 4u);
  EXPECT_EQ(j.substr(j.size() - 4), "\n]}\n");

  // Both ranks present as named processes with exec + halo rows.
  EXPECT_NE(j.find("\"args\":{\"name\":\"rank 0\"}"), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"name\":\"rank 1\"}"), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"name\":\"exec\"}"), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"name\":\"halo\"}"), std::string::npos);
  // The schedule's span vocabulary.
  EXPECT_NE(j.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"isend\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"halo hidden\""), std::string::npos);

  const auto events = parse_events(j);
  ASSERT_FALSE(events.empty());

  // Spans pair up (every E closes an open B on its track) and B/E
  // timestamps are monotone per track; flow/instant events ride between
  // spans and are exempt from the per-track ordering.
  std::map<std::pair<int, int>, int> open;
  std::map<std::pair<int, int>, double> last_ts;
  std::set<int> pids_with_spans;
  for (const auto& e : events) {
    if (e.ph != 'B' && e.ph != 'E') continue;
    const auto key = std::make_pair(e.pid, e.tid);
    if (e.ph == 'B') {
      open[key] += 1;
      pids_with_spans.insert(e.pid);
    } else {
      ASSERT_GT(open[key], 0) << "E without open B on pid " << e.pid
                              << " tid " << e.tid;
      open[key] -= 1;
    }
    auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second) << "non-monotone span ts on pid " << e.pid;
    }
    last_ts[key] = e.ts;
  }
  for (const auto& [key, n] : open) {
    EXPECT_EQ(n, 0) << "unclosed span";
  }
  // Spans on at least the two rank processes.
  EXPECT_GE(pids_with_spans.size(), 2u);

  // Every flow start has a matching finish ('s' and 'f' counts agree).
  std::size_t n_s = 0, n_f = 0;
  for (const auto& e : events) {
    if (e.ph == 's') ++n_s;
    if (e.ph == 'f') ++n_f;
  }
  EXPECT_GT(n_s, 0u);
  EXPECT_EQ(n_s, n_f);
}

TEST(Trace, TwoRankDistributedRunIsDeterministic) {
  EXPECT_EQ(run_two_rank_trace(), run_two_rank_trace());
}

TEST(Metrics, DistributedRunFeedsRegistry) {
  oct::Domain dom{16.0};
  auto m = std::make_shared<mesh::Mesh>(
      oct::build_puncture_octree(dom, {{{0.05, 0.03, 0.02}, 3}}, 2), dom);
  bssn::BssnState s;
  s.resize(m->num_dofs());
  bssn::set_punctures(*m, {{1.0, {0.05, 0.03, 0.02}, {0, 0, 0}, {0, 0, 0}}},
                      s);
  MetricsRegistry reg;
  install_metrics(&reg);
  dist::DistConfig dcfg;
  dcfg.ranks = 2;
  dcfg.execute = false;
  dcfg.schedule_evals = 2;
  const auto res = dist::evolve_distributed(m, s, solver::SolverConfig{},
                                            dcfg);
  install_metrics(nullptr);
  EXPECT_EQ(reg.counter("dist.messages"), res.messages);
  EXPECT_GT(reg.counter("dist.messages"), 0u);
  EXPECT_EQ(reg.gauge("dist.ranks"), 2.0);
  EXPECT_EQ(reg.gauge("dist.t_virtual"), res.t_virtual);
}

}  // namespace
}  // namespace dgr::obs
